// Figure 19: experiments with the Brinkhoff-style network-based generator
// on an Oldenburg-sized network (6105 nodes / 7035 edges in the paper).
// (a) CPU vs query cardinality Q in {1K..32K(64K)} with N = 64K objects;
// (b) CPU vs k with Q = 8K. Same shapes as Figures 13(b)/14(a): GMA's lead
// grows with Q; IMA wins only at k=1.

#include "bench/bench_common.h"
#include "src/gen/network_gen.h"

namespace cknn::bench {
namespace {

const RoadNetwork& OldenburgNetwork() {
  static const RoadNetwork& net = *new RoadNetwork(GenerateOldenburgLike(7));
  return net;
}

BrinkhoffWorkload::Config BaseConfig() {
  BrinkhoffWorkload::Config cfg;
  cfg.num_objects = 64000;  // Density is preserved at both scales.
  cfg.num_queries = 8000 / Div();
  cfg.k = PaperScale() ? 50 : 25;
  cfg.generator.churn = 0.02;
  cfg.generator.seed = 11;
  return cfg;
}

void ReportBrinkhoff(benchmark::State& state, Algorithm algorithm,
                     const BrinkhoffWorkload::Config& cfg) {
  for (auto _ : state) {
    const RunMetrics metrics = RunBrinkhoffExperiment(
        algorithm, OldenburgNetwork(), cfg, Timestamps());
    state.SetIterationTime(metrics.AvgSeconds());
    state.counters["sec_per_ts"] = metrics.AvgSeconds();
    state.counters["max_sec"] = metrics.MaxSeconds();
    state.counters["cpu_sec_per_ts"] = metrics.AvgCpuSeconds();
  }
  state.SetLabel(AlgorithmName(algorithm));
}

void Fig19aVsQ(benchmark::State& state) {
  BrinkhoffWorkload::Config cfg = BaseConfig();
  cfg.num_queries = static_cast<std::size_t>(state.range(1)) * 1000 / Div();
  ReportBrinkhoff(state, AlgoOf(state.range(0)), cfg);
}

BENCHMARK(Fig19aVsQ)
    ->ArgNames({"algo", "Q_thousands"})
    ->ArgsProduct({{0, 1, 2}, {1, 2, 4, 8, 16, 32}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void Fig19bVsK(benchmark::State& state) {
  BrinkhoffWorkload::Config cfg = BaseConfig();
  cfg.k = static_cast<int>(state.range(1));
  ReportBrinkhoff(state, AlgoOf(state.range(0)), cfg);
}

BENCHMARK(Fig19bVsK)
    ->ArgNames({"algo", "k"})
    ->ArgsProduct({{0, 1, 2}, {1, 25, 50, 100, 200}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cknn::bench

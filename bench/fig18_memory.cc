// Figure 18: memory of the monitoring structures (KBytes) vs query
// cardinality (a) and vs k (b). Paper: IMA > GMA, the gap growing with both
// Q (more expansion trees) and k (bigger trees); GMA scales gracefully
// because only active nodes keep trees.

#include "bench/bench_common.h"

namespace cknn::bench {
namespace {

void Fig18aMemoryVsQ(benchmark::State& state) {
  ExperimentSpec spec = DefaultSpec();
  spec.workload.num_queries =
      static_cast<std::size_t>(state.range(1)) * 1000 / Div();
  spec.measure_memory = true;
  RunAndReport(state, AlgoOf(state.range(0)), spec);
}

// Only IMA and GMA keep monitoring structures (the paper plots these two).
BENCHMARK(Fig18aMemoryVsQ)
    ->ArgNames({"algo", "Q_thousands"})
    ->ArgsProduct({{1, 2}, {1, 3, 5, 7, 10}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void Fig18bMemoryVsK(benchmark::State& state) {
  ExperimentSpec spec = DefaultSpec();
  spec.workload.k = static_cast<int>(state.range(1));
  spec.measure_memory = true;
  RunAndReport(state, AlgoOf(state.range(0)), spec);
}

BENCHMARK(Fig18bMemoryVsK)
    ->ArgNames({"algo", "k"})
    ->ArgsProduct({{1, 2}, {1, 25, 50, 100, 200}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cknn::bench

// Ablation: expansion-tree reuse (Sections 4.2-4.4). With reuse off, any
// affecting update triggers from-scratch recomputation of the query (but
// non-affecting updates are still filtered) — isolating the value of the
// valid-subtree machinery from the value of influence lists.

#include "bench/bench_common.h"
#include "src/core/ima.h"

namespace cknn::bench {
namespace {

void AblationReuse(benchmark::State& state) {
  const bool use_reuse = state.range(0) == 1;
  ExperimentSpec spec = DefaultSpec();
  for (auto _ : state) {
    RoadNetwork net = GenerateRoadNetwork(spec.network);
    MonitoringServer server(std::move(net), Algorithm::kIma);
    dynamic_cast<Ima&>(server.monitor())
        .engine()
        .set_use_tree_reuse(use_reuse);
    Workload workload(&server.network(), &server.spatial_index(),
                      spec.workload);
    SimulationOptions options;
    options.timestamps = spec.timestamps;
    const RunMetrics metrics = RunSimulation(&server, &workload, options);
    state.SetIterationTime(metrics.AvgSeconds());
    state.counters["sec_per_ts"] = metrics.AvgSeconds();
    state.counters["max_sec"] = metrics.MaxSeconds();
    state.counters["cpu_sec_per_ts"] = metrics.AvgCpuSeconds();
    const auto& stats = dynamic_cast<Ima&>(server.monitor()).engine().stats();
    state.counters["full_recomputes"] =
        static_cast<double>(stats.full_recomputes);
    state.counters["reroots"] = static_cast<double>(stats.reroots);
  }
  state.SetLabel(use_reuse ? "IMA(tree reuse)" : "IMA(recompute affected)");
}

BENCHMARK(AblationReuse)
    ->ArgNames({"reuse_on"})
    ->ArgsProduct({{1, 0}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cknn::bench

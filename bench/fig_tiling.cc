// Weight-tiling figure (beyond the paper): memory and per-timestamp cost
// of the sharded monitoring server vs the weight-tile count, for the two
// incremental algorithms. Results are identical at every tile count
// (docs/tiling.md); the figure isolates what the shared-topology views
// bought — `mem_kb` carries the per-extra-shard weight overlays, while
// `legacy_clone_mem_kb` is what the same configuration allocated before
// the refactor, when every extra shard deep-cloned the whole network
// (O(shards x network)). The two substrate counters `clone_kb` and
// `overlay_kb` are exact for the deterministic bench network, so the
// legacy curve is computed, not guessed: mem_kb with each overlay
// replaced by a full clone.

#include "bench/bench_common.h"
#include "src/gen/network_gen.h"

namespace cknn::bench {
namespace {

void FigTiling(benchmark::State& state) {
  ExperimentSpec spec = DefaultSpec();
  spec.shards = static_cast<int>(state.range(1));
  spec.tiles = static_cast<int>(state.range(2));
  spec.measure_memory = true;
  const Algorithm algorithm = AlgoOf(state.range(0));

  // Substrate sizes of the same deterministic network the experiment
  // regenerates from spec.network: one full clone (the pre-refactor
  // per-shard cost) vs one weight overlay (the post-refactor cost).
  RoadNetwork net = GenerateRoadNetwork(spec.network);
  net.BuildAdjacencyIndex();
  net.Retile(spec.tiles);
  const double clone_kb = static_cast<double>(net.MemoryBytes()) / 1024.0;
  const double overlay_kb =
      static_cast<double>(net.OverlayMemoryBytes()) / 1024.0;
  const double extra_shards = static_cast<double>(spec.shards - 1);

  for (auto _ : state) {
    const RunMetrics metrics = RunExperiment(algorithm, spec);
    state.SetIterationTime(metrics.AvgSeconds());
    const double mem_kb = metrics.AvgMemoryKb();
    state.counters["sec_per_ts"] = metrics.AvgSeconds();
    state.counters["max_sec"] = metrics.MaxSeconds();
    state.counters["cpu_sec_per_ts"] = metrics.AvgCpuSeconds();
    state.counters["mem_kb"] = mem_kb;
    state.counters["clone_kb"] = clone_kb;
    state.counters["overlay_kb"] = overlay_kb;
    state.counters["legacy_clone_mem_kb"] =
        mem_kb + extra_shards * (clone_kb - overlay_kb);
  }
  state.SetLabel(AlgorithmName(algorithm));
}

BENCHMARK(FigTiling)
    ->ArgNames({"algo", "shards", "tiles"})
    ->ArgsProduct({{1, 2}, {1, 8}, {1, 4, 16}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cknn::bench

// Figure 14(a): per-timestamp CPU time vs k (log y-axis in the paper).
// Paper: k in {1, 25, 50, 100, 200}. IMA wins at k=1 (the nearest object is
// usually closer than any active node); GMA wins for k >= 25 because active
// node results are shared by more queries.

#include "bench/bench_common.h"

namespace cknn::bench {
namespace {

void Fig14a(benchmark::State& state) {
  ExperimentSpec spec = DefaultSpec();
  // k is a shape parameter: keep the paper's values at both scales.
  spec.workload.k = static_cast<int>(state.range(1));
  RunAndReport(state, AlgoOf(state.range(0)), spec);
}

BENCHMARK(Fig14a)
    ->ArgNames({"algo", "k"})
    ->ArgsProduct({{0, 1, 2}, {1, 25, 50, 100, 200}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cknn::bench

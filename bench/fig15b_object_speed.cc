// Figure 15(b): per-timestamp CPU time vs object speed v_obj.
// Paper: v_obj in {0.25, 0.5, 1, 2, 4} average edge lengths per timestamp.
// Practically flat: an update is a deletion plus an insertion, so the
// distance covered does not matter.

#include "bench/bench_common.h"

namespace cknn::bench {
namespace {

void Fig15b(benchmark::State& state) {
  ExperimentSpec spec = DefaultSpec();
  spec.workload.object_speed = static_cast<double>(state.range(1)) / 100.0;
  RunAndReport(state, AlgoOf(state.range(0)), spec);
}

BENCHMARK(Fig15b)
    ->ArgNames({"algo", "v_obj_x100"})
    ->ArgsProduct({{0, 1, 2}, {25, 50, 100, 200, 400}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cknn::bench

// Figure 14(b): per-timestamp CPU time vs edge agility f_edg.
// Paper: f_edg in {1, 2, 4, 8, 16}%. Both incremental methods degrade with
// more weight updates, but GMA stays flat-ish (+37% from 1% to 16%).

#include "bench/bench_common.h"

namespace cknn::bench {
namespace {

void Fig14b(benchmark::State& state) {
  ExperimentSpec spec = DefaultSpec();
  spec.workload.edge_agility = static_cast<double>(state.range(1)) / 100.0;
  RunAndReport(state, AlgoOf(state.range(0)), spec);
}

BENCHMARK(Fig14b)
    ->ArgNames({"algo", "f_edg_pct"})
    ->ArgsProduct({{0, 1, 2}, {1, 2, 4, 8, 16}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cknn::bench

// Serving-throughput figure (beyond the paper): sustained updates/sec and
// submit-to-visible latency percentiles of the multi-producer serving
// front end (src/serve/, docs/serving.md) under the million-entity bursty
// scenario — N objects and Q queries on the Table-2 network, `producers`
// threads pushing pre-partitioned request streams through the bounded
// queue, every 4th burst an arrival spike. The manual time / sec_per_ts
// counter is the mean wall cost of one burst window (submission +
// coalesced ticks), comparable to the per-timestamp cost of the other
// figures; the serving-specific counters ride along as extras in
// BENCH_results.json (updates_per_sec, p50/p95/p99/max latency in ms,
// high-water queue depth, queue-full rejections).
//
// Paper and quick scale both run the full N=1M / Q=100K scenario (the
// point of the figure is the ingest path at scale, and setup cost is
// outside the timed windows); quick just shortens the burst horizon.
// Smoke shrinks everything for the bench-smoke CTest leg.

#include <cstddef>

#include "bench/bench_common.h"
#include "src/serve/loadgen.h"

namespace cknn::bench {
namespace {

void FigServing(benchmark::State& state) {
  const BenchScale scale = ScaleOf();
  serve::LoadScenarioConfig config;
  config.algorithm = AlgoOf(state.range(0));
  config.producers = static_cast<int>(state.range(1));
  config.network.seed = 1;
  config.seed = 42;
  if (scale == BenchScale::kSmoke) {
    config.network.target_edges = 500;
    config.num_objects = 20000;
    config.num_queries = 2000;
    config.k = 4;
    config.bursts = 2;
    config.heavy_every = 2;
  } else {
    config.network.target_edges = 10000;
    config.num_objects = 1000000;
    config.num_queries = 100000;
    config.k = 10;
    config.bursts = scale == BenchScale::kPaper ? 8 : 4;
    config.heavy_every = 4;
  }

  for (auto _ : state) {
    Result<serve::LoadScenarioReport> report =
        serve::RunLoadScenario(config);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    state.SetIterationTime(report->metrics.AvgSeconds());
    state.counters["sec_per_ts"] = report->metrics.AvgSeconds();
    state.counters["max_sec"] = report->metrics.MaxSeconds();
    state.counters["cpu_sec_per_ts"] = report->metrics.AvgCpuSeconds();
    state.counters["updates_per_sec"] = report->updates_per_sec;
    state.counters["p50_ms"] = report->stats.latency_p50_sec * 1e3;
    state.counters["p95_ms"] = report->stats.latency_p95_sec * 1e3;
    state.counters["p99_ms"] = report->stats.latency_p99_sec * 1e3;
    state.counters["max_latency_ms"] = report->stats.latency_max_sec * 1e3;
    state.counters["max_queue_depth"] =
        static_cast<double>(report->stats.max_queue_depth);
    state.counters["rejected_full"] =
        static_cast<double>(report->stats.rejected_queue_full);
    state.counters["serving_mem_kb"] =
        static_cast<double>(report->monitor_memory_bytes) / 1024.0;
  }
  state.SetLabel(AlgorithmName(config.algorithm));
}

BENCHMARK(FigServing)
    ->ArgNames({"algo", "producers"})
    ->ArgsProduct({{1, 2}, {1, 4}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cknn::bench

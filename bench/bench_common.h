#ifndef CKNN_BENCH_BENCH_COMMON_H_
#define CKNN_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/server.h"
#include "src/sim/experiment.h"

namespace cknn::bench {

/// Scale of the benchmark suite.
///
/// The paper's defaults (Table 2: 10K edges, N=100K, Q=5K, k=50, 100
/// timestamps) take hours across 14 figures on a laptop, so the default
/// `quick` scale divides the query cardinality by 5 and the horizon by 10
/// while preserving the *object density* (objects per edge) — the quantity
/// the expansion radii, and therefore all relative costs, depend on. Set
/// CKNN_BENCH_SCALE=paper to run the original parameters.
inline bool PaperScale() {
  const char* env = std::getenv("CKNN_BENCH_SCALE");
  return env != nullptr && std::strcmp(env, "paper") == 0;
}

/// Cardinality divisor of the current scale.
inline std::size_t Div() { return PaperScale() ? 1 : 5; }

/// Monitoring horizon of the current scale.
inline int Timestamps() { return PaperScale() ? 100 : 10; }

/// Table-2 default experiment (both scales share the 10K-edge network and
/// the full N=100K object population so expansion radii match the paper).
inline ExperimentSpec DefaultSpec() {
  ExperimentSpec spec;
  spec.network.target_edges = 10000;
  spec.network.seed = 1;
  spec.workload.num_objects = 100000;
  spec.workload.num_queries = 5000 / Div();
  spec.workload.k = PaperScale() ? 50 : 25;
  spec.workload.seed = 42;
  spec.timestamps = Timestamps();
  return spec;
}

inline Algorithm AlgoOf(std::int64_t index) {
  switch (index) {
    case 0:
      return Algorithm::kOvh;
    case 1:
      return Algorithm::kIma;
    default:
      return Algorithm::kGma;
  }
}

/// Runs one experiment inside a benchmark iteration: manual time is the
/// mean per-timestamp maintenance cost (the paper's y-axis), and counters
/// expose the totals.
inline void RunAndReport(benchmark::State& state, Algorithm algorithm,
                         const ExperimentSpec& spec) {
  for (auto _ : state) {
    const RunMetrics metrics = RunExperiment(algorithm, spec);
    state.SetIterationTime(metrics.AvgSeconds());
    state.counters["sec_per_ts"] = metrics.AvgSeconds();
    state.counters["max_sec"] = metrics.MaxSeconds();
    if (spec.measure_memory) {
      state.counters["mem_kb"] = metrics.AvgMemoryKb();
    }
  }
  state.SetLabel(AlgorithmName(algorithm));
}

}  // namespace cknn::bench

#endif  // CKNN_BENCH_BENCH_COMMON_H_

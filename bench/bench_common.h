#ifndef CKNN_BENCH_BENCH_COMMON_H_
#define CKNN_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/server.h"
#include "src/sim/experiment.h"

namespace cknn::bench {

/// Scale of the benchmark suite, from CKNN_BENCH_SCALE:
///
///   paper  -- the paper's Table-2 defaults (10K edges, N=100K, Q=5K, k=50,
///             100 timestamps). Hours across 14 figures on a laptop.
///   quick  -- the default: query cardinality / 5, horizon / 10, while
///             preserving the *object density* (objects per edge) — the
///             quantity the expansion radii, and therefore all relative
///             costs, depend on. Minutes for the full suite.
///   smoke  -- tiny end-to-end runs for the `bench-smoke` CTest label and
///             CI artifact capture; no claim of paper fidelity. Seconds.
///
/// Any other value fails loudly: a typo must not silently record quick-scale
/// numbers as paper-scale ones.
enum class BenchScale { kSmoke, kQuick, kPaper };

inline BenchScale ScaleOf() {
  const char* env = std::getenv("CKNN_BENCH_SCALE");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "quick") == 0) {
    return BenchScale::kQuick;
  }
  if (std::strcmp(env, "paper") == 0) return BenchScale::kPaper;
  if (std::strcmp(env, "smoke") == 0) return BenchScale::kSmoke;
  std::fprintf(stderr,
               "bench_common: unknown CKNN_BENCH_SCALE '%s' "
               "(expected smoke|quick|paper)\n",
               env);
  std::exit(EXIT_FAILURE);
}

inline bool PaperScale() { return ScaleOf() == BenchScale::kPaper; }

/// Cardinality divisor of the current scale.
inline std::size_t Div() {
  switch (ScaleOf()) {
    case BenchScale::kPaper:
      return 1;
    case BenchScale::kQuick:
      return 5;
    case BenchScale::kSmoke:
      return 100;
  }
  return 1;
}

/// Monitoring horizon of the current scale.
inline int Timestamps() {
  switch (ScaleOf()) {
    case BenchScale::kPaper:
      return 100;
    case BenchScale::kQuick:
      return 10;
    case BenchScale::kSmoke:
      return 2;
  }
  return 100;
}

/// Table-2 default experiment. Paper and quick scale share the 10K-edge
/// network and the full N=100K object population so expansion radii match
/// the paper; smoke scale shrinks everything.
inline ExperimentSpec DefaultSpec() {
  ExperimentSpec spec;
  const BenchScale scale = ScaleOf();
  spec.network.target_edges = scale == BenchScale::kSmoke ? 500 : 10000;
  spec.network.seed = 1;
  spec.workload.num_objects = scale == BenchScale::kSmoke ? 5000 : 100000;
  spec.workload.num_queries = 5000 / Div();
  spec.workload.k = scale == BenchScale::kPaper  ? 50
                    : scale == BenchScale::kQuick ? 25
                                                  : 4;
  spec.workload.seed = 42;
  spec.timestamps = Timestamps();
  return spec;
}

/// Decodes the benchmark's algo arg. Out-of-range indices abort instead of
/// defaulting: a mis-registered figure must not silently record one
/// algorithm's numbers under another's name.
inline Algorithm AlgoOf(std::int64_t index) {
  switch (index) {
    case 0:
      return Algorithm::kOvh;
    case 1:
      return Algorithm::kIma;
    case 2:
      return Algorithm::kGma;
  }
  std::fprintf(stderr,
               "bench_common: benchmark arg 'algo' out of range: %lld "
               "(expected 0=OVH, 1=IMA, 2=GMA)\n",
               static_cast<long long>(index));
  std::abort();
}

/// Runs one experiment inside a benchmark iteration: manual time is the
/// mean per-timestamp maintenance cost (the paper's y-axis), and counters
/// expose the totals.
inline void RunAndReport(benchmark::State& state, Algorithm algorithm,
                         const ExperimentSpec& spec) {
  for (auto _ : state) {
    const RunMetrics metrics = RunExperiment(algorithm, spec);
    state.SetIterationTime(metrics.AvgSeconds());
    state.counters["sec_per_ts"] = metrics.AvgSeconds();
    state.counters["max_sec"] = metrics.MaxSeconds();
    state.counters["cpu_sec_per_ts"] = metrics.AvgCpuSeconds();
    if (spec.measure_memory) {
      state.counters["mem_kb"] = metrics.AvgMemoryKb();
    }
  }
  state.SetLabel(AlgorithmName(algorithm));
}

}  // namespace cknn::bench

#endif  // CKNN_BENCH_BENCH_COMMON_H_

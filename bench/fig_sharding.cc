// Sharding scaling figure (beyond the paper): per-timestamp maintenance
// cost of the sharded monitoring server vs the worker-shard count, for the
// two incremental algorithms. The update stream and per-query results are
// identical at every shard count (see docs/sharding.md); only the
// execution changes, so the curve isolates the parallel speedup — on a
// single-core host it degenerates to the (small) sharding overhead.

#include "bench/bench_common.h"

namespace cknn::bench {
namespace {

void FigSharding(benchmark::State& state) {
  ExperimentSpec spec = DefaultSpec();
  spec.shards = static_cast<int>(state.range(1));
  RunAndReport(state, AlgoOf(state.range(0)), spec);
}

BENCHMARK(FigSharding)
    ->ArgNames({"algo", "shards"})
    ->ArgsProduct({{1, 2}, {1, 2, 4, 8}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cknn::bench

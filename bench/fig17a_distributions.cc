// Figure 17(a): per-timestamp CPU time for the four object/query
// distribution combinations (Uniform/Gaussian x Uniform/Gaussian).
// Paper: GMA wins for Gaussian (clustered) queries — few active nodes cover
// many queries; IMA wins for uniform queries (sparse sequences). Gaussian
// objects use stddev 50%.

#include "bench/bench_common.h"

namespace cknn::bench {
namespace {

void Fig17a(benchmark::State& state) {
  ExperimentSpec spec = DefaultSpec();
  spec.workload.object_distribution = state.range(1) == 0
                                          ? Distribution::kUniform
                                          : Distribution::kGaussian;
  spec.workload.query_distribution = state.range(2) == 0
                                         ? Distribution::kUniform
                                         : Distribution::kGaussian;
  RunAndReport(state, AlgoOf(state.range(0)), spec);
}

// Arg encoding: (algo, obj_gaussian, qry_gaussian).
BENCHMARK(Fig17a)
    ->ArgNames({"algo", "obj_gauss", "qry_gauss"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}, {0, 1}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cknn::bench

// Figure 15(a): per-timestamp CPU time vs object agility f_obj.
// Paper: f_obj in {0, 5, 10, 15, 20}%. Cost grows with agility (more result
// invalidations); GMA is more robust than IMA.

#include "bench/bench_common.h"

namespace cknn::bench {
namespace {

void Fig15a(benchmark::State& state) {
  ExperimentSpec spec = DefaultSpec();
  spec.workload.object_agility = static_cast<double>(state.range(1)) / 100.0;
  RunAndReport(state, AlgoOf(state.range(0)), spec);
}

BENCHMARK(Fig15a)
    ->ArgNames({"algo", "f_obj_pct"})
    ->ArgsProduct({{0, 1, 2}, {0, 5, 10, 15, 20}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cknn::bench

// Pipelined-ingest figure (beyond the paper): per-timestamp wall cost of
// the monitoring server vs ingest pipeline depth x worker-shard count, for
// the two incremental algorithms. Depth 1 is the synchronous tick; depth 2
// double-buffers, so workload generation plus stage 1-2 preprocessing of
// tick t+1 overlap the shard maintenance of tick t (docs/pipeline.md).
// Results are identical at every (depth, shards) point — the curve
// isolates the ingest overlap. The cpu_sec_per_ts counter reports the
// process-CPU side by side, so the wall win is attributable: on a
// single-core host there is nothing to overlap with and the figure
// degenerates to the pipelining overhead (see docs/sharding.md for the
// same caveat on the sharding figure).

#include "bench/bench_common.h"

namespace cknn::bench {
namespace {

void FigPipeline(benchmark::State& state) {
  ExperimentSpec spec = DefaultSpec();
  spec.shards = static_cast<int>(state.range(1));
  spec.pipeline_depth = static_cast<int>(state.range(2));
  RunAndReport(state, AlgoOf(state.range(0)), spec);
}

BENCHMARK(FigPipeline)
    ->ArgNames({"algo", "shards", "depth"})
    ->ArgsProduct({{1, 2}, {1, 2, 8}, {1, 2}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cknn::bench

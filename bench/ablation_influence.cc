// Ablation: influence-list filtering (Section 4.2). With filtering off,
// every object/edge update probes every query instead of only the queries
// whose influenced region it intersects. Results are identical (see
// equivalence_test); this bench quantifies the routing win.

#include "bench/bench_common.h"
#include "src/core/ima.h"

namespace cknn::bench {
namespace {

void AblationInfluence(benchmark::State& state) {
  const bool use_filter = state.range(0) == 1;
  ExperimentSpec spec = DefaultSpec();
  for (auto _ : state) {
    RoadNetwork net = GenerateRoadNetwork(spec.network);
    MonitoringServer server(std::move(net), Algorithm::kIma);
    dynamic_cast<Ima&>(server.monitor())
        .engine()
        .set_use_influence_filter(use_filter);
    Workload workload(&server.network(), &server.spatial_index(),
                      spec.workload);
    SimulationOptions options;
    options.timestamps = spec.timestamps;
    const RunMetrics metrics = RunSimulation(&server, &workload, options);
    state.SetIterationTime(metrics.AvgSeconds());
    state.counters["sec_per_ts"] = metrics.AvgSeconds();
    state.counters["max_sec"] = metrics.MaxSeconds();
    state.counters["cpu_sec_per_ts"] = metrics.AvgCpuSeconds();
    const auto& stats = dynamic_cast<Ima&>(server.monitor()).engine().stats();
    state.counters["updates_ignored"] =
        static_cast<double>(stats.updates_ignored);
    state.counters["rebuilds"] = static_cast<double>(stats.rebuilds);
  }
  state.SetLabel(use_filter ? "IMA(influence lists)" : "IMA(probe all)");
}

BENCHMARK(AblationInfluence)
    ->ArgNames({"filter_on"})
    ->ArgsProduct({{1, 0}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cknn::bench

// Figure 16(a): per-timestamp CPU time vs query agility f_qry.
// Paper: f_qry in {0, 5, 10, 15, 20}%. IMA degrades (query movement
// invalidates expansion trees); GMA is nearly flat because moving queries
// are always answered from the static active nodes of their sequence.

#include "bench/bench_common.h"

namespace cknn::bench {
namespace {

void Fig16a(benchmark::State& state) {
  ExperimentSpec spec = DefaultSpec();
  spec.workload.query_agility = static_cast<double>(state.range(1)) / 100.0;
  RunAndReport(state, AlgoOf(state.range(0)), spec);
}

BENCHMARK(Fig16a)
    ->ArgNames({"algo", "f_qry_pct"})
    ->ArgsProduct({{0, 1, 2}, {0, 5, 10, 15, 20}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cknn::bench

// Figure 13(b): per-timestamp CPU time vs query cardinality Q.
// Paper: Q in {1K, 3K, 5K, 7K, 10K}; GMA's shared execution widens its lead
// over IMA as Q grows (2x faster at Q=10K; OVH 4.5x slower).

#include "bench/bench_common.h"

namespace cknn::bench {
namespace {

void Fig13b(benchmark::State& state) {
  ExperimentSpec spec = DefaultSpec();
  spec.workload.num_queries =
      static_cast<std::size_t>(state.range(1)) * 1000 / Div();
  RunAndReport(state, AlgoOf(state.range(0)), spec);
}

BENCHMARK(Fig13b)
    ->ArgNames({"algo", "Q_thousands"})
    ->ArgsProduct({{0, 1, 2}, {1, 3, 5, 7, 10}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cknn::bench

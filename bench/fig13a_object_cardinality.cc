// Figure 13(a): per-timestamp CPU time vs object cardinality N.
// Paper: N in {10K, 50K, 100K, 150K, 200K} on the 10K-edge network; all
// methods scale mildly, GMA < IMA < OVH throughout.

#include "bench/bench_common.h"

namespace cknn::bench {
namespace {

void Fig13a(benchmark::State& state) {
  ExperimentSpec spec = DefaultSpec();
  // N is the x-axis here: the paper's absolute values at both scales.
  spec.workload.num_objects = static_cast<std::size_t>(state.range(1)) * 1000;
  RunAndReport(state, AlgoOf(state.range(0)), spec);
}

BENCHMARK(Fig13a)
    ->ArgNames({"algo", "N_thousands"})
    ->ArgsProduct({{0, 1, 2}, {10, 50, 100, 150, 200}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cknn::bench

// Figure 16(b): per-timestamp CPU time vs query speed v_qry.
// Paper: v_qry in {0.25, 0.5, 1, 2, 4}. GMA is constant; IMA grows mildly
// because faster queries keep less of their expansion tree valid.

#include "bench/bench_common.h"

namespace cknn::bench {
namespace {

void Fig16b(benchmark::State& state) {
  ExperimentSpec spec = DefaultSpec();
  spec.workload.query_speed = static_cast<double>(state.range(1)) / 100.0;
  RunAndReport(state, AlgoOf(state.range(0)), spec);
}

BENCHMARK(Fig16b)
    ->ArgNames({"algo", "v_qry_x100"})
    ->ArgsProduct({{0, 1, 2}, {25, 50, 100, 200, 400}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cknn::bench

# End-to-end smoke of one benchmark family: run a single filtered instance
# at CKNN_BENCH_SCALE=smoke with JSON output and assert that a successful
# entry carrying the sec_per_ts counter was produced. Invoked by CTest as
#   cmake -DCKNN_BENCH_BIN=<path> -DCKNN_BENCH_FILTER=<regex> -P bench_smoke.cmake
# Works identically against system Google Benchmark and the vendored shim.
if(NOT DEFINED CKNN_BENCH_BIN OR NOT DEFINED CKNN_BENCH_FILTER)
  message(FATAL_ERROR
    "bench_smoke.cmake requires -DCKNN_BENCH_BIN=<path> -DCKNN_BENCH_FILTER=<regex>")
endif()

set(ENV{CKNN_BENCH_SCALE} smoke)

execute_process(
  COMMAND ${CKNN_BENCH_BIN}
    --benchmark_filter=${CKNN_BENCH_FILTER}
    --benchmark_format=json
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE code)

if(NOT code EQUAL 0)
  message(FATAL_ERROR
    "${CKNN_BENCH_BIN} exited with ${code}\nstdout:\n${out}\nstderr:\n${err}")
endif()

string(FIND "${out}" "\"benchmarks\"" has_benchmarks)
if(has_benchmarks EQUAL -1)
  message(FATAL_ERROR
    "no \"benchmarks\" array in JSON output:\n${out}\nstderr:\n${err}")
endif()

# The filter must have matched at least one instance...
string(FIND "${out}" "\"run_type\"" has_entry)
if(has_entry EQUAL -1)
  message(FATAL_ERROR
    "filter '${CKNN_BENCH_FILTER}' matched no benchmark:\n${out}")
endif()

# ...and it must have completed with the counter the merge step requires.
string(FIND "${out}" "\"sec_per_ts\"" has_counter)
if(has_counter EQUAL -1)
  message(FATAL_ERROR
    "benchmark entry lacks the sec_per_ts counter (errored run?):\n${out}")
endif()

message(STATUS "bench smoke OK: ${CKNN_BENCH_FILTER}")

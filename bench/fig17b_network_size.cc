// Figure 17(b): per-timestamp CPU time vs network size (log y-axis in the
// paper). Paper: 1K..100K edges with N and Q proportional (10 objects and
// 0.5 queries per edge). At 10K edges the paper reports 0.3-0.6 s per
// timestamp for GMA/IMA.

#include "bench/bench_common.h"

namespace cknn::bench {
namespace {

void Fig17b(benchmark::State& state) {
  ExperimentSpec spec = DefaultSpec();
  const std::size_t edges = static_cast<std::size_t>(state.range(1)) * 1000;
  spec.network.target_edges = edges;
  spec.workload.num_objects = edges * 10;  // Paper: 10 objects per edge.
  spec.workload.num_queries = edges / 2 / Div();
  RunAndReport(state, AlgoOf(state.range(0)), spec);
}

// The 100K-edge point is only run at paper scale (it dominates runtime).
BENCHMARK(Fig17b)
    ->ArgNames({"algo", "edges_thousands"})
    ->ArgsProduct({{0, 1, 2}, {1, 5, 10, 50}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void Fig17bLarge(benchmark::State& state) {
  if (!PaperScale()) {
    state.SkipWithError("set CKNN_BENCH_SCALE=paper for the 100K point");
    return;
  }
  ExperimentSpec spec = DefaultSpec();
  spec.network.target_edges = 100000;
  spec.workload.num_objects = 1000000;
  spec.workload.num_queries = 50000;
  RunAndReport(state, AlgoOf(state.range(0)), spec);
}

BENCHMARK(Fig17bLarge)
    ->ArgNames({"algo"})
    ->ArgsProduct({{0, 1, 2}})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cknn::bench

#include "gtest/gtest.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if !defined(_WIN32)
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace testing {

std::string TempDir() {
  const char* tmp = std::getenv("TMPDIR");
  return (tmp != nullptr && tmp[0] != '\0') ? std::string(tmp) : "/tmp";
}

namespace internal {
namespace {

struct TestEntry {
  std::string suite;
  std::string name;
  TestFactory run;
  std::string full_name() const { return suite + "." + name; }
};

struct ShimState {
  std::vector<TestEntry> tests;
  std::vector<std::function<void()>> expanders;
  std::vector<std::string> traces;
  std::string filter = "*";
  // Per-test flags, reset before each run.
  bool current_failed = false;
  bool current_fatal = false;
};

ShimState& State() {
  static ShimState state;
  return state;
}

/// gtest-style wildcard match: '*' any run, '?' any char.
bool WildcardMatch(const char* pattern, const char* str) {
  if (*pattern == '\0') return *str == '\0';
  if (*pattern == '*') {
    return WildcardMatch(pattern + 1, str) ||
           (*str != '\0' && WildcardMatch(pattern, str + 1));
  }
  if (*str == '\0') return false;
  if (*pattern != '?' && *pattern != *str) return false;
  return WildcardMatch(pattern + 1, str + 1);
}

bool MatchesAnyPattern(const std::string& patterns, const std::string& name) {
  std::size_t start = 0;
  while (start <= patterns.size()) {
    std::size_t end = patterns.find(':', start);
    if (end == std::string::npos) end = patterns.size();
    const std::string pattern = patterns.substr(start, end - start);
    if (!pattern.empty() && WildcardMatch(pattern.c_str(), name.c_str())) {
      return true;
    }
    start = end + 1;
  }
  return false;
}

/// Filter string is `positive_patterns[-negative_patterns]`, both
/// colon-separated lists.
bool MatchesFilter(const std::string& filter, const std::string& name) {
  const std::size_t dash = filter.find('-');
  const std::string positive =
      dash == std::string::npos ? filter : filter.substr(0, dash);
  const std::string negative =
      dash == std::string::npos ? std::string() : filter.substr(dash + 1);
  if (!positive.empty() && positive != "*" &&
      !MatchesAnyPattern(positive, name)) {
    return false;
  }
  if (!negative.empty() && MatchesAnyPattern(negative, name)) return false;
  return true;
}

}  // namespace

bool RegisterTest(const std::string& suite, const std::string& name,
                  TestFactory run) {
  State().tests.push_back(TestEntry{suite, name, std::move(run)});
  return true;
}

bool RegisterExpander(std::function<void()> expander) {
  State().expanders.push_back(std::move(expander));
  return true;
}

bool CurrentTestHasFatalFailure() { return State().current_fatal; }

void PushTrace(const std::string& trace) { State().traces.push_back(trace); }
void PopTrace() {
  if (!State().traces.empty()) State().traces.pop_back();
}

void ReportFailure(bool fatal, const char* file, int line,
                   const std::string& summary) {
  ShimState& state = State();
  state.current_failed = true;
  if (fatal) state.current_fatal = true;
  std::fprintf(stderr, "%s:%d: Failure\n%s\n", file, line, summary.c_str());
  if (!state.traces.empty()) {
    std::fprintf(stderr, "Google Test trace:\n");
    for (auto it = state.traces.rbegin(); it != state.traces.rend(); ++it) {
      std::fprintf(stderr, "%s\n", it->c_str());
    }
  }
}

AssertionResult CmpHelperSTREQ(const char* lhs_text, const char* rhs_text,
                               const char* lhs, const char* rhs) {
  const bool equal = (lhs == nullptr || rhs == nullptr)
                         ? lhs == rhs
                         : std::strcmp(lhs, rhs) == 0;
  if (equal) return AssertionSuccess();
  std::ostringstream ss;
  ss << "Expected equality of these C strings:\n  " << lhs_text << "\n    \""
     << (lhs ? lhs : "(null)") << "\"\n  " << rhs_text << "\n    \""
     << (rhs ? rhs : "(null)") << "\"";
  return AssertionResult(false, ss.str());
}

AssertionResult CmpHelperNear(const char* lhs_text, const char* rhs_text,
                              const char* tol_text, double lhs, double rhs,
                              double tolerance) {
  const double diff = std::fabs(lhs - rhs);
  if (diff <= tolerance) return AssertionSuccess();
  std::ostringstream ss;
  ss << "The difference between " << lhs_text << " and " << rhs_text << " is "
     << diff << ", which exceeds " << tol_text << ", where\n  " << lhs_text
     << " evaluates to " << lhs << ",\n  " << rhs_text << " evaluates to "
     << rhs << ", and\n  " << tol_text << " evaluates to " << tolerance << ".";
  return AssertionResult(false, ss.str());
}

namespace {

/// Sign-and-magnitude bits to a biased ordering where ULP distance is the
/// integer difference (the standard gtest FloatingPoint trick).
std::uint64_t BiasedBits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  constexpr std::uint64_t kSignBit = 0x8000000000000000ull;
  return (bits & kSignBit) ? ~bits + 1 : kSignBit | bits;
}

bool AlmostEqualDoubles(double lhs, double rhs) {
  if (std::isnan(lhs) || std::isnan(rhs)) return false;
  const std::uint64_t a = BiasedBits(lhs);
  const std::uint64_t b = BiasedBits(rhs);
  const std::uint64_t distance = a >= b ? a - b : b - a;
  return distance <= 4;  // gtest's kMaxUlps
}

}  // namespace

AssertionResult CmpHelperDoubleEQ(const char* lhs_text, const char* rhs_text,
                                  double lhs, double rhs) {
  if (AlmostEqualDoubles(lhs, rhs)) return AssertionSuccess();
  std::ostringstream ss;
  ss.precision(17);
  ss << "Expected equality (4 ULPs) of:\n  " << lhs_text << "\n    which is "
     << lhs << "\n  " << rhs_text << "\n    which is " << rhs;
  return AssertionResult(false, ss.str());
}

void InitImpl(int* argc, char** argv) {
  if (argc == nullptr) return;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--gtest_filter=", 15) == 0) {
      State().filter = arg + 15;
    } else if (std::strcmp(arg, "--gtest_list_tests") == 0) {
      // Expand and list, then exit.
      for (auto& expander : State().expanders) expander();
      State().expanders.clear();
      std::string last_suite;
      for (const TestEntry& t : State().tests) {
        if (t.suite != last_suite) {
          std::printf("%s.\n", t.suite.c_str());
          last_suite = t.suite;
        }
        std::printf("  %s\n", t.name.c_str());
      }
      std::exit(0);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

int RunAllTestsImpl() {
  ShimState& state = State();
  for (auto& expander : state.expanders) expander();
  state.expanders.clear();

  std::vector<const TestEntry*> selected;
  for (const TestEntry& t : state.tests) {
    if (MatchesFilter(state.filter, t.full_name())) selected.push_back(&t);
  }

  std::printf("[==========] Running %zu tests (cknn gtest shim).\n",
              selected.size());
  std::vector<std::string> failed;
  for (const TestEntry* t : selected) {
    const std::string full = t->full_name();
    std::printf("[ RUN      ] %s\n", full.c_str());
    std::fflush(stdout);
    state.current_failed = false;
    state.current_fatal = false;
    state.traces.clear();
    t->run();
    if (state.current_failed) {
      failed.push_back(full);
      std::printf("[  FAILED  ] %s\n", full.c_str());
    } else {
      std::printf("[       OK ] %s\n", full.c_str());
    }
    std::fflush(stdout);
  }

  std::printf("[==========] %zu tests ran.\n", selected.size());
  std::printf("[  PASSED  ] %zu tests.\n", selected.size() - failed.size());
  if (!failed.empty()) {
    std::printf("[  FAILED  ] %zu tests, listed below:\n", failed.size());
    for (const std::string& name : failed) {
      std::printf("[  FAILED  ] %s\n", name.c_str());
    }
  }
  std::fflush(stdout);
  return failed.empty() ? 0 : 1;
}

bool StatementDies(const std::function<void()>& body, const char* pattern) {
#if defined(_WIN32)
  (void)body;
  (void)pattern;
  return true;  // No fork(); treat the death check as skipped.
#else
  // Sentinel exit code the child uses iff `body` *returned*; any other
  // termination (abort signal, different exit code) counts as death.
  constexpr int kSurvived = 23;
  std::fflush(nullptr);
  int fds[2];
  if (pipe(fds) != 0) return false;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return false;
  }
  if (pid == 0) {
    dup2(fds[1], 2);  // Capture the child's stderr for pattern matching.
    close(fds[0]);
    close(fds[1]);
    body();
    std::fflush(nullptr);
    _exit(kSurvived);
  }
  close(fds[1]);
  std::string output;
  char buf[4096];
  while (true) {
    const ssize_t n = read(fds[0], buf, sizeof(buf));
    if (n > 0) {
      output.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    // Retry interrupted reads (CTest timeout machinery and profilers
    // deliver signals); a truncated capture would spuriously fail the
    // pattern match even though the child died as expected.
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  close(fds[0]);
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return false;
  const bool died = !(WIFEXITED(status) && WEXITSTATUS(status) == kSurvived);
  const bool matched = pattern == nullptr || *pattern == '\0' ||
                       output.find(pattern) != std::string::npos;
  return died && matched;
#endif
}

}  // namespace internal

void InitGoogleTest(int* argc, char** argv) {
  internal::InitImpl(argc, argv);
}
void InitGoogleTest() {}

}  // namespace testing

#ifndef CKNN_THIRD_PARTY_GTEST_SHIM_GTEST_H_
#define CKNN_THIRD_PARTY_GTEST_SHIM_GTEST_H_

// Minimal GoogleTest-compatible shim, used only when a real GoogleTest
// cannot be found at configure time (offline builds). It implements the
// subset the cknn suites use:
//
//   TEST / TEST_F / TEST_P + INSTANTIATE_TEST_SUITE_P (Values, Combine,
//   custom name generators), EXPECT_* / ASSERT_* (boolean, comparison,
//   NEAR, DOUBLE_EQ, STREQ), SCOPED_TRACE, ::testing::TempDir, and a
//   gtest_main-style runner with --gtest_filter support.
//
// Output format follows gtest ([ RUN ] / [ OK ] / [ FAILED ]) so CTest
// logs look the same either way. Not thread-safe within one test binary
// (the suites are single-threaded).

#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace testing {

class Message {
 public:
  Message() = default;
  Message(const Message& other) { ss_ << other.GetString(); }
  template <typename T>
  Message& operator<<(const T& value) {
    ss_ << value;
    return *this;
  }
  std::string GetString() const { return ss_.str(); }

 private:
  std::ostringstream ss_;
};

class AssertionResult {
 public:
  AssertionResult(bool ok, std::string message)
      : ok_(ok), message_(std::move(message)) {}
  explicit operator bool() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  bool ok_;
  std::string message_;
};

inline AssertionResult AssertionSuccess() { return AssertionResult(true, ""); }
inline AssertionResult AssertionFailure() { return AssertionResult(false, ""); }

/// Directory for scratch files; the shim just uses /tmp.
std::string TempDir();

namespace internal {

// ------------------------------------------------------------- reporting --

constexpr bool kFatal = true;
constexpr bool kNonFatal = false;

/// Records a failure against the currently running test.
void ReportFailure(bool fatal, const char* file, int line,
                   const std::string& summary);

/// Death-test driver: forks, runs `body` in the child with stderr
/// captured, and returns true iff the child died (did not return from
/// `body`) and its stderr contains `pattern` as a plain substring (the
/// shim subset of gtest's regex matcher — keep patterns literal). On
/// platforms without fork() the check is skipped (returns true).
bool StatementDies(const std::function<void()>& body, const char* pattern);

/// True once the current test has recorded a fatal failure (used to skip
/// TestBody after a fatal failure in SetUp).
bool CurrentTestHasFatalFailure();

void PushTrace(const std::string& trace);
void PopTrace();

/// Commits a failure when assigned a Message (the `helper = Message() << ...`
/// trick lets assertion macros accept trailing `<< "context"` streams).
class AssertHelper {
 public:
  AssertHelper(bool fatal, const char* file, int line, std::string summary)
      : fatal_(fatal), file_(file), line_(line), summary_(std::move(summary)) {}
  void operator=(const Message& message) const {
    std::string text = summary_;
    const std::string user = message.GetString();
    if (!user.empty()) text += "\n" + user;
    ReportFailure(fatal_, file_, line_, text);
  }

 private:
  bool fatal_;
  const char* file_;
  int line_;
  std::string summary_;
};

// -------------------------------------------------------- value printing --

template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                            << std::declval<const T&>())>>
    : std::true_type {};

template <typename T>
std::string PrintValue(const T& value) {
  if constexpr (std::is_enum_v<T>) {
    std::ostringstream ss;
    ss << static_cast<std::underlying_type_t<T>>(value);
    return ss.str();
  } else if constexpr (IsStreamable<T>::value) {
    std::ostringstream ss;
    ss << value;
    return ss.str();
  } else {
    return "<unprintable value>";
  }
}

// ------------------------------------------------------------ comparisons --

template <typename A, typename B>
AssertionResult CmpFailure(const char* op, const char* lhs_text,
                           const char* rhs_text, const A& lhs, const B& rhs) {
  std::ostringstream ss;
  ss << "Expected: (" << lhs_text << ") " << op << " (" << rhs_text
     << "), actual: " << PrintValue(lhs) << " vs " << PrintValue(rhs);
  return AssertionResult(false, ss.str());
}

#define CKNN_GTEST_DEFINE_CMP_(name, op)                             \
  template <typename A, typename B>                                  \
  AssertionResult name(const char* lhs_text, const char* rhs_text,   \
                       const A& lhs, const B& rhs) {                 \
    if (lhs op rhs) return AssertionSuccess();                       \
    return CmpFailure(#op, lhs_text, rhs_text, lhs, rhs);            \
  }

CKNN_GTEST_DEFINE_CMP_(CmpHelperEQ, ==)
CKNN_GTEST_DEFINE_CMP_(CmpHelperNE, !=)
CKNN_GTEST_DEFINE_CMP_(CmpHelperLT, <)
CKNN_GTEST_DEFINE_CMP_(CmpHelperLE, <=)
CKNN_GTEST_DEFINE_CMP_(CmpHelperGT, >)
CKNN_GTEST_DEFINE_CMP_(CmpHelperGE, >=)
#undef CKNN_GTEST_DEFINE_CMP_

AssertionResult CmpHelperSTREQ(const char* lhs_text, const char* rhs_text,
                               const char* lhs, const char* rhs);
inline AssertionResult CmpHelperSTREQ(const char* lhs_text,
                                      const char* rhs_text,
                                      const std::string& lhs,
                                      const std::string& rhs) {
  return CmpHelperSTREQ(lhs_text, rhs_text, lhs.c_str(), rhs.c_str());
}

AssertionResult CmpHelperNear(const char* lhs_text, const char* rhs_text,
                              const char* tol_text, double lhs, double rhs,
                              double tolerance);

/// 4-ULP double comparison, matching gtest's EXPECT_DOUBLE_EQ.
AssertionResult CmpHelperDoubleEQ(const char* lhs_text, const char* rhs_text,
                                  double lhs, double rhs);

// ------------------------------------------------------------ registration --

using TestFactory = std::function<void()>;

/// Registers a concrete test; `run` constructs and runs the fixture.
bool RegisterTest(const std::string& suite, const std::string& name,
                  TestFactory run);

/// Deferred registrations (parameterized suites expand at RUN_ALL_TESTS
/// time so TEST_P / INSTANTIATE_TEST_SUITE_P static-init order is
/// irrelevant).
bool RegisterExpander(std::function<void()> expander);

int RunAllTestsImpl();
void InitImpl(int* argc, char** argv);

}  // namespace internal

// ----------------------------------------------------------------- fixture --

class Test {
 public:
  virtual ~Test() = default;

 protected:
  Test() = default;
  virtual void SetUp() {}
  virtual void TearDown() {}

 public:
  virtual void TestBody() = 0;
  /// True once the running test has recorded a fatal failure (gtest's
  /// static Test::HasFatalFailure, used to bail out of helper functions).
  static bool HasFatalFailure() {
    return internal::CurrentTestHasFatalFailure();
  }
  /// SetUp -> TestBody -> TearDown; a fatal failure in SetUp skips the body.
  void Run() {
    SetUp();
    if (!internal::CurrentTestHasFatalFailure()) TestBody();
    TearDown();
  }
};

template <typename T>
struct TestParamInfo {
  TestParamInfo(const T& p, std::size_t i) : param(p), index(i) {}
  T param;
  std::size_t index;
};

template <typename T>
class TestWithParam : public Test {
 public:
  using ParamType = T;
  static const ParamType& GetParam() { return *param_; }
  static void SetParam(const ParamType* param) { param_ = param; }

 private:
  static inline const ParamType* param_ = nullptr;
};

// -------------------------------------------------------------- generators --

template <typename... Ts>
class ValueArray {
 public:
  explicit ValueArray(Ts... values) : values_(std::move(values)...) {}
  template <typename T>
  operator std::vector<T>() const {  // NOLINT(runtime/explicit)
    return std::apply(
        [](const auto&... v) { return std::vector<T>{static_cast<T>(v)...}; },
        values_);
  }

 private:
  std::tuple<Ts...> values_;
};

template <typename... Ts>
ValueArray<Ts...> Values(Ts... values) {
  return ValueArray<Ts...>(std::move(values)...);
}

template <typename T>
class ValuesInGen {
 public:
  explicit ValuesInGen(std::vector<T> values) : values_(std::move(values)) {}
  template <typename U>
  operator std::vector<U>() const {  // NOLINT(runtime/explicit)
    return std::vector<U>(values_.begin(), values_.end());
  }

 private:
  std::vector<T> values_;
};

template <typename C>
auto ValuesIn(const C& container) {
  using T = typename C::value_type;
  return ValuesInGen<T>(std::vector<T>(container.begin(), container.end()));
}

inline ValuesInGen<bool> Bool() { return ValuesInGen<bool>({false, true}); }

template <typename... Gens>
class CombineGen {
 public:
  explicit CombineGen(Gens... gens) : gens_(std::move(gens)...) {}

  /// T must be a std::tuple<...> with one element per generator.
  template <typename T>
  operator std::vector<T>() const {  // NOLINT(runtime/explicit)
    std::vector<T> out;
    Expand<T>(out, std::make_index_sequence<sizeof...(Gens)>());
    return out;
  }

 private:
  template <typename T, std::size_t... Is>
  void Expand(std::vector<T>& out, std::index_sequence<Is...>) const {
    auto vectors = std::make_tuple(
        static_cast<std::vector<std::tuple_element_t<Is, T>>>(
            std::get<Is>(gens_))...);
    std::vector<T> acc{T{}};
    // Cartesian product, one axis at a time.
    (ExpandAxis<Is>(acc, std::get<Is>(vectors)), ...);
    out = std::move(acc);
  }

  template <std::size_t I, typename T, typename V>
  static void ExpandAxis(std::vector<T>& acc, const std::vector<V>& axis) {
    std::vector<T> next;
    next.reserve(acc.size() * axis.size());
    for (const T& partial : acc) {
      for (const V& v : axis) {
        T item = partial;
        std::get<I>(item) = v;
        next.push_back(std::move(item));
      }
    }
    acc = std::move(next);
  }

  std::tuple<Gens...> gens_;
};

template <typename... Gens>
CombineGen<Gens...> Combine(Gens... gens) {
  return CombineGen<Gens...>(std::move(gens)...);
}

namespace internal {

template <typename SuiteClass>
class ParamRegistry {
 public:
  using ParamType = typename SuiteClass::ParamType;
  using Factory = Test* (*)();
  using Namer = std::function<std::string(const TestParamInfo<ParamType>&)>;

  struct Pattern {
    const char* suite;
    const char* name;
    Factory factory;
  };

  static bool AddPattern(const char* suite, const char* name,
                         Factory factory) {
    Patterns().push_back(Pattern{suite, name, factory});
    return true;
  }

  template <typename Generator>
  static bool AddInstantiation(const char* prefix, Generator gen,
                               Namer namer = nullptr) {
    auto params = std::make_shared<std::vector<ParamType>>(
        static_cast<std::vector<ParamType>>(gen));
    RegisterExpander([prefix, params, namer] {
      for (const Pattern& pattern : Patterns()) {
        for (std::size_t i = 0; i < params->size(); ++i) {
          std::string label =
              namer ? namer(TestParamInfo<ParamType>((*params)[i], i))
                    : std::to_string(i);
          Factory factory = pattern.factory;
          // The runner shares ownership of the param vector: expanders are
          // destroyed before the tests run, so a raw pointer would dangle.
          RegisterTest(std::string(prefix) + "/" + pattern.suite,
                       std::string(pattern.name) + "/" + label,
                       [factory, params, i] {
                         SuiteClass::SetParam(&(*params)[i]);
                         std::unique_ptr<Test> test(factory());
                         test->Run();
                       });
        }
      }
    });
    return true;
  }

 private:
  static std::vector<Pattern>& Patterns() {
    static std::vector<Pattern> patterns;
    return patterns;
  }
};

}  // namespace internal

class ScopedTrace {
 public:
  ScopedTrace(const char* file, int line, const std::string& message) {
    std::ostringstream ss;
    ss << file << ":" << line << ": " << message;
    internal::PushTrace(ss.str());
  }
  ~ScopedTrace() { internal::PopTrace(); }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
};

void InitGoogleTest(int* argc, char** argv);
void InitGoogleTest();

}  // namespace testing

inline int RUN_ALL_TESTS() { return ::testing::internal::RunAllTestsImpl(); }

// ------------------------------------------------------------------ macros --

#define GTEST_TEST_CLASS_NAME_(suite, name) suite##_##name##_Test

#define CKNN_GTEST_AMBIGUOUS_ELSE_BLOCKER_ \
  switch (0)                               \
  case 0:                                  \
  default:

#define CKNN_GTEST_NONFATAL_(summary)                                   \
  ::testing::internal::AssertHelper(::testing::internal::kNonFatal,     \
                                    __FILE__, __LINE__, summary) =      \
      ::testing::Message()

#define CKNN_GTEST_FATAL_(summary)                                    \
  return ::testing::internal::AssertHelper(::testing::internal::kFatal, \
                                           __FILE__, __LINE__, summary) = \
      ::testing::Message()

#define CKNN_GTEST_BOOLEAN_(expr, text, expected, fail)      \
  CKNN_GTEST_AMBIGUOUS_ELSE_BLOCKER_                         \
  if (static_cast<bool>(expr) == (expected))                 \
    ;                                                        \
  else                                                       \
    fail("Value of: " text "\n  Actual: " #expected          \
         " was expected, got the opposite")

#define EXPECT_TRUE(expr) \
  CKNN_GTEST_BOOLEAN_(expr, #expr, true, CKNN_GTEST_NONFATAL_)
#define EXPECT_FALSE(expr) \
  CKNN_GTEST_BOOLEAN_(expr, #expr, false, CKNN_GTEST_NONFATAL_)
#define ASSERT_TRUE(expr) \
  CKNN_GTEST_BOOLEAN_(expr, #expr, true, CKNN_GTEST_FATAL_)
#define ASSERT_FALSE(expr) \
  CKNN_GTEST_BOOLEAN_(expr, #expr, false, CKNN_GTEST_FATAL_)

#define CKNN_GTEST_CMP_(helper, lhs, rhs, fail)                              \
  CKNN_GTEST_AMBIGUOUS_ELSE_BLOCKER_                                         \
  if (const ::testing::AssertionResult cknn_gtest_ar =                       \
          ::testing::internal::helper(#lhs, #rhs, lhs, rhs))                 \
    ;                                                                        \
  else                                                                       \
    fail(cknn_gtest_ar.message())

#define EXPECT_EQ(a, b) CKNN_GTEST_CMP_(CmpHelperEQ, a, b, CKNN_GTEST_NONFATAL_)
#define EXPECT_NE(a, b) CKNN_GTEST_CMP_(CmpHelperNE, a, b, CKNN_GTEST_NONFATAL_)
#define EXPECT_LT(a, b) CKNN_GTEST_CMP_(CmpHelperLT, a, b, CKNN_GTEST_NONFATAL_)
#define EXPECT_LE(a, b) CKNN_GTEST_CMP_(CmpHelperLE, a, b, CKNN_GTEST_NONFATAL_)
#define EXPECT_GT(a, b) CKNN_GTEST_CMP_(CmpHelperGT, a, b, CKNN_GTEST_NONFATAL_)
#define EXPECT_GE(a, b) CKNN_GTEST_CMP_(CmpHelperGE, a, b, CKNN_GTEST_NONFATAL_)
#define EXPECT_STREQ(a, b) \
  CKNN_GTEST_CMP_(CmpHelperSTREQ, a, b, CKNN_GTEST_NONFATAL_)
#define EXPECT_DOUBLE_EQ(a, b) \
  CKNN_GTEST_CMP_(CmpHelperDoubleEQ, a, b, CKNN_GTEST_NONFATAL_)

#define ASSERT_EQ(a, b) CKNN_GTEST_CMP_(CmpHelperEQ, a, b, CKNN_GTEST_FATAL_)
#define ASSERT_NE(a, b) CKNN_GTEST_CMP_(CmpHelperNE, a, b, CKNN_GTEST_FATAL_)
#define ASSERT_LT(a, b) CKNN_GTEST_CMP_(CmpHelperLT, a, b, CKNN_GTEST_FATAL_)
#define ASSERT_LE(a, b) CKNN_GTEST_CMP_(CmpHelperLE, a, b, CKNN_GTEST_FATAL_)
#define ASSERT_GT(a, b) CKNN_GTEST_CMP_(CmpHelperGT, a, b, CKNN_GTEST_FATAL_)
#define ASSERT_GE(a, b) CKNN_GTEST_CMP_(CmpHelperGE, a, b, CKNN_GTEST_FATAL_)
#define ASSERT_STREQ(a, b) \
  CKNN_GTEST_CMP_(CmpHelperSTREQ, a, b, CKNN_GTEST_FATAL_)
#define ASSERT_DOUBLE_EQ(a, b) \
  CKNN_GTEST_CMP_(CmpHelperDoubleEQ, a, b, CKNN_GTEST_FATAL_)

#define CKNN_GTEST_NEAR_(a, b, tol, fail)                                 \
  CKNN_GTEST_AMBIGUOUS_ELSE_BLOCKER_                                      \
  if (const ::testing::AssertionResult cknn_gtest_ar =                    \
          ::testing::internal::CmpHelperNear(#a, #b, #tol, a, b, tol))    \
    ;                                                                     \
  else                                                                    \
    fail(cknn_gtest_ar.message())

#define EXPECT_NEAR(a, b, tol) CKNN_GTEST_NEAR_(a, b, tol, CKNN_GTEST_NONFATAL_)
#define ASSERT_NEAR(a, b, tol) CKNN_GTEST_NEAR_(a, b, tol, CKNN_GTEST_FATAL_)

#define EXPECT_DEATH(stmt, pattern)                                       \
  CKNN_GTEST_AMBIGUOUS_ELSE_BLOCKER_                                      \
  if (::testing::internal::StatementDies([&]() { stmt; }, pattern))       \
    ;                                                                     \
  else                                                                    \
    CKNN_GTEST_NONFATAL_(                                                 \
        "Expected statement to die with stderr containing \"" pattern     \
        "\": " #stmt)
#define ASSERT_DEATH(stmt, pattern)                                       \
  CKNN_GTEST_AMBIGUOUS_ELSE_BLOCKER_                                      \
  if (::testing::internal::StatementDies([&]() { stmt; }, pattern))       \
    ;                                                                     \
  else                                                                    \
    CKNN_GTEST_FATAL_(                                                    \
        "Expected statement to die with stderr containing \"" pattern     \
        "\": " #stmt)

#define ADD_FAILURE() CKNN_GTEST_NONFATAL_("Failed")
#define FAIL() CKNN_GTEST_FATAL_("Failed")
#define SUCCEED() \
  CKNN_GTEST_AMBIGUOUS_ELSE_BLOCKER_ if (true);

#define SCOPED_TRACE(message)                                        \
  ::testing::ScopedTrace CKNN_GTEST_CONCAT_(cknn_gtest_trace_,       \
                                            __LINE__)(               \
      __FILE__, __LINE__, (::testing::Message() << (message)).GetString())
#define CKNN_GTEST_CONCAT_(a, b) CKNN_GTEST_CONCAT_IMPL_(a, b)
#define CKNN_GTEST_CONCAT_IMPL_(a, b) a##b

#define CKNN_GTEST_DEFINE_TEST_(suite, name, parent)                       \
  class GTEST_TEST_CLASS_NAME_(suite, name) : public parent {              \
   public:                                                                 \
    void TestBody() override;                                              \
    static const bool cknn_gtest_registered_;                              \
  };                                                                       \
  const bool GTEST_TEST_CLASS_NAME_(suite, name)::cknn_gtest_registered_ = \
      ::testing::internal::RegisterTest(#suite, #name, [] {                \
        GTEST_TEST_CLASS_NAME_(suite, name) test;                          \
        test.Run();                                                        \
      });                                                                  \
  void GTEST_TEST_CLASS_NAME_(suite, name)::TestBody()

#define TEST(suite, name) CKNN_GTEST_DEFINE_TEST_(suite, name, ::testing::Test)
#define TEST_F(fixture, name) CKNN_GTEST_DEFINE_TEST_(fixture, name, fixture)

#define TEST_P(suite, name)                                                \
  class GTEST_TEST_CLASS_NAME_(suite, name) : public suite {               \
   public:                                                                 \
    void TestBody() override;                                              \
    static const bool cknn_gtest_registered_;                              \
  };                                                                       \
  const bool GTEST_TEST_CLASS_NAME_(suite, name)::cknn_gtest_registered_ = \
      ::testing::internal::ParamRegistry<suite>::AddPattern(               \
          #suite, #name, +[]() -> ::testing::Test* {                       \
            return new GTEST_TEST_CLASS_NAME_(suite, name);                \
          });                                                              \
  void GTEST_TEST_CLASS_NAME_(suite, name)::TestBody()

#define INSTANTIATE_TEST_SUITE_P(prefix, suite, ...)                     \
  static const bool CKNN_GTEST_CONCAT_(cknn_gtest_inst_, __LINE__) =     \
      ::testing::internal::ParamRegistry<suite>::AddInstantiation(       \
          #prefix, __VA_ARGS__)
#define INSTANTIATE_TEST_CASE_P INSTANTIATE_TEST_SUITE_P

#endif  // CKNN_THIRD_PARTY_GTEST_SHIM_GTEST_H_

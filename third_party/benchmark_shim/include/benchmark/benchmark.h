#ifndef CKNN_THIRD_PARTY_BENCHMARK_SHIM_BENCHMARK_H_
#define CKNN_THIRD_PARTY_BENCHMARK_SHIM_BENCHMARK_H_

// Minimal Google-Benchmark-compatible shim, used only when a real Google
// Benchmark cannot be found at configure time (offline builds). It
// implements the subset the bench/ figures use:
//
//   BENCHMARK(fn) with ArgNames / ArgsProduct / Args / Arg / Iterations /
//   UseManualTime / Unit, State (range-for iteration, range(i),
//   SetIterationTime, SetLabel, SkipWithError, counters), BENCHMARK_MAIN,
//   --benchmark_filter, and --benchmark_format=console|json.
//
// Instance names ("Fig13a/algo:2/N_thousands:10/iterations:1/manual_time")
// and the JSON document shape (context object, "benchmarks" array with
// counters inlined as top-level keys, error_occurred/error_message on
// skipped runs) follow Google Benchmark 1.7 so scripts/bench_merge.py
// cannot tell the flavors apart. Not thread-safe within one binary (the
// figures are single-threaded).

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

/// User counter; implicit construction from double makes
/// `state.counters["x"] = 1.0` work like the real library.
struct Counter {
  Counter(double v = 0.0) : value(v) {}  // NOLINT(runtime/explicit)
  operator double() const { return value; }  // NOLINT(runtime/explicit)
  double value;
};

using UserCounters = std::map<std::string, Counter>;

namespace internal {
class BenchmarkRunner;
}  // namespace internal

class State {
 public:
  /// Range-for protocol: `for (auto _ : state)` runs the configured number
  /// of iterations, stopping early after SkipWithError.
  struct Value {};
  class StateIterator {
   public:
    explicit StateIterator(State* state) : state_(state) {}
    Value operator*() const { return Value(); }
    StateIterator& operator++() { return *this; }
    bool operator!=(const StateIterator&) const {
      return state_->KeepRunning();
    }

   private:
    State* state_;
  };

  StateIterator begin() { return StateIterator(this); }
  StateIterator end() { return StateIterator(this); }

  /// The index-th argument of the current instance (aborts if out of range,
  /// mirroring the real library's CHECK).
  std::int64_t range(std::size_t index = 0) const;

  /// Manual-time mode: accumulates the reported time of this iteration.
  void SetIterationTime(double seconds) { manual_seconds_ += seconds; }

  void SetLabel(const std::string& label) { label_ = label; }

  /// Marks the whole run as errored; remaining iterations are skipped and
  /// the run is reported with error_occurred/error_message.
  void SkipWithError(const std::string& message) {
    skipped_ = true;
    if (error_message_.empty()) error_message_ = message;
  }

  bool error_occurred() const { return skipped_; }

  UserCounters counters;

 private:
  friend class internal::BenchmarkRunner;

  State(std::vector<std::int64_t> ranges, std::int64_t max_iterations)
      : ranges_(std::move(ranges)), max_iterations_(max_iterations) {}

  bool KeepRunning() {
    if (skipped_ || completed_ >= max_iterations_) return false;
    ++completed_;
    return true;
  }

  std::vector<std::int64_t> ranges_;
  std::int64_t max_iterations_;
  std::int64_t completed_ = 0;
  double manual_seconds_ = 0.0;
  bool skipped_ = false;
  std::string error_message_;
  std::string label_;
};

namespace internal {

using BenchmarkFunc = void (*)(State&);

/// Builder returned by BENCHMARK(); mirrors the google/benchmark fluent
/// interface for the subset bench/ uses. Every setter returns `this`.
class Benchmark {
 public:
  Benchmark(std::string name, BenchmarkFunc func)
      : name_(std::move(name)), func_(func) {}

  Benchmark* ArgNames(const std::vector<std::string>& names) {
    arg_names_ = names;
    return this;
  }

  /// Cartesian product of the per-axis value lists, first axis slowest.
  Benchmark* ArgsProduct(
      const std::vector<std::vector<std::int64_t>>& product) {
    std::vector<std::vector<std::int64_t>> expanded{{}};
    for (const std::vector<std::int64_t>& axis : product) {
      std::vector<std::vector<std::int64_t>> next;
      next.reserve(expanded.size() * axis.size());
      for (const std::vector<std::int64_t>& partial : expanded) {
        for (std::int64_t value : axis) {
          std::vector<std::int64_t> item = partial;
          item.push_back(value);
          next.push_back(std::move(item));
        }
      }
      expanded = std::move(next);
    }
    for (std::vector<std::int64_t>& args : expanded) {
      arg_lists_.push_back(std::move(args));
    }
    return this;
  }

  Benchmark* Args(const std::vector<std::int64_t>& args) {
    arg_lists_.push_back(args);
    return this;
  }

  Benchmark* Arg(std::int64_t arg) {
    arg_lists_.push_back({arg});
    return this;
  }

  Benchmark* Iterations(std::int64_t iterations) {
    iterations_ = iterations;
    explicit_iterations_ = true;
    return this;
  }

  Benchmark* UseManualTime() {
    manual_time_ = true;
    return this;
  }

  Benchmark* Unit(TimeUnit unit) {
    unit_ = unit;
    return this;
  }

 private:
  friend class BenchmarkRunner;

  std::string name_;
  BenchmarkFunc func_;
  std::vector<std::string> arg_names_;
  std::vector<std::vector<std::int64_t>> arg_lists_;
  std::int64_t iterations_ = 1;
  bool explicit_iterations_ = false;
  bool manual_time_ = false;
  TimeUnit unit_ = kNanosecond;
};

/// Registers a benchmark family; the returned pointer stays owned by the
/// global registry and valid for the builder-chain assignment.
Benchmark* RegisterBenchmarkInternal(const char* name, BenchmarkFunc func);

}  // namespace internal

/// Parses and removes --benchmark_* flags from argv (exits on malformed
/// values, like the real library).
void Initialize(int* argc, char** argv);

/// True (after printing to stderr) if any non-flag arguments remain.
bool ReportUnrecognizedArguments(int argc, char** argv);

/// Runs every registered instance matching --benchmark_filter and reports
/// in the configured format; returns the number of instances run.
std::size_t RunSpecifiedBenchmarks();

void Shutdown();

}  // namespace benchmark

#define CKNN_BENCHMARK_CONCAT_IMPL_(a, b) a##b
#define CKNN_BENCHMARK_CONCAT_(a, b) CKNN_BENCHMARK_CONCAT_IMPL_(a, b)

#define BENCHMARK(fn)                                       \
  [[maybe_unused]] static ::benchmark::internal::Benchmark* \
      CKNN_BENCHMARK_CONCAT_(cknn_benchmark_, __LINE__) =   \
          ::benchmark::internal::RegisterBenchmarkInternal(#fn, fn)

#define BENCHMARK_MAIN()                                                \
  int main(int argc, char** argv) {                                     \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    return 0;                                                           \
  }

#endif  // CKNN_THIRD_PARTY_BENCHMARK_SHIM_BENCHMARK_H_

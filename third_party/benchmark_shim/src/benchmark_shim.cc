#include "benchmark/benchmark.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <regex>
#include <thread>

namespace benchmark {
namespace {

struct Flags {
  std::string filter;
  std::string format = "console";      // console | json
  std::string out_path;                // --benchmark_out=<file>
  std::string out_format = "json";     // --benchmark_out_format=
  bool list_tests = false;
  std::string executable;
};

Flags& GetFlags() {
  static Flags flags;
  return flags;
}

std::vector<std::unique_ptr<internal::Benchmark>>& Registry() {
  static std::vector<std::unique_ptr<internal::Benchmark>> registry;
  return registry;
}

const char* UnitString(TimeUnit unit) {
  switch (unit) {
    case kNanosecond:
      return "ns";
    case kMicrosecond:
      return "us";
    case kMillisecond:
      return "ms";
    case kSecond:
      return "s";
  }
  return "ns";
}

double UnitMultiplier(TimeUnit unit) {
  switch (unit) {
    case kNanosecond:
      return 1e9;
    case kMicrosecond:
      return 1e6;
    case kMillisecond:
      return 1e3;
    case kSecond:
      return 1.0;
  }
  return 1e9;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double CpuSeconds() {
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

/// One result row, already converted to the benchmark's time unit.
struct RunResult {
  std::string name;
  std::size_t family_index = 0;
  std::size_t instance_index = 0;
  std::int64_t iterations = 0;
  double real_time = 0.0;
  double cpu_time = 0.0;
  const char* time_unit = "ns";
  std::string label;
  UserCounters counters;
  bool error_occurred = false;
  std::string error_message;
};

}  // namespace

std::int64_t State::range(std::size_t index) const {
  if (index >= ranges_.size()) {
    std::fprintf(stderr,
                 "benchmark_shim: State::range(%zu) out of bounds (%zu args)\n",
                 index, ranges_.size());
    std::abort();
  }
  return ranges_[index];
}

namespace internal {

Benchmark* RegisterBenchmarkInternal(const char* name, BenchmarkFunc func) {
  Registry().push_back(std::make_unique<Benchmark>(name, func));
  return Registry().back().get();
}

/// Expands families into named instances, runs them, and reports.
class BenchmarkRunner {
 public:
  /// A family registered without args still gets one (argless) instance.
  static std::vector<std::vector<std::int64_t>> Instances(
      const Benchmark& family) {
    if (family.arg_lists_.empty()) return {{}};
    return family.arg_lists_;
  }

  static std::string InstanceName(const Benchmark& family,
                                  const std::vector<std::int64_t>& args) {
    std::string name = family.name_;
    for (std::size_t i = 0; i < args.size(); ++i) {
      name += '/';
      if (i < family.arg_names_.size() && !family.arg_names_[i].empty()) {
        name += family.arg_names_[i] + ':';
      }
      name += std::to_string(args[i]);
    }
    if (family.explicit_iterations_) {
      name += "/iterations:" + std::to_string(family.iterations_);
    }
    if (family.manual_time_) name += "/manual_time";
    return name;
  }

  static RunResult Run(const Benchmark& family, std::size_t family_index,
                       std::size_t instance_index,
                       const std::vector<std::int64_t>& args) {
    RunResult result;
    result.name = InstanceName(family, args);
    result.family_index = family_index;
    result.instance_index = instance_index;
    result.time_unit = UnitString(family.unit_);

    State state(args, family.iterations_);
    const double cpu_before = CpuSeconds();
    const auto wall_before = std::chrono::steady_clock::now();
    family.func_(state);
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_before)
            .count();
    const double cpu_seconds = CpuSeconds() - cpu_before;

    result.iterations = state.completed_;
    result.label = state.label_;
    result.counters = state.counters;
    if (state.skipped_) {
      result.error_occurred = true;
      result.error_message = state.error_message_;
      result.iterations = 0;
      return result;
    }
    const double denom =
        result.iterations > 0 ? static_cast<double>(result.iterations) : 1.0;
    const double real_seconds =
        family.manual_time_ ? state.manual_seconds_ : wall_seconds;
    const double scale = UnitMultiplier(family.unit_);
    result.real_time = real_seconds / denom * scale;
    result.cpu_time = cpu_seconds / denom * scale;
    return result;
  }
};

}  // namespace internal

void Initialize(int* argc, char** argv) {
  Flags& flags = GetFlags();
  if (*argc > 0) flags.executable = argv[0];
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--benchmark_filter=")) {
      flags.filter = v;
    } else if (const char* v = value_of("--benchmark_format=")) {
      if (std::strcmp(v, "console") != 0 && std::strcmp(v, "json") != 0) {
        std::fprintf(stderr,
                     "benchmark_shim: unsupported --benchmark_format=%s "
                     "(console|json)\n",
                     v);
        std::exit(1);
      }
      flags.format = v;
    } else if (const char* v = value_of("--benchmark_out=")) {
      flags.out_path = v;
    } else if (const char* v = value_of("--benchmark_out_format=")) {
      flags.out_format = v;
    } else if (value_of("--benchmark_color=") != nullptr ||
               value_of("--benchmark_counters_tabular=") != nullptr) {
      // Accepted and ignored: cosmetic in the real library.
    } else if (arg == "--benchmark_list_tests" ||
               arg == "--benchmark_list_tests=true") {
      flags.list_tests = true;
    } else {
      argv[kept++] = argv[i];  // Left for ReportUnrecognizedArguments.
    }
  }
  *argc = kept;
}

bool ReportUnrecognizedArguments(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::fprintf(stderr, "%s: unrecognized command-line flag: %s\n",
                 GetFlags().executable.c_str(), argv[i]);
  }
  return argc > 1;
}

namespace {

void PrintContext(std::FILE* out) {
  char date[64] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm tm_buf;
#if defined(_WIN32)
  localtime_s(&tm_buf, &now);
#else
  localtime_r(&now, &tm_buf);
#endif
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S%z", &tm_buf);
  std::fprintf(out,
               "{\n"
               "  \"context\": {\n"
               "    \"date\": \"%s\",\n"
               "    \"executable\": \"%s\",\n"
               "    \"num_cpus\": %u,\n"
               "    \"mhz_per_cpu\": 0,\n"
               "    \"cpu_scaling_enabled\": false,\n"
               "    \"caches\": [\n"
               "    ],\n"
               "    \"library_build_type\": \"cknn-benchmark-shim\"\n"
               "  },\n",
               date, JsonEscape(GetFlags().executable).c_str(),
               std::thread::hardware_concurrency());
}

void PrintJson(std::FILE* out, const std::vector<RunResult>& results) {
  PrintContext(out);
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(out,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"family_index\": %zu,\n"
                 "      \"per_family_instance_index\": %zu,\n"
                 "      \"run_name\": \"%s\",\n"
                 "      \"run_type\": \"iteration\",\n"
                 "      \"repetitions\": 1,\n"
                 "      \"repetition_index\": 0,\n"
                 "      \"threads\": 1,\n",
                 JsonEscape(r.name).c_str(), r.family_index, r.instance_index,
                 JsonEscape(r.name).c_str());
    if (r.error_occurred) {
      std::fprintf(out,
                   "      \"error_occurred\": true,\n"
                   "      \"error_message\": \"%s\",\n",
                   JsonEscape(r.error_message).c_str());
    }
    std::fprintf(out,
                 "      \"iterations\": %lld,\n"
                 "      \"real_time\": %.9e,\n"
                 "      \"cpu_time\": %.9e,\n"
                 "      \"time_unit\": \"%s\"",
                 static_cast<long long>(r.iterations), r.real_time, r.cpu_time,
                 r.time_unit);
    for (const auto& [key, counter] : r.counters) {
      std::fprintf(out, ",\n      \"%s\": %.9e", JsonEscape(key).c_str(),
                   counter.value);
    }
    if (!r.label.empty()) {
      std::fprintf(out, ",\n      \"label\": \"%s\"",
                   JsonEscape(r.label).c_str());
    }
    std::fprintf(out, "\n    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

void PrintConsole(std::FILE* out, const std::vector<RunResult>& results) {
  std::fprintf(out, "%-64s %16s %16s\n", "Benchmark", "Time", "CPU");
  std::fprintf(out,
               "-----------------------------------------------------------"
               "---------------------------------------\n");
  for (const RunResult& r : results) {
    if (r.error_occurred) {
      std::fprintf(out, "%-64s ERROR: %s\n", r.name.c_str(),
                   r.error_message.c_str());
      continue;
    }
    std::fprintf(out, "%-64s %13.3f %s %13.3f %s", r.name.c_str(), r.real_time,
                 r.time_unit, r.cpu_time, r.time_unit);
    for (const auto& [key, counter] : r.counters) {
      std::fprintf(out, " %s=%g", key.c_str(), counter.value);
    }
    if (!r.label.empty()) std::fprintf(out, " %s", r.label.c_str());
    std::fprintf(out, "\n");
  }
}

}  // namespace

std::size_t RunSpecifiedBenchmarks() {
  const Flags& flags = GetFlags();
  std::regex filter;
  if (!flags.filter.empty()) {
    try {
      filter = std::regex(flags.filter);
    } catch (const std::regex_error& e) {
      std::fprintf(stderr, "benchmark_shim: bad --benchmark_filter: %s\n",
                   e.what());
      std::exit(1);
    }
  }

  std::vector<RunResult> results;
  std::size_t family_index = 0;
  for (const auto& family : Registry()) {
    const std::vector<std::vector<std::int64_t>> instances =
        internal::BenchmarkRunner::Instances(*family);
    std::size_t instance_index = 0;
    for (const std::vector<std::int64_t>& args : instances) {
      const std::string name =
          internal::BenchmarkRunner::InstanceName(*family, args);
      if (!flags.filter.empty() && !std::regex_search(name, filter)) continue;
      if (flags.list_tests) {
        std::printf("%s\n", name.c_str());
        ++instance_index;
        continue;
      }
      results.push_back(internal::BenchmarkRunner::Run(
          *family, family_index, instance_index++, args));
    }
    ++family_index;
  }
  if (flags.list_tests) return 0;

  if (flags.format == "json") {
    PrintJson(stdout, results);
  } else {
    PrintConsole(stdout, results);
  }
  if (!flags.out_path.empty()) {
    if (flags.out_format != "json") {
      std::fprintf(stderr,
                   "benchmark_shim: only --benchmark_out_format=json is "
                   "supported\n");
      std::exit(1);
    }
    std::FILE* f = std::fopen(flags.out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "benchmark_shim: cannot open %s\n",
                   flags.out_path.c_str());
      std::exit(1);
    }
    PrintJson(f, results);
    std::fclose(f);
  }
  return results.size();
}

void Shutdown() {}

}  // namespace benchmark

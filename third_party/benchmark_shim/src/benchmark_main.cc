// benchmark_main-equivalent: the default main() for shim-linked figures.
#include "benchmark/benchmark.h"

BENCHMARK_MAIN();

// Quickstart: build a toy road network by hand, register a continuous 2-NN
// query, and watch the result change as objects move, the query moves, and
// an edge gets congested.
//
//   n0 --- n1 --- n2
//    |      |      |
//   n3 --- n4 --- n5
//
// Run: ./quickstart

#include <cstdio>
#include <cstdlib>

#include "src/core/server.h"

using cknn::Algorithm;
using cknn::MonitoringServer;
using cknn::NetworkPoint;
using cknn::Point;
using cknn::RoadNetwork;

namespace {

void PrintResult(const MonitoringServer& server, cknn::QueryId q) {
  const auto* result = server.ResultOf(q);
  if (result == nullptr) {
    std::printf("  query %u: (not registered)\n", q);
    return;
  }
  std::printf("  query %u 2-NNs:", q);
  for (const cknn::Neighbor& nb : *result) {
    std::printf("  object %u @ %.2f", nb.id, nb.distance);
  }
  std::printf("\n");
}

// Demo-grade error handling: every update in this walkthrough is valid by
// construction, so a failure is a broken example — print and bail.
void MustOk(cknn::Status status, const char* what) {
  if (!status.ok()) {
    std::printf("%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // 1. Build the network (weights default to Euclidean lengths).
  RoadNetwork net;
  const cknn::NodeId n0 = net.AddNode(Point{0, 1});
  const cknn::NodeId n1 = net.AddNode(Point{1, 1});
  const cknn::NodeId n2 = net.AddNode(Point{2, 1});
  const cknn::NodeId n3 = net.AddNode(Point{0, 0});
  const cknn::NodeId n4 = net.AddNode(Point{1, 0});
  const cknn::NodeId n5 = net.AddNode(Point{2, 0});
  const cknn::EdgeId top_left = *net.AddEdge(n0, n1);
  const cknn::EdgeId top_right = *net.AddEdge(n1, n2);
  *net.AddEdge(n0, n3);
  const cknn::EdgeId middle = *net.AddEdge(n1, n4);
  *net.AddEdge(n2, n5);
  const cknn::EdgeId bottom_left = *net.AddEdge(n3, n4);
  const cknn::EdgeId bottom_right = *net.AddEdge(n4, n5);

  // 2. Start a server with the incremental monitoring algorithm.
  MonitoringServer server(std::move(net), Algorithm::kIma);

  // 3. Objects appear; a continuous 2-NN query is installed mid-edge.
  MustOk(server.AddObject(/*id=*/0, NetworkPoint{top_right, 0.5}), "add");
  MustOk(server.AddObject(/*id=*/1, NetworkPoint{bottom_left, 0.25}), "add");
  MustOk(server.AddObject(/*id=*/2, NetworkPoint{bottom_right, 0.8}), "add");
  MustOk(server.InstallQuery(/*id=*/7, NetworkPoint{top_left, 0.5}, /*k=*/2),
         "install");
  std::printf("after install:\n");
  PrintResult(server, 7);

  // 4. An object moves closer — the result updates incrementally.
  MustOk(server.MoveObject(2, NetworkPoint{middle, 0.3}), "move");
  std::printf("after object 2 moves onto the middle edge:\n");
  PrintResult(server, 7);

  // 5. Congestion: the middle edge's travel cost triples.
  MustOk(server.UpdateEdgeWeight(middle,
                                 server.network().edge(middle).weight * 3),
         "congest");
  std::printf("after congestion on the middle edge:\n");
  PrintResult(server, 7);

  // 6. The query itself drives east.
  MustOk(server.MoveQuery(7, NetworkPoint{top_right, 0.9}), "move query");
  std::printf("after the query moves east:\n");
  PrintResult(server, 7);

  // 7. Batched updates (one timestamp, mixed types) — the normal mode.
  cknn::UpdateBatch batch;
  batch.objects.push_back(cknn::ObjectUpdate{
      1, server.objects().Position(1).value(),
      NetworkPoint{top_right, 0.2}});
  batch.edges.push_back(cknn::EdgeUpdate{
      middle, server.network().edge(middle).weight / 3});
  if (cknn::Status st = server.Tick(batch); !st.ok()) {
    std::printf("tick failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("after one batched timestamp:\n");
  PrintResult(server, 7);
  return 0;
}

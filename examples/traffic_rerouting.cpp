// Traffic-aware monitoring: nothing moves — only edge weights fluctuate
// with congestion — yet k-NN results keep changing, the situation no
// Euclidean method can handle (Section 1). Service vans (queries) monitor
// their 5 closest job sites (objects) by travel time while 8% of the roads
// change cost every timestamp; IMA processes only the affecting updates.
//
// Run: ./traffic_rerouting [timestamps=30]

#include <cstdio>
#include <cstdlib>

#include "src/core/ima.h"
#include "src/core/server.h"
#include "src/gen/network_gen.h"
#include "src/gen/placement.h"
#include "src/gen/weight_gen.h"
#include "src/util/rng.h"

using namespace cknn;

int main(int argc, char** argv) {
  const int timestamps = argc > 1 ? std::atoi(argv[1]) : 30;
  RoadNetwork city = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 2000, .seed = 7});
  MonitoringServer server(std::move(city), Algorithm::kIma);
  const RoadNetwork& net = server.network();
  Rng rng(3);

  std::vector<NetworkPoint> sites = PlaceEntities(
      net, server.spatial_index(), Distribution::kUniform, 600, 0.1, &rng);
  std::vector<NetworkPoint> vans = PlaceEntities(
      net, server.spatial_index(), Distribution::kUniform, 40, 0.1, &rng);
  UpdateBatch setup;
  for (ObjectId i = 0; i < sites.size(); ++i) {
    setup.objects.push_back(ObjectUpdate{i, std::nullopt, sites[i]});
  }
  for (QueryId v = 0; v < vans.size(); ++v) {
    setup.queries.push_back(
        QueryUpdate{v, QueryUpdate::Kind::kInstall, vans[v], 5});
  }
  if (!server.Tick(setup).ok()) return 1;

  // Remember the initial results to count churn.
  std::vector<std::vector<Neighbor>> previous(vans.size());
  for (QueryId v = 0; v < vans.size(); ++v) previous[v] = *server.ResultOf(v);

  int total_changes = 0;
  for (int ts = 1; ts <= timestamps; ++ts) {
    UpdateBatch batch;
    batch.edges = GenerateWeightUpdates(net, /*edge_agility=*/0.08,
                                        /*magnitude=*/0.10, &rng);
    if (!server.Tick(batch).ok()) return 1;
    int changed = 0;
    for (QueryId v = 0; v < vans.size(); ++v) {
      const auto& now = *server.ResultOf(v);
      if (!(now == previous[v])) {
        ++changed;
        previous[v] = now;
      }
    }
    total_changes += changed;
    std::printf("ts %2d: %3zu weight updates -> %2d/%zu van lists changed\n",
                ts, batch.edges.size(), changed, vans.size());
  }

  const auto& stats = dynamic_cast<Ima&>(server.monitor()).engine().stats();
  std::printf(
      "\n%d result changes across %d timestamps without a single object or "
      "query moving.\nIMA maintenance: %llu incremental rebuilds, %llu full "
      "recomputations.\n",
      total_changes, timestamps,
      static_cast<unsigned long long>(stats.rebuilds),
      static_cast<unsigned long long>(stats.full_recomputes));
  return 0;
}

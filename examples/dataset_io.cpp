// Dataset round trip: save a generated network in the .cnode/.cedge format
// used by the public road datasets the paper evaluates on, reload it, snap
// raw GPS-style coordinates onto the network through the PMR quadtree, and
// answer a query — the full coordinate-in/result-out path of the server.
//
// Run: ./dataset_io [prefix=/tmp/cknn_city]

#include <cstdio>

#include "src/core/server.h"
#include "src/gen/network_gen.h"
#include "src/graph/graph_io.h"
#include "src/util/rng.h"

using namespace cknn;

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "/tmp/cknn_city";

  // Generate and persist a network.
  RoadNetwork generated = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 800, .seed = 5});
  if (Status st = SaveNetwork(generated, prefix); !st.ok()) {
    std::printf("save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved %zu nodes / %zu edges under %s.{cnode,cedge}\n",
              generated.NumNodes(), generated.NumEdges(), prefix.c_str());

  // Reload it — this is also how the public .cnode/.cedge datasets load.
  Result<RoadNetwork> loaded = LoadNetwork(prefix);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  MonitoringServer server(std::move(loaded).value(), Algorithm::kIma);

  // Clients report raw coordinates; the server snaps them onto edges.
  Rng rng(17);
  const Rect box = server.network().BoundingBox();
  for (ObjectId id = 0; id < 50; ++id) {
    const Point gps{rng.Uniform(box.min_x, box.max_x),
                    rng.Uniform(box.min_y, box.max_y)};
    const auto snapped = server.Snap(gps);
    if (!snapped.ok()) return 1;
    if (Status st = server.AddObject(id, *snapped); !st.ok()) {
      std::printf("add failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const auto query_pos = server.Snap(Point{
      0.5 * (box.min_x + box.max_x), 0.5 * (box.min_y + box.max_y)});
  if (!query_pos.ok()) return 1;
  if (Status st = server.InstallQuery(0, *query_pos, 5); !st.ok()) {
    std::printf("install failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("5 nearest objects to the city center (network distance):\n");
  for (const Neighbor& nb : *server.ResultOf(0)) {
    std::printf("  object %2u at %.1f\n", nb.id, nb.distance);
  }
  std::printf("spatial index: %zu quads, max depth %d\n",
              server.spatial_index().NodeCount(),
              server.spatial_index().MaxDepth());
  return 0;
}

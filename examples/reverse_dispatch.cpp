// Reverse dispatch — the paper's future-work scenario (Section 7): each
// vacant cab wants the clients that are closer to it than to ANY other
// cab (its reverse nearest neighbors) — the clients it is the best-placed
// cab to serve. Continuous bichromatic reverse-NN monitoring over a moving
// fleet.
//
// Run: ./reverse_dispatch [timestamps=10]

#include <cstdio>
#include <cstdlib>

#include "src/core/rnn.h"
#include "src/gen/network_gen.h"
#include "src/gen/placement.h"
#include "src/gen/random_walk.h"
#include "src/spatial/pmr_quadtree.h"
#include "src/util/macros.h"
#include "src/util/rng.h"

using namespace cknn;

int main(int argc, char** argv) {
  const int timestamps = argc > 1 ? std::atoi(argv[1]) : 10;
  RoadNetwork net = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 1200, .seed = 31});
  Rect box = net.BoundingBox();
  box.min_x -= 1;
  box.min_y -= 1;
  box.max_x += 1;
  box.max_y += 1;
  PmrQuadtree si(box);
  for (EdgeId e = 0; e < net.NumEdges(); ++e) {
    CKNN_CHECK(si.Insert(e, net.EdgeSegment(e)).ok());
  }

  ObjectTable clients(net.NumEdges());
  RnnMonitor monitor(&net, &clients);
  Rng rng(5);
  std::vector<NetworkPoint> client_pos =
      PlaceEntities(net, si, Distribution::kGaussian, 120, 0.2, &rng);
  std::vector<NetworkPoint> cab_pos =
      PlaceEntities(net, si, Distribution::kUniform, 8, 0.1, &rng);

  UpdateBatch setup;
  for (ObjectId i = 0; i < client_pos.size(); ++i) {
    setup.objects.push_back(ObjectUpdate{i, std::nullopt, client_pos[i]});
  }
  for (QueryId c = 0; c < cab_pos.size(); ++c) {
    setup.queries.push_back(
        QueryUpdate{c, QueryUpdate::Kind::kInstall, cab_pos[c], 1});
  }
  if (!monitor.ProcessTimestamp(setup).ok()) return 1;

  const double step = net.AverageEdgeLength() * 2;
  for (int ts = 0; ts < timestamps; ++ts) {
    UpdateBatch batch;
    for (QueryId c = 0; c < cab_pos.size(); ++c) {
      cab_pos[c] = RandomWalkStep(net, cab_pos[c], step, &rng);
      batch.queries.push_back(
          QueryUpdate{c, QueryUpdate::Kind::kMove, cab_pos[c], 0});
    }
    if (!monitor.ProcessTimestamp(batch).ok()) return 1;
  }

  std::printf("after %d timestamps, each cab's exclusive client pool:\n",
              timestamps);
  std::size_t total = 0;
  for (QueryId c = 0; c < cab_pos.size(); ++c) {
    const auto* rnn = monitor.ResultOf(c);
    std::printf("  cab %u serves %zu clients", c, rnn->size());
    if (!rnn->empty()) {
      std::printf(" (closest: client %u at %.0fm)", (*rnn)[0].id,
                  (*rnn)[0].distance);
    }
    std::printf("\n");
    total += rnn->size();
  }
  std::printf("%zu of %zu clients have a reachable best cab\n", total,
              client_pos.size());
  return 0;
}

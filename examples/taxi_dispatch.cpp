// Taxi dispatch — the paper's motivating scenario (Section 1): queries are
// vacant cabs that continuously track their k closest waiting clients by
// travel time. Cabs and pedestrians move every timestamp; the server keeps
// every cab's candidate list fresh with GMA (shared execution across cabs
// on the same road chain).
//
// Run: ./taxi_dispatch [timestamps=20]

#include <cstdio>
#include <cstdlib>

#include "src/core/gma.h"
#include "src/core/server.h"
#include "src/gen/network_gen.h"
#include "src/gen/placement.h"
#include "src/gen/random_walk.h"
#include "src/util/rng.h"

using namespace cknn;

int main(int argc, char** argv) {
  const int timestamps = argc > 1 ? std::atoi(argv[1]) : 20;
  const int num_clients = 400;
  const int num_cabs = 25;
  const int k = 3;

  // A small city: ~1500 road segments.
  RoadNetwork city = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 1500, .seed = 2024});
  MonitoringServer server(std::move(city), Algorithm::kGma);
  const RoadNetwork& net = server.network();
  Rng rng(99);

  // Clients cluster downtown (Gaussian), cabs roam uniformly.
  std::vector<NetworkPoint> clients =
      PlaceEntities(net, server.spatial_index(), Distribution::kGaussian,
                    num_clients, 0.15, &rng);
  std::vector<NetworkPoint> cabs = PlaceEntities(
      net, server.spatial_index(), Distribution::kUniform, num_cabs, 0.1,
      &rng);
  UpdateBatch setup;
  for (ObjectId i = 0; i < clients.size(); ++i) {
    setup.objects.push_back(ObjectUpdate{i, std::nullopt, clients[i]});
  }
  for (QueryId c = 0; c < cabs.size(); ++c) {
    setup.queries.push_back(
        QueryUpdate{c, QueryUpdate::Kind::kInstall, cabs[c], k});
  }
  if (!server.Tick(setup).ok()) return 1;

  const double step = net.AverageEdgeLength();
  for (int ts = 1; ts <= timestamps; ++ts) {
    UpdateBatch batch;
    // 15% of clients wander; every cab cruises.
    for (ObjectId i = 0; i < clients.size(); ++i) {
      if (!rng.NextBool(0.15)) continue;
      const NetworkPoint next = RandomWalkStep(net, clients[i], step, &rng);
      batch.objects.push_back(ObjectUpdate{i, clients[i], next});
      clients[i] = next;
    }
    for (QueryId c = 0; c < cabs.size(); ++c) {
      cabs[c] = RandomWalkStep(net, cabs[c], 2 * step, &rng);
      batch.queries.push_back(
          QueryUpdate{c, QueryUpdate::Kind::kMove, cabs[c], 0});
    }
    if (!server.Tick(batch).ok()) return 1;
  }

  std::printf("after %d timestamps, closest clients per cab:\n", timestamps);
  for (QueryId c = 0; c < cabs.size(); ++c) {
    const auto* result = server.ResultOf(c);
    std::printf("  cab %2u ->", c);
    for (const Neighbor& nb : *result) {
      std::printf(" client %3u (%.0fm)", nb.id, nb.distance);
    }
    std::printf("\n");
  }
  const auto& gma = dynamic_cast<const Gma&>(server.monitor());
  std::printf(
      "\nshared execution: %zu cabs monitored through %zu active "
      "intersections; %llu query evaluations total\n",
      gma.NumQueries(), gma.NumActiveNodes(),
      static_cast<unsigned long long>(gma.stats().evaluations));
  return 0;
}

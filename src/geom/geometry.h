#ifndef CKNN_GEOM_GEOMETRY_H_
#define CKNN_GEOM_GEOMETRY_H_

#include <algorithm>
#include <cmath>

namespace cknn {

/// \brief 2-D point with double coordinates.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance between two points.
double Distance(const Point& a, const Point& b);

/// Squared Euclidean distance between two points.
double SquaredDistance(const Point& a, const Point& b);

/// Linear interpolation: a + t * (b - a).
Point Lerp(const Point& a, const Point& b, double t);

/// \brief Straight segment between two points; the geometry of one network
/// edge as indexed by the PMR quadtree.
struct Segment {
  Point a;
  Point b;

  double Length() const { return Distance(a, b); }
};

/// Distance from `p` to the closest point of segment `s`.
double PointSegmentDistance(const Point& p, const Segment& s);

/// Parameter t in [0, 1] of the point of `s` closest to `p`
/// (0 at s.a, 1 at s.b).
double ClosestPointParam(const Point& p, const Segment& s);

/// \brief Axis-aligned rectangle (used for quadtree quads).
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  /// Grows the rectangle to cover `p`.
  void Expand(const Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
};

/// Distance from a point to a rectangle (0 when inside).
double PointRectDistance(const Point& p, const Rect& r);

/// True iff segment `s` intersects (or touches) rectangle `r`.
bool SegmentIntersectsRect(const Segment& s, const Rect& r);

}  // namespace cknn

#endif  // CKNN_GEOM_GEOMETRY_H_

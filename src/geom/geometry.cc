#include "src/geom/geometry.h"

namespace cknn {

double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

Point Lerp(const Point& a, const Point& b, double t) {
  return Point{a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
}

double ClosestPointParam(const Point& p, const Segment& s) {
  const double dx = s.b.x - s.a.x;
  const double dy = s.b.y - s.a.y;
  const double len_sq = dx * dx + dy * dy;
  if (len_sq <= 0.0) return 0.0;
  const double t = ((p.x - s.a.x) * dx + (p.y - s.a.y) * dy) / len_sq;
  return std::clamp(t, 0.0, 1.0);
}

double PointSegmentDistance(const Point& p, const Segment& s) {
  return Distance(p, Lerp(s.a, s.b, ClosestPointParam(p, s)));
}

double PointRectDistance(const Point& p, const Rect& r) {
  const double dx = std::max({r.min_x - p.x, 0.0, p.x - r.max_x});
  const double dy = std::max({r.min_y - p.y, 0.0, p.y - r.max_y});
  return std::sqrt(dx * dx + dy * dy);
}

namespace {

// Cohen-Sutherland region code of p relative to r.
int OutCode(const Point& p, const Rect& r) {
  int code = 0;
  if (p.x < r.min_x) code |= 1;
  if (p.x > r.max_x) code |= 2;
  if (p.y < r.min_y) code |= 4;
  if (p.y > r.max_y) code |= 8;
  return code;
}

}  // namespace

bool SegmentIntersectsRect(const Segment& s, const Rect& r) {
  // Cohen-Sutherland line clipping; returns whether any part of the segment
  // survives the clip.
  Point a = s.a;
  Point b = s.b;
  int code_a = OutCode(a, r);
  int code_b = OutCode(b, r);
  while (true) {
    if ((code_a | code_b) == 0) return true;   // Both inside.
    if ((code_a & code_b) != 0) return false;  // Same outside half-plane.
    const int out = code_a != 0 ? code_a : code_b;
    Point p;
    if (out & 8) {
      p.x = a.x + (b.x - a.x) * (r.max_y - a.y) / (b.y - a.y);
      p.y = r.max_y;
    } else if (out & 4) {
      p.x = a.x + (b.x - a.x) * (r.min_y - a.y) / (b.y - a.y);
      p.y = r.min_y;
    } else if (out & 2) {
      p.y = a.y + (b.y - a.y) * (r.max_x - a.x) / (b.x - a.x);
      p.x = r.max_x;
    } else {
      p.y = a.y + (b.y - a.y) * (r.min_x - a.x) / (b.x - a.x);
      p.x = r.min_x;
    }
    if (out == code_a) {
      a = p;
      code_a = OutCode(a, r);
    } else {
      b = p;
      code_b = OutCode(b, r);
    }
  }
}

}  // namespace cknn

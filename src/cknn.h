#ifndef CKNN_CKNN_H_
#define CKNN_CKNN_H_

/// \file Umbrella header for the cknn library: continuous k-nearest-
/// neighbor monitoring in road networks (Mouratidis et al., VLDB 2006),
/// plus the reverse-NN / path-kNN / range extensions.
///
/// Typical entry point: build a RoadNetwork, hand it to MonitoringServer
/// with an Algorithm, and feed UpdateBatch ticks. See README.md.

#include "src/core/gma.h"           // IWYU pragma: export
#include "src/core/ima.h"           // IWYU pragma: export
#include "src/core/knn_search.h"    // IWYU pragma: export
#include "src/core/monitor.h"       // IWYU pragma: export
#include "src/core/object_table.h"  // IWYU pragma: export
#include "src/core/ovh.h"           // IWYU pragma: export
#include "src/core/path_knn.h"      // IWYU pragma: export
#include "src/core/range_search.h"  // IWYU pragma: export
#include "src/core/rnn.h"           // IWYU pragma: export
#include "src/core/server.h"        // IWYU pragma: export
#include "src/core/updates.h"       // IWYU pragma: export
#include "src/gen/brinkhoff.h"      // IWYU pragma: export
#include "src/gen/network_gen.h"    // IWYU pragma: export
#include "src/gen/placement.h"      // IWYU pragma: export
#include "src/gen/random_walk.h"    // IWYU pragma: export
#include "src/gen/weight_gen.h"     // IWYU pragma: export
#include "src/gen/workload.h"       // IWYU pragma: export
#include "src/graph/graph_io.h"     // IWYU pragma: export
#include "src/graph/road_network.h" // IWYU pragma: export
#include "src/graph/sequences.h"    // IWYU pragma: export
#include "src/graph/shortest_path.h" // IWYU pragma: export
#include "src/sim/experiment.h"     // IWYU pragma: export
#include "src/sim/simulation.h"     // IWYU pragma: export
#include "src/spatial/pmr_quadtree.h" // IWYU pragma: export

#endif  // CKNN_CKNN_H_

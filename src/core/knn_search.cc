#include "src/core/knn_search.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "src/util/macros.h"

namespace cknn {

namespace {

FrontierQueueKind KindFromEnv() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): one-shot read before any
  // thread is spawned; nothing in the tree calls setenv.
  const char* env = std::getenv("CKNN_FRONTIER_QUEUE");
  if (env != nullptr && std::strcmp(env, "bucket") == 0) {
    return FrontierQueueKind::kBucketQueue;
  }
  // "binary", unset, or unrecognized all mean the default heap.
  return FrontierQueueKind::kBinaryHeap;
}

std::atomic<FrontierQueueKind>& DefaultKindSlot() {
  static std::atomic<FrontierQueueKind> kind{KindFromEnv()};
  return kind;
}

}  // namespace

FrontierQueueKind DefaultFrontierQueueKind() {
  return DefaultKindSlot().load(std::memory_order_relaxed);
}

void SetDefaultFrontierQueueKind(FrontierQueueKind kind) {
  DefaultKindSlot().store(kind, std::memory_order_relaxed);
}

namespace {

/// Weight-offset of an object at fraction `t` of edge `e`, measured from
/// endpoint `from`.
double OffsetFrom(const RoadNetwork::Edge& e, double t, NodeId from) {
  return from == e.u ? t * e.weight : (1.0 - t) * e.weight;
}

}  // namespace

void RebuildFrontier(const RoadNetwork& net, const ExpansionState& state,
                     Frontier* frontier) {
  frontier->Clear();
  state.ForEachSettled([&](NodeId n, const ExpansionState::SettledInfo& info) {
    for (const RoadNetwork::Incidence& inc : net.Incidences(n)) {
      if (!state.IsSettled(inc.neighbor)) {
        frontier->Relax(state, inc.neighbor,
                        info.dist + net.WeightOf(inc.edge), n, inc.edge);
      }
    }
  });
}

void ExpandToK(const RoadNetwork& net, const ObjectTable& objects, int k,
               ExpansionState* state, Frontier* frontier,
               CandidateSet* candidates, std::vector<NodeId>* newly_settled,
               ExpandStats* stats) {
  CKNN_CHECK(k >= 1);
  const ExpansionSource& src = state->source();

  auto offer_objects_on_edge = [&](EdgeId e, NodeId from, double base) {
    const RoadNetwork::Edge& ed = net.edge(e);
    for (ObjectId obj : objects.ObjectsOn(e)) {
      const NetworkPoint pos = objects.Position(obj).value();
      candidates->Offer(obj, base + OffsetFrom(ed, pos.t, from));
      if (stats != nullptr) ++stats->objects_offered;
    }
  };

  if (state->NumSettled() == 0) {
    // Fresh (or fully pruned) expansion: seed from the source
    // (Fig. 2 lines 1-6).
    frontier->Clear();
    if (src.at_node) {
      frontier->Relax(*state, src.node, 0.0, kInvalidNode, kInvalidEdge);
    }
  }
  if (!src.at_node) {
    // The direct along-edge reach of the source must always be seeded: a
    // shortcut prune can remove a source-edge endpoint whose only shorter
    // way back is straight along the query's own edge. Also (re)offer the
    // source edge objects — O(objects on one edge).
    const RoadNetwork::Edge& ed = net.edge(src.point.edge);
    frontier->Relax(*state, ed.u, WeightOffsetFromU(net, src.point),
                    kInvalidNode, src.point.edge);
    frontier->Relax(*state, ed.v, WeightOffsetFromV(net, src.point),
                    kInvalidNode, src.point.edge);
    for (ObjectId obj : objects.ObjectsOn(src.point.edge)) {
      const NetworkPoint pos = objects.Position(obj).value();
      candidates->Offer(obj, AlongEdgeDistance(net, src.point, pos));
      if (stats != nullptr) ++stats->objects_offered;
    }
  }

  // Main loop (Fig. 2 lines 7-23). Settling while dist <= KthDist keeps the
  // tie-zone at the k-th distance inside the verified region.
  while (!frontier->QueueEmpty()) {
    const double kth = candidates->KthDist(k);
    if (frontier->TopKey() > kth) break;
    const auto [id, dist] = frontier->PopTop();
    const NodeId n = static_cast<NodeId>(id);
    const auto* label_ptr = frontier->pending.Find(n);
    CKNN_DCHECK(label_ptr != nullptr);
    const auto label = *label_ptr;
    frontier->pending.Erase(n);
    state->Settle(n, dist, label.first, label.second);
    if (newly_settled != nullptr) newly_settled->push_back(n);
    if (stats != nullptr) ++stats->nodes_settled;
    for (const RoadNetwork::Incidence& inc : net.Incidences(n)) {
      offer_objects_on_edge(inc.edge, n, dist);
      if (frontier->Relax(*state, inc.neighbor,
                          dist + net.WeightOf(inc.edge), n, inc.edge)) {
        if (stats != nullptr) ++stats->heap_pushes;
      }
    }
  }
}

std::vector<Neighbor> SnapshotKnn(const RoadNetwork& net,
                                  const ObjectTable& objects,
                                  const NetworkPoint& source, int k,
                                  ExpandStats* stats) {
  KnnScratch scratch;
  return SnapshotKnn(net, objects, source, k, &scratch, stats);
}

std::vector<Neighbor> SnapshotKnn(const RoadNetwork& net,
                                  const ObjectTable& objects,
                                  const NetworkPoint& source, int k,
                                  KnnScratch* scratch, ExpandStats* stats) {
  scratch->state.ResetToPoint(source);
  scratch->frontier.Clear();
  scratch->candidates.Clear();
  ExpandToK(net, objects, k, &scratch->state, &scratch->frontier,
            &scratch->candidates, nullptr, stats);
  return scratch->candidates.TopK(k);
}

}  // namespace cknn

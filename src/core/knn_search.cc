#include "src/core/knn_search.h"

#include "src/util/macros.h"

namespace cknn {

namespace {

/// Weight-offset of an object at fraction `t` of edge `e`, measured from
/// endpoint `from`.
double OffsetFrom(const RoadNetwork::Edge& e, double t, NodeId from) {
  return from == e.u ? t * e.weight : (1.0 - t) * e.weight;
}

}  // namespace

void RebuildFrontier(const RoadNetwork& net, const ExpansionState& state,
                     Frontier* frontier) {
  frontier->Clear();
  for (const auto& [n, info] : state.settled()) {
    for (const RoadNetwork::Incidence& inc : net.Incidences(n)) {
      if (!state.IsSettled(inc.neighbor)) {
        frontier->Relax(state, inc.neighbor,
                        info.dist + net.edge(inc.edge).weight, n, inc.edge);
      }
    }
  }
}

void ExpandToK(const RoadNetwork& net, const ObjectTable& objects, int k,
               ExpansionState* state, Frontier* frontier,
               CandidateSet* candidates, std::vector<NodeId>* newly_settled,
               ExpandStats* stats) {
  CKNN_CHECK(k >= 1);
  const ExpansionSource& src = state->source();

  auto offer_objects_on_edge = [&](EdgeId e, NodeId from, double base) {
    const RoadNetwork::Edge& ed = net.edge(e);
    for (ObjectId obj : objects.ObjectsOn(e)) {
      const NetworkPoint pos = objects.Position(obj).value();
      candidates->Offer(obj, base + OffsetFrom(ed, pos.t, from));
      if (stats != nullptr) ++stats->objects_offered;
    }
  };

  if (state->NumSettled() == 0) {
    // Fresh (or fully pruned) expansion: seed from the source
    // (Fig. 2 lines 1-6).
    frontier->Clear();
    if (src.at_node) {
      frontier->Relax(*state, src.node, 0.0, kInvalidNode, kInvalidEdge);
    }
  }
  if (!src.at_node) {
    // The direct along-edge reach of the source must always be seeded: a
    // shortcut prune can remove a source-edge endpoint whose only shorter
    // way back is straight along the query's own edge. Also (re)offer the
    // source edge objects — O(objects on one edge).
    const RoadNetwork::Edge& ed = net.edge(src.point.edge);
    frontier->Relax(*state, ed.u, WeightOffsetFromU(net, src.point),
                    kInvalidNode, src.point.edge);
    frontier->Relax(*state, ed.v, WeightOffsetFromV(net, src.point),
                    kInvalidNode, src.point.edge);
    for (ObjectId obj : objects.ObjectsOn(src.point.edge)) {
      const NetworkPoint pos = objects.Position(obj).value();
      candidates->Offer(obj, AlongEdgeDistance(net, src.point, pos));
      if (stats != nullptr) ++stats->objects_offered;
    }
  }

  // Main loop (Fig. 2 lines 7-23). Settling while dist <= KthDist keeps the
  // tie-zone at the k-th distance inside the verified region.
  while (!frontier->heap.empty()) {
    const double kth = candidates->KthDist(k);
    if (frontier->heap.Top().key > kth) break;
    const auto [id, dist] = frontier->heap.Pop();
    const NodeId n = static_cast<NodeId>(id);
    const auto label_it = frontier->pending.find(n);
    CKNN_DCHECK(label_it != frontier->pending.end());
    const auto label = label_it->second;
    frontier->pending.erase(label_it);
    state->Settle(n, dist, label.first, label.second);
    if (newly_settled != nullptr) newly_settled->push_back(n);
    if (stats != nullptr) ++stats->nodes_settled;
    for (const RoadNetwork::Incidence& inc : net.Incidences(n)) {
      offer_objects_on_edge(inc.edge, n, dist);
      if (frontier->Relax(*state, inc.neighbor,
                          dist + net.edge(inc.edge).weight, n, inc.edge)) {
        if (stats != nullptr) ++stats->heap_pushes;
      }
    }
  }
}

std::vector<Neighbor> SnapshotKnn(const RoadNetwork& net,
                                  const ObjectTable& objects,
                                  const NetworkPoint& source, int k,
                                  ExpandStats* stats) {
  ExpansionState state;
  state.ResetToPoint(source);
  Frontier frontier;
  CandidateSet candidates;
  ExpandToK(net, objects, k, &state, &frontier, &candidates, nullptr, stats);
  return candidates.TopK(k);
}

}  // namespace cknn

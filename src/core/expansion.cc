#include "src/core/expansion.h"

#include <algorithm>
#include <utility>

#include "src/util/macros.h"

namespace cknn {

void ExpansionState::ResetToPoint(const NetworkPoint& p) {
  Clear();
  source_ = ExpansionSource::AtPoint(p);
}

void ExpansionState::ResetToNode(NodeId n) {
  Clear();
  source_ = ExpansionSource::AtNodeSource(n);
}

void ExpansionState::SetSourcePoint(const NetworkPoint& p) {
  CKNN_DCHECK(!source_.at_node);
  source_.point = p;
}

std::optional<double> ExpansionState::NodeDistance(NodeId n) const {
  const Slot* s = settled_.Find(n);
  if (s == nullptr) return std::nullopt;
  return s->info.dist;
}

const ExpansionState::SettledInfo* ExpansionState::Info(NodeId n) const {
  const Slot* s = settled_.Find(n);
  return s == nullptr ? nullptr : &s->info;
}

void ExpansionState::Settle(NodeId n, double dist, NodeId parent,
                            EdgeId via_edge) {
  CKNN_CHECK(!settled_.Contains(n));
  Slot& s = settled_[n];
  s.info = SettledInfo{dist, parent, via_edge};
  if (parent != kInvalidNode) {
    // Slot pointers are stable across inserts (paged storage), so linking
    // into the parent's child list after inserting `n` is safe.
    Slot* ps = settled_.Find(parent);
    CKNN_DCHECK(ps != nullptr);
    s.next_sibling = ps->first_child;
    ps->first_child = n;
  }
  max_settled_dist_ = std::max(max_settled_dist_, dist);
}

void ExpansionState::DetachFromParent(NodeId n, NodeId parent) {
  if (parent == kInvalidNode) return;
  Slot* ps = settled_.Find(parent);
  if (ps == nullptr) return;
  for (NodeId* link = &ps->first_child; *link != kInvalidNode;) {
    Slot* cs = settled_.Find(*link);
    CKNN_DCHECK(cs != nullptr);
    if (*link == n) {
      *link = cs->next_sibling;
      return;
    }
    link = &cs->next_sibling;
  }
}

void ExpansionState::MarkNodes(const std::vector<NodeId>& nodes) {
  if (++mark_epoch_ == 0) {
    // Stamp counter wrapped (once per ~4G set operations): sweep the stale
    // stamps so an ancient mark cannot alias the restarted epoch.
    settled_.ForEachMutable([](std::uint64_t, Slot& s) { s.mark = 0; });
    mark_epoch_ = 1;
  }
  for (NodeId n : nodes) {
    Slot* s = settled_.Find(n);
    CKNN_DCHECK(s != nullptr);
    s->mark = mark_epoch_;
  }
}

void ExpansionState::EraseNodes(const std::vector<NodeId>& nodes) {
  // Unlink before erasing (the sibling chains must still be walkable), and
  // only from parents that survive — a removed node whose parent is also
  // removed needs no detaching, its parent's slot dies wholesale.
  MarkNodes(nodes);
  for (NodeId n : nodes) {
    const NodeId parent = settled_.Find(n)->info.parent;
    if (parent == kInvalidNode) continue;
    const Slot* ps = settled_.Find(parent);
    if (ps != nullptr && ps->mark != mark_epoch_) DetachFromParent(n, parent);
  }
  for (NodeId n : nodes) {
    const bool erased = settled_.Erase(n);
    CKNN_DCHECK(erased);
    (void)erased;
  }
}

std::optional<NodeId> ExpansionState::TreeChildVia(const RoadNetwork& net,
                                                   EdgeId e) const {
  const RoadNetwork::Edge& ed = net.edge(e);
  const SettledInfo* iu = Info(ed.u);
  if (iu != nullptr && iu->via_edge == e) return ed.u;
  const SettledInfo* iv = Info(ed.v);
  if (iv != nullptr && iv->via_edge == e) return ed.v;
  return std::nullopt;
}

std::vector<NodeId> ExpansionState::SubtreeOf(NodeId root) const {
  CKNN_DCHECK(IsSettled(root));
  std::vector<NodeId> out;
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    out.push_back(n);
    const Slot* s = settled_.Find(n);
    CKNN_DCHECK(s != nullptr);
    for (NodeId c = s->first_child; c != kInvalidNode;
         c = settled_.Find(c)->next_sibling) {
      stack.push_back(c);
    }
  }
  return out;
}

std::vector<NodeId> ExpansionState::PruneSubtree(NodeId root) {
  std::vector<NodeId> removed = SubtreeOf(root);
  EraseNodes(removed);
  return removed;
}

std::vector<NodeId> ExpansionState::AdjustSubtree(NodeId root, double delta) {
  std::vector<NodeId> nodes = SubtreeOf(root);
  for (NodeId n : nodes) {
    Slot* s = settled_.Find(n);
    s->info.dist += delta;
    // Keep max_settled_dist_ an upper bound also when delta is positive
    // (for negative deltas the old maximum already dominates).
    max_settled_dist_ = std::max(max_settled_dist_, s->info.dist);
  }
  return nodes;
}

std::vector<NodeId> ExpansionState::PruneBeyond(double threshold) {
  std::vector<NodeId> removed;
  settled_.ForEach([&](std::uint64_t n, const Slot& s) {
    if (s.info.dist > threshold) removed.push_back(static_cast<NodeId>(n));
  });
  EraseNodes(removed);
  return removed;
}

std::vector<NodeId> ExpansionState::PruneOthersBeyond(NodeId keep_root,
                                                      double threshold) {
  MarkNodes(SubtreeOf(keep_root));
  std::vector<NodeId> removed;
  settled_.ForEach([&](std::uint64_t n, const Slot& s) {
    if (s.info.dist > threshold && s.mark != mark_epoch_) {
      removed.push_back(static_cast<NodeId>(n));
    }
  });
  EraseNodes(removed);
  return removed;
}

void ExpansionState::ReRootToSubtree(NodeId subtree_root,
                                     const NetworkPoint& new_source,
                                     double delta) {
  const std::vector<NodeId> keep = SubtreeOf(subtree_root);
  std::vector<std::pair<NodeId, SettledInfo>> next;
  next.reserve(keep.size());
  for (NodeId n : keep) {
    SettledInfo info = settled_.Find(n)->info;
    info.dist += delta;
    next.emplace_back(n, info);
  }
  // The kept subtree root hangs directly off the new source; SubtreeOf
  // returns it first.
  CKNN_CHECK(!next.empty() && next.front().first == subtree_root);
  next.front().second.parent = kInvalidNode;
  next.front().second.via_edge = new_source.edge;
  settled_.Clear();
  max_settled_dist_ = 0.0;
  // Pre-order: every parent is re-settled before its children, so the
  // intrusive child links rebuild through the normal Settle path.
  for (const auto& [n, info] : next) {
    Settle(n, info.dist, info.parent, info.via_edge);
  }
  source_ = ExpansionSource::AtPoint(new_source);
}

std::optional<double> ExpansionState::PointDistance(
    const RoadNetwork& net, const NetworkPoint& p) const {
  const RoadNetwork::Edge& ed = net.edge(p.edge);
  double best = kInfDist;
  if (const SettledInfo* iu = Info(ed.u); iu != nullptr) {
    best = std::min(best, iu->dist + p.t * ed.weight);
  }
  if (const SettledInfo* iv = Info(ed.v); iv != nullptr) {
    best = std::min(best, iv->dist + (1.0 - p.t) * ed.weight);
  }
  if (!source_.at_node && source_.point.edge == p.edge) {
    best = std::min(best, AlongEdgeDistance(net, source_.point, p));
  }
  if (best == kInfDist) return std::nullopt;
  return best;
}

bool ExpansionState::EdgeTouched(const RoadNetwork& net, EdgeId e) const {
  if (!source_.at_node && source_.point.edge == e) return true;
  const RoadNetwork::Edge& ed = net.edge(e);
  return IsSettled(ed.u) || IsSettled(ed.v);
}

bool ExpansionState::InInfluencingInterval(const RoadNetwork& net, EdgeId e,
                                           double offset_from_u) const {
  const RoadNetwork::Edge& ed = net.edge(e);
  const double t =
      ed.weight > 0.0 ? std::clamp(offset_from_u / ed.weight, 0.0, 1.0) : 0.0;
  auto d = PointDistance(net, NetworkPoint{e, t});
  return d.has_value() && *d <= bound_;
}

void ExpansionState::Clear() {
  settled_.Clear();
  bound_ = kInfDist;
  max_settled_dist_ = 0.0;
}

std::size_t ExpansionState::MemoryBytes() const {
  return settled_.MemoryBytes() + sizeof(*this);
}

}  // namespace cknn

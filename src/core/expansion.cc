#include "src/core/expansion.h"

#include <algorithm>

#include "src/util/macros.h"
#include "src/util/mem.h"

namespace cknn {

void ExpansionState::ResetToPoint(const NetworkPoint& p) {
  Clear();
  source_ = ExpansionSource::AtPoint(p);
}

void ExpansionState::ResetToNode(NodeId n) {
  Clear();
  source_ = ExpansionSource::AtNodeSource(n);
}

void ExpansionState::SetSourcePoint(const NetworkPoint& p) {
  CKNN_DCHECK(!source_.at_node);
  source_.point = p;
}

std::optional<double> ExpansionState::NodeDistance(NodeId n) const {
  auto it = settled_.find(n);
  if (it == settled_.end()) return std::nullopt;
  return it->second.dist;
}

const ExpansionState::SettledInfo* ExpansionState::Info(NodeId n) const {
  auto it = settled_.find(n);
  return it == settled_.end() ? nullptr : &it->second;
}

void ExpansionState::Settle(NodeId n, double dist, NodeId parent,
                            EdgeId via_edge) {
  auto [it, inserted] = settled_.emplace(n, SettledInfo{dist, parent, via_edge});
  (void)it;
  CKNN_CHECK(inserted);
  if (parent != kInvalidNode) children_[parent].push_back(n);
  max_settled_dist_ = std::max(max_settled_dist_, dist);
}

void ExpansionState::DetachFromParent(NodeId n, NodeId parent) {
  if (parent == kInvalidNode) return;
  auto it = children_.find(parent);
  if (it == children_.end()) return;
  auto pos = std::find(it->second.begin(), it->second.end(), n);
  if (pos != it->second.end()) {
    *pos = it->second.back();
    it->second.pop_back();
  }
}

void ExpansionState::EraseNodes(const std::vector<NodeId>& nodes) {
  // Two passes: erase everything first, then detach survivors' child links
  // (a removed node whose parent is also removed needs no detaching).
  std::vector<NodeId> parents(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    auto it = settled_.find(nodes[i]);
    CKNN_DCHECK(it != settled_.end());
    parents[i] = it->second.parent;
    settled_.erase(it);
    children_.erase(nodes[i]);
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (parents[i] != kInvalidNode && settled_.count(parents[i]) != 0) {
      DetachFromParent(nodes[i], parents[i]);
    }
  }
}

std::optional<NodeId> ExpansionState::TreeChildVia(const RoadNetwork& net,
                                                   EdgeId e) const {
  const RoadNetwork::Edge& ed = net.edge(e);
  const SettledInfo* iu = Info(ed.u);
  if (iu != nullptr && iu->via_edge == e) return ed.u;
  const SettledInfo* iv = Info(ed.v);
  if (iv != nullptr && iv->via_edge == e) return ed.v;
  return std::nullopt;
}

std::vector<NodeId> ExpansionState::SubtreeOf(NodeId root) const {
  CKNN_DCHECK(IsSettled(root));
  std::vector<NodeId> out;
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    out.push_back(n);
    auto it = children_.find(n);
    if (it == children_.end()) continue;
    stack.insert(stack.end(), it->second.begin(), it->second.end());
  }
  return out;
}

std::vector<NodeId> ExpansionState::PruneSubtree(NodeId root) {
  std::vector<NodeId> removed = SubtreeOf(root);
  EraseNodes(removed);
  return removed;
}

std::vector<NodeId> ExpansionState::AdjustSubtree(NodeId root, double delta) {
  std::vector<NodeId> nodes = SubtreeOf(root);
  for (NodeId n : nodes) settled_[n].dist += delta;
  return nodes;
}

std::vector<NodeId> ExpansionState::PruneBeyond(double threshold) {
  std::vector<NodeId> removed;
  for (const auto& [n, info] : settled_) {
    if (info.dist > threshold) removed.push_back(n);
  }
  EraseNodes(removed);
  return removed;
}

std::vector<NodeId> ExpansionState::PruneOthersBeyond(NodeId keep_root,
                                                      double threshold) {
  std::vector<NodeId> keep = SubtreeOf(keep_root);
  std::unordered_map<NodeId, bool> in_subtree;
  in_subtree.reserve(keep.size());
  for (NodeId n : keep) in_subtree.emplace(n, true);
  std::vector<NodeId> removed;
  for (const auto& [n, info] : settled_) {
    if (info.dist > threshold && in_subtree.count(n) == 0) {
      removed.push_back(n);
    }
  }
  EraseNodes(removed);
  return removed;
}

void ExpansionState::ReRootToSubtree(NodeId subtree_root,
                                     const NetworkPoint& new_source,
                                     double delta) {
  std::vector<NodeId> keep = SubtreeOf(subtree_root);
  std::unordered_map<NodeId, SettledInfo> next;
  next.reserve(keep.size());
  for (NodeId n : keep) {
    SettledInfo info = settled_[n];
    info.dist += delta;
    next.emplace(n, info);
  }
  // The kept subtree root hangs directly off the new source.
  auto root_it = next.find(subtree_root);
  CKNN_CHECK(root_it != next.end());
  root_it->second.parent = kInvalidNode;
  root_it->second.via_edge = new_source.edge;
  settled_ = std::move(next);
  children_.clear();
  double max_dist = 0.0;
  for (const auto& [n, info] : settled_) {
    if (info.parent != kInvalidNode) children_[info.parent].push_back(n);
    max_dist = std::max(max_dist, info.dist);
  }
  max_settled_dist_ = max_dist;
  source_ = ExpansionSource::AtPoint(new_source);
}

std::optional<double> ExpansionState::PointDistance(
    const RoadNetwork& net, const NetworkPoint& p) const {
  const RoadNetwork::Edge& ed = net.edge(p.edge);
  double best = kInfDist;
  if (const SettledInfo* iu = Info(ed.u); iu != nullptr) {
    best = std::min(best, iu->dist + p.t * ed.weight);
  }
  if (const SettledInfo* iv = Info(ed.v); iv != nullptr) {
    best = std::min(best, iv->dist + (1.0 - p.t) * ed.weight);
  }
  if (!source_.at_node && source_.point.edge == p.edge) {
    best = std::min(best, AlongEdgeDistance(net, source_.point, p));
  }
  if (best == kInfDist) return std::nullopt;
  return best;
}

bool ExpansionState::EdgeTouched(const RoadNetwork& net, EdgeId e) const {
  if (!source_.at_node && source_.point.edge == e) return true;
  const RoadNetwork::Edge& ed = net.edge(e);
  return IsSettled(ed.u) || IsSettled(ed.v);
}

bool ExpansionState::InInfluencingInterval(const RoadNetwork& net, EdgeId e,
                                           double offset_from_u) const {
  const RoadNetwork::Edge& ed = net.edge(e);
  const double t =
      ed.weight > 0.0 ? std::clamp(offset_from_u / ed.weight, 0.0, 1.0) : 0.0;
  auto d = PointDistance(net, NetworkPoint{e, t});
  return d.has_value() && *d <= bound_;
}

void ExpansionState::Clear() {
  settled_.clear();
  children_.clear();
  bound_ = kInfDist;
  max_settled_dist_ = 0.0;
}

std::size_t ExpansionState::MemoryBytes() const {
  std::size_t bytes = HashMapBytes(settled_) + HashMapBytes(children_) +
                      sizeof(*this);
  for (const auto& [n, kids] : children_) {
    (void)n;
    bytes += VectorBytes(kids);
  }
  return bytes;
}

}  // namespace cknn

#ifndef CKNN_CORE_GMA_H_
#define CKNN_CORE_GMA_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/ima.h"
#include "src/core/monitor.h"
#include "src/core/object_table.h"
#include "src/core/top_k.h"
#include "src/core/updates.h"
#include "src/graph/road_network.h"
#include "src/graph/sequences.h"

namespace cknn {

/// \brief GMA — the group monitoring algorithm of Section 5.
///
/// GMA partitions the network into *sequences* (chains between
/// intersections, SequenceTable) and groups the queries by the sequence
/// containing them. Instead of monitoring each moving query, it monitors the
/// static *active nodes* — the intersection endpoints of sequences that
/// currently contain queries — with the IMA engine, each with
/// `n.k = max{q.k : q in n.Q}` neighbors.
///
/// By Lemma 1, the k-NN set of a query inside a sequence is contained in
/// the union of the objects on the sequence and the k-NN sets of its
/// endpoints, so each user query is answered by a cheap bidirectional walk
/// along its sequence that merges the endpoint NN sets on arrival.
///
/// Update filtering for user queries uses per-sequence influence lists:
/// each edge the walk of `q` reaches keeps `q` with the reached interval;
/// object / edge-weight updates outside all intervals are ignored, and NN
/// changes of an active node only re-evaluate the queries whose walks
/// reached that node within their bound. Affected queries are re-evaluated
/// from scratch (Fig. 12 line 17) — the walk is O(reach + k).
class Gma : public Monitor {
 public:
  struct Stats {
    std::uint64_t evaluations = 0;
    std::uint64_t affected_by_node_change = 0;
    std::uint64_t affected_by_object = 0;
    std::uint64_t affected_by_edge = 0;
  };

  /// Obtains the sequence table of `net` through the once-per-graph cache
  /// on its shared topology (`RoadNetwork::SharedSequences`) — co-resident
  /// GMA monitors over views of the same graph share one table instead of
  /// each building a copy. Both tables must outlive the monitor. The
  /// network topology must not change afterwards (weights may).
  Gma(RoadNetwork* net, ObjectTable* objects);

  Status ProcessTimestamp(const UpdateBatch& batch) override;
  const std::vector<Neighbor>* ResultOf(QueryId id) const override;
  std::size_t NumQueries() const override { return queries_.size(); }
  std::size_t MemoryBytes() const override;
  /// The shared sequence table, counted once across co-resident monitors
  /// (ShardSet::MemoryBytes) rather than per shard.
  std::size_t SharedMemoryBytes() const override {
    return st_->MemoryBytes();
  }
  std::string_view name() const override { return "GMA"; }
  void set_object_table_externally_applied(bool on) override {
    engine_.set_external_object_table(on);
  }

  const SequenceTable& sequences() const { return *st_; }
  /// Number of currently active (monitored) intersection nodes.
  std::size_t NumActiveNodes() const { return active_.size(); }
  const Stats& stats() const { return stats_; }
  ImaEngine& engine() { return engine_; }

 private:
  /// Reached portion of an edge, as a t-fraction interval (the influencing
  /// interval of Section 5, stored explicitly because GMA walks are 1-D).
  struct Interval {
    double lo = 0.0;
    double hi = 0.0;
  };

  struct UserQuery {
    NetworkPoint pos;
    int k = 1;
    SequenceId seq = kInvalidSequence;
    std::vector<Neighbor> result;
    double bound = kInfDist;
    /// Endpoint nodes whose NN set the walk consumed within the bound.
    std::vector<NodeId> reached_nodes;
    /// Edges holding this query in their influence list.
    std::vector<EdgeId> covered;
  };

  struct ActiveNode {
    std::unordered_set<QueryId> queries;  // n.Q
    int k = 0;                            // n.k
  };

  /// True iff `n` can be an active node (an intersection; terminals and
  /// pure-cycle anchors contribute nothing beyond the sequence itself).
  bool IsIntersection(NodeId n) const { return net_->Degree(n) >= 3; }

  /// Registers `q` at the active candidates among its sequence endpoints,
  /// creating/growing monitored nodes as needed.
  void AttachToEndpoints(QueryId id, UserQuery* uq);
  /// Inverse of AttachToEndpoints (shrinks / deactivates nodes).
  void DetachFromEndpoints(QueryId id, UserQuery* uq);

  /// Recomputes n.k for an active node after membership change; returns
  /// true if the node's monitored result may have changed shape.
  void SyncNodeK(NodeId n, ActiveNode* an);

  /// From-scratch evaluation of one query: bidirectional sequence walk plus
  /// endpoint NN merge; refreshes result, bound, influence intervals.
  void EvaluateQuery(QueryId id, UserQuery* uq);

  /// Removes q from the influence lists of its covered edges.
  void ClearInfluence(QueryId id, UserQuery* uq);

  RoadNetwork* net_;
  ObjectTable* objects_;
  /// Shared, read-only: the same table instance backs every co-resident
  /// GMA monitor of this graph (cached on the SharedTopology).
  std::shared_ptr<const SequenceTable> st_;
  ImaEngine engine_;  // Monitors active nodes, keyed by NodeId.
  std::unordered_map<QueryId, UserQuery> queries_;
  std::unordered_map<NodeId, ActiveNode> active_;
  /// Per-edge influence lists of *user queries* with reached intervals.
  std::vector<std::unordered_map<QueryId, Interval>> il_;
  /// Scratch accumulator for EvaluateQuery (cleared per evaluation).
  CandidateSet eval_cand_;
  Stats stats_;
};

}  // namespace cknn

#endif  // CKNN_CORE_GMA_H_

#ifndef CKNN_CORE_IMA_H_
#define CKNN_CORE_IMA_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/expansion.h"
#include "src/core/knn_search.h"
#include "src/core/monitor.h"
#include "src/core/object_table.h"
#include "src/core/top_k.h"
#include "src/core/updates.h"
#include "src/graph/road_network.h"
#include "src/util/result.h"

namespace cknn {

/// \brief The incremental monitoring machinery of Section 4, factored as an
/// engine so that it can serve two masters:
///  * `Ima` monitors the user queries directly with it;
///  * `Gma` monitors the *active nodes* of Section 5 with it.
///
/// Per monitored query the engine owns the expansion tree
/// (`ExpansionState`), the persistent frontier (`Frontier` — the paper's
/// marks), and the known set (`CandidateSet`: every object discovered in
/// the covered region with its best known distance). Globally it owns the
/// influence lists (edge -> ids of queries the edge affects), which route
/// updates to exactly the queries they can invalidate (Section 4.2).
///
/// Maintenance cost is proportional to the *invalidated region*, as in the
/// paper:
///  * object updates touch the known set and at most continue the expansion
///    from the live frontier (a heap peek when nothing grows);
///  * edge-weight updates adjust/prune only the affected subtree and repair
///    the frontier along the pruned boundary;
///  * query movement re-roots onto the valid subtree (Section 4.3).
///
/// `ProcessUpdates` implements the complete algorithm of Figure 10:
/// weight decreases first, then increases, then query movements, then
/// object updates, then one rebuild pass per affected query.
class ImaEngine {
 public:
  /// Movement request for a monitored query (Section 4.3).
  struct MoveRequest {
    QueryId id = kInvalidQuery;
    NetworkPoint pos;
  };

  /// Maintenance counters (ablation benches report these).
  struct Stats {
    std::uint64_t full_recomputes = 0;
    std::uint64_t reroots = 0;
    std::uint64_t rebuilds = 0;
    std::uint64_t updates_routed = 0;
    std::uint64_t updates_ignored = 0;
  };

  /// Both tables outlive the engine and are mutated by ProcessUpdates.
  ImaEngine(RoadNetwork* net, ObjectTable* objects);

  ImaEngine(const ImaEngine&) = delete;
  ImaEngine& operator=(const ImaEngine&) = delete;

  /// Registers a query and computes its initial result (Fig. 2).
  Status AddQuery(QueryId id, const ExpansionSource& source, int k);

  /// Unregisters a query and clears its influence-list entries.
  Status RemoveQuery(QueryId id);

  /// Changes the number of monitored neighbors (GMA adjusts n.k when the
  /// query population of a sequence changes). Returns whether the result
  /// changed.
  Result<bool> SetK(QueryId id, int k);

  bool HasQuery(QueryId id) const { return entries_.count(id) != 0; }
  std::size_t NumQueries() const { return entries_.size(); }

  /// Current result in (distance, id) order; nullptr if unknown.
  const std::vector<Neighbor>* ResultOf(QueryId id) const;

  /// Current q.kNN_dist; +inf while fewer than k neighbors exist.
  double BoundOf(QueryId id) const;

  /// Number of monitored neighbors of a query.
  int KOf(QueryId id) const;

  /// Expansion tree of a query (inspection for tests/diagnostics);
  /// nullptr if unknown.
  const ExpansionState* StateOf(QueryId id) const;

  /// Influence list of an edge (inspection for tests/diagnostics).
  const std::unordered_set<QueryId>& InfluenceOf(EdgeId e) const {
    return influence_[e];
  }

  /// Known set of a query (inspection for tests/diagnostics); nullptr if
  /// unknown.
  const CandidateSet* KnownOf(QueryId id) const {
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second.known;
  }

  /// Applies one timestamp of object/edge/movement updates (Fig. 10) and
  /// returns the ids of queries whose result changed.
  std::vector<QueryId> ProcessUpdates(
      const std::vector<ObjectUpdate>& object_updates,
      const std::vector<EdgeUpdate>& edge_updates,
      const std::vector<MoveRequest>& moves);

  std::size_t MemoryBytes() const;
  const Stats& stats() const { return stats_; }

  /// Verifies the engine's internal invariants (tree label consistency,
  /// known-set/coverage/influence-list agreement, frontier sanity).
  /// O(everything) — used by the property tests and for diagnostics.
  Status CheckInvariants() const;

  /// \name Ablation switches (default on; see bench/ablations)
  /// @{
  /// Off: affecting updates trigger from-scratch recomputation instead of
  /// expansion-tree reuse.
  void set_use_tree_reuse(bool on) { use_tree_reuse_ = on; }
  /// Off: every update is routed to every query (no influence-list
  /// filtering); non-affecting ones are still detected, but only after a
  /// per-query probe.
  void set_use_influence_filter(bool on) { use_influence_filter_ = on; }
  /// @}

  /// Shared-table mode (see Monitor::set_object_table_externally_applied):
  /// on, the engine routes object updates through its structures but does
  /// not mutate the object table — the caller already applied them.
  void set_external_object_table(bool on) { external_object_table_ = on; }

 private:
  struct Entry {
    ExpansionSource source;
    int k = 1;
    ExpansionState state;
    Frontier frontier;
    CandidateSet known;
    std::vector<Neighbor> result;
    /// Edges holding this query in their influence list.
    std::unordered_set<EdgeId> covered;
    /// Edges whose objects must be re-derived before the next rebuild.
    std::unordered_set<EdgeId> rescan_edges;
    /// Edges that may have left the covered region. Influence-list removal
    /// is deferred to the rebuild phase: within the timestamp, object
    /// updates must still be routed through these edges (Fig. 10 processes
    /// edge updates *before* object updates).
    std::unordered_set<EdgeId> pending_uncover;
    bool needs_recompute = false;
    bool affected = false;
    /// Re-derive every known distance and rebuild coverage wholesale
    /// (set by re-rooting, where all distances shift frames).
    bool full_refresh = false;
  };

  void ApplyEdgeDecrease(const EdgeUpdate& update);
  void ApplyEdgeIncrease(const EdgeUpdate& update);
  void ApplyMove(const MoveRequest& move);
  void ApplyObjectUpdate(const ObjectUpdate& update);

  /// \name Frontier / coverage repairs (cost: O(region x degree))
  /// @{
  /// After settled nodes were removed: drops orphaned tentative labels,
  /// re-derives boundary candidates from the surviving settled set, shrinks
  /// coverage, and marks the region's edges for object re-derivation.
  void RepairAfterRemoval(QueryId id, Entry* entry,
                          const std::vector<NodeId>& removed);
  /// After subtree distances were lowered: re-relaxes the region's frontier
  /// and marks its edges for object re-derivation.
  void RepairAfterAdjust(Entry* entry, const std::vector<NodeId>& adjusted);
  /// After an edge's weight changed: re-derives tentative labels that went
  /// through it (stale keys would otherwise settle wrongly).
  void RepairEdgeKeys(Entry* entry, EdgeId edge);
  /// Re-relaxes one unsettled node from all its settled neighbors.
  void RederiveFrontierNode(Entry* entry, NodeId n);
  /// @}

  /// Continues the expansion of an affected entry and refreshes its
  /// result. Returns whether the result changed.
  bool RebuildEntry(QueryId id, Entry* entry);
  /// From-scratch recomputation (Fig. 2). Returns whether result changed.
  bool RecomputeEntry(QueryId id, Entry* entry);

  /// Re-derives the distances of objects on one edge in the known set.
  void RescanEdge(Entry* entry, EdgeId e);
  /// Re-derives every known distance (re-rooting).
  void RefreshKnownAll(Entry* entry);
  /// Recomputes the covered-edge set from scratch and diffs the influence
  /// lists accordingly.
  void RebuildCoverage(QueryId id, Entry* entry);
  /// Adds the incident edges of newly settled nodes to the coverage.
  void GrowCoverage(QueryId id, Entry* entry,
                    const std::vector<NodeId>& fresh);

  /// Extracts the new top-k result; returns whether it changed.
  bool ExtractResult(Entry* entry);

  /// Invokes fn(id, entry) for every query influenced by `e` (or every
  /// query when influence filtering is disabled).
  template <typename Fn>
  void ForEachInfluenced(EdgeId e, Fn&& fn);

  RoadNetwork* net_;
  ObjectTable* objects_;
  std::unordered_map<QueryId, Entry> entries_;
  /// Influence lists, indexed by edge (the `e.IL` of Section 3).
  std::vector<std::unordered_set<QueryId>> influence_;
  Stats stats_;
  bool use_tree_reuse_ = true;
  bool use_influence_filter_ = true;
  bool external_object_table_ = false;
};

/// \brief IMA — the incremental monitoring algorithm (Section 4) as a
/// user-facing Monitor: each continuous query is monitored individually
/// through its own expansion tree and influence lists.
class Ima : public Monitor {
 public:
  Ima(RoadNetwork* net, ObjectTable* objects) : engine_(net, objects) {}

  Status ProcessTimestamp(const UpdateBatch& batch) override;
  const std::vector<Neighbor>* ResultOf(QueryId id) const override {
    return engine_.ResultOf(id);
  }
  std::size_t NumQueries() const override { return engine_.NumQueries(); }
  std::size_t MemoryBytes() const override { return engine_.MemoryBytes(); }
  std::string_view name() const override { return "IMA"; }
  void set_object_table_externally_applied(bool on) override {
    engine_.set_external_object_table(on);
  }

  ImaEngine& engine() { return engine_; }
  const ImaEngine& engine() const { return engine_; }

 private:
  ImaEngine engine_;
};

}  // namespace cknn

#endif  // CKNN_CORE_IMA_H_

#include "src/core/sharding.h"

#include <functional>
#include <utility>

#include "src/core/gma.h"
#include "src/core/ima.h"
#include "src/core/ovh.h"
#include "src/util/macros.h"

namespace cknn {

namespace {

std::unique_ptr<Monitor> MakeMonitor(Algorithm algorithm, RoadNetwork* net,
                                     ObjectTable* objects) {
  switch (algorithm) {
    case Algorithm::kIma:
      return std::make_unique<Ima>(net, objects);
    case Algorithm::kGma:
      return std::make_unique<Gma>(net, objects);
    case Algorithm::kOvh:
      return std::make_unique<Ovh>(net, objects);
  }
  CKNN_CHECK(false);
  return nullptr;
}

}  // namespace

ShardSet::ShardSet(RoadNetwork* primary_network, ObjectTable* objects,
                   Algorithm algorithm, int num_shards, bool pipelined) {
  CKNN_CHECK(primary_network != nullptr);
  CKNN_CHECK(objects != nullptr);
  CKNN_CHECK(num_shards >= 1);
  // Shard 0 monitors the primary network in place and maintenance runs on
  // pool workers; warm up the lazily built adjacency index while the
  // network is still touched by this thread alone.
  primary_network->BuildAdjacencyIndex();
  shards_.resize(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    RoadNetwork* net = primary_network;
    if (s > 0) {
      // A shared-topology view, not a clone: the immutable topology (and
      // tile partition) is referenced, only the dynamic weights are
      // per-shard — O(8 bytes/edge) instead of O(network) per shard.
      shard.network =
          std::make_unique<RoadNetwork>(primary_network->SharedView());
      net = shard.network.get();
    }
    shard.monitor = MakeMonitor(algorithm, net, objects);
    shard.monitor->set_object_table_externally_applied(true);
  }
  // In pipelined mode every shard must be runnable off the submitting
  // thread, so the pool holds one worker per shard; in blocking mode the
  // caller participates and `num_shards - 1` workers suffice.
  const int workers = pipelined ? num_shards : num_shards - 1;
  if (workers > 0) pool_ = std::make_unique<ThreadPool>(workers);
}

ShardSet::~ShardSet() {
  owner_role_.Assert();
  if (in_flight_) {
    CKNN_IGNORE_STATUS(WaitProcessTimestamp(),
                       "destructor drain: the tick's status has nowhere "
                       "to go; per-shard statuses were already merged "
                       "into the shards' own state");
  }
}

void ShardSet::Partition(const UpdateBatch& aggregated) {
  // The broadcast halves are copied per shard because Monitor consumes one
  // self-contained UpdateBatch. The copies are flat memcpy-sized records
  // into vectors that keep their capacity across ticks, and every shard
  // already does O(batch) routing work on them — so this adds a constant
  // factor to a term the maintenance phase dominates. Revisit (share the
  // broadcast vectors through the Monitor interface) if profiles disagree.
  for (Shard& shard : shards_) {
    shard.sub.objects = aggregated.objects;  // Broadcast.
    shard.sub.edges = aggregated.edges;      // Broadcast.
    shard.sub.queries.clear();
    shard.status = Status::OK();
  }
  // Query updates go to the owning shard only; relative order (including
  // terminate-then-reinstall pairs) is preserved per shard.
  for (const QueryUpdate& u : aggregated.queries) {
    shards_[static_cast<std::size_t>(ShardOf(u.id))].sub.queries.push_back(u);
  }
}

void ShardSet::UpdateRegistry(const UpdateBatch& aggregated) {
  for (const QueryUpdate& u : aggregated.queries) {
    switch (u.kind) {
      case QueryUpdate::Kind::kInstall:
        registered_.insert(u.id);
        break;
      case QueryUpdate::Kind::kTerminate:
        registered_.erase(u.id);
        break;
      case QueryUpdate::Kind::kMove:
        break;
    }
  }
}

Status ShardSet::MergeStatuses() const {
  // Merge in shard order: the first failing shard wins deterministically,
  // regardless of which thread finished when.
  for (const Shard& shard : shards_) {
    if (!shard.status.ok()) return shard.status;
  }
  return Status::OK();
}

Status ShardSet::ProcessTimestamp(const UpdateBatch& aggregated) {
  owner_role_.Assert();
  CKNN_CHECK(!in_flight_);
  UpdateRegistry(aggregated);
  if (shards_.size() == 1) {
    // Single shard: the serial path, no partition copies, no pool
    // hand-off even when one exists (pipelined single-shard sets fall
    // back to it through Begin/Wait instead).
    return shards_[0].monitor->ProcessTimestamp(aggregated);
  }
  Partition(aggregated);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards_.size());
  for (Shard& shard : shards_) {
    tasks.push_back([&shard] {
      shard.status = shard.monitor->ProcessTimestamp(shard.sub);
    });
  }
  pool_->RunAll(tasks);
  return MergeStatuses();
}

void ShardSet::BeginProcessTimestamp(const UpdateBatch& aggregated) {
  owner_role_.Assert();
  CKNN_CHECK(!in_flight_);
  CKNN_CHECK(pool_ != nullptr);  // Requires pipelined construction.
  UpdateRegistry(aggregated);
  Partition(aggregated);
  detached_tasks_.clear();
  detached_tasks_.reserve(shards_.size());
  for (Shard& shard : shards_) {
    detached_tasks_.push_back([&shard] {
      shard.status = shard.monitor->ProcessTimestamp(shard.sub);
    });
  }
  in_flight_ = true;
  pool_->Begin(detached_tasks_);
}

Status ShardSet::WaitProcessTimestamp() {
  owner_role_.Assert();
  CKNN_CHECK(in_flight_);
  pool_->Wait();
  in_flight_ = false;
  return MergeStatuses();
}

std::size_t ShardSet::NumQueries() const {
  owner_role_.Assert();
  CKNN_CHECK(!in_flight_);
  std::size_t n = 0;
  for (const Shard& shard : shards_) n += shard.monitor->NumQueries();
  return n;
}

Result<std::size_t> ShardSet::TryNumQueries() const {
  owner_role_.Assert();
  if (in_flight_) {
    return Status::FailedPrecondition(
        "query count unavailable: a detached tick is in flight (Drain "
        "first)");
  }
  return NumQueries();
}

Result<std::size_t> ShardSet::TryMemoryBytes() const {
  owner_role_.Assert();
  if (in_flight_) {
    return Status::FailedPrecondition(
        "memory metrics unavailable: a detached tick is in flight (Drain "
        "first)");
  }
  return MemoryBytes();
}

std::size_t ShardSet::MemoryBytes() const {
  owner_role_.Assert();
  CKNN_CHECK(!in_flight_);
  std::size_t bytes = 0;
  for (const Shard& shard : shards_) {
    bytes += shard.monitor->MemoryBytes();
    // Per-shard weight overlay of the shared-topology view (shard 0 uses
    // the server-owned primary network, which — like the shared topology
    // itself — is graph substrate, not monitoring structure).
    if (shard.network != nullptr) {
      bytes += shard.network->OverlayMemoryBytes();
    }
  }
  // Read-only structures shared across the shards (the GMA sequence
  // table), counted exactly once.
  bytes += shards_[0].monitor->SharedMemoryBytes();
  return bytes;
}

}  // namespace cknn

#include "src/core/sharding.h"

#include <functional>
#include <utility>

#include "src/core/gma.h"
#include "src/core/ima.h"
#include "src/core/ovh.h"
#include "src/util/macros.h"

namespace cknn {

namespace {

std::unique_ptr<Monitor> MakeMonitor(Algorithm algorithm, RoadNetwork* net,
                                     ObjectTable* objects) {
  switch (algorithm) {
    case Algorithm::kIma:
      return std::make_unique<Ima>(net, objects);
    case Algorithm::kGma:
      return std::make_unique<Gma>(net, objects);
    case Algorithm::kOvh:
      return std::make_unique<Ovh>(net, objects);
  }
  CKNN_CHECK(false);
  return nullptr;
}

}  // namespace

ShardSet::ShardSet(RoadNetwork* primary_network, ObjectTable* objects,
                   Algorithm algorithm, int num_shards) {
  CKNN_CHECK(primary_network != nullptr);
  CKNN_CHECK(objects != nullptr);
  CKNN_CHECK(num_shards >= 1);
  shards_.resize(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    RoadNetwork* net = primary_network;
    if (s > 0) {
      shard.network =
          std::make_unique<RoadNetwork>(CloneNetwork(*primary_network));
      net = shard.network.get();
    }
    shard.monitor = MakeMonitor(algorithm, net, objects);
    shard.monitor->set_object_table_externally_applied(true);
  }
  if (num_shards > 1) pool_ = std::make_unique<ThreadPool>(num_shards - 1);
}

void ShardSet::Partition(const UpdateBatch& aggregated) {
  // The broadcast halves are copied per shard because Monitor consumes one
  // self-contained UpdateBatch. The copies are flat memcpy-sized records
  // into vectors that keep their capacity across ticks, and every shard
  // already does O(batch) routing work on them — so this adds a constant
  // factor to a term the maintenance phase dominates. Revisit (share the
  // broadcast vectors through the Monitor interface) if profiles disagree.
  for (Shard& shard : shards_) {
    shard.sub.objects = aggregated.objects;  // Broadcast.
    shard.sub.edges = aggregated.edges;      // Broadcast.
    shard.sub.queries.clear();
    shard.status = Status::OK();
  }
  // Query updates go to the owning shard only; relative order (including
  // terminate-then-reinstall pairs) is preserved per shard.
  for (const QueryUpdate& u : aggregated.queries) {
    shards_[static_cast<std::size_t>(ShardOf(u.id))].sub.queries.push_back(u);
  }
}

Status ShardSet::ProcessTimestamp(const UpdateBatch& aggregated) {
  if (shards_.size() == 1) {
    // Single shard: today's serial path, no partition copies, no pool.
    return shards_[0].monitor->ProcessTimestamp(aggregated);
  }
  Partition(aggregated);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards_.size());
  for (Shard& shard : shards_) {
    tasks.push_back([&shard] {
      shard.status = shard.monitor->ProcessTimestamp(shard.sub);
    });
  }
  pool_->RunAll(tasks);
  // Merge in shard order: the first failing shard wins deterministically,
  // regardless of which thread finished when.
  for (const Shard& shard : shards_) {
    if (!shard.status.ok()) return shard.status;
  }
  return Status::OK();
}

std::size_t ShardSet::NumQueries() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) n += shard.monitor->NumQueries();
  return n;
}

std::size_t ShardSet::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const Shard& shard : shards_) bytes += shard.monitor->MemoryBytes();
  return bytes;
}

}  // namespace cknn

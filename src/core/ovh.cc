#include "src/core/ovh.h"

#include "src/util/macros.h"
#include "src/util/mem.h"

namespace cknn {

Status Ovh::ProcessTimestamp(const UpdateBatch& batch) {
  // Apply updates to the shared tables (unless the caller maintains the
  // object table — sharded mode); no result maintenance state exists.
  if (!external_object_table_) {
    for (const ObjectUpdate& u : batch.objects) {
      CKNN_RETURN_NOT_OK(objects_->Apply(u));
    }
  }
  for (const EdgeUpdate& u : batch.edges) {
    CKNN_RETURN_NOT_OK(net_->SetWeight(u.edge, u.new_weight));
  }
  for (const QueryUpdate& qu : batch.queries) {
    switch (qu.kind) {
      case QueryUpdate::Kind::kTerminate:
        if (queries_.erase(qu.id) == 0) {
          return Status::NotFound("terminate for unknown query");
        }
        break;
      case QueryUpdate::Kind::kMove: {
        auto it = queries_.find(qu.id);
        if (it == queries_.end()) {
          return Status::NotFound("move for unknown query");
        }
        it->second.pos = qu.pos;
        break;
      }
      case QueryUpdate::Kind::kInstall: {
        if (qu.k < 1) return Status::InvalidArgument("k must be >= 1");
        if (queries_.count(qu.id) != 0) {
          return Status::AlreadyExists("query id already monitored");
        }
        UserQuery& uq = queries_[qu.id];
        uq.pos = qu.pos;
        uq.k = qu.k;
        break;
      }
    }
  }
  // Overhaul: recompute everything (Fig. 2 per query). The scratch
  // expansion is reused across queries — O(1) epoch clears instead of
  // rebuilding the state/frontier/candidate structures each time.
  // cknn-lint: allow(unordered-iter) per-query recompute into (q)-keyed state
  for (auto& [id, uq] : queries_) {
    (void)id;
    uq.result = SnapshotKnn(*net_, *objects_, uq.pos, uq.k, &scratch_);
  }
  return Status::OK();
}

const std::vector<Neighbor>* Ovh::ResultOf(QueryId id) const {
  auto it = queries_.find(id);
  return it == queries_.end() ? nullptr : &it->second.result;
}

std::size_t Ovh::MemoryBytes() const {
  std::size_t bytes = HashMapBytes(queries_) + scratch_.MemoryBytes();
  // cknn-lint: allow(unordered-iter) commutative byte sum
  for (const auto& [id, uq] : queries_) {
    (void)id;
    bytes += VectorBytes(uq.result);
  }
  return bytes;
}

}  // namespace cknn

#include "src/core/top_k.h"

#include <algorithm>

#include "src/util/macros.h"
#include "src/util/mem.h"

namespace cknn {

void CandidateSet::EnsureCap(int k) const {
  if (k <= top_cap_) return;
  top_cap_ = k;
  top_exact_ = false;
}

void CandidateSet::TopInsert(const Key& key) const {
  if (!top_exact_) return;
  if (top_.size() == static_cast<std::size_t>(top_cap_)) {
    if (key >= top_.back()) return;  // Beyond the tracked range.
    top_.pop_back();
  }
  top_.insert(std::lower_bound(top_.begin(), top_.end(), key), key);
}

bool CandidateSet::TopErase(const Key& key) const {
  if (!top_exact_) return false;
  const auto it = std::lower_bound(top_.begin(), top_.end(), key);
  if (it == top_.end() || *it != key) return false;
  top_.erase(it);
  return true;
}

void CandidateSet::EnsureTop() const {
  if (top_exact_) return;
  top_.clear();
  // cknn-lint: allow(unordered-iter) bounded insert under a total order
  for (const auto& [id, dist] : by_id_) {
    const Key key{dist, id};
    if (top_.size() == static_cast<std::size_t>(top_cap_)) {
      if (key >= top_.back()) continue;
      top_.pop_back();
    }
    top_.insert(std::lower_bound(top_.begin(), top_.end(), key), key);
  }
  top_exact_ = true;
}

bool CandidateSet::Offer(ObjectId id, double dist) {
  const auto [it, inserted] = by_id_.try_emplace(id, dist);
  if (inserted) {
    TopInsert(Key{dist, id});
    return true;
  }
  if (dist >= it->second) return false;
  // A lowered entry can only move up: drop its old key (if tracked) and
  // re-insert — exactness is preserved, untracked entries stay >= back.
  TopErase(Key{it->second, id});
  TopInsert(Key{dist, id});
  it->second = dist;
  return true;
}

void CandidateSet::Set(ObjectId id, double dist) {
  const auto [it, inserted] = by_id_.try_emplace(id, dist);
  if (inserted) {
    TopInsert(Key{dist, id});
    return;
  }
  if (dist == it->second) return;
  if (dist < it->second) {
    TopErase(Key{it->second, id});
    TopInsert(Key{dist, id});
    it->second = dist;
    return;
  }
  // Raised distance: a tracked entry may now rank behind an untracked one
  // we know nothing about — the array goes stale unless the whole set fits
  // in it. Raising an untracked entry keeps it untracked (still >= back).
  if (TopErase(Key{it->second, id})) {
    if (by_id_.size() <= static_cast<std::size_t>(top_cap_)) {
      TopInsert(Key{dist, id});
    } else {
      top_exact_ = false;
    }
  }
  it->second = dist;
}

std::optional<double> CandidateSet::Remove(ObjectId id) {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  const double dist = it->second;
  if (TopErase(Key{dist, id}) && by_id_.size() - 1 > top_.size()) {
    // An untracked entry should be promoted into the freed slot.
    top_exact_ = false;
  }
  by_id_.erase(it);
  return dist;
}

std::optional<double> CandidateSet::DistanceOf(ObjectId id) const {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  return it->second;
}

double CandidateSet::KthDist(int k) const {
  CKNN_DCHECK(k >= 1);
  if (by_id_.size() < static_cast<std::size_t>(k)) return kInfDist;
  EnsureCap(k);
  EnsureTop();
  return top_[static_cast<std::size_t>(k) - 1].first;
}

std::vector<Neighbor> CandidateSet::TopK(int k) const {
  CKNN_DCHECK(k >= 1);
  EnsureCap(k);
  EnsureTop();
  const std::size_t n = std::min(static_cast<std::size_t>(k), top_.size());
  std::vector<Neighbor> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Neighbor{top_[i].second, top_[i].first});
  }
  return out;
}

std::vector<Neighbor> CandidateSet::All() const {
  std::vector<Key> keys;
  keys.reserve(by_id_.size());
  // cknn-lint: allow(unordered-iter) collected then sorted below
  for (const auto& [id, dist] : by_id_) keys.push_back(Key{dist, id});
  std::sort(keys.begin(), keys.end());
  std::vector<Neighbor> out;
  out.reserve(keys.size());
  for (const Key& key : keys) {
    out.push_back(Neighbor{key.second, key.first});
  }
  return out;
}

void CandidateSet::PruneBeyond(double bound) {
  // cknn-lint: allow(unordered-iter) keyed erases; top_ repair order-free
  for (auto it = by_id_.begin(); it != by_id_.end();) {
    it = it->second > bound ? by_id_.erase(it) : std::next(it);
  }
  if (top_exact_) {
    while (!top_.empty() && top_.back().first > bound) top_.pop_back();
    if (by_id_.size() > top_.size()) top_exact_ = false;
  }
}

void CandidateSet::Clear() {
  by_id_.clear();
  top_.clear();
  top_exact_ = true;
}

std::size_t CandidateSet::MemoryBytes() const {
  return HashMapBytes(by_id_) + top_.capacity() * sizeof(Key);
}

}  // namespace cknn

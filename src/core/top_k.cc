#include "src/core/top_k.h"

#include "src/util/macros.h"
#include "src/util/mem.h"

namespace cknn {

bool CandidateSet::Offer(ObjectId id, double dist) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    by_id_.emplace(id, dist);
    ordered_.emplace(dist, id);
    return true;
  }
  if (dist >= it->second) return false;
  ordered_.erase(Key{it->second, id});
  it->second = dist;
  ordered_.emplace(dist, id);
  return true;
}

void CandidateSet::Set(ObjectId id, double dist) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    by_id_.emplace(id, dist);
    ordered_.emplace(dist, id);
    return;
  }
  if (dist == it->second) return;
  ordered_.erase(Key{it->second, id});
  it->second = dist;
  ordered_.emplace(dist, id);
}

std::optional<double> CandidateSet::Remove(ObjectId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  const double dist = it->second;
  ordered_.erase(Key{dist, id});
  by_id_.erase(it);
  return dist;
}

std::optional<double> CandidateSet::DistanceOf(ObjectId id) const {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  return it->second;
}

double CandidateSet::KthDist(int k) const {
  CKNN_DCHECK(k >= 1);
  if (static_cast<int>(ordered_.size()) < k) return kInfDist;
  auto it = ordered_.begin();
  std::advance(it, k - 1);
  return it->first;
}

std::vector<Neighbor> CandidateSet::TopK(int k) const {
  std::vector<Neighbor> out;
  out.reserve(static_cast<std::size_t>(k));
  for (auto it = ordered_.begin(); it != ordered_.end() && k > 0; ++it, --k) {
    out.push_back(Neighbor{it->second, it->first});
  }
  return out;
}

std::vector<Neighbor> CandidateSet::All() const {
  std::vector<Neighbor> out;
  out.reserve(ordered_.size());
  for (const Key& key : ordered_) {
    out.push_back(Neighbor{key.second, key.first});
  }
  return out;
}

void CandidateSet::PruneBeyond(double bound) {
  while (!ordered_.empty()) {
    auto last = std::prev(ordered_.end());
    if (last->first <= bound) break;
    by_id_.erase(last->second);
    ordered_.erase(last);
  }
}

void CandidateSet::Clear() {
  by_id_.clear();
  ordered_.clear();
}

std::size_t CandidateSet::MemoryBytes() const {
  // std::set nodes: key + three pointers + color.
  return HashMapBytes(by_id_) +
         ordered_.size() * (sizeof(Key) + 4 * sizeof(void*));
}

}  // namespace cknn

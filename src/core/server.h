#ifndef CKNN_CORE_SERVER_H_
#define CKNN_CORE_SERVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/monitor.h"
#include "src/core/object_table.h"
#include "src/core/sharding.h"
#include "src/core/updates.h"
#include "src/graph/road_network.h"
#include "src/spatial/pmr_quadtree.h"
#include "src/util/result.h"

namespace cknn {

/// \brief The central monitoring server of Section 3: owns the road
/// network, the spatial index *SI* (PMR quadtree over the edges), the
/// object table, and the monitored queries — partitioned across one or
/// more worker shards (see src/core/sharding.h and docs/sharding.md).
///
/// Per timestamp, clients feed the server one `UpdateBatch`; `Tick` runs a
/// deterministic pipeline:
///  1. aggregate the batch once (Section 4.5's preprocessing step),
///  2. validate it against the shared tables,
///  3. apply the object updates to the shared object table,
///  4. broadcast object/edge updates — and route query updates — to the
///     shards, which run their per-shard maintenance in parallel,
///  5. merge shard statuses/metrics in shard order.
/// With the default single shard this degenerates to the serial algorithm
/// of the paper; with `num_shards > 1` per-query results are identical
/// (same bytes) for IMA/OVH and identical within the conformance distance
/// tolerance for GMA, whose active-node grouping is shard-local
/// (docs/sharding.md).
///
/// Positions may be given directly as `NetworkPoint`s or as raw
/// coordinates snapped through the spatial index.
class MonitoringServer {
 public:
  /// Takes ownership of the network. The network topology is fixed for the
  /// lifetime of the server; weights change through edge updates.
  /// `num_shards >= 1` selects the worker-shard count (1 = serial).
  MonitoringServer(RoadNetwork network, Algorithm algorithm,
                   int num_shards = 1);

  MonitoringServer(const MonitoringServer&) = delete;
  MonitoringServer& operator=(const MonitoringServer&) = delete;

  /// Processes one timestamp of updates (aggregating duplicates per
  /// entity) and advances the clock.
  Status Tick(const UpdateBatch& batch);

  /// \name Convenience single-entity operations (each runs a mini-tick).
  /// @{
  Status InstallQuery(QueryId id, const NetworkPoint& pos, int k);
  Status TerminateQuery(QueryId id);
  Status MoveQuery(QueryId id, const NetworkPoint& pos);
  Status AddObject(ObjectId id, const NetworkPoint& pos);
  Status RemoveObject(ObjectId id);
  Status MoveObject(ObjectId id, const NetworkPoint& pos);
  Status UpdateEdgeWeight(EdgeId edge, double new_weight);
  /// @}

  /// Snaps raw coordinates to the nearest point on the network through the
  /// PMR quadtree (how coordinate-only location updates are interpreted).
  Result<NetworkPoint> Snap(const Point& p) const;

  /// Current k-NN set of a query, nullptr if unknown. Routed to the
  /// query's owning shard.
  const std::vector<Neighbor>* ResultOf(QueryId id) const {
    return shards_.ResultOf(id);
  }

  const RoadNetwork& network() const { return network_; }
  const ObjectTable& objects() const { return objects_; }
  const PmrQuadtree& spatial_index() const { return *spatial_index_; }
  Algorithm algorithm() const { return algorithm_; }
  std::uint64_t timestamp() const { return timestamp_; }

  /// Shard 0's monitor — with the default single shard, *the* monitor.
  /// (Kept for diagnostics and tests that reach into engine internals.)
  Monitor& monitor() { return shards_.monitor(0); }
  const Monitor& monitor() const { return shards_.monitor(0); }

  int num_shards() const { return shards_.num_shards(); }
  ShardSet& shards() { return shards_; }
  const ShardSet& shards() const { return shards_; }

  /// Registered queries across all shards.
  std::size_t NumQueries() const { return shards_.NumQueries(); }

  /// Monitoring-structure bytes (Figure 18's quantity), summed over the
  /// shards in shard order.
  std::size_t MonitorMemoryBytes() const { return shards_.MemoryBytes(); }

  /// Collapses multiple updates per object/query/edge into at most one, as
  /// required by the algorithms (Section 4.5) — except that a terminated
  /// and re-installed query collapses to a terminate immediately followed
  /// by an install (see Monitor::ProcessTimestamp). Exposed for testing.
  static UpdateBatch AggregateBatch(const UpdateBatch& batch);

 private:
  RoadNetwork network_;
  ObjectTable objects_;
  std::unique_ptr<PmrQuadtree> spatial_index_;
  Algorithm algorithm_;
  ShardSet shards_;
  std::uint64_t timestamp_ = 0;
};

}  // namespace cknn

#endif  // CKNN_CORE_SERVER_H_

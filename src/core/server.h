#ifndef CKNN_CORE_SERVER_H_
#define CKNN_CORE_SERVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/monitor.h"
#include "src/core/object_table.h"
#include "src/core/sharding.h"
#include "src/core/updates.h"
#include "src/graph/road_network.h"
#include "src/spatial/pmr_quadtree.h"
#include "src/util/result.h"

namespace cknn {

/// \brief The central monitoring server of Section 3: owns the road
/// network, the spatial index *SI* (PMR quadtree over the edges), the
/// object table, and the monitored queries — partitioned across one or
/// more worker shards (see src/core/sharding.h and docs/sharding.md).
///
/// Per timestamp, clients feed the server one `UpdateBatch`; `Tick` runs a
/// deterministic pipeline:
///  1. aggregate the batch once (Section 4.5's preprocessing step),
///  2. validate it against the shared tables,
///  3. apply the object updates to the shared object table,
///  4. broadcast object/edge updates — and route query updates — to the
///     shards, which run their per-shard maintenance in parallel,
///  5. merge shard statuses/metrics in shard order.
/// With the default single shard this degenerates to the serial algorithm
/// of the paper; with `num_shards > 1` per-query results are identical
/// (same bytes) for IMA/OVH and identical within the conformance distance
/// tolerance for GMA, whose active-node grouping is shard-local
/// (docs/sharding.md).
///
/// With `pipeline_depth == 2` the server additionally exposes asynchronous
/// ingest (`SubmitBatch`/`Drain`, docs/pipeline.md): stages 1–2 of tick
/// t+1 run on the submitting thread while the shards maintain tick t on
/// the pool workers, with a strict apply barrier (stage 3 waits for the
/// in-flight tick) keeping every result byte-identical to serial
/// execution. `pipeline_depth == 1` is the serial degenerate case, where
/// `SubmitBatch` is `Tick`.
///
/// Positions may be given directly as `NetworkPoint`s or as raw
/// coordinates snapped through the spatial index.
class MonitoringServer {
 public:
  /// Takes ownership of the network. The network topology is fixed for the
  /// lifetime of the server; weights change through edge updates.
  /// `num_shards >= 1` selects the worker-shard count (1 = serial);
  /// `pipeline_depth` in {1, 2} selects synchronous ticks or
  /// double-buffered asynchronous ingest; `num_tiles >= 1` partitions the
  /// weight storage into region tiles (1 = the flat monolithic layout;
  /// docs/tiling.md). Like shards and pipelining, tiling is an execution
  /// detail: results are identical at every tile count.
  MonitoringServer(RoadNetwork network, Algorithm algorithm,
                   int num_shards = 1, int pipeline_depth = 1,
                   int num_tiles = 1);

  MonitoringServer(const MonitoringServer&) = delete;
  MonitoringServer& operator=(const MonitoringServer&) = delete;

  /// Processes one timestamp of updates (aggregating duplicates per
  /// entity) and advances the clock. Equivalent to `SubmitBatch` followed
  /// by `Drain`, at every pipeline depth.
  Status Tick(const UpdateBatch& batch);

  /// Submits one timestamp of updates. At depth 1 this is `Tick`. At
  /// depth 2 it aggregates and validates the batch on the calling thread
  /// — overlapping the in-flight tick's shard maintenance — then waits
  /// for that tick (the apply barrier), applies the object updates, and
  /// starts this tick's maintenance detached before returning. Validation
  /// errors are reported synchronously and leave the server exactly as if
  /// the call had not been made (any in-flight tick keeps running).
  Status SubmitBatch(const UpdateBatch& batch);

  /// Blocks until no tick is in flight. Must be called (or implied via
  /// `Tick`) before reading results, metrics, or tables.
  Status Drain();

  /// Whether a submitted tick is still being maintained by the shards.
  bool InFlight() const { return shards_.InFlight(); }

  /// \name Convenience single-entity operations (each runs a mini-tick).
  /// @{
  Status InstallQuery(QueryId id, const NetworkPoint& pos, int k);
  Status TerminateQuery(QueryId id);
  Status MoveQuery(QueryId id, const NetworkPoint& pos);
  Status AddObject(ObjectId id, const NetworkPoint& pos);
  Status RemoveObject(ObjectId id);
  Status MoveObject(ObjectId id, const NetworkPoint& pos);
  Status UpdateEdgeWeight(EdgeId edge, double new_weight);
  /// @}

  /// Snaps raw coordinates to the nearest point on the network through the
  /// PMR quadtree (how coordinate-only location updates are interpreted).
  Result<NetworkPoint> Snap(const Point& p) const;

  /// Current k-NN set of a query, nullptr if unknown. Routed to the
  /// query's owning shard. Requires a drained server.
  const std::vector<Neighbor>* ResultOf(QueryId id) const {
    return shards_.ResultOf(id);
  }

  /// \name Non-aborting read accessors (serving front ends).
  /// Same data as `ResultOf`/`NumQueries`/`MonitorMemoryBytes`, but an
  /// in-flight tick yields FailedPrecondition instead of tripping the
  /// internal CHECK — a client read can never crash the server.
  /// @{
  Status TryResultOf(QueryId id, const std::vector<Neighbor>** out) const {
    return shards_.TryResultOf(id, out);
  }
  Result<std::size_t> TryNumQueries() const {
    return shards_.TryNumQueries();
  }
  Result<std::size_t> TryMonitorMemoryBytes() const {
    return shards_.TryMemoryBytes();
  }
  /// @}

  const RoadNetwork& network() const { return network_; }
  const ObjectTable& objects() const { return objects_; }
  const PmrQuadtree& spatial_index() const { return *spatial_index_; }
  Algorithm algorithm() const { return algorithm_; }
  std::uint64_t timestamp() const { return timestamp_; }
  int pipeline_depth() const { return pipeline_depth_; }

  /// Shard 0's monitor — with the default single shard, *the* monitor.
  /// (Kept for diagnostics and tests that reach into engine internals.)
  Monitor& monitor() { return shards_.monitor(0); }
  const Monitor& monitor() const { return shards_.monitor(0); }

  int num_shards() const { return shards_.num_shards(); }
  int num_tiles() const { return network_.num_tiles(); }
  ShardSet& shards() { return shards_; }
  const ShardSet& shards() const { return shards_; }

  /// Registered queries across all shards. Requires a drained server.
  std::size_t NumQueries() const { return shards_.NumQueries(); }

  /// Monitoring-structure bytes (Figure 18's quantity), summed over the
  /// shards in shard order. Requires a drained server.
  std::size_t MonitorMemoryBytes() const { return shards_.MemoryBytes(); }

  /// Collapses multiple updates per object/query/edge into at most one, as
  /// required by the algorithms (Section 4.5) — except that a terminated
  /// and re-installed query collapses to a terminate immediately followed
  /// by an install (see Monitor::ProcessTimestamp), that an object
  /// chain whose intermediate old positions are inconsistent is emitted
  /// raw in full, and that a chain which appears and disappears within
  /// the timestamp folds to a retained {nullopt, nullopt} slot — both so
  /// stage-2 validation rejects the batch the same way a sequential
  /// replay would (the server strips the validated no-op slots before
  /// routing). Exposed for testing.
  static UpdateBatch AggregateBatch(const UpdateBatch& batch);

 private:
  /// \name The three independent aggregation folds (`AggregateBatch` runs
  /// them serially; the pipelined prepare fans them out on the shard
  /// pool). Each reads one stream of `batch` and writes one stream of the
  /// output.
  /// @{
  static void AggregateObjects(const UpdateBatch& batch,
                               std::vector<ObjectUpdate>* out);
  static void AggregateQueries(const UpdateBatch& batch,
                               std::vector<QueryUpdate>* out);
  static void AggregateEdges(const UpdateBatch& batch,
                             std::vector<EdgeUpdate>* out);
  /// @}

  /// AggregateBatch with the folds fanned out across the shard pool
  /// (falls back to the serial folds when there is no pool).
  UpdateBatch AggregateOverlapped(const UpdateBatch& batch);

  /// Stage 2: validates an aggregated batch against the shared tables
  /// (with per-entity overlays for within-batch chains) without mutating
  /// anything. Safe to run while a detached tick is in flight: it reads
  /// only the object table (read-only during the parallel phase), the
  /// network topology, and the shard set's caller-side query registry.
  Status ValidateAggregated(const UpdateBatch& aggregated) const;

  /// Stage 3: applies the batch's object updates to the shared table.
  void ApplyObjectUpdates(const UpdateBatch& aggregated);

  /// The depth-1 synchronous pipeline (stages 1–5 in one call).
  Status SerialTick(const UpdateBatch& batch);

  RoadNetwork network_;
  ObjectTable objects_;
  std::unique_ptr<PmrQuadtree> spatial_index_;
  Algorithm algorithm_;
  int pipeline_depth_;
  ShardSet shards_;
  std::uint64_t timestamp_ = 0;
};

}  // namespace cknn

#endif  // CKNN_CORE_SERVER_H_

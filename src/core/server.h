#ifndef CKNN_CORE_SERVER_H_
#define CKNN_CORE_SERVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/monitor.h"
#include "src/core/object_table.h"
#include "src/core/updates.h"
#include "src/graph/road_network.h"
#include "src/spatial/pmr_quadtree.h"
#include "src/util/result.h"

namespace cknn {

/// Monitoring algorithm selection.
enum class Algorithm {
  kIma,  ///< Incremental monitoring (Section 4).
  kGma,  ///< Group monitoring over sequences (Section 5).
  kOvh,  ///< Overhaul baseline: recompute everything each timestamp.
};

const char* AlgorithmName(Algorithm algorithm);

/// \brief The central monitoring server of Section 3: owns the road
/// network, the spatial index *SI* (PMR quadtree over the edges), the
/// object table, and one monitoring algorithm.
///
/// Per timestamp, clients feed the server one `UpdateBatch`; the server
/// pre-aggregates multiple updates per entity (Section 4.5's preprocessing
/// step) and hands the batch to the algorithm, which maintains every
/// registered query's k-NN set. Positions may be given directly as
/// `NetworkPoint`s or as raw coordinates snapped through the spatial index.
class MonitoringServer {
 public:
  /// Takes ownership of the network. The network topology is fixed for the
  /// lifetime of the server; weights change through edge updates.
  MonitoringServer(RoadNetwork network, Algorithm algorithm);

  MonitoringServer(const MonitoringServer&) = delete;
  MonitoringServer& operator=(const MonitoringServer&) = delete;

  /// Processes one timestamp of updates (aggregating duplicates per
  /// entity) and advances the clock.
  Status Tick(const UpdateBatch& batch);

  /// \name Convenience single-entity operations (each runs a mini-tick).
  /// @{
  Status InstallQuery(QueryId id, const NetworkPoint& pos, int k);
  Status TerminateQuery(QueryId id);
  Status MoveQuery(QueryId id, const NetworkPoint& pos);
  Status AddObject(ObjectId id, const NetworkPoint& pos);
  Status RemoveObject(ObjectId id);
  Status MoveObject(ObjectId id, const NetworkPoint& pos);
  Status UpdateEdgeWeight(EdgeId edge, double new_weight);
  /// @}

  /// Snaps raw coordinates to the nearest point on the network through the
  /// PMR quadtree (how coordinate-only location updates are interpreted).
  Result<NetworkPoint> Snap(const Point& p) const;

  /// Current k-NN set of a query, nullptr if unknown.
  const std::vector<Neighbor>* ResultOf(QueryId id) const {
    return monitor_->ResultOf(id);
  }

  const RoadNetwork& network() const { return network_; }
  const ObjectTable& objects() const { return objects_; }
  const PmrQuadtree& spatial_index() const { return *spatial_index_; }
  Monitor& monitor() { return *monitor_; }
  const Monitor& monitor() const { return *monitor_; }
  Algorithm algorithm() const { return algorithm_; }
  std::uint64_t timestamp() const { return timestamp_; }

  /// Monitoring-structure bytes (Figure 18's quantity).
  std::size_t MonitorMemoryBytes() const { return monitor_->MemoryBytes(); }

  /// Collapses multiple updates per object/query/edge into at most one, as
  /// required by the algorithms (Section 4.5). Exposed for testing.
  static UpdateBatch AggregateBatch(const UpdateBatch& batch);

 private:
  RoadNetwork network_;
  ObjectTable objects_;
  std::unique_ptr<PmrQuadtree> spatial_index_;
  Algorithm algorithm_;
  std::unique_ptr<Monitor> monitor_;
  std::uint64_t timestamp_ = 0;
};

}  // namespace cknn

#endif  // CKNN_CORE_SERVER_H_

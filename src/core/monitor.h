#ifndef CKNN_CORE_MONITOR_H_
#define CKNN_CORE_MONITOR_H_

#include <string_view>
#include <vector>

#include "src/core/updates.h"
#include "src/graph/types.h"
#include "src/util/status.h"

namespace cknn {

/// \brief Interface of a continuous k-NN monitoring algorithm (IMA, GMA, or
/// the OVH baseline).
///
/// The monitor owns result maintenance. `ProcessTimestamp` receives the
/// (pre-aggregated) updates of one timestamp, applies object movements and
/// edge-weight changes to the shared `ObjectTable` / `RoadNetwork`, and
/// brings every registered query's result up to date.
class Monitor {
 public:
  virtual ~Monitor() = default;

  /// Processes one timestamp worth of updates. The batch must contain at
  /// most one update per object, query, and edge (the server aggregates).
  virtual Status ProcessTimestamp(const UpdateBatch& batch) = 0;

  /// Current k-NN set of a registered query, in (distance, id) order.
  /// nullptr if the query is unknown.
  virtual const std::vector<Neighbor>* ResultOf(QueryId id) const = 0;

  /// Number of registered queries.
  virtual std::size_t NumQueries() const = 0;

  /// Estimated bytes of the monitoring structures (expansion trees,
  /// influence lists, result sets) — the quantity of Figure 18.
  virtual std::size_t MemoryBytes() const = 0;

  /// Algorithm name for reports ("IMA", "GMA", "OVH").
  virtual std::string_view name() const = 0;
};

}  // namespace cknn

#endif  // CKNN_CORE_MONITOR_H_

#ifndef CKNN_CORE_MONITOR_H_
#define CKNN_CORE_MONITOR_H_

#include <string_view>
#include <vector>

#include "src/core/updates.h"
#include "src/graph/types.h"
#include "src/util/status.h"

namespace cknn {

/// Monitoring algorithm selection.
enum class Algorithm {
  kIma,  ///< Incremental monitoring (Section 4).
  kGma,  ///< Group monitoring over sequences (Section 5).
  kOvh,  ///< Overhaul baseline: recompute everything each timestamp.
};

inline const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kIma:
      return "IMA";
    case Algorithm::kGma:
      return "GMA";
    case Algorithm::kOvh:
      return "OVH";
  }
  return "?";
}

/// \brief Interface of a continuous k-NN monitoring algorithm (IMA, GMA, or
/// the OVH baseline).
///
/// The monitor owns result maintenance. `ProcessTimestamp` receives the
/// (pre-aggregated) updates of one timestamp, applies object movements and
/// edge-weight changes to the shared `ObjectTable` / `RoadNetwork`, and
/// brings every registered query's result up to date.
class Monitor {
 public:
  virtual ~Monitor() = default;

  /// Processes one timestamp worth of updates. The batch must contain at
  /// most one update per object and edge, and at most one per query —
  /// except that a terminate may be immediately followed by an install of
  /// the same id (a within-timestamp re-installation; the server's
  /// aggregation emits the pair in that order, and every algorithm
  /// processes terminations before installations).
  virtual Status ProcessTimestamp(const UpdateBatch& batch) = 0;

  /// Current k-NN set of a registered query, in (distance, id) order.
  /// nullptr if the query is unknown.
  virtual const std::vector<Neighbor>* ResultOf(QueryId id) const = 0;

  /// Number of registered queries.
  virtual std::size_t NumQueries() const = 0;

  /// Estimated bytes of the monitoring structures (expansion trees,
  /// influence lists, result sets) — the quantity of Figure 18. Excludes
  /// read-only structures shared with co-resident monitors (see
  /// SharedMemoryBytes).
  virtual std::size_t MemoryBytes() const = 0;

  /// Estimated bytes of read-only structures this monitor *shares* with
  /// every co-resident monitor of the same graph (today: GMA's sequence
  /// table, cached once per `SharedTopology`). `ShardSet::MemoryBytes`
  /// counts them once across all shards instead of per shard. 0 for
  /// monitors without shared structures.
  virtual std::size_t SharedMemoryBytes() const { return 0; }

  /// Algorithm name for reports ("IMA", "GMA", "OVH").
  virtual std::string_view name() const = 0;

  /// \brief Shared-table mode for sharded deployments (src/core/sharding.h).
  ///
  /// When on, the caller applies the batch's *object* updates to the shared
  /// `ObjectTable` exactly once before `ProcessTimestamp` runs, and the
  /// monitor must not apply them again — it only routes them through its
  /// own maintenance structures. Edge-weight updates are still applied by
  /// the monitor (each shard maintains the weights of its own network
  /// copy). Off by default: a standalone monitor owns its tables.
  virtual void set_object_table_externally_applied(bool on) { (void)on; }
};

}  // namespace cknn

#endif  // CKNN_CORE_MONITOR_H_

#ifndef CKNN_CORE_RANGE_SEARCH_H_
#define CKNN_CORE_RANGE_SEARCH_H_

#include <unordered_map>
#include <vector>

#include "src/core/object_table.h"
#include "src/core/updates.h"
#include "src/graph/network_point.h"
#include "src/graph/road_network.h"
#include "src/util/result.h"

namespace cknn {

/// \name Network range queries
///
/// The range counterpart of the k-NN queries: all objects within network
/// distance `radius` of a point. Continuous range monitoring over moving
/// objects is the problem solved by the Euclidean systems reviewed in
/// Section 2.2 (Q-index, SINA, MQM); here it comes in the road-network
/// metric, sharing the expansion substrate with the k-NN algorithms.
/// @{

/// All objects within `radius` of `center` (network distance), in
/// (distance, id) order. Bounded Dijkstra expansion: O(region).
std::vector<Neighbor> RangeSearch(const RoadNetwork& net,
                                  const ObjectTable& objects,
                                  const NetworkPoint& center, double radius);

/// \brief Continuous range monitoring: per-timestamp maintenance of all
/// registered range queries, recomputed with the bounded expansion (an
/// OVH-style evaluator; each query's cost is proportional to its range
/// region, which the fluctuating weights keep changing anyway).
class RangeMonitor {
 public:
  /// Both tables outlive the monitor and are mutated by ProcessTimestamp.
  RangeMonitor(RoadNetwork* net, ObjectTable* objects);

  /// Registers a range query. The `k` field of an install update is
  /// ignored; use this method instead of batched installs.
  Status InstallQuery(QueryId id, const NetworkPoint& center, double radius);
  Status TerminateQuery(QueryId id);
  Status MoveQuery(QueryId id, const NetworkPoint& center);

  /// Applies object/edge updates to the shared tables and refreshes every
  /// query's result. Query updates in the batch are rejected (ranges are
  /// managed through the typed methods above, which carry the radius).
  Status ProcessTimestamp(const UpdateBatch& batch);

  /// Objects currently within the query's radius; nullptr if unknown.
  const std::vector<Neighbor>* ResultOf(QueryId id) const;

  std::size_t NumQueries() const { return queries_.size(); }

 private:
  struct RangeQuery {
    NetworkPoint center;
    double radius = 0.0;
    std::vector<Neighbor> result;
  };

  void Refresh(RangeQuery* query);

  RoadNetwork* net_;
  ObjectTable* objects_;
  std::unordered_map<QueryId, RangeQuery> queries_;
};

/// @}

}  // namespace cknn

#endif  // CKNN_CORE_RANGE_SEARCH_H_

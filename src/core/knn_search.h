#ifndef CKNN_CORE_KNN_SEARCH_H_
#define CKNN_CORE_KNN_SEARCH_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/expansion.h"
#include "src/core/object_table.h"
#include "src/core/top_k.h"
#include "src/graph/road_network.h"
#include "src/util/indexed_min_heap.h"
#include "src/util/mem.h"

namespace cknn {

/// Counters for one expansion run; the ablation benches report these.
struct ExpandStats {
  std::size_t nodes_settled = 0;
  std::size_t heap_pushes = 0;
  std::size_t objects_offered = 0;
};

/// \brief The expansion frontier — the persistent representation of the
/// paper's *marks*: every un-verified node reachable from the settled
/// region, keyed by its best tentative distance, with the tree label it
/// would settle with.
///
/// Keeping the frontier alive between timestamps is what makes IMA's
/// maintenance proportional to the invalidated region: when only objects
/// moved, continuing the expansion costs a single heap peek, and when an
/// edge update prunes part of the tree, only the pruned boundary has to be
/// repaired (see ima.cc).
struct Frontier {
  IndexedMinHeap heap;
  /// Tentative tree label (parent, via edge) of each en-heaped node.
  std::unordered_map<NodeId, std::pair<NodeId, EdgeId>> pending;

  void Clear() {
    heap.Clear();
    pending.clear();
  }

  /// Inserts or improves a tentative node. Skips nodes already settled in
  /// `state`. Returns true if the frontier changed.
  bool Relax(const ExpansionState& state, NodeId n, double dist,
             NodeId parent, EdgeId via) {
    if (state.IsSettled(n)) return false;
    if (heap.PushOrDecrease(n, dist)) {
      pending[n] = {parent, via};
      return true;
    }
    return false;
  }

  /// Drops a tentative node if present.
  void Erase(NodeId n) {
    heap.Erase(n);
    pending.erase(n);
  }

  std::size_t MemoryBytes() const {
    return pending.size() * (sizeof(std::pair<const NodeId,
                                              std::pair<NodeId, EdgeId>>) +
                             2 * sizeof(void*) + 16);
  }
};

/// \brief Dijkstra network expansion — the initial-result algorithm of the
/// paper's Figure 2, generalized into a resumable form.
///
/// Continues the expansion of (`state`, `frontier`) until the next frontier
/// node is farther than the current k-th candidate distance
/// (`candidates->KthDist(k)`, +inf while fewer than k candidates are
/// known). When `state` is empty the frontier is (re)seeded from the
/// source; the source edge's endpoints are always re-relaxed (they can be
/// lost to shortcut prunes). Each settled node contributes the objects on
/// its incident edges to `candidates`.
///
/// Newly settled nodes are appended to `newly_settled` (if given) so the
/// caller can update coverage/influence-list structures incrementally.
void ExpandToK(const RoadNetwork& net, const ObjectTable& objects, int k,
               ExpansionState* state, Frontier* frontier,
               CandidateSet* candidates,
               std::vector<NodeId>* newly_settled = nullptr,
               ExpandStats* stats = nullptr);

/// Rebuilds `frontier` from scratch: every settled->unsettled adjacency of
/// `state` is relaxed. Used after operations that invalidate tentative
/// labels wholesale (query re-rooting).
void RebuildFrontier(const RoadNetwork& net, const ExpansionState& state,
                     Frontier* frontier);

/// Convenience: one-shot k-NN search from a point (what OVH runs per query
/// per timestamp). Returns the k nearest objects in (distance, id) order.
std::vector<Neighbor> SnapshotKnn(const RoadNetwork& net,
                                  const ObjectTable& objects,
                                  const NetworkPoint& source, int k,
                                  ExpandStats* stats = nullptr);

}  // namespace cknn

#endif  // CKNN_CORE_KNN_SEARCH_H_

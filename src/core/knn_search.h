#ifndef CKNN_CORE_KNN_SEARCH_H_
#define CKNN_CORE_KNN_SEARCH_H_

#include <utility>
#include <vector>

#include "src/core/expansion.h"
#include "src/core/object_table.h"
#include "src/core/top_k.h"
#include "src/graph/road_network.h"
#include "src/util/bucket_queue.h"
#include "src/util/dense_id_map.h"
#include "src/util/indexed_min_heap.h"
#include "src/util/mem.h"

namespace cknn {

/// Counters for one expansion run; the ablation benches report these.
struct ExpandStats {
  std::size_t nodes_settled = 0;
  std::size_t heap_pushes = 0;
  std::size_t objects_offered = 0;
};

/// Which priority structure a Frontier uses. The binary heap is the
/// default; the bucket queue is the experimental alternative (exact for
/// any bucket width, see src/util/bucket_queue.h) selectable through the
/// `CKNN_FRONTIER_QUEUE` environment variable (`binary` | `bucket`) or the
/// setter below. Flip the default only with bench numbers in hand
/// (docs/expansion.md).
enum class FrontierQueueKind { kBinaryHeap, kBucketQueue };

/// Process-wide default kind for newly constructed Frontiers. Initialized
/// once from CKNN_FRONTIER_QUEUE; the setter exists for tests/benches.
/// Existing Frontiers keep the kind they were built with.
FrontierQueueKind DefaultFrontierQueueKind();
void SetDefaultFrontierQueueKind(FrontierQueueKind kind);

/// \brief The expansion frontier — the persistent representation of the
/// paper's *marks*: every un-verified node reachable from the settled
/// region, keyed by its best tentative distance, with the tree label it
/// would settle with.
///
/// Keeping the frontier alive between timestamps is what makes IMA's
/// maintenance proportional to the invalidated region: when only objects
/// moved, continuing the expansion costs a single heap peek, and when an
/// edge update prunes part of the tree, only the pruned boundary has to be
/// repaired (see ima.cc).
struct Frontier {
  /// Fixed at construction (one branch per operation; the two structures
  /// are never live at once).
  const FrontierQueueKind kind;
  IndexedMinHeap heap;
  BucketQueue bucket;
  /// Tentative tree label (parent, via edge) of each en-heaped node.
  DenseIdMap<std::pair<NodeId, EdgeId>> pending;

  Frontier() : kind(DefaultFrontierQueueKind()) {}

  bool QueueEmpty() const {
    return kind == FrontierQueueKind::kBinaryHeap ? heap.empty()
                                                  : bucket.empty();
  }
  std::size_t QueueSize() const {
    return kind == FrontierQueueKind::kBinaryHeap ? heap.size()
                                                  : bucket.size();
  }

  /// Key of the closest tentative node. Checked error when empty.
  double TopKey() {
    return kind == FrontierQueueKind::kBinaryHeap ? heap.Top().key
                                                  : bucket.Top().key;
  }

  /// Removes and returns the closest tentative node (its label stays in
  /// `pending` for the caller to consume).
  IndexedMinHeap::Entry PopTop() {
    if (kind == FrontierQueueKind::kBinaryHeap) return heap.Pop();
    const BucketQueue::Entry e = bucket.Pop();
    return IndexedMinHeap::Entry{e.id, e.key};
  }

  void Clear() {
    heap.Clear();
    bucket.Clear();
    pending.Clear();
  }

  /// Inserts or improves a tentative node. Skips nodes already settled in
  /// `state`. Returns true if the frontier changed.
  bool Relax(const ExpansionState& state, NodeId n, double dist,
             NodeId parent, EdgeId via) {
    if (state.IsSettled(n)) return false;
    const bool changed = kind == FrontierQueueKind::kBinaryHeap
                             ? heap.PushOrDecrease(n, dist)
                             : bucket.PushOrDecrease(n, dist);
    if (changed) pending[n] = {parent, via};
    return changed;
  }

  /// Drops a tentative node if present.
  void Erase(NodeId n) {
    if (kind == FrontierQueueKind::kBinaryHeap) {
      heap.Erase(n);
    } else {
      bucket.Erase(n);
    }
    pending.Erase(n);
  }

  /// Estimated heap footprint: the priority structure (entry array plus its
  /// position index) and the tentative-label map.
  std::size_t MemoryBytes() const {
    return heap.MemoryBytes() + bucket.MemoryBytes() + pending.MemoryBytes();
  }
};

/// \brief Dijkstra network expansion — the initial-result algorithm of the
/// paper's Figure 2, generalized into a resumable form.
///
/// Continues the expansion of (`state`, `frontier`) until the next frontier
/// node is farther than the current k-th candidate distance
/// (`candidates->KthDist(k)`, +inf while fewer than k candidates are
/// known). When `state` is empty the frontier is (re)seeded from the
/// source; the source edge's endpoints are always re-relaxed (they can be
/// lost to shortcut prunes). Each settled node contributes the objects on
/// its incident edges to `candidates`.
///
/// Newly settled nodes are appended to `newly_settled` (if given) so the
/// caller can update coverage/influence-list structures incrementally.
void ExpandToK(const RoadNetwork& net, const ObjectTable& objects, int k,
               ExpansionState* state, Frontier* frontier,
               CandidateSet* candidates,
               std::vector<NodeId>* newly_settled = nullptr,
               ExpandStats* stats = nullptr);

/// Rebuilds `frontier` from scratch: every settled->unsettled adjacency of
/// `state` is relaxed. Used after operations that invalidate tentative
/// labels wholesale (query re-rooting).
void RebuildFrontier(const RoadNetwork& net, const ExpansionState& state,
                     Frontier* frontier);

/// Reusable working set for one-shot searches: the expansion state, the
/// frontier, and the candidate accumulator. All three clear in O(1)
/// (epoch bumps) and keep their pages/capacity, so a caller that runs many
/// searches per timestamp (OVH) pays no per-query allocation churn.
struct KnnScratch {
  ExpansionState state;
  Frontier frontier;
  CandidateSet candidates;

  std::size_t MemoryBytes() const {
    return state.MemoryBytes() + frontier.MemoryBytes() +
           candidates.MemoryBytes();
  }
};

/// Convenience: one-shot k-NN search from a point (what OVH runs per query
/// per timestamp). Returns the k nearest objects in (distance, id) order.
std::vector<Neighbor> SnapshotKnn(const RoadNetwork& net,
                                  const ObjectTable& objects,
                                  const NetworkPoint& source, int k,
                                  ExpandStats* stats = nullptr);

/// As above, but expanding inside `scratch` instead of fresh local
/// structures. The scratch is reset on entry and left holding the final
/// expansion (callers may inspect it; the next call clears it).
std::vector<Neighbor> SnapshotKnn(const RoadNetwork& net,
                                  const ObjectTable& objects,
                                  const NetworkPoint& source, int k,
                                  KnnScratch* scratch,
                                  ExpandStats* stats = nullptr);

}  // namespace cknn

#endif  // CKNN_CORE_KNN_SEARCH_H_

#include "src/core/path_knn.h"

#include <algorithm>

#include "src/core/knn_search.h"
#include "src/core/top_k.h"
#include "src/util/macros.h"

namespace cknn {

namespace {

/// Validates the path and returns cumulative weights: cum[i] is the
/// along-path cost from nodes[0] to nodes[i].
std::vector<double> CumulativeWeights(const RoadNetwork& net,
                                      const QueryPath& path) {
  CKNN_CHECK(!path.nodes.empty());
  CKNN_CHECK(path.edges.size() + 1 == path.nodes.size());
  std::vector<double> cum(path.nodes.size(), 0.0);
  for (std::size_t i = 0; i < path.edges.size(); ++i) {
    const RoadNetwork::Edge& ed = net.edge(path.edges[i]);
    CKNN_CHECK((ed.u == path.nodes[i] && ed.v == path.nodes[i + 1]) ||
               (ed.v == path.nodes[i] && ed.u == path.nodes[i + 1]));
    cum[i + 1] = cum[i] + ed.weight;
  }
  return cum;
}

/// k-NN sets of every path node (each node queried at its own location).
std::vector<std::vector<Neighbor>> NodeKnnSets(const RoadNetwork& net,
                                               const ObjectTable& objects,
                                               const QueryPath& path,
                                               int k) {
  std::vector<std::vector<Neighbor>> sets;
  sets.reserve(path.nodes.size());
  for (NodeId n : path.nodes) {
    sets.push_back(SnapshotKnn(net, objects, AtNode(net, n), k));
  }
  return sets;
}

}  // namespace

std::vector<ObjectId> PathKnnCandidates(const RoadNetwork& net,
                                        const ObjectTable& objects,
                                        const QueryPath& path, int k) {
  CKNN_CHECK(k >= 1);
  (void)CumulativeWeights(net, path);  // Validate structure.
  std::vector<ObjectId> out;
  for (const auto& set : NodeKnnSets(net, objects, path, k)) {
    for (const Neighbor& nb : set) out.push_back(nb.id);
  }
  for (EdgeId e : path.edges) {
    const auto& objs = objects.ObjectsOn(e);
    out.insert(out.end(), objs.begin(), objs.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Neighbor> KnnAtPathPoint(const RoadNetwork& net,
                                     const ObjectTable& objects,
                                     const QueryPath& path, int k,
                                     std::size_t edge_index, double t) {
  CKNN_CHECK(k >= 1);
  CKNN_CHECK(edge_index < path.edges.size());
  CKNN_CHECK(t >= 0.0 && t <= 1.0);
  const std::vector<double> cum = CumulativeWeights(net, path);
  const double cum_x =
      cum[edge_index] + t * net.WeightOf(path.edges[edge_index]);

  CandidateSet cand;
  // Via path nodes: along-path cost to the node plus the node's k-NN
  // distances. Exact for every true k-NN whose shortest path exits the
  // trajectory (the Lemma-1 argument).
  const auto node_sets = NodeKnnSets(net, objects, path, k);
  for (std::size_t i = 0; i < path.nodes.size(); ++i) {
    const double along = std::abs(cum[i] - cum_x);
    for (const Neighbor& nb : node_sets[i]) {
      cand.Offer(nb.id, along + nb.distance);
    }
  }
  // Objects on the trajectory itself: pure along-path distance.
  for (std::size_t j = 0; j < path.edges.size(); ++j) {
    const EdgeId e = path.edges[j];
    const RoadNetwork::Edge& ed = net.edge(e);
    const bool forward = ed.u == path.nodes[j];
    for (ObjectId obj : objects.ObjectsOn(e)) {
      const NetworkPoint pos = objects.Position(obj).value();
      const double off =
          (forward ? pos.t : 1.0 - pos.t) * ed.weight;
      cand.Offer(obj, std::abs(cum[j] + off - cum_x));
    }
  }
  return cand.TopK(k);
}

}  // namespace cknn

#include "src/core/range_search.h"

#include <algorithm>

#include "src/util/indexed_min_heap.h"
#include "src/util/macros.h"

namespace cknn {

std::vector<Neighbor> RangeSearch(const RoadNetwork& net,
                                  const ObjectTable& objects,
                                  const NetworkPoint& center,
                                  double radius) {
  CKNN_CHECK(radius >= 0.0);
  CKNN_CHECK(center.edge < net.NumEdges());
  std::unordered_map<ObjectId, double> best;
  auto offer = [&](ObjectId obj, double dist) {
    if (dist > radius) return;
    auto [it, inserted] = best.emplace(obj, dist);
    if (!inserted && dist < it->second) it->second = dist;
  };
  // Objects sharing the center's edge.
  for (ObjectId obj : objects.ObjectsOn(center.edge)) {
    const NetworkPoint pos = objects.Position(obj).value();
    offer(obj, AlongEdgeDistance(net, center, pos));
  }
  // Bounded Dijkstra from the center's edge endpoints.
  const RoadNetwork::Edge& ed = net.edge(center.edge);
  IndexedMinHeap heap;
  std::unordered_map<NodeId, double> settled;
  heap.PushOrDecrease(ed.u, WeightOffsetFromU(net, center));
  heap.PushOrDecrease(ed.v, WeightOffsetFromV(net, center));
  while (!heap.empty()) {
    if (heap.Top().key > radius) break;
    const auto [id, dist] = heap.Pop();
    const NodeId n = static_cast<NodeId>(id);
    settled.emplace(n, dist);
    for (const RoadNetwork::Incidence& inc : net.Incidences(n)) {
      const RoadNetwork::Edge& e = net.edge(inc.edge);
      for (ObjectId obj : objects.ObjectsOn(inc.edge)) {
        const NetworkPoint pos = objects.Position(obj).value();
        const double off =
            e.u == n ? pos.t * e.weight : (1.0 - pos.t) * e.weight;
        offer(obj, dist + off);
      }
      if (settled.count(inc.neighbor) == 0) {
        heap.PushOrDecrease(inc.neighbor, dist + e.weight);
      }
    }
  }
  std::vector<Neighbor> out;
  out.reserve(best.size());
  // cknn-lint: allow(unordered-iter) sorted by (distance, id) just below
  for (const auto& [obj, dist] : best) out.push_back(Neighbor{obj, dist});
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.id < b.id;
  });
  return out;
}

RangeMonitor::RangeMonitor(RoadNetwork* net, ObjectTable* objects)
    : net_(net), objects_(objects) {
  CKNN_CHECK(net_ != nullptr);
  CKNN_CHECK(objects_ != nullptr);
}

Status RangeMonitor::InstallQuery(QueryId id, const NetworkPoint& center,
                                  double radius) {
  if (radius < 0.0) return Status::InvalidArgument("radius must be >= 0");
  if (center.edge >= net_->NumEdges()) {
    return Status::InvalidArgument("center on unknown edge");
  }
  auto [it, inserted] = queries_.try_emplace(id);
  if (!inserted) return Status::AlreadyExists("query id already monitored");
  it->second.center = center;
  it->second.radius = radius;
  Refresh(&it->second);
  return Status::OK();
}

Status RangeMonitor::TerminateQuery(QueryId id) {
  if (queries_.erase(id) == 0) return Status::NotFound("unknown query id");
  return Status::OK();
}

Status RangeMonitor::MoveQuery(QueryId id, const NetworkPoint& center) {
  auto it = queries_.find(id);
  if (it == queries_.end()) return Status::NotFound("unknown query id");
  if (center.edge >= net_->NumEdges()) {
    return Status::InvalidArgument("center on unknown edge");
  }
  it->second.center = center;
  Refresh(&it->second);
  return Status::OK();
}

Status RangeMonitor::ProcessTimestamp(const UpdateBatch& batch) {
  if (!batch.queries.empty()) {
    return Status::InvalidArgument(
        "range queries are managed through the typed methods");
  }
  for (const ObjectUpdate& u : batch.objects) {
    if (u.old_pos.has_value() && u.new_pos.has_value()) {
      CKNN_RETURN_NOT_OK(objects_->Move(u.id, *u.new_pos));
    } else if (u.old_pos.has_value()) {
      CKNN_RETURN_NOT_OK(objects_->Remove(u.id));
    } else if (u.new_pos.has_value()) {
      CKNN_RETURN_NOT_OK(objects_->Insert(u.id, *u.new_pos));
    }
  }
  for (const EdgeUpdate& u : batch.edges) {
    CKNN_RETURN_NOT_OK(net_->SetWeight(u.edge, u.new_weight));
  }
  // cknn-lint: allow(unordered-iter) per-query refresh into (q)-keyed state
  for (auto& [id, query] : queries_) {
    (void)id;
    Refresh(&query);
  }
  return Status::OK();
}

const std::vector<Neighbor>* RangeMonitor::ResultOf(QueryId id) const {
  auto it = queries_.find(id);
  return it == queries_.end() ? nullptr : &it->second.result;
}

void RangeMonitor::Refresh(RangeQuery* query) {
  query->result = RangeSearch(*net_, *objects_, query->center, query->radius);
}

}  // namespace cknn

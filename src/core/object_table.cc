#include "src/core/object_table.h"

#include <algorithm>

#include "src/util/macros.h"
#include "src/util/mem.h"

namespace cknn {

Status ObjectTable::Insert(ObjectId id, const NetworkPoint& pos) {
  if (pos.edge >= per_edge_.size()) {
    return Status::InvalidArgument("object position on unknown edge");
  }
  auto [it, inserted] = positions_.emplace(id, pos);
  (void)it;
  if (!inserted) return Status::AlreadyExists("object id already present");
  per_edge_[pos.edge].push_back(id);
  return Status::OK();
}

Status ObjectTable::Remove(ObjectId id) {
  auto it = positions_.find(id);
  if (it == positions_.end()) return Status::NotFound("unknown object id");
  DetachFromEdge(id, it->second.edge);
  positions_.erase(it);
  return Status::OK();
}

Status ObjectTable::Move(ObjectId id, const NetworkPoint& new_pos) {
  if (new_pos.edge >= per_edge_.size()) {
    return Status::InvalidArgument("object position on unknown edge");
  }
  auto it = positions_.find(id);
  if (it == positions_.end()) return Status::NotFound("unknown object id");
  if (it->second.edge != new_pos.edge) {
    DetachFromEdge(id, it->second.edge);
    per_edge_[new_pos.edge].push_back(id);
  }
  it->second = new_pos;
  return Status::OK();
}

Status ObjectTable::Apply(const ObjectUpdate& update) {
  if (update.old_pos.has_value() && update.new_pos.has_value()) {
    return Move(update.id, *update.new_pos);
  }
  if (update.old_pos.has_value()) return Remove(update.id);
  if (update.new_pos.has_value()) return Insert(update.id, *update.new_pos);
  return Status::OK();
}

Result<NetworkPoint> ObjectTable::Position(ObjectId id) const {
  auto it = positions_.find(id);
  if (it == positions_.end()) return Status::NotFound("unknown object id");
  return it->second;
}

const std::vector<ObjectId>& ObjectTable::ObjectsOn(EdgeId e) const {
  CKNN_CHECK(e < per_edge_.size());
  return per_edge_[e];
}

void ObjectTable::DetachFromEdge(ObjectId id, EdgeId e) {
  std::vector<ObjectId>& list = per_edge_[e];
  auto it = std::find(list.begin(), list.end(), id);
  CKNN_CHECK(it != list.end());
  // Order within an edge list is immaterial: swap-erase.
  *it = list.back();
  list.pop_back();
}

std::size_t ObjectTable::MemoryBytes() const {
  std::size_t bytes = HashMapBytes(positions_) +
                      per_edge_.capacity() * sizeof(std::vector<ObjectId>);
  for (const auto& list : per_edge_) bytes += VectorBytes(list);
  return bytes;
}

}  // namespace cknn

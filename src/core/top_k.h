#ifndef CKNN_CORE_TOP_K_H_
#define CKNN_CORE_TOP_K_H_

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/updates.h"
#include "src/graph/types.h"

namespace cknn {

/// \brief Distance-ordered candidate set — the generalized `q.result` of the
/// paper.
///
/// Stores, for every object the expansion has discovered, its best known
/// network distance. The k nearest neighbors are the k smallest entries;
/// `KthDist(k)` is the paper's `q.kNN_dist` (infinity while fewer than k
/// candidates are known). Keeping *all* discovered candidates — the k best
/// plus everything else inside the covered region — is what lets the
/// incremental algorithms re-rank after outgoing/incoming updates without
/// re-scanning the network, and closes the tie-at-the-kth-distance gap of
/// the paper's presentation.
///
/// Ordering is by (distance, id) so results are deterministic under ties.
///
/// Representation: an id->distance hash map plus a small sorted array of
/// the nearest entries. The expansion hot path only ever Offers and reads
/// `KthDist`, both O(1)-ish against the array (a sorted insert of a few
/// dozen elements), replacing the former red-black-tree node churn. The
/// side map is deliberately a hash map, not a `DenseIdMap`: a monitoring
/// server keeps one CandidateSet per query, each holding a handful of
/// candidates drawn from the whole object-id space, and a dense page
/// table would cost O(id space) bytes and O(id space / page) iteration
/// per query (measured as a >1.25x slowdown on the paper's Fig. 13
/// cardinality sweeps at N = 200k).
/// Operations that can demote unknown entries into the top range
/// (removals, distance raises, prunes) lazily mark the array stale; the
/// next ranked read rebuilds it in one O(n) sweep. The array tracks
/// `kTopCap` (64) entries by default and grows — once, marking itself
/// stale for one rebuild — to the largest k ever asked of a ranked read,
/// so large-k workloads (the paper's Fig. 14a goes to k = 200) keep O(1)
/// reads instead of an O(n) scan per expansion step.
class CandidateSet {
 public:
  CandidateSet() = default;

  /// Lowers the stored distance of `id` to `dist` if it improves (or inserts
  /// it). Returns true if the set changed.
  bool Offer(ObjectId id, double dist);

  /// Replaces the stored distance of `id` (inserting if absent), regardless
  /// of direction. Used when a known object's distance is re-derived after
  /// weight changes.
  void Set(ObjectId id, double dist);

  /// Removes `id` if present; returns its old distance, or nullopt.
  std::optional<double> Remove(ObjectId id);

  /// Stored distance of `id`, or nullopt.
  std::optional<double> DistanceOf(ObjectId id) const;

  bool Contains(ObjectId id) const { return by_id_.count(id) != 0; }

  std::size_t size() const { return by_id_.size(); }
  bool empty() const { return by_id_.empty(); }

  /// Distance of the k-th nearest candidate; +inf while size() < k.
  double KthDist(int k) const;

  /// The k nearest candidates in (distance, id) order (fewer if size() < k).
  std::vector<Neighbor> TopK(int k) const;

  /// All candidates in (distance, id) order.
  std::vector<Neighbor> All() const;

  /// Removes every candidate with distance > bound.
  void PruneBeyond(double bound);

  void Clear();

  /// Estimated heap footprint in bytes.
  std::size_t MemoryBytes() const;

  /// Iteration over (id, distance) pairs; unspecified order.
  template <typename F>
  void ForEachCandidate(F&& f) const {
    // cknn-lint: allow(unordered-iter) order documented unspecified at callers
    for (const auto& [id, dist] : by_id_) f(id, dist);
  }

 private:
  using Key = std::pair<double, ObjectId>;

  /// Default size of the sorted nearest-entries array; covers every
  /// small-k workload without growth.
  static constexpr int kTopCap = 64;

  /// Grows the tracked range to at least `k` (stale until the next
  /// rebuild). The cap never shrinks — ranked reads stay O(1) for every k
  /// seen so far at an O(cap) sorted-insert cost per mutation.
  void EnsureCap(int k) const;
  /// Rebuilds top_ from the full map when stale (const: top_ is a cache).
  void EnsureTop() const;
  /// Sorted-inserts into an exact top_, displacing the largest entry when
  /// full. No-op while stale.
  void TopInsert(const Key& key) const;
  /// Removes `key` from top_ if present; returns true if it was there.
  bool TopErase(const Key& key) const;

  std::unordered_map<ObjectId, double> by_id_;
  /// The min(size(), top_cap_) nearest (distance, id) keys, ascending,
  /// when `top_exact_`; arbitrary prefix otherwise until the next
  /// EnsureTop.
  mutable std::vector<Key> top_;
  mutable bool top_exact_ = true;
  mutable int top_cap_ = kTopCap;
};

}  // namespace cknn

#endif  // CKNN_CORE_TOP_K_H_

#ifndef CKNN_CORE_TOP_K_H_
#define CKNN_CORE_TOP_K_H_

#include <cstddef>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/core/updates.h"
#include "src/graph/types.h"

namespace cknn {

/// \brief Distance-ordered candidate set — the generalized `q.result` of the
/// paper.
///
/// Stores, for every object the expansion has discovered, its best known
/// network distance. The k nearest neighbors are the k smallest entries;
/// `KthDist(k)` is the paper's `q.kNN_dist` (infinity while fewer than k
/// candidates are known). Keeping *all* discovered candidates — the k best
/// plus everything else inside the covered region — is what lets the
/// incremental algorithms re-rank after outgoing/incoming updates without
/// re-scanning the network, and closes the tie-at-the-kth-distance gap of
/// the paper's presentation.
///
/// Ordering is by (distance, id) so results are deterministic under ties.
class CandidateSet {
 public:
  CandidateSet() = default;

  /// Lowers the stored distance of `id` to `dist` if it improves (or inserts
  /// it). Returns true if the set changed.
  bool Offer(ObjectId id, double dist);

  /// Replaces the stored distance of `id` (inserting if absent), regardless
  /// of direction. Used when a known object's distance is re-derived after
  /// weight changes.
  void Set(ObjectId id, double dist);

  /// Removes `id` if present; returns its old distance, or nullopt.
  std::optional<double> Remove(ObjectId id);

  /// Stored distance of `id`, or nullopt.
  std::optional<double> DistanceOf(ObjectId id) const;

  bool Contains(ObjectId id) const { return by_id_.count(id) != 0; }

  std::size_t size() const { return by_id_.size(); }
  bool empty() const { return by_id_.empty(); }

  /// Distance of the k-th nearest candidate; +inf while size() < k.
  /// O(k) — k is small (<= a few hundred) in all workloads.
  double KthDist(int k) const;

  /// The k nearest candidates in (distance, id) order (fewer if size() < k).
  std::vector<Neighbor> TopK(int k) const;

  /// All candidates in (distance, id) order.
  std::vector<Neighbor> All() const;

  /// Removes every candidate with distance > bound.
  void PruneBeyond(double bound);

  void Clear();

  /// Estimated heap footprint in bytes.
  std::size_t MemoryBytes() const;

  /// Iteration over (id -> distance); unspecified order.
  const std::unordered_map<ObjectId, double>& entries() const {
    return by_id_;
  }

 private:
  using Key = std::pair<double, ObjectId>;

  std::unordered_map<ObjectId, double> by_id_;
  std::set<Key> ordered_;
};

}  // namespace cknn

#endif  // CKNN_CORE_TOP_K_H_

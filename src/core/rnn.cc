#include "src/core/rnn.h"

#include <algorithm>

#include "src/util/indexed_min_heap.h"
#include "src/util/macros.h"

namespace cknn {

namespace {

/// Node label of the multi-source expansion.
struct Label {
  double dist = kInfDist;
  QueryId owner = kInvalidQuery;
};

/// Improves (dist, owner) with tie-break toward the smaller query id.
bool Better(double dist, QueryId owner, const Label& current) {
  return dist < current.dist ||
         (dist == current.dist && owner < current.owner);
}

}  // namespace

std::unordered_map<ObjectId, RnnAssignment> ComputeObjectAssignments(
    const RoadNetwork& net, const ObjectTable& objects,
    const std::unordered_map<QueryId, NetworkPoint>& queries) {
  // Multi-source Dijkstra over nodes: every query seeds the endpoints of
  // its edge with the along-edge offsets.
  std::unordered_map<NodeId, Label> tentative;
  std::unordered_map<NodeId, Label> settled;
  IndexedMinHeap heap;
  auto relax = [&](NodeId n, double dist, QueryId owner) {
    if (settled.count(n) != 0) return;
    Label& label = tentative[n];
    if (Better(dist, owner, label)) {
      label = Label{dist, owner};
      heap.PushOrDecrease(n, dist);
    }
  };
  // Queries grouped by edge for same-edge object assignment later.
  std::unordered_map<EdgeId, std::vector<QueryId>> queries_on_edge;
  // cknn-lint: allow(unordered-iter) Better() tie-breaks by id; order-free
  for (const auto& [q, pos] : queries) {
    CKNN_CHECK(pos.edge < net.NumEdges());
    const RoadNetwork::Edge& ed = net.edge(pos.edge);
    relax(ed.u, WeightOffsetFromU(net, pos), q);
    relax(ed.v, WeightOffsetFromV(net, pos), q);
    queries_on_edge[pos.edge].push_back(q);
  }
  while (!heap.empty()) {
    const auto [id, dist] = heap.Pop();
    const NodeId n = static_cast<NodeId>(id);
    auto it = tentative.find(n);
    CKNN_DCHECK(it != tentative.end());
    settled.emplace(n, it->second);
    const Label here = it->second;
    tentative.erase(it);
    for (const RoadNetwork::Incidence& inc : net.Incidences(n)) {
      relax(inc.neighbor, here.dist + net.WeightOf(inc.edge), here.owner);
    }
  }

  // Object assignment: best of (via u, via v, along-edge to a co-located
  // query).
  std::unordered_map<ObjectId, RnnAssignment> out;
  for (EdgeId e = 0; e < net.NumEdges(); ++e) {
    const auto& objs = objects.ObjectsOn(e);
    if (objs.empty()) continue;
    const RoadNetwork::Edge& ed = net.edge(e);
    const Label* lu = nullptr;
    const Label* lv = nullptr;
    if (auto it = settled.find(ed.u); it != settled.end()) {
      lu = &it->second;
    }
    if (auto it = settled.find(ed.v); it != settled.end()) {
      lv = &it->second;
    }
    auto co_located = queries_on_edge.find(e);
    for (ObjectId obj : objs) {
      const NetworkPoint pos = objects.Position(obj).value();
      Label best;
      if (lu != nullptr) {
        const double d = lu->dist + pos.t * ed.weight;
        if (Better(d, lu->owner, best)) best = Label{d, lu->owner};
      }
      if (lv != nullptr) {
        const double d = lv->dist + (1.0 - pos.t) * ed.weight;
        if (Better(d, lv->owner, best)) best = Label{d, lv->owner};
      }
      if (co_located != queries_on_edge.end()) {
        for (QueryId q : co_located->second) {
          const double d = AlongEdgeDistance(net, queries.at(q), pos);
          if (Better(d, q, best)) best = Label{d, q};
        }
      }
      if (best.owner != kInvalidQuery) {
        out.emplace(obj, RnnAssignment{best.owner, best.dist});
      }
    }
  }
  return out;
}

std::unordered_map<QueryId, std::vector<Neighbor>> ComputeReverseNearest(
    const RoadNetwork& net, const ObjectTable& objects,
    const std::unordered_map<QueryId, NetworkPoint>& queries) {
  std::unordered_map<QueryId, std::vector<Neighbor>> out;
  out.reserve(queries.size());
  // cknn-lint: allow(unordered-iter) keyed emplace, order-free
  for (const auto& [q, pos] : queries) {
    (void)pos;
    out.emplace(q, std::vector<Neighbor>{});
  }
  for (const auto& [obj, assignment] :
       ComputeObjectAssignments(net, objects, queries)) {
    out[assignment.query].push_back(Neighbor{obj, assignment.distance});
  }
  // cknn-lint: allow(unordered-iter) each list sorted by (distance, id)
  for (auto& [q, list] : out) {
    (void)q;
    std::sort(list.begin(), list.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.distance != b.distance ? a.distance < b.distance
                                                : a.id < b.id;
              });
  }
  return out;
}

RnnMonitor::RnnMonitor(RoadNetwork* net, ObjectTable* objects)
    : net_(net), objects_(objects) {
  CKNN_CHECK(net_ != nullptr);
  CKNN_CHECK(objects_ != nullptr);
}

Status RnnMonitor::ProcessTimestamp(const UpdateBatch& batch) {
  for (const ObjectUpdate& u : batch.objects) {
    if (u.old_pos.has_value() && u.new_pos.has_value()) {
      CKNN_RETURN_NOT_OK(objects_->Move(u.id, *u.new_pos));
    } else if (u.old_pos.has_value()) {
      CKNN_RETURN_NOT_OK(objects_->Remove(u.id));
    } else if (u.new_pos.has_value()) {
      CKNN_RETURN_NOT_OK(objects_->Insert(u.id, *u.new_pos));
    }
  }
  for (const EdgeUpdate& u : batch.edges) {
    CKNN_RETURN_NOT_OK(net_->SetWeight(u.edge, u.new_weight));
  }
  // cknn-lint: allow(unordered-iter) batch.queries is a vector (name collision)
  for (const QueryUpdate& qu : batch.queries) {
    switch (qu.kind) {
      case QueryUpdate::Kind::kTerminate:
        if (queries_.erase(qu.id) == 0) {
          return Status::NotFound("terminate for unknown query");
        }
        break;
      case QueryUpdate::Kind::kMove: {
        auto it = queries_.find(qu.id);
        if (it == queries_.end()) {
          return Status::NotFound("move for unknown query");
        }
        it->second = qu.pos;
        break;
      }
      case QueryUpdate::Kind::kInstall:
        if (queries_.count(qu.id) != 0) {
          return Status::AlreadyExists("query id already monitored");
        }
        if (qu.pos.edge >= net_->NumEdges()) {
          return Status::InvalidArgument("install on unknown edge");
        }
        queries_.emplace(qu.id, qu.pos);
        break;
    }
  }
  results_ = ComputeReverseNearest(*net_, *objects_, queries_);
  return Status::OK();
}

const std::vector<Neighbor>* RnnMonitor::ResultOf(QueryId id) const {
  auto it = results_.find(id);
  return it == results_.end() ? nullptr : &it->second;
}

}  // namespace cknn

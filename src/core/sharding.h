#ifndef CKNN_CORE_SHARDING_H_
#define CKNN_CORE_SHARDING_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "src/core/monitor.h"
#include "src/core/object_table.h"
#include "src/core/updates.h"
#include "src/graph/road_network.h"
#include "src/util/annotations.h"
#include "src/util/macros.h"
#include "src/util/result.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace cknn {

/// \brief Sharded update-processing backend of the monitoring server
/// (see docs/sharding.md and docs/pipeline.md).
///
/// The monitored queries are partitioned across `num_shards` shards by
/// `ShardOf(id) == id % num_shards`. Each shard owns a full monitoring
/// engine (IMA, GMA, or OVH) for its queries over
///  * the *shared* object table — mutated exactly once per tick by the
///    server before the shards run, read-only during the parallel phase
///    (the engines run in shared-table mode,
///    `Monitor::set_object_table_externally_applied`), and
///  * its *own view* of the road network (`RoadNetwork::SharedView`):
///    the immutable topology is shared by pointer across all shards,
///    each shard holds only a private weight overlay (optionally
///    partitioned into region tiles, docs/tiling.md) and applies every
///    edge-weight update to it — so all views carry identical weights at
///    every timestamp without cross-shard synchronization, at
///    O(8 bytes/edge) per extra shard instead of a full clone.
///    Shard 0 monitors the server's primary network in place.
///
/// Per tick the server aggregates the batch once, `Partition` fans the
/// query updates out to their owning shards (object and edge updates are
/// broadcast), the shards run their maintenance in parallel on a fixed
/// thread pool, and statuses/metrics are merged in shard order — so the
/// outcome is deterministic and per-query results are identical for every
/// shard count, including `num_shards == 1`, which runs inline without a
/// pool.
///
/// Two execution modes:
///  * blocking (`ProcessTimestamp`) — the classic fork/join tick;
///  * detached (`BeginProcessTimestamp` / `WaitProcessTimestamp`) — the
///    shard maintenance runs on pool workers while the calling thread is
///    free to prepare the next tick (the server's pipelined ingest). Only
///    available when the set was built with `pipelined = true`, which
///    sizes the pool at `num_shards` workers instead of `num_shards - 1`
///    so every shard can run in the background.
class ShardSet {
 public:
  /// \param primary_network the server's network; shard 0 monitors it in
  ///        place, shards 1..N-1 monitor their own shared-topology views
  ///        of it (inheriting its tile partition). Must outlive the
  ///        shard set.
  /// \param objects the shared object table, mutated only by the caller
  ///        (between ticks / before ProcessTimestamp). Must outlive the
  ///        shard set.
  /// \param pipelined reserve a pool worker per shard so
  ///        `BeginProcessTimestamp` can run every shard detached from the
  ///        calling thread.
  ShardSet(RoadNetwork* primary_network, ObjectTable* objects,
           Algorithm algorithm, int num_shards, bool pipelined = false);

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  /// Waits out any still-in-flight detached tick before the engines are
  /// torn down (the tasks reference shard state).
  ~ShardSet();

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Owning shard of a query id (stable, id-based partition).
  int ShardOf(QueryId id) const {
    return static_cast<int>(id % shards_.size());
  }

  /// Runs one timestamp of (already aggregated and validated) updates
  /// through every shard — in parallel when more than one shard exists —
  /// and returns the first non-OK shard status in shard order. The
  /// caller has already applied the batch's object updates to the shared
  /// table.
  Status ProcessTimestamp(const UpdateBatch& aggregated);

  /// Starts one timestamp detached: partitions `aggregated` (copied into
  /// per-shard scratch, so the argument only needs to live through this
  /// call) and hands the shard tasks to the pool workers. Requires
  /// pipelined construction and no tick already in flight.
  void BeginProcessTimestamp(const UpdateBatch& aggregated);

  /// Blocks until the detached tick finished (helping drain unstarted
  /// shards) and returns the first non-OK shard status in shard order.
  Status WaitProcessTimestamp();

  /// Whether a detached tick is currently in flight. While true, engine
  /// state (results, registries, shard networks) must not be read.
  bool InFlight() const {
    owner_role_.Assert();
    return in_flight_;
  }

  /// Result of a query, routed to its owning shard.
  const std::vector<Neighbor>* ResultOf(QueryId id) const {
    owner_role_.Assert();
    CKNN_CHECK(!in_flight_);
    return shards_[ShardOf(id)].monitor->ResultOf(id);
  }

  /// \name Non-aborting accessor variants for client-facing callers.
  ///
  /// The CHECK-guarded accessors above are internal invariants: the
  /// engine's own pipeline never reads mid-flight, so tripping the CHECK
  /// there is a bug. A serving front end, however, takes reads from
  /// clients at arbitrary times; these variants turn the same in-flight
  /// condition into a FailedPrecondition status so a well-timed read can
  /// never crash the process.
  /// @{

  /// Result of a query without the CHECK: FailedPrecondition while a
  /// detached tick is in flight, otherwise OK with `*out` set to the
  /// k-NN list — nullptr when the query is unknown.
  Status TryResultOf(QueryId id, const std::vector<Neighbor>** out) const {
    owner_role_.Assert();
    if (in_flight_) {
      return Status::FailedPrecondition(
          "results unavailable: a detached tick is in flight (Drain first)");
    }
    *out = shards_[ShardOf(id)].monitor->ResultOf(id);
    return Status::OK();
  }

  /// NumQueries without the CHECK (FailedPrecondition while in flight).
  Result<std::size_t> TryNumQueries() const;

  /// MemoryBytes without the CHECK (FailedPrecondition while in flight).
  Result<std::size_t> TryMemoryBytes() const;

  /// @}

  /// Whether a query is registered, according to the caller-side registry
  /// — the same answer as probing the owning engine for every validated
  /// update stream, but safe to consult while a detached tick is mutating
  /// the engines (the registry is folded on the calling thread when a
  /// tick is submitted).
  bool IsRegistered(QueryId id) const {
    owner_role_.Assert();
    return registered_.count(id) != 0;
  }

  /// Registered queries across all shards.
  std::size_t NumQueries() const;

  /// Monitoring-structure bytes summed over the shards (shard order, so
  /// the sum is reproducible), including each extra shard's private
  /// weight overlay and — once, not per shard — the read-only structures
  /// the monitors share (`Monitor::SharedMemoryBytes`). The primary
  /// network and shared topology are graph substrate owned by the
  /// server, not monitoring structures, and stay excluded.
  std::size_t MemoryBytes() const;

  Monitor& monitor(int shard) { return *shards_[shard].monitor; }
  const Monitor& monitor(int shard) const { return *shards_[shard].monitor; }

  /// The worker pool (nullptr for a serial, non-pipelined single shard).
  /// Exposed so the server can overlap its aggregation folds with a
  /// detached tick (`ThreadPool::RunAll` composes with `Begin`/`Wait`).
  ThreadPool* pool() { return pool_.get(); }

 private:
  struct Shard {
    /// Shared-topology view of the primary network with a private weight
    /// overlay (nullptr for shard 0, which uses the primary in place).
    std::unique_ptr<RoadNetwork> network;
    std::unique_ptr<Monitor> monitor;
    /// Per-tick scratch: this shard's slice of the aggregated batch.
    UpdateBatch sub;
    Status status;
  };

  /// Splits `aggregated` into the per-shard `sub` batches.
  void Partition(const UpdateBatch& aggregated) CKNN_REQUIRES(owner_role_);

  /// Folds the batch's install/terminate updates into `registered_`
  /// (called on the submitting thread, before the shards run).
  void UpdateRegistry(const UpdateBatch& aggregated)
      CKNN_REQUIRES(owner_role_);

  /// First non-OK shard status in shard order.
  Status MergeStatuses() const;

  std::vector<Shard> shards_;
  /// ShardSet is synchronized by protocol, not by a lock: exactly one
  /// thread submits ticks and reads results, and the parallel phase's
  /// writes reach it through the pool's completion barrier. The role
  /// capability makes that contract checkable — every public entry point
  /// asserts it, so the protocol state below cannot be reached from a
  /// path the analysis has not seen claim ownership (docs/sharding.md,
  /// docs/static_analysis.md).
  ThreadRole owner_role_;
  /// Query ids registered after every tick submitted so far; mirrors the
  /// engines' registries for validated input (see IsRegistered).
  std::unordered_set<QueryId> registered_ CKNN_GUARDED_BY(owner_role_);
  /// Per-tick task closures of the detached mode; must outlive the pool
  /// batch, so they live here rather than on the Begin caller's stack.
  std::vector<std::function<void()>> detached_tasks_
      CKNN_GUARDED_BY(owner_role_);
  bool in_flight_ CKNN_GUARDED_BY(owner_role_) = false;
  /// Workers for the parallel phase: `num_shards - 1` blocking-mode
  /// workers (the calling thread runs the remaining shard), or
  /// `num_shards` in pipelined mode. nullptr for a serial single shard.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace cknn

#endif  // CKNN_CORE_SHARDING_H_

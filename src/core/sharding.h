#ifndef CKNN_CORE_SHARDING_H_
#define CKNN_CORE_SHARDING_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/core/monitor.h"
#include "src/core/object_table.h"
#include "src/core/updates.h"
#include "src/graph/road_network.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace cknn {

/// \brief Sharded update-processing backend of the monitoring server
/// (see docs/sharding.md).
///
/// The monitored queries are partitioned across `num_shards` shards by
/// `ShardOf(id) == id % num_shards`. Each shard owns a full monitoring
/// engine (IMA, GMA, or OVH) for its queries over
///  * the *shared* object table — mutated exactly once per tick by the
///    server before the shards run, read-only during the parallel phase
///    (the engines run in shared-table mode,
///    `Monitor::set_object_table_externally_applied`), and
///  * its *own copy* of the road network — every shard applies every
///    edge-weight update to its copy, so all copies carry identical
///    weights at every timestamp without cross-shard synchronization.
///    Shard 0 monitors the server's primary network in place.
///
/// Per tick the server aggregates the batch once, `Partition` fans the
/// query updates out to their owning shards (object and edge updates are
/// broadcast), the shards run their maintenance in parallel on a fixed
/// thread pool, and statuses/metrics are merged in shard order — so the
/// outcome is deterministic and per-query results are identical for every
/// shard count, including `num_shards == 1`, which runs inline without a
/// pool.
class ShardSet {
 public:
  /// \param primary_network the server's network; shard 0 monitors it in
  ///        place, shards 1..N-1 monitor their own clones of it. Must
  ///        outlive the shard set.
  /// \param objects the shared object table, mutated only by the caller
  ///        (between ticks / before ProcessTimestamp). Must outlive the
  ///        shard set.
  ShardSet(RoadNetwork* primary_network, ObjectTable* objects,
           Algorithm algorithm, int num_shards);

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Owning shard of a query id (stable, id-based partition).
  int ShardOf(QueryId id) const {
    return static_cast<int>(id % shards_.size());
  }

  /// Runs one timestamp of (already aggregated and validated) updates
  /// through every shard — in parallel when more than one shard exists —
  /// and returns the first non-OK shard status in shard order. The
  /// caller has already applied the batch's object updates to the shared
  /// table.
  Status ProcessTimestamp(const UpdateBatch& aggregated);

  /// Result of a query, routed to its owning shard.
  const std::vector<Neighbor>* ResultOf(QueryId id) const {
    return shards_[ShardOf(id)].monitor->ResultOf(id);
  }

  /// Whether a query is currently registered (in its owning shard).
  bool HasQuery(QueryId id) const { return ResultOf(id) != nullptr; }

  /// Registered queries across all shards.
  std::size_t NumQueries() const;

  /// Monitoring-structure bytes summed over the shards (shard order, so
  /// the sum is reproducible).
  std::size_t MemoryBytes() const;

  Monitor& monitor(int shard) { return *shards_[shard].monitor; }
  const Monitor& monitor(int shard) const { return *shards_[shard].monitor; }

 private:
  struct Shard {
    /// Clone of the primary network (nullptr for shard 0).
    std::unique_ptr<RoadNetwork> network;
    std::unique_ptr<Monitor> monitor;
    /// Per-tick scratch: this shard's slice of the aggregated batch.
    UpdateBatch sub;
    Status status;
  };

  /// Splits `aggregated` into the per-shard `sub` batches.
  void Partition(const UpdateBatch& aggregated);

  std::vector<Shard> shards_;
  /// Workers for the parallel phase (num_shards - 1 of them; the calling
  /// thread runs the remaining shard). nullptr for a single shard.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace cknn

#endif  // CKNN_CORE_SHARDING_H_

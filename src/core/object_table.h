#ifndef CKNN_CORE_OBJECT_TABLE_H_
#define CKNN_CORE_OBJECT_TABLE_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "src/core/updates.h"
#include "src/graph/network_point.h"
#include "src/graph/road_network.h"
#include "src/graph/types.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace cknn {

/// \brief Positions of all data objects, with per-edge object lists — the
/// object half of the paper's edge table *ET* (Section 3).
///
/// Lookup directions:
///  * object id -> network point (for update validation and distances),
///  * edge id   -> ids of objects currently on the edge (scanned during
///                 network expansion, Fig. 2 line 14).
class ObjectTable {
 public:
  /// \param num_edges edge-count of the network the table serves.
  explicit ObjectTable(std::size_t num_edges) : per_edge_(num_edges) {}

  ObjectTable(const ObjectTable&) = delete;
  ObjectTable& operator=(const ObjectTable&) = delete;
  ObjectTable(ObjectTable&&) = default;
  ObjectTable& operator=(ObjectTable&&) = default;

  /// Registers a new object. AlreadyExists if the id is in use.
  Status Insert(ObjectId id, const NetworkPoint& pos);

  /// Removes an object. NotFound if absent.
  Status Remove(ObjectId id);

  /// Moves an existing object. NotFound if absent.
  Status Move(ObjectId id, const NetworkPoint& new_pos);

  /// Applies one location update: old+new = Move, old only = Remove,
  /// new only = Insert, neither = no-op. The single dispatch shared by the
  /// server's table stage and the standalone monitors.
  Status Apply(const ObjectUpdate& update);

  /// Current position of an object.
  Result<NetworkPoint> Position(ObjectId id) const;

  bool Contains(ObjectId id) const { return positions_.count(id) != 0; }

  /// Objects currently lying on edge `e`.
  const std::vector<ObjectId>& ObjectsOn(EdgeId e) const;

  std::size_t size() const { return positions_.size(); }

  /// Estimated heap footprint in bytes.
  std::size_t MemoryBytes() const;

 private:
  void DetachFromEdge(ObjectId id, EdgeId e);

  std::unordered_map<ObjectId, NetworkPoint> positions_;
  std::vector<std::vector<ObjectId>> per_edge_;
};

}  // namespace cknn

#endif  // CKNN_CORE_OBJECT_TABLE_H_

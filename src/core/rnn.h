#ifndef CKNN_CORE_RNN_H_
#define CKNN_CORE_RNN_H_

#include <unordered_map>
#include <vector>

#include "src/core/object_table.h"
#include "src/core/updates.h"
#include "src/graph/network_point.h"
#include "src/graph/road_network.h"
#include "src/util/result.h"

namespace cknn {

/// \name Bichromatic reverse nearest neighbors in road networks
///
/// The paper's future-work direction (Section 7): given queries (e.g.
/// vacant cabs) and objects (clients), report for each query the objects
/// that are *closer to it than to any other query* — its reverse nearest
/// neighbors. The cab example: the clients a driver is the best-placed cab
/// for.
///
/// The snapshot computation runs one multi-source Dijkstra expansion
/// seeded from every query simultaneously, labelling each network node
/// with its closest query (a network Voronoi assignment); each object is
/// then assigned via its edge endpoints plus the along-edge distances to
/// queries sharing its edge — exact, O(E log V + N).
/// @{

/// One object's assignment.
struct RnnAssignment {
  QueryId query = kInvalidQuery;  ///< Closest query.
  double distance = 0.0;          ///< Network distance to it.
};

/// Computes the reverse-nearest-neighbor sets of all queries. Objects
/// unreachable from every query are absent from the output. Exact ties are
/// broken toward the smaller query id.
///
/// Returns per query the list of (object, distance) pairs, sorted by
/// (distance, id). Queries with no reverse neighbors map to empty lists.
std::unordered_map<QueryId, std::vector<Neighbor>> ComputeReverseNearest(
    const RoadNetwork& net, const ObjectTable& objects,
    const std::unordered_map<QueryId, NetworkPoint>& queries);

/// Assignment of every reachable object to its closest query.
std::unordered_map<ObjectId, RnnAssignment> ComputeObjectAssignments(
    const RoadNetwork& net, const ObjectTable& objects,
    const std::unordered_map<QueryId, NetworkPoint>& queries);

/// \brief Continuous reverse-NN monitoring — evaluated per timestamp by
/// recomputation (the incremental version is open research; the paper
/// names it as future work). Mirrors the Monitor workflow: feed update
/// batches, read per-query reverse neighbor lists.
class RnnMonitor {
 public:
  /// Both tables outlive the monitor and are mutated by ProcessTimestamp.
  RnnMonitor(RoadNetwork* net, ObjectTable* objects);

  /// Applies the batch to the shared tables and recomputes all
  /// assignments.
  Status ProcessTimestamp(const UpdateBatch& batch);

  /// Reverse neighbors of a query, in (distance, id) order; nullptr if
  /// the query is unknown.
  const std::vector<Neighbor>* ResultOf(QueryId id) const;

  std::size_t NumQueries() const { return queries_.size(); }

 private:
  RoadNetwork* net_;
  ObjectTable* objects_;
  std::unordered_map<QueryId, NetworkPoint> queries_;
  std::unordered_map<QueryId, std::vector<Neighbor>> results_;
};

/// @}

}  // namespace cknn

#endif  // CKNN_CORE_RNN_H_

#ifndef CKNN_CORE_PATH_KNN_H_
#define CKNN_CORE_PATH_KNN_H_

#include <vector>

#include "src/core/object_table.h"
#include "src/core/updates.h"
#include "src/graph/network_point.h"
#include "src/graph/road_network.h"

namespace cknn {

/// \name Path (trajectory) k-NN queries
///
/// The snapshot problem of Cho & Chung [4] and Kolahdouzan & Shahabi [12]
/// reviewed in Section 2.1, included here because Lemma 1 of GMA is its
/// one-sequence special case: given a known query trajectory (a node
/// path), find the k-NNs of *every* point on it.
///
/// The candidate theorem (paper, Section 2.1): the union of the k-NN sets
/// of all path nodes and the objects lying on the path edges contains the
/// k-NN set of every point on the path.
/// @{

/// A path given as consecutive nodes joined by the listed edges
/// (edges.size() == nodes.size() - 1), e.g. a PathResult from
/// ShortestPath().
struct QueryPath {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;
};

/// Candidate objects whose union provably contains the k-NN set of every
/// point on the path. Sorted by object id, deduplicated.
std::vector<ObjectId> PathKnnCandidates(const RoadNetwork& net,
                                        const ObjectTable& objects,
                                        const QueryPath& path, int k);

/// Exact k-NNs of a point on the path (`edge_index` into path.edges,
/// fraction t along that edge from path.nodes[edge_index]), computed from
/// the candidate set: distance = min over path nodes of (along-path
/// distance to the node + node's distance to the candidate), plus direct
/// along-edge terms for candidates sharing the point's edge.
std::vector<Neighbor> KnnAtPathPoint(const RoadNetwork& net,
                                     const ObjectTable& objects,
                                     const QueryPath& path, int k,
                                     std::size_t edge_index, double t);

/// @}

}  // namespace cknn

#endif  // CKNN_CORE_PATH_KNN_H_

#include "src/core/gma.h"

#include <algorithm>

#include "src/util/macros.h"
#include "src/util/mem.h"

namespace cknn {

Gma::Gma(RoadNetwork* net, ObjectTable* objects)
    : net_(net),
      objects_(objects),
      st_(net->SharedSequences()),
      engine_(net, objects),
      il_(net->NumEdges()) {}

const std::vector<Neighbor>* Gma::ResultOf(QueryId id) const {
  auto it = queries_.find(id);
  return it == queries_.end() ? nullptr : &it->second.result;
}

void Gma::SyncNodeK(NodeId n, ActiveNode* an) {
  if (an->queries.empty()) {
    CKNN_CHECK(engine_.RemoveQuery(n).ok());
    active_.erase(n);
    return;
  }
  int max_k = 0;
  // cknn-lint: allow(unordered-iter) commutative max over the node's query set
  for (QueryId q : an->queries) {
    max_k = std::max(max_k, queries_.at(q).k);
  }
  if (max_k != an->k) {
    an->k = max_k;
    CKNN_CHECK(engine_.SetK(n, max_k).ok());
  }
}

void Gma::AttachToEndpoints(QueryId id, UserQuery* uq) {
  const SequenceTable::Sequence& seq = st_->sequence(uq->seq);
  const NodeId ends[2] = {seq.EndpointA(), seq.EndpointB()};
  for (int i = 0; i < 2; ++i) {
    const NodeId n = ends[i];
    if (i == 1 && ends[0] == ends[1]) break;  // Anchored loop: one endpoint.
    if (!IsIntersection(n)) continue;
    auto [it, inserted] = active_.try_emplace(n);
    ActiveNode& an = it->second;
    an.queries.insert(id);
    if (inserted) {
      an.k = uq->k;
      CKNN_CHECK(
          engine_.AddQuery(n, ExpansionSource::AtNodeSource(n), uq->k).ok());
    } else if (uq->k > an.k) {
      an.k = uq->k;
      CKNN_CHECK(engine_.SetK(n, an.k).ok());
    }
  }
}

void Gma::DetachFromEndpoints(QueryId id, UserQuery* uq) {
  const SequenceTable::Sequence& seq = st_->sequence(uq->seq);
  const NodeId ends[2] = {seq.EndpointA(), seq.EndpointB()};
  for (int i = 0; i < 2; ++i) {
    const NodeId n = ends[i];
    if (i == 1 && ends[0] == ends[1]) break;
    if (!IsIntersection(n)) continue;
    auto it = active_.find(n);
    CKNN_CHECK(it != active_.end());
    it->second.queries.erase(id);
    SyncNodeK(n, &it->second);
  }
}

void Gma::ClearInfluence(QueryId id, UserQuery* uq) {
  for (EdgeId e : uq->covered) il_[e].erase(id);
  uq->covered.clear();
}

void Gma::EvaluateQuery(QueryId id, UserQuery* uq) {
  ++stats_.evaluations;
  // Member scratch: cleared per evaluation, capacity reused across the
  // many evaluations a timestamp triggers.
  eval_cand_.Clear();
  CandidateSet& cand = eval_cand_;
  const SequenceTable::Sequence& seq = st_->sequence(uq->seq);
  const EdgeId query_edge = uq->pos.edge;
  const std::uint32_t j = st_->PositionOf(query_edge);
  const RoadNetwork::Edge& qe = net_->edge(query_edge);

  // Objects sharing the query's edge: along-edge distance (the walks below
  // also reach them "around", Offer keeps the minimum).
  for (ObjectId obj : objects_->ObjectsOn(query_edge)) {
    const NetworkPoint pos = objects_->Position(obj).value();
    cand.Offer(obj, std::abs(pos.t - uq->pos.t) * qe.weight);
  }

  struct Touch {
    EdgeId edge;
    double enter_dist;
    NodeId enter_node;
  };
  std::vector<Touch> touched;
  struct Reached {
    NodeId node;
    double dist;
  };
  std::vector<Reached> reached;

  // Offset from the query to the sequence node with index `ni` along the
  // query's own edge. ForwardOriented: edge.u == seq.nodes[j].
  const bool fwd = st_->ForwardOriented(query_edge);
  const double off_to_prev =
      (fwd ? uq->pos.t : 1.0 - uq->pos.t) * qe.weight;  // -> seq.nodes[j]
  const double off_to_next = qe.weight - off_to_prev;   // -> seq.nodes[j+1]

  const int num_seq_edges = static_cast<int>(seq.edges.size());
  auto walk = [&](bool toward_b) {
    double d = toward_b ? off_to_next : off_to_prev;
    int node_index = static_cast<int>(j) + (toward_b ? 1 : 0);
    int edge_index = static_cast<int>(j) + (toward_b ? 1 : -1);
    const int step = toward_b ? 1 : -1;
    // Each direction traverses at most the other num_seq_edges - 1 edges
    // (relevant for cycles, where the walk wraps past the anchor).
    for (int consumed = 0; consumed < num_seq_edges; ++consumed) {
      if (d > cand.KthDist(uq->k)) return;  // Beyond any possible neighbor.
      const bool at_anchor =
          toward_b ? node_index == static_cast<int>(seq.nodes.size()) - 1
                   : node_index == 0;
      if (at_anchor) {
        reached.push_back(Reached{seq.nodes[node_index], d});
        // A true endpoint (or an anchored loop's intersection) delegates
        // everything beyond to the monitored node; a pure degree-2 cycle
        // has nothing to delegate to, so the walk wraps around.
        if (!seq.is_cycle || IsIntersection(seq.nodes[node_index])) return;
        node_index = toward_b ? 0 : static_cast<int>(seq.nodes.size()) - 1;
        edge_index = toward_b ? 0 : num_seq_edges - 1;
      }
      const NodeId n = seq.nodes[node_index];
      const EdgeId e = seq.edges[edge_index];
      if (e == query_edge) return;  // Wrapped all the way around.
      const RoadNetwork::Edge& ed = net_->edge(e);
      for (ObjectId obj : objects_->ObjectsOn(e)) {
        const NetworkPoint pos = objects_->Position(obj).value();
        const double off =
            ed.u == n ? pos.t * ed.weight : (1.0 - pos.t) * ed.weight;
        cand.Offer(obj, d + off);
      }
      touched.push_back(Touch{e, d, n});
      d += ed.weight;
      node_index += step;
      edge_index += step;
    }
  };
  walk(/*toward_b=*/false);
  walk(/*toward_b=*/true);

  // Lemma 1: merge the monitored NN sets of the reached intersection
  // endpoints.
  for (const Reached& r : reached) {
    if (!IsIntersection(r.node)) continue;
    const std::vector<Neighbor>* node_result = engine_.ResultOf(r.node);
    CKNN_CHECK(node_result != nullptr);  // Attached before evaluation.
    for (const Neighbor& nb : *node_result) {
      cand.Offer(nb.id, r.dist + nb.distance);
    }
  }

  uq->result = cand.TopK(uq->k);
  uq->bound = cand.KthDist(uq->k);

  // Influence bookkeeping against the final bound. The k-th neighbor lies
  // *exactly* on the interval boundary (it defines the bound), so the
  // intervals are padded against floating-point rounding — a 1-ulp miss
  // here would silently drop the update that evicts the k-th NN.
  constexpr double kIntervalPad = 1e-9;
  ClearInfluence(id, uq);
  std::unordered_map<EdgeId, Interval> intervals;
  {
    // Query's own edge.
    const double radius_t =
        qe.weight > 0.0 ? uq->bound / qe.weight + kIntervalPad : kInfDist;
    Interval iv{std::max(0.0, uq->pos.t - radius_t),
                std::min(1.0, uq->pos.t + radius_t)};
    intervals.emplace(query_edge, iv);
  }
  for (const Touch& t : touched) {
    const double reach = uq->bound - t.enter_dist;
    if (reach <= 0.0) continue;
    const RoadNetwork::Edge& ed = net_->edge(t.edge);
    const double frac =
        ed.weight > 0.0
            ? std::min(1.0, reach / ed.weight + kIntervalPad)
            : 1.0;
    const Interval iv = ed.u == t.enter_node ? Interval{0.0, frac}
                                             : Interval{1.0 - frac, 1.0};
    auto [it, inserted] = intervals.emplace(t.edge, iv);
    if (!inserted) {
      // Same edge reached from both directions (cycles): keep the hull —
      // conservative but safe for filtering.
      it->second.lo = std::min(it->second.lo, iv.lo);
      it->second.hi = std::max(it->second.hi, iv.hi);
    }
  }
  uq->covered.reserve(intervals.size());
  // cknn-lint: allow(unordered-iter) keyed il_ writes; covered is used as a set
  for (const auto& [e, iv] : intervals) {
    il_[e][id] = iv;
    uq->covered.push_back(e);
  }
  uq->reached_nodes.clear();
  for (const Reached& r : reached) {
    if (IsIntersection(r.node) && r.dist <= uq->bound) {
      uq->reached_nodes.push_back(r.node);
    }
  }
}

Status Gma::ProcessTimestamp(const UpdateBatch& batch) {
  // Terminations first: no maintenance is spent on queries that are gone
  // (Fig. 12 line 1's Q_del).
  std::unordered_set<QueryId> to_evaluate;
  // cknn-lint: allow(unordered-iter) batch.queries is a vector (name collision)
  for (const QueryUpdate& qu : batch.queries) {
    if (qu.kind != QueryUpdate::Kind::kTerminate) continue;
    auto it = queries_.find(qu.id);
    if (it == queries_.end()) {
      return Status::NotFound("terminate for unknown query");
    }
    ClearInfluence(qu.id, &it->second);
    DetachFromEndpoints(qu.id, &it->second);
    queries_.erase(it);
  }

  // Fig. 12 line 5: maintain the active-node NN sets with the IMA engine
  // (this also applies the object/edge updates to the shared tables).
  const std::vector<QueryId> changed_nodes =
      engine_.ProcessUpdates(batch.objects, batch.edges, {});

  // Structural query maintenance (Fig. 12 lines 1-4; a movement is a
  // deletion plus an insertion). Running it after the engine pass means
  // newly activated nodes compute against up-to-date tables.
  // cknn-lint: allow(unordered-iter) batch.queries is a vector (name collision)
  for (const QueryUpdate& qu : batch.queries) {
    switch (qu.kind) {
      case QueryUpdate::Kind::kTerminate:
        break;  // Handled above.
      case QueryUpdate::Kind::kMove: {
        auto it = queries_.find(qu.id);
        if (it == queries_.end()) {
          return Status::NotFound("move for unknown query");
        }
        UserQuery& uq = it->second;
        if (qu.pos.edge >= net_->NumEdges()) {
          return Status::InvalidArgument("move onto unknown edge");
        }
        const SequenceId new_seq = st_->SequenceOf(qu.pos.edge);
        if (new_seq != uq.seq) {
          DetachFromEndpoints(qu.id, &uq);
          uq.seq = new_seq;
          uq.pos = qu.pos;
          AttachToEndpoints(qu.id, &uq);
        } else {
          uq.pos = qu.pos;
        }
        to_evaluate.insert(qu.id);
        break;
      }
      case QueryUpdate::Kind::kInstall: {
        if (queries_.count(qu.id) != 0) {
          return Status::AlreadyExists("query id already monitored");
        }
        if (qu.k < 1) return Status::InvalidArgument("k must be >= 1");
        if (qu.pos.edge >= net_->NumEdges()) {
          return Status::InvalidArgument("install on unknown edge");
        }
        UserQuery& uq = queries_[qu.id];
        uq.pos = qu.pos;
        uq.k = qu.k;
        uq.seq = st_->SequenceOf(qu.pos.edge);
        AttachToEndpoints(qu.id, &uq);
        to_evaluate.insert(qu.id);
        break;
      }
    }
  }

  // Fig. 12 lines 6-15: determine the actually affected user queries.
  for (QueryId node_as_query : changed_nodes) {
    const NodeId n = static_cast<NodeId>(node_as_query);
    auto it = active_.find(n);
    if (it == active_.end()) continue;
    // cknn-lint: allow(unordered-iter) set insert + counter, order-free
    for (QueryId q : it->second.queries) {
      const UserQuery& uq = queries_.at(q);
      if (std::find(uq.reached_nodes.begin(), uq.reached_nodes.end(), n) !=
          uq.reached_nodes.end()) {
        if (to_evaluate.insert(q).second) ++stats_.affected_by_node_change;
      }
    }
  }
  auto mark_point = [&](const NetworkPoint& p) {
    // cknn-lint: allow(unordered-iter) set insert + counter, order-free
    for (const auto& [q, iv] : il_[p.edge]) {
      if (p.t >= iv.lo && p.t <= iv.hi) {
        if (to_evaluate.insert(q).second) ++stats_.affected_by_object;
      }
    }
  };
  for (const ObjectUpdate& u : batch.objects) {
    if (u.old_pos.has_value()) mark_point(*u.old_pos);
    if (u.new_pos.has_value()) mark_point(*u.new_pos);
  }
  for (const EdgeUpdate& u : batch.edges) {
    // cknn-lint: allow(unordered-iter) set insert + counter, order-free
    for (const auto& [q, iv] : il_[u.edge]) {
      (void)iv;
      if (to_evaluate.insert(q).second) ++stats_.affected_by_edge;
    }
  }

  // Fig. 12 lines 16-17: recompute each affected or new query.
  // cknn-lint: allow(unordered-iter) per-query recompute into (q)-keyed state
  for (QueryId q : to_evaluate) {
    auto it = queries_.find(q);
    if (it == queries_.end()) continue;  // Installed then terminated, etc.
    EvaluateQuery(q, &it->second);
  }
  return Status::OK();
}

std::size_t Gma::MemoryBytes() const {
  std::size_t bytes = engine_.MemoryBytes() +
                      HashMapBytes(queries_) + HashMapBytes(active_) +
                      il_.capacity() * sizeof(il_[0]) +
                      eval_cand_.MemoryBytes();
  // cknn-lint: allow(unordered-iter) commutative byte sum
  for (const auto& [id, uq] : queries_) {
    (void)id;
    bytes += VectorBytes(uq.result) + VectorBytes(uq.reached_nodes) +
             VectorBytes(uq.covered);
  }
  // cknn-lint: allow(unordered-iter) commutative byte sum
  for (const auto& [n, an] : active_) {
    (void)n;
    bytes += HashSetBytes(an.queries);
  }
  // cknn-lint: allow(unordered-iter) commutative byte sum
  for (const auto& m : il_) bytes += HashMapBytes(m);
  return bytes;
}

}  // namespace cknn

#ifndef CKNN_CORE_OVH_H_
#define CKNN_CORE_OVH_H_

#include <unordered_map>
#include <vector>

#include "src/core/knn_search.h"
#include "src/core/monitor.h"
#include "src/core/object_table.h"
#include "src/core/updates.h"
#include "src/graph/road_network.h"

namespace cknn {

/// \brief OVH — the overhaul baseline of Section 6: every query is
/// recomputed from scratch at every timestamp with the initial-result
/// algorithm of Figure 2. No expansion trees or influence lists are kept,
/// so its memory footprint is minimal but its CPU cost is insensitive to
/// how few updates actually matter.
class Ovh : public Monitor {
 public:
  Ovh(RoadNetwork* net, ObjectTable* objects) : net_(net), objects_(objects) {
    net_->BuildAdjacencyIndex();  // SnapshotKnn iterates the CSR view.
  }

  Status ProcessTimestamp(const UpdateBatch& batch) override;
  const std::vector<Neighbor>* ResultOf(QueryId id) const override;
  std::size_t NumQueries() const override { return queries_.size(); }
  std::size_t MemoryBytes() const override;
  std::string_view name() const override { return "OVH"; }
  void set_object_table_externally_applied(bool on) override {
    external_object_table_ = on;
  }

 private:
  struct UserQuery {
    NetworkPoint pos;
    int k = 1;
    std::vector<Neighbor> result;
  };

  RoadNetwork* net_;
  ObjectTable* objects_;
  std::unordered_map<QueryId, UserQuery> queries_;
  /// Reused across queries and timestamps (cleared per search).
  KnnScratch scratch_;
  bool external_object_table_ = false;
};

}  // namespace cknn

#endif  // CKNN_CORE_OVH_H_

#ifndef CKNN_CORE_UPDATES_H_
#define CKNN_CORE_UPDATES_H_

#include <optional>
#include <vector>

#include "src/graph/network_point.h"
#include "src/graph/types.h"

namespace cknn {

/// \brief Location update of a data object: `<p.id, p_old, p_new>`.
///
/// A missing old position means the object appears in the system; a missing
/// new position means it disappears (Section 4.2 treats these as incoming /
/// outgoing objects).
struct ObjectUpdate {
  ObjectId id = kInvalidObject;
  std::optional<NetworkPoint> old_pos;
  std::optional<NetworkPoint> new_pos;

  friend bool operator==(const ObjectUpdate& a, const ObjectUpdate& b) {
    return a.id == b.id && a.old_pos == b.old_pos && a.new_pos == b.new_pos;
  }
};

/// \brief Update of a continuous query: installation, movement, or
/// termination.
struct QueryUpdate {
  enum class Kind { kInstall, kMove, kTerminate };

  QueryId id = kInvalidQuery;
  Kind kind = Kind::kMove;
  /// Target position (ignored for kTerminate).
  NetworkPoint pos;
  /// Number of neighbors (only used for kInstall).
  int k = 1;

  friend bool operator==(const QueryUpdate& a, const QueryUpdate& b) {
    if (a.id != b.id || a.kind != b.kind) return false;
    if (a.kind == Kind::kTerminate) return true;  // pos/k are ignored.
    return a.pos == b.pos && (a.kind != Kind::kInstall || a.k == b.k);
  }
};

/// \brief Weight change of a network edge (e.g., from congestion sensors).
struct EdgeUpdate {
  EdgeId edge = kInvalidEdge;
  double new_weight = 0.0;

  friend bool operator==(const EdgeUpdate& a, const EdgeUpdate& b) {
    return a.edge == b.edge && a.new_weight == b.new_weight;
  }
};

/// \brief All updates received in one timestamp. The complete IMA (Fig. 10)
/// consumes exactly these three streams; the preprocessing requirement that
/// each entity issues at most one update per timestamp is enforced by the
/// server.
struct UpdateBatch {
  std::vector<ObjectUpdate> objects;
  std::vector<QueryUpdate> queries;
  std::vector<EdgeUpdate> edges;

  bool Empty() const {
    return objects.empty() && queries.empty() && edges.empty();
  }

  friend bool operator==(const UpdateBatch& a, const UpdateBatch& b) {
    return a.objects == b.objects && a.queries == b.queries &&
           a.edges == b.edges;
  }
};

/// \brief One nearest neighbor of a query: object id plus its network
/// distance from the query point.
struct Neighbor {
  ObjectId id = kInvalidObject;
  double distance = 0.0;

  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.id == b.id && a.distance == b.distance;
  }
};

}  // namespace cknn

#endif  // CKNN_CORE_UPDATES_H_

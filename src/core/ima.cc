#include "src/core/ima.h"

#include <algorithm>

#include "src/util/macros.h"
#include "src/util/mem.h"

namespace cknn {

ImaEngine::ImaEngine(RoadNetwork* net, ObjectTable* objects)
    : net_(net), objects_(objects), influence_(net->NumEdges()) {
  CKNN_CHECK(net_ != nullptr);
  CKNN_CHECK(objects_ != nullptr);
  net_->BuildAdjacencyIndex();  // Expansion iterates the CSR view.
}

Status ImaEngine::AddQuery(QueryId id, const ExpansionSource& source,
                           int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (entries_.count(id) != 0) {
    return Status::AlreadyExists("query id already monitored");
  }
  if (!source.at_node && source.point.edge >= net_->NumEdges()) {
    return Status::InvalidArgument("query position on unknown edge");
  }
  if (source.at_node && source.node >= net_->NumNodes()) {
    return Status::InvalidArgument("query anchored at unknown node");
  }
  Entry& entry = entries_[id];
  entry.source = source;
  entry.k = k;
  RecomputeEntry(id, &entry);
  return Status::OK();
}

Status ImaEngine::RemoveQuery(QueryId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return Status::NotFound("unknown query id");
  for (EdgeId e : it->second.covered) influence_[e].erase(id);
  entries_.erase(it);
  return Status::OK();
}

Result<bool> ImaEngine::SetK(QueryId id, int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  auto it = entries_.find(id);
  if (it == entries_.end()) return Status::NotFound("unknown query id");
  Entry& entry = it->second;
  if (entry.k == k) return false;
  entry.k = k;
  // Growing k continues the expansion from the live frontier; shrinking
  // only moves the bound.
  return RebuildEntry(id, &entry);
}

const std::vector<Neighbor>* ImaEngine::ResultOf(QueryId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second.result;
}

double ImaEngine::BoundOf(QueryId id) const {
  auto it = entries_.find(id);
  CKNN_CHECK(it != entries_.end());
  return it->second.state.bound();
}

int ImaEngine::KOf(QueryId id) const {
  auto it = entries_.find(id);
  CKNN_CHECK(it != entries_.end());
  return it->second.k;
}

const ExpansionState* ImaEngine::StateOf(QueryId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second.state;
}

template <typename Fn>
void ImaEngine::ForEachInfluenced(EdgeId e, Fn&& fn) {
  if (use_influence_filter_) {
    // Snapshot: fn may trigger coverage changes that edit influence_[e].
    // cknn-lint: allow(unordered-iter) handlers write only (id)-keyed state
    std::vector<QueryId> ids(influence_[e].begin(), influence_[e].end());
    for (QueryId id : ids) {
      auto it = entries_.find(id);
      CKNN_DCHECK(it != entries_.end());
      fn(id, &it->second);
    }
  } else {
    // cknn-lint: allow(unordered-iter) handlers write only (id)-keyed state
    for (auto& [id, entry] : entries_) {
      if (entry.state.EdgeTouched(*net_, e)) fn(id, &entry);
    }
  }
}

void ImaEngine::RederiveFrontierNode(Entry* entry, NodeId n) {
  for (const RoadNetwork::Incidence& inc : net_->Incidences(n)) {
    if (auto d = entry->state.NodeDistance(inc.neighbor)) {
      entry->frontier.Relax(entry->state, n,
                            *d + net_->WeightOf(inc.edge), inc.neighbor,
                            inc.edge);
    }
  }
}

void ImaEngine::RepairAfterRemoval(QueryId id, Entry* entry,
                                   const std::vector<NodeId>& removed) {
  if (removed.empty()) return;
  std::unordered_set<NodeId> gone(removed.begin(), removed.end());
  // Tentative labels that pointed into the removed region are stale
  // (possibly stale-low); drop and re-derive them.
  std::vector<NodeId> to_rederive(removed.begin(), removed.end());
  entry->frontier.pending.ForEach(
      [&](std::uint64_t n, const std::pair<NodeId, EdgeId>& label) {
        if (label.first != kInvalidNode && gone.count(label.first) != 0) {
          to_rederive.push_back(static_cast<NodeId>(n));
        }
      });
  for (NodeId n : to_rederive) {
    if (gone.count(n) == 0) entry->frontier.Erase(n);
  }
  for (NodeId n : to_rederive) RederiveFrontierNode(entry, n);
  // Every incident edge's objects need re-derivation (their stored
  // distances may have gone through removed nodes), and the edges may have
  // left the covered region — but influence-list removal is deferred so
  // that this timestamp's object updates still reach the query.
  (void)id;
  for (NodeId r : removed) {
    for (const RoadNetwork::Incidence& inc : net_->Incidences(r)) {
      entry->rescan_edges.insert(inc.edge);
      entry->pending_uncover.insert(inc.edge);
    }
  }
}

void ImaEngine::RepairAfterAdjust(Entry* entry,
                                  const std::vector<NodeId>& adjusted) {
  for (NodeId a : adjusted) {
    const double d = *entry->state.NodeDistance(a);
    for (const RoadNetwork::Incidence& inc : net_->Incidences(a)) {
      entry->rescan_edges.insert(inc.edge);
      if (!entry->state.IsSettled(inc.neighbor)) {
        entry->frontier.Relax(entry->state, inc.neighbor,
                              d + net_->WeightOf(inc.edge), a, inc.edge);
      }
    }
  }
}

void ImaEngine::RepairEdgeKeys(Entry* entry, EdgeId edge) {
  const RoadNetwork::Edge& ed = net_->edge(edge);
  const NodeId ends[2] = {ed.u, ed.v};
  for (int i = 0; i < 2; ++i) {
    const NodeId node = ends[i];
    const NodeId other = ends[1 - i];
    if (entry->state.IsSettled(node)) continue;
    const auto* label = entry->frontier.pending.Find(node);
    if (label != nullptr && label->second == edge) {
      // The tentative label went through this edge with the old weight.
      entry->frontier.Erase(node);
      RederiveFrontierNode(entry, node);
    } else if (auto d = entry->state.NodeDistance(other)) {
      // The settled->unsettled relaxation across this edge may have become
      // the new best.
      entry->frontier.Relax(entry->state, node, *d + ed.weight, other, edge);
    }
  }
}

void ImaEngine::ApplyEdgeDecrease(const EdgeUpdate& update) {
  const EdgeId e = update.edge;
  const double new_w = update.new_weight;
  ForEachInfluenced(e, [&](QueryId id, Entry* entry) {
    if (entry->needs_recompute) return;
    if (!use_tree_reuse_) {
      entry->needs_recompute = true;
      return;
    }
    if (!entry->source.at_node && entry->source.point.edge == e) {
      // Weight change of the query's own edge: every root offset shifts;
      // recompute (see DESIGN.md, faithfulness notes).
      entry->needs_recompute = true;
      return;
    }
    if (auto child = entry->state.TreeChildVia(*net_, e)) {
      // Fig. 9: the subtree below the edge gets uniformly closer; the rest
      // is valid only up to the new distance of the subtree root.
      const double delta = net_->WeightOf(e) - new_w;
      const auto adjusted = entry->state.AdjustSubtree(*child, -delta);
      RepairAfterAdjust(entry, adjusted);
      const double threshold = *entry->state.NodeDistance(*child);
      const auto removed =
          entry->state.PruneOthersBeyond(*child, threshold);
      RepairAfterRemoval(id, entry, removed);
    } else {
      // Covered non-tree edge: a shortcut may improve anything farther than
      // the cheapest way through it.
      const RoadNetwork::Edge& ed = net_->edge(e);
      double min_end = kInfDist;
      if (auto d = entry->state.NodeDistance(ed.u)) {
        min_end = std::min(min_end, *d);
      }
      if (auto d = entry->state.NodeDistance(ed.v)) {
        min_end = std::min(min_end, *d);
      }
      if (min_end < kInfDist) {
        const auto removed = entry->state.PruneBeyond(min_end + new_w);
        RepairAfterRemoval(id, entry, removed);
      }
    }
    entry->rescan_edges.insert(e);
    entry->affected = true;
  });
  CKNN_CHECK(net_->SetWeight(e, new_w).ok());
  ForEachInfluenced(e, [&](QueryId, Entry* entry) {
    if (!entry->needs_recompute) RepairEdgeKeys(entry, e);
  });
}

void ImaEngine::ApplyEdgeIncrease(const EdgeUpdate& update) {
  const EdgeId e = update.edge;
  ForEachInfluenced(e, [&](QueryId id, Entry* entry) {
    if (entry->needs_recompute) return;
    if (!use_tree_reuse_) {
      entry->needs_recompute = true;
      return;
    }
    if (!entry->source.at_node && entry->source.point.edge == e) {
      entry->needs_recompute = true;
      return;
    }
    if (auto child = entry->state.TreeChildVia(*net_, e)) {
      // Fig. 8: paths through the more expensive edge may no longer be
      // optimal anywhere below it.
      const auto removed = entry->state.PruneSubtree(*child);
      RepairAfterRemoval(id, entry, removed);
    }
    // Covered non-tree edge: settled distances cannot change (their
    // shortest paths avoid e), but objects *on* e shift with the weight.
    entry->rescan_edges.insert(e);
    entry->affected = true;
  });
  CKNN_CHECK(net_->SetWeight(e, update.new_weight).ok());
  ForEachInfluenced(e, [&](QueryId, Entry* entry) {
    if (!entry->needs_recompute) RepairEdgeKeys(entry, e);
  });
}

void ImaEngine::ApplyMove(const MoveRequest& move) {
  auto it = entries_.find(move.id);
  CKNN_CHECK(it != entries_.end());
  Entry& entry = it->second;
  CKNN_CHECK(!entry.source.at_node);  // Anchored queries never move.
  const NetworkPoint target = move.pos;
  CKNN_CHECK(target.edge < net_->NumEdges());
  if (entry.needs_recompute) {
    entry.source = ExpansionSource::AtPoint(target);
    return;
  }
  const NetworkPoint old = entry.source.point;
  if (target == old) return;
  if (!use_tree_reuse_) {
    entry.source = ExpansionSource::AtPoint(target);
    entry.needs_recompute = true;
    return;
  }

  auto reroot = [&](NodeId keep_root, double delta) {
    entry.state.ReRootToSubtree(keep_root, target, delta);
    entry.source = ExpansionSource::AtPoint(target);
    RebuildFrontier(*net_, entry.state, &entry.frontier);
    entry.full_refresh = true;
    entry.affected = true;
    ++stats_.reroots;
  };

  if (target.edge == old.edge) {
    // Movement along the query's own edge: the subtree hanging off the
    // endpoint we moved toward stays valid (the old shortest paths to it
    // pass through the new location).
    const RoadNetwork::Edge& ed = net_->edge(target.edge);
    const NodeId toward = target.t > old.t ? ed.v : ed.u;
    const ExpansionState::SettledInfo* info = entry.state.Info(toward);
    if (info != nullptr && info->via_edge == target.edge &&
        info->parent == kInvalidNode) {
      reroot(toward, -std::abs(target.t - old.t) * ed.weight);
      return;
    }
    entry.source = ExpansionSource::AtPoint(target);
    entry.needs_recompute = true;
    return;
  }

  // Movement onto another edge. Reuse is possible iff it is a tree edge:
  // then the new location lies on the old shortest path to the whole
  // subtree below that edge (Fig. 7).
  auto child = entry.state.TreeChildVia(*net_, target.edge);
  if (!child.has_value()) {
    entry.source = ExpansionSource::AtPoint(target);
    entry.needs_recompute = true;
    return;
  }
  const ExpansionState::SettledInfo* cinfo = entry.state.Info(*child);
  const NodeId parent = cinfo->parent;
  // Root children arrive via the source edge, which differs from
  // target.edge here, so the parent is a real settled node.
  CKNN_CHECK(parent != kInvalidNode);
  const RoadNetwork::Edge& ed = net_->edge(target.edge);
  const double off_from_parent = parent == ed.u
                                     ? target.t * ed.weight
                                     : (1.0 - target.t) * ed.weight;
  const double old_dist_of_target =
      *entry.state.NodeDistance(parent) + off_from_parent;
  reroot(*child, -old_dist_of_target);
}

void ImaEngine::ApplyObjectUpdate(const ObjectUpdate& update) {
  bool routed = false;
  if (update.old_pos.has_value()) {
    ForEachInfluenced(update.old_pos->edge, [&](QueryId, Entry* entry) {
      if (entry->needs_recompute) return;
      auto removed = entry->known.Remove(update.id);
      if (removed.has_value()) {
        routed = true;
        // Only departures from inside the bound can change the result.
        if (*removed <= entry->state.bound()) entry->affected = true;
      }
    });
  }
  // Mutate the shared object table (Fig. 10 line 17) — unless the caller
  // already did (sharded mode; routing above/below never reads the table,
  // so the apply point is free to move before the whole batch).
  if (!external_object_table_) {
    CKNN_CHECK(objects_->Apply(update).ok());
  }
  if (update.new_pos.has_value()) {
    ForEachInfluenced(update.new_pos->edge, [&](QueryId, Entry* entry) {
      if (entry->needs_recompute) return;
      auto d = entry->state.PointDistance(*net_, *update.new_pos);
      if (d.has_value()) {
        entry->known.Set(update.id, *d);
        routed = true;
        if (*d <= entry->state.bound()) entry->affected = true;
      }
    });
  }
  if (routed) {
    ++stats_.updates_routed;
  } else {
    ++stats_.updates_ignored;
  }
}

std::vector<QueryId> ImaEngine::ProcessUpdates(
    const std::vector<ObjectUpdate>& object_updates,
    const std::vector<EdgeUpdate>& edge_updates,
    const std::vector<MoveRequest>& moves) {
  // Fig. 10 ordering: decreasing weights first (lines 4-10), then
  // increasing (11-13), then query movement (14-15; checking against the
  // post-edge-update trees is strictly safer than the paper's line 1 check
  // against the stale tree), then object updates (16-19), then one rebuild
  // pass per affected query (20-26).
  for (const EdgeUpdate& u : edge_updates) {
    CKNN_CHECK(u.edge < net_->NumEdges());
    if (u.new_weight < net_->WeightOf(u.edge)) ApplyEdgeDecrease(u);
  }
  for (const EdgeUpdate& u : edge_updates) {
    if (u.new_weight > net_->WeightOf(u.edge)) ApplyEdgeIncrease(u);
  }
  for (const MoveRequest& m : moves) ApplyMove(m);
  for (const ObjectUpdate& u : object_updates) ApplyObjectUpdate(u);

  std::vector<QueryId> changed;
  // cknn-lint: allow(unordered-iter) id-keyed work; changed is sorted below
  for (auto& [id, entry] : entries_) {
    if (entry.needs_recompute) {
      if (RecomputeEntry(id, &entry)) changed.push_back(id);
    } else if (entry.affected || entry.full_refresh ||
               !entry.rescan_edges.empty()) {
      if (RebuildEntry(id, &entry)) changed.push_back(id);
    }
  }
  // entries_ iterates in hash order; canonicalize the API surface so no
  // caller can pick up a dependence on it.
  std::sort(changed.begin(), changed.end());
  return changed;
}

void ImaEngine::RescanEdge(Entry* entry, EdgeId e) {
  for (ObjectId obj : objects_->ObjectsOn(e)) {
    const NetworkPoint pos = objects_->Position(obj).value();
    auto d = entry->state.PointDistance(*net_, pos);
    if (d.has_value()) {
      entry->known.Set(obj, *d);
    } else {
      entry->known.Remove(obj);
    }
  }
}

void ImaEngine::RefreshKnownAll(Entry* entry) {
  std::vector<ObjectId> ids;
  ids.reserve(entry->known.size());
  entry->known.ForEachCandidate(
      [&](ObjectId id, double) { ids.push_back(id); });
  for (ObjectId id : ids) {
    auto pos = objects_->Position(id);
    CKNN_CHECK(pos.ok());  // Departed objects were removed in Sold handling.
    auto d = entry->state.PointDistance(*net_, *pos);
    if (d.has_value()) {
      entry->known.Set(id, *d);
    } else {
      entry->known.Remove(id);
    }
  }
}

void ImaEngine::RebuildCoverage(QueryId id, Entry* entry) {
  std::unordered_set<EdgeId> covered;
  covered.reserve(entry->state.NumSettled() * 3 + 1);
  if (!entry->source.at_node) covered.insert(entry->source.point.edge);
  entry->state.ForEachSettled(
      [&](NodeId n, const ExpansionState::SettledInfo& info) {
        (void)info;
        for (const RoadNetwork::Incidence& inc : net_->Incidences(n)) {
          covered.insert(inc.edge);
        }
      });
  // cknn-lint: allow(unordered-iter) keyed set edits, order-free
  for (EdgeId e : entry->covered) {
    if (covered.count(e) == 0) influence_[e].erase(id);
  }
  // cknn-lint: allow(unordered-iter) keyed set edits, order-free
  for (EdgeId e : covered) {
    if (entry->covered.count(e) == 0) influence_[e].insert(id);
  }
  entry->covered = std::move(covered);
}

void ImaEngine::GrowCoverage(QueryId id, Entry* entry,
                             const std::vector<NodeId>& fresh) {
  for (NodeId n : fresh) {
    for (const RoadNetwork::Incidence& inc : net_->Incidences(n)) {
      if (entry->covered.insert(inc.edge).second) {
        influence_[inc.edge].insert(id);
      }
    }
  }
}

bool ImaEngine::ExtractResult(Entry* entry) {
  entry->state.set_bound(entry->known.KthDist(entry->k));
  std::vector<Neighbor> result = entry->known.TopK(entry->k);
  const bool changed = result != entry->result;
  entry->result = std::move(result);
  entry->affected = false;
  return changed;
}

bool ImaEngine::RebuildEntry(QueryId id, Entry* entry) {
  ++stats_.rebuilds;
  if (entry->full_refresh) {
    RefreshKnownAll(entry);
  } else {
    for (EdgeId e : entry->rescan_edges) RescanEdge(entry, e);
  }
  entry->rescan_edges.clear();
  std::vector<NodeId> fresh;
  ExpandToK(*net_, *objects_, entry->k, &entry->state, &entry->frontier,
            &entry->known, &fresh);
  if (entry->full_refresh) {
    RebuildCoverage(id, entry);
    entry->full_refresh = false;
    entry->pending_uncover.clear();
    return ExtractResult(entry);
  }
  GrowCoverage(id, entry, fresh);
  // Lazy shrink (the paper's tree shrinking with hysteresis): once the
  // tree radius exceeds the bound by more than the slack, prune the excess
  // so influence lists don't ratchet up under weight wobble.
  constexpr double kShrinkSlack = 1.3;
  const double bound = entry->known.KthDist(entry->k);
  if (bound < kInfDist &&
      entry->state.max_settled_dist() > kShrinkSlack * bound) {
    const double keep_radius = kShrinkSlack * bound;
    const auto removed = entry->state.PruneBeyond(keep_radius);
    RepairAfterRemoval(id, entry, removed);
    for (EdgeId e : entry->rescan_edges) RescanEdge(entry, e);
    entry->rescan_edges.clear();
    entry->state.set_max_settled_dist(keep_radius);
  }
  // Deferred coverage shrinking: edges whose region was pruned and not
  // re-settled by the expansion leave the influence lists now.
  // cknn-lint: allow(unordered-iter) keyed erases, order-free
  for (EdgeId e : entry->pending_uncover) {
    if (!entry->state.EdgeTouched(*net_, e)) {
      if (entry->covered.erase(e) > 0) influence_[e].erase(id);
    }
  }
  entry->pending_uncover.clear();
  return ExtractResult(entry);
}

bool ImaEngine::RecomputeEntry(QueryId id, Entry* entry) {
  ++stats_.full_recomputes;
  if (entry->source.at_node) {
    entry->state.ResetToNode(entry->source.node);
  } else {
    entry->state.ResetToPoint(entry->source.point);
  }
  entry->frontier.Clear();
  entry->known.Clear();
  entry->rescan_edges.clear();
  entry->pending_uncover.clear();
  entry->full_refresh = false;
  entry->needs_recompute = false;
  ExpandToK(*net_, *objects_, entry->k, &entry->state, &entry->frontier,
            &entry->known);
  RebuildCoverage(id, entry);
  return ExtractResult(entry);
}


Status ImaEngine::CheckInvariants() const {
  auto fail = [](std::string msg) { return Status::Internal(std::move(msg)); };
  // cknn-lint: allow(unordered-iter) validation; any order finds a violation
  for (const auto& [id, entry] : entries_) {
    const std::string tag = "query " + std::to_string(id) + ": ";
    // Expansion tree: parents settled, label arithmetic consistent.
    Status tree_status = Status::OK();
    entry.state.ForEachSettled(
        [&](NodeId n, const ExpansionState::SettledInfo& info) {
          (void)n;
          if (!tree_status.ok() || info.parent == kInvalidNode) return;
          const auto* pinfo = entry.state.Info(info.parent);
          if (pinfo == nullptr) {
            tree_status = fail(tag + "orphaned settled node");
            return;
          }
          const double want = pinfo->dist + net_->WeightOf(info.via_edge);
          if (std::abs(info.dist - want) > 1e-6 * (1.0 + want)) {
            tree_status = fail(tag + "settled dist does not match its tree label");
          }
        });
    if (!tree_status.ok()) return tree_status;
    // Frontier: pending parents settled, keys consistent with labels.
    Status frontier_status = Status::OK();
    entry.frontier.pending.ForEach(
        [&](std::uint64_t n, const std::pair<NodeId, EdgeId>& label) {
          if (!frontier_status.ok()) return;
          if (entry.state.IsSettled(static_cast<NodeId>(n))) {
            frontier_status = fail(tag + "settled node still in frontier");
            return;
          }
          if (label.first != kInvalidNode &&
              !entry.state.IsSettled(label.first)) {
            frontier_status =
                fail(tag + "frontier label points at unsettled parent");
          }
        });
    if (!frontier_status.ok()) return frontier_status;
    // Known set: objects exist, lie on influenced edges, distances valid.
    Status known_status = Status::OK();
    entry.known.ForEachCandidate([&](ObjectId obj, double) {
      if (!known_status.ok()) return;
      auto pos = objects_->Position(obj);
      if (!pos.ok()) {
        known_status = fail(tag + "known object missing from table");
        return;
      }
      const EdgeId e = pos->edge;
      if (entry.covered.count(e) == 0 &&
          entry.pending_uncover.count(e) == 0) {
        known_status = fail(tag + "known object on uncovered edge");
        return;
      }
      if (influence_[e].count(id) == 0) {
        known_status = fail(tag + "known object's edge lost the influence entry");
      }
    });
    if (!known_status.ok()) return known_status;
    // Coverage <-> influence agreement.
    // cknn-lint: allow(unordered-iter) validation; any order finds a violation
    for (EdgeId e : entry.covered) {
      if (influence_[e].count(id) == 0) {
        return fail(tag + "covered edge without influence entry");
      }
    }
  }
  for (EdgeId e = 0; e < influence_.size(); ++e) {
    // cknn-lint: allow(unordered-iter) validation; any order finds a violation
    for (QueryId id : influence_[e]) {
      auto it = entries_.find(id);
      if (it == entries_.end()) {
        return fail("influence list holds a removed query");
      }
      if (it->second.covered.count(e) == 0) {
        return fail("influence entry without covered edge");
      }
    }
  }
  return Status::OK();
}

std::size_t ImaEngine::MemoryBytes() const {
  std::size_t bytes = HashMapBytes(entries_) +
                      influence_.capacity() * sizeof(influence_[0]);
  // cknn-lint: allow(unordered-iter) commutative byte sum
  for (const auto& [id, entry] : entries_) {
    (void)id;
    bytes += entry.state.MemoryBytes() + entry.known.MemoryBytes() +
             entry.frontier.MemoryBytes() + VectorBytes(entry.result) +
             HashSetBytes(entry.covered) + HashSetBytes(entry.rescan_edges);
  }
  // cknn-lint: allow(unordered-iter) commutative byte sum
  for (const auto& il : influence_) bytes += HashSetBytes(il);
  return bytes;
}

Status Ima::ProcessTimestamp(const UpdateBatch& batch) {
  // Terminations first (before any maintenance work is spent on them),
  // installations last (after all updates took effect) — Section 4.5.
  std::vector<ImaEngine::MoveRequest> moves;
  for (const QueryUpdate& qu : batch.queries) {
    switch (qu.kind) {
      case QueryUpdate::Kind::kTerminate:
        CKNN_RETURN_NOT_OK(engine_.RemoveQuery(qu.id));
        break;
      case QueryUpdate::Kind::kMove:
        if (!engine_.HasQuery(qu.id)) {
          return Status::NotFound("move for unknown query");
        }
        moves.push_back(ImaEngine::MoveRequest{qu.id, qu.pos});
        break;
      case QueryUpdate::Kind::kInstall:
        break;  // Deferred below.
    }
  }
  engine_.ProcessUpdates(batch.objects, batch.edges, moves);
  for (const QueryUpdate& qu : batch.queries) {
    if (qu.kind == QueryUpdate::Kind::kInstall) {
      CKNN_RETURN_NOT_OK(
          engine_.AddQuery(qu.id, ExpansionSource::AtPoint(qu.pos), qu.k));
    }
  }
  return Status::OK();
}

}  // namespace cknn

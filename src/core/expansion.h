#ifndef CKNN_CORE_EXPANSION_H_
#define CKNN_CORE_EXPANSION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/graph/network_point.h"
#include "src/graph/road_network.h"
#include "src/graph/types.h"
#include "src/util/dense_id_map.h"

namespace cknn {

/// \brief Where an expansion is rooted: either an arbitrary point on an edge
/// (user queries) or exactly at a node (GMA's active nodes).
struct ExpansionSource {
  bool at_node = false;
  NodeId node = kInvalidNode;
  NetworkPoint point;

  static ExpansionSource AtPoint(const NetworkPoint& p) {
    ExpansionSource s;
    s.at_node = false;
    s.point = p;
    return s;
  }
  static ExpansionSource AtNodeSource(NodeId n) {
    ExpansionSource s;
    s.at_node = true;
    s.node = n;
    return s;
  }
};

/// \brief The paper's expansion tree `q.tree` (Section 3): for every network
/// node verified by the expansion, its exact network distance from the
/// query plus the tree edge through which its shortest path arrives.
///
/// Influencing intervals are represented implicitly: an edge `(u,v,w)` is
/// covered iff one of its endpoints is settled (or it is the source edge),
/// and a position at weight-offset `o` from `u` is inside the influencing
/// interval iff `min(d(u)+o, d(v)+w-o) <= bound` (evaluating only settled
/// endpoints). This is equivalent to the paper's marks without per-edge
/// interval bookkeeping.
///
/// Storage is a node-indexed `DenseIdMap` of slots that carry the tree
/// label plus intrusive first-child/next-sibling links, so subtree walks
/// need no separate parent -> children hash map and a full reset is an O(1)
/// epoch bump (the per-query state is reused across timestamps).
///
/// The class exposes exactly the maintenance operations Sections 4.2-4.4
/// need: subtree pruning (weight increases, query movement), subtree
/// distance adjustment (weight decreases, re-rooting), and threshold pruning
/// (result shrinking, non-tree weight decreases).
class ExpansionState {
 public:
  struct SettledInfo {
    double dist = 0.0;
    NodeId parent = kInvalidNode;  ///< kInvalidNode for roots.
    EdgeId via_edge = kInvalidEdge;
  };

  ExpansionState() = default;

  /// Clears everything and re-roots at a point / node.
  void ResetToPoint(const NetworkPoint& p);
  void ResetToNode(NodeId n);

  const ExpansionSource& source() const { return source_; }

  /// Moves the source point without touching the settled set. Only the
  /// re-rooting path of query movement may call this (the caller is
  /// responsible for having adjusted the settled distances).
  void SetSourcePoint(const NetworkPoint& p);

  bool IsSettled(NodeId n) const { return settled_.Contains(n); }
  std::optional<double> NodeDistance(NodeId n) const;
  const SettledInfo* Info(NodeId n) const;

  std::size_t NumSettled() const { return settled_.size(); }

  /// Calls `f(NodeId, const SettledInfo&)` for every settled node, in
  /// ascending node id order.
  template <typename F>
  void ForEachSettled(F&& f) const {
    settled_.ForEach(
        [&](std::uint64_t n, const Slot& s) { f(static_cast<NodeId>(n), s.info); });
  }

  /// Adds a verified node. Checked error if already settled.
  void Settle(NodeId n, double dist, NodeId parent, EdgeId via_edge);

  /// The settled node whose shortest path arrives through `e` (the root of
  /// the subtree hanging below `e`), if any.
  std::optional<NodeId> TreeChildVia(const RoadNetwork& net, EdgeId e) const;

  /// Nodes of the subtree rooted at `root` (inclusive). O(subtree).
  std::vector<NodeId> SubtreeOf(NodeId root) const;

  /// Removes `root` and all its descendants (Fig. 8: weight increase).
  /// Returns the removed nodes (the caller repairs its frontier with them).
  std::vector<NodeId> PruneSubtree(NodeId root);

  /// Adds `delta` to the distance of every node in the subtree of `root`
  /// (Fig. 9: weight decrease). Returns the adjusted nodes.
  std::vector<NodeId> AdjustSubtree(NodeId root, double delta);

  /// Removes every settled node with distance > threshold (non-tree-edge
  /// weight decreases). Distance-monotone, so the remaining set stays
  /// ancestor-closed. Returns the removed nodes.
  std::vector<NodeId> PruneBeyond(double threshold);

  /// Keeps the subtree of `keep_root` plus every other node with distance
  /// <= threshold; removes the rest (Fig. 9's valid parts (i) + (ii)).
  /// Returns the removed nodes.
  std::vector<NodeId> PruneOthersBeyond(NodeId keep_root, double threshold);

  /// Re-roots the expansion at `new_source` keeping only the subtree of
  /// `subtree_root`, whose distances are shifted by `delta` (== minus the
  /// old distance of the new source point). The subtree root becomes a root
  /// of the new tree (Fig. 7: query movement within the tree).
  void ReRootToSubtree(NodeId subtree_root, const NetworkPoint& new_source,
                       double delta);

  /// `q.kNN_dist`: distance to the current k-th neighbor (+inf while fewer
  /// than k are known).
  double bound() const { return bound_; }
  void set_bound(double b) { bound_ = b; }

  /// Exact network distance from the source to `p`, provided `p` lies in
  /// the covered region (min over settled endpoints of p's edge, plus the
  /// along-edge path when p shares the source edge). nullopt when no
  /// settled endpoint exists. May be an upper bound for positions on
  /// partially covered boundary edges; see ima.cc for why that is safe.
  std::optional<double> PointDistance(const RoadNetwork& net,
                                      const NetworkPoint& p) const;

  /// True iff `e` is incident to a settled node or is the source edge.
  bool EdgeTouched(const RoadNetwork& net, EdgeId e) const;

  /// True iff weight-offset `o` from `e.u` lies inside e's influencing
  /// interval(s) for the current bound.
  bool InInfluencingInterval(const RoadNetwork& net, EdgeId e,
                             double offset_from_u) const;

  void Clear();

  /// Estimated heap footprint in bytes.
  std::size_t MemoryBytes() const;

  /// Largest settled distance ever reached since the last reset/re-root —
  /// an upper bound on the tree radius, used for lazy shrinking. It is
  /// deliberately *not* lowered by the pruning operations (EraseNodes keeps
  /// it as a monotone upper bound; recomputing the max over the survivors
  /// would cost O(settled) per prune), so it may overestimate until the
  /// caller re-anchors it via set_max_settled_dist.
  double max_settled_dist() const { return max_settled_dist_; }
  void set_max_settled_dist(double d) { max_settled_dist_ = d; }

 private:
  /// One settled node: tree label plus intrusive child-list links (children
  /// are linked newest-first) and a scratch stamp for set operations.
  struct Slot {
    SettledInfo info;
    NodeId first_child = kInvalidNode;
    NodeId next_sibling = kInvalidNode;
    std::uint32_t mark = 0;  ///< Live iff == mark_epoch_ (scratch).
  };

  /// Removes `n` from its parent's child list (if the parent survives).
  void DetachFromParent(NodeId n, NodeId parent);
  /// Erases a batch of nodes; slots must all be live on entry. The nodes'
  /// `mark` stamps are consumed as the "also being erased" set, so parent
  /// links are only unlinked where the parent survives. max_settled_dist_
  /// is intentionally left untouched (monotone upper bound, see above).
  void EraseNodes(const std::vector<NodeId>& nodes);
  /// Bumps the scratch-mark epoch and stamps `nodes`.
  void MarkNodes(const std::vector<NodeId>& nodes);

  ExpansionSource source_;
  DenseIdMap<Slot> settled_;
  std::uint32_t mark_epoch_ = 0;
  double bound_ = kInfDist;
  double max_settled_dist_ = 0.0;
};

}  // namespace cknn

#endif  // CKNN_CORE_EXPANSION_H_

#include "src/core/server.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/util/macros.h"

namespace cknn {

namespace {

std::unique_ptr<PmrQuadtree> BuildSpatialIndex(const RoadNetwork& net) {
  Rect box = net.BoundingBox();
  // Pad so border segments survive floating-point containment checks. The
  // extent-proportional term covers ordinary networks; the absolute floor
  // keeps zero-extent workspaces (single point, coincident degenerate
  // edges) from collapsing into a box too thin to subdivide or search, and
  // is scaled with the coordinate magnitude so it cannot be absorbed by
  // floating-point rounding far from the origin.
  const double extent = std::max(box.Width(), box.Height());
  const double magnitude =
      std::max(std::max(std::abs(box.min_x), std::abs(box.max_x)),
               std::max(std::abs(box.min_y), std::abs(box.max_y)));
  const double pad =
      std::max(1e-3 * extent, std::max(1e-6, 1e-7 * magnitude));
  box.min_x -= pad;
  box.min_y -= pad;
  box.max_x += pad;
  box.max_y += pad;
  auto tree = std::make_unique<PmrQuadtree>(box);
  for (EdgeId e = 0; e < net.NumEdges(); ++e) {
    CKNN_CHECK(tree->Insert(e, net.EdgeSegment(e)).ok());
  }
  return tree;
}

}  // namespace

MonitoringServer::MonitoringServer(RoadNetwork network, Algorithm algorithm,
                                   int num_shards)
    : network_(std::move(network)),
      objects_(network_.NumEdges()),
      spatial_index_(BuildSpatialIndex(network_)),
      algorithm_(algorithm),
      shards_(&network_, &objects_, algorithm, num_shards) {}

UpdateBatch MonitoringServer::AggregateBatch(const UpdateBatch& batch) {
  UpdateBatch out;
  // Objects: first old position + last new position per id; an object that
  // appears and disappears within the timestamp cancels out.
  {
    std::unordered_map<ObjectId, std::size_t> index;
    for (const ObjectUpdate& u : batch.objects) {
      auto it = index.find(u.id);
      if (it == index.end()) {
        index.emplace(u.id, out.objects.size());
        out.objects.push_back(u);
      } else {
        out.objects[it->second].new_pos = u.new_pos;
      }
    }
    out.objects.erase(
        std::remove_if(out.objects.begin(), out.objects.end(),
                       [](const ObjectUpdate& u) {
                         return !u.old_pos.has_value() &&
                                !u.new_pos.has_value();
                       }),
        out.objects.end());
  }
  // Queries: fold each id's install/move/terminate chain into its net
  // effect. A chain whose first update is kInstall presumes the query is
  // new to the system; one starting with kMove/kTerminate presumes it is
  // already registered. A registered query that terminates and re-installs
  // within the timestamp cannot collapse into a single update (a bare
  // install would collide with the still-registered id), so it is emitted
  // as a kTerminate immediately followed by a kInstall — the one sanctioned
  // exception to "one update per entity" (see Monitor::ProcessTimestamp):
  // every algorithm processes terminations before installations.
  {
    struct Fold {
      bool began_alive = false;  ///< First update was a move/terminate.
      bool died = false;         ///< Terminated while began_alive.
      bool alive = false;        ///< Net state after the chain.
      /// An install arrived while the query was alive — invalid sequential
      /// input. Emitted as an install so the algorithms surface the same
      /// AlreadyExists error a sequential replay would.
      bool reinstalled_alive = false;
      NetworkPoint pos;
      int k = 1;
    };
    std::vector<QueryId> order;
    std::unordered_map<QueryId, Fold> folds;
    for (const QueryUpdate& u : batch.queries) {
      auto it = folds.find(u.id);
      if (it == folds.end()) {
        order.push_back(u.id);
        it = folds.emplace(u.id, Fold{}).first;
        Fold& f = it->second;
        f.began_alive = u.kind != QueryUpdate::Kind::kInstall;
        f.alive = u.kind == QueryUpdate::Kind::kMove;  // Refined below.
      }
      Fold& f = it->second;
      switch (u.kind) {
        case QueryUpdate::Kind::kMove:
          // A move of a dead-and-not-reinstalled query is invalid input;
          // as before, it only updates the remembered position.
          f.pos = u.pos;
          break;
        case QueryUpdate::Kind::kTerminate:
          f.alive = false;
          if (f.began_alive) f.died = true;
          break;
        case QueryUpdate::Kind::kInstall:
          if (f.alive) f.reinstalled_alive = true;
          f.alive = true;
          f.pos = u.pos;
          f.k = u.k;
          break;
      }
    }
    for (QueryId id : order) {
      const Fold& f = folds.at(id);
      const QueryUpdate install{id, QueryUpdate::Kind::kInstall, f.pos, f.k};
      const QueryUpdate terminate{id, QueryUpdate::Kind::kTerminate,
                                  NetworkPoint{}, 0};
      if (!f.began_alive) {
        // Appeared within the tick: a single install, or nothing if it
        // also terminated (net no-op). A duplicate install while alive is
        // invalid input — emit it twice so validation rejects the batch
        // (AlreadyExists) like a sequential replay would.
        if (f.alive) {
          out.queries.push_back(install);
          if (f.reinstalled_alive) out.queries.push_back(install);
        }
        continue;
      }
      if (!f.alive) {
        out.queries.push_back(terminate);
      } else if (f.died) {
        out.queries.push_back(terminate);
        out.queries.push_back(install);
        if (f.reinstalled_alive) out.queries.push_back(install);
      } else if (f.reinstalled_alive) {
        // e.g. [move, install]: invalid input; keep the install so the
        // batch is rejected (AlreadyExists) like a sequential replay.
        out.queries.push_back(install);
      } else {
        out.queries.push_back(
            QueryUpdate{id, QueryUpdate::Kind::kMove, f.pos, 0});
      }
    }
  }
  // Edges: last weight wins (the paper aggregates weight changes into one
  // overall change per timestamp).
  {
    std::unordered_map<EdgeId, std::size_t> index;
    for (const EdgeUpdate& u : batch.edges) {
      auto it = index.find(u.edge);
      if (it == index.end()) {
        index.emplace(u.edge, out.edges.size());
        out.edges.push_back(u);
      } else {
        out.edges[it->second].new_weight = u.new_weight;
      }
    }
  }
  return out;
}

Status MonitoringServer::Tick(const UpdateBatch& batch) {
  // Stage 1: aggregate once (Section 4.5 preprocessing).
  const UpdateBatch aggregated = AggregateBatch(batch);
  // Stage 2: validate against the shared tables before anything mutates
  // state (the engines CKNN_CHECK internally).
  for (const ObjectUpdate& u : aggregated.objects) {
    if (u.old_pos.has_value()) {
      auto pos = objects_.Position(u.id);
      if (!pos.ok()) return Status::NotFound("update for unknown object");
      if (!(pos.value() == *u.old_pos)) {
        return Status::InvalidArgument(
            "object update old position does not match the table");
      }
    } else if (u.new_pos.has_value() && objects_.Contains(u.id)) {
      return Status::AlreadyExists("object appears but already exists");
    }
    if (u.new_pos.has_value() && u.new_pos->edge >= network_.NumEdges()) {
      return Status::InvalidArgument("object position on unknown edge");
    }
  }
  for (const EdgeUpdate& u : aggregated.edges) {
    if (u.edge >= network_.NumEdges()) {
      return Status::NotFound("weight update for unknown edge");
    }
    if (u.new_weight < 0.0) {
      return Status::InvalidArgument("negative edge weight");
    }
  }
  // Query updates are validated here too — before stage 3 — so a batch a
  // shard would reject cannot leave the shared table mutated but unrouted
  // (the monitors' own error returns for these cases are unreachable
  // through the server). `overlay` tracks registration changes made
  // earlier in this batch (e.g. a terminate→install pair).
  {
    std::unordered_map<QueryId, bool> overlay;
    const auto registered = [&](QueryId id) {
      auto it = overlay.find(id);
      return it != overlay.end() ? it->second : shards_.HasQuery(id);
    };
    for (const QueryUpdate& u : aggregated.queries) {
      switch (u.kind) {
        case QueryUpdate::Kind::kTerminate:
          if (!registered(u.id)) {
            return Status::NotFound("terminate for unknown query");
          }
          overlay[u.id] = false;
          break;
        case QueryUpdate::Kind::kMove:
          if (!registered(u.id)) {
            return Status::NotFound("move for unknown query");
          }
          if (u.pos.edge >= network_.NumEdges()) {
            return Status::InvalidArgument("query move onto unknown edge");
          }
          break;
        case QueryUpdate::Kind::kInstall:
          if (registered(u.id)) {
            return Status::AlreadyExists("query id already monitored");
          }
          if (u.k < 1) return Status::InvalidArgument("k must be >= 1");
          if (u.pos.edge >= network_.NumEdges()) {
            return Status::InvalidArgument("query position on unknown edge");
          }
          overlay[u.id] = true;
          break;
      }
    }
  }
  // Stage 3: apply object updates to the shared table exactly once. The
  // shards run in shared-table mode and only route these updates through
  // their maintenance structures; during the parallel phase the table is
  // read-only.
  for (const ObjectUpdate& u : aggregated.objects) {
    CKNN_CHECK(objects_.Apply(u).ok());
  }
  // Stages 4+5: per-shard maintenance (parallel when num_shards > 1),
  // statuses merged in shard order.
  CKNN_RETURN_NOT_OK(shards_.ProcessTimestamp(aggregated));
  ++timestamp_;
  return Status::OK();
}

Status MonitoringServer::InstallQuery(QueryId id, const NetworkPoint& pos,
                                      int k) {
  UpdateBatch batch;
  batch.queries.push_back(
      QueryUpdate{id, QueryUpdate::Kind::kInstall, pos, k});
  return Tick(batch);
}

Status MonitoringServer::TerminateQuery(QueryId id) {
  UpdateBatch batch;
  batch.queries.push_back(
      QueryUpdate{id, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  return Tick(batch);
}

Status MonitoringServer::MoveQuery(QueryId id, const NetworkPoint& pos) {
  UpdateBatch batch;
  batch.queries.push_back(QueryUpdate{id, QueryUpdate::Kind::kMove, pos, 0});
  return Tick(batch);
}

Status MonitoringServer::AddObject(ObjectId id, const NetworkPoint& pos) {
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{id, std::nullopt, pos});
  return Tick(batch);
}

Status MonitoringServer::RemoveObject(ObjectId id) {
  auto pos = objects_.Position(id);
  if (!pos.ok()) return pos.status();
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{id, pos.value(), std::nullopt});
  return Tick(batch);
}

Status MonitoringServer::MoveObject(ObjectId id, const NetworkPoint& pos) {
  auto old_pos = objects_.Position(id);
  if (!old_pos.ok()) return old_pos.status();
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{id, old_pos.value(), pos});
  return Tick(batch);
}

Status MonitoringServer::UpdateEdgeWeight(EdgeId edge, double new_weight) {
  UpdateBatch batch;
  batch.edges.push_back(EdgeUpdate{edge, new_weight});
  return Tick(batch);
}

Result<NetworkPoint> MonitoringServer::Snap(const Point& p) const {
  auto hit = spatial_index_->Nearest(p);
  if (!hit.ok()) return hit.status();
  return NetworkPoint{static_cast<EdgeId>(hit->id), hit->t};
}

}  // namespace cknn

#include "src/core/server.h"

#include <algorithm>
#include <unordered_map>

#include "src/core/gma.h"
#include "src/core/ima.h"
#include "src/core/ovh.h"
#include "src/util/macros.h"

namespace cknn {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kIma:
      return "IMA";
    case Algorithm::kGma:
      return "GMA";
    case Algorithm::kOvh:
      return "OVH";
  }
  return "?";
}

namespace {

std::unique_ptr<PmrQuadtree> BuildSpatialIndex(const RoadNetwork& net) {
  Rect box = net.BoundingBox();
  // Pad so border segments survive floating-point containment checks.
  const double pad = 1e-9 + 1e-3 * std::max(box.Width(), box.Height());
  box.min_x -= pad;
  box.min_y -= pad;
  box.max_x += pad;
  box.max_y += pad;
  auto tree = std::make_unique<PmrQuadtree>(box);
  for (EdgeId e = 0; e < net.NumEdges(); ++e) {
    CKNN_CHECK(tree->Insert(e, net.EdgeSegment(e)).ok());
  }
  return tree;
}

std::unique_ptr<Monitor> MakeMonitor(Algorithm algorithm, RoadNetwork* net,
                                     ObjectTable* objects) {
  switch (algorithm) {
    case Algorithm::kIma:
      return std::make_unique<Ima>(net, objects);
    case Algorithm::kGma:
      return std::make_unique<Gma>(net, objects);
    case Algorithm::kOvh:
      return std::make_unique<Ovh>(net, objects);
  }
  CKNN_CHECK(false);
  return nullptr;
}

}  // namespace

MonitoringServer::MonitoringServer(RoadNetwork network, Algorithm algorithm)
    : network_(std::move(network)),
      objects_(network_.NumEdges()),
      spatial_index_(BuildSpatialIndex(network_)),
      algorithm_(algorithm),
      monitor_(MakeMonitor(algorithm, &network_, &objects_)) {}

UpdateBatch MonitoringServer::AggregateBatch(const UpdateBatch& batch) {
  UpdateBatch out;
  // Objects: first old position + last new position per id; an object that
  // appears and disappears within the timestamp cancels out.
  {
    std::unordered_map<ObjectId, std::size_t> index;
    for (const ObjectUpdate& u : batch.objects) {
      auto it = index.find(u.id);
      if (it == index.end()) {
        index.emplace(u.id, out.objects.size());
        out.objects.push_back(u);
      } else {
        out.objects[it->second].new_pos = u.new_pos;
      }
    }
    out.objects.erase(
        std::remove_if(out.objects.begin(), out.objects.end(),
                       [](const ObjectUpdate& u) {
                         return !u.old_pos.has_value() &&
                                !u.new_pos.has_value();
                       }),
        out.objects.end());
  }
  // Queries: collapse install/move/terminate chains.
  {
    std::unordered_map<QueryId, std::size_t> index;
    std::vector<bool> drop;
    for (const QueryUpdate& u : batch.queries) {
      auto it = index.find(u.id);
      if (it == index.end()) {
        index.emplace(u.id, out.queries.size());
        out.queries.push_back(u);
        drop.push_back(false);
        continue;
      }
      QueryUpdate& acc = out.queries[it->second];
      switch (u.kind) {
        case QueryUpdate::Kind::kMove:
          acc.pos = u.pos;  // Keep the original kind (install stays install).
          break;
        case QueryUpdate::Kind::kTerminate:
          if (acc.kind == QueryUpdate::Kind::kInstall) {
            drop[it->second] = true;  // Installed and gone: net no-op.
          } else {
            acc.kind = QueryUpdate::Kind::kTerminate;
          }
          break;
        case QueryUpdate::Kind::kInstall:
          acc = u;  // Re-install after terminate.
          drop[it->second] = false;
          break;
      }
    }
    UpdateBatch filtered;
    for (std::size_t i = 0; i < out.queries.size(); ++i) {
      if (!drop[i]) filtered.queries.push_back(out.queries[i]);
    }
    out.queries = std::move(filtered.queries);
  }
  // Edges: last weight wins (the paper aggregates weight changes into one
  // overall change per timestamp).
  {
    std::unordered_map<EdgeId, std::size_t> index;
    for (const EdgeUpdate& u : batch.edges) {
      auto it = index.find(u.edge);
      if (it == index.end()) {
        index.emplace(u.edge, out.edges.size());
        out.edges.push_back(u);
      } else {
        out.edges[it->second].new_weight = u.new_weight;
      }
    }
  }
  return out;
}

Status MonitoringServer::Tick(const UpdateBatch& batch) {
  const UpdateBatch aggregated = AggregateBatch(batch);
  // Validate object updates against the table before the algorithms mutate
  // shared state (the engines CKNN_CHECK internally).
  for (const ObjectUpdate& u : aggregated.objects) {
    if (u.old_pos.has_value()) {
      auto pos = objects_.Position(u.id);
      if (!pos.ok()) return Status::NotFound("update for unknown object");
      if (!(pos.value() == *u.old_pos)) {
        return Status::InvalidArgument(
            "object update old position does not match the table");
      }
    } else if (u.new_pos.has_value() && objects_.Contains(u.id)) {
      return Status::AlreadyExists("object appears but already exists");
    }
    if (u.new_pos.has_value() && u.new_pos->edge >= network_.NumEdges()) {
      return Status::InvalidArgument("object position on unknown edge");
    }
  }
  for (const EdgeUpdate& u : aggregated.edges) {
    if (u.edge >= network_.NumEdges()) {
      return Status::NotFound("weight update for unknown edge");
    }
    if (u.new_weight < 0.0) {
      return Status::InvalidArgument("negative edge weight");
    }
  }
  CKNN_RETURN_NOT_OK(monitor_->ProcessTimestamp(aggregated));
  ++timestamp_;
  return Status::OK();
}

Status MonitoringServer::InstallQuery(QueryId id, const NetworkPoint& pos,
                                      int k) {
  UpdateBatch batch;
  batch.queries.push_back(
      QueryUpdate{id, QueryUpdate::Kind::kInstall, pos, k});
  return Tick(batch);
}

Status MonitoringServer::TerminateQuery(QueryId id) {
  UpdateBatch batch;
  batch.queries.push_back(
      QueryUpdate{id, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  return Tick(batch);
}

Status MonitoringServer::MoveQuery(QueryId id, const NetworkPoint& pos) {
  UpdateBatch batch;
  batch.queries.push_back(QueryUpdate{id, QueryUpdate::Kind::kMove, pos, 0});
  return Tick(batch);
}

Status MonitoringServer::AddObject(ObjectId id, const NetworkPoint& pos) {
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{id, std::nullopt, pos});
  return Tick(batch);
}

Status MonitoringServer::RemoveObject(ObjectId id) {
  auto pos = objects_.Position(id);
  if (!pos.ok()) return pos.status();
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{id, pos.value(), std::nullopt});
  return Tick(batch);
}

Status MonitoringServer::MoveObject(ObjectId id, const NetworkPoint& pos) {
  auto old_pos = objects_.Position(id);
  if (!old_pos.ok()) return old_pos.status();
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{id, old_pos.value(), pos});
  return Tick(batch);
}

Status MonitoringServer::UpdateEdgeWeight(EdgeId edge, double new_weight) {
  UpdateBatch batch;
  batch.edges.push_back(EdgeUpdate{edge, new_weight});
  return Tick(batch);
}

Result<NetworkPoint> MonitoringServer::Snap(const Point& p) const {
  auto hit = spatial_index_->Nearest(p);
  if (!hit.ok()) return hit.status();
  return NetworkPoint{static_cast<EdgeId>(hit->id), hit->t};
}

}  // namespace cknn

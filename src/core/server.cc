#include "src/core/server.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/util/macros.h"

namespace cknn {

namespace {

std::unique_ptr<PmrQuadtree> BuildSpatialIndex(const RoadNetwork& net) {
  Rect box = net.BoundingBox();
  // Pad so border segments survive floating-point containment checks. The
  // extent-proportional term covers ordinary networks; the absolute floor
  // keeps zero-extent workspaces (single point, coincident degenerate
  // edges) from collapsing into a box too thin to subdivide or search, and
  // is scaled with the coordinate magnitude so it cannot be absorbed by
  // floating-point rounding far from the origin.
  const double extent = std::max(box.Width(), box.Height());
  const double magnitude =
      std::max(std::max(std::abs(box.min_x), std::abs(box.max_x)),
               std::max(std::abs(box.min_y), std::abs(box.max_y)));
  const double pad =
      std::max(1e-3 * extent, std::max(1e-6, 1e-7 * magnitude));
  box.min_x -= pad;
  box.min_y -= pad;
  box.max_x += pad;
  box.max_y += pad;
  auto tree = std::make_unique<PmrQuadtree>(box);
  for (EdgeId e = 0; e < net.NumEdges(); ++e) {
    CKNN_CHECK(tree->Insert(e, net.EdgeSegment(e)).ok());
  }
  return tree;
}

/// Positions entering the system must lie on a known edge at a finite
/// fraction in [0, 1]; NaN offsets would otherwise slide through every
/// `<` comparison downstream (a NaN is ordered against nothing).
Status ValidateIncomingPoint(const NetworkPoint& p, std::size_t num_edges,
                             const char* what) {
  if (p.edge >= num_edges) {
    return Status::InvalidArgument(std::string(what) + " on unknown edge");
  }
  if (!std::isfinite(p.t) || p.t < 0.0 || p.t > 1.0) {
    return Status::InvalidArgument(
        std::string(what) + " offset is not a finite fraction in [0, 1]");
  }
  return Status::OK();
}

/// Drops the {nullopt, nullopt} slots of validated appeared-and-died
/// chains (see AggregateObjects): past validation they are no-ops at
/// every layer, and the monitors' one-update-per-entity contract is
/// cleanest without them.
void StripCancelledObjectChains(UpdateBatch* batch) {
  batch->objects.erase(
      std::remove_if(batch->objects.begin(), batch->objects.end(),
                     [](const ObjectUpdate& u) {
                       return !u.old_pos.has_value() &&
                              !u.new_pos.has_value();
                     }),
      batch->objects.end());
}

}  // namespace

namespace {

/// Partitions the primary network's weight store before the shard set is
/// built, so every shard view inherits the tile partition (mem-init-list
/// helper: `shards_` is constructed right after).
RoadNetwork* RetiledPrimary(RoadNetwork* network, int num_tiles) {
  CKNN_CHECK(num_tiles >= 1);
  network->Retile(num_tiles);
  return network;
}

}  // namespace

MonitoringServer::MonitoringServer(RoadNetwork network, Algorithm algorithm,
                                   int num_shards, int pipeline_depth,
                                   int num_tiles)
    : network_(std::move(network)),
      objects_(network_.NumEdges()),
      spatial_index_(BuildSpatialIndex(network_)),
      algorithm_(algorithm),
      pipeline_depth_(pipeline_depth),
      shards_(RetiledPrimary(&network_, num_tiles), &objects_, algorithm,
              num_shards,
              /*pipelined=*/pipeline_depth > 1) {
  CKNN_CHECK(pipeline_depth >= 1 && pipeline_depth <= 2);
}

void MonitoringServer::AggregateObjects(const UpdateBatch& batch,
                                        std::vector<ObjectUpdate>* out) {
  // Objects: each id's chain folds to (first old position, last new
  // position) — an object that appears and disappears within the
  // timestamp cancels out — as long as every link is consistent (each
  // update's old position is the chain's running position). An
  // inconsistent chain is emitted raw *in full* instead, so stage-2
  // validation rejects the batch at the same update, with the same
  // error, a sequential one-update-per-tick replay would hit; folding it
  // would launder e.g. insert@p1 -> move(p999 -> p2) into a valid
  // insert@p2 (and folding even the consistent prefix would erase an
  // insert+delete pair whose insert is the sequential point of failure).
  //
  // Pass 1: chain consistency per id.
  std::unordered_map<ObjectId, std::optional<NetworkPoint>> running;
  std::unordered_set<ObjectId> broken;
  for (const ObjectUpdate& u : batch.objects) {
    if (!u.old_pos.has_value() && !u.new_pos.has_value()) {
      continue;  // A no-op at any table state (ObjectTable::Apply).
    }
    auto it = running.find(u.id);
    if (it == running.end()) {
      running.emplace(u.id, u.new_pos);
      continue;
    }
    if (broken.count(u.id) != 0) continue;
    const std::optional<NetworkPoint>& pos = it->second;
    if (u.old_pos.has_value() == pos.has_value() &&
        (!u.old_pos.has_value() || *u.old_pos == *pos)) {
      it->second = u.new_pos;
    } else {
      broken.insert(u.id);
    }
  }
  // Pass 2: fold consistent chains, emit broken ones verbatim.
  std::unordered_map<ObjectId, std::size_t> slot;
  for (const ObjectUpdate& u : batch.objects) {
    if (!u.old_pos.has_value() && !u.new_pos.has_value()) continue;
    if (broken.count(u.id) != 0) {
      out->push_back(u);
      continue;
    }
    auto it = slot.find(u.id);
    if (it == slot.end()) {
      slot.emplace(u.id, out->size());
      out->push_back(u);
    } else {
      (*out)[it->second].new_pos = u.new_pos;
    }
  }
  // A chain that appears and disappears within the tick folds to a
  // {nullopt, nullopt} slot. It is deliberately NOT erased here: the slot
  // is the only remaining evidence that the chain began with an insert,
  // which a sequential replay rejects (AlreadyExists) when the id is
  // already in the table — validation needs to see it. The server strips
  // the validated no-ops before the batch reaches the table and the
  // monitors (StripCancelledObjectChains). Literal {nullopt, nullopt}
  // input updates were skipped above, so every such slot is a folded
  // appeared-and-died chain.
}

void MonitoringServer::AggregateQueries(const UpdateBatch& batch,
                                        std::vector<QueryUpdate>* out) {
  // Queries: fold each id's install/move/terminate chain into its net
  // effect. A chain whose first update is kInstall presumes the query is
  // new to the system; one starting with kMove/kTerminate presumes it is
  // already registered. A registered query that terminates and re-installs
  // within the timestamp cannot collapse into a single update (a bare
  // install would collide with the still-registered id), so it is emitted
  // as a kTerminate immediately followed by a kInstall — the one sanctioned
  // exception to "one update per entity" (see Monitor::ProcessTimestamp):
  // every algorithm processes terminations before installations.
  struct Fold {
    bool began_alive = false;  ///< First update was a move/terminate.
    bool died = false;         ///< Terminated while began_alive.
    bool alive = false;        ///< Net state after the chain.
    /// An install arrived while the query was alive — invalid sequential
    /// input. Emitted as an install so the algorithms surface the same
    /// AlreadyExists error a sequential replay would.
    bool reinstalled_alive = false;
    NetworkPoint pos;
    int k = 1;
  };
  std::vector<QueryId> order;
  std::unordered_map<QueryId, Fold> folds;
  for (const QueryUpdate& u : batch.queries) {
    auto it = folds.find(u.id);
    if (it == folds.end()) {
      order.push_back(u.id);
      it = folds.emplace(u.id, Fold{}).first;
      Fold& f = it->second;
      f.began_alive = u.kind != QueryUpdate::Kind::kInstall;
      f.alive = u.kind == QueryUpdate::Kind::kMove;  // Refined below.
    }
    Fold& f = it->second;
    switch (u.kind) {
      case QueryUpdate::Kind::kMove:
        // A move of a dead-and-not-reinstalled query is invalid input;
        // as before, it only updates the remembered position.
        f.pos = u.pos;
        break;
      case QueryUpdate::Kind::kTerminate:
        f.alive = false;
        if (f.began_alive) f.died = true;
        break;
      case QueryUpdate::Kind::kInstall:
        if (f.alive) f.reinstalled_alive = true;
        f.alive = true;
        f.pos = u.pos;
        f.k = u.k;
        break;
    }
  }
  for (QueryId id : order) {
    const Fold& f = folds.at(id);
    const QueryUpdate install{id, QueryUpdate::Kind::kInstall, f.pos, f.k};
    const QueryUpdate terminate{id, QueryUpdate::Kind::kTerminate,
                                NetworkPoint{}, 0};
    if (!f.began_alive) {
      // Appeared within the tick: a single install, or nothing if it
      // also terminated (net no-op). A duplicate install while alive is
      // invalid input — emit it twice so validation rejects the batch
      // (AlreadyExists) like a sequential replay would.
      if (f.alive) {
        out->push_back(install);
        if (f.reinstalled_alive) out->push_back(install);
      }
      continue;
    }
    if (!f.alive) {
      out->push_back(terminate);
    } else if (f.died) {
      out->push_back(terminate);
      out->push_back(install);
      if (f.reinstalled_alive) out->push_back(install);
    } else if (f.reinstalled_alive) {
      // e.g. [move, install]: invalid input; keep the install so the
      // batch is rejected (AlreadyExists) like a sequential replay.
      out->push_back(install);
    } else {
      out->push_back(QueryUpdate{id, QueryUpdate::Kind::kMove, f.pos, 0});
    }
  }
}

void MonitoringServer::AggregateEdges(const UpdateBatch& batch,
                                      std::vector<EdgeUpdate>* out) {
  // Edges: last weight wins (the paper aggregates weight changes into one
  // overall change per timestamp).
  std::unordered_map<EdgeId, std::size_t> index;
  for (const EdgeUpdate& u : batch.edges) {
    auto it = index.find(u.edge);
    if (it == index.end()) {
      index.emplace(u.edge, out->size());
      out->push_back(u);
    } else {
      (*out)[it->second].new_weight = u.new_weight;
    }
  }
}

UpdateBatch MonitoringServer::AggregateBatch(const UpdateBatch& batch) {
  UpdateBatch out;
  AggregateObjects(batch, &out.objects);
  AggregateQueries(batch, &out.queries);
  AggregateEdges(batch, &out.edges);
  return out;
}

UpdateBatch MonitoringServer::AggregateOverlapped(const UpdateBatch& batch) {
  ThreadPool* pool = shards_.pool();
  if (pool == nullptr) return AggregateBatch(batch);
  // The three folds read disjoint input streams and write disjoint output
  // streams; running them as a pool batch lets workers that finished
  // their shard of the in-flight tick early pick them up.
  UpdateBatch out;
  const std::vector<std::function<void()>> folds = {
      [&] { AggregateObjects(batch, &out.objects); },
      [&] { AggregateQueries(batch, &out.queries); },
      [&] { AggregateEdges(batch, &out.edges); },
  };
  pool->RunAll(folds);
  return out;
}

Status MonitoringServer::ValidateAggregated(
    const UpdateBatch& aggregated) const {
  // Objects. `overlay` tracks the position each id reaches earlier in the
  // batch (a broken chain is emitted raw by AggregateObjects), so every
  // update is checked against exactly the table state a sequential
  // one-update-per-tick replay would see. The table itself is read-only
  // here — in pipelined mode the in-flight tick's shards read it
  // concurrently.
  {
    std::unordered_map<ObjectId, std::optional<NetworkPoint>> overlay;
    for (const ObjectUpdate& u : aggregated.objects) {
      std::optional<NetworkPoint> current;
      auto it = overlay.find(u.id);
      if (it != overlay.end()) {
        current = it->second;
      } else {
        auto pos = objects_.Position(u.id);
        if (pos.ok()) current = pos.value();
      }
      if (u.old_pos.has_value()) {
        if (!current.has_value()) {
          return Status::NotFound("update for unknown object");
        }
        if (!(*current == *u.old_pos)) {
          return Status::InvalidArgument(
              "object update old position does not match the table");
        }
      } else if (current.has_value()) {
        // The chain began with an insert — either a plain appearance or
        // an appeared-and-died chain folded to {nullopt, nullopt} — and
        // a sequential replay rejects that insert while the id exists.
        return Status::AlreadyExists("object appears but already exists");
      }
      if (u.new_pos.has_value()) {
        CKNN_RETURN_NOT_OK(ValidateIncomingPoint(
            *u.new_pos, network_.NumEdges(), "object position"));
      }
      overlay[u.id] = u.new_pos;
    }
  }
  // Edges: known edge, finite non-negative weight (NaN fails every `<`
  // comparison, so `new_weight < 0.0` alone would let it through).
  for (const EdgeUpdate& u : aggregated.edges) {
    if (u.edge >= network_.NumEdges()) {
      return Status::NotFound("weight update for unknown edge");
    }
    if (!std::isfinite(u.new_weight) || u.new_weight < 0.0) {
      return Status::InvalidArgument(
          "edge weight must be finite and non-negative");
    }
  }
  // Queries — validated before stage 3, so a batch a shard would reject
  // cannot leave the shared table mutated but unrouted (the monitors' own
  // error returns for these cases are unreachable through the server).
  // `overlay` tracks registration changes made earlier in this batch
  // (e.g. a terminate→install pair); the pre-batch registration state
  // comes from the shard set's caller-side registry, which is safe to
  // read while a detached tick mutates the engines.
  {
    std::unordered_map<QueryId, bool> overlay;
    const auto registered = [&](QueryId id) {
      auto it = overlay.find(id);
      return it != overlay.end() ? it->second : shards_.IsRegistered(id);
    };
    for (const QueryUpdate& u : aggregated.queries) {
      switch (u.kind) {
        case QueryUpdate::Kind::kTerminate:
          if (!registered(u.id)) {
            return Status::NotFound("terminate for unknown query");
          }
          overlay[u.id] = false;
          break;
        case QueryUpdate::Kind::kMove:
          if (!registered(u.id)) {
            return Status::NotFound("move for unknown query");
          }
          CKNN_RETURN_NOT_OK(ValidateIncomingPoint(
              u.pos, network_.NumEdges(), "query move position"));
          break;
        case QueryUpdate::Kind::kInstall:
          if (registered(u.id)) {
            return Status::AlreadyExists("query id already monitored");
          }
          if (u.k < 1) return Status::InvalidArgument("k must be >= 1");
          CKNN_RETURN_NOT_OK(ValidateIncomingPoint(
              u.pos, network_.NumEdges(), "query position"));
          overlay[u.id] = true;
          break;
      }
    }
  }
  return Status::OK();
}

void MonitoringServer::ApplyObjectUpdates(const UpdateBatch& aggregated) {
  // Stage 3: apply object updates to the shared table exactly once. The
  // shards run in shared-table mode and only route these updates through
  // their maintenance structures; during the parallel phase the table is
  // read-only.
  for (const ObjectUpdate& u : aggregated.objects) {
    CKNN_CHECK(objects_.Apply(u).ok());
  }
}

Status MonitoringServer::SerialTick(const UpdateBatch& batch) {
  // Stage 1: aggregate once (Section 4.5 preprocessing).
  UpdateBatch aggregated = AggregateBatch(batch);
  // Stage 2: validate against the shared tables before anything mutates
  // state (the engines CKNN_CHECK internally).
  CKNN_RETURN_NOT_OK(ValidateAggregated(aggregated));
  StripCancelledObjectChains(&aggregated);
  // Stage 3.
  ApplyObjectUpdates(aggregated);
  // Stages 4+5: per-shard maintenance (parallel when num_shards > 1),
  // statuses merged in shard order. Stage-2 validation makes a shard
  // failure unreachable; were one to slip through anyway, the table would
  // already be mutated with the engines unrouted, so a desynced-state
  // Status must not escape as if the server were still usable.
  const Status shard_status = shards_.ProcessTimestamp(aggregated);
  CKNN_CHECK(shard_status.ok());
  ++timestamp_;
  return Status::OK();
}

Status MonitoringServer::SubmitBatch(const UpdateBatch& batch) {
  if (pipeline_depth_ == 1) return SerialTick(batch);
  // Depth 2: stages 1–2 of this tick run here, on the submitting thread,
  // while the previous tick's shards are still maintaining on the pool
  // workers (docs/pipeline.md).
  UpdateBatch prepared = AggregateOverlapped(batch);
  CKNN_RETURN_NOT_OK(ValidateAggregated(prepared));
  StripCancelledObjectChains(&prepared);
  // Apply barrier: the shared table may only mutate once the in-flight
  // tick has fully retired (same CKNN_CHECK promotion as SerialTick).
  if (shards_.InFlight()) {
    const Status shard_status = shards_.WaitProcessTimestamp();
    // cknn-lint: allow(abort) bad input is bisected to Status pre-tick; a failed tick is corrupted engine state
    CKNN_CHECK(shard_status.ok());
  }
  ApplyObjectUpdates(prepared);
  // BeginProcessTimestamp copies the batch into per-shard scratch, so the
  // prepared batch does not need to outlive this call.
  shards_.BeginProcessTimestamp(prepared);
  ++timestamp_;
  return Status::OK();
}

Status MonitoringServer::Drain() {
  if (shards_.InFlight()) {
    const Status shard_status = shards_.WaitProcessTimestamp();
    CKNN_CHECK(shard_status.ok());
  }
  return Status::OK();
}

Status MonitoringServer::Tick(const UpdateBatch& batch) {
  CKNN_RETURN_NOT_OK(SubmitBatch(batch));
  return Drain();
}

Status MonitoringServer::InstallQuery(QueryId id, const NetworkPoint& pos,
                                      int k) {
  UpdateBatch batch;
  batch.queries.push_back(
      QueryUpdate{id, QueryUpdate::Kind::kInstall, pos, k});
  return Tick(batch);
}

Status MonitoringServer::TerminateQuery(QueryId id) {
  UpdateBatch batch;
  batch.queries.push_back(
      QueryUpdate{id, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  return Tick(batch);
}

Status MonitoringServer::MoveQuery(QueryId id, const NetworkPoint& pos) {
  UpdateBatch batch;
  batch.queries.push_back(QueryUpdate{id, QueryUpdate::Kind::kMove, pos, 0});
  return Tick(batch);
}

Status MonitoringServer::AddObject(ObjectId id, const NetworkPoint& pos) {
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{id, std::nullopt, pos});
  return Tick(batch);
}

Status MonitoringServer::RemoveObject(ObjectId id) {
  auto pos = objects_.Position(id);
  if (!pos.ok()) return pos.status();
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{id, pos.value(), std::nullopt});
  return Tick(batch);
}

Status MonitoringServer::MoveObject(ObjectId id, const NetworkPoint& pos) {
  auto old_pos = objects_.Position(id);
  if (!old_pos.ok()) return old_pos.status();
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{id, old_pos.value(), pos});
  return Tick(batch);
}

Status MonitoringServer::UpdateEdgeWeight(EdgeId edge, double new_weight) {
  UpdateBatch batch;
  batch.edges.push_back(EdgeUpdate{edge, new_weight});
  return Tick(batch);
}

Result<NetworkPoint> MonitoringServer::Snap(const Point& p) const {
  auto hit = spatial_index_->Nearest(p);
  if (!hit.ok()) return hit.status();
  return NetworkPoint{static_cast<EdgeId>(hit->id), hit->t};
}

}  // namespace cknn

#ifndef CKNN_SERVE_FRONT_END_H_
#define CKNN_SERVE_FRONT_END_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "src/core/server.h"
#include "src/core/updates.h"
#include "src/graph/network_point.h"
#include "src/graph/types.h"
#include "src/sim/metrics.h"
#include "src/util/annotations.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace cknn {

/// \brief One client-issued update, as it arrives over the wire or from an
/// in-process producer. Unlike `ObjectUpdate`, a serve request carries no
/// old position — the front end resolves it against the object table when
/// the request is folded into a tick batch, so clients only ever state
/// where an entity *is*.
struct ServeRequest {
  enum class Op {
    kInstallQuery,
    kMoveQuery,
    kTerminateQuery,
    kAddObject,
    kMoveObject,
    kRemoveObject,
    kUpdateWeight,
  };

  Op op = Op::kMoveObject;
  /// Query id, object id, or edge id, depending on `op`.
  std::uint64_t id = 0;
  /// Target position (install/move/add ops).
  NetworkPoint pos;
  /// Neighbor count (kInstallQuery only).
  int k = 1;
  /// New edge weight (kUpdateWeight only).
  double weight = 0.0;
};

/// Knobs of the serving front end.
struct ServingConfig {
  /// Bounded submission-queue capacity; `TrySubmit` rejects with
  /// ResourceExhausted when full (admission control), `Submit` blocks
  /// (back-pressure).
  std::size_t queue_capacity = std::size_t{1} << 16;
  /// Largest number of requests coalesced into one engine tick; 0 takes
  /// everything queued (the batching window is then purely
  /// arrival-driven).
  std::size_t max_batch_requests = 0;
  /// Sample capacity of the update-latency reservoir.
  std::size_t latency_reservoir_capacity = 4096;
};

/// Counters of a serving front end, snapshotted by `Stats()`.
struct ServingStats {
  std::uint64_t accepted = 0;            ///< Requests admitted to the queue.
  std::uint64_t rejected_queue_full = 0; ///< TrySubmit ResourceExhausted.
  std::uint64_t rejected_invalid = 0;    ///< Dropped by validation.
  std::uint64_t applied = 0;             ///< Updates applied to the engine.
  std::uint64_t ticks = 0;               ///< Engine ticks submitted.
  std::size_t max_queue_depth = 0;       ///< High-water queue occupancy.
  std::uint64_t latency_samples = 0;     ///< Retired latency measurements.
  /// Wall-clock submit-to-visible latency percentiles (seconds), from the
  /// sampling reservoir; exact until it saturates.
  double latency_p50_sec = 0.0;
  double latency_p95_sec = 0.0;
  double latency_p99_sec = 0.0;
  double latency_max_sec = 0.0;
};

/// \brief Multi-producer ingest front end over `MonitoringServer`'s
/// `SubmitBatch`/`Drain` pipeline (docs/serving.md).
///
/// Producers push `ServeRequest`s into a bounded MPSC queue from any
/// number of threads; a batching window (the pump thread started by
/// `Start`, or a synchronous `Flush`) coalesces everything queued into one
/// canonical per-tick `UpdateBatch` and feeds it to the engine, which
/// aggregates per entity exactly as `Tick` would. Admission control is
/// explicit: `TrySubmit` returns ResourceExhausted when the queue is full,
/// `Submit` blocks until space frees up, and nothing in the client-facing
/// surface can trip an internal `CKNN_CHECK` — reads go through the
/// server's non-aborting `Try*` accessors and per-request validation
/// failures are counted and dropped, never fatal.
///
/// Determinism: the batch built from a drained queue slice stable-sorts
/// each stream by entity id, so any interleaving of producers that
/// preserves per-entity order (e.g. a workload pre-partitioned across
/// producers by entity) folds to the same batch bytes — and therefore the
/// same results — as a serial replay of the same windows
/// (`BuildBatch` is exposed so tests can replay exactly that).
///
/// Thread-safety: `Submit`/`TrySubmit`/`ReadResult`/`Stats`/`QueueDepth`
/// may be called concurrently from any thread. `Start`, `Flush`, and
/// `Shutdown` are serialized against each other internally;
/// `Shutdown` drains the queue into final ticks before returning, and the
/// destructor implies it.
class ServingFrontEnd {
 public:
  /// Outcome of folding one queue slice into a tick batch.
  struct BatchBuild {
    UpdateBatch batch;
    /// Requests dropped at build time (unknown entity, double install...).
    std::uint64_t rejected = 0;
  };

  /// \param server the drained engine to feed; must outlive the front end.
  explicit ServingFrontEnd(MonitoringServer* server,
                           ServingConfig config = ServingConfig());

  ServingFrontEnd(const ServingFrontEnd&) = delete;
  ServingFrontEnd& operator=(const ServingFrontEnd&) = delete;

  ~ServingFrontEnd();

  /// Non-blocking admission: ResourceExhausted when the queue is full,
  /// FailedPrecondition after shutdown, OK otherwise.
  Status TrySubmit(const ServeRequest& request) CKNN_EXCLUDES(queue_mu_);

  /// Blocking admission (back-pressure): waits for queue space.
  /// FailedPrecondition after (or upon) shutdown.
  Status Submit(const ServeRequest& request) CKNN_EXCLUDES(queue_mu_);

  /// Starts the background batching pump. Call at most once, before any
  /// concurrent use of `Flush`.
  void Start() CKNN_EXCLUDES(lifecycle_mu_, queue_mu_);

  /// Synchronous barrier: every request accepted before this call is
  /// folded into the engine and the engine is drained. Returns the first
  /// non-OK engine status encountered, OK otherwise. Without a pump this
  /// is the only way requests reach the engine.
  Status Flush() CKNN_EXCLUDES(lifecycle_mu_, queue_mu_, engine_mu_);

  /// Drains the queue into final ticks, drains the engine, and stops the
  /// pump. Subsequent submissions fail with FailedPrecondition;
  /// `ReadResult`/`Stats` keep working. Idempotent.
  void Shutdown() CKNN_EXCLUDES(lifecycle_mu_, queue_mu_, engine_mu_);

  /// Current k-NN set of a query, as of the last tick the engine
  /// completed (call `Flush` first for read-your-writes). Drains any
  /// in-flight tick; never aborts: NotFound for an unknown query,
  /// the engine's error if draining surfaced one.
  Result<std::vector<Neighbor>> ReadResult(QueryId id)
      CKNN_EXCLUDES(engine_mu_);

  /// Requests currently queued (not yet folded into a tick).
  std::size_t QueueDepth() const CKNN_EXCLUDES(queue_mu_);

  /// Snapshot of the serving counters (percentiles computed on the spot).
  ServingStats Stats() const CKNN_EXCLUDES(queue_mu_, engine_mu_);

  /// Last non-OK status the engine reported (per-update rejects included);
  /// OK if none. For diagnostics — rejects are already counted in Stats().
  Status last_error() const CKNN_EXCLUDES(engine_mu_);

  /// Folds `requests` (arrival order) into one canonical tick batch
  /// against `server`'s current tables: streams split per kind, stable-
  /// sorted by entity id, object old-positions resolved through the table
  /// plus a within-batch overlay, and requests that cannot possibly
  /// validate (unknown object/query, double add/install) dropped and
  /// counted. Static so tests can replay the exact serving fold serially.
  static BatchBuild BuildBatch(const std::vector<ServeRequest>& requests,
                               const MonitoringServer& server);

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    ServeRequest request;
    Clock::time_point enqueued;
  };

  /// Moves up to `max_batch_requests` entries off the queue front.
  /// queue_mu_ held.
  std::vector<Entry> TakeSliceLocked() CKNN_REQUIRES(queue_mu_);

  /// Folds one slice into the engine: build, submit, bisect on rejection,
  /// retire latencies. Takes engine_mu_.
  void ProcessSlice(std::vector<Entry> slice)
      CKNN_EXCLUDES(queue_mu_, engine_mu_);

  /// Re-applies a rejected batch one update per tick so one bad update
  /// cannot veto its neighbors. engine_mu_ held.
  void BisectRejectedLocked(const UpdateBatch& batch)
      CKNN_REQUIRES(engine_mu_);

  /// Drains the engine and retires pending latencies. engine_mu_ held.
  Status DrainEngineLocked() CKNN_REQUIRES(engine_mu_);

  /// Records `enqueued -> now` for every pending retirement. engine_mu_
  /// held.
  void RetirePendingLocked(Clock::time_point now) CKNN_REQUIRES(engine_mu_);

  void PumpLoop() CKNN_EXCLUDES(queue_mu_, engine_mu_);

  /// The engine and everything fed to or read from it is serialized by
  /// engine_mu_ (the pointer itself is set once in the constructor).
  MonitoringServer* server_ CKNN_PT_GUARDED_BY(engine_mu_);
  ServingConfig config_;  ///< Immutable after construction.

  /// Producer side: the bounded MPSC queue and its admission stats.
  mutable Mutex queue_mu_;
  CondVar not_empty_;
  CondVar not_full_;
  /// Signals `queue empty and pump idle` (the Flush barrier with a pump).
  CondVar drained_;
  std::deque<Entry> queue_ CKNN_GUARDED_BY(queue_mu_);
  bool shutdown_ CKNN_GUARDED_BY(queue_mu_) = false;
  bool pump_busy_ CKNN_GUARDED_BY(queue_mu_) = false;
  std::uint64_t accepted_ CKNN_GUARDED_BY(queue_mu_) = 0;
  std::uint64_t rejected_queue_full_ CKNN_GUARDED_BY(queue_mu_) = 0;
  std::size_t max_queue_depth_ CKNN_GUARDED_BY(queue_mu_) = 0;

  /// Consumer side: engine access, latency accounting, engine stats.
  mutable Mutex engine_mu_;
  std::vector<Clock::time_point> pending_retire_ CKNN_GUARDED_BY(engine_mu_);
  LatencyReservoir latency_ CKNN_GUARDED_BY(engine_mu_);
  std::uint64_t rejected_invalid_ CKNN_GUARDED_BY(engine_mu_) = 0;
  std::uint64_t applied_ CKNN_GUARDED_BY(engine_mu_) = 0;
  std::uint64_t ticks_ CKNN_GUARDED_BY(engine_mu_) = 0;
  Status last_error_ CKNN_GUARDED_BY(engine_mu_);

  /// Lifecycle (Start/Flush/Shutdown serialization).
  Mutex lifecycle_mu_;
  std::thread pump_ CKNN_GUARDED_BY(lifecycle_mu_);
};

}  // namespace cknn

#endif  // CKNN_SERVE_FRONT_END_H_

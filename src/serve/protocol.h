#ifndef CKNN_SERVE_PROTOCOL_H_
#define CKNN_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/updates.h"
#include "src/serve/front_end.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace cknn::serve {

/// \brief The cknn_serve wire protocol (docs/serving.md): length-prefixed
/// frames over a byte stream.
///
/// A frame is a 4-byte big-endian payload length followed by the payload;
/// the payload's first byte is the opcode, the rest fixed-width big-endian
/// fields (doubles travel as their IEEE-754 bit pattern in a u64).
/// Framing errors — a declared length of zero or beyond
/// `kMaxFramePayload` — are fatal: the stream offers no way to resynchronize,
/// so the server responds with the error and closes. Payload errors — an
/// unknown opcode or a length that does not match the opcode's fixed size
/// — are recoverable: the frame boundary is intact, so the server responds
/// with the error and keeps reading. Either way a malformed frame is
/// rejected before any of it reaches the engine (no partial application).

/// Upper bound on a declared payload length. Every request payload is
/// tiny; the bound exists so a hostile length prefix cannot make the
/// decoder buffer gigabytes.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 20;

/// Bytes of the frame length prefix.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Request opcodes. The seven update ops mirror `ServeRequest::Op`.
enum class OpCode : std::uint8_t {
  kInstallQuery = 1,   ///< u64 query id, u64 edge, f64 t, u32 k
  kMoveQuery = 2,      ///< u64 query id, u64 edge, f64 t
  kTerminateQuery = 3, ///< u64 query id
  kAddObject = 4,      ///< u64 object id, u64 edge, f64 t
  kMoveObject = 5,     ///< u64 object id, u64 edge, f64 t
  kRemoveObject = 6,   ///< u64 object id
  kUpdateWeight = 7,   ///< u64 edge, f64 weight
  kRead = 8,           ///< u64 query id
  kFlush = 9,          ///< (no fields)
  kStats = 10,         ///< (no fields)
  kShutdown = 11,      ///< (no fields)
};

/// One decoded request frame.
struct Message {
  OpCode op = OpCode::kFlush;
  std::uint64_t id = 0;  ///< Query/object/edge id, by opcode.
  std::uint64_t edge = 0;
  double t = 0.0;
  std::uint32_t k = 1;
  double weight = 0.0;
};

/// Response payload kinds (first byte of every response payload).
enum class ResponseKind : std::uint8_t {
  kStatus = 0,  ///< u8 status code, u32 message length, message bytes
  kRead = 1,    ///< status header, then u32 count, count x (u64 id, f64 d)
  kStats = 2,   ///< status header, then the ServingStats counters
};

/// One decoded response frame.
struct Response {
  ResponseKind kind = ResponseKind::kStatus;
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::vector<Neighbor> neighbors;  ///< kRead only.
  ServingStats stats;               ///< kStats only.
};

/// \name Encoding (append one complete frame to `out`).
/// @{
void EncodeMessage(const Message& message, std::vector<std::uint8_t>* out);
void EncodeStatusResponse(const Status& status,
                          std::vector<std::uint8_t>* out);
void EncodeReadResponse(const std::vector<Neighbor>& neighbors,
                        std::vector<std::uint8_t>* out);
void EncodeStatsResponse(const ServingStats& stats,
                         std::vector<std::uint8_t>* out);
/// @}

/// \name Payload decoding (the payload, without the length prefix).
/// InvalidArgument on unknown opcode / size mismatch — recoverable.
/// @{
Result<Message> DecodeMessage(const std::uint8_t* data, std::size_t size);
Result<Response> DecodeResponse(const std::uint8_t* data, std::size_t size);
/// @}

/// The decoded update ops as a ServeRequest (kRead/kFlush/kStats/kShutdown
/// have no such representation; InvalidArgument).
Result<ServeRequest> ToServeRequest(const Message& message);

/// \brief Incremental frame reassembly over an arbitrary chunking of the
/// byte stream.
class FrameDecoder {
 public:
  /// Buffers `size` more stream bytes.
  void Append(const std::uint8_t* data, std::size_t size);

  /// Next complete payload: nullopt when more bytes are needed,
  /// InvalidArgument (fatal — close the stream) when the declared length
  /// is zero or exceeds kMaxFramePayload. Frames already buffered remain
  /// retrievable after an error was reported for a later one.
  Result<std::optional<std::vector<std::uint8_t>>> Next();

  /// Stream-end check: InvalidArgument if a partial frame is buffered
  /// (the peer truncated mid-frame).
  Status Finish() const;

  /// Bytes buffered but not yet returned.
  std::size_t BufferedBytes() const { return buffer_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;  ///< Consumed prefix of buffer_.
};

}  // namespace cknn::serve

#endif  // CKNN_SERVE_PROTOCOL_H_

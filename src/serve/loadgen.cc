#include "src/serve/loadgen.h"

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/server.h"
#include "src/core/updates.h"
#include "src/gen/workload.h"
#include "src/util/annotations.h"
#include "src/util/stopwatch.h"

namespace cknn::serve {

namespace {

/// Reusable all-thread rendezvous (the producers and the timing thread
/// meet at every burst boundary).
class CyclicBarrier {
 public:
  explicit CyclicBarrier(int parties) : parties_(parties) {}

  void ArriveAndWait() CKNN_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    const std::uint64_t generation = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      cv_.NotifyAll();
      return;
    }
    while (generation_ == generation) cv_.Wait(mu_);
  }

 private:
  Mutex mu_;
  CondVar cv_;
  const int parties_;
  int waiting_ CKNN_GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ CKNN_GUARDED_BY(mu_) = 0;
};

void AppendRequests(const UpdateBatch& batch,
                    std::vector<ServeRequest>* out) {
  for (const ObjectUpdate& u : batch.objects) {
    ServeRequest r;
    r.id = u.id;
    if (u.new_pos.has_value()) {
      r.op = u.old_pos.has_value() ? ServeRequest::Op::kMoveObject
                                   : ServeRequest::Op::kAddObject;
      r.pos = *u.new_pos;
    } else {
      if (!u.old_pos.has_value()) continue;  // No-op slot.
      r.op = ServeRequest::Op::kRemoveObject;
    }
    out->push_back(r);
  }
  for (const QueryUpdate& u : batch.queries) {
    ServeRequest r;
    r.id = u.id;
    r.pos = u.pos;
    r.k = u.k;
    switch (u.kind) {
      case QueryUpdate::Kind::kInstall:
        r.op = ServeRequest::Op::kInstallQuery;
        break;
      case QueryUpdate::Kind::kMove:
        r.op = ServeRequest::Op::kMoveQuery;
        break;
      case QueryUpdate::Kind::kTerminate:
        r.op = ServeRequest::Op::kTerminateQuery;
        break;
    }
    out->push_back(r);
  }
  for (const EdgeUpdate& u : batch.edges) {
    ServeRequest r;
    r.op = ServeRequest::Op::kUpdateWeight;
    r.id = u.edge;
    r.weight = u.new_weight;
    out->push_back(r);
  }
}

/// Stable producer of a request: entities are partitioned by id within
/// their stream, so one producer owns every update of an entity and
/// per-entity order survives any thread interleaving (the determinism
/// contract of ServingFrontEnd::BuildBatch).
std::size_t ProducerOf(const ServeRequest& r, int producers) {
  // Offset the streams so object i and query i do not always share a
  // producer.
  std::size_t stream = 0;
  switch (r.op) {
    case ServeRequest::Op::kInstallQuery:
    case ServeRequest::Op::kMoveQuery:
    case ServeRequest::Op::kTerminateQuery:
      stream = 1;
      break;
    case ServeRequest::Op::kUpdateWeight:
      stream = 2;
      break;
    default:
      break;
  }
  return static_cast<std::size_t>((r.id + stream) %
                                  static_cast<std::uint64_t>(producers));
}

}  // namespace

Result<LoadScenarioReport> RunLoadScenario(const LoadScenarioConfig& config) {
  if (config.producers < 1) {
    return Status::InvalidArgument("producers must be >= 1");
  }
  if (config.bursts < 1) {
    return Status::InvalidArgument("bursts must be >= 1");
  }
  LoadScenarioReport report;
  Stopwatch setup;

  MonitoringServer server(GenerateRoadNetwork(config.network),
                          config.algorithm, config.shards,
                          config.pipeline_depth, config.tiles);
  WorkloadConfig wconfig;
  wconfig.num_objects = config.num_objects;
  wconfig.num_queries = config.num_queries;
  wconfig.k = config.k;
  wconfig.object_agility = config.object_agility;
  wconfig.query_agility = config.query_agility;
  wconfig.edge_agility = config.edge_agility;
  wconfig.seed = config.seed;
  Workload workload(&server.network(), &server.spatial_index(), wconfig);

  // Install the standing population synchronously (untimed setup): the
  // measured windows are the steady-state update stream, not the cold
  // build of N objects and Q query results.
  CKNN_RETURN_NOT_OK(server.Tick(workload.Initial()));
  CKNN_RETURN_NOT_OK(server.Drain());

  // Pre-generate every burst's per-producer slice so the timed windows
  // measure ingest, not generation. A heavy burst coalesces several
  // workload steps into one arrival spike (per-entity chains are legal:
  // the front end resolves them through its within-batch overlay).
  const int producers = config.producers;
  std::vector<std::vector<std::vector<ServeRequest>>> slices(
      static_cast<std::size_t>(config.bursts));
  for (int b = 0; b < config.bursts; ++b) {
    const bool heavy = config.heavy_every > 0 &&
                       (b + 1) % config.heavy_every == 0;
    const int steps = heavy ? config.heavy_factor : 1;
    std::vector<ServeRequest> burst;
    for (int s = 0; s < steps; ++s) AppendRequests(workload.Step(), &burst);
    auto& per_producer = slices[static_cast<std::size_t>(b)];
    per_producer.resize(static_cast<std::size_t>(producers));
    for (const ServeRequest& r : burst) {
      per_producer[ProducerOf(r, producers)].push_back(r);
    }
    report.offered += burst.size();
  }
  report.setup_seconds = setup.ElapsedSeconds();

  ServingConfig sconfig;
  sconfig.queue_capacity = config.queue_capacity;
  sconfig.max_batch_requests = config.max_batch_requests;
  ServingFrontEnd front_end(&server, sconfig);
  front_end.Start();

  // Producers submit their slice of each burst between two barriers; the
  // timing thread (this one) brackets the same barriers with stopwatches.
  CyclicBarrier barrier(producers + 1);
  const bool block = config.block_on_full;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (int b = 0; b < config.bursts; ++b) {
        barrier.ArriveAndWait();
        const auto& mine =
            slices[static_cast<std::size_t>(b)][static_cast<std::size_t>(p)];
        for (const ServeRequest& r : mine) {
          // Both paths tolerate rejection: a dropped request is counted
          // by the front end, and later updates of the same entity
          // re-resolve against the live table, so nothing desyncs.
          if (block) {
            CKNN_IGNORE_STATUS(front_end.Submit(r),
                               "load generator: drops are part of the "
                               "scenario and counted by the front end");
          } else {
            CKNN_IGNORE_STATUS(front_end.TrySubmit(r),
                               "load generator: admission-control rejects "
                               "are the measured signal (rejected_full)");
          }
        }
        barrier.ArriveAndWait();
      }
    });
  }

  report.metrics.steps.reserve(static_cast<std::size_t>(config.bursts));
  Stopwatch total;
  CpuStopwatch cpu;
  for (int b = 0; b < config.bursts; ++b) {
    barrier.ArriveAndWait();  // Releases the producers into burst b.
    Stopwatch wall;
    barrier.ArriveAndWait();  // Everyone submitted.
    TimestepMetrics step;
    step.seconds = wall.ElapsedSeconds();
    step.cpu_seconds = cpu.ElapsedSeconds();
    cpu.Reset();
    report.metrics.steps.push_back(step);
  }
  for (std::thread& t : threads) t.join();
  {
    // The queue may still hold the tail of the last burst; processing it
    // belongs to the run, so fold the flush into the final window.
    Stopwatch wall;
    cpu.Reset();
    CKNN_IGNORE_STATUS(front_end.Flush(),
                       "tail flush; a drain failure is latched into "
                       "last_error(), which the report carries as "
                       "engine_error");
    report.metrics.steps.back().seconds += wall.ElapsedSeconds();
    report.metrics.steps.back().cpu_seconds += cpu.ElapsedSeconds();
  }
  report.total_seconds = total.ElapsedSeconds();
  front_end.Shutdown();

  // Shutdown's drain ran, so the latch is final. Without this the report
  // would show plausible counters for a run whose updates the engine
  // silently refused.
  report.engine_error = front_end.last_error();
  report.stats = front_end.Stats();
  report.updates_per_sec =
      report.total_seconds > 0.0
          ? static_cast<double>(report.stats.applied) / report.total_seconds
          : 0.0;
  Result<std::size_t> memory = server.TryMonitorMemoryBytes();
  report.monitor_memory_bytes = memory.ok() ? *memory : 0;
  return report;
}

}  // namespace cknn::serve

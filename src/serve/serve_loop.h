#ifndef CKNN_SERVE_SERVE_LOOP_H_
#define CKNN_SERVE_SERVE_LOOP_H_

#include <cstdint>

#include "src/serve/front_end.h"
#include "src/util/status.h"

namespace cknn::serve {

/// Outcome of serving one connection to completion.
struct ServeLoopResult {
  std::uint64_t frames = 0;  ///< Request frames processed (incl. rejected).
  bool shutdown = false;     ///< The peer sent kShutdown.
  /// OK on a clean close; the framing/transport error that ended the
  /// connection otherwise (a truncated trailing frame included).
  Status status;
};

/// \brief Serves the cknn_serve protocol (src/serve/protocol.h) on a
/// connected stream socket (or any byte-stream fd, e.g. one end of a
/// socketpair) until EOF, a fatal framing error, or kShutdown.
///
/// Every request frame gets exactly one response frame, in order. Update
/// ops go through `ServingFrontEnd::TrySubmit`, so a full queue answers
/// ResourceExhausted — the client's back-off signal — instead of blocking
/// the reader. Malformed payloads with intact framing are answered with
/// their error and the connection continues; framing errors are answered
/// and then the loop returns (the stream cannot resynchronize). The fd is
/// not closed — the caller owns it.
ServeLoopResult ServeConnection(int fd, ServingFrontEnd* front_end);

}  // namespace cknn::serve

#endif  // CKNN_SERVE_SERVE_LOOP_H_

#include "src/serve/protocol.h"

#include <cstring>
#include <string>

namespace cknn::serve {

namespace {

void PutU8(std::uint8_t v, std::vector<std::uint8_t>* out) {
  out->push_back(v);
}

void PutU32(std::uint32_t v, std::vector<std::uint8_t>* out) {
  out->push_back(static_cast<std::uint8_t>(v >> 24));
  out->push_back(static_cast<std::uint8_t>(v >> 16));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
  out->push_back(static_cast<std::uint8_t>(v));
}

void PutU64(std::uint64_t v, std::vector<std::uint8_t>* out) {
  PutU32(static_cast<std::uint32_t>(v >> 32), out);
  PutU32(static_cast<std::uint32_t>(v), out);
}

void PutF64(double v, std::vector<std::uint8_t>* out) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

std::uint32_t GetU32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t GetU64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(GetU32(p)) << 32) | GetU32(p + 4);
}

double GetF64(const std::uint8_t* p) {
  const std::uint64_t bits = GetU64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Fixed payload size of a request opcode; 0 for unknown opcodes.
std::size_t PayloadSizeOf(OpCode op) {
  switch (op) {
    case OpCode::kInstallQuery:
      return 1 + 8 + 8 + 8 + 4;  // op, id, edge, t, k
    case OpCode::kMoveQuery:
    case OpCode::kAddObject:
    case OpCode::kMoveObject:
      return 1 + 8 + 8 + 8;  // op, id, edge, t
    case OpCode::kTerminateQuery:
    case OpCode::kRemoveObject:
    case OpCode::kRead:
      return 1 + 8;  // op, id
    case OpCode::kUpdateWeight:
      return 1 + 8 + 8;  // op, edge, weight
    case OpCode::kFlush:
    case OpCode::kStats:
    case OpCode::kShutdown:
      return 1;  // op
  }
  return 0;
}

/// Reserves the 4-byte length prefix in `out`; `FinishFrame` fills it in.
std::size_t BeginFrame(std::vector<std::uint8_t>* out) {
  const std::size_t header_at = out->size();
  PutU32(0, out);
  return header_at;
}

void FinishFrame(std::size_t header_at, std::vector<std::uint8_t>* out) {
  const std::size_t payload = out->size() - header_at - kFrameHeaderBytes;
  // cknn-lint: allow(abort) frame sizes come from the server's own encoder, never from client bytes
  CKNN_CHECK(payload > 0 && payload <= kMaxFramePayload);
  (*out)[header_at] = static_cast<std::uint8_t>(payload >> 24);
  (*out)[header_at + 1] = static_cast<std::uint8_t>(payload >> 16);
  (*out)[header_at + 2] = static_cast<std::uint8_t>(payload >> 8);
  (*out)[header_at + 3] = static_cast<std::uint8_t>(payload);
}

void PutStatusHeader(ResponseKind kind, StatusCode code,
                     const std::string& message,
                     std::vector<std::uint8_t>* out) {
  PutU8(static_cast<std::uint8_t>(kind), out);
  PutU8(static_cast<std::uint8_t>(code), out);
  PutU32(static_cast<std::uint32_t>(message.size()), out);
  out->insert(out->end(), message.begin(), message.end());
}

}  // namespace

void EncodeMessage(const Message& message, std::vector<std::uint8_t>* out) {
  const std::size_t header_at = BeginFrame(out);
  PutU8(static_cast<std::uint8_t>(message.op), out);
  switch (message.op) {
    case OpCode::kInstallQuery:
      PutU64(message.id, out);
      PutU64(message.edge, out);
      PutF64(message.t, out);
      PutU32(message.k, out);
      break;
    case OpCode::kMoveQuery:
    case OpCode::kAddObject:
    case OpCode::kMoveObject:
      PutU64(message.id, out);
      PutU64(message.edge, out);
      PutF64(message.t, out);
      break;
    case OpCode::kTerminateQuery:
    case OpCode::kRemoveObject:
    case OpCode::kRead:
      PutU64(message.id, out);
      break;
    case OpCode::kUpdateWeight:
      PutU64(message.edge, out);
      PutF64(message.weight, out);
      break;
    case OpCode::kFlush:
    case OpCode::kStats:
    case OpCode::kShutdown:
      break;
  }
  FinishFrame(header_at, out);
}

void EncodeStatusResponse(const Status& status,
                          std::vector<std::uint8_t>* out) {
  const std::size_t header_at = BeginFrame(out);
  PutStatusHeader(ResponseKind::kStatus, status.code(), status.message(),
                  out);
  FinishFrame(header_at, out);
}

void EncodeReadResponse(const std::vector<Neighbor>& neighbors,
                        std::vector<std::uint8_t>* out) {
  const std::size_t header_at = BeginFrame(out);
  PutStatusHeader(ResponseKind::kRead, StatusCode::kOk, std::string(), out);
  PutU32(static_cast<std::uint32_t>(neighbors.size()), out);
  for (const Neighbor& n : neighbors) {
    PutU64(n.id, out);
    PutF64(n.distance, out);
  }
  FinishFrame(header_at, out);
}

void EncodeStatsResponse(const ServingStats& stats,
                         std::vector<std::uint8_t>* out) {
  const std::size_t header_at = BeginFrame(out);
  PutStatusHeader(ResponseKind::kStats, StatusCode::kOk, std::string(), out);
  PutU64(stats.accepted, out);
  PutU64(stats.rejected_queue_full, out);
  PutU64(stats.rejected_invalid, out);
  PutU64(stats.applied, out);
  PutU64(stats.ticks, out);
  PutU64(stats.max_queue_depth, out);
  PutU64(stats.latency_samples, out);
  PutF64(stats.latency_p50_sec, out);
  PutF64(stats.latency_p95_sec, out);
  PutF64(stats.latency_p99_sec, out);
  PutF64(stats.latency_max_sec, out);
  FinishFrame(header_at, out);
}

Result<Message> DecodeMessage(const std::uint8_t* data, std::size_t size) {
  if (size == 0) {
    return Status::InvalidArgument("empty request payload");
  }
  const OpCode op = static_cast<OpCode>(data[0]);
  const std::size_t expected = PayloadSizeOf(op);
  if (expected == 0) {
    return Status::InvalidArgument(
        "unknown opcode " + std::to_string(static_cast<int>(data[0])));
  }
  if (size != expected) {
    return Status::InvalidArgument(
        "opcode " + std::to_string(static_cast<int>(data[0])) +
        ": payload is " + std::to_string(size) + " bytes, expected " +
        std::to_string(expected));
  }
  Message message;
  message.op = op;
  const std::uint8_t* p = data + 1;
  switch (op) {
    case OpCode::kInstallQuery:
      message.id = GetU64(p);
      message.edge = GetU64(p + 8);
      message.t = GetF64(p + 16);
      message.k = GetU32(p + 24);
      break;
    case OpCode::kMoveQuery:
    case OpCode::kAddObject:
    case OpCode::kMoveObject:
      message.id = GetU64(p);
      message.edge = GetU64(p + 8);
      message.t = GetF64(p + 16);
      break;
    case OpCode::kTerminateQuery:
    case OpCode::kRemoveObject:
    case OpCode::kRead:
      message.id = GetU64(p);
      break;
    case OpCode::kUpdateWeight:
      message.edge = GetU64(p);
      message.weight = GetF64(p + 8);
      break;
    case OpCode::kFlush:
    case OpCode::kStats:
    case OpCode::kShutdown:
      break;
  }
  return message;
}

Result<Response> DecodeResponse(const std::uint8_t* data, std::size_t size) {
  // Status header: kind, code, message length, message.
  if (size < 1 + 1 + 4) {
    return Status::InvalidArgument("response payload too short");
  }
  Response response;
  const std::uint8_t kind = data[0];
  if (kind > static_cast<std::uint8_t>(ResponseKind::kStats)) {
    return Status::InvalidArgument("unknown response kind " +
                                   std::to_string(static_cast<int>(kind)));
  }
  response.kind = static_cast<ResponseKind>(kind);
  if (data[1] > static_cast<std::uint8_t>(StatusCode::kInternal)) {
    return Status::InvalidArgument("unknown status code in response");
  }
  response.code = static_cast<StatusCode>(data[1]);
  const std::uint32_t message_len = GetU32(data + 2);
  std::size_t at = 1 + 1 + 4;
  if (size - at < message_len) {
    return Status::InvalidArgument("response message truncated");
  }
  response.message.assign(reinterpret_cast<const char*>(data + at),
                          message_len);
  at += message_len;
  switch (response.kind) {
    case ResponseKind::kStatus:
      if (size != at) {
        return Status::InvalidArgument("status response trailing bytes");
      }
      break;
    case ResponseKind::kRead: {
      if (size - at < 4) {
        return Status::InvalidArgument("read response missing count");
      }
      const std::uint32_t count = GetU32(data + at);
      at += 4;
      if ((size - at) / 16 < count || (size - at) % 16 != 0 ||
          size - at != static_cast<std::size_t>(count) * 16) {
        return Status::InvalidArgument("read response neighbor list size "
                                       "mismatch");
      }
      response.neighbors.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        Neighbor n;
        n.id = static_cast<ObjectId>(GetU64(data + at));
        n.distance = GetF64(data + at + 8);
        response.neighbors.push_back(n);
        at += 16;
      }
      break;
    }
    case ResponseKind::kStats: {
      if (size - at != 7 * 8 + 4 * 8) {
        return Status::InvalidArgument("stats response size mismatch");
      }
      response.stats.accepted = GetU64(data + at);
      response.stats.rejected_queue_full = GetU64(data + at + 8);
      response.stats.rejected_invalid = GetU64(data + at + 16);
      response.stats.applied = GetU64(data + at + 24);
      response.stats.ticks = GetU64(data + at + 32);
      response.stats.max_queue_depth =
          static_cast<std::size_t>(GetU64(data + at + 40));
      response.stats.latency_samples = GetU64(data + at + 48);
      response.stats.latency_p50_sec = GetF64(data + at + 56);
      response.stats.latency_p95_sec = GetF64(data + at + 64);
      response.stats.latency_p99_sec = GetF64(data + at + 72);
      response.stats.latency_max_sec = GetF64(data + at + 80);
      break;
    }
  }
  return response;
}

Result<ServeRequest> ToServeRequest(const Message& message) {
  ServeRequest request;
  request.id = message.id;
  request.pos =
      NetworkPoint{static_cast<EdgeId>(message.edge), message.t};
  request.k = static_cast<int>(message.k);
  request.weight = message.weight;
  switch (message.op) {
    case OpCode::kInstallQuery:
      request.op = ServeRequest::Op::kInstallQuery;
      return request;
    case OpCode::kMoveQuery:
      request.op = ServeRequest::Op::kMoveQuery;
      return request;
    case OpCode::kTerminateQuery:
      request.op = ServeRequest::Op::kTerminateQuery;
      return request;
    case OpCode::kAddObject:
      request.op = ServeRequest::Op::kAddObject;
      return request;
    case OpCode::kMoveObject:
      request.op = ServeRequest::Op::kMoveObject;
      return request;
    case OpCode::kRemoveObject:
      request.op = ServeRequest::Op::kRemoveObject;
      return request;
    case OpCode::kUpdateWeight:
      request.op = ServeRequest::Op::kUpdateWeight;
      request.id = message.edge;
      return request;
    case OpCode::kRead:
    case OpCode::kFlush:
    case OpCode::kStats:
    case OpCode::kShutdown:
      break;
  }
  return Status::InvalidArgument("not an update opcode");
}

void FrameDecoder::Append(const std::uint8_t* data, std::size_t size) {
  // Compact the consumed prefix before growing; keeps the buffer bounded
  // by one partial frame plus the new chunk.
  if (pos_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

Result<std::optional<std::vector<std::uint8_t>>> FrameDecoder::Next() {
  if (buffer_.size() - pos_ < kFrameHeaderBytes) {
    return std::optional<std::vector<std::uint8_t>>();
  }
  const std::size_t declared = GetU32(buffer_.data() + pos_);
  if (declared == 0) {
    return Status::InvalidArgument("frame declares an empty payload");
  }
  if (declared > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame declares " + std::to_string(declared) +
        " payload bytes (max " + std::to_string(kMaxFramePayload) + ")");
  }
  if (buffer_.size() - pos_ - kFrameHeaderBytes < declared) {
    return std::optional<std::vector<std::uint8_t>>();
  }
  const std::uint8_t* payload = buffer_.data() + pos_ + kFrameHeaderBytes;
  std::vector<std::uint8_t> out(payload, payload + declared);
  pos_ += kFrameHeaderBytes + declared;
  return std::optional<std::vector<std::uint8_t>>(std::move(out));
}

Status FrameDecoder::Finish() const {
  if (buffer_.size() != pos_) {
    return Status::InvalidArgument(
        "stream ended mid-frame (" +
        std::to_string(buffer_.size() - pos_) + " trailing bytes)");
  }
  return Status::OK();
}

}  // namespace cknn::serve

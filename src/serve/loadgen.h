#ifndef CKNN_SERVE_LOADGEN_H_
#define CKNN_SERVE_LOADGEN_H_

#include <cstddef>
#include <cstdint>

#include "src/core/monitor.h"
#include "src/gen/network_gen.h"
#include "src/serve/front_end.h"
#include "src/sim/metrics.h"
#include "src/util/result.h"

namespace cknn::serve {

/// \brief The million-entity bursty-arrival scenario (docs/serving.md):
/// N objects and Q queries live on a synthetic road network, Table-2
/// random walks generate their movement, and `producers` threads push the
/// resulting `ServeRequest`s — pre-partitioned by entity id, so per-entity
/// order is preserved — through a `ServingFrontEnd` in bursts. Every
/// `heavy_every`-th burst coalesces `heavy_factor` workload steps into one
/// arrival spike, exercising the queue and the batching window.
struct LoadScenarioConfig {
  NetworkGenConfig network;  ///< Default 10K target edges, seed 1.
  std::size_t num_objects = 1000000;
  std::size_t num_queries = 100000;
  int k = 10;
  Algorithm algorithm = Algorithm::kIma;
  int shards = 1;
  int pipeline_depth = 2;
  int tiles = 1;
  int producers = 4;
  /// Timed submission windows ("bursts").
  int bursts = 8;
  /// Every heavy_every-th burst is an arrival spike of `heavy_factor`
  /// workload steps; 0 disables spikes.
  int heavy_every = 4;
  int heavy_factor = 4;
  double object_agility = 0.10;
  double query_agility = 0.10;
  double edge_agility = 0.04;
  std::size_t queue_capacity = std::size_t{1} << 16;
  std::size_t max_batch_requests = 0;
  /// true: producers block on a full queue (`Submit`, back-pressure);
  /// false: they drop the request (`TrySubmit`, admission control) and
  /// the drop is counted in `rejected_queue_full`.
  bool block_on_full = true;
  std::uint64_t seed = 42;
};

/// What the scenario measured.
struct LoadScenarioReport {
  /// One step per burst: wall = the burst's submission window (the last
  /// one also folds in the final flush), CPU windows contiguous across
  /// the run.
  RunMetrics metrics;
  /// Front-end counters at the end of the run (latency percentiles are
  /// submit-to-visible wall times).
  ServingStats stats;
  /// Requests the producers offered (accepted + dropped).
  std::uint64_t offered = 0;
  /// Burst-0-to-drained wall clock.
  double total_seconds = 0.0;
  /// Sustained throughput: stats.applied / total_seconds.
  double updates_per_sec = 0.0;
  /// Monitoring-structure bytes after the run.
  std::size_t monitor_memory_bytes = 0;
  /// Setup cost (network + initial install of N objects and Q queries),
  /// outside `total_seconds`.
  double setup_seconds = 0.0;
  /// The front end's latched `last_error()` after the final drain. The
  /// generated workload is valid, so any engine-side rejection during the
  /// run is a real failure — admission drops and build-time rejects are
  /// counted in `stats`, never latched here. Callers must check this:
  /// `stats` alone cannot distinguish a clean run from one whose updates
  /// the engine refused.
  Status engine_error;
};

/// Runs the scenario end to end. Fails (non-OK) only on setup errors —
/// per-request rejections are part of the measurement, not a failure.
/// Engine-side failures during the run surface in `engine_error`.
Result<LoadScenarioReport> RunLoadScenario(const LoadScenarioConfig& config);

}  // namespace cknn::serve

#endif  // CKNN_SERVE_LOADGEN_H_

#include "src/serve/front_end.h"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/core/object_table.h"

namespace cknn {

namespace {

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

ServingFrontEnd::ServingFrontEnd(MonitoringServer* server,
                                 ServingConfig config)
    : server_(server),
      config_(config),
      latency_(config.latency_reservoir_capacity) {
  // cknn-lint: allow(abort) construction-time precondition of the host process, before any client connects
  CKNN_CHECK(server_ != nullptr);
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
}

ServingFrontEnd::~ServingFrontEnd() { Shutdown(); }

Status ServingFrontEnd::TrySubmit(const ServeRequest& request) {
  {
    MutexLock lock(queue_mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("serving front end is shut down");
    }
    if (queue_.size() >= config_.queue_capacity) {
      ++rejected_queue_full_;
      return Status::ResourceExhausted(
          "submission queue full (capacity " +
          std::to_string(config_.queue_capacity) + ")");
    }
    queue_.push_back(Entry{request, Clock::now()});
    ++accepted_;
    max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
  }
  not_empty_.NotifyOne();
  return Status::OK();
}

Status ServingFrontEnd::Submit(const ServeRequest& request) {
  {
    MutexLock lock(queue_mu_);
    while (!shutdown_ && queue_.size() >= config_.queue_capacity) {
      not_full_.Wait(queue_mu_);
    }
    if (shutdown_) {
      return Status::FailedPrecondition("serving front end is shut down");
    }
    queue_.push_back(Entry{request, Clock::now()});
    ++accepted_;
    max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
  }
  not_empty_.NotifyOne();
  return Status::OK();
}

void ServingFrontEnd::Start() {
  MutexLock lifecycle(lifecycle_mu_);
  // cknn-lint: allow(abort) lifecycle precondition driven by the embedding main, not by client traffic
  CKNN_CHECK(!pump_.joinable());
  {
    MutexLock lock(queue_mu_);
    // cknn-lint: allow(abort) lifecycle precondition driven by the embedding main, not by client traffic
    CKNN_CHECK(!shutdown_);
  }
  pump_ = std::thread([this] { PumpLoop(); });
}

void ServingFrontEnd::PumpLoop() {
  while (true) {
    std::vector<Entry> slice;
    {
      MutexLock lock(queue_mu_);
      while (!shutdown_ && queue_.empty()) not_empty_.Wait(queue_mu_);
      if (queue_.empty()) break;  // Shutdown with a drained queue.
      slice = TakeSliceLocked();
      pump_busy_ = true;
    }
    not_full_.NotifyAll();
    ProcessSlice(std::move(slice));
    {
      MutexLock lock(queue_mu_);
      pump_busy_ = false;
    }
    drained_.NotifyAll();
  }
  drained_.NotifyAll();
}

std::vector<ServingFrontEnd::Entry> ServingFrontEnd::TakeSliceLocked() {
  const std::size_t limit =
      config_.max_batch_requests == 0
          ? queue_.size()
          : std::min(queue_.size(), config_.max_batch_requests);
  std::vector<Entry> slice;
  slice.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    slice.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return slice;
}

Status ServingFrontEnd::Flush() {
  MutexLock lifecycle(lifecycle_mu_);
  while (true) {
    std::vector<Entry> slice;
    {
      MutexLock lock(queue_mu_);
      if (pump_.joinable()) {
        // With a pump the barrier is: every pre-Flush request has been
        // taken AND processed (pump idle). New requests racing past the
        // barrier are the next window's problem.
        while (!queue_.empty() || pump_busy_) drained_.Wait(queue_mu_);
        break;
      }
      if (queue_.empty()) break;
      slice = TakeSliceLocked();
    }
    not_full_.NotifyAll();
    ProcessSlice(std::move(slice));
  }
  MutexLock lock(engine_mu_);
  Status drained = DrainEngineLocked();
  return drained;
}

void ServingFrontEnd::Shutdown() {
  MutexLock lifecycle(lifecycle_mu_);
  {
    MutexLock lock(queue_mu_);
    shutdown_ = true;
  }
  not_empty_.NotifyAll();
  not_full_.NotifyAll();
  if (pump_.joinable()) pump_.join();  // Drains the queue before exiting.
  // No pump (or requests the pump never saw): drain synchronously so
  // every accepted request still reaches the engine.
  while (true) {
    std::vector<Entry> slice;
    {
      MutexLock lock(queue_mu_);
      if (queue_.empty()) break;
      slice = TakeSliceLocked();
    }
    ProcessSlice(std::move(slice));
  }
  MutexLock lock(engine_mu_);
  CKNN_IGNORE_STATUS(DrainEngineLocked(),
                     "shutdown is void by contract; DrainEngineLocked "
                     "already latched the status into last_error_");
}

Result<std::vector<Neighbor>> ServingFrontEnd::ReadResult(QueryId id) {
  MutexLock lock(engine_mu_);
  Status drained = DrainEngineLocked();
  if (!drained.ok()) return drained;
  const std::vector<Neighbor>* neighbors = nullptr;
  Status read = server_->TryResultOf(id, &neighbors);
  if (!read.ok()) return read;
  if (neighbors == nullptr) {
    return Status::NotFound("unknown query " + std::to_string(id));
  }
  return *neighbors;
}

std::size_t ServingFrontEnd::QueueDepth() const {
  MutexLock lock(queue_mu_);
  return queue_.size();
}

ServingStats ServingFrontEnd::Stats() const {
  ServingStats stats;
  {
    MutexLock lock(queue_mu_);
    stats.accepted = accepted_;
    stats.rejected_queue_full = rejected_queue_full_;
    stats.max_queue_depth = max_queue_depth_;
  }
  {
    MutexLock lock(engine_mu_);
    stats.rejected_invalid = rejected_invalid_;
    stats.applied = applied_;
    stats.ticks = ticks_;
    stats.latency_samples = latency_.count();
    stats.latency_p50_sec = latency_.Percentile(50.0);
    stats.latency_p95_sec = latency_.Percentile(95.0);
    stats.latency_p99_sec = latency_.Percentile(99.0);
    stats.latency_max_sec = latency_.max();
  }
  return stats;
}

Status ServingFrontEnd::last_error() const {
  MutexLock lock(engine_mu_);
  return last_error_;
}

void ServingFrontEnd::ProcessSlice(std::vector<Entry> slice) {
  MutexLock lock(engine_mu_);
  std::vector<ServeRequest> requests;
  requests.reserve(slice.size());
  for (const Entry& entry : slice) requests.push_back(entry.request);
  BatchBuild built = BuildBatch(requests, *server_);
  rejected_invalid_ += built.rejected;
  const std::size_t updates = built.batch.objects.size() +
                              built.batch.queries.size() +
                              built.batch.edges.size();
  if (updates > 0) {
    Status submitted = server_->SubmitBatch(built.batch);
    ++ticks_;
    if (submitted.ok()) {
      applied_ += updates;
    } else {
      last_error_ = submitted;
      BisectRejectedLocked(built.batch);
    }
  }
  // Latency retirement under the depth-2 pipeline: whatever was pending
  // completed at the apply barrier inside SubmitBatch; this slice's tick
  // is visible once the *next* barrier (or a drain) passes.
  const Clock::time_point now = Clock::now();
  RetirePendingLocked(now);
  if (server_->InFlight()) {
    pending_retire_.reserve(pending_retire_.size() + slice.size());
    for (const Entry& entry : slice) {
      pending_retire_.push_back(entry.enqueued);
    }
  } else {
    for (const Entry& entry : slice) {
      latency_.Add(Seconds(now - entry.enqueued));
    }
  }
}

void ServingFrontEnd::BisectRejectedLocked(const UpdateBatch& batch) {
  // The engine rejected the coalesced batch as a whole (validation leaves
  // it untouched). Re-apply one update per tick, in canonical stream
  // order, so the bad update is isolated and counted instead of vetoing
  // its neighbors.
  UpdateBatch single;
  auto apply = [&] {
    Status status = server_->Tick(single);
    ++ticks_;
    if (status.ok()) {
      ++applied_;
    } else {
      ++rejected_invalid_;
      last_error_ = status;
    }
  };
  for (const ObjectUpdate& u : batch.objects) {
    single.objects.assign(1, u);
    apply();
    single.objects.clear();
  }
  for (const QueryUpdate& u : batch.queries) {
    single.queries.assign(1, u);
    apply();
    single.queries.clear();
  }
  for (const EdgeUpdate& u : batch.edges) {
    single.edges.assign(1, u);
    apply();
    single.edges.clear();
  }
}

Status ServingFrontEnd::DrainEngineLocked() {
  Status status = server_->Drain();
  RetirePendingLocked(Clock::now());
  if (!status.ok()) last_error_ = status;
  return status;
}

void ServingFrontEnd::RetirePendingLocked(Clock::time_point now) {
  for (const Clock::time_point& enqueued : pending_retire_) {
    latency_.Add(Seconds(now - enqueued));
  }
  pending_retire_.clear();
}

ServingFrontEnd::BatchBuild ServingFrontEnd::BuildBatch(
    const std::vector<ServeRequest>& requests,
    const MonitoringServer& server) {
  BatchBuild out;
  using Op = ServeRequest::Op;
  // Split per stream in arrival order, then stable-sort by entity id:
  // per-entity order (one producer's FIFO) is preserved, producer
  // interleaving is canonicalized away.
  std::vector<ServeRequest> objects, queries, edges;
  for (const ServeRequest& r : requests) {
    switch (r.op) {
      case Op::kAddObject:
      case Op::kMoveObject:
      case Op::kRemoveObject:
        objects.push_back(r);
        break;
      case Op::kInstallQuery:
      case Op::kMoveQuery:
      case Op::kTerminateQuery:
        queries.push_back(r);
        break;
      case Op::kUpdateWeight:
        edges.push_back(r);
        break;
    }
  }
  auto by_id = [](const ServeRequest& a, const ServeRequest& b) {
    return a.id < b.id;
  };
  std::stable_sort(objects.begin(), objects.end(), by_id);
  std::stable_sort(queries.begin(), queries.end(), by_id);
  std::stable_sort(edges.begin(), edges.end(), by_id);

  // Objects: the wire carries no old position, so resolve it against the
  // shared table (current as of every submitted tick — the pipeline
  // applies object updates at the submit barrier) plus a within-batch
  // overlay for chains. Requests that cannot validate are dropped here,
  // exactly as a sequential replay would reject them.
  std::unordered_map<ObjectId, std::optional<NetworkPoint>> overlay;
  for (const ServeRequest& r : objects) {
    const ObjectId id = static_cast<ObjectId>(r.id);
    std::optional<NetworkPoint> current;
    auto it = overlay.find(id);
    if (it != overlay.end()) {
      current = it->second;
    } else {
      Result<NetworkPoint> pos = server.objects().Position(id);
      if (pos.ok()) current = *pos;
    }
    switch (r.op) {
      case Op::kAddObject:
        if (current.has_value()) {
          ++out.rejected;  // Already present.
          continue;
        }
        out.batch.objects.push_back(ObjectUpdate{id, std::nullopt, r.pos});
        break;
      case Op::kMoveObject:
        if (!current.has_value()) {
          ++out.rejected;  // Unknown object.
          continue;
        }
        out.batch.objects.push_back(ObjectUpdate{id, current, r.pos});
        break;
      case Op::kRemoveObject:
        if (!current.has_value()) {
          ++out.rejected;  // Unknown object.
          continue;
        }
        out.batch.objects.push_back(
            ObjectUpdate{id, current, std::nullopt});
        overlay[id] = std::nullopt;
        continue;
      default:
        continue;
    }
    overlay[id] = r.pos;
  }

  // Queries: validate against the caller-side registry (safe to consult
  // mid-flight) plus a within-batch overlay; terminate-then-reinstall
  // chains are legal and fold downstream.
  std::unordered_map<QueryId, bool> registered;
  auto is_registered = [&](QueryId id) {
    auto it = registered.find(id);
    if (it != registered.end()) return it->second;
    return server.shards().IsRegistered(id);
  };
  for (const ServeRequest& r : queries) {
    const QueryId id = static_cast<QueryId>(r.id);
    switch (r.op) {
      case Op::kInstallQuery:
        if (is_registered(id)) {
          ++out.rejected;  // Double install.
          continue;
        }
        out.batch.queries.push_back(
            QueryUpdate{id, QueryUpdate::Kind::kInstall, r.pos, r.k});
        registered[id] = true;
        break;
      case Op::kMoveQuery:
        if (!is_registered(id)) {
          ++out.rejected;  // Unknown query.
          continue;
        }
        out.batch.queries.push_back(
            QueryUpdate{id, QueryUpdate::Kind::kMove, r.pos, 1});
        break;
      case Op::kTerminateQuery:
        if (!is_registered(id)) {
          ++out.rejected;  // Unknown query.
          continue;
        }
        out.batch.queries.push_back(
            QueryUpdate{id, QueryUpdate::Kind::kTerminate, NetworkPoint{},
                        1});
        registered[id] = false;
        break;
      default:
        break;
    }
  }

  // Edges pass through; the engine validates ids and weights (a rejected
  // batch falls back to per-update bisection, so a bad weight update is
  // dropped alone).
  for (const ServeRequest& r : edges) {
    out.batch.edges.push_back(
        EdgeUpdate{static_cast<EdgeId>(r.id), r.weight});
  }
  return out;
}

}  // namespace cknn

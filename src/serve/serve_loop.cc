#include "src/serve/serve_loop.h"

#include <optional>
#include <string>
#include <vector>

#include "src/serve/protocol.h"

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <unistd.h>
#endif

namespace cknn::serve {

#if defined(__unix__) || defined(__APPLE__)

namespace {

Status WriteAll(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write failed (errno " +
                             std::to_string(errno) + ")");
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

/// Handles one decoded payload; fills `response` with exactly one frame.
/// Sets `*shutdown` on kShutdown.
void HandlePayload(const std::vector<std::uint8_t>& payload,
                   ServingFrontEnd* front_end,
                   std::vector<std::uint8_t>* response, bool* shutdown) {
  Result<Message> decoded = DecodeMessage(payload.data(), payload.size());
  if (!decoded.ok()) {
    // Payload-level error: framing is intact, respond and carry on.
    EncodeStatusResponse(decoded.status(), response);
    return;
  }
  const Message& message = *decoded;
  switch (message.op) {
    case OpCode::kRead: {
      // Read-your-writes: fold everything this client already submitted
      // before consulting the registry.
      CKNN_IGNORE_STATUS(
          front_end->Flush(),
          "per-update rejects are answered on their own frames and "
          "counted in Stats(); the read below re-drains and surfaces "
          "any engine error as its own response");
      Result<std::vector<Neighbor>> result =
          front_end->ReadResult(static_cast<QueryId>(message.id));
      if (result.ok()) {
        EncodeReadResponse(*result, response);
      } else {
        EncodeStatusResponse(result.status(), response);
      }
      return;
    }
    case OpCode::kFlush:
      EncodeStatusResponse(front_end->Flush(), response);
      return;
    case OpCode::kStats:
      EncodeStatsResponse(front_end->Stats(), response);
      return;
    case OpCode::kShutdown:
      front_end->Shutdown();
      *shutdown = true;
      EncodeStatusResponse(Status::OK(), response);
      return;
    default: {
      Result<ServeRequest> request = ToServeRequest(message);
      if (!request.ok()) {
        EncodeStatusResponse(request.status(), response);
        return;
      }
      // TrySubmit, not Submit: a full queue must answer
      // ResourceExhausted (the client's back-off signal), not block
      // the connection's reader.
      EncodeStatusResponse(front_end->TrySubmit(*request), response);
      return;
    }
  }
}

}  // namespace

ServeLoopResult ServeConnection(int fd, ServingFrontEnd* front_end) {
  ServeLoopResult result;
  FrameDecoder decoder;
  std::uint8_t chunk[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      result.status = Status::IoError("read failed (errno " +
                                      std::to_string(errno) + ")");
      return result;
    }
    if (n == 0) {
      result.status = decoder.Finish();  // Truncated-frame check.
      return result;
    }
    decoder.Append(chunk, static_cast<std::size_t>(n));
    while (true) {
      Result<std::optional<std::vector<std::uint8_t>>> next =
          decoder.Next();
      if (!next.ok()) {
        // Fatal framing error: report it to the peer, then hang up.
        std::vector<std::uint8_t> response;
        EncodeStatusResponse(next.status(), &response);
        CKNN_IGNORE_STATUS(WriteAll(fd, response),
                           "best-effort error report on a stream that is "
                           "about to close; the framing error below is "
                           "what the caller sees");
        result.status = next.status();
        return result;
      }
      if (!next->has_value()) break;  // Need more bytes.
      ++result.frames;
      std::vector<std::uint8_t> response;
      bool shutdown = false;
      HandlePayload(**next, front_end, &response, &shutdown);
      Status wrote = WriteAll(fd, response);
      if (!wrote.ok()) {
        result.status = wrote;
        return result;
      }
      if (shutdown) {
        result.shutdown = true;
        return result;
      }
    }
  }
}

#else  // !(__unix__ || __APPLE__)

ServeLoopResult ServeConnection(int, ServingFrontEnd*) {
  ServeLoopResult result;
  result.status =
      Status::Internal("socket serving requires a POSIX platform");
  return result;
}

#endif

}  // namespace cknn::serve

#ifndef CKNN_SIM_METRICS_H_
#define CKNN_SIM_METRICS_H_

#include <cstddef>
#include <vector>

namespace cknn {

/// Measurements of one simulated timestamp. Wall and CPU time are recorded
/// separately: on a serial single-shard run they coincide, but a sharded
/// tick burns CPU on several cores per wall second, and a pipelined tick's
/// submit window overlaps the previous tick's maintenance — conflating the
/// two silently misreports both (the y-axis of Figures 13–19 is per-tick
/// *elapsed* cost, which is the wall number).
struct TimestepMetrics {
  double seconds = 0.0;      ///< Wall-clock time of the tick's window.
  /// Process CPU time (all threads) in the step's CPU window. At pipeline
  /// depth 1 the window is the submit call (== the wall window); at depth
  /// >= 2 the windows are contiguous across steps — they include the
  /// generation/decode gap, where the in-flight tick's maintenance burns
  /// CPU — so the run total is complete (it then also counts the
  /// driver-side generation CPU).
  double cpu_seconds = 0.0;
  std::size_t memory_bytes = 0;  ///< Monitoring-structure bytes after it.
};

/// Measurements of a whole monitoring run (the per-figure data points).
struct RunMetrics {
  std::vector<TimestepMetrics> steps;

  double TotalSeconds() const;
  /// Mean per-timestamp wall time — the y-axis of Figures 13-17 and 19.
  double AvgSeconds() const;
  double MaxSeconds() const;
  double TotalCpuSeconds() const;
  /// Mean per-timestamp process CPU time (all threads).
  double AvgCpuSeconds() const;
  double MaxCpuSeconds() const;
  /// Mean monitoring memory in KBytes — the y-axis of Figure 18.
  double AvgMemoryKb() const;
};

}  // namespace cknn

#endif  // CKNN_SIM_METRICS_H_

#ifndef CKNN_SIM_METRICS_H_
#define CKNN_SIM_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cknn {

/// \brief Fixed-capacity reservoir of latency samples with nearest-rank
/// percentiles (the p50/p95/p99 columns of the serving figures).
///
/// Uses Vitter's Algorithm R with an internal splitmix64 generator seeded
/// at construction, so two runs fed the same sample sequence produce the
/// same percentiles — benchmarks and tests stay reproducible without
/// touching any global RNG. Until `capacity` samples have arrived the
/// reservoir holds every sample and percentiles are exact.
///
/// Not internally synchronized: the owner serializes access (e.g.
/// `ServingFrontEnd` guards its reservoir with `engine_mu_` and
/// annotates it `CKNN_GUARDED_BY` — see docs/static_analysis.md).
class LatencyReservoir {
 public:
  explicit LatencyReservoir(std::size_t capacity = 4096,
                            std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Records one sample (seconds, but any unit works).
  void Add(double sample);

  /// Samples offered so far (not the retained count).
  std::uint64_t count() const { return count_; }

  /// Largest sample ever offered (tracked exactly, outside the reservoir).
  double max() const { return max_; }

  /// Nearest-rank percentile over the retained samples; `pct` in [0, 100].
  /// 0 with no samples.
  double Percentile(double pct) const;

  void Clear();

 private:
  std::size_t capacity_;
  std::uint64_t state_;
  std::uint64_t count_ = 0;
  double max_ = 0.0;
  std::vector<double> samples_;
};

/// Measurements of one simulated timestamp. Wall and CPU time are recorded
/// separately: on a serial single-shard run they coincide, but a sharded
/// tick burns CPU on several cores per wall second, and a pipelined tick's
/// submit window overlaps the previous tick's maintenance — conflating the
/// two silently misreports both (the y-axis of Figures 13–19 is per-tick
/// *elapsed* cost, which is the wall number).
struct TimestepMetrics {
  double seconds = 0.0;      ///< Wall-clock time of the tick's window.
  /// Process CPU time (all threads) in the step's CPU window. At pipeline
  /// depth 1 the window is the submit call (== the wall window); at depth
  /// >= 2 the windows are contiguous across steps — they include the
  /// generation/decode gap, where the in-flight tick's maintenance burns
  /// CPU — so the run total is complete (it then also counts the
  /// driver-side generation CPU).
  double cpu_seconds = 0.0;
  std::size_t memory_bytes = 0;  ///< Monitoring-structure bytes after it.
};

/// Measurements of a whole monitoring run (the per-figure data points).
struct RunMetrics {
  std::vector<TimestepMetrics> steps;

  double TotalSeconds() const;
  /// Mean per-timestamp wall time — the y-axis of Figures 13-17 and 19.
  double AvgSeconds() const;
  double MaxSeconds() const;
  double TotalCpuSeconds() const;
  /// Mean per-timestamp process CPU time (all threads).
  double AvgCpuSeconds() const;
  double MaxCpuSeconds() const;
  /// Mean monitoring memory in KBytes — the y-axis of Figure 18.
  double AvgMemoryKb() const;
  /// Nearest-rank percentile of the per-step wall times; `pct` in
  /// [0, 100]. Exact (no sampling) — use LatencyReservoir when the
  /// population is unbounded.
  double PercentileSeconds(double pct) const;
};

}  // namespace cknn

#endif  // CKNN_SIM_METRICS_H_

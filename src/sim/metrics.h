#ifndef CKNN_SIM_METRICS_H_
#define CKNN_SIM_METRICS_H_

#include <cstddef>
#include <vector>

namespace cknn {

/// Measurements of one simulated timestamp.
struct TimestepMetrics {
  double seconds = 0.0;            ///< CPU time spent in Tick().
  std::size_t memory_bytes = 0;    ///< Monitoring-structure bytes after it.
};

/// Measurements of a whole monitoring run (the per-figure data points).
struct RunMetrics {
  std::vector<TimestepMetrics> steps;

  double TotalSeconds() const;
  /// Mean per-timestamp CPU time — the y-axis of Figures 13-17 and 19.
  double AvgSeconds() const;
  double MaxSeconds() const;
  /// Mean monitoring memory in KBytes — the y-axis of Figure 18.
  double AvgMemoryKb() const;
};

}  // namespace cknn

#endif  // CKNN_SIM_METRICS_H_

#include "src/sim/conformance.h"

#include <cmath>
#include <memory>
#include <set>
#include <sstream>

#include "src/gen/network_gen.h"
#include "src/trace/trace_source.h"
#include "src/util/macros.h"

namespace cknn {

namespace {

/// Tracks which queries are registered after a tick, mirroring the server's
/// aggregation semantics (install adds, terminate removes, move keeps).
void UpdateLiveQueries(const UpdateBatch& aggregated,
                       std::set<QueryId>* live) {
  for (const QueryUpdate& u : aggregated.queries) {
    switch (u.kind) {
      case QueryUpdate::Kind::kInstall:
        live->insert(u.id);
        break;
      case QueryUpdate::Kind::kTerminate:
        live->erase(u.id);
        break;
      case QueryUpdate::Kind::kMove:
        break;
    }
  }
}

/// Distance-multiset comparison: sizes must match and the i-th distances
/// must agree within the relative tolerance. Ids are allowed to differ (the
/// algorithms may break exact distance ties differently), which is exactly
/// the tie tolerance the equivalence argument of the paper permits.
bool SameResults(const std::vector<Neighbor>& base,
                 const std::vector<Neighbor>& other, double tol,
                 std::string* detail) {
  if (base.size() != other.size()) {
    std::ostringstream os;
    os << "result size " << base.size() << " vs " << other.size();
    *detail = os.str();
    return false;
  }
  for (std::size_t rank = 0; rank < base.size(); ++rank) {
    const double da = base[rank].distance;
    const double db = other[rank].distance;
    if (std::abs(da - db) > tol * (1.0 + std::abs(da))) {
      std::ostringstream os;
      os.precision(17);
      os << "rank " << rank << ": object " << base[rank].id << " at distance "
         << da << " vs object " << other[rank].id << " at distance " << db;
      *detail = os.str();
      return false;
    }
  }
  return true;
}

}  // namespace

std::string ConformanceReport::ToString() const {
  std::ostringstream os;
  if (ok) {
    os << "conformance OK: " << timestamps << " ticks, " << queries_compared
       << " query-result comparisons, all algorithms agree";
    return os.str();
  }
  os << "conformance DIVERGENCE at ts " << divergence->timestamp << " query "
     << divergence->query << ": " << AlgorithmName(divergence->other)
     << " disagrees with " << AlgorithmName(divergence->baseline) << " ("
     << divergence->detail << ") after " << queries_compared
     << " clean comparisons";
  return os.str();
}

Result<ConformanceReport> RunLockstep(
    const std::vector<MonitoringServer*>& servers, WorkloadSource* source,
    int steps, double tolerance) {
  if (servers.size() < 2) {
    return Status::InvalidArgument(
        "lockstep conformance needs at least two servers");
  }
  CKNN_CHECK(source != nullptr);
  ConformanceReport report;
  std::set<QueryId> live;
  for (int tick = 0; tick <= steps; ++tick) {
    const UpdateBatch batch = tick == 0 ? source->Initial() : source->Step();
    for (MonitoringServer* server : servers) {
      const Status st = server->Tick(batch);
      if (!st.ok()) {
        return Status::FailedPrecondition(
            std::string(AlgorithmName(server->algorithm())) +
            " rejected tick " + std::to_string(tick) + ": " + st.message());
      }
    }
    UpdateLiveQueries(MonitoringServer::AggregateBatch(batch), &live);
    ++report.timestamps;
    for (const QueryId q : live) {
      const std::vector<Neighbor>* base = servers[0]->ResultOf(q);
      for (std::size_t i = 1; i < servers.size(); ++i) {
        const std::vector<Neighbor>* other = servers[i]->ResultOf(q);
        std::string detail;
        bool same = true;
        if ((base == nullptr) != (other == nullptr)) {
          detail = base == nullptr ? "query registered only in comparand"
                                   : "query missing from comparand";
          same = false;
        } else if (base != nullptr) {
          same = SameResults(*base, *other, tolerance, &detail);
        }
        if (!same) {
          report.ok = false;
          report.divergence = ConformanceDivergence{
              static_cast<std::uint64_t>(tick), q, servers[0]->algorithm(),
              servers[i]->algorithm(), detail};
          return report;
        }
        ++report.queries_compared;
      }
    }
  }
  return report;
}

std::vector<std::unique_ptr<MonitoringServer>> BuildLockstepServers(
    const RoadNetwork& network, const std::vector<Algorithm>& algorithms,
    int shards, int pipeline_depth, int tiles) {
  std::vector<std::unique_ptr<MonitoringServer>> servers;
  servers.reserve(algorithms.size());
  for (const Algorithm algo : algorithms) {
    // Shared-topology views: every lockstep server references one
    // immutable topology and keeps only a private weight overlay.
    servers.push_back(std::make_unique<MonitoringServer>(
        network.SharedView(), algo, shards, pipeline_depth, tiles));
  }
  return servers;
}

Result<ConformanceReport> CheckTraceConformance(
    const Trace& trace, const ConformanceOptions& options) {
  if (options.algorithms.size() < 2) {
    return Status::InvalidArgument(
        "trace conformance needs at least two algorithms");
  }
  const std::vector<std::unique_ptr<MonitoringServer>> servers =
      BuildLockstepServers(trace.network, options.algorithms, options.shards,
                           options.pipeline_depth, options.tiles);
  std::vector<MonitoringServer*> ptrs;
  ptrs.reserve(servers.size());
  for (const auto& server : servers) ptrs.push_back(server.get());
  TraceWorkloadSource source(&trace);
  return RunLockstep(ptrs, &source, source.NumSteps(), options.tolerance);
}

}  // namespace cknn

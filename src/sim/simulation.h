#ifndef CKNN_SIM_SIMULATION_H_
#define CKNN_SIM_SIMULATION_H_

#include "src/core/server.h"
#include "src/gen/workload.h"
#include "src/sim/metrics.h"

namespace cknn {

struct SimulationOptions {
  /// Monitoring horizon; the paper runs queries for 100 timestamps.
  int timestamps = 100;
  /// Collect Monitor::MemoryBytes() after each timestamp (Figure 18).
  bool measure_memory = false;
};

/// \brief Drives one monitoring run: installs the workload's initial
/// objects/queries (untimed setup), then feeds `timestamps` update batches
/// to the server, timing each `Tick` — the per-timestamp CPU cost the
/// paper reports.
RunMetrics RunSimulation(MonitoringServer* server, WorkloadSource* workload,
                         const SimulationOptions& options);

}  // namespace cknn

#endif  // CKNN_SIM_SIMULATION_H_

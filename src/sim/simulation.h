#ifndef CKNN_SIM_SIMULATION_H_
#define CKNN_SIM_SIMULATION_H_

#include "src/core/server.h"
#include "src/gen/workload.h"
#include "src/sim/metrics.h"

namespace cknn {

struct SimulationOptions {
  /// Monitoring horizon; the paper runs queries for 100 timestamps.
  int timestamps = 100;
  /// Collect Monitor::MemoryBytes() after each timestamp (Figure 18).
  /// Forces a per-tick drain on pipelined servers (the monitoring
  /// structures can only be walked while no tick is in flight).
  bool measure_memory = false;
};

/// \brief Drives one monitoring run: installs the workload's initial
/// objects/queries (untimed setup), then feeds `timestamps` update batches
/// to the server, timing each submission (wall and process-CPU time, see
/// src/sim/metrics.h). On a depth-1 server each submission is a full
/// serial `Tick`; on a pipelined server (pipeline_depth 2) the next
/// batch's generation and preparation overlap the in-flight tick's shard
/// maintenance, and the final drain's cost is folded into the last step so
/// the totals cover all server work.
RunMetrics RunSimulation(MonitoringServer* server, WorkloadSource* workload,
                         const SimulationOptions& options);

}  // namespace cknn

#endif  // CKNN_SIM_SIMULATION_H_

#include "src/sim/simulation.h"

#include "src/util/macros.h"
#include "src/util/stopwatch.h"

namespace cknn {

RunMetrics RunSimulation(MonitoringServer* server, WorkloadSource* workload,
                         const SimulationOptions& options) {
  CKNN_CHECK(server != nullptr);
  CKNN_CHECK(workload != nullptr);
  {
    const Status st = server->Tick(workload->Initial());
    CKNN_CHECK(st.ok());
  }
  RunMetrics metrics;
  metrics.steps.reserve(static_cast<std::size_t>(options.timestamps));
  for (int ts = 0; ts < options.timestamps; ++ts) {
    const UpdateBatch batch = workload->Step();  // Generation is untimed.
    Stopwatch watch;
    const Status st = server->Tick(batch);
    TimestepMetrics step;
    step.seconds = watch.ElapsedSeconds();
    CKNN_CHECK(st.ok());
    if (options.measure_memory) {
      step.memory_bytes = server->MonitorMemoryBytes();
    }
    metrics.steps.push_back(step);
  }
  return metrics;
}

}  // namespace cknn

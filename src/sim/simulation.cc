#include "src/sim/simulation.h"

#include "src/util/macros.h"
#include "src/util/stopwatch.h"

namespace cknn {

RunMetrics RunSimulation(MonitoringServer* server, WorkloadSource* workload,
                         const SimulationOptions& options) {
  CKNN_CHECK(server != nullptr);
  CKNN_CHECK(workload != nullptr);
  {
    const Status st = server->Tick(workload->Initial());
    CKNN_CHECK(st.ok());
  }
  RunMetrics metrics;
  metrics.steps.reserve(static_cast<std::size_t>(options.timestamps));
  // Wall time covers the submit call only (generation is untimed; on a
  // pipelined server it overlaps the in-flight tick's maintenance). CPU
  // windows differ by depth: at depth 1 they match the wall window, but
  // at depth >= 2 the in-flight tick burns CPU *during* the generation
  // window too, so the step windows are made contiguous (generation +
  // submit) — the run total then covers all server CPU, at the price of
  // also counting the (driver-side) generation CPU.
  const bool pipelined = server->pipeline_depth() > 1;
  CpuStopwatch cpu;
  for (int ts = 0; ts < options.timestamps; ++ts) {
    const UpdateBatch batch = workload->Step();
    if (!pipelined) cpu.Reset();
    Stopwatch wall;
    const Status st = server->SubmitBatch(batch);
    if (options.measure_memory) CKNN_CHECK(server->Drain().ok());
    TimestepMetrics step;
    step.seconds = wall.ElapsedSeconds();
    step.cpu_seconds = cpu.ElapsedSeconds();
    cpu.Reset();
    CKNN_CHECK(st.ok());
    if (options.measure_memory) {
      step.memory_bytes = server->MonitorMemoryBytes();
    }
    metrics.steps.push_back(step);
  }
  {
    // Retire the last in-flight tick; its remaining cost belongs to the
    // run, so fold it into the final step (a no-op at depth 1).
    Stopwatch wall;
    cpu.Reset();
    CKNN_CHECK(server->Drain().ok());
    if (!metrics.steps.empty()) {
      metrics.steps.back().seconds += wall.ElapsedSeconds();
      metrics.steps.back().cpu_seconds += cpu.ElapsedSeconds();
    }
  }
  return metrics;
}

}  // namespace cknn

#ifndef CKNN_SIM_EXPERIMENT_H_
#define CKNN_SIM_EXPERIMENT_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/core/server.h"
#include "src/gen/network_gen.h"
#include "src/gen/workload.h"
#include "src/sim/metrics.h"
#include "src/sim/simulation.h"
#include "src/trace/trace.h"

namespace cknn {

/// \brief One experiment configuration: a network, a Table-2 workload, and
/// a horizon. Networks and workloads are regenerated deterministically from
/// their seeds, so every algorithm sees byte-identical inputs.
struct ExperimentSpec {
  NetworkGenConfig network;
  WorkloadConfig workload;
  int timestamps = 100;
  bool measure_memory = false;
  /// Worker shards of the monitoring server (1 = the paper's serial
  /// algorithm; see docs/sharding.md). Does not affect the update stream
  /// or the per-query results, only how maintenance is executed.
  int shards = 1;
  /// Ingest pipeline depth of the monitoring server (1 = synchronous
  /// ticks, 2 = double-buffered asynchronous ingest; docs/pipeline.md).
  /// Like `shards`, an execution detail: results are identical.
  int pipeline_depth = 1;
  /// Region tiles of the weight storage (1 = flat monolithic layout;
  /// docs/tiling.md). Like `shards`, an execution detail: results are
  /// identical at every tile count.
  int tiles = 1;
};

/// Runs one algorithm on one spec and returns its run metrics.
RunMetrics RunExperiment(Algorithm algorithm, const ExperimentSpec& spec);

/// Runs one algorithm on a pre-built network with a Brinkhoff workload
/// (Figure 19). The server runs on a shared-topology view of
/// `base_network` (its weights evolve independently).
RunMetrics RunBrinkhoffExperiment(Algorithm algorithm,
                                  const RoadNetwork& base_network,
                                  const BrinkhoffWorkload::Config& config,
                                  int timestamps, int shards = 1,
                                  int pipeline_depth = 1, int tiles = 1);

/// Self-describing trace-header metadata for a spec: everything needed to
/// regenerate the workload from scratch (the network itself is embedded in
/// the trace alongside).
std::vector<TraceMeta> ExperimentTraceMeta(const ExperimentSpec& spec);

/// Runs one algorithm on one spec while recording the network and every
/// consumed update batch to `trace_path` (see docs/trace_format.md). The
/// written trace replays the run exactly — against this or any other
/// algorithm.
Result<RunMetrics> RunRecordedExperiment(Algorithm algorithm,
                                         const ExperimentSpec& spec,
                                         const std::string& trace_path);

/// Replays a recorded trace against one algorithm on a shared-topology
/// view of the trace's network, timing each tick (wall + process CPU). The horizon is
/// the trace's own. Unlike the generator paths, semantically invalid
/// batches (a trace recorded against a different network state) surface
/// as error Status instead of aborting — the pipelined submit validates
/// synchronously, so tick attribution is exact at every depth. With
/// `pipeline_depth == 2` the next batch is decoded from the trace while
/// the server maintains the current one.
Result<RunMetrics> RunTraceReplay(Algorithm algorithm, const Trace& trace,
                                  bool measure_memory, int shards = 1,
                                  int pipeline_depth = 1, int tiles = 1);

/// \brief Paper-style series table: one row per x-value, one column per
/// series (typically OVH / IMA / GMA), printed as an aligned text table.
class SeriesTable {
 public:
  SeriesTable(std::string title, std::string x_label,
              std::vector<std::string> series_names, std::string unit);

  void AddRow(const std::string& x, const std::vector<double>& values);

  void Print(std::ostream& os) const;

 private:
  std::string title_;
  std::string x_label_;
  std::vector<std::string> series_names_;
  std::string unit_;
  struct Row {
    std::string x;
    std::vector<double> values;
  };
  std::vector<Row> rows_;
};

}  // namespace cknn

#endif  // CKNN_SIM_EXPERIMENT_H_

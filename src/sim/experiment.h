#ifndef CKNN_SIM_EXPERIMENT_H_
#define CKNN_SIM_EXPERIMENT_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/core/server.h"
#include "src/gen/network_gen.h"
#include "src/gen/workload.h"
#include "src/sim/metrics.h"
#include "src/sim/simulation.h"

namespace cknn {

/// \brief One experiment configuration: a network, a Table-2 workload, and
/// a horizon. Networks and workloads are regenerated deterministically from
/// their seeds, so every algorithm sees byte-identical inputs.
struct ExperimentSpec {
  NetworkGenConfig network;
  WorkloadConfig workload;
  int timestamps = 100;
  bool measure_memory = false;
};

/// Runs one algorithm on one spec and returns its run metrics.
RunMetrics RunExperiment(Algorithm algorithm, const ExperimentSpec& spec);

/// Runs one algorithm on a pre-built network with a Brinkhoff workload
/// (Figure 19). The network is cloned internally.
RunMetrics RunBrinkhoffExperiment(Algorithm algorithm,
                                  const RoadNetwork& base_network,
                                  const BrinkhoffWorkload::Config& config,
                                  int timestamps);

/// \brief Paper-style series table: one row per x-value, one column per
/// series (typically OVH / IMA / GMA), printed as an aligned text table.
class SeriesTable {
 public:
  SeriesTable(std::string title, std::string x_label,
              std::vector<std::string> series_names, std::string unit);

  void AddRow(const std::string& x, const std::vector<double>& values);

  void Print(std::ostream& os) const;

 private:
  std::string title_;
  std::string x_label_;
  std::vector<std::string> series_names_;
  std::string unit_;
  struct Row {
    std::string x;
    std::vector<double> values;
  };
  std::vector<Row> rows_;
};

}  // namespace cknn

#endif  // CKNN_SIM_EXPERIMENT_H_

#include "src/sim/experiment.h"

#include <iomanip>

#include "src/util/macros.h"

namespace cknn {

RunMetrics RunExperiment(Algorithm algorithm, const ExperimentSpec& spec) {
  RoadNetwork net = GenerateRoadNetwork(spec.network);
  MonitoringServer server(std::move(net), algorithm);
  Workload workload(&server.network(), &server.spatial_index(),
                    spec.workload);
  SimulationOptions options;
  options.timestamps = spec.timestamps;
  options.measure_memory = spec.measure_memory;
  return RunSimulation(&server, &workload, options);
}

RunMetrics RunBrinkhoffExperiment(Algorithm algorithm,
                                  const RoadNetwork& base_network,
                                  const BrinkhoffWorkload::Config& config,
                                  int timestamps) {
  MonitoringServer server(CloneNetwork(base_network), algorithm);
  BrinkhoffWorkload workload(&server.network(), config);
  SimulationOptions options;
  options.timestamps = timestamps;
  return RunSimulation(&server, &workload, options);
}

SeriesTable::SeriesTable(std::string title, std::string x_label,
                         std::vector<std::string> series_names,
                         std::string unit)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      series_names_(std::move(series_names)),
      unit_(std::move(unit)) {}

void SeriesTable::AddRow(const std::string& x,
                         const std::vector<double>& values) {
  CKNN_CHECK(values.size() == series_names_.size());
  rows_.push_back(Row{x, values});
}

void SeriesTable::Print(std::ostream& os) const {
  os << "\n== " << title_ << " (" << unit_ << ") ==\n";
  os << std::left << std::setw(18) << x_label_;
  for (const std::string& name : series_names_) {
    os << std::right << std::setw(14) << name;
  }
  os << '\n';
  for (const Row& row : rows_) {
    os << std::left << std::setw(18) << row.x;
    for (double v : row.values) {
      os << std::right << std::setw(14) << std::fixed
         << std::setprecision(6) << v;
    }
    os << '\n';
  }
  os.flush();
}

}  // namespace cknn

#include "src/sim/experiment.h"

#include <iomanip>
#include <sstream>

#include "src/trace/trace_source.h"
#include "src/util/macros.h"
#include "src/util/stopwatch.h"

namespace cknn {

RunMetrics RunExperiment(Algorithm algorithm, const ExperimentSpec& spec) {
  RoadNetwork net = GenerateRoadNetwork(spec.network);
  MonitoringServer server(std::move(net), algorithm, spec.shards,
                          spec.pipeline_depth, spec.tiles);
  Workload workload(&server.network(), &server.spatial_index(),
                    spec.workload);
  SimulationOptions options;
  options.timestamps = spec.timestamps;
  options.measure_memory = spec.measure_memory;
  return RunSimulation(&server, &workload, options);
}

RunMetrics RunBrinkhoffExperiment(Algorithm algorithm,
                                  const RoadNetwork& base_network,
                                  const BrinkhoffWorkload::Config& config,
                                  int timestamps, int shards,
                                  int pipeline_depth, int tiles) {
  MonitoringServer server(base_network.SharedView(), algorithm, shards,
                          pipeline_depth, tiles);
  BrinkhoffWorkload workload(&server.network(), config);
  SimulationOptions options;
  options.timestamps = timestamps;
  return RunSimulation(&server, &workload, options);
}

namespace {

std::string FormatDouble(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::vector<TraceMeta> ExperimentTraceMeta(const ExperimentSpec& spec) {
  const WorkloadConfig& wl = spec.workload;
  const auto distribution_name = [](Distribution d) {
    return d == Distribution::kUniform ? "uniform" : "gaussian";
  };
  return {
      {"generator", "table2"},
      {"seed", std::to_string(wl.seed)},
      {"network_seed", std::to_string(spec.network.seed)},
      {"target_edges", std::to_string(spec.network.target_edges)},
      {"objects", std::to_string(wl.num_objects)},
      {"queries", std::to_string(wl.num_queries)},
      {"object_distribution", distribution_name(wl.object_distribution)},
      {"query_distribution", distribution_name(wl.query_distribution)},
      {"k", std::to_string(wl.k)},
      {"timestamps", std::to_string(spec.timestamps)},
      {"edge_agility", FormatDouble(wl.edge_agility)},
      {"object_agility", FormatDouble(wl.object_agility)},
      {"object_speed", FormatDouble(wl.object_speed)},
      {"query_agility", FormatDouble(wl.query_agility)},
      {"query_speed", FormatDouble(wl.query_speed)},
      {"weight_magnitude", FormatDouble(wl.weight_magnitude)},
      {"object_gaussian_stddev", FormatDouble(wl.object_gaussian_stddev)},
      {"query_gaussian_stddev", FormatDouble(wl.query_gaussian_stddev)},
  };
}

Result<RunMetrics> RunRecordedExperiment(Algorithm algorithm,
                                         const ExperimentSpec& spec,
                                         const std::string& trace_path) {
  RoadNetwork net = GenerateRoadNetwork(spec.network);
  MonitoringServer server(std::move(net), algorithm, spec.shards,
                          spec.pipeline_depth, spec.tiles);
  Result<TraceWriter> writer = TraceWriter::Open(
      trace_path, ExperimentTraceMeta(spec), server.network());
  if (!writer.ok()) return writer.status();
  Workload workload(&server.network(), &server.spatial_index(),
                    spec.workload);
  RecordingWorkloadSource recorder(&workload, &*writer);
  SimulationOptions options;
  options.timestamps = spec.timestamps;
  options.measure_memory = spec.measure_memory;
  RunMetrics metrics = RunSimulation(&server, &recorder, options);
  CKNN_RETURN_NOT_OK(recorder.status());
  CKNN_RETURN_NOT_OK(writer->Finish());
  return metrics;
}

Result<RunMetrics> RunTraceReplay(Algorithm algorithm, const Trace& trace,
                                  bool measure_memory, int shards,
                                  int pipeline_depth, int tiles) {
  MonitoringServer server(trace.network.SharedView(), algorithm, shards,
                          pipeline_depth, tiles);
  TraceWorkloadSource source(&trace);
  {
    const Status st = server.Tick(source.Initial());
    if (!st.ok()) {
      // Tick indices match the trace's batch order and the conformance
      // report's timestamps: tick 0 is the initial batch.
      return Status::FailedPrecondition("replay tick 0 rejected: " +
                                        st.message());
    }
  }
  RunMetrics metrics;
  const int steps = source.NumSteps();
  metrics.steps.reserve(static_cast<std::size_t>(steps));
  // Same CPU-window convention as RunSimulation: per-submit windows at
  // depth 1, contiguous windows (decode + submit) at depth >= 2, where
  // the in-flight tick burns CPU while the next batch is decoded.
  const bool pipelined = server.pipeline_depth() > 1;
  CpuStopwatch cpu;
  for (int ts = 0; ts < steps; ++ts) {
    // On a pipelined server the batch is pulled from the trace while the
    // previous tick's maintenance is still running.
    const UpdateBatch batch = source.Step();
    if (!pipelined) cpu.Reset();
    Stopwatch wall;
    const Status st = server.SubmitBatch(batch);
    if (measure_memory && st.ok()) CKNN_CHECK(server.Drain().ok());
    TimestepMetrics step;
    step.seconds = wall.ElapsedSeconds();
    step.cpu_seconds = cpu.ElapsedSeconds();
    cpu.Reset();
    if (!st.ok()) {
      return Status::FailedPrecondition("replay tick " +
                                        std::to_string(ts + 1) +
                                        " rejected: " + st.message());
    }
    if (measure_memory) step.memory_bytes = server.MonitorMemoryBytes();
    metrics.steps.push_back(step);
  }
  {
    Stopwatch wall;
    cpu.Reset();
    CKNN_CHECK(server.Drain().ok());
    if (!metrics.steps.empty()) {
      metrics.steps.back().seconds += wall.ElapsedSeconds();
      metrics.steps.back().cpu_seconds += cpu.ElapsedSeconds();
    }
  }
  return metrics;
}

SeriesTable::SeriesTable(std::string title, std::string x_label,
                         std::vector<std::string> series_names,
                         std::string unit)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      series_names_(std::move(series_names)),
      unit_(std::move(unit)) {}

void SeriesTable::AddRow(const std::string& x,
                         const std::vector<double>& values) {
  CKNN_CHECK(values.size() == series_names_.size());
  rows_.push_back(Row{x, values});
}

void SeriesTable::Print(std::ostream& os) const {
  os << "\n== " << title_ << " (" << unit_ << ") ==\n";
  os << std::left << std::setw(18) << x_label_;
  for (const std::string& name : series_names_) {
    os << std::right << std::setw(14) << name;
  }
  os << '\n';
  for (const Row& row : rows_) {
    os << std::left << std::setw(18) << row.x;
    for (double v : row.values) {
      os << std::right << std::setw(14) << std::fixed
         << std::setprecision(6) << v;
    }
    os << '\n';
  }
  os.flush();
}

}  // namespace cknn

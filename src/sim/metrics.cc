#include "src/sim/metrics.h"

#include <algorithm>
#include <cmath>

namespace cknn {

namespace {

/// splitmix64 step: cheap, stateless-per-call, and good enough for
/// reservoir replacement decisions.
std::uint64_t NextRandom(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Nearest-rank percentile of an unsorted sample vector (copied so the
/// caller's order — which Algorithm R depends on — is preserved).
double NearestRank(std::vector<double> samples, double pct) {
  if (samples.empty()) return 0.0;
  pct = std::min(100.0, std::max(0.0, pct));
  std::sort(samples.begin(), samples.end());
  // Nearest-rank: ceil(p/100 * n), 1-based; p=0 maps to the minimum.
  const double n = static_cast<double>(samples.size());
  std::size_t rank =
      static_cast<std::size_t>(std::ceil(pct / 100.0 * n));
  if (rank == 0) rank = 1;
  return samples[rank - 1];
}

}  // namespace

LatencyReservoir::LatencyReservoir(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity == 0 ? 1 : capacity), state_(seed) {
  samples_.reserve(capacity_);
}

void LatencyReservoir::Add(double sample) {
  ++count_;
  max_ = std::max(max_, sample);
  if (samples_.size() < capacity_) {
    samples_.push_back(sample);
    return;
  }
  // Algorithm R: the i-th sample (1-based) replaces a random slot with
  // probability capacity/i.
  const std::uint64_t slot = NextRandom(&state_) % count_;
  if (slot < capacity_) samples_[static_cast<std::size_t>(slot)] = sample;
}

double LatencyReservoir::Percentile(double pct) const {
  return NearestRank(samples_, pct);
}

void LatencyReservoir::Clear() {
  count_ = 0;
  max_ = 0.0;
  samples_.clear();
}

double RunMetrics::TotalSeconds() const {
  double total = 0.0;
  for (const TimestepMetrics& m : steps) total += m.seconds;
  return total;
}

double RunMetrics::AvgSeconds() const {
  return steps.empty() ? 0.0
                       : TotalSeconds() / static_cast<double>(steps.size());
}

double RunMetrics::MaxSeconds() const {
  double best = 0.0;
  for (const TimestepMetrics& m : steps) best = std::max(best, m.seconds);
  return best;
}

double RunMetrics::TotalCpuSeconds() const {
  double total = 0.0;
  for (const TimestepMetrics& m : steps) total += m.cpu_seconds;
  return total;
}

double RunMetrics::AvgCpuSeconds() const {
  return steps.empty()
             ? 0.0
             : TotalCpuSeconds() / static_cast<double>(steps.size());
}

double RunMetrics::MaxCpuSeconds() const {
  double best = 0.0;
  for (const TimestepMetrics& m : steps) best = std::max(best, m.cpu_seconds);
  return best;
}

double RunMetrics::AvgMemoryKb() const {
  if (steps.empty()) return 0.0;
  double total = 0.0;
  for (const TimestepMetrics& m : steps) {
    total += static_cast<double>(m.memory_bytes);
  }
  return total / static_cast<double>(steps.size()) / 1024.0;
}

double RunMetrics::PercentileSeconds(double pct) const {
  std::vector<double> wall;
  wall.reserve(steps.size());
  for (const TimestepMetrics& m : steps) wall.push_back(m.seconds);
  return NearestRank(std::move(wall), pct);
}

}  // namespace cknn

#include "src/sim/metrics.h"

#include <algorithm>

namespace cknn {

double RunMetrics::TotalSeconds() const {
  double total = 0.0;
  for (const TimestepMetrics& m : steps) total += m.seconds;
  return total;
}

double RunMetrics::AvgSeconds() const {
  return steps.empty() ? 0.0
                       : TotalSeconds() / static_cast<double>(steps.size());
}

double RunMetrics::MaxSeconds() const {
  double best = 0.0;
  for (const TimestepMetrics& m : steps) best = std::max(best, m.seconds);
  return best;
}

double RunMetrics::TotalCpuSeconds() const {
  double total = 0.0;
  for (const TimestepMetrics& m : steps) total += m.cpu_seconds;
  return total;
}

double RunMetrics::AvgCpuSeconds() const {
  return steps.empty()
             ? 0.0
             : TotalCpuSeconds() / static_cast<double>(steps.size());
}

double RunMetrics::MaxCpuSeconds() const {
  double best = 0.0;
  for (const TimestepMetrics& m : steps) best = std::max(best, m.cpu_seconds);
  return best;
}

double RunMetrics::AvgMemoryKb() const {
  if (steps.empty()) return 0.0;
  double total = 0.0;
  for (const TimestepMetrics& m : steps) {
    total += static_cast<double>(m.memory_bytes);
  }
  return total / static_cast<double>(steps.size()) / 1024.0;
}

}  // namespace cknn

#ifndef CKNN_SIM_CONFORMANCE_H_
#define CKNN_SIM_CONFORMANCE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/server.h"
#include "src/gen/workload.h"
#include "src/trace/trace.h"
#include "src/util/result.h"

namespace cknn {

struct ConformanceOptions {
  /// Algorithms replayed in lockstep; the first one is the baseline every
  /// other one is compared against.
  std::vector<Algorithm> algorithms = {Algorithm::kOvh, Algorithm::kIma,
                                       Algorithm::kGma};
  /// Relative distance tolerance of the per-rank comparison. Result ids may
  /// legitimately differ between algorithms under exact distance ties, so
  /// equality is asserted on the sorted distance multisets.
  double tolerance = 1e-7;
  /// Worker shards of every server built for the check (1 = serial).
  int shards = 1;
  /// Ingest pipeline depth of every server built for the check (1 =
  /// synchronous ticks, 2 = asynchronous ingest; the lockstep loop drains
  /// after every tick, so the comparison stays per-timestamp).
  int pipeline_depth = 1;
  /// Weight-storage region tiles of every server built for the check
  /// (1 = flat; docs/tiling.md). An execution detail like `shards`.
  int tiles = 1;
};

/// \brief First point where two algorithms disagreed.
struct ConformanceDivergence {
  std::uint64_t timestamp = 0;  ///< Tick index (0 = the initial batch).
  QueryId query = kInvalidQuery;
  Algorithm baseline = Algorithm::kOvh;
  Algorithm other = Algorithm::kOvh;
  /// Human-readable description of the first diverging neighbor (rank, ids,
  /// distances) or of a result-set presence/size mismatch.
  std::string detail;
};

struct ConformanceReport {
  bool ok = true;
  std::uint64_t timestamps = 0;         ///< Ticks replayed.
  std::uint64_t queries_compared = 0;   ///< Query-result comparisons made.
  std::optional<ConformanceDivergence> divergence;

  /// One-paragraph summary ("conformance OK ..." or the divergence).
  std::string ToString() const;
};

/// \brief Replays one batch stream through several pre-built servers in
/// lockstep and compares every live query's k-NN set after each tick.
///
/// All servers must be built on views (or clones) of the same network. Stops at the
/// first divergence. `steps` bounds the number of `Step()` calls after
/// `Initial()`. Infrastructure failures (a server rejecting a batch) are
/// reported as error Status, divergences through the report.
///
/// Exposed separately from `CheckTraceConformance` so tests can inject
/// deliberately inconsistent servers and generators can be checked without
/// touching disk.
Result<ConformanceReport> RunLockstep(
    const std::vector<MonitoringServer*>& servers, WorkloadSource* source,
    int steps, double tolerance);

/// Builds one monitoring server per algorithm (each with `shards` worker
/// shards, `pipeline_depth` ingest depth, and `tiles` weight tiles), each
/// on its own shared-topology view of `network` — the lockstep setup
/// shared by `CheckTraceConformance` and the CLI's generated-conformance
/// mode.
std::vector<std::unique_ptr<MonitoringServer>> BuildLockstepServers(
    const RoadNetwork& network, const std::vector<Algorithm>& algorithms,
    int shards = 1, int pipeline_depth = 1, int tiles = 1);

/// \brief The differential oracle of this repo: replays `trace` through
/// every algorithm in `options.algorithms` and asserts per-timestamp
/// result-set equality (distance-tie tolerant). The paper's central claim —
/// IMA (Section 4) and GMA (Section 5) maintain exactly the results OVH
/// recomputes from scratch — becomes a checkable property of any recorded
/// workload.
Result<ConformanceReport> CheckTraceConformance(
    const Trace& trace, const ConformanceOptions& options = {});

}  // namespace cknn

#endif  // CKNN_SIM_CONFORMANCE_H_

#include "src/trace/trace_source.h"

#include "src/util/macros.h"

namespace cknn {

TraceWorkloadSource::TraceWorkloadSource(const Trace* trace) : trace_(trace) {
  CKNN_CHECK(trace_ != nullptr);
}

UpdateBatch TraceWorkloadSource::Initial() {
  CKNN_CHECK(next_ == 0);
  next_ = 1;  // Even an empty trace consumes its (absent) initial tick.
  if (trace_->batches.empty()) return UpdateBatch{};
  return trace_->batches[0];
}

UpdateBatch TraceWorkloadSource::Step() {
  CKNN_CHECK(next_ > 0);  // Initial() must run first.
  if (next_ >= trace_->batches.size()) return UpdateBatch{};
  return trace_->batches[next_++];
}

std::size_t TraceWorkloadSource::StepsRemaining() const {
  return next_ >= trace_->batches.size() ? 0 : trace_->batches.size() - next_;
}

int TraceWorkloadSource::NumSteps() const {
  return trace_->batches.empty()
             ? 0
             : static_cast<int>(trace_->batches.size()) - 1;
}

RecordingWorkloadSource::RecordingWorkloadSource(
    WorkloadSource* inner, TraceWriter* writer,
    std::vector<UpdateBatch>* capture)
    : inner_(inner), writer_(writer), capture_(capture) {
  CKNN_CHECK(inner_ != nullptr);
  CKNN_CHECK(writer_ != nullptr || capture_ != nullptr);
}

UpdateBatch RecordingWorkloadSource::Record(UpdateBatch batch) {
  if (writer_ != nullptr) {
    const Status st = writer_->AppendBatch(batch);
    if (status_.ok() && !st.ok()) status_ = st;
  }
  if (capture_ != nullptr) capture_->push_back(batch);
  return batch;
}

UpdateBatch RecordingWorkloadSource::Initial() {
  return Record(inner_->Initial());
}

UpdateBatch RecordingWorkloadSource::Step() {
  return Record(inner_->Step());
}

}  // namespace cknn

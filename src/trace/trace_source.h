#ifndef CKNN_TRACE_TRACE_SOURCE_H_
#define CKNN_TRACE_TRACE_SOURCE_H_

#include <cstddef>
#include <vector>

#include "src/gen/workload.h"
#include "src/trace/trace.h"

namespace cknn {

/// \brief Replays a recorded trace through the standard `WorkloadSource`
/// interface: `Initial()` yields the trace's first batch, every `Step()`
/// the next one. Once the trace is exhausted, `Step()` returns empty
/// batches, so a longer simulation horizon degrades to a quiescent network
/// instead of dying.
class TraceWorkloadSource : public WorkloadSource {
 public:
  /// `trace` must outlive the source.
  explicit TraceWorkloadSource(const Trace* trace);

  UpdateBatch Initial() override;
  UpdateBatch Step() override;

  /// Number of `Step()` calls the trace still covers.
  std::size_t StepsRemaining() const;

  /// The simulation horizon the trace was recorded over (batches minus the
  /// initial tick).
  int NumSteps() const;

 private:
  const Trace* trace_;
  std::size_t next_ = 0;
};

/// \brief Tees another workload source: every batch handed to the
/// simulation is also appended to a `TraceWriter` and/or captured into an
/// in-memory batch vector. Wrap any generator with this to record a run.
class RecordingWorkloadSource : public WorkloadSource {
 public:
  /// `inner` must outlive the source; `writer` and `capture` may each be
  /// null. Call `writer->Finish()` yourself after the run.
  RecordingWorkloadSource(WorkloadSource* inner, TraceWriter* writer,
                          std::vector<UpdateBatch>* capture = nullptr);

  UpdateBatch Initial() override;
  UpdateBatch Step() override;

  /// First write error encountered while appending, OK otherwise. Batches
  /// keep flowing to the simulation even after a write error.
  const Status& status() const { return status_; }

 private:
  UpdateBatch Record(UpdateBatch batch);

  WorkloadSource* inner_;
  TraceWriter* writer_;
  std::vector<UpdateBatch>* capture_;
  Status status_;
};

}  // namespace cknn

#endif  // CKNN_TRACE_TRACE_SOURCE_H_

#include "src/trace/trace.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "src/util/macros.h"

namespace cknn {

namespace {

std::string LineError(int line, const std::string& msg) {
  return "trace line " + std::to_string(line) + ": " + msg;
}

/// True iff the stream has nothing but whitespace left.
bool AtLineEnd(std::istringstream* ss) {
  std::string extra;
  return !(*ss >> extra);
}

/// Positions are serialized as "<edge> <t>" or the single token "-" for a
/// missing (appear/disappear) side.
void WritePosition(std::ostream& out, const std::optional<NetworkPoint>& p) {
  if (p.has_value()) {
    out << p->edge << ' ' << p->t;
  } else {
    out << '-';
  }
}

}  // namespace

// --------------------------------------------------------------- writer --

Result<TraceWriter> TraceWriter::Open(const std::string& path,
                                      const std::vector<TraceMeta>& meta,
                                      const RoadNetwork& network) {
  // Validate the metadata before touching the file, so a rejected call
  // cannot clobber an existing trace at `path`.
  for (const TraceMeta& m : meta) {
    if (m.key.empty()) return Status::InvalidArgument("empty trace meta key");
    for (char c : m.key) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        return Status::InvalidArgument("whitespace in trace meta key: " +
                                       m.key);
      }
    }
    if (m.value.find('\n') != std::string::npos) {
      return Status::InvalidArgument("newline in trace meta value for key " +
                                     m.key);
    }
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  // Precision 17 makes double round-trips exact: the reader recovers the
  // identical bit pattern, so write -> read -> write is byte-identical.
  out << std::setprecision(17);
  out << "CKNNTRACE " << kTraceFormatVersion << '\n';
  for (const TraceMeta& m : meta) {
    out << "meta " << m.key << ' ' << m.value << '\n';
  }
  out << "network " << network.NumNodes() << ' ' << network.NumEdges()
      << '\n';
  for (NodeId n = 0; n < network.NumNodes(); ++n) {
    const Point& p = network.NodePosition(n);
    out << "n " << p.x << ' ' << p.y << '\n';
  }
  for (EdgeId e = 0; e < network.NumEdges(); ++e) {
    const RoadNetwork::Edge& ed = network.edge(e);
    out << "e " << ed.u << ' ' << ed.v << ' ' << ed.length << ' ' << ed.weight
        << '\n';
  }
  if (!out) return Status::IoError("write failure on " + path);
  return TraceWriter(std::move(out));
}

Status TraceWriter::AppendBatch(const UpdateBatch& batch) {
  if (finished_) {
    return Status::FailedPrecondition("trace writer already finished");
  }
  out_ << "batch " << batch.objects.size() << ' ' << batch.queries.size()
       << ' ' << batch.edges.size() << '\n';
  for (const ObjectUpdate& u : batch.objects) {
    out_ << "o " << u.id << ' ';
    WritePosition(out_, u.old_pos);
    out_ << ' ';
    WritePosition(out_, u.new_pos);
    out_ << '\n';
  }
  for (const QueryUpdate& u : batch.queries) {
    switch (u.kind) {
      case QueryUpdate::Kind::kInstall:
        out_ << "q i " << u.id << ' ' << u.pos.edge << ' ' << u.pos.t << ' '
             << u.k << '\n';
        break;
      case QueryUpdate::Kind::kMove:
        out_ << "q m " << u.id << ' ' << u.pos.edge << ' ' << u.pos.t << '\n';
        break;
      case QueryUpdate::Kind::kTerminate:
        out_ << "q t " << u.id << '\n';
        break;
    }
  }
  for (const EdgeUpdate& u : batch.edges) {
    out_ << "w " << u.edge << ' ' << u.new_weight << '\n';
  }
  out_ << "end\n";
  if (!out_) return Status::IoError("write failure while appending batch");
  ++batches_written_;
  return Status::OK();
}

Status TraceWriter::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("trace writer already finished");
  }
  finished_ = true;
  out_ << "eot " << batches_written_ << '\n';
  out_.close();
  if (!out_) return Status::IoError("write failure on trace trailer");
  return Status::OK();
}

// --------------------------------------------------------------- reader --

Result<TraceReader> TraceReader::Open(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  TraceReader reader(std::move(in));
  const Status st = reader.ParseHeader();
  if (!st.ok()) return st;
  return reader;
}

namespace {

/// Reads the next significant line (skipping blank lines and '#' comments,
/// which hand-authored traces may contain; CRLF endings are stripped so
/// meta values and markers parse identically). Returns false on EOF.
bool NextSignificantLine(std::ifstream* in, int* line_number,
                         std::string* line) {
  while (std::getline(*in, *line)) {
    ++*line_number;
    if (!line->empty() && line->back() == '\r') line->pop_back();
    std::size_t i = 0;
    while (i < line->size() &&
           std::isspace(static_cast<unsigned char>((*line)[i]))) {
      ++i;
    }
    if (i == line->size() || (*line)[i] == '#') continue;
    return true;
  }
  return false;
}

Status ParsePosition(std::istringstream* ss, int line,
                     std::size_t num_edges,
                     std::optional<NetworkPoint>* out) {
  std::string token;
  if (!(*ss >> token)) {
    return Status::IoError(LineError(line, "missing position"));
  }
  if (token == "-") {
    out->reset();
    return Status::OK();
  }
  std::istringstream edge_ss(token);
  EdgeId edge = 0;
  double t = 0.0;
  if (!(edge_ss >> edge) || !AtLineEnd(&edge_ss) || !(*ss >> t)) {
    return Status::IoError(LineError(line, "malformed position"));
  }
  if (edge >= num_edges) {
    return Status::InvalidArgument(
        LineError(line, "position on unknown edge"));
  }
  if (!(t >= 0.0 && t <= 1.0)) {
    return Status::InvalidArgument(
        LineError(line, "position parameter outside [0, 1]"));
  }
  *out = NetworkPoint{edge, t};
  return Status::OK();
}

}  // namespace

Status TraceReader::ParseHeader() {
  std::string line;
  if (!NextSignificantLine(&in_, &line_number_, &line)) {
    return Status::IoError("empty trace file");
  }
  {
    std::istringstream ss(line);
    std::string magic;
    if (!(ss >> magic >> version_) || !AtLineEnd(&ss) ||
        magic != "CKNNTRACE") {
      return Status::IoError(LineError(line_number_, "bad trace magic"));
    }
    if (version_ != kTraceFormatVersion) {
      return Status::InvalidArgument(
          LineError(line_number_, "unsupported trace version " +
                                      std::to_string(version_)));
    }
  }
  // Metadata lines up to the mandatory network line.
  std::size_t num_nodes = 0;
  std::size_t num_edges = 0;
  while (true) {
    if (!NextSignificantLine(&in_, &line_number_, &line)) {
      return Status::IoError("trace truncated before network section");
    }
    std::istringstream ss(line);
    std::string kind;
    ss >> kind;
    if (kind == "meta") {
      TraceMeta m;
      if (!(ss >> m.key)) {
        return Status::IoError(LineError(line_number_, "malformed meta"));
      }
      std::getline(ss, m.value);
      if (!m.value.empty() && m.value[0] == ' ') m.value.erase(0, 1);
      meta_.push_back(std::move(m));
      continue;
    }
    if (kind == "network") {
      if (!(ss >> num_nodes >> num_edges) || !AtLineEnd(&ss)) {
        return Status::IoError(
            LineError(line_number_, "malformed network line"));
      }
      break;
    }
    return Status::IoError(
        LineError(line_number_, "expected meta or network, got " + kind));
  }
  for (std::size_t i = 0; i < num_nodes; ++i) {
    if (!NextSignificantLine(&in_, &line_number_, &line)) {
      return Status::IoError("trace truncated in node list");
    }
    std::istringstream ss(line);
    std::string kind;
    double x = 0.0;
    double y = 0.0;
    if (!(ss >> kind >> x >> y) || !AtLineEnd(&ss) || kind != "n") {
      return Status::IoError(LineError(line_number_, "malformed node line"));
    }
    network_.AddNode(Point{x, y});
  }
  for (std::size_t i = 0; i < num_edges; ++i) {
    if (!NextSignificantLine(&in_, &line_number_, &line)) {
      return Status::IoError("trace truncated in edge list");
    }
    std::istringstream ss(line);
    std::string kind;
    NodeId u = 0;
    NodeId v = 0;
    double length = 0.0;
    double weight = 0.0;
    if (!(ss >> kind >> u >> v >> length >> weight) || !AtLineEnd(&ss) ||
        kind != "e") {
      return Status::IoError(LineError(line_number_, "malformed edge line"));
    }
    auto added = network_.AddEdge(u, v, length);
    if (!added.ok()) {
      return Status::InvalidArgument(
          LineError(line_number_, added.status().message()));
    }
    if (weight != length) {
      const Status st = network_.SetWeight(added.value(), weight);
      if (!st.ok()) {
        return Status::InvalidArgument(
            LineError(line_number_, st.message()));
      }
    }
  }
  return Status::OK();
}

Result<bool> TraceReader::NextBatch(UpdateBatch* out) {
  const std::size_t num_edges = network_.NumEdges();
  std::string line;
  if (!NextSignificantLine(&in_, &line_number_, &line)) {
    return Status::IoError(
        "trace truncated: missing end-of-trace trailer (eot)");
  }
  std::istringstream header(line);
  std::string kind;
  header >> kind;
  if (kind == "eot") {
    std::uint64_t count = 0;
    if (!(header >> count) || !AtLineEnd(&header)) {
      return Status::IoError(LineError(line_number_, "malformed trailer"));
    }
    if (count != batches_read_) {
      return Status::IoError(
          LineError(line_number_, "trailer batch count mismatch: trailer says " +
                                      std::to_string(count) + ", read " +
                                      std::to_string(batches_read_)));
    }
    if (NextSignificantLine(&in_, &line_number_, &line)) {
      return Status::IoError(
          LineError(line_number_, "content after end-of-trace trailer"));
    }
    return false;
  }
  std::size_t num_objects = 0;
  std::size_t num_queries = 0;
  std::size_t num_weights = 0;
  if (kind != "batch" ||
      !(header >> num_objects >> num_queries >> num_weights) ||
      !AtLineEnd(&header)) {
    return Status::IoError(LineError(line_number_, "malformed batch header"));
  }
  *out = UpdateBatch{};
  // The header counts are untrusted input: cap the reservations so a
  // corrupt count degrades to incremental growth (and a clean truncation
  // error below) instead of a length_error/bad_alloc abort.
  constexpr std::size_t kReserveCap = 1u << 20;
  out->objects.reserve(std::min(num_objects, kReserveCap));
  out->queries.reserve(std::min(num_queries, kReserveCap));
  out->edges.reserve(std::min(num_weights, kReserveCap));
  for (std::size_t i = 0; i < num_objects; ++i) {
    if (!NextSignificantLine(&in_, &line_number_, &line)) {
      return Status::IoError("trace truncated in object records");
    }
    std::istringstream ss(line);
    ObjectUpdate u;
    if (!(ss >> kind >> u.id) || kind != "o") {
      return Status::IoError(
          LineError(line_number_, "malformed object record"));
    }
    Status st = ParsePosition(&ss, line_number_, num_edges, &u.old_pos);
    if (!st.ok()) return st;
    st = ParsePosition(&ss, line_number_, num_edges, &u.new_pos);
    if (!st.ok()) return st;
    if (!AtLineEnd(&ss)) {
      return Status::IoError(
          LineError(line_number_, "trailing data in object record"));
    }
    out->objects.push_back(u);
  }
  for (std::size_t i = 0; i < num_queries; ++i) {
    if (!NextSignificantLine(&in_, &line_number_, &line)) {
      return Status::IoError("trace truncated in query records");
    }
    std::istringstream ss(line);
    std::string op;
    QueryUpdate u;
    if (!(ss >> kind >> op >> u.id) || kind != "q") {
      return Status::IoError(
          LineError(line_number_, "malformed query record"));
    }
    std::optional<NetworkPoint> pos;
    if (op == "i") {
      u.kind = QueryUpdate::Kind::kInstall;
      const Status st = ParsePosition(&ss, line_number_, num_edges, &pos);
      if (!st.ok()) return st;
      if (!pos.has_value() || !(ss >> u.k) || u.k < 1) {
        return Status::IoError(
            LineError(line_number_, "malformed query install record"));
      }
      u.pos = *pos;
    } else if (op == "m") {
      u.kind = QueryUpdate::Kind::kMove;
      const Status st = ParsePosition(&ss, line_number_, num_edges, &pos);
      if (!st.ok()) return st;
      if (!pos.has_value()) {
        return Status::IoError(
            LineError(line_number_, "malformed query move record"));
      }
      u.pos = *pos;
      u.k = 0;
    } else if (op == "t") {
      u.kind = QueryUpdate::Kind::kTerminate;
      u.pos = NetworkPoint{};
      u.k = 0;
    } else {
      return Status::IoError(
          LineError(line_number_, "unknown query op '" + op + "'"));
    }
    if (!AtLineEnd(&ss)) {
      return Status::IoError(
          LineError(line_number_, "trailing data in query record"));
    }
    out->queries.push_back(u);
  }
  for (std::size_t i = 0; i < num_weights; ++i) {
    if (!NextSignificantLine(&in_, &line_number_, &line)) {
      return Status::IoError("trace truncated in weight records");
    }
    std::istringstream ss(line);
    EdgeUpdate u;
    if (!(ss >> kind >> u.edge >> u.new_weight) || !AtLineEnd(&ss) ||
        kind != "w") {
      return Status::IoError(
          LineError(line_number_, "malformed weight record"));
    }
    if (u.edge >= num_edges) {
      return Status::InvalidArgument(
          LineError(line_number_, "weight update for unknown edge"));
    }
    if (u.new_weight < 0.0) {
      return Status::InvalidArgument(
          LineError(line_number_, "negative edge weight"));
    }
    out->edges.push_back(u);
  }
  if (!NextSignificantLine(&in_, &line_number_, &line)) {
    return Status::IoError("trace truncated: missing batch end marker");
  }
  {
    // Tokenized like every other record, so CRLF endings and stray
    // whitespace don't break only the terminator.
    std::istringstream ss(line);
    std::string marker;
    if (!(ss >> marker) || marker != "end" || !AtLineEnd(&ss)) {
      return Status::IoError(
          LineError(line_number_, "expected batch end marker"));
    }
  }
  ++batches_read_;
  return true;
}

// --------------------------------------------------------- convenience --

Status WriteTrace(const Trace& trace, const std::string& path) {
  Result<TraceWriter> writer = TraceWriter::Open(path, trace.meta,
                                                 trace.network);
  if (!writer.ok()) return writer.status();
  for (const UpdateBatch& batch : trace.batches) {
    CKNN_RETURN_NOT_OK(writer->AppendBatch(batch));
  }
  return writer->Finish();
}

Result<Trace> ReadTrace(const std::string& path) {
  Result<TraceReader> reader = TraceReader::Open(path);
  if (!reader.ok()) return reader.status();
  Trace trace;
  trace.version = reader->version();
  trace.meta = reader->meta();
  UpdateBatch batch;
  while (true) {
    Result<bool> more = reader->NextBatch(&batch);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    trace.batches.push_back(std::move(batch));
    batch = UpdateBatch{};
  }
  trace.network = reader->TakeNetwork();
  return trace;
}

}  // namespace cknn

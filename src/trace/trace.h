#ifndef CKNN_TRACE_TRACE_H_
#define CKNN_TRACE_TRACE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/updates.h"
#include "src/graph/road_network.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace cknn {

/// Version of the on-disk trace format this build reads and writes. See
/// docs/trace_format.md for the layout and the versioning rules.
inline constexpr int kTraceFormatVersion = 1;

/// \brief One free-form metadata entry of a trace header (e.g. the
/// generator seed or the CLI flags the trace was recorded under). Keys
/// contain no whitespace; values run to the end of the line.
struct TraceMeta {
  std::string key;
  std::string value;
};

/// \brief A recorded monitoring workload: the road network it ran on
/// (topology, lengths, and the weights at recording start) plus the exact
/// per-timestamp update batches, in tick order.
///
/// `batches[0]` is the initial tick (object appearances and query
/// installations); every later entry is one timestamp of updates. Replaying
/// the batches against a server built on a clone of `network` reproduces
/// the recorded run bit-for-bit, for any monitoring algorithm — the
/// foundation of the cross-algorithm conformance checker.
struct Trace {
  int version = kTraceFormatVersion;
  std::vector<TraceMeta> meta;
  RoadNetwork network;
  std::vector<UpdateBatch> batches;
};

/// \brief Streaming trace writer. The header (version, metadata, network)
/// is written by `Open`; batches are appended one tick at a time, so
/// recording never buffers the whole workload. `Finish` writes the
/// end-of-trace trailer that lets readers detect truncated files.
class TraceWriter {
 public:
  static Result<TraceWriter> Open(const std::string& path,
                                  const std::vector<TraceMeta>& meta,
                                  const RoadNetwork& network);

  TraceWriter(TraceWriter&&) = default;
  TraceWriter& operator=(TraceWriter&&) = default;

  /// Appends one tick's batch. Order of calls defines the timestamps.
  Status AppendBatch(const UpdateBatch& batch);

  /// Writes the trailer and closes the file. Must be called exactly once;
  /// a trace without the trailer is reported as truncated on read.
  Status Finish();

  std::uint64_t batches_written() const { return batches_written_; }

 private:
  explicit TraceWriter(std::ofstream out) : out_(std::move(out)) {}

  std::ofstream out_;
  std::uint64_t batches_written_ = 0;
  bool finished_ = false;
};

/// \brief Streaming trace reader: parses the header eagerly, then yields
/// one batch per `NextBatch` call.
class TraceReader {
 public:
  static Result<TraceReader> Open(const std::string& path);

  TraceReader(TraceReader&&) = default;
  TraceReader& operator=(TraceReader&&) = default;

  int version() const { return version_; }
  const std::vector<TraceMeta>& meta() const { return meta_; }
  const RoadNetwork& network() const { return network_; }

  /// Moves the header's network out of the reader (callable once).
  RoadNetwork TakeNetwork() { return std::move(network_); }

  /// Reads the next batch into `*out`. Returns false at the (validated)
  /// end-of-trace trailer, an error on malformed or truncated input.
  Result<bool> NextBatch(UpdateBatch* out);

 private:
  explicit TraceReader(std::ifstream in) : in_(std::move(in)) {}

  Status ParseHeader();

  std::ifstream in_;
  int version_ = 0;
  std::vector<TraceMeta> meta_;
  RoadNetwork network_;
  std::uint64_t batches_read_ = 0;
  int line_number_ = 0;
};

/// Writes a whole in-memory trace (header + every batch + trailer).
Status WriteTrace(const Trace& trace, const std::string& path);

/// Reads a whole trace file. Validates the magic, version, network, record
/// syntax, and the end-of-trace trailer.
Result<Trace> ReadTrace(const std::string& path);

}  // namespace cknn

#endif  // CKNN_TRACE_TRACE_H_

#include "src/gen/brinkhoff.h"

#include <algorithm>

#include "src/graph/shortest_path.h"
#include "src/util/macros.h"

namespace cknn {

BrinkhoffGenerator::BrinkhoffGenerator(const RoadNetwork* net,
                                       const Config& config,
                                       std::uint32_t first_id)
    : net_(net),
      config_(config),
      rng_(config.seed),
      avg_edge_length_(net->AverageEdgeLength()),
      next_fresh_id_(first_id) {
  CKNN_CHECK(net_ != nullptr);
  CKNN_CHECK(net_->NumEdges() > 0);
  CKNN_CHECK(config_.num_classes >= 1);
  CKNN_CHECK(config_.churn >= 0.0 && config_.churn <= 1.0);
}

void BrinkhoffGenerator::NewRoute(std::uint32_t id, NodeId from) {
  Route& route = routes_[id];
  route.edges.clear();
  route.leg = 0;
  // Destinations are drawn from the local neighborhood (the endpoint of a
  // 10-40-hop node walk) rather than uniformly: trips stay city-block
  // sized, which matches the original generator's local movement and keeps
  // route planning O(small A*) for hundred-thousand-entity workloads.
  for (int attempt = 0; attempt < 8; ++attempt) {
    NodeId dest = from;
    EdgeId came_from = kInvalidEdge;
    const int hops = static_cast<int>(rng_.UniformInt(10, 40));
    for (int h = 0; h < hops; ++h) {
      const auto& incidences = net_->Incidences(dest);
      EdgeId next = incidences[rng_.NextIndex(incidences.size())].edge;
      if (incidences.size() > 1) {
        while (next == came_from) {
          next = incidences[rng_.NextIndex(incidences.size())].edge;
        }
      }
      dest = net_->OtherEndpoint(next, dest);
      came_from = next;
    }
    if (dest == from) continue;
    PathResult path = ShortestPath(*net_, from, dest, /*use_astar=*/true);
    if (path.reachable && !path.edges.empty()) {
      route.edges = std::move(path.edges);
      break;
    }
  }
  if (route.edges.empty()) {
    // Isolated node (should not happen): idle on an incident edge.
    route.edges.push_back(net_->Incidences(from)[0].edge);
  }
  const RoadNetwork::Edge& first = net_->edge(route.edges[0]);
  route.toward = first.u == from ? first.v : first.u;
}

NetworkPoint BrinkhoffGenerator::SpawnPosition(std::uint32_t id) {
  const NodeId start = static_cast<NodeId>(rng_.NextIndex(net_->NumNodes()));
  Route& route = routes_[id];
  route.speed_class = static_cast<int>(rng_.NextIndex(
      static_cast<std::uint64_t>(config_.num_classes)));
  NewRoute(id, start);
  const RoadNetwork::Edge& first = net_->edge(route.edges[0]);
  return NetworkPoint{route.edges[0], first.u == start ? 0.0 : 1.0};
}

NetworkPoint BrinkhoffGenerator::Advance(std::uint32_t id,
                                         const NetworkPoint& from) {
  Route& route = routes_.at(id);
  const double speed = config_.base_speed * avg_edge_length_ *
                       static_cast<double>(route.speed_class + 1) /
                       static_cast<double>(config_.num_classes);
  NetworkPoint pos = from;
  double remaining = speed;
  for (int guard = 0; guard < 10000 && remaining > 0.0; ++guard) {
    const RoadNetwork::Edge& ed = net_->edge(pos.edge);
    const bool toward_v = route.toward == ed.v;
    const double to_end = (toward_v ? 1.0 - pos.t : pos.t) * ed.length;
    if (remaining < to_end) {
      const double dt = remaining / ed.length;
      pos.t += toward_v ? dt : -dt;
      return pos;
    }
    remaining -= to_end;
    const NodeId node = route.toward;
    ++route.leg;
    if (route.leg >= route.edges.size()) {
      NewRoute(id, node);  // Arrived: re-route from the destination.
    }
    const EdgeId next = route.edges[route.leg];
    const RoadNetwork::Edge& ned = net_->edge(next);
    pos.edge = next;
    pos.t = ned.u == node ? 0.0 : 1.0;
    route.toward = ned.u == node ? ned.v : ned.u;
  }
  return pos;
}

std::vector<BrinkhoffGenerator::Transition> BrinkhoffGenerator::Initial() {
  std::vector<Transition> out;
  out.reserve(config_.num_entities);
  for (std::size_t i = 0; i < config_.num_entities; ++i) {
    const std::uint32_t id = next_fresh_id_++;
    const NetworkPoint pos = SpawnPosition(id);
    positions_[id] = pos;
    out.push_back(Transition{id, std::nullopt, pos});
  }
  return out;
}

std::vector<BrinkhoffGenerator::Transition> BrinkhoffGenerator::Step() {
  std::vector<Transition> out;
  out.reserve(positions_.size() + 16);
  // Churn: some entities leave the system, fresh ones replace them.
  const std::size_t churn_count = static_cast<std::size_t>(
      config_.churn * static_cast<double>(positions_.size()));
  if (churn_count > 0) {
    std::vector<std::uint32_t> ids;
    ids.reserve(positions_.size());
    for (const auto& [id, pos] : positions_) {
      (void)pos;
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());  // Determinism across map orders.
    rng_.Shuffle(&ids);
    for (std::size_t i = 0; i < churn_count; ++i) {
      const std::uint32_t id = ids[i];
      out.push_back(Transition{id, positions_[id], std::nullopt});
      positions_.erase(id);
      routes_.erase(id);
    }
    for (std::size_t i = 0; i < churn_count; ++i) {
      const std::uint32_t id = next_fresh_id_++;
      const NetworkPoint pos = SpawnPosition(id);
      positions_[id] = pos;
      out.push_back(Transition{id, std::nullopt, pos});
    }
  }
  // Movement: every surviving entity advances.
  std::vector<std::uint32_t> movers;
  movers.reserve(positions_.size());
  for (const auto& [id, pos] : positions_) {
    (void)pos;
    movers.push_back(id);
  }
  std::sort(movers.begin(), movers.end());
  for (std::uint32_t id : movers) {
    if (out.size() > 0 && !positions_.count(id)) continue;
    const NetworkPoint old_pos = positions_[id];
    const NetworkPoint new_pos = Advance(id, old_pos);
    if (!(new_pos == old_pos)) {
      positions_[id] = new_pos;
      out.push_back(Transition{id, old_pos, new_pos});
    }
  }
  return out;
}

}  // namespace cknn

#ifndef CKNN_GEN_NETWORK_GEN_H_
#define CKNN_GEN_NETWORK_GEN_H_

#include <cstdint>

#include "src/graph/road_network.h"

namespace cknn {

/// \brief Parameters of the synthetic road-network generator.
///
/// The generator substitutes the paper's San Francisco / Oldenburg maps
/// (see DESIGN.md): it produces a connected, planar, grid-based network
/// with jittered node coordinates, randomly deleted edges (a random
/// spanning tree is protected so connectivity is guaranteed) and randomly
/// subdivided edges (chains of degree-2 nodes). The result has the degree
/// profile of a real road graph — degrees 1-4 with long intersection-free
/// chains — which is exactly what GMA's sequence decomposition exploits.
struct NetworkGenConfig {
  /// Approximate number of edges of the result (within ~±20%).
  std::size_t target_edges = 10000;
  /// Probability that a non-spanning-tree grid edge is removed.
  double delete_fraction = 0.2;
  /// Probability that a surviving edge is subdivided into a chain.
  double subdivide_fraction = 0.5;
  /// Chains have 2..max_chain_hops sub-edges.
  int max_chain_hops = 4;
  /// Node coordinate jitter as a fraction of the grid cell.
  double jitter = 0.3;
  /// Grid cell side in world units (edge lengths scale with this).
  double cell_size = 100.0;
  std::uint64_t seed = 1;
};

/// Generates a synthetic road network. Always connected; edge weights are
/// initialized to Euclidean lengths.
RoadNetwork GenerateRoadNetwork(const NetworkGenConfig& config);

/// Preset approximating the Oldenburg map used in Figure 19
/// (6105 nodes / 7035 edges).
RoadNetwork GenerateOldenburgLike(std::uint64_t seed);

// CloneNetwork lives in src/graph/road_network.h (pulled in above); it
// used to be declared here.

}  // namespace cknn

#endif  // CKNN_GEN_NETWORK_GEN_H_

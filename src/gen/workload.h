#ifndef CKNN_GEN_WORKLOAD_H_
#define CKNN_GEN_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/core/updates.h"
#include "src/gen/brinkhoff.h"
#include "src/gen/placement.h"
#include "src/graph/road_network.h"
#include "src/spatial/pmr_quadtree.h"
#include "src/util/rng.h"

namespace cknn {

/// \brief The full parameter set of Table 2 with the paper's defaults.
struct WorkloadConfig {
  std::size_t num_objects = 100000;            ///< N
  std::size_t num_queries = 5000;              ///< Q
  Distribution object_distribution = Distribution::kUniform;
  Distribution query_distribution = Distribution::kGaussian;
  int k = 50;                                  ///< NNs per query
  double edge_agility = 0.04;                  ///< f_edg
  double object_agility = 0.10;                ///< f_obj
  double object_speed = 1.0;                   ///< v_obj (avg edge lengths/ts)
  double query_agility = 0.10;                 ///< f_qry
  double query_speed = 1.0;                    ///< v_qry
  double weight_magnitude = 0.10;              ///< ±10% weight steps
  double query_gaussian_stddev = 0.10;         ///< stddev fraction (queries)
  double object_gaussian_stddev = 0.50;        ///< stddev fraction (objects)
  std::uint64_t seed = 42;
};

/// \brief Source of per-timestamp update batches. The simulation driver is
/// agnostic to how updates are produced (Table-2 random walks or the
/// Brinkhoff-style generator).
class WorkloadSource {
 public:
  virtual ~WorkloadSource() = default;
  /// Appearance of all initial objects and installation of all queries.
  virtual UpdateBatch Initial() = 0;
  /// One timestamp of updates.
  virtual UpdateBatch Step() = 0;
};

/// \brief The simple generator of Section 6: uniform/Gaussian initial
/// placement, random-walk movement with per-type agility and speed, and
/// ±magnitude weight fluctuation with edge agility. Deterministic from the
/// seed, and independent of edge weights, so every algorithm sees an
/// identical update stream.
class Workload : public WorkloadSource {
 public:
  /// `net` and `spatial_index` must outlive the workload. Query ids are
  /// 0-based; object ids are 0-based in a separate id space.
  Workload(const RoadNetwork* net, const PmrQuadtree* spatial_index,
           const WorkloadConfig& config);

  UpdateBatch Initial() override;
  UpdateBatch Step() override;

  const WorkloadConfig& config() const { return config_; }
  const std::vector<NetworkPoint>& object_positions() const {
    return object_pos_;
  }
  const std::vector<NetworkPoint>& query_positions() const {
    return query_pos_;
  }

 private:
  const RoadNetwork* net_;
  const PmrQuadtree* spatial_index_;
  WorkloadConfig config_;
  Rng rng_;
  double avg_edge_length_;
  /// Shadow of the network's edge weights, advanced by the updates this
  /// workload emits. Generation reads only the shadow (plus immutable
  /// topology/geometry), so it can overlap a pipelined server's in-flight
  /// maintenance, which mutates the live weights (docs/pipeline.md).
  std::vector<double> weights_;
  std::vector<NetworkPoint> object_pos_;
  std::vector<NetworkPoint> query_pos_;
};

/// \brief Figure-19 workload: both objects and queries move along shortest
/// paths per the Brinkhoff-style generator; optional weight fluctuation.
class BrinkhoffWorkload : public WorkloadSource {
 public:
  struct Config {
    std::size_t num_objects = 64000;
    std::size_t num_queries = 8000;
    int k = 50;
    double edge_agility = 0.0;  ///< Fig. 19 uses the generator defaults.
    double weight_magnitude = 0.10;
    BrinkhoffGenerator::Config generator;  ///< Shared motion parameters.
  };

  BrinkhoffWorkload(const RoadNetwork* net, const Config& config);

  UpdateBatch Initial() override;
  UpdateBatch Step() override;

 private:
  UpdateBatch Convert(
      const std::vector<BrinkhoffGenerator::Transition>& object_moves,
      const std::vector<BrinkhoffGenerator::Transition>& query_moves);

  const RoadNetwork* net_;
  Config config_;
  Rng rng_;
  /// Shadow of the edge weights (see Workload::weights_).
  std::vector<double> weights_;
  /// Private shared-topology view the generators plan routes on:
  /// Brinkhoff routing runs shortest-path searches over edge *weights*,
  /// which on the live network a pipelined server's shard 0 mutates
  /// mid-flight. The view's private weight overlay is advanced with the
  /// weight updates this workload emits, so routes see exactly the
  /// weights a serial run would — at any pipeline depth.
  RoadNetwork route_net_;
  BrinkhoffGenerator objects_;
  BrinkhoffGenerator queries_;
};

}  // namespace cknn

#endif  // CKNN_GEN_WORKLOAD_H_

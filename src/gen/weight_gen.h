#ifndef CKNN_GEN_WEIGHT_GEN_H_
#define CKNN_GEN_WEIGHT_GEN_H_

#include <vector>

#include "src/core/updates.h"
#include "src/graph/road_network.h"
#include "src/util/rng.h"

namespace cknn {

/// \brief Traffic model of Section 6: at every timestamp a fraction
/// `edge_agility` of the edges receives a weight update that increases or
/// decreases the weight by `magnitude` (10% in the paper) over its previous
/// value. Edges are drawn without replacement; at most one update per edge
/// per timestamp. Reads the previous values from the live network.
std::vector<EdgeUpdate> GenerateWeightUpdates(const RoadNetwork& net,
                                              double edge_agility,
                                              double magnitude, Rng* rng);

/// Same traffic model over a caller-owned weight vector (one entry per
/// edge), read and updated in place. The workload generators use this
/// shadow instead of the live network, so a batch can be generated while
/// a pipelined server's shards are still applying the previous one to
/// their network copies (docs/pipeline.md) — the emitted values are
/// bit-identical as long as the server receives every weight change from
/// this generator, which is how every driver uses it.
std::vector<EdgeUpdate> GenerateWeightUpdates(std::vector<double>* weights,
                                              double edge_agility,
                                              double magnitude, Rng* rng);

/// Snapshot of the network's current per-edge weights — the shadow's
/// initial state.
std::vector<double> EdgeWeights(const RoadNetwork& net);

}  // namespace cknn

#endif  // CKNN_GEN_WEIGHT_GEN_H_

#ifndef CKNN_GEN_WEIGHT_GEN_H_
#define CKNN_GEN_WEIGHT_GEN_H_

#include <vector>

#include "src/core/updates.h"
#include "src/graph/road_network.h"
#include "src/util/rng.h"

namespace cknn {

/// \brief Traffic model of Section 6: at every timestamp a fraction
/// `edge_agility` of the edges receives a weight update that increases or
/// decreases the weight by `magnitude` (10% in the paper) over its previous
/// value. Edges are drawn without replacement; at most one update per edge
/// per timestamp.
std::vector<EdgeUpdate> GenerateWeightUpdates(const RoadNetwork& net,
                                              double edge_agility,
                                              double magnitude, Rng* rng);

}  // namespace cknn

#endif  // CKNN_GEN_WEIGHT_GEN_H_

#include "src/gen/network_gen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/util/macros.h"
#include "src/util/rng.h"

namespace cknn {

namespace {

/// Union-find over grid node indices (spanning-tree protection).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

RoadNetwork GenerateRoadNetwork(const NetworkGenConfig& config) {
  CKNN_CHECK(config.target_edges >= 4);
  CKNN_CHECK(config.delete_fraction >= 0.0 && config.delete_fraction < 1.0);
  CKNN_CHECK(config.subdivide_fraction >= 0.0 &&
             config.subdivide_fraction <= 1.0);
  CKNN_CHECK(config.max_chain_hops >= 2);
  Rng rng(config.seed);

  // Expected edge multipliers: (1 - delete * (non-tree share)) from
  // deletion, then (1 + subdivide * (avg_hops - 1)) from subdivision.
  const double avg_hops = (2.0 + config.max_chain_hops) / 2.0;
  const double subdivision_factor =
      1.0 + config.subdivide_fraction * (avg_hops - 1.0);
  // A g x g grid has 2g(g-1) edges, of which g^2 - 1 form the spanning tree.
  // Solve for g against the target, assuming roughly half the edges are
  // deletable non-tree edges.
  const double raw_target = static_cast<double>(config.target_edges) /
                            subdivision_factor /
                            (1.0 - 0.5 * config.delete_fraction);
  const int g = std::max(
      2, static_cast<int>(std::lround(0.5 + std::sqrt(raw_target / 2.0))));

  RoadNetwork net;
  // Grid nodes with jitter.
  std::vector<NodeId> grid(static_cast<std::size_t>(g) * g);
  for (int y = 0; y < g; ++y) {
    for (int x = 0; x < g; ++x) {
      const double jx = rng.Uniform(-config.jitter, config.jitter);
      const double jy = rng.Uniform(-config.jitter, config.jitter);
      grid[static_cast<std::size_t>(y) * g + x] =
          net.AddNode(Point{(x + jx) * config.cell_size,
                            (y + jy) * config.cell_size});
    }
  }
  // Candidate grid edges.
  struct Candidate {
    NodeId a;
    NodeId b;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(2 * static_cast<std::size_t>(g) * (g - 1));
  for (int y = 0; y < g; ++y) {
    for (int x = 0; x < g; ++x) {
      const NodeId here = grid[static_cast<std::size_t>(y) * g + x];
      if (x + 1 < g) {
        candidates.push_back(
            Candidate{here, grid[static_cast<std::size_t>(y) * g + x + 1]});
      }
      if (y + 1 < g) {
        candidates.push_back(Candidate{
            here, grid[(static_cast<std::size_t>(y) + 1) * g + x]});
      }
    }
  }
  // Random spanning tree (shuffled Kruskal): tree edges are kept
  // unconditionally, others survive with probability 1 - delete_fraction.
  rng.Shuffle(&candidates);
  UnionFind uf(net.NumNodes());
  std::vector<Candidate> kept;
  kept.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    if (uf.Union(c.a, c.b)) {
      kept.push_back(c);
    } else if (!rng.NextBool(config.delete_fraction)) {
      kept.push_back(c);
    }
  }
  // Subdivision into degree-2 chains; intermediate nodes stay on the
  // segment so chain length equals the original edge length.
  for (const Candidate& c : kept) {
    if (!rng.NextBool(config.subdivide_fraction)) {
      CKNN_CHECK(net.AddEdge(c.a, c.b).ok());
      continue;
    }
    const int hops =
        static_cast<int>(rng.UniformInt(2, config.max_chain_hops));
    NodeId prev = c.a;
    const Point pa = net.NodePosition(c.a);
    const Point pb = net.NodePosition(c.b);
    for (int h = 1; h < hops; ++h) {
      const double t = static_cast<double>(h) / hops;
      const NodeId mid = net.AddNode(Lerp(pa, pb, t));
      CKNN_CHECK(net.AddEdge(prev, mid).ok());
      prev = mid;
    }
    CKNN_CHECK(net.AddEdge(prev, c.b).ok());
  }
  return net;
}

RoadNetwork GenerateOldenburgLike(std::uint64_t seed) {
  NetworkGenConfig config;
  config.target_edges = 7035;
  config.delete_fraction = 0.25;
  config.subdivide_fraction = 0.6;
  config.max_chain_hops = 4;
  config.seed = seed;
  return GenerateRoadNetwork(config);
}

}  // namespace cknn

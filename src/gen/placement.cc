#include "src/gen/placement.h"

#include <algorithm>

#include "src/util/macros.h"

namespace cknn {

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "Uniform";
    case Distribution::kGaussian:
      return "Gaussian";
  }
  return "?";
}

std::vector<NetworkPoint> PlaceEntities(const RoadNetwork& net,
                                        const PmrQuadtree& spatial_index,
                                        Distribution distribution,
                                        std::size_t count,
                                        double stddev_frac, Rng* rng) {
  CKNN_CHECK(net.NumEdges() > 0);
  std::vector<NetworkPoint> out;
  out.reserve(count);
  if (distribution == Distribution::kUniform) {
    // Cumulative length table for length-proportional edge selection.
    std::vector<double> cumulative(net.NumEdges());
    double total = 0.0;
    for (EdgeId e = 0; e < net.NumEdges(); ++e) {
      total += net.edge(e).length;
      cumulative[e] = total;
    }
    for (std::size_t i = 0; i < count; ++i) {
      const double r = rng->Uniform(0.0, total);
      const auto it =
          std::lower_bound(cumulative.begin(), cumulative.end(), r);
      const EdgeId e =
          static_cast<EdgeId>(std::distance(cumulative.begin(), it));
      out.push_back(NetworkPoint{std::min<EdgeId>(e, net.NumEdges() - 1),
                                 rng->NextDouble()});
    }
    return out;
  }
  const Rect box = net.BoundingBox();
  const Point center{0.5 * (box.min_x + box.max_x),
                     0.5 * (box.min_y + box.max_y)};
  const double half_diag =
      0.5 * std::sqrt(box.Width() * box.Width() +
                      box.Height() * box.Height());
  const double stddev = stddev_frac * half_diag;
  for (std::size_t i = 0; i < count; ++i) {
    const Point p{rng->Gaussian(center.x, stddev),
                  rng->Gaussian(center.y, stddev)};
    auto hit = spatial_index.Nearest(p);
    CKNN_CHECK(hit.ok());
    out.push_back(NetworkPoint{static_cast<EdgeId>(hit->id), hit->t});
  }
  return out;
}

}  // namespace cknn

#ifndef CKNN_GEN_RANDOM_WALK_H_
#define CKNN_GEN_RANDOM_WALK_H_

#include "src/graph/network_point.h"
#include "src/graph/road_network.h"
#include "src/util/rng.h"

namespace cknn {

/// \brief The random-walk movement model of Section 6: a moving object
/// (query) covers a fixed geometric distance per timestamp, picking a
/// random next edge at every node it crosses (avoiding an immediate U-turn
/// when another choice exists).
///
/// Distances are measured along the static edge *lengths*, so movement is
/// unaffected by weight fluctuation — an entity's speed is a property of
/// the entity, not of traffic.
NetworkPoint RandomWalkStep(const RoadNetwork& net, const NetworkPoint& from,
                            double distance, Rng* rng);

}  // namespace cknn

#endif  // CKNN_GEN_RANDOM_WALK_H_

#include "src/gen/random_walk.h"

#include "src/util/macros.h"

namespace cknn {

NetworkPoint RandomWalkStep(const RoadNetwork& net, const NetworkPoint& from,
                            double distance, Rng* rng) {
  CKNN_CHECK(distance >= 0.0);
  NetworkPoint pos = from;
  // true: moving toward edge.v (t grows), false: toward edge.u.
  bool toward_v = rng->NextBool(0.5);
  double remaining = distance;
  // Safety valve against degenerate tiny-edge spirals.
  for (int hops = 0; hops < 10000 && remaining > 0.0; ++hops) {
    const RoadNetwork::Edge& ed = net.edge(pos.edge);
    const double to_end =
        (toward_v ? (1.0 - pos.t) : pos.t) * ed.length;
    if (remaining < to_end) {
      const double dt = remaining / ed.length;
      pos.t += toward_v ? dt : -dt;
      return pos;
    }
    remaining -= to_end;
    const NodeId node = toward_v ? ed.v : ed.u;
    // Pick the next edge: any incident edge except the one we came from,
    // unless the node is a dead end.
    const auto& incidences = net.Incidences(node);
    CKNN_DCHECK(!incidences.empty());
    EdgeId next = pos.edge;
    if (incidences.size() > 1) {
      do {
        next = incidences[rng->NextIndex(incidences.size())].edge;
      } while (next == pos.edge);
    }
    const RoadNetwork::Edge& ned = net.edge(next);
    pos.edge = next;
    if (ned.u == node) {
      pos.t = 0.0;
      toward_v = true;
    } else {
      pos.t = 1.0;
      toward_v = false;
    }
  }
  return pos;
}

}  // namespace cknn

#include "src/gen/weight_gen.h"

#include <unordered_set>

#include "src/util/macros.h"

namespace cknn {

std::vector<EdgeUpdate> GenerateWeightUpdates(const RoadNetwork& net,
                                              double edge_agility,
                                              double magnitude, Rng* rng) {
  CKNN_CHECK(edge_agility >= 0.0 && edge_agility <= 1.0);
  CKNN_CHECK(magnitude >= 0.0 && magnitude < 1.0);
  const std::size_t count = static_cast<std::size_t>(
      edge_agility * static_cast<double>(net.NumEdges()));
  std::vector<EdgeUpdate> out;
  out.reserve(count);
  std::unordered_set<EdgeId> chosen;
  chosen.reserve(count * 2);
  while (chosen.size() < count) {
    const EdgeId e = static_cast<EdgeId>(rng->NextIndex(net.NumEdges()));
    if (!chosen.insert(e).second) continue;
    const double factor = rng->NextBool(0.5) ? 1.0 + magnitude
                                             : 1.0 - magnitude;
    out.push_back(EdgeUpdate{e, net.edge(e).weight * factor});
  }
  return out;
}

}  // namespace cknn

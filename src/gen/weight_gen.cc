#include "src/gen/weight_gen.h"

#include <unordered_set>

#include "src/util/macros.h"

namespace cknn {

namespace {

/// Shared draw loop: `previous(e)` yields the weight an update multiplies,
/// `emitted(e, w)` observes the new value.
template <typename Previous, typename Emitted>
std::vector<EdgeUpdate> GenerateImpl(std::size_t num_edges,
                                     double edge_agility, double magnitude,
                                     Rng* rng, Previous previous,
                                     Emitted emitted) {
  CKNN_CHECK(edge_agility >= 0.0 && edge_agility <= 1.0);
  CKNN_CHECK(magnitude >= 0.0 && magnitude < 1.0);
  const std::size_t count = static_cast<std::size_t>(
      edge_agility * static_cast<double>(num_edges));
  std::vector<EdgeUpdate> out;
  out.reserve(count);
  std::unordered_set<EdgeId> chosen;
  chosen.reserve(count * 2);
  while (chosen.size() < count) {
    const EdgeId e = static_cast<EdgeId>(rng->NextIndex(num_edges));
    if (!chosen.insert(e).second) continue;
    const double factor = rng->NextBool(0.5) ? 1.0 + magnitude
                                             : 1.0 - magnitude;
    const double next = previous(e) * factor;
    out.push_back(EdgeUpdate{e, next});
    emitted(e, next);
  }
  return out;
}

}  // namespace

std::vector<EdgeUpdate> GenerateWeightUpdates(const RoadNetwork& net,
                                              double edge_agility,
                                              double magnitude, Rng* rng) {
  return GenerateImpl(
      net.NumEdges(), edge_agility, magnitude, rng,
      [&net](EdgeId e) { return net.WeightOf(e); }, [](EdgeId, double) {});
}

std::vector<EdgeUpdate> GenerateWeightUpdates(std::vector<double>* weights,
                                              double edge_agility,
                                              double magnitude, Rng* rng) {
  CKNN_CHECK(weights != nullptr);
  return GenerateImpl(
      weights->size(), edge_agility, magnitude, rng,
      [weights](EdgeId e) { return (*weights)[e]; },
      [weights](EdgeId e, double w) { (*weights)[e] = w; });
}

std::vector<double> EdgeWeights(const RoadNetwork& net) {
  std::vector<double> weights;
  weights.reserve(net.NumEdges());
  for (EdgeId e = 0; e < net.NumEdges(); ++e) {
    weights.push_back(net.WeightOf(e));
  }
  return weights;
}

}  // namespace cknn

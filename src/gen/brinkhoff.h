#ifndef CKNN_GEN_BRINKHOFF_H_
#define CKNN_GEN_BRINKHOFF_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/graph/network_point.h"
#include "src/graph/road_network.h"
#include "src/util/rng.h"

namespace cknn {

/// \brief Network-based moving-entity generator in the spirit of
/// Brinkhoff [2], used by the Figure-19 experiments (see DESIGN.md for the
/// substitution notes).
///
/// Each entity spawns at a random network node, draws a random destination
/// node, and follows the shortest (by length) path toward it at a speed
/// determined by its speed class; on arrival it re-routes to a fresh
/// destination. A configurable churn fraction of entities disappears each
/// timestamp and is replaced by newly appearing ones, keeping cardinality
/// constant while exercising the appear/disappear code paths.
class BrinkhoffGenerator {
 public:
  struct Config {
    std::size_t num_entities = 1000;
    /// Number of speed classes; class c moves at
    /// base_speed * (c + 1) / num_classes average edge lengths / timestamp.
    int num_classes = 6;
    double base_speed = 2.0;
    /// Fraction of entities replaced (disappear + appear) per timestamp.
    double churn = 0.02;
    std::uint64_t seed = 7;
  };

  /// One per-timestamp transition of an entity.
  struct Transition {
    std::uint32_t id = 0;
    std::optional<NetworkPoint> old_pos;  ///< nullopt: entity appears.
    std::optional<NetworkPoint> new_pos;  ///< nullopt: entity disappears.
  };

  /// `net` must outlive the generator; `first_id` offsets the entity ids so
  /// several generators (objects vs queries) can share an id space.
  BrinkhoffGenerator(const RoadNetwork* net, const Config& config,
                     std::uint32_t first_id);

  /// Initial appearance of all entities.
  std::vector<Transition> Initial();

  /// Advances every entity one timestamp.
  std::vector<Transition> Step();

  /// Current position of a live entity (tests / harness).
  const std::unordered_map<std::uint32_t, NetworkPoint>& positions() const {
    return positions_;
  }

 private:
  struct Route {
    /// Remaining edges to traverse, in order.
    std::vector<EdgeId> edges;
    /// Index of the edge the entity is on.
    std::size_t leg = 0;
    /// Node at the far end of the current leg.
    NodeId toward = kInvalidNode;
    int speed_class = 0;
  };

  NetworkPoint SpawnPosition(std::uint32_t id);
  /// Moves one entity by its per-timestamp distance; re-routes on arrival.
  NetworkPoint Advance(std::uint32_t id, const NetworkPoint& from);
  void NewRoute(std::uint32_t id, NodeId from);

  const RoadNetwork* net_;
  Config config_;
  Rng rng_;
  double avg_edge_length_;
  std::uint32_t next_fresh_id_;
  std::unordered_map<std::uint32_t, NetworkPoint> positions_;
  std::unordered_map<std::uint32_t, Route> routes_;
};

}  // namespace cknn

#endif  // CKNN_GEN_BRINKHOFF_H_

#ifndef CKNN_GEN_PLACEMENT_H_
#define CKNN_GEN_PLACEMENT_H_

#include <vector>

#include "src/graph/network_point.h"
#include "src/graph/road_network.h"
#include "src/spatial/pmr_quadtree.h"
#include "src/util/rng.h"

namespace cknn {

/// Initial-position distributions of Section 6 (Table 2).
enum class Distribution {
  kUniform,   ///< Uniform over the network (edge chosen by length).
  kGaussian,  ///< 2-D Gaussian around the workspace center, snapped to the
              ///< nearest edge through the spatial index.
};

const char* DistributionName(Distribution d);

/// \brief Draws `count` network positions.
///
/// Uniform positions pick an edge with probability proportional to its
/// length and a uniform offset on it. Gaussian positions sample Euclidean
/// points with mean at the workspace center and standard deviation
/// `stddev_frac` of the half-diagonal (the paper's "10% of the maximum
/// network distance from the center"), then snap them onto the network via
/// the PMR quadtree.
std::vector<NetworkPoint> PlaceEntities(const RoadNetwork& net,
                                        const PmrQuadtree& spatial_index,
                                        Distribution distribution,
                                        std::size_t count,
                                        double stddev_frac, Rng* rng);

}  // namespace cknn

#endif  // CKNN_GEN_PLACEMENT_H_

#include "src/gen/workload.h"

#include "src/gen/random_walk.h"
#include "src/gen/weight_gen.h"
#include "src/util/macros.h"

namespace cknn {

Workload::Workload(const RoadNetwork* net, const PmrQuadtree* spatial_index,
                   const WorkloadConfig& config)
    : net_(net),
      spatial_index_(spatial_index),
      config_(config),
      rng_(config.seed),
      avg_edge_length_(net->AverageEdgeLength()) {
  CKNN_CHECK(net_ != nullptr);
  CKNN_CHECK(spatial_index_ != nullptr);
  CKNN_CHECK(config_.k >= 1);
  weights_ = EdgeWeights(*net_);
}

UpdateBatch Workload::Initial() {
  UpdateBatch batch;
  object_pos_ =
      PlaceEntities(*net_, *spatial_index_, config_.object_distribution,
                    config_.num_objects, config_.object_gaussian_stddev,
                    &rng_);
  query_pos_ =
      PlaceEntities(*net_, *spatial_index_, config_.query_distribution,
                    config_.num_queries, config_.query_gaussian_stddev,
                    &rng_);
  batch.objects.reserve(object_pos_.size());
  for (std::size_t i = 0; i < object_pos_.size(); ++i) {
    batch.objects.push_back(ObjectUpdate{static_cast<ObjectId>(i),
                                         std::nullopt, object_pos_[i]});
  }
  batch.queries.reserve(query_pos_.size());
  for (std::size_t i = 0; i < query_pos_.size(); ++i) {
    batch.queries.push_back(QueryUpdate{static_cast<QueryId>(i),
                                        QueryUpdate::Kind::kInstall,
                                        query_pos_[i], config_.k});
  }
  return batch;
}

UpdateBatch Workload::Step() {
  UpdateBatch batch;
  // Objects: each moves with probability f_obj, covering v_obj average
  // edge lengths along a random walk.
  const double object_step = config_.object_speed * avg_edge_length_;
  for (std::size_t i = 0; i < object_pos_.size(); ++i) {
    if (!rng_.NextBool(config_.object_agility)) continue;
    const NetworkPoint old_pos = object_pos_[i];
    const NetworkPoint new_pos =
        RandomWalkStep(*net_, old_pos, object_step, &rng_);
    if (new_pos == old_pos) continue;
    object_pos_[i] = new_pos;
    batch.objects.push_back(
        ObjectUpdate{static_cast<ObjectId>(i), old_pos, new_pos});
  }
  // Queries: same movement model with their own agility/speed.
  const double query_step = config_.query_speed * avg_edge_length_;
  for (std::size_t i = 0; i < query_pos_.size(); ++i) {
    if (!rng_.NextBool(config_.query_agility)) continue;
    const NetworkPoint new_pos =
        RandomWalkStep(*net_, query_pos_[i], query_step, &rng_);
    if (new_pos == query_pos_[i]) continue;
    query_pos_[i] = new_pos;
    batch.queries.push_back(QueryUpdate{static_cast<QueryId>(i),
                                        QueryUpdate::Kind::kMove, new_pos,
                                        0});
  }
  // Edges: f_edg of the edges fluctuate by ±magnitude, tracked through
  // the shadow so generation never reads the live (possibly in-flight)
  // network weights.
  batch.edges = GenerateWeightUpdates(&weights_, config_.edge_agility,
                                      config_.weight_magnitude, &rng_);
  return batch;
}

BrinkhoffWorkload::BrinkhoffWorkload(const RoadNetwork* net,
                                     const Config& config)
    : net_(net),
      config_(config),
      rng_(config.generator.seed ^ 0xABCDEF1234567ULL),
      // Shared-topology view: routing shares the immutable graph, only
      // the privately advanced weights are duplicated.
      route_net_(net->SharedView()),
      objects_(&route_net_,
               [&] {
                 BrinkhoffGenerator::Config c = config.generator;
                 c.num_entities = config.num_objects;
                 return c;
               }(),
               /*first_id=*/0),
      queries_(&route_net_,
               [&] {
                 BrinkhoffGenerator::Config c = config.generator;
                 c.num_entities = config.num_queries;
                 c.seed = config.generator.seed + 0x5150;
                 return c;
               }(),
               /*first_id=*/0) {
  CKNN_CHECK(config_.k >= 1);
  weights_ = EdgeWeights(*net_);
}

UpdateBatch BrinkhoffWorkload::Convert(
    const std::vector<BrinkhoffGenerator::Transition>& object_moves,
    const std::vector<BrinkhoffGenerator::Transition>& query_moves) {
  UpdateBatch batch;
  batch.objects.reserve(object_moves.size());
  for (const auto& t : object_moves) {
    batch.objects.push_back(ObjectUpdate{t.id, t.old_pos, t.new_pos});
  }
  batch.queries.reserve(query_moves.size());
  for (const auto& t : query_moves) {
    if (!t.old_pos.has_value()) {
      batch.queries.push_back(QueryUpdate{
          t.id, QueryUpdate::Kind::kInstall, *t.new_pos, config_.k});
    } else if (!t.new_pos.has_value()) {
      batch.queries.push_back(
          QueryUpdate{t.id, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
    } else {
      batch.queries.push_back(
          QueryUpdate{t.id, QueryUpdate::Kind::kMove, *t.new_pos, 0});
    }
  }
  return batch;
}

UpdateBatch BrinkhoffWorkload::Initial() {
  return Convert(objects_.Initial(), queries_.Initial());
}

UpdateBatch BrinkhoffWorkload::Step() {
  UpdateBatch batch = Convert(objects_.Step(), queries_.Step());
  if (config_.edge_agility > 0.0) {
    batch.edges = GenerateWeightUpdates(&weights_, config_.edge_agility,
                                        config_.weight_magnitude, &rng_);
    // Keep the private routing network in step with the emitted updates,
    // mirroring what the server applies to the live one.
    for (const EdgeUpdate& u : batch.edges) {
      CKNN_CHECK(route_net_.SetWeight(u.edge, u.new_weight).ok());
    }
  }
  return batch;
}

}  // namespace cknn

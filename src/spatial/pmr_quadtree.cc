#include "src/spatial/pmr_quadtree.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_set>

#include "src/util/macros.h"

namespace cknn {

PmrQuadtree::PmrQuadtree(const Rect& bounds, int split_threshold,
                         int max_depth)
    : bounds_(bounds),
      split_threshold_(split_threshold),
      max_depth_(max_depth) {
  CKNN_CHECK(split_threshold_ >= 1);
  CKNN_CHECK(max_depth_ >= 1);
  nodes_.push_back(Node{{kNoChild, kNoChild, kNoChild, kNoChild}, {}});
}

Rect PmrQuadtree::ChildRect(const Rect& r, int quadrant) {
  const double mx = 0.5 * (r.min_x + r.max_x);
  const double my = 0.5 * (r.min_y + r.max_y);
  switch (quadrant) {
    case 0:
      return Rect{r.min_x, r.min_y, mx, my};  // SW
    case 1:
      return Rect{mx, r.min_y, r.max_x, my};  // SE
    case 2:
      return Rect{r.min_x, my, mx, r.max_y};  // NW
    default:
      return Rect{mx, my, r.max_x, r.max_y};  // NE
  }
}

Status PmrQuadtree::Insert(std::uint32_t id, const Segment& seg) {
  if (!bounds_.Contains(seg.a) || !bounds_.Contains(seg.b)) {
    return Status::InvalidArgument("segment outside quadtree bounds");
  }
  segments_.push_back(StoredSegment{id, seg});
  InsertInto(0, bounds_, 0,
             static_cast<std::uint32_t>(segments_.size() - 1),
             /*allow_split=*/true);
  return Status::OK();
}

void PmrQuadtree::InsertInto(std::uint32_t node_index, const Rect& quad,
                             int depth, std::uint32_t seg_index,
                             bool allow_split) {
  const Segment& seg = segments_[seg_index].seg;
  if (!SegmentIntersectsRect(seg, quad)) return;
  Node& node = nodes_[node_index];
  if (!IsLeaf(node)) {
    // Copy child ids: recursion may reallocate nodes_.
    std::uint32_t children[4];
    std::copy(std::begin(node.children), std::end(node.children), children);
    for (int c = 0; c < 4; ++c) {
      InsertInto(children[c], ChildRect(quad, c), depth + 1, seg_index,
                 allow_split);
    }
    return;
  }
  node.items.push_back(seg_index);
  // PMR rule: split at most once per insertion when over threshold.
  if (allow_split &&
      node.items.size() > static_cast<std::size_t>(split_threshold_) &&
      depth < max_depth_) {
    Split(node_index, quad, depth);
  }
}

void PmrQuadtree::Split(std::uint32_t node_index, const Rect& quad,
                        int depth) {
  std::vector<std::uint32_t> items = std::move(nodes_[node_index].items);
  nodes_[node_index].items.clear();
  std::uint32_t children[4];
  for (int c = 0; c < 4; ++c) {
    children[c] = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{{kNoChild, kNoChild, kNoChild, kNoChild}, {}});
  }
  std::copy(std::begin(children), std::end(children),
            std::begin(nodes_[node_index].children));
  for (std::uint32_t seg_index : items) {
    for (int c = 0; c < 4; ++c) {
      // PMR: children do not split further during a split.
      InsertInto(children[c], ChildRect(quad, c), depth + 1, seg_index,
                 /*allow_split=*/false);
    }
  }
}

std::vector<std::uint32_t> PmrQuadtree::Stabbing(const Point& p) const {
  std::vector<std::uint32_t> out;
  if (!bounds_.Contains(p)) return out;
  std::uint32_t index = 0;
  Rect quad = bounds_;
  while (!IsLeaf(nodes_[index])) {
    const double mx = 0.5 * (quad.min_x + quad.max_x);
    const double my = 0.5 * (quad.min_y + quad.max_y);
    int c = 0;
    if (p.x > mx) c |= 1;
    if (p.y > my) c |= 2;
    index = nodes_[index].children[c];
    quad = ChildRect(quad, c);
  }
  out.reserve(nodes_[index].items.size());
  for (std::uint32_t seg_index : nodes_[index].items) {
    out.push_back(segments_[seg_index].id);
  }
  return out;
}

std::vector<std::uint32_t> PmrQuadtree::RangeQuery(const Rect& r) const {
  std::vector<std::uint32_t> out;
  std::unordered_set<std::uint32_t> seen;
  struct Frame {
    std::uint32_t node;
    Rect quad;
  };
  std::vector<Frame> stack{{0, bounds_}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.quad.min_x > r.max_x || f.quad.max_x < r.min_x ||
        f.quad.min_y > r.max_y || f.quad.max_y < r.min_y) {
      continue;
    }
    const Node& node = nodes_[f.node];
    if (IsLeaf(node)) {
      for (std::uint32_t seg_index : node.items) {
        if (!SegmentIntersectsRect(segments_[seg_index].seg, r)) continue;
        if (seen.insert(seg_index).second) {
          out.push_back(segments_[seg_index].id);
        }
      }
      continue;
    }
    for (int c = 0; c < 4; ++c) {
      stack.push_back(Frame{node.children[c], ChildRect(f.quad, c)});
    }
  }
  return out;
}

Result<PmrQuadtree::NearestHit> PmrQuadtree::Nearest(const Point& p) const {
  if (segments_.empty()) return Status::NotFound("empty spatial index");
  // Best-first search: quads ordered by min distance to p; leaf items refine
  // the best hit; quads farther than the best hit are pruned.
  struct QueueEntry {
    double dist;
    std::uint32_t node;
    Rect quad;
    bool operator>(const QueueEntry& o) const { return dist > o.dist; }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      pq;
  pq.push(QueueEntry{PointRectDistance(p, bounds_), 0, bounds_});
  NearestHit best;
  best.distance = std::numeric_limits<double>::infinity();
  while (!pq.empty()) {
    QueueEntry entry = pq.top();
    pq.pop();
    if (entry.dist >= best.distance) break;
    const Node& node = nodes_[entry.node];
    if (IsLeaf(node)) {
      for (std::uint32_t seg_index : node.items) {
        const StoredSegment& stored = segments_[seg_index];
        const double d = PointSegmentDistance(p, stored.seg);
        if (d < best.distance) {
          best.distance = d;
          best.id = stored.id;
          best.t = ClosestPointParam(p, stored.seg);
        }
      }
      continue;
    }
    for (int c = 0; c < 4; ++c) {
      const Rect child_rect = ChildRect(entry.quad, c);
      const double d = PointRectDistance(p, child_rect);
      if (d < best.distance) {
        pq.push(QueueEntry{d, node.children[c], child_rect});
      }
    }
  }
  CKNN_CHECK(best.distance < std::numeric_limits<double>::infinity());
  return best;
}

std::size_t PmrQuadtree::NodeCount() const { return nodes_.size(); }

int PmrQuadtree::MaxDepth() const {
  struct Frame {
    std::uint32_t node;
    int depth;
  };
  int max_depth = 0;
  std::vector<Frame> stack{{0, 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, f.depth);
    const Node& node = nodes_[f.node];
    if (IsLeaf(node)) continue;
    for (int c = 0; c < 4; ++c) {
      stack.push_back(Frame{node.children[c], f.depth + 1});
    }
  }
  return max_depth;
}

std::size_t PmrQuadtree::MemoryBytes() const {
  std::size_t bytes = nodes_.capacity() * sizeof(Node) +
                      segments_.capacity() * sizeof(StoredSegment);
  for (const Node& n : nodes_) {
    bytes += n.items.capacity() * sizeof(std::uint32_t);
  }
  return bytes;
}

}  // namespace cknn

#ifndef CKNN_SPATIAL_PMR_QUADTREE_H_
#define CKNN_SPATIAL_PMR_QUADTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/geom/geometry.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace cknn {

/// \brief PMR quadtree over line segments — the paper's spatial index *SI*
/// (Section 3, after Hoel & Samet).
///
/// Each leaf quad stores the ids of the segments (network edges) that
/// intersect it. Insertion follows the PMR splitting rule: when inserting a
/// segment into a leaf whose population exceeds the splitting threshold, the
/// leaf is split exactly once (not recursively), which bounds the expected
/// depth on real line data.
///
/// The index answers:
///  * Nearest(p)     — the segment closest to an arbitrary point (used to
///                     snap object/query coordinate updates onto the network),
///  * Stabbing(p)    — candidate segment ids of the leaf covering p,
///  * RangeQuery(r)  — segment ids intersecting a rectangle.
class PmrQuadtree {
 public:
  /// Result of a nearest-segment query.
  struct NearestHit {
    std::uint32_t id = 0;  ///< Segment (edge) id as supplied at Insert.
    double distance = 0.0; ///< Euclidean distance from the query point.
    double t = 0.0;        ///< Parameter of the closest point on the segment.
  };

  /// \param bounds workspace rectangle; all segments must fit inside.
  /// \param split_threshold leaf population that triggers one PMR split.
  /// \param max_depth depth cap guarding against degenerate inputs.
  explicit PmrQuadtree(const Rect& bounds, int split_threshold = 8,
                       int max_depth = 16);

  PmrQuadtree(const PmrQuadtree&) = delete;
  PmrQuadtree& operator=(const PmrQuadtree&) = delete;
  PmrQuadtree(PmrQuadtree&&) = default;
  PmrQuadtree& operator=(PmrQuadtree&&) = default;

  /// Inserts a segment with the caller's id. Ids need not be unique, but the
  /// network build uses the edge id. Returns InvalidArgument if the segment
  /// lies outside the workspace bounds.
  Status Insert(std::uint32_t id, const Segment& seg);

  /// Segment ids stored in the leaf quad covering `p` (superset of the
  /// segments passing near p). Empty if p is outside the bounds.
  std::vector<std::uint32_t> Stabbing(const Point& p) const;

  /// All segment ids whose leaf quads intersect `r`, deduplicated.
  std::vector<std::uint32_t> RangeQuery(const Rect& r) const;

  /// Closest segment to `p` (best-first search over quads).
  /// Returns NotFound on an empty index.
  Result<NearestHit> Nearest(const Point& p) const;

  /// Number of segments inserted.
  std::size_t size() const { return segments_.size(); }

  /// Number of tree nodes (diagnostics / tests).
  std::size_t NodeCount() const;

  /// Maximum leaf depth reached (diagnostics / tests).
  int MaxDepth() const;

  /// Estimated heap footprint in bytes.
  std::size_t MemoryBytes() const;

  const Rect& bounds() const { return bounds_; }

 private:
  struct Node {
    // Leaf iff children[0] == kNoChild.
    std::uint32_t children[4];
    std::vector<std::uint32_t> items;  // Indices into segments_.
  };

  static constexpr std::uint32_t kNoChild = 0xFFFFFFFFu;

  struct StoredSegment {
    std::uint32_t id;
    Segment seg;
  };

  bool IsLeaf(const Node& n) const { return n.children[0] == kNoChild; }
  static Rect ChildRect(const Rect& r, int quadrant);
  void InsertInto(std::uint32_t node_index, const Rect& quad, int depth,
                  std::uint32_t seg_index, bool allow_split);
  void Split(std::uint32_t node_index, const Rect& quad, int depth);

  Rect bounds_;
  int split_threshold_;
  int max_depth_;
  std::vector<Node> nodes_;
  std::vector<StoredSegment> segments_;
};

}  // namespace cknn

#endif  // CKNN_SPATIAL_PMR_QUADTREE_H_

#ifndef CKNN_GRAPH_SEQUENCES_H_
#define CKNN_GRAPH_SEQUENCES_H_

#include <cstddef>
#include <vector>

#include "src/graph/road_network.h"
#include "src/graph/types.h"

namespace cknn {

/// \brief Sequence decomposition of a road network — the paper's *ST*
/// (Section 5).
///
/// A sequence is a path between two nodes whose degree differs from 2 such
/// that every intermediate node has degree exactly 2. Endpoints are either
/// intersections (degree > 2) or terminals (degree 1). Every edge belongs to
/// exactly one sequence; the decomposition partitions the edge set.
///
/// Degenerate component: a cycle in which *every* node has degree 2 has no
/// qualifying endpoint. We represent it as a cyclic sequence anchored at an
/// arbitrary node (`is_cycle` set, `nodes.front() == nodes.back()`); GMA
/// treats such queries specially (no active nodes, candidates are the cycle
/// objects only).
class SequenceTable {
 public:
  struct Sequence {
    /// Edges in path order.
    std::vector<EdgeId> edges;
    /// Nodes in path order; size == edges.size() + 1. nodes[i] and
    /// nodes[i+1] are the endpoints of edges[i]. For cycles,
    /// nodes.front() == nodes.back().
    std::vector<NodeId> nodes;
    bool is_cycle = false;

    NodeId EndpointA() const { return nodes.front(); }
    NodeId EndpointB() const { return nodes.back(); }
  };

  /// Builds the decomposition of `net`. O(V + E).
  static SequenceTable Build(const RoadNetwork& net);

  std::size_t NumSequences() const { return sequences_.size(); }
  const Sequence& sequence(SequenceId s) const;

  /// Sequence that contains edge `e`.
  SequenceId SequenceOf(EdgeId e) const;

  /// Index of `e` within its sequence's edge list.
  std::uint32_t PositionOf(EdgeId e) const;

  /// True iff nodes[pos] == edge.u for edge `e` at its position, i.e. the
  /// edge is traversed u->v when walking the sequence from A to B.
  bool ForwardOriented(EdgeId e) const;

  /// Estimated heap footprint in bytes.
  std::size_t MemoryBytes() const;

 private:
  struct EdgeRef {
    SequenceId seq = kInvalidSequence;
    std::uint32_t pos = 0;
    bool forward = true;
  };

  std::vector<Sequence> sequences_;
  std::vector<EdgeRef> edge_refs_;  // Indexed by EdgeId.
};

}  // namespace cknn

#endif  // CKNN_GRAPH_SEQUENCES_H_

#include "src/graph/road_network.h"

#include <mutex>
#include <utility>

#include "src/graph/sequences.h"
#include "src/util/macros.h"

namespace cknn {

SharedTopology& RoadNetwork::MutableTopo() {
  if (topo_ == nullptr) {
    topo_ = std::make_shared<SharedTopology>();
  }
  // Topology mutation is only legal while this view is the sole owner —
  // a SharedView freezes the graph structure for everyone.
  CKNN_CHECK(topo_.use_count() == 1);
  CKNN_CHECK(weights_.partition() == nullptr);
  return *topo_;
}

NodeId RoadNetwork::AddNode(const Point& position) {
  SharedTopology& topo = MutableTopo();
  topo.node_positions_.push_back(position);
  topo.csr_valid_ = false;
  return static_cast<NodeId>(topo.node_positions_.size() - 1);
}

Result<EdgeId> RoadNetwork::AddEdge(NodeId u, NodeId v,
                                    double length_override) {
  if (u >= NumNodes() || v >= NumNodes()) {
    return Status::InvalidArgument("edge endpoint does not exist");
  }
  if (u == v) {
    return Status::InvalidArgument("self-loop edges are not supported");
  }
  SharedTopology& topo = MutableTopo();
  double length = length_override > 0.0
                      ? length_override
                      : Distance(topo.node_positions_[u],
                                 topo.node_positions_[v]);
  if (length <= 0.0) {
    return Status::InvalidArgument("edge length must be positive");
  }
  const EdgeId id = static_cast<EdgeId>(topo.edges_.size());
  topo.edges_.push_back(SharedTopology::EdgeTopo{u, v, length});
  weights_.PushBack(length);
  topo.csr_valid_ = false;
  return id;
}

const Point& RoadNetwork::NodePosition(NodeId n) const {
  CKNN_CHECK(topo_ != nullptr);
  return topo_->NodePosition(n);
}

RoadNetwork::Edge RoadNetwork::edge(EdgeId e) const {
  CKNN_CHECK(e < NumEdges());
  const SharedTopology::EdgeTopo& t = topo_->edge(e);
  return Edge{t.u, t.v, t.length, weights_.Get(e)};
}

double RoadNetwork::WeightOf(EdgeId e) const {
  CKNN_CHECK(e < NumEdges());
  return weights_.Get(e);
}

double RoadNetwork::LengthOf(EdgeId e) const {
  CKNN_CHECK(e < NumEdges());
  return topo_->edge(e).length;
}

std::size_t RoadNetwork::Degree(NodeId n) const {
  CKNN_CHECK(topo_ != nullptr);
  return topo_->Degree(n);
}

RoadNetwork::IncidenceSpan RoadNetwork::Incidences(NodeId n) const {
  CKNN_CHECK(topo_ != nullptr);
  return topo_->Incidences(n);
}

NodeId RoadNetwork::OtherEndpoint(EdgeId e, NodeId n) const {
  CKNN_CHECK(topo_ != nullptr);
  return topo_->OtherEndpoint(e, n);
}

bool RoadNetwork::IsEndpoint(EdgeId e, NodeId n) const {
  CKNN_CHECK(topo_ != nullptr);
  return topo_->IsEndpoint(e, n);
}

Status RoadNetwork::SetWeight(EdgeId e, double weight) {
  if (e >= NumEdges()) return Status::NotFound("unknown edge");
  if (weight < 0.0) {
    return Status::InvalidArgument("edge weight must be non-negative");
  }
  weights_.Set(e, weight);
  return Status::OK();
}

Segment RoadNetwork::EdgeSegment(EdgeId e) const {
  CKNN_CHECK(topo_ != nullptr);
  return topo_->EdgeSegment(e);
}

Rect RoadNetwork::BoundingBox() const {
  return topo_ ? topo_->BoundingBox() : Rect{};
}

double RoadNetwork::AverageEdgeLength() const {
  return topo_ ? topo_->AverageEdgeLength() : 0.0;
}

RoadNetwork RoadNetwork::SharedView() const {
  RoadNetwork view;
  view.topo_ = topo_;
  view.weights_ = weights_;  // Independent overlay, shared partition.
  return view;
}

void RoadNetwork::Retile(int num_tiles) {
  CKNN_CHECK(num_tiles >= 1);
  if (num_tiles == 1) {
    weights_.Retile(nullptr);
    return;
  }
  CKNN_CHECK(topo_ != nullptr);
  weights_.Retile(TilePartition::Build(*topo_, num_tiles));
}

std::shared_ptr<const SequenceTable> RoadNetwork::SharedSequences() const {
  if (topo_ == nullptr) {
    // Empty network: nothing to cache (and no shared topology to cache
    // it on); an empty table is correct and cheap.
    return std::make_shared<const SequenceTable>();
  }
  std::call_once(topo_->sequences_once_, [&] {
    topo_->sequences_ =
        std::make_shared<const SequenceTable>(SequenceTable::Build(*this));
  });
  return topo_->sequences_;
}

std::size_t RoadNetwork::MemoryBytes() const {
  return SharedMemoryBytes() + OverlayMemoryBytes();
}

std::size_t RoadNetwork::SharedMemoryBytes() const {
  std::size_t bytes = topo_ ? topo_->MemoryBytes() : 0;
  if (const TilePartition* p = weights_.partition()) {
    bytes += p->MemoryBytes();
  }
  return bytes;
}

RoadNetwork CloneNetwork(const RoadNetwork& net) {
  RoadNetwork out;
  for (NodeId n = 0; n < net.NumNodes(); ++n) {
    out.AddNode(net.NodePosition(n));
  }
  for (EdgeId e = 0; e < net.NumEdges(); ++e) {
    const RoadNetwork::Edge ed = net.edge(e);
    auto added = out.AddEdge(ed.u, ed.v, ed.length);
    CKNN_CHECK(added.ok());
    CKNN_CHECK(out.SetWeight(*added, ed.weight).ok());
  }
  // Deep copies are still handed across threads by a few tests; build the
  // adjacency index while the copy is private to this thread.
  out.BuildAdjacencyIndex();
  return out;
}

}  // namespace cknn

#include "src/graph/road_network.h"

#include "src/util/macros.h"

namespace cknn {

NodeId RoadNetwork::AddNode(const Point& position) {
  node_positions_.push_back(position);
  csr_valid_ = false;
  return static_cast<NodeId>(node_positions_.size() - 1);
}

Result<EdgeId> RoadNetwork::AddEdge(NodeId u, NodeId v,
                                    double length_override) {
  if (u >= NumNodes() || v >= NumNodes()) {
    return Status::InvalidArgument("edge endpoint does not exist");
  }
  if (u == v) {
    return Status::InvalidArgument("self-loop edges are not supported");
  }
  double length = length_override > 0.0
                      ? length_override
                      : Distance(node_positions_[u], node_positions_[v]);
  if (length <= 0.0) {
    return Status::InvalidArgument("edge length must be positive");
  }
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, length, length});
  csr_valid_ = false;
  return id;
}

void RoadNetwork::EnsureCsr() const {
  if (csr_valid_) return;
  const std::size_t n = node_positions_.size();
  csr_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++csr_offsets_[e.u + 1];
    ++csr_offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) csr_offsets_[i] += csr_offsets_[i - 1];
  csr_incidences_.resize(2 * edges_.size());
  // Per-node write cursors; walking the edges in id order reproduces the
  // historical per-node push_back order (ascending edge id), so expansion
  // iteration order — and with it every tie-dependent golden result — is
  // unchanged.
  std::vector<std::uint32_t> cursor(csr_offsets_.begin(),
                                    csr_offsets_.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const Edge& e = edges_[id];
    csr_incidences_[cursor[e.u]++] = Incidence{id, e.v};
    csr_incidences_[cursor[e.v]++] = Incidence{id, e.u};
  }
  csr_valid_ = true;
}

const Point& RoadNetwork::NodePosition(NodeId n) const {
  CKNN_CHECK(n < NumNodes());
  return node_positions_[n];
}

const RoadNetwork::Edge& RoadNetwork::edge(EdgeId e) const {
  CKNN_CHECK(e < NumEdges());
  return edges_[e];
}

std::size_t RoadNetwork::Degree(NodeId n) const {
  CKNN_CHECK(n < NumNodes());
  EnsureCsr();
  return csr_offsets_[n + 1] - csr_offsets_[n];
}

RoadNetwork::IncidenceSpan RoadNetwork::Incidences(NodeId n) const {
  CKNN_CHECK(n < NumNodes());
  EnsureCsr();
  const std::uint32_t begin = csr_offsets_[n];
  return IncidenceSpan(csr_incidences_.data() + begin,
                       csr_offsets_[n + 1] - begin);
}

NodeId RoadNetwork::OtherEndpoint(EdgeId e, NodeId n) const {
  const Edge& ed = edge(e);
  CKNN_CHECK(ed.u == n || ed.v == n);
  return ed.u == n ? ed.v : ed.u;
}

bool RoadNetwork::IsEndpoint(EdgeId e, NodeId n) const {
  const Edge& ed = edge(e);
  return ed.u == n || ed.v == n;
}

Status RoadNetwork::SetWeight(EdgeId e, double weight) {
  if (e >= NumEdges()) return Status::NotFound("unknown edge");
  if (weight < 0.0) {
    return Status::InvalidArgument("edge weight must be non-negative");
  }
  edges_[e].weight = weight;
  return Status::OK();
}

Segment RoadNetwork::EdgeSegment(EdgeId e) const {
  const Edge& ed = edge(e);
  return Segment{node_positions_[ed.u], node_positions_[ed.v]};
}

Rect RoadNetwork::BoundingBox() const {
  if (node_positions_.empty()) return Rect{};
  Rect box{node_positions_[0].x, node_positions_[0].y, node_positions_[0].x,
           node_positions_[0].y};
  for (const Point& p : node_positions_) box.Expand(p);
  return box;
}

double RoadNetwork::AverageEdgeLength() const {
  if (edges_.empty()) return 0.0;
  double total = 0.0;
  for (const Edge& e : edges_) total += e.length;
  return total / static_cast<double>(edges_.size());
}

std::size_t RoadNetwork::MemoryBytes() const {
  return node_positions_.capacity() * sizeof(Point) +
         edges_.capacity() * sizeof(Edge) +
         csr_offsets_.capacity() * sizeof(std::uint32_t) +
         csr_incidences_.capacity() * sizeof(Incidence);
}

RoadNetwork CloneNetwork(const RoadNetwork& net) {
  RoadNetwork out;
  for (NodeId n = 0; n < net.NumNodes(); ++n) {
    out.AddNode(net.NodePosition(n));
  }
  for (EdgeId e = 0; e < net.NumEdges(); ++e) {
    const RoadNetwork::Edge& ed = net.edge(e);
    auto added = out.AddEdge(ed.u, ed.v, ed.length);
    CKNN_CHECK(added.ok());
    CKNN_CHECK(out.SetWeight(*added, ed.weight).ok());
  }
  // Clones are handed to shard workers; build the adjacency index while the
  // clone is still private to this thread.
  out.BuildAdjacencyIndex();
  return out;
}

}  // namespace cknn

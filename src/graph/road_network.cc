#include "src/graph/road_network.h"

#include "src/util/macros.h"

namespace cknn {

NodeId RoadNetwork::AddNode(const Point& position) {
  node_positions_.push_back(position);
  adjacency_.emplace_back();
  return static_cast<NodeId>(node_positions_.size() - 1);
}

Result<EdgeId> RoadNetwork::AddEdge(NodeId u, NodeId v,
                                    double length_override) {
  if (u >= NumNodes() || v >= NumNodes()) {
    return Status::InvalidArgument("edge endpoint does not exist");
  }
  if (u == v) {
    return Status::InvalidArgument("self-loop edges are not supported");
  }
  double length = length_override > 0.0
                      ? length_override
                      : Distance(node_positions_[u], node_positions_[v]);
  if (length <= 0.0) {
    return Status::InvalidArgument("edge length must be positive");
  }
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, length, length});
  adjacency_[u].push_back(Incidence{id, v});
  adjacency_[v].push_back(Incidence{id, u});
  return id;
}

const Point& RoadNetwork::NodePosition(NodeId n) const {
  CKNN_CHECK(n < NumNodes());
  return node_positions_[n];
}

const RoadNetwork::Edge& RoadNetwork::edge(EdgeId e) const {
  CKNN_CHECK(e < NumEdges());
  return edges_[e];
}

std::size_t RoadNetwork::Degree(NodeId n) const {
  CKNN_CHECK(n < NumNodes());
  return adjacency_[n].size();
}

const std::vector<RoadNetwork::Incidence>& RoadNetwork::Incidences(
    NodeId n) const {
  CKNN_CHECK(n < NumNodes());
  return adjacency_[n];
}

NodeId RoadNetwork::OtherEndpoint(EdgeId e, NodeId n) const {
  const Edge& ed = edge(e);
  CKNN_CHECK(ed.u == n || ed.v == n);
  return ed.u == n ? ed.v : ed.u;
}

bool RoadNetwork::IsEndpoint(EdgeId e, NodeId n) const {
  const Edge& ed = edge(e);
  return ed.u == n || ed.v == n;
}

Status RoadNetwork::SetWeight(EdgeId e, double weight) {
  if (e >= NumEdges()) return Status::NotFound("unknown edge");
  if (weight < 0.0) {
    return Status::InvalidArgument("edge weight must be non-negative");
  }
  edges_[e].weight = weight;
  return Status::OK();
}

Segment RoadNetwork::EdgeSegment(EdgeId e) const {
  const Edge& ed = edge(e);
  return Segment{node_positions_[ed.u], node_positions_[ed.v]};
}

Rect RoadNetwork::BoundingBox() const {
  if (node_positions_.empty()) return Rect{};
  Rect box{node_positions_[0].x, node_positions_[0].y, node_positions_[0].x,
           node_positions_[0].y};
  for (const Point& p : node_positions_) box.Expand(p);
  return box;
}

double RoadNetwork::AverageEdgeLength() const {
  if (edges_.empty()) return 0.0;
  double total = 0.0;
  for (const Edge& e : edges_) total += e.length;
  return total / static_cast<double>(edges_.size());
}

std::size_t RoadNetwork::MemoryBytes() const {
  std::size_t bytes = node_positions_.capacity() * sizeof(Point) +
                      edges_.capacity() * sizeof(Edge) +
                      adjacency_.capacity() * sizeof(std::vector<Incidence>);
  for (const auto& adj : adjacency_) {
    bytes += adj.capacity() * sizeof(Incidence);
  }
  return bytes;
}

RoadNetwork CloneNetwork(const RoadNetwork& net) {
  RoadNetwork out;
  for (NodeId n = 0; n < net.NumNodes(); ++n) {
    out.AddNode(net.NodePosition(n));
  }
  for (EdgeId e = 0; e < net.NumEdges(); ++e) {
    const RoadNetwork::Edge& ed = net.edge(e);
    auto added = out.AddEdge(ed.u, ed.v, ed.length);
    CKNN_CHECK(added.ok());
    CKNN_CHECK(out.SetWeight(*added, ed.weight).ok());
  }
  return out;
}

}  // namespace cknn

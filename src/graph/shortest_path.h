#ifndef CKNN_GRAPH_SHORTEST_PATH_H_
#define CKNN_GRAPH_SHORTEST_PATH_H_

#include <unordered_map>
#include <vector>

#include "src/graph/network_point.h"
#include "src/graph/road_network.h"
#include "src/graph/types.h"

namespace cknn {

/// \brief Plain single-source shortest-path utilities over the dynamic edge
/// weights. These are substrates: the Brinkhoff-style generator routes
/// objects with them, and the tests use them as an oracle for the
/// incremental algorithms.

/// Result of a node-to-node shortest-path query.
struct PathResult {
  bool reachable = false;
  double distance = 0.0;
  /// Node sequence from source to target, inclusive; empty if unreachable.
  std::vector<NodeId> nodes;
  /// Edge sequence (nodes.size() - 1 edges); empty if unreachable.
  std::vector<EdgeId> edges;
};

/// Dijkstra distances from `source` to every reachable node, by weight.
/// `max_dist` (if finite) bounds the expansion.
std::unordered_map<NodeId, double> DijkstraDistances(
    const RoadNetwork& net, NodeId source, double max_dist = kInfDist);

/// Shortest path between two nodes using the dynamic weights. Uses A* with
/// the Euclidean lower bound when `use_astar` is set and weights dominate
/// geometry (the generator's case where weight == length).
PathResult ShortestPath(const RoadNetwork& net, NodeId source, NodeId target,
                        bool use_astar = false);

/// Network distance between two arbitrary points on the network, by the
/// dynamic weights (oracle for tests; O(E log V)).
double PointToPointDistance(const RoadNetwork& net, const NetworkPoint& a,
                            const NetworkPoint& b);

}  // namespace cknn

#endif  // CKNN_GRAPH_SHORTEST_PATH_H_

#ifndef CKNN_GRAPH_TOPOLOGY_H_
#define CKNN_GRAPH_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/geom/geometry.h"
#include "src/graph/types.h"

namespace cknn {

class SequenceTable;

/// \brief The immutable half of a road network: node coordinates, edge
/// endpoints/lengths, and the CSR adjacency index — everything that never
/// changes after the network is built.
///
/// A `SharedTopology` is held by `shared_ptr` and referenced by every
/// `RoadNetwork` view of the same graph (the sharded server's per-shard
/// views, the lockstep conformance servers, the Brinkhoff generator's
/// private routing network). Only the *dynamic weights* are per-view
/// (`TiledWeightStore` in src/graph/tiling.h); the topology exists once
/// per graph regardless of how many shards or servers reference it.
///
/// Mutation protocol: `RoadNetwork::AddNode`/`AddEdge` mutate the topology
/// only while their facade is the sole owner (`use_count() == 1`); once a
/// `SharedView` exists the topology is frozen. The CSR index is built
/// lazily (see BuildAdjacencyIndex for the threading contract), and the
/// GMA sequence decomposition is cached here once per graph
/// (`RoadNetwork::SharedSequences`).
class SharedTopology {
 public:
  /// Immutable per-edge record; the dynamic weight lives in the view's
  /// weight store.
  struct EdgeTopo {
    NodeId u = kInvalidNode;  ///< e.start
    NodeId v = kInvalidNode;  ///< e.end
    double length = 0.0;      ///< static geometric length
  };

  /// One entry of a node's adjacency list.
  struct Incidence {
    EdgeId edge = kInvalidEdge;
    NodeId neighbor = kInvalidNode;
  };

  /// \brief Contiguous view of one node's adjacency list inside the CSR
  /// incidence array. Cheap to copy; valid until the next topology
  /// mutation (AddNode/AddEdge).
  class IncidenceSpan {
   public:
    using value_type = Incidence;
    using const_iterator = const Incidence*;

    IncidenceSpan() = default;
    IncidenceSpan(const Incidence* data, std::size_t size)
        : data_(data), size_(size) {}

    const Incidence* begin() const { return data_; }
    const Incidence* end() const { return data_ + size_; }
    const Incidence* data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const Incidence& operator[](std::size_t i) const { return data_[i]; }

   private:
    const Incidence* data_ = nullptr;
    std::size_t size_ = 0;
  };

  SharedTopology() = default;

  // Shared by pointer, never by copy: views alias one instance.
  SharedTopology(const SharedTopology&) = delete;
  SharedTopology& operator=(const SharedTopology&) = delete;

  std::size_t NumNodes() const { return node_positions_.size(); }
  std::size_t NumEdges() const { return edges_.size(); }

  const Point& NodePosition(NodeId n) const;
  const EdgeTopo& edge(EdgeId e) const;

  /// Degree of node `n` (number of incident edges).
  std::size_t Degree(NodeId n) const;

  /// Adjacency list of node `n` as a view into the CSR incidence array
  /// (per-node entries ordered by ascending edge id, exactly the insertion
  /// order of the historical per-node vectors).
  IncidenceSpan Incidences(NodeId n) const;

  /// Builds the CSR adjacency index if the topology changed since the
  /// last build. Incidences()/Degree() do this lazily, but the lazy path
  /// is not safe for a *first* call racing from several threads — callers
  /// that share a topology across threads warm it up through here while
  /// still single-threaded.
  void BuildAdjacencyIndex() const { EnsureCsr(); }

  /// The endpoint of `e` that is not `n`. Checked error if `n` is not an
  /// endpoint of `e`.
  NodeId OtherEndpoint(EdgeId e, NodeId n) const;

  /// True iff `n` is an endpoint of `e`.
  bool IsEndpoint(EdgeId e, NodeId n) const;

  /// Geometry of an edge as a segment from u to v.
  Segment EdgeSegment(EdgeId e) const;

  /// Bounding rectangle of all node positions (workspace extent).
  Rect BoundingBox() const;

  /// Average edge *length* — the unit for the paper's object/query speeds.
  double AverageEdgeLength() const;

  /// Estimated heap footprint in bytes (node, edge, and CSR arrays).
  /// Counted once per graph, no matter how many views share it.
  std::size_t MemoryBytes() const;

 private:
  friend class RoadNetwork;

  /// Rebuilds the CSR arrays from `edges_` in O(nodes + edges) via a
  /// counting sort. `mutable` so the accessors can build lazily; see
  /// BuildAdjacencyIndex() for the threading contract.
  void EnsureCsr() const;

  std::vector<Point> node_positions_;
  std::vector<EdgeTopo> edges_;
  /// CSR adjacency: node n's incidences are
  /// csr_incidences_[csr_offsets_[n] .. csr_offsets_[n + 1]).
  mutable std::vector<std::uint32_t> csr_offsets_;
  mutable std::vector<Incidence> csr_incidences_;
  mutable bool csr_valid_ = false;

  /// Once-per-graph cache of the GMA sequence decomposition (Section 5's
  /// ST is a pure function of the topology). Built on first
  /// `RoadNetwork::SharedSequences()` call; every sharing view gets the
  /// same table, so the active-node substrate stops scaling with the
  /// shard count.
  mutable std::once_flag sequences_once_;
  mutable std::shared_ptr<const SequenceTable> sequences_;
};

}  // namespace cknn

#endif  // CKNN_GRAPH_TOPOLOGY_H_

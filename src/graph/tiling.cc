#include "src/graph/tiling.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "src/util/macros.h"

namespace cknn {

std::shared_ptr<const TilePartition> TilePartition::Build(
    const SharedTopology& topo, int num_tiles) {
  CKNN_CHECK(num_tiles >= 1);
  const std::size_t num_nodes = topo.NumNodes();
  const std::size_t num_edges = topo.NumEdges();
  const std::size_t tiles = std::max<std::size_t>(
      1, std::min<std::size_t>(static_cast<std::size_t>(num_tiles),
                               std::max<std::size_t>(num_nodes, 1)));

  auto part = std::shared_ptr<TilePartition>(new TilePartition());
  part->node_tile_.assign(num_nodes, kNoGhost);
  part->node_counts_.assign(tiles, 0);
  part->owned_edges_.resize(tiles);
  part->ghost_edges_.resize(tiles);

  if (num_nodes > 0) {
    topo.BuildAdjacencyIndex();
    // Multi-source BFS from evenly spaced seeds (distinct because
    // tiles <= num_nodes), one shared queue so the frontiers grow in
    // round-robin — a deterministic METIS-lite that yields connected,
    // roughly balanced regions on road-like graphs.
    std::deque<NodeId> frontier;
    for (std::size_t t = 0; t < tiles; ++t) {
      const NodeId seed = static_cast<NodeId>(t * num_nodes / tiles);
      part->node_tile_[seed] = static_cast<std::uint32_t>(t);
      frontier.push_back(seed);
    }
    const auto grow = [&] {
      while (!frontier.empty()) {
        const NodeId n = frontier.front();
        frontier.pop_front();
        const std::uint32_t tile = part->node_tile_[n];
        for (const SharedTopology::Incidence& inc : topo.Incidences(n)) {
          if (part->node_tile_[inc.neighbor] == kNoGhost) {
            part->node_tile_[inc.neighbor] = tile;
            frontier.push_back(inc.neighbor);
          }
        }
      }
    };
    grow();
    // Disconnected leftovers: each unassigned node (ascending id) seeds
    // into the currently smallest tile (ties -> lowest tile index) and
    // claims its component.
    std::vector<std::size_t> sizes(tiles, 0);
    for (const std::uint32_t t : part->node_tile_) {
      if (t != kNoGhost) ++sizes[t];
    }
    for (NodeId n = 0; n < num_nodes; ++n) {
      if (part->node_tile_[n] != kNoGhost) continue;
      const std::size_t smallest = static_cast<std::size_t>(
          std::min_element(sizes.begin(), sizes.end()) - sizes.begin());
      part->node_tile_[n] = static_cast<std::uint32_t>(smallest);
      std::size_t claimed = 1;
      // Claim the whole component, tracking growth so `sizes` stays
      // accurate for the next leftover seed.
      std::deque<NodeId> component{n};
      while (!component.empty()) {
        const NodeId c = component.front();
        component.pop_front();
        for (const SharedTopology::Incidence& inc : topo.Incidences(c)) {
          if (part->node_tile_[inc.neighbor] == kNoGhost) {
            part->node_tile_[inc.neighbor] =
                static_cast<std::uint32_t>(smallest);
            component.push_back(inc.neighbor);
            ++claimed;
          }
        }
      }
      sizes[smallest] += claimed;
    }
    for (NodeId n = 0; n < num_nodes; ++n) {
      ++part->node_counts_[part->node_tile_[n]];
    }
  }

  // Edge ownership: the tile of `u` owns the edge; a border edge gets a
  // ghost slot in the tile of `v`. Walking edges in id order makes the
  // per-tile slot arrays ascend by edge id (pinned by tiling_test).
  part->locs_.resize(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) {
    const SharedTopology::EdgeTopo& ed = topo.edge(e);
    const std::uint32_t tu = part->node_tile_[ed.u];
    const std::uint32_t tv = part->node_tile_[ed.v];
    EdgeLoc& loc = part->locs_[e];
    loc.owner_tile = tu;
    loc.owner_slot =
        static_cast<std::uint32_t>(part->owned_edges_[tu].size());
    part->owned_edges_[tu].push_back(e);
    if (tv != tu) {
      loc.ghost_tile = tv;
      loc.ghost_slot =
          static_cast<std::uint32_t>(part->ghost_edges_[tv].size());
      part->ghost_edges_[tv].push_back(e);
      ++part->num_border_edges_;
    }
  }
  return part;
}

std::size_t TilePartition::MemoryBytes() const {
  std::size_t bytes = node_tile_.capacity() * sizeof(std::uint32_t) +
                      locs_.capacity() * sizeof(EdgeLoc) +
                      node_counts_.capacity() * sizeof(std::size_t);
  for (const std::vector<EdgeId>& v : owned_edges_) {
    bytes += v.capacity() * sizeof(EdgeId);
  }
  for (const std::vector<EdgeId>& v : ghost_edges_) {
    bytes += v.capacity() * sizeof(EdgeId);
  }
  return bytes;
}

void TiledWeightStore::PushBack(double w) {
  CKNN_CHECK(part_ == nullptr);  // Topology mutation requires flat mode.
  flat_.push_back(w);
}

std::size_t TiledWeightStore::size() const {
  if (part_ == nullptr) return flat_.size();
  return part_->NumEdges();
}

void TiledWeightStore::Set(EdgeId e, double w) {
  if (part_ == nullptr) {
    flat_[e] = w;
    return;
  }
  const TilePartition::EdgeLoc& loc = part_->Loc(e);
  tiles_[loc.owner_tile].owned[loc.owner_slot] = w;
  if (loc.ghost_tile != TilePartition::kNoGhost) {
    // Halo maintenance: the mirrored write is the cross-border message a
    // multi-process deployment would send to the neighbor tile.
    tiles_[loc.ghost_tile].ghosts[loc.ghost_slot] = w;
  }
}

void TiledWeightStore::Retile(std::shared_ptr<const TilePartition> part) {
  const std::size_t n = size();
  if (part == nullptr) {
    if (part_ == nullptr) return;
    std::vector<double> flat(n);
    for (EdgeId e = 0; e < n; ++e) flat[e] = TiledGet(e);
    flat_ = std::move(flat);
    tiles_.clear();
    part_ = nullptr;
    return;
  }
  CKNN_CHECK(part->NumEdges() == n);
  std::vector<Tile> tiles(static_cast<std::size_t>(part->num_tiles()));
  for (int t = 0; t < part->num_tiles(); ++t) {
    tiles[static_cast<std::size_t>(t)].owned.resize(
        part->OwnedEdges(t).size());
    tiles[static_cast<std::size_t>(t)].ghosts.resize(
        part->GhostEdges(t).size());
  }
  for (EdgeId e = 0; e < n; ++e) {
    const double w = Get(e);
    const TilePartition::EdgeLoc& loc = part->Loc(e);
    tiles[loc.owner_tile].owned[loc.owner_slot] = w;
    if (loc.ghost_tile != TilePartition::kNoGhost) {
      tiles[loc.ghost_tile].ghosts[loc.ghost_slot] = w;
    }
  }
  tiles_ = std::move(tiles);
  flat_.clear();
  flat_.shrink_to_fit();
  part_ = std::move(part);
}

std::size_t TiledWeightStore::MemoryBytes() const {
  std::size_t bytes = flat_.capacity() * sizeof(double) +
                      tiles_.capacity() * sizeof(Tile);
  for (const Tile& t : tiles_) {
    bytes += t.owned.capacity() * sizeof(double) +
             t.ghosts.capacity() * sizeof(double);
  }
  return bytes;
}

}  // namespace cknn

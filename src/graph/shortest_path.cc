#include "src/graph/shortest_path.h"

#include <algorithm>
#include <limits>

#include "src/util/indexed_min_heap.h"
#include "src/util/macros.h"

namespace cknn {

std::unordered_map<NodeId, double> DijkstraDistances(const RoadNetwork& net,
                                                     NodeId source,
                                                     double max_dist) {
  std::unordered_map<NodeId, double> dist;
  IndexedMinHeap heap;
  heap.Push(source, 0.0);
  while (!heap.empty()) {
    const auto [id, d] = heap.Pop();
    if (d > max_dist) break;
    const NodeId n = static_cast<NodeId>(id);
    dist.emplace(n, d);
    for (const RoadNetwork::Incidence& inc : net.Incidences(n)) {
      if (dist.count(inc.neighbor) != 0) continue;
      heap.PushOrDecrease(inc.neighbor, d + net.WeightOf(inc.edge));
    }
  }
  return dist;
}

PathResult ShortestPath(const RoadNetwork& net, NodeId source, NodeId target,
                        bool use_astar) {
  PathResult result;
  if (source == target) {
    result.reachable = true;
    result.nodes.push_back(source);
    return result;
  }
  // A* heuristic: Euclidean distance scaled by (min weight/length ratio)
  // would be needed for admissibility under fluctuating weights; we only
  // enable the plain Euclidean bound when requested by callers that keep
  // weight == length (the movement generator).
  const Point goal = net.NodePosition(target);
  auto heuristic = [&](NodeId n) {
    return use_astar ? Distance(net.NodePosition(n), goal) : 0.0;
  };

  struct Label {
    double g;
    NodeId parent;
    EdgeId via;
  };
  std::unordered_map<NodeId, Label> labels;
  std::unordered_map<NodeId, bool> settled;
  IndexedMinHeap heap;
  labels[source] = Label{0.0, kInvalidNode, kInvalidEdge};
  heap.Push(source, heuristic(source));
  while (!heap.empty()) {
    const auto [id, f] = heap.Pop();
    (void)f;
    const NodeId n = static_cast<NodeId>(id);
    settled[n] = true;
    if (n == target) break;
    const double g = labels[n].g;
    for (const RoadNetwork::Incidence& inc : net.Incidences(n)) {
      if (settled.count(inc.neighbor) != 0) continue;
      const double cand = g + net.WeightOf(inc.edge);
      auto it = labels.find(inc.neighbor);
      if (it == labels.end() || cand < it->second.g) {
        labels[inc.neighbor] = Label{cand, n, inc.edge};
        heap.PushOrDecrease(inc.neighbor, cand + heuristic(inc.neighbor));
      }
    }
  }
  auto it = labels.find(target);
  if (it == labels.end() || settled.count(target) == 0) return result;
  result.reachable = true;
  result.distance = it->second.g;
  NodeId n = target;
  while (n != kInvalidNode) {
    result.nodes.push_back(n);
    const Label& label = labels[n];
    if (label.via != kInvalidEdge) result.edges.push_back(label.via);
    n = label.parent;
  }
  std::reverse(result.nodes.begin(), result.nodes.end());
  std::reverse(result.edges.begin(), result.edges.end());
  return result;
}

double PointToPointDistance(const RoadNetwork& net, const NetworkPoint& a,
                            const NetworkPoint& b) {
  const RoadNetwork::Edge& ea = net.edge(a.edge);
  const RoadNetwork::Edge& eb = net.edge(b.edge);
  double best = kInfDist;
  if (a.edge == b.edge) best = AlongEdgeDistance(net, a, b);

  // Around paths: a -> endpoint of ea -> ... -> endpoint of eb -> b.
  // One Dijkstra with two virtual sources (the endpoints of a's edge seeded
  // with a's offsets) is enough.
  IndexedMinHeap heap;
  std::unordered_map<NodeId, double> dist;
  heap.PushOrDecrease(ea.u, WeightOffsetFromU(net, a));
  heap.PushOrDecrease(ea.v, WeightOffsetFromV(net, a));
  while (!heap.empty()) {
    const auto [id, d] = heap.Pop();
    const NodeId n = static_cast<NodeId>(id);
    dist.emplace(n, d);
    if (dist.count(eb.u) != 0 && dist.count(eb.v) != 0) break;
    for (const RoadNetwork::Incidence& inc : net.Incidences(n)) {
      if (dist.count(inc.neighbor) != 0) continue;
      heap.PushOrDecrease(inc.neighbor, d + net.WeightOf(inc.edge));
    }
  }
  auto iu = dist.find(eb.u);
  auto iv = dist.find(eb.v);
  if (iu != dist.end()) {
    best = std::min(best, iu->second + WeightOffsetFromU(net, b));
  }
  if (iv != dist.end()) {
    best = std::min(best, iv->second + WeightOffsetFromV(net, b));
  }
  return best;
}

}  // namespace cknn

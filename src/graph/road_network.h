#ifndef CKNN_GRAPH_ROAD_NETWORK_H_
#define CKNN_GRAPH_ROAD_NETWORK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/geom/geometry.h"
#include "src/graph/types.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace cknn {

/// \brief In-memory road network: nodes with coordinates and bidirectional
/// weighted edges (Section 3 of the paper).
///
/// Each edge carries two scalars:
///  * `length` — immutable Euclidean geometry, used for movement and as the
///    initial weight (the paper initializes weights to edge lengths);
///  * `weight` — the dynamic travel cost that fluctuates with traffic and
///    defines the network distance metric.
///
/// The *edge table* information of the paper (per-edge object lists and
/// influence lists) lives next to the algorithms (`ObjectTable`, the IMA
/// engine) so that the graph itself stays a reusable substrate.
class RoadNetwork {
 public:
  struct Edge {
    NodeId u = kInvalidNode;  ///< e.start
    NodeId v = kInvalidNode;  ///< e.end
    double length = 0.0;      ///< static geometric length
    double weight = 0.0;      ///< dynamic travel cost (>= 0)
  };

  /// One entry of a node's adjacency list.
  struct Incidence {
    EdgeId edge = kInvalidEdge;
    NodeId neighbor = kInvalidNode;
  };

  /// \brief Contiguous view of one node's adjacency list inside the CSR
  /// incidence array. Cheap to copy; valid until the next topology
  /// mutation (AddNode/AddEdge).
  class IncidenceSpan {
   public:
    using value_type = Incidence;
    using const_iterator = const Incidence*;

    IncidenceSpan() = default;
    IncidenceSpan(const Incidence* data, std::size_t size)
        : data_(data), size_(size) {}

    const Incidence* begin() const { return data_; }
    const Incidence* end() const { return data_ + size_; }
    const Incidence* data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const Incidence& operator[](std::size_t i) const { return data_[i]; }

   private:
    const Incidence* data_ = nullptr;
    std::size_t size_ = 0;
  };

  RoadNetwork() = default;

  RoadNetwork(const RoadNetwork&) = delete;
  RoadNetwork& operator=(const RoadNetwork&) = delete;
  RoadNetwork(RoadNetwork&&) = default;
  RoadNetwork& operator=(RoadNetwork&&) = default;

  /// Adds a node at the given coordinates; returns its id.
  NodeId AddNode(const Point& position);

  /// Adds a bidirectional edge. The weight is initialized to the Euclidean
  /// length of the edge unless `length_override` is positive, in which case
  /// both length and weight start at that value. Self-loops and duplicate
  /// endpoints are rejected.
  Result<EdgeId> AddEdge(NodeId u, NodeId v, double length_override = -1.0);

  std::size_t NumNodes() const { return node_positions_.size(); }
  std::size_t NumEdges() const { return edges_.size(); }

  const Point& NodePosition(NodeId n) const;
  const Edge& edge(EdgeId e) const;

  /// Degree of node `n` (number of incident edges).
  std::size_t Degree(NodeId n) const;

  /// Adjacency list of node `n` as a view into the CSR incidence array
  /// (per-node entries ordered by ascending edge id, exactly the insertion
  /// order of the historical per-node vectors).
  IncidenceSpan Incidences(NodeId n) const;

  /// Builds the CSR adjacency index (per-node offset array + one
  /// contiguous incidence array) if the topology changed since the last
  /// build. Incidences()/Degree() do this lazily, but the lazy path is not
  /// safe for a *first* call racing from several threads — callers that
  /// share a network across threads (the sharded server, CloneNetwork for
  /// per-shard copies, the engine constructors) warm it up through here
  /// while still single-threaded. Weight updates do not invalidate the
  /// index; only AddNode/AddEdge do.
  void BuildAdjacencyIndex() { EnsureCsr(); }

  /// The endpoint of `e` that is not `n`. Checked error if `n` is not an
  /// endpoint of `e`.
  NodeId OtherEndpoint(EdgeId e, NodeId n) const;

  /// True iff `n` is an endpoint of `e`.
  bool IsEndpoint(EdgeId e, NodeId n) const;

  /// Updates the dynamic weight of an edge. Returns InvalidArgument for
  /// negative weights, NotFound for an unknown edge.
  Status SetWeight(EdgeId e, double weight);

  /// Geometry of an edge as a segment from u to v.
  Segment EdgeSegment(EdgeId e) const;

  /// Bounding rectangle of all node positions (workspace extent).
  Rect BoundingBox() const;

  /// Average edge *length* — the unit for the paper's object/query speeds.
  double AverageEdgeLength() const;

  /// Estimated heap footprint in bytes (adjacency + edge + node arrays).
  std::size_t MemoryBytes() const;

 private:
  /// Rebuilds the CSR arrays from `edges_` in O(nodes + edges) via a
  /// counting sort. `mutable` so the accessors can build lazily; see
  /// BuildAdjacencyIndex() for the threading contract.
  void EnsureCsr() const;

  std::vector<Point> node_positions_;
  std::vector<Edge> edges_;
  /// CSR adjacency: node n's incidences are
  /// csr_incidences_[csr_offsets_[n] .. csr_offsets_[n + 1]).
  mutable std::vector<std::uint32_t> csr_offsets_;
  mutable std::vector<Incidence> csr_incidences_;
  mutable bool csr_valid_ = false;
};

/// Deep copy of a network, including its current dynamic weights (used by
/// the experiment harness to replay identical workloads against every
/// algorithm, and by the sharded server for per-shard network copies).
RoadNetwork CloneNetwork(const RoadNetwork& net);

}  // namespace cknn

#endif  // CKNN_GRAPH_ROAD_NETWORK_H_

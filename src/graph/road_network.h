#ifndef CKNN_GRAPH_ROAD_NETWORK_H_
#define CKNN_GRAPH_ROAD_NETWORK_H_

#include <cstddef>
#include <vector>

#include "src/geom/geometry.h"
#include "src/graph/types.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace cknn {

/// \brief In-memory road network: nodes with coordinates and bidirectional
/// weighted edges (Section 3 of the paper).
///
/// Each edge carries two scalars:
///  * `length` — immutable Euclidean geometry, used for movement and as the
///    initial weight (the paper initializes weights to edge lengths);
///  * `weight` — the dynamic travel cost that fluctuates with traffic and
///    defines the network distance metric.
///
/// The *edge table* information of the paper (per-edge object lists and
/// influence lists) lives next to the algorithms (`ObjectTable`, the IMA
/// engine) so that the graph itself stays a reusable substrate.
class RoadNetwork {
 public:
  struct Edge {
    NodeId u = kInvalidNode;  ///< e.start
    NodeId v = kInvalidNode;  ///< e.end
    double length = 0.0;      ///< static geometric length
    double weight = 0.0;      ///< dynamic travel cost (>= 0)
  };

  /// One entry of a node's adjacency list.
  struct Incidence {
    EdgeId edge = kInvalidEdge;
    NodeId neighbor = kInvalidNode;
  };

  RoadNetwork() = default;

  RoadNetwork(const RoadNetwork&) = delete;
  RoadNetwork& operator=(const RoadNetwork&) = delete;
  RoadNetwork(RoadNetwork&&) = default;
  RoadNetwork& operator=(RoadNetwork&&) = default;

  /// Adds a node at the given coordinates; returns its id.
  NodeId AddNode(const Point& position);

  /// Adds a bidirectional edge. The weight is initialized to the Euclidean
  /// length of the edge unless `length_override` is positive, in which case
  /// both length and weight start at that value. Self-loops and duplicate
  /// endpoints are rejected.
  Result<EdgeId> AddEdge(NodeId u, NodeId v, double length_override = -1.0);

  std::size_t NumNodes() const { return node_positions_.size(); }
  std::size_t NumEdges() const { return edges_.size(); }

  const Point& NodePosition(NodeId n) const;
  const Edge& edge(EdgeId e) const;

  /// Degree of node `n` (number of incident edges).
  std::size_t Degree(NodeId n) const;

  /// Adjacency list of node `n`.
  const std::vector<Incidence>& Incidences(NodeId n) const;

  /// The endpoint of `e` that is not `n`. Checked error if `n` is not an
  /// endpoint of `e`.
  NodeId OtherEndpoint(EdgeId e, NodeId n) const;

  /// True iff `n` is an endpoint of `e`.
  bool IsEndpoint(EdgeId e, NodeId n) const;

  /// Updates the dynamic weight of an edge. Returns InvalidArgument for
  /// negative weights, NotFound for an unknown edge.
  Status SetWeight(EdgeId e, double weight);

  /// Geometry of an edge as a segment from u to v.
  Segment EdgeSegment(EdgeId e) const;

  /// Bounding rectangle of all node positions (workspace extent).
  Rect BoundingBox() const;

  /// Average edge *length* — the unit for the paper's object/query speeds.
  double AverageEdgeLength() const;

  /// Estimated heap footprint in bytes (adjacency + edge + node arrays).
  std::size_t MemoryBytes() const;

 private:
  std::vector<Point> node_positions_;
  std::vector<Edge> edges_;
  std::vector<std::vector<Incidence>> adjacency_;
};

/// Deep copy of a network, including its current dynamic weights (used by
/// the experiment harness to replay identical workloads against every
/// algorithm, and by the sharded server for per-shard network copies).
RoadNetwork CloneNetwork(const RoadNetwork& net);

}  // namespace cknn

#endif  // CKNN_GRAPH_ROAD_NETWORK_H_

#ifndef CKNN_GRAPH_ROAD_NETWORK_H_
#define CKNN_GRAPH_ROAD_NETWORK_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/geom/geometry.h"
#include "src/graph/tiling.h"
#include "src/graph/topology.h"
#include "src/graph/types.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace cknn {

class SequenceTable;

/// \brief In-memory road network: nodes with coordinates and bidirectional
/// weighted edges (Section 3 of the paper).
///
/// Each edge carries two scalars:
///  * `length` — immutable Euclidean geometry, used for movement and as the
///    initial weight (the paper initializes weights to edge lengths);
///  * `weight` — the dynamic travel cost that fluctuates with traffic and
///    defines the network distance metric.
///
/// Internally the network is a *view* over two layers (docs/tiling.md):
///  * an immutable `SharedTopology` (geometry + CSR adjacency), held by
///    `shared_ptr` and referenced — never copied — by every view of the
///    same graph;
///  * a mutable `TiledWeightStore` of the dynamic weights, private to the
///    view, optionally partitioned into region tiles (`Retile`).
///
/// `SharedView()` creates another view of the same topology with an
/// independent copy of the weights — O(8 bytes/edge) instead of a full
/// clone — which is how the sharded server, the lockstep conformance
/// harness, and the Brinkhoff generator get their per-consumer weight
/// state. Topology mutation (AddNode/AddEdge) is only legal while no
/// other view shares the topology and the weights are untiled.
///
/// The *edge table* information of the paper (per-edge object lists and
/// influence lists) lives next to the algorithms (`ObjectTable`, the IMA
/// engine) so that the graph itself stays a reusable substrate.
class RoadNetwork {
 public:
  /// Composed per-edge value: immutable topology fields plus the view's
  /// current dynamic weight. Returned by value from `edge()`; a snapshot,
  /// not a reference into storage.
  struct Edge {
    NodeId u = kInvalidNode;  ///< e.start
    NodeId v = kInvalidNode;  ///< e.end
    double length = 0.0;      ///< static geometric length
    double weight = 0.0;      ///< dynamic travel cost (>= 0)
  };

  using Incidence = SharedTopology::Incidence;
  using IncidenceSpan = SharedTopology::IncidenceSpan;

  RoadNetwork() = default;

  RoadNetwork(const RoadNetwork&) = delete;
  RoadNetwork& operator=(const RoadNetwork&) = delete;
  RoadNetwork(RoadNetwork&&) = default;
  RoadNetwork& operator=(RoadNetwork&&) = default;

  /// Adds a node at the given coordinates; returns its id. Requires
  /// exclusive topology ownership (no live SharedView) and untiled
  /// weights.
  NodeId AddNode(const Point& position);

  /// Adds a bidirectional edge. The weight is initialized to the Euclidean
  /// length of the edge unless `length_override` is positive, in which case
  /// both length and weight start at that value. Self-loops and duplicate
  /// endpoints are rejected. Same mutation preconditions as AddNode.
  Result<EdgeId> AddEdge(NodeId u, NodeId v, double length_override = -1.0);

  std::size_t NumNodes() const { return topo_ ? topo_->NumNodes() : 0; }
  std::size_t NumEdges() const { return topo_ ? topo_->NumEdges() : 0; }

  const Point& NodePosition(NodeId n) const;

  /// Snapshot of edge `e` (topology + current weight), by value.
  Edge edge(EdgeId e) const;

  /// Current dynamic weight of edge `e` — the expansion hot-path read;
  /// routed through the owning tile when the view is tiled.
  double WeightOf(EdgeId e) const;

  /// Static geometric length of edge `e`.
  double LengthOf(EdgeId e) const;

  /// Degree of node `n` (number of incident edges).
  std::size_t Degree(NodeId n) const;

  /// Adjacency list of node `n` as a view into the CSR incidence array
  /// (per-node entries ordered by ascending edge id, exactly the insertion
  /// order of the historical per-node vectors).
  IncidenceSpan Incidences(NodeId n) const;

  /// Builds the CSR adjacency index (per-node offset array + one
  /// contiguous incidence array) if the topology changed since the last
  /// build. Incidences()/Degree() do this lazily, but the lazy path is not
  /// safe for a *first* call racing from several threads — callers that
  /// share a network across threads (the sharded server, SharedView for
  /// per-shard views, the engine constructors) warm it up through here
  /// while still single-threaded. Weight updates do not invalidate the
  /// index; only AddNode/AddEdge do.
  void BuildAdjacencyIndex() {
    if (topo_) topo_->BuildAdjacencyIndex();
  }

  /// The endpoint of `e` that is not `n`. Checked error if `n` is not an
  /// endpoint of `e`.
  NodeId OtherEndpoint(EdgeId e, NodeId n) const;

  /// True iff `n` is an endpoint of `e`.
  bool IsEndpoint(EdgeId e, NodeId n) const;

  /// Updates the dynamic weight of an edge. Returns InvalidArgument for
  /// negative weights, NotFound for an unknown edge. When the view is
  /// tiled the write is routed to the owning tile's slot and mirrored
  /// into the ghost slot of a border edge (docs/tiling.md).
  Status SetWeight(EdgeId e, double weight);

  /// Geometry of an edge as a segment from u to v.
  Segment EdgeSegment(EdgeId e) const;

  /// Bounding rectangle of all node positions (workspace extent).
  Rect BoundingBox() const;

  /// Average edge *length* — the unit for the paper's object/query speeds.
  double AverageEdgeLength() const;

  /// \name Shared-topology views and weight tiling
  /// @{

  /// A new view of the same graph: shares the immutable topology (and
  /// tile partition) by pointer, copies the dynamic weights — the
  /// per-shard "weight overlay" that replaced whole-network clones. The
  /// shared topology stays alive as long as any view does.
  RoadNetwork SharedView() const;

  /// Re-partitions the weight storage into `num_tiles` region tiles
  /// (1 = the flat monolithic layout). Current weights are preserved
  /// exactly; results are byte-identical at every tile count. Views
  /// created by SharedView() afterwards inherit the partition.
  void Retile(int num_tiles);

  /// Tile count of the weight store (1 = flat).
  int num_tiles() const {
    const TilePartition* p = weights_.partition();
    return p == nullptr ? 1 : p->num_tiles();
  }

  /// The tile partition; nullptr when flat.
  const TilePartition* partition() const { return weights_.partition(); }

  /// The shared immutable topology (null only for a default-constructed
  /// empty network).
  const SharedTopology* topology() const { return topo_.get(); }

  /// True iff `other` is a view of the same shared topology.
  bool SharesTopologyWith(const RoadNetwork& other) const {
    return topo_ != nullptr && topo_ == other.topo_;
  }

  /// The per-view weight store (tile-local reads for tests).
  const TiledWeightStore& weights() const { return weights_; }

  /// GMA's sequence decomposition (Section 5's ST), built once per graph
  /// and cached on the shared topology — every view of the same graph
  /// returns the same table, so co-resident GMA shards stop duplicating
  /// it. Thread-safe; requires a non-empty network.
  std::shared_ptr<const SequenceTable> SharedSequences() const;

  /// @}

  /// Estimated heap footprint in bytes: shared layers (topology, tile
  /// partition) plus this view's weights. The full cost of a graph with
  /// one view; for extra views count only OverlayMemoryBytes().
  std::size_t MemoryBytes() const;

  /// Bytes of the shared, counted-once layers (topology + partition).
  std::size_t SharedMemoryBytes() const;

  /// Bytes private to this view (the weight overlay) — the true
  /// incremental cost of each additional SharedView.
  std::size_t OverlayMemoryBytes() const { return weights_.MemoryBytes(); }

 private:
  /// The topology, created lazily on first mutation so that empty and
  /// moved-from networks stay cheap and valid.
  SharedTopology& MutableTopo();

  std::shared_ptr<SharedTopology> topo_;
  TiledWeightStore weights_;
};

/// Deep copy of a network, including its current dynamic weights.
///
/// \deprecated This is the pre-tiling whole-network clone: it duplicates
/// the immutable topology, which `RoadNetwork::SharedView()` shares for
/// free (see `SharedTopology`, docs/tiling.md). Kept as a compatibility
/// shim for tests that need a topologically independent copy; new code
/// should use `SharedView()`.
RoadNetwork CloneNetwork(const RoadNetwork& net);

}  // namespace cknn

#endif  // CKNN_GRAPH_ROAD_NETWORK_H_

#include "src/graph/graph_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace cknn {

Status SaveNetwork(const RoadNetwork& net, const std::string& prefix) {
  {
    std::ofstream out(prefix + ".cnode");
    if (!out) return Status::IoError("cannot open " + prefix + ".cnode");
    out << std::setprecision(17);
    out << "# node_id x y\n";
    for (NodeId n = 0; n < net.NumNodes(); ++n) {
      const Point& p = net.NodePosition(n);
      out << n << ' ' << p.x << ' ' << p.y << '\n';
    }
    if (!out) return Status::IoError("write failure on " + prefix + ".cnode");
  }
  {
    std::ofstream out(prefix + ".cedge");
    if (!out) return Status::IoError("cannot open " + prefix + ".cedge");
    out << std::setprecision(17);
    out << "# edge_id start_node end_node length\n";
    for (EdgeId e = 0; e < net.NumEdges(); ++e) {
      const RoadNetwork::Edge ed = net.edge(e);  // By-value snapshot.
      out << e << ' ' << ed.u << ' ' << ed.v << ' ' << ed.length << '\n';
    }
    if (!out) return Status::IoError("write failure on " + prefix + ".cedge");
  }
  return Status::OK();
}

Result<RoadNetwork> LoadNetwork(const std::string& prefix) {
  RoadNetwork net;
  {
    std::ifstream in(prefix + ".cnode");
    if (!in) return Status::IoError("cannot open " + prefix + ".cnode");
    std::string line;
    NodeId expected = 0;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ss(line);
      NodeId id = 0;
      double x = 0.0;
      double y = 0.0;
      if (!(ss >> id >> x >> y)) {
        return Status::IoError("malformed node line: " + line);
      }
      if (id != expected) {
        return Status::InvalidArgument("node ids must be dense, zero-based");
      }
      ++expected;
      net.AddNode(Point{x, y});
    }
  }
  {
    std::ifstream in(prefix + ".cedge");
    if (!in) return Status::IoError("cannot open " + prefix + ".cedge");
    std::string line;
    EdgeId expected = 0;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ss(line);
      EdgeId id = 0;
      NodeId u = 0;
      NodeId v = 0;
      double length = 0.0;
      if (!(ss >> id >> u >> v >> length)) {
        return Status::IoError("malformed edge line: " + line);
      }
      if (id != expected) {
        return Status::InvalidArgument("edge ids must be dense, zero-based");
      }
      ++expected;
      auto added = net.AddEdge(u, v, length);
      if (!added.ok()) return added.status();
    }
  }
  return net;
}

}  // namespace cknn

#include "src/graph/network_point.h"

#include <cmath>

#include "src/util/macros.h"

namespace cknn {

double WeightOffsetFromU(const RoadNetwork& net, const NetworkPoint& p) {
  return p.t * net.WeightOf(p.edge);
}

double WeightOffsetFromV(const RoadNetwork& net, const NetworkPoint& p) {
  return (1.0 - p.t) * net.WeightOf(p.edge);
}

double LengthOffsetFromU(const RoadNetwork& net, const NetworkPoint& p) {
  return p.t * net.edge(p.edge).length;
}

double AlongEdgeDistance(const RoadNetwork& net, const NetworkPoint& a,
                         const NetworkPoint& b) {
  CKNN_DCHECK(a.edge == b.edge);
  return std::abs(a.t - b.t) * net.WeightOf(a.edge);
}

Point ToEuclidean(const RoadNetwork& net, const NetworkPoint& p) {
  const RoadNetwork::Edge& e = net.edge(p.edge);
  return Lerp(net.NodePosition(e.u), net.NodePosition(e.v), p.t);
}

NetworkPoint AtNode(const RoadNetwork& net, NodeId n) {
  CKNN_CHECK(net.Degree(n) > 0);
  const RoadNetwork::Incidence& inc = net.Incidences(n)[0];
  const RoadNetwork::Edge& e = net.edge(inc.edge);
  return NetworkPoint{inc.edge, e.u == n ? 0.0 : 1.0};
}

bool IsAtNode(const RoadNetwork& net, const NetworkPoint& p, NodeId n) {
  const RoadNetwork::Edge& e = net.edge(p.edge);
  return (p.t == 0.0 && e.u == n) || (p.t == 1.0 && e.v == n);
}

}  // namespace cknn

#ifndef CKNN_GRAPH_GRAPH_IO_H_
#define CKNN_GRAPH_GRAPH_IO_H_

#include <string>

#include "src/graph/road_network.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace cknn {

/// \name Road network (de)serialization
///
/// The on-disk format is the plain two-file CSV convention used by the
/// public road-network datasets the paper evaluates on (node list + edge
/// list):
///
///   <prefix>.cnode : node_id x y
///   <prefix>.cedge : edge_id start_node end_node length
///
/// Fields are whitespace-separated; lines starting with '#' are ignored.
/// Weights are initialized to lengths on load (the paper's initial setting).
/// @{

/// Writes `net` under `<prefix>.cnode` / `<prefix>.cedge`.
Status SaveNetwork(const RoadNetwork& net, const std::string& prefix);

/// Reads a network saved by SaveNetwork (or the public .cnode/.cedge
/// datasets). Node and edge ids must be dense and zero-based.
Result<RoadNetwork> LoadNetwork(const std::string& prefix);

/// @}

}  // namespace cknn

#endif  // CKNN_GRAPH_GRAPH_IO_H_

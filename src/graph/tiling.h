#ifndef CKNN_GRAPH_TILING_H_
#define CKNN_GRAPH_TILING_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "src/graph/topology.h"
#include "src/graph/types.h"

namespace cknn {

/// \brief Region-tile decomposition of a road network's *weight storage*
/// (docs/tiling.md).
///
/// Nodes are partitioned into `num_tiles` connected regions by a
/// deterministic multi-source BFS over the shared topology (METIS-lite:
/// evenly spaced seeds, round-robin frontier growth, disconnected
/// leftovers folded into the smallest tile). Every edge is *owned* by the
/// tile of its `u` endpoint; a **border edge** — one whose endpoints lie
/// in different tiles — additionally gets a **ghost (halo) slot** in the
/// `v` endpoint's tile, so that tile can expand across the border reading
/// only its own storage. `TiledWeightStore::Set` routes a weight update to
/// the owner slot and mirrors it into the ghost slot, which is exactly
/// the per-update message a multi-process deployment would send across
/// the tile boundary.
///
/// The partition itself (tile assignment + per-edge slot locators) is
/// immutable and shared by `shared_ptr` across every view of the network;
/// only the per-view weight payload (`TiledWeightStore`) is replicated.
class TilePartition {
 public:
  /// Sentinel for "no ghost slot" (interior edge).
  static constexpr std::uint32_t kNoGhost =
      std::numeric_limits<std::uint32_t>::max();

  /// Locator of one edge's weight: the owning tile/slot, plus the ghost
  /// tile/slot for border edges.
  struct EdgeLoc {
    std::uint32_t owner_tile = 0;
    std::uint32_t owner_slot = 0;
    std::uint32_t ghost_tile = kNoGhost;
    std::uint32_t ghost_slot = kNoGhost;
  };

  /// Builds the partition of `topo` into `num_tiles` regions
  /// (deterministic for a given topology and tile count). `num_tiles` is
  /// clamped to the node count; an empty topology yields a single empty
  /// tile.
  static std::shared_ptr<const TilePartition> Build(
      const SharedTopology& topo, int num_tiles);

  int num_tiles() const { return static_cast<int>(owned_edges_.size()); }

  std::uint32_t TileOfNode(NodeId n) const { return node_tile_[n]; }
  std::uint32_t TileOfEdge(EdgeId e) const { return locs_[e].owner_tile; }
  const EdgeLoc& Loc(EdgeId e) const { return locs_[e]; }

  /// True iff the endpoints of `e` lie in different tiles.
  bool IsBorderEdge(EdgeId e) const {
    return locs_[e].ghost_tile != kNoGhost;
  }

  /// Edges owned by `tile`, ascending edge id; `OwnedEdges(t)[s]` is the
  /// edge stored in owner slot `s`.
  const std::vector<EdgeId>& OwnedEdges(int tile) const {
    return owned_edges_[static_cast<std::size_t>(tile)];
  }

  /// Border edges ghosted into `tile` (owned elsewhere), ascending edge
  /// id; `GhostEdges(t)[s]` is the edge mirrored in ghost slot `s`.
  const std::vector<EdgeId>& GhostEdges(int tile) const {
    return ghost_edges_[static_cast<std::size_t>(tile)];
  }

  /// Nodes assigned to `tile`.
  std::size_t NodeCount(int tile) const {
    return node_counts_[static_cast<std::size_t>(tile)];
  }

  std::size_t NumBorderEdges() const { return num_border_edges_; }
  std::size_t NumNodes() const { return node_tile_.size(); }
  std::size_t NumEdges() const { return locs_.size(); }

  /// Estimated heap footprint in bytes (assignment + locator + slot
  /// arrays). Shared across views, counted once per graph.
  std::size_t MemoryBytes() const;

 private:
  TilePartition() = default;

  std::vector<std::uint32_t> node_tile_;  ///< NodeId -> tile.
  std::vector<EdgeLoc> locs_;             ///< EdgeId -> slots.
  std::vector<std::vector<EdgeId>> owned_edges_;
  std::vector<std::vector<EdgeId>> ghost_edges_;
  std::vector<std::size_t> node_counts_;
  std::size_t num_border_edges_ = 0;
};

/// \brief Per-view dynamic edge weights, either *flat* (one dense array
/// indexed by edge id — the default, byte-for-byte the monolithic layout)
/// or *tiled* (per-tile owned arrays plus ghost arrays for border edges,
/// addressed through a shared `TilePartition`).
///
/// Invariant in tiled mode: for every border edge the ghost slot holds
/// the same value as the owner slot — `Set` writes both, `Get` reads the
/// owner. Reads and writes never touch a tile the edge does not belong
/// to, which is what makes a tile the unit of ownership for a future
/// multi-process split.
class TiledWeightStore {
 public:
  TiledWeightStore() = default;

  // Copyable: a copy is an independent weight overlay over the same
  // (shared) partition — how a per-shard view gets its private weights.
  TiledWeightStore(const TiledWeightStore&) = default;
  TiledWeightStore& operator=(const TiledWeightStore&) = default;
  TiledWeightStore(TiledWeightStore&&) = default;
  TiledWeightStore& operator=(TiledWeightStore&&) = default;

  /// Appends the weight of a freshly added edge (flat mode only).
  void PushBack(double w);

  std::size_t size() const;

  /// Current weight of edge `e`.
  double Get(EdgeId e) const {
    return part_ == nullptr ? flat_[e] : TiledGet(e);
  }

  /// Sets the weight of edge `e`; in tiled mode routes the write to the
  /// owning tile's slot and mirrors it into the ghost slot (if any).
  void Set(EdgeId e, double w);

  /// Re-partitions the current weights onto `part` (nullptr = back to the
  /// flat single-array layout). Values are preserved exactly.
  void Retile(std::shared_ptr<const TilePartition> part);

  /// The active partition; nullptr in flat mode.
  const TilePartition* partition() const { return part_.get(); }

  /// \name Tile-local reads (tests / halo verification).
  /// @{
  double OwnedValue(int tile, std::uint32_t slot) const {
    return tiles_[static_cast<std::size_t>(tile)].owned[slot];
  }
  double GhostValue(int tile, std::uint32_t slot) const {
    return tiles_[static_cast<std::size_t>(tile)].ghosts[slot];
  }
  /// @}

  /// Estimated heap footprint of the *per-view* payload in bytes (owned +
  /// ghost arrays; the shared partition is not included — it is counted
  /// once per graph via TilePartition::MemoryBytes).
  std::size_t MemoryBytes() const;

 private:
  struct Tile {
    std::vector<double> owned;
    std::vector<double> ghosts;
  };

  double TiledGet(EdgeId e) const {
    const TilePartition::EdgeLoc& loc = part_->Loc(e);
    return tiles_[loc.owner_tile].owned[loc.owner_slot];
  }

  std::shared_ptr<const TilePartition> part_;
  std::vector<double> flat_;  ///< Flat mode payload (empty when tiled).
  std::vector<Tile> tiles_;   ///< Tiled mode payload (empty when flat).
};

}  // namespace cknn

#endif  // CKNN_GRAPH_TILING_H_

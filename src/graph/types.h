#ifndef CKNN_GRAPH_TYPES_H_
#define CKNN_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace cknn {

/// Identifier of a network node (intersection or degree-2 shape point).
using NodeId = std::uint32_t;

/// Identifier of a network edge (road segment).
using EdgeId = std::uint32_t;

/// Identifier of a sequence (chain of edges between intersections).
using SequenceId = std::uint32_t;

/// Identifier of a data object (e.g., a pedestrian requesting a taxi).
using ObjectId = std::uint32_t;

/// Identifier of a continuous k-NN query (e.g., a vacant cab).
using QueryId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();
inline constexpr SequenceId kInvalidSequence =
    std::numeric_limits<SequenceId>::max();
inline constexpr ObjectId kInvalidObject =
    std::numeric_limits<ObjectId>::max();
inline constexpr QueryId kInvalidQuery = std::numeric_limits<QueryId>::max();

/// Positive infinity, used as the "fewer than k neighbors known" distance.
inline constexpr double kInfDist = std::numeric_limits<double>::infinity();

}  // namespace cknn

#endif  // CKNN_GRAPH_TYPES_H_

#ifndef CKNN_GRAPH_NETWORK_POINT_H_
#define CKNN_GRAPH_NETWORK_POINT_H_

#include "src/geom/geometry.h"
#include "src/graph/road_network.h"
#include "src/graph/types.h"

namespace cknn {

/// \brief A position on the network: an edge plus the fraction t in [0, 1]
/// of the way from `edge.u` to `edge.v`.
///
/// Storing the *fraction* (rather than an absolute offset) keeps positions
/// invariant under edge-weight fluctuation: the entity stays at the same
/// geometric spot while its travel-cost offsets scale with the weight.
struct NetworkPoint {
  EdgeId edge = kInvalidEdge;
  double t = 0.0;

  friend bool operator==(const NetworkPoint& a, const NetworkPoint& b) {
    return a.edge == b.edge && a.t == b.t;
  }
};

/// Weight-offset of `p` from edge endpoint u (cost to travel p -> u).
double WeightOffsetFromU(const RoadNetwork& net, const NetworkPoint& p);

/// Weight-offset of `p` from edge endpoint v (cost to travel p -> v).
double WeightOffsetFromV(const RoadNetwork& net, const NetworkPoint& p);

/// Length-offset of `p` from edge endpoint u (geometric distance).
double LengthOffsetFromU(const RoadNetwork& net, const NetworkPoint& p);

/// Travel cost between two points on the *same* edge, along that edge.
double AlongEdgeDistance(const RoadNetwork& net, const NetworkPoint& a,
                         const NetworkPoint& b);

/// Euclidean coordinates of a network point.
Point ToEuclidean(const RoadNetwork& net, const NetworkPoint& p);

/// A network point anchored exactly at node `n`, expressed on one of its
/// incident edges. Checked error if `n` is isolated.
NetworkPoint AtNode(const RoadNetwork& net, NodeId n);

/// True iff `p` coincides with node `n` (t == 0 at u or t == 1 at v).
bool IsAtNode(const RoadNetwork& net, const NetworkPoint& p, NodeId n);

}  // namespace cknn

#endif  // CKNN_GRAPH_NETWORK_POINT_H_

#include "src/graph/sequences.h"

#include "src/util/macros.h"
#include "src/util/mem.h"

namespace cknn {

namespace {

/// Walks a chain starting at `start` through `first_edge` until a node with
/// degree != 2 (or the start of a cycle) is reached. Appends to `seq` and
/// marks edges in `assigned`.
void WalkChain(const RoadNetwork& net, NodeId start, EdgeId first_edge,
               std::vector<bool>* assigned, SequenceTable::Sequence* seq) {
  seq->nodes.push_back(start);
  NodeId current = start;
  EdgeId edge = first_edge;
  while (true) {
    (*assigned)[edge] = true;
    seq->edges.push_back(edge);
    const NodeId next = net.OtherEndpoint(edge, current);
    seq->nodes.push_back(next);
    if (net.Degree(next) != 2) return;        // Intersection or terminal.
    if (next == seq->nodes.front()) return;   // Closed a cycle.
    // Continue through the other incident edge of the degree-2 node.
    const auto& inc = net.Incidences(next);
    CKNN_DCHECK(inc.size() == 2);
    const EdgeId other = inc[0].edge == edge ? inc[1].edge : inc[0].edge;
    if ((*assigned)[other]) return;  // Parallel-edge 2-cycle already closed.
    current = next;
    edge = other;
  }
}

}  // namespace

SequenceTable SequenceTable::Build(const RoadNetwork& net) {
  SequenceTable table;
  table.edge_refs_.resize(net.NumEdges());
  std::vector<bool> assigned(net.NumEdges(), false);

  auto finalize = [&](Sequence&& seq) {
    const SequenceId id = static_cast<SequenceId>(table.sequences_.size());
    for (std::uint32_t i = 0; i < seq.edges.size(); ++i) {
      const EdgeId e = seq.edges[i];
      table.edge_refs_[e] =
          EdgeRef{id, i, net.edge(e).u == seq.nodes[i]};
    }
    seq.is_cycle = seq.nodes.front() == seq.nodes.back();
    table.sequences_.push_back(std::move(seq));
  };

  // Pass 1: start a walk from every non-degree-2 node, down every incident
  // edge that has not been claimed by a walk from the other side.
  for (NodeId n = 0; n < net.NumNodes(); ++n) {
    if (net.Degree(n) == 2) continue;
    for (const RoadNetwork::Incidence& inc : net.Incidences(n)) {
      if (assigned[inc.edge]) continue;
      Sequence seq;
      WalkChain(net, n, inc.edge, &assigned, &seq);
      finalize(std::move(seq));
    }
  }
  // Pass 2: remaining edges belong to pure degree-2 cycles.
  for (EdgeId e = 0; e < net.NumEdges(); ++e) {
    if (assigned[e]) continue;
    Sequence seq;
    WalkChain(net, net.edge(e).u, e, &assigned, &seq);
    finalize(std::move(seq));
  }
  return table;
}

const SequenceTable::Sequence& SequenceTable::sequence(SequenceId s) const {
  CKNN_CHECK(s < sequences_.size());
  return sequences_[s];
}

SequenceId SequenceTable::SequenceOf(EdgeId e) const {
  CKNN_CHECK(e < edge_refs_.size());
  return edge_refs_[e].seq;
}

std::uint32_t SequenceTable::PositionOf(EdgeId e) const {
  CKNN_CHECK(e < edge_refs_.size());
  return edge_refs_[e].pos;
}

bool SequenceTable::ForwardOriented(EdgeId e) const {
  CKNN_CHECK(e < edge_refs_.size());
  return edge_refs_[e].forward;
}

std::size_t SequenceTable::MemoryBytes() const {
  std::size_t bytes = sequences_.capacity() * sizeof(Sequence) +
                      edge_refs_.capacity() * sizeof(EdgeRef);
  for (const Sequence& s : sequences_) {
    bytes += VectorBytes(s.edges) + VectorBytes(s.nodes);
  }
  return bytes;
}

}  // namespace cknn

#include "src/graph/topology.h"

#include "src/util/macros.h"

namespace cknn {

void SharedTopology::EnsureCsr() const {
  if (csr_valid_) return;
  const std::size_t n = node_positions_.size();
  csr_offsets_.assign(n + 1, 0);
  for (const EdgeTopo& e : edges_) {
    ++csr_offsets_[e.u + 1];
    ++csr_offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) csr_offsets_[i] += csr_offsets_[i - 1];
  csr_incidences_.resize(2 * edges_.size());
  // Per-node write cursors; walking the edges in id order reproduces the
  // historical per-node push_back order (ascending edge id), so expansion
  // iteration order — and with it every tie-dependent golden result — is
  // unchanged.
  std::vector<std::uint32_t> cursor(csr_offsets_.begin(),
                                    csr_offsets_.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const EdgeTopo& e = edges_[id];
    csr_incidences_[cursor[e.u]++] = Incidence{id, e.v};
    csr_incidences_[cursor[e.v]++] = Incidence{id, e.u};
  }
  csr_valid_ = true;
}

const Point& SharedTopology::NodePosition(NodeId n) const {
  CKNN_CHECK(n < NumNodes());
  return node_positions_[n];
}

const SharedTopology::EdgeTopo& SharedTopology::edge(EdgeId e) const {
  CKNN_CHECK(e < NumEdges());
  return edges_[e];
}

std::size_t SharedTopology::Degree(NodeId n) const {
  CKNN_CHECK(n < NumNodes());
  EnsureCsr();
  return csr_offsets_[n + 1] - csr_offsets_[n];
}

SharedTopology::IncidenceSpan SharedTopology::Incidences(NodeId n) const {
  CKNN_CHECK(n < NumNodes());
  EnsureCsr();
  const std::uint32_t begin = csr_offsets_[n];
  return IncidenceSpan(csr_incidences_.data() + begin,
                       csr_offsets_[n + 1] - begin);
}

NodeId SharedTopology::OtherEndpoint(EdgeId e, NodeId n) const {
  const EdgeTopo& ed = edge(e);
  CKNN_CHECK(ed.u == n || ed.v == n);
  return ed.u == n ? ed.v : ed.u;
}

bool SharedTopology::IsEndpoint(EdgeId e, NodeId n) const {
  const EdgeTopo& ed = edge(e);
  return ed.u == n || ed.v == n;
}

Segment SharedTopology::EdgeSegment(EdgeId e) const {
  const EdgeTopo& ed = edge(e);
  return Segment{node_positions_[ed.u], node_positions_[ed.v]};
}

Rect SharedTopology::BoundingBox() const {
  if (node_positions_.empty()) return Rect{};
  Rect box{node_positions_[0].x, node_positions_[0].y, node_positions_[0].x,
           node_positions_[0].y};
  for (const Point& p : node_positions_) box.Expand(p);
  return box;
}

double SharedTopology::AverageEdgeLength() const {
  if (edges_.empty()) return 0.0;
  double total = 0.0;
  for (const EdgeTopo& e : edges_) total += e.length;
  return total / static_cast<double>(edges_.size());
}

std::size_t SharedTopology::MemoryBytes() const {
  return node_positions_.capacity() * sizeof(Point) +
         edges_.capacity() * sizeof(EdgeTopo) +
         csr_offsets_.capacity() * sizeof(std::uint32_t) +
         csr_incidences_.capacity() * sizeof(Incidence);
}

}  // namespace cknn

#ifndef CKNN_UTIL_RESULT_H_
#define CKNN_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "src/util/macros.h"
#include "src/util/status.h"

namespace cknn {

/// \brief Value-or-Status, in the spirit of arrow::Result / absl::StatusOr.
///
/// A Result<T> holds either a T (success) or a non-OK Status (failure).
/// Accessing the value of a failed Result is a checked programming error.
///
/// `CKNN_NODISCARD` like Status: a dropped Result is a dropped error.
/// Deliberate drops use `CKNN_IGNORE_STATUS(expr, "reason")`.
template <typename T>
class CKNN_NODISCARD Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    CKNN_CHECK(!std::get<Status>(repr_).ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Status of the result; OK() when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    CKNN_CHECK(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    CKNN_CHECK(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    CKNN_CHECK(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if present, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates the error of a Result expression, otherwise assigns its value.
#define CKNN_ASSIGN_OR_RETURN(lhs, expr)          \
  do {                                            \
    auto _res = (expr);                           \
    if (!_res.ok()) return _res.status();         \
    lhs = std::move(_res).value();                \
  } while (0)

}  // namespace cknn

#endif  // CKNN_UTIL_RESULT_H_

#ifndef CKNN_UTIL_INDEXED_MIN_HEAP_H_
#define CKNN_UTIL_INDEXED_MIN_HEAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/dense_id_map.h"
#include "src/util/macros.h"

namespace cknn {

/// \brief Binary min-heap keyed by double with decrease-key support,
/// addressable by an integer id. This is the search heap `H` of the paper's
/// Figure 2: network expansion needs to decrease the tentative distance of a
/// node that is already en-heaped (lines 20-23).
///
/// Ids are arbitrary 64-bit integers (node ids in practice); positions are
/// tracked in an epoch-stamped paged array (`DenseIdMap`), so lookups are
/// two loads instead of a hash probe and Clear is O(1).
class IndexedMinHeap {
 public:
  struct Entry {
    std::uint64_t id;
    double key;
  };

  IndexedMinHeap() = default;

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// True iff `id` is currently en-heaped.
  bool Contains(std::uint64_t id) const { return pos_.Contains(id); }

  /// Key of an en-heaped id. Checked error if absent.
  double KeyOf(std::uint64_t id) const {
    const std::size_t* p = pos_.Find(id);
    CKNN_CHECK(p != nullptr);
    return heap_[*p].key;
  }

  /// Smallest entry. Checked error when empty.
  const Entry& Top() const {
    CKNN_CHECK(!heap_.empty());
    return heap_[0];
  }

  /// Inserts a new id. Checked error if already present.
  void Push(std::uint64_t id, double key) {
    CKNN_CHECK(!pos_.Contains(id));
    heap_.push_back(Entry{id, key});
    pos_[id] = heap_.size() - 1;
    SiftUp(heap_.size() - 1);
  }

  /// Inserts `id`, or lowers its key if already present with a larger key.
  /// Returns true if the heap changed.
  bool PushOrDecrease(std::uint64_t id, double key) {
    const std::size_t* p = pos_.Find(id);
    if (p == nullptr) {
      Push(id, key);
      return true;
    }
    std::size_t i = *p;
    if (key < heap_[i].key) {
      heap_[i].key = key;
      SiftUp(i);
      return true;
    }
    return false;
  }

  /// Removes and returns the smallest entry.
  Entry Pop() {
    CKNN_CHECK(!heap_.empty());
    Entry top = heap_[0];
    Swap(0, heap_.size() - 1);
    pos_.Erase(top.id);
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
    return top;
  }

  /// Removes an arbitrary id if present; returns true if it was removed.
  bool Erase(std::uint64_t id) {
    const std::size_t* p = pos_.Find(id);
    if (p == nullptr) return false;
    std::size_t i = *p;
    Swap(i, heap_.size() - 1);
    pos_.Erase(id);
    heap_.pop_back();
    if (i < heap_.size()) {
      SiftDown(i);
      SiftUp(i);
    }
    return true;
  }

  void Clear() {
    heap_.clear();
    pos_.Clear();
  }

  /// Estimated heap footprint in bytes: the entry array plus the position
  /// index.
  std::size_t MemoryBytes() const {
    return heap_.capacity() * sizeof(Entry) + pos_.MemoryBytes();
  }

 private:
  void Swap(std::size_t a, std::size_t b) {
    if (a == b) return;
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a].id] = a;
    pos_[heap_[b].id] = b;
  }

  void SiftUp(std::size_t i) {
    while (i > 0) {
      std::size_t parent = (i - 1) / 2;
      if (heap_[parent].key <= heap_[i].key) break;
      Swap(parent, i);
      i = parent;
    }
  }

  void SiftDown(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t left = 2 * i + 1;
      std::size_t right = left + 1;
      std::size_t smallest = i;
      if (left < n && heap_[left].key < heap_[smallest].key) smallest = left;
      if (right < n && heap_[right].key < heap_[smallest].key) {
        smallest = right;
      }
      if (smallest == i) break;
      Swap(i, smallest);
      i = smallest;
    }
  }

  std::vector<Entry> heap_;
  DenseIdMap<std::size_t> pos_;
};

}  // namespace cknn

#endif  // CKNN_UTIL_INDEXED_MIN_HEAP_H_

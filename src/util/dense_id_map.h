#ifndef CKNN_UTIL_DENSE_ID_MAP_H_
#define CKNN_UTIL_DENSE_ID_MAP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cknn {

/// \brief Node-indexed replacement for `std::unordered_map<uint64, T>` on
/// the expansion hot path.
///
/// Storage is paged (64 slots per page) and pages are allocated only when
/// an id inside them is first inserted, so memory stays proportional to the
/// *touched* id range — a per-query expansion visits a few dozen nodes of a
/// large graph and pays for exactly those pages, not for the whole graph.
/// Each slot carries an epoch stamp checked against the map's current
/// epoch, which makes Clear() an O(1) counter bump instead of a sweep; the
/// pages (and their capacity) survive to be reused by the next query.
///
/// Ids at or above `kDenseLimit` (2^26) fall back to a hash map so that
/// arbitrary 64-bit keys still work (the heap differential tests push
/// `uint64_t` max); everything the algorithms key by — node ids, edge ids —
/// is far below the limit and stays on the dense path.
template <typename T>
class DenseIdMap {
 public:
  static constexpr std::size_t kPageBits = 6;
  static constexpr std::size_t kPageSize = std::size_t{1} << kPageBits;
  static constexpr std::uint64_t kDenseLimit = std::uint64_t{1} << 26;

  DenseIdMap() = default;
  DenseIdMap(DenseIdMap&&) = default;
  DenseIdMap& operator=(DenseIdMap&&) = default;

  /// Pointer to the live value for `id`, or nullptr if absent.
  T* Find(std::uint64_t id) {
    if (id >= kDenseLimit) {
      auto it = overflow_.find(id);
      return it == overflow_.end() ? nullptr : &it->second;
    }
    Slot* s = SlotFor(id);
    return (s != nullptr && s->epoch == epoch_) ? &s->value : nullptr;
  }
  const T* Find(std::uint64_t id) const {
    return const_cast<DenseIdMap*>(this)->Find(id);
  }

  bool Contains(std::uint64_t id) const { return Find(id) != nullptr; }

  /// Live value for `id`, default-constructing it first if absent.
  T& operator[](std::uint64_t id) {
    if (id >= kDenseLimit) {
      auto [it, inserted] = overflow_.try_emplace(id);
      if (inserted) ++size_;
      return it->second;
    }
    Slot& s = EnsureSlot(id);
    if (s.epoch != epoch_) {
      s.epoch = epoch_;
      s.value = T{};
      ++size_;
    }
    return s.value;
  }

  /// Removes `id`; returns true if it was present.
  bool Erase(std::uint64_t id) {
    if (id >= kDenseLimit) {
      if (overflow_.erase(id) == 0) return false;
      --size_;
      return true;
    }
    Slot* s = SlotFor(id);
    if (s == nullptr || s->epoch != epoch_) return false;
    s->epoch = 0;  // epoch_ is always >= 1, so 0 never reads as live.
    --size_;
    return true;
  }

  /// O(1): advances the epoch so every dense slot reads as absent. Pages
  /// stay allocated for reuse.
  void Clear() {
    if (++epoch_ == 0) {
      // Epoch counter wrapped (once per ~4G clears): sweep the stale
      // stamps so old entries cannot alias the restarted epoch.
      for (auto& page : pages_) {
        if (page == nullptr) continue;
        for (Slot& s : page->slots) s.epoch = 0;
      }
      epoch_ = 1;
    }
    overflow_.clear();
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Calls `f(id, value)` for every live entry. Dense entries come in
  /// ascending id order, then overflow entries in unspecified order. Cost
  /// is proportional to the touched id range, not to size().
  template <typename F>
  void ForEach(F&& f) const {
    for (std::size_t p = 0; p < pages_.size(); ++p) {
      const Page* page = pages_[p].get();
      if (page == nullptr) continue;
      for (std::size_t i = 0; i < kPageSize; ++i) {
        const Slot& s = page->slots[i];
        if (s.epoch != epoch_) continue;
        f(static_cast<std::uint64_t>((p << kPageBits) | i), s.value);
      }
    }
    for (const auto& [id, value] : overflow_) f(id, value);
  }

  /// Mutable variant of ForEach.
  template <typename F>
  void ForEachMutable(F&& f) {
    for (std::size_t p = 0; p < pages_.size(); ++p) {
      Page* page = pages_[p].get();
      if (page == nullptr) continue;
      for (std::size_t i = 0; i < kPageSize; ++i) {
        Slot& s = page->slots[i];
        if (s.epoch != epoch_) continue;
        f(static_cast<std::uint64_t>((p << kPageBits) | i), s.value);
      }
    }
    for (auto& [id, value] : overflow_) f(id, value);
  }

  /// Estimated heap footprint: the page table, every allocated page, and
  /// the overflow hash map.
  std::size_t MemoryBytes() const {
    std::size_t bytes = pages_.capacity() * sizeof(std::unique_ptr<Page>);
    for (const auto& page : pages_) {
      if (page != nullptr) bytes += sizeof(Page);
    }
    // Hash-map nodes: entry payload + bucket pointer + node overhead.
    bytes += overflow_.size() *
                 (sizeof(std::pair<const std::uint64_t, T>) + 2 * sizeof(void*)) +
             overflow_.bucket_count() * sizeof(void*);
    return bytes;
  }

 private:
  struct Slot {
    std::uint32_t epoch = 0;
    T value{};
  };
  struct Page {
    Slot slots[kPageSize];
  };

  Slot* SlotFor(std::uint64_t id) {
    const std::size_t p = static_cast<std::size_t>(id >> kPageBits);
    if (p >= pages_.size() || pages_[p] == nullptr) return nullptr;
    return &pages_[p]->slots[id & (kPageSize - 1)];
  }

  Slot& EnsureSlot(std::uint64_t id) {
    const std::size_t p = static_cast<std::size_t>(id >> kPageBits);
    if (p >= pages_.size()) pages_.resize(p + 1);
    if (pages_[p] == nullptr) pages_[p] = std::make_unique<Page>();
    return pages_[p]->slots[id & (kPageSize - 1)];
  }

  std::vector<std::unique_ptr<Page>> pages_;
  std::unordered_map<std::uint64_t, T> overflow_;
  std::uint32_t epoch_ = 1;  ///< Always >= 1; slot epoch 0 means "never live".
  std::size_t size_ = 0;
};

}  // namespace cknn

#endif  // CKNN_UTIL_DENSE_ID_MAP_H_

#ifndef CKNN_UTIL_MEM_H_
#define CKNN_UTIL_MEM_H_

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace cknn {

/// \name Structure-size estimation
/// Helpers for the Figure-18 memory experiments. They estimate the heap
/// footprint of the monitoring structures (expansion trees, influence lists,
/// result sets) the way the paper reports space: payload bytes of the
/// containers, including hash-table bucket overhead.
/// @{

template <typename T>
std::size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

template <typename K, typename V, typename H, typename E, typename A>
std::size_t HashMapBytes(const std::unordered_map<K, V, H, E, A>& m) {
  // Node-based container: one node per element (value + next pointer) plus
  // the bucket array.
  return m.size() * (sizeof(std::pair<const K, V>) + sizeof(void*)) +
         m.bucket_count() * sizeof(void*);
}

template <typename K, typename H, typename E, typename A>
std::size_t HashSetBytes(const std::unordered_set<K, H, E, A>& s) {
  return s.size() * (sizeof(K) + sizeof(void*)) +
         s.bucket_count() * sizeof(void*);
}

/// @}

}  // namespace cknn

#endif  // CKNN_UTIL_MEM_H_

#ifndef CKNN_UTIL_ANNOTATIONS_H_
#define CKNN_UTIL_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

/// \file
/// Clang thread-safety annotations (docs/static_analysis.md) and the thin
/// capability-annotated synchronization wrappers the rest of the tree locks
/// through.
///
/// On Clang the macros expand to the `__attribute__((...))` family behind
/// `-Wthread-safety`, so lock-discipline errors — touching a
/// `CKNN_GUARDED_BY` member without its mutex, calling a `CKNN_REQUIRES`
/// function unlocked, leaking a lock out of a scope — fail the build
/// (`-Werror=thread-safety`, wired unconditionally for Clang in the root
/// CMakeLists). On every other compiler they expand to nothing and the
/// wrappers cost exactly what the `std::` primitives underneath them cost.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define CKNN_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CKNN_THREAD_ANNOTATION
#define CKNN_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability (a lock, or a protocol role) the
/// analysis tracks.
#define CKNN_CAPABILITY(name) CKNN_THREAD_ANNOTATION(capability(name))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define CKNN_SCOPED_CAPABILITY CKNN_THREAD_ANNOTATION(scoped_lockable)

/// The member is protected by the given capability: every read or write
/// must happen with it held.
#define CKNN_GUARDED_BY(x) CKNN_THREAD_ANNOTATION(guarded_by(x))

/// The pointed-to data (not the pointer itself) is protected by the given
/// capability.
#define CKNN_PT_GUARDED_BY(x) CKNN_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function must be called with the capability held (and does not
/// release it).
#define CKNN_REQUIRES(...) \
  CKNN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define CKNN_ACQUIRE(...) \
  CKNN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the capability the caller held.
#define CKNN_RELEASE(...) \
  CKNN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function must be called with the capability NOT held (anti-deadlock:
/// it will acquire it itself).
#define CKNN_EXCLUDES(...) CKNN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function acquires the capability iff it returns `ret`.
#define CKNN_TRY_ACQUIRE(ret, ...) \
  CKNN_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Tells the analysis the capability is held here without acquiring it
/// (runtime no-op; used for protocol roles, see cknn::ThreadRole).
#define CKNN_ASSERT_CAPABILITY(x) \
  CKNN_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the given capability (so
/// `MutexLock lock(obj.mu())` type accessors analyze correctly).
#define CKNN_RETURN_CAPABILITY(x) CKNN_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's body is not analyzed. Every use carries a
/// written reason next to it.
#define CKNN_NO_THREAD_SAFETY_ANALYSIS \
  CKNN_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cknn {

/// \brief `std::mutex` annotated as a capability, so members can be
/// declared `CKNN_GUARDED_BY(mu_)` and functions `CKNN_REQUIRES(mu_)`.
///
/// Lock through `MutexLock` (scoped) or `Lock`/`Unlock` (annotated) — never
/// through a raw `std::lock_guard` on `native()`, which the analysis cannot
/// see. `native()` exists only for `CondVar`'s wait hand-off.
class CKNN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CKNN_ACQUIRE() { mu_.lock(); }
  void Unlock() CKNN_RELEASE() { mu_.unlock(); }
  bool TryLock() CKNN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for `CondVar::Wait` only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// \brief RAII lock over `Mutex` (the annotated `std::lock_guard`).
class CKNN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CKNN_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() CKNN_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable paired with `Mutex`.
///
/// `Wait` is deliberately predicate-less: the caller re-checks its
/// condition in a `while` loop inside the locked scope, where the analysis
/// can see every guarded read (a predicate lambda would be analyzed as an
/// unannotated function and flag them). Same semantics as
/// `std::condition_variable::wait(lock)` — spurious wakeups included, which
/// the `while` loop absorbs exactly like the predicate overload would.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; `mu` is re-held on return. The
  /// caller must hold `mu` (typically via a `MutexLock` in scope).
  void Wait(Mutex& mu) CKNN_REQUIRES(mu) {
    // Adopt the caller's hold for the wait, then release ownership back so
    // the caller's MutexLock still performs the final unlock: no extra
    // lock/unlock pair, byte-for-byte the std::condition_variable protocol.
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// \brief A zero-size, zero-cost capability standing for a single-threaded
/// access protocol rather than a lock: "only the owning/submitting thread
/// touches this state".
///
/// Structures like `ShardSet` are synchronized by contract (one thread
/// submits ticks and reads results; workers touch disjoint shard state
/// through the pool's happens-before edges), not by a mutex. Declaring the
/// protocol state `CKNN_GUARDED_BY(owner_role_)` and opening each public
/// entry point with `owner_role_.Assert()` makes the contract checkable:
/// any new code path that reaches the guarded members without going
/// through an asserting entry point fails `-Wthread-safety`.
class CKNN_CAPABILITY("role") ThreadRole {
 public:
  /// States (to the analysis only — runtime no-op) that the calling thread
  /// holds this role.
  void Assert() const CKNN_ASSERT_CAPABILITY(this) {}
};

}  // namespace cknn

#endif  // CKNN_UTIL_ANNOTATIONS_H_

#ifndef CKNN_UTIL_RNG_H_
#define CKNN_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace cknn {

/// \brief Deterministic pseudo-random generator (splitmix64-seeded
/// xoshiro256**). All stochastic components of the library (workload
/// generation, movement, weight fluctuation) draw from an explicitly passed
/// Rng so that every experiment is reproducible from a single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Checked error if n == 0.
  std::uint64_t NextIndex(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with probability p.
  bool NextBool(double p);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextIndex(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator (for per-component streams).
  Rng Fork();

 private:
  std::uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace cknn

#endif  // CKNN_UTIL_RNG_H_

#ifndef CKNN_UTIL_THREAD_POOL_H_
#define CKNN_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/macros.h"

namespace cknn {

/// \brief Small fixed pool of worker threads for fork/join parallelism,
/// with an optional second, overlappable stage.
///
/// Two submission modes share the same claim machinery:
///
///  * `RunAll(tasks)` — classic fork/join: the workers *and* the calling
///    thread claim tasks through a shared index, and the call blocks until
///    every task finished.
///  * `Begin(tasks)` / `Wait()` — a detached batch: `Begin` hands the tasks
///    to the workers and returns immediately; the caller is free to do
///    other work (including issuing `RunAll` calls on this same pool, which
///    overlap the detached batch) and later calls `Wait`, where it helps
///    drain whatever is still unclaimed and blocks until the batch
///    finished. At most one detached batch may be in flight, and `Begin`/
///    `Wait` must be called from one owning thread.
///
/// Tasks must not throw and must handle their own synchronization for any
/// state shared between them; the pool guarantees that all writes made by a
/// batch's tasks are visible to the thread that completed its
/// `RunAll`/`Wait`. Task vectors must stay alive until that completion.
///
/// The workers are started once and parked between batches, so per-batch
/// dispatch cost is a mutex hand-off, not thread creation. A pool of 0
/// workers is allowed: `RunAll` runs everything on the calling thread, and
/// a `Begin` batch runs entirely inside `Wait`.
class ThreadPool {
 public:
  explicit ThreadPool(int num_workers) {
    CKNN_CHECK(num_workers >= 0);
    workers_.reserve(static_cast<std::size_t>(num_workers));
    for (int i = 0; i < num_workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins the workers. A `Begin` batch MUST be `Wait`ed before the pool
  /// — or the batch's task vector — is destroyed: parked workers exit
  /// without claiming, but a worker already draining the batch keeps
  /// claiming and running its tasks while the destructor joins, so
  /// dropping the vector early is a use-after-free. (ShardSet complies:
  /// its destructor Waits any in-flight tick first.)
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  std::size_t num_workers() const { return workers_.size(); }

  /// Runs every task in `tasks` to completion, the calling thread
  /// participating. Safe to call repeatedly and concurrently with an
  /// in-flight `Begin` batch (the two overlap on the same workers).
  void RunAll(const std::vector<std::function<void()>>& tasks) {
    std::shared_ptr<Batch> batch = Enqueue(tasks);
    if (batch != nullptr) Finish(std::move(batch));
  }

  /// Starts a detached batch: the workers begin claiming immediately, the
  /// caller returns. `tasks` must outlive the matching `Wait()`.
  void Begin(const std::vector<std::function<void()>>& tasks) {
    CKNN_CHECK(detached_ == nullptr);
    detached_ = Enqueue(tasks);
  }

  /// Blocks until the detached batch finished, helping drain unclaimed
  /// tasks. A `Wait` without a preceding `Begin` (or after a `Begin` of an
  /// empty task vector) is a no-op.
  void Wait() {
    if (detached_ == nullptr) return;
    std::shared_ptr<Batch> batch = std::move(detached_);
    detached_ = nullptr;
    Finish(std::move(batch));
  }

 private:
  struct Batch {
    const std::vector<std::function<void()>>* tasks = nullptr;
    std::size_t size = 0;
    /// Claim index. May grow past `size`; claims with i >= size are no-ops,
    /// so a straggler that wakes up holding an exhausted batch can never
    /// touch a task vector that has been destroyed (claims with i < size
    /// happen only while the batch's completer is still blocked in
    /// `Finish`, when the vector is alive).
    std::atomic<std::size_t> next{0};
    std::size_t pending = 0;  ///< Unfinished tasks; guarded by mu_.
  };

  std::shared_ptr<Batch> Enqueue(
      const std::vector<std::function<void()>>& tasks) {
    if (tasks.empty()) return nullptr;
    auto batch = std::make_shared<Batch>();
    batch->tasks = &tasks;
    batch->size = tasks.size();
    batch->pending = tasks.size();
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_.push_back(batch);
    }
    wake_.notify_all();
    return batch;
  }

  /// Drains `batch` on the calling thread, waits for stragglers, and
  /// retires it from the active list.
  void Finish(std::shared_ptr<Batch> batch) {
    DrainTasks(*batch);
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [&] { return batch->pending == 0; });
    active_.erase(std::find(active_.begin(), active_.end(), batch));
  }

  /// Claims and runs tasks from `batch` until its index is exhausted.
  void DrainTasks(Batch& batch) {
    while (true) {
      const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch.size) return;
      (*batch.tasks)[i]();
      std::lock_guard<std::mutex> lock(mu_);
      if (--batch.pending == 0) done_.notify_all();
    }
  }

  /// First active batch with unclaimed tasks, nullptr if none. mu_ held.
  std::shared_ptr<Batch> ClaimableLocked() {
    for (const std::shared_ptr<Batch>& batch : active_) {
      if (batch->next.load(std::memory_order_relaxed) < batch->size) {
        return batch;
      }
    }
    return nullptr;
  }

  void WorkerLoop() {
    while (true) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [&] {
          return shutdown_ || (batch = ClaimableLocked()) != nullptr;
        });
        if (batch == nullptr) return;  // Shutdown.
      }
      DrainTasks(*batch);
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<std::thread> workers_;
  /// Batches with tasks that may still be unclaimed or running.
  std::vector<std::shared_ptr<Batch>> active_;
  /// The in-flight Begin batch (touched only by the owning thread).
  std::shared_ptr<Batch> detached_;
  bool shutdown_ = false;
};

}  // namespace cknn

#endif  // CKNN_UTIL_THREAD_POOL_H_

#ifndef CKNN_UTIL_THREAD_POOL_H_
#define CKNN_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/util/annotations.h"
#include "src/util/macros.h"

namespace cknn {

/// \brief Small fixed pool of worker threads for fork/join parallelism,
/// with an optional second, overlappable stage.
///
/// Two submission modes share the same claim machinery:
///
///  * `RunAll(tasks)` — classic fork/join: the workers *and* the calling
///    thread claim tasks through a shared index, and the call blocks until
///    every task finished.
///  * `Begin(tasks)` / `Wait()` — a detached batch: `Begin` hands the tasks
///    to the workers and returns immediately; the caller is free to do
///    other work (including issuing `RunAll` calls on this same pool, which
///    overlap the detached batch) and later calls `Wait`, where it helps
///    drain whatever is still unclaimed and blocks until the batch
///    finished. At most one detached batch may be in flight, and `Begin`/
///    `Wait` must be called from one owning thread.
///
/// Tasks must not throw and must handle their own synchronization for any
/// state shared between them; the pool guarantees that all writes made by a
/// batch's tasks are visible to the thread that completed its
/// `RunAll`/`Wait`. Task vectors must stay alive until that completion.
///
/// The workers are started once and parked between batches, so per-batch
/// dispatch cost is a mutex hand-off, not thread creation. A pool of 0
/// workers is allowed: `RunAll` runs everything on the calling thread, and
/// a `Begin` batch runs entirely inside `Wait`.
class ThreadPool {
 public:
  explicit ThreadPool(int num_workers) {
    CKNN_CHECK(num_workers >= 0);
    workers_.reserve(static_cast<std::size_t>(num_workers));
    for (int i = 0; i < num_workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins the workers. A `Begin` batch MUST be `Wait`ed before the pool
  /// — or the batch's task vector — is destroyed: parked workers exit
  /// without claiming, but a worker already draining the batch keeps
  /// claiming and running its tasks while the destructor joins, so
  /// dropping the vector early is a use-after-free. (ShardSet complies:
  /// its destructor Waits any in-flight tick first.)
  ~ThreadPool() CKNN_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      shutdown_ = true;
    }
    wake_.NotifyAll();
    for (std::thread& t : workers_) t.join();
  }

  std::size_t num_workers() const { return workers_.size(); }

  /// Runs every task in `tasks` to completion, the calling thread
  /// participating. Safe to call repeatedly and concurrently with an
  /// in-flight `Begin` batch (the two overlap on the same workers).
  void RunAll(const std::vector<std::function<void()>>& tasks)
      CKNN_EXCLUDES(mu_) {
    std::shared_ptr<Batch> batch = Enqueue(tasks);
    if (batch != nullptr) Finish(std::move(batch));
  }

  /// Starts a detached batch: the workers begin claiming immediately, the
  /// caller returns. `tasks` must outlive the matching `Wait()`.
  void Begin(const std::vector<std::function<void()>>& tasks)
      CKNN_EXCLUDES(mu_) {
    owner_role_.Assert();
    CKNN_CHECK(detached_ == nullptr);
    detached_ = Enqueue(tasks);
  }

  /// Blocks until the detached batch finished, helping drain unclaimed
  /// tasks. A `Wait` without a preceding `Begin` (or after a `Begin` of an
  /// empty task vector) is a no-op.
  void Wait() CKNN_EXCLUDES(mu_) {
    owner_role_.Assert();
    if (detached_ == nullptr) return;
    std::shared_ptr<Batch> batch = std::move(detached_);
    detached_ = nullptr;
    Finish(std::move(batch));
  }

 private:
  struct Batch {
    const std::vector<std::function<void()>>* tasks = nullptr;
    std::size_t size = 0;
    /// Claim index. May grow past `size`; claims with i >= size are no-ops,
    /// so a straggler that wakes up holding an exhausted batch can never
    /// touch a task vector that has been destroyed (claims with i < size
    /// happen only while the batch's completer is still blocked in
    /// `Finish`, when the vector is alive).
    std::atomic<std::size_t> next{0};
    /// Unfinished tasks; guarded by the owning pool's mu_ (a nested struct
    /// cannot name the outer capability in CKNN_GUARDED_BY, so every
    /// access lives in a CKNN_REQUIRES(mu_) region of the pool instead).
    std::size_t pending = 0;
  };

  std::shared_ptr<Batch> Enqueue(
      const std::vector<std::function<void()>>& tasks) CKNN_EXCLUDES(mu_) {
    if (tasks.empty()) return nullptr;
    auto batch = std::make_shared<Batch>();
    batch->tasks = &tasks;
    batch->size = tasks.size();
    batch->pending = tasks.size();
    {
      MutexLock lock(mu_);
      active_.push_back(batch);
    }
    wake_.NotifyAll();
    return batch;
  }

  /// Drains `batch` on the calling thread, waits for stragglers, and
  /// retires it from the active list.
  void Finish(std::shared_ptr<Batch> batch) CKNN_EXCLUDES(mu_) {
    DrainTasks(*batch);
    MutexLock lock(mu_);
    while (!BatchDoneLocked(*batch)) done_.Wait(mu_);
    active_.erase(std::find(active_.begin(), active_.end(), batch));
  }

  /// Whether every task of `batch` finished. mu_ held.
  bool BatchDoneLocked(const Batch& batch) const CKNN_REQUIRES(mu_) {
    return batch.pending == 0;
  }

  /// Retires one completed task of `batch`, waking its completer on the
  /// last one. mu_ held.
  void FinishTaskLocked(Batch& batch) CKNN_REQUIRES(mu_) {
    if (--batch.pending == 0) done_.NotifyAll();
  }

  /// Claims and runs tasks from `batch` until its index is exhausted.
  void DrainTasks(Batch& batch) CKNN_EXCLUDES(mu_) {
    while (true) {
      const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch.size) return;
      (*batch.tasks)[i]();
      MutexLock lock(mu_);
      FinishTaskLocked(batch);
    }
  }

  /// First active batch with unclaimed tasks, nullptr if none. mu_ held.
  std::shared_ptr<Batch> ClaimableLocked() CKNN_REQUIRES(mu_) {
    for (const std::shared_ptr<Batch>& batch : active_) {
      if (batch->next.load(std::memory_order_relaxed) < batch->size) {
        return batch;
      }
    }
    return nullptr;
  }

  void WorkerLoop() CKNN_EXCLUDES(mu_) {
    while (true) {
      std::shared_ptr<Batch> batch;
      {
        MutexLock lock(mu_);
        while (!shutdown_ && (batch = ClaimableLocked()) == nullptr) {
          wake_.Wait(mu_);
        }
        if (batch == nullptr) return;  // Shutdown.
      }
      DrainTasks(*batch);
    }
  }

  Mutex mu_;
  CondVar wake_;
  CondVar done_;
  std::vector<std::thread> workers_;
  /// Batches with tasks that may still be unclaimed or running.
  std::vector<std::shared_ptr<Batch>> active_ CKNN_GUARDED_BY(mu_);
  /// The single thread that issues Begin/Wait pairs (see ThreadRole).
  ThreadRole owner_role_;
  /// The in-flight Begin batch (touched only by the owning thread).
  std::shared_ptr<Batch> detached_ CKNN_GUARDED_BY(owner_role_);
  bool shutdown_ CKNN_GUARDED_BY(mu_) = false;
};

}  // namespace cknn

#endif  // CKNN_UTIL_THREAD_POOL_H_

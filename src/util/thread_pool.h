#ifndef CKNN_UTIL_THREAD_POOL_H_
#define CKNN_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/macros.h"

namespace cknn {

/// \brief Small fixed pool of worker threads for fork/join parallelism.
///
/// `RunAll` hands a task vector to the workers *and* the calling thread
/// (tasks are claimed through a shared index, so a pool of `n` workers
/// executes a batch with `n + 1` threads) and blocks until every task
/// finished. Tasks must not throw and must handle their own synchronization
/// for any state shared between them; the pool only guarantees that all
/// writes made by the tasks are visible to the caller when `RunAll`
/// returns.
///
/// The workers are started once and parked between batches, so per-tick
/// dispatch cost is a mutex hand-off, not thread creation.
class ThreadPool {
 public:
  /// Starts `num_workers` parked worker threads (0 is allowed: RunAll then
  /// simply executes every task on the calling thread).
  explicit ThreadPool(int num_workers) {
    CKNN_CHECK(num_workers >= 0);
    workers_.reserve(static_cast<std::size_t>(num_workers));
    for (int i = 0; i < num_workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  std::size_t num_workers() const { return workers_.size(); }

  /// Runs every task in `tasks` to completion. Safe to call repeatedly;
  /// not reentrant (one batch at a time).
  void RunAll(const std::vector<std::function<void()>>& tasks) {
    if (tasks.empty()) return;
    // Claim state lives in a per-batch heap block shared with the workers:
    // a straggler that wakes up late (or is preempted between batches)
    // still holds *its* batch, whose index counter is exhausted, so it can
    // never claim into a newer batch or touch a task vector that has been
    // destroyed. Task claims with i < size happen only while this call is
    // still blocked in the wait below (pending > 0), when `tasks` is alive.
    auto batch = std::make_shared<Batch>();
    batch->tasks = &tasks;
    batch->size = tasks.size();
    {
      std::lock_guard<std::mutex> lock(mu_);
      CKNN_CHECK(!running_);  // Not reentrant.
      running_ = true;
      current_ = batch;
      pending_ = tasks.size();
      ++generation_;
    }
    wake_.notify_all();
    DrainTasks(*batch);
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [this] { return pending_ == 0; });
    current_.reset();
    running_ = false;
  }

 private:
  struct Batch {
    const std::vector<std::function<void()>>* tasks = nullptr;
    std::size_t size = 0;
    std::atomic<std::size_t> next{0};
  };

  /// Claims and runs tasks from `batch` until its index is exhausted.
  void DrainTasks(Batch& batch) {
    while (true) {
      const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch.size) return;
      (*batch.tasks)[i]();
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_.notify_all();
    }
  }

  void WorkerLoop() {
    std::uint64_t seen_generation = 0;
    while (true) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [&] {
          return shutdown_ || generation_ != seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
        batch = current_;
      }
      if (batch != nullptr) DrainTasks(*batch);
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Batch> current_;
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  bool running_ = false;
  bool shutdown_ = false;
};

}  // namespace cknn

#endif  // CKNN_UTIL_THREAD_POOL_H_

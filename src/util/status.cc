#include "src/util/status.h"

#include <cstdlib>

namespace cknn {

const char* StatusCodeName(StatusCode code) {
  // No `default:` on purpose: -Werror (-Wswitch) makes this switch total,
  // so a new StatusCode cannot land without a name. Every case returns;
  // falling out means `code` held a value outside the enum — a programming
  // error, never client input.
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
  }
  std::abort();  // cknn-lint: allow(abort) unreachable for in-range codes
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace cknn

#ifndef CKNN_UTIL_STATUS_H_
#define CKNN_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "src/util/macros.h"

namespace cknn {

/// \brief Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kIoError,
  kInternal,
};

/// \brief Lightweight status object used instead of exceptions (the library
/// is exception-free, following the Google/Arrow/RocksDB convention).
///
/// An OK status carries no allocation; error statuses carry a code and a
/// human-readable message.
///
/// The class is `CKNN_NODISCARD`: any call returning a Status by value is a
/// compile error under `-Werror` if the result is dropped. Propagate it,
/// handle it, or drop it deliberately with `CKNN_IGNORE_STATUS(expr,
/// "reason")` — never with a bare `(void)` cast (docs/static_analysis.md).
class CKNN_NODISCARD Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Name of a status code, e.g. "InvalidArgument". Total over the enum: the
/// switch in status.cc has no default, so adding a StatusCode without a
/// name fails the -Werror=switch build.
const char* StatusCodeName(StatusCode code);

/// Number of StatusCode enumerators (kOk included). Asserted against the
/// exhaustive StatusCodeName switch by tests/util/status_test.cc; bump it
/// when adding a code.
inline constexpr int kNumStatusCodes =
    static_cast<int>(StatusCode::kInternal) + 1;

}  // namespace cknn

/// \brief Aborts when `expr` yields a non-OK Status, printing it. For
/// internal must-succeed transitions only — like CKNN_CHECK it is banned
/// from the client-reachable layers (src/serve, tools, the Try*/Submit
/// entry points) by scripts/lint/status_lint.py: a client must get a
/// Status back, never a process abort.
#define CKNN_CHECK_OK(expr)                                                \
  do {                                                                     \
    ::cknn::Status _cknn_check_ok_st = (expr);                             \
    if (!_cknn_check_ok_st.ok()) {                                         \
      std::fprintf(stderr, "CKNN_CHECK_OK failed at %s:%d: %s\n",          \
                   __FILE__, __LINE__,                                     \
                   _cknn_check_ok_st.ToString().c_str());                  \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#endif  // CKNN_UTIL_STATUS_H_

#ifndef CKNN_UTIL_MACROS_H_
#define CKNN_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// \brief Always-on invariant check. Aborts with a source location on
/// violation. Used for programming errors that must never happen, as opposed
/// to runtime conditions which are reported through cknn::Status.
#define CKNN_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CKNN_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

/// \brief Debug-only invariant check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define CKNN_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define CKNN_DCHECK(cond) CKNN_CHECK(cond)
#endif

/// \brief Propagates a non-OK Status from an expression, RocksDB-style.
#define CKNN_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::cknn::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

/// \brief Marks a type or function whose return value must not be silently
/// dropped. `cknn::Status` and `cknn::Result<T>` carry it, so every
/// Status/Result-returning call in the tree is compiler-enforced under
/// `-Werror` (docs/static_analysis.md, "Status discipline"). Deliberate
/// drops go through CKNN_IGNORE_STATUS — never a bare `(void)` cast, which
/// scripts/lint/status_lint.py rejects as unauditable.
#define CKNN_NODISCARD [[nodiscard]]

/// \brief Audited, deliberate drop of a Status/Result return value.
///
///   CKNN_IGNORE_STATUS(front_end.Flush(),
///                      "best-effort flush on shutdown; last_error() "
///                      "keeps the status for diagnostics");
///
/// The reason is a mandatory string literal: it makes every intentional
/// drop greppable and reviewable, where `(void)` says nothing. The
/// expression is evaluated exactly once.
#define CKNN_IGNORE_STATUS(expr, reason)                                  \
  do {                                                                    \
    static_assert(sizeof(reason) > 1,                                     \
                  "CKNN_IGNORE_STATUS requires a non-empty reason");      \
    auto _cknn_ignored_status = (expr);                                   \
    static_cast<void>(_cknn_ignored_status);                              \
  } while (0)

#endif  // CKNN_UTIL_MACROS_H_

#ifndef CKNN_UTIL_MACROS_H_
#define CKNN_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// \brief Always-on invariant check. Aborts with a source location on
/// violation. Used for programming errors that must never happen, as opposed
/// to runtime conditions which are reported through cknn::Status.
#define CKNN_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CKNN_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

/// \brief Debug-only invariant check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define CKNN_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define CKNN_DCHECK(cond) CKNN_CHECK(cond)
#endif

/// \brief Propagates a non-OK Status from an expression, RocksDB-style.
#define CKNN_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::cknn::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

#endif  // CKNN_UTIL_MACROS_H_

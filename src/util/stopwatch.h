#ifndef CKNN_UTIL_STOPWATCH_H_
#define CKNN_UTIL_STOPWATCH_H_

#include <chrono>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#else
#include <ctime>
#endif

namespace cknn {

/// \brief Monotonic wall-clock stopwatch. On a serial single-shard run the
/// elapsed wall time equals the CPU time spent, but on sharded or
/// pipelined runs it does not — pair with `CpuStopwatch` when both views
/// are wanted (src/sim/metrics.h records them separately).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds elapsed since construction or the last Reset().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Process-CPU-time stopwatch: seconds of CPU consumed by *all*
/// threads of this process inside the measurement window. On POSIX it
/// reads CLOCK_PROCESS_CPUTIME_ID; elsewhere it falls back to
/// std::clock(), which on non-POSIX platforms may approximate wall time.
class CpuStopwatch {
 public:
  CpuStopwatch() : start_(Now()) {}

  void Reset() { start_ = Now(); }

  double ElapsedSeconds() const { return Now() - start_; }

 private:
  static double Now() {
#if defined(__unix__) || defined(__APPLE__)
    timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
#else
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
#endif
  }

  double start_;
};

}  // namespace cknn

#endif  // CKNN_UTIL_STOPWATCH_H_

#ifndef CKNN_UTIL_STOPWATCH_H_
#define CKNN_UTIL_STOPWATCH_H_

#include <chrono>

namespace cknn {

/// \brief Monotonic wall-clock stopwatch used for the per-timestamp CPU-time
/// measurements of the experimental section.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds elapsed since construction or the last Reset().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cknn

#endif  // CKNN_UTIL_STOPWATCH_H_

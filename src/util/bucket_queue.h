#ifndef CKNN_UTIL_BUCKET_QUEUE_H_
#define CKNN_UTIL_BUCKET_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/dense_id_map.h"
#include "src/util/macros.h"

namespace cknn {

/// \brief Double-bucket priority queue with decrease-key support — the
/// alternative frontier structure to `IndexedMinHeap` (style of road-router
/// engines: an array of low-range buckets plus one overflow bucket that is
/// redistributed when the low range drains).
///
/// Unlike a textbook bucket queue it stays EXACT for any bucket width:
/// entries keep their full double keys, and Pop scans the first non-empty
/// bucket for the true minimum. The width is therefore purely a performance
/// knob (it bounds how many entries that scan sees), never a correctness
/// one. Keys may be inserted below the current base after pops (IMA's
/// frontier repair does this); they are clamped into bucket 0 and the
/// cursor backs up, which preserves the exact-min property.
///
/// Positions are tracked in a `DenseIdMap`, so Erase/decrease-key are O(1)
/// plus the bucket swap-remove, and Clear is an epoch bump over retained
/// bucket capacity.
class BucketQueue {
 public:
  struct Entry {
    std::uint64_t id;
    double key;
  };

  explicit BucketQueue(double bucket_width = 1.0) : width_(bucket_width) {
    CKNN_CHECK(bucket_width > 0.0);
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// True iff `id` is currently enqueued.
  bool Contains(std::uint64_t id) const { return pos_.Contains(id); }

  /// Key of an enqueued id. Checked error if absent.
  double KeyOf(std::uint64_t id) const {
    const Pos* p = pos_.Find(id);
    CKNN_CHECK(p != nullptr);
    return EntryAt(*p).key;
  }

  /// Smallest entry. Checked error when empty. Non-const: locating the
  /// minimum may advance the cursor or redistribute the overflow bucket.
  const Entry& Top() {
    const Pos p = FindMin();
    return EntryAt(p);
  }

  /// Inserts a new id. Checked error if already present.
  void Push(std::uint64_t id, double key) {
    CKNN_CHECK(!pos_.Contains(id));
    Insert(id, key);
  }

  /// Inserts `id`, or lowers its key if already present with a larger key.
  /// Returns true if the queue changed.
  bool PushOrDecrease(std::uint64_t id, double key) {
    const Pos* p = pos_.Find(id);
    if (p == nullptr) {
      Insert(id, key);
      return true;
    }
    if (key >= EntryAt(*p).key) return false;
    RemoveAt(*p);
    Insert(id, key);
    return true;
  }

  /// Removes and returns the smallest entry.
  Entry Pop() {
    const Pos p = FindMin();
    const Entry out = EntryAt(p);
    RemoveAt(p);
    pos_.Erase(out.id);
    return out;
  }

  /// Removes an arbitrary id if present; returns true if it was removed.
  bool Erase(std::uint64_t id) {
    const Pos* p = pos_.Find(id);
    if (p == nullptr) return false;
    RemoveAt(*p);
    pos_.Erase(id);
    return true;
  }

  void Clear() {
    for (auto& b : buckets_) b.clear();
    overflow_.clear();
    pos_.Clear();
    size_ = 0;
    base_set_ = false;
    base_ = 0.0;
    cursor_ = 0;
  }

  /// Estimated heap footprint in bytes: every bucket's entry capacity plus
  /// the position index.
  std::size_t MemoryBytes() const {
    std::size_t bytes = overflow_.capacity() * sizeof(Entry);
    for (const auto& b : buckets_) bytes += b.capacity() * sizeof(Entry);
    return bytes + pos_.MemoryBytes();
  }

 private:
  static constexpr int kNumBuckets = 64;
  static constexpr int kOverflowBucket = -1;

  struct Pos {
    std::int32_t bucket = 0;  ///< kOverflowBucket or [0, kNumBuckets).
    std::uint32_t slot = 0;
  };

  std::vector<Entry>& BucketOf(std::int32_t bucket) {
    return bucket == kOverflowBucket ? overflow_ : buckets_[bucket];
  }
  const std::vector<Entry>& BucketOf(std::int32_t bucket) const {
    return bucket == kOverflowBucket ? overflow_ : buckets_[bucket];
  }
  Entry& EntryAt(const Pos& p) { return BucketOf(p.bucket)[p.slot]; }
  const Entry& EntryAt(const Pos& p) const { return BucketOf(p.bucket)[p.slot]; }

  /// Bucket index for `key` (clamped low keys land in bucket 0).
  std::int32_t IndexOf(double key) const {
    if (key < base_) return 0;
    const double span = (key - base_) / width_;
    if (span >= static_cast<double>(kNumBuckets)) return kOverflowBucket;
    return static_cast<std::int32_t>(span);
  }

  void Insert(std::uint64_t id, double key) {
    if (!base_set_) {
      base_ = key;
      base_set_ = true;
      cursor_ = 0;
    }
    const std::int32_t b = IndexOf(key);
    std::vector<Entry>& bucket = BucketOf(b);
    bucket.push_back(Entry{id, key});
    pos_[id] = Pos{b, static_cast<std::uint32_t>(bucket.size() - 1)};
    if (b != kOverflowBucket && b < cursor_) cursor_ = b;
    ++size_;
  }

  /// Swap-removes the entry at `p`, fixing the displaced entry's position.
  /// Does not touch pos_[entry.id] — callers erase or overwrite it.
  void RemoveAt(const Pos& p) {
    std::vector<Entry>& bucket = BucketOf(p.bucket);
    const std::uint32_t last = static_cast<std::uint32_t>(bucket.size() - 1);
    if (p.slot != last) {
      bucket[p.slot] = bucket[last];
      pos_[bucket[p.slot].id] = p;
    }
    bucket.pop_back();
    --size_;
  }

  /// Position of the exact minimum. Checked error when empty.
  Pos FindMin() {
    CKNN_CHECK(size_ > 0);
    while (true) {
      while (cursor_ < kNumBuckets && buckets_[cursor_].empty()) ++cursor_;
      if (cursor_ < kNumBuckets) break;
      Rebase();
    }
    const std::vector<Entry>& bucket = buckets_[cursor_];
    std::uint32_t best = 0;
    for (std::uint32_t i = 1; i < bucket.size(); ++i) {
      if (bucket[i].key < bucket[best].key) best = i;
    }
    return Pos{cursor_, best};
  }

  /// Low buckets drained: move the base to the overflow minimum and pull
  /// every overflow entry inside the new low range back into the buckets.
  /// The minimum itself lands in bucket 0, so progress is guaranteed.
  void Rebase() {
    CKNN_CHECK(!overflow_.empty());
    double min_key = overflow_[0].key;
    for (const Entry& e : overflow_) {
      if (e.key < min_key) min_key = e.key;
    }
    base_ = min_key;
    cursor_ = 0;
    std::vector<Entry> stale;
    stale.swap(overflow_);
    size_ -= stale.size();
    for (const Entry& e : stale) {
      // Re-route through Insert: entries still beyond the new range go
      // back to the overflow bucket, the rest land in their low bucket.
      const std::int32_t b = IndexOf(e.key);
      std::vector<Entry>& bucket = BucketOf(b);
      bucket.push_back(e);
      pos_[e.id] = Pos{b, static_cast<std::uint32_t>(bucket.size() - 1)};
      ++size_;
    }
  }

  std::vector<Entry> buckets_[kNumBuckets];
  std::vector<Entry> overflow_;
  DenseIdMap<Pos> pos_;
  double width_;
  double base_ = 0.0;
  bool base_set_ = false;
  int cursor_ = 0;
  std::size_t size_ = 0;
};

}  // namespace cknn

#endif  // CKNN_UTIL_BUCKET_QUEUE_H_

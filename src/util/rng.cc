#include "src/util/rng.h"

#include <cmath>

#include "src/util/macros.h"

namespace cknn {

namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::NextIndex(std::uint64_t n) {
  CKNN_CHECK(n > 0);
  // Rejection-free modulo is fine here: n is tiny relative to 2^64, so the
  // bias is far below anything observable in a simulation.
  return NextU64() % n;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  CKNN_CHECK(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  NextIndex(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  spare_gaussian_ = mag * std::sin(two_pi * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace cknn

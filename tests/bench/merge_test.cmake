# Tests for the JSON merge step of scripts/bench.sh (bench_merge.py):
# happy path, malformed per-figure output, missing counters, and duplicate
# figure names. Invoked by CTest as
#   cmake -DPYTHON3=<python3> -DMERGE_SCRIPT=<bench_merge.py>
#         -DWORK_DIR=<scratch dir> -P merge_test.cmake
if(NOT DEFINED PYTHON3 OR NOT DEFINED MERGE_SCRIPT OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
    "merge_test.cmake requires -DPYTHON3=, -DMERGE_SCRIPT= and -DWORK_DIR=")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# run_merge(<case> <expect_success> <input files...>) -> sets out/err/code.
function(run_merge case expect_success)
  execute_process(
    COMMAND ${PYTHON3} ${MERGE_SCRIPT}
      --out ${WORK_DIR}/${case}_merged.json --scale quick --seed 42 ${ARGN}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE code)
  if(expect_success AND NOT code EQUAL 0)
    message(FATAL_ERROR
      "${case}: merge failed unexpectedly (${code})\n${out}\n${err}")
  endif()
  if(NOT expect_success AND code EQUAL 0)
    message(FATAL_ERROR
      "${case}: merge succeeded but should have failed\n${out}\n${err}")
  endif()
  set(out "${out}" PARENT_SCOPE)
  set(err "${err}" PARENT_SCOPE)
endfunction()

function(expect_contains case text where)
  string(FIND "${where}" "${text}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "${case}: expected '${text}' in:\n${where}")
  endif()
endfunction()

# --------------------------------------------------------------- fixtures --
# Shapes mirror --benchmark_format=json output (both flavors): counters are
# top-level keys, errored entries carry error_occurred/error_message.

file(WRITE "${WORK_DIR}/fig_good_a.json" [=[
{
  "context": {"executable": "bench_fig_good_a"},
  "benchmarks": [
    {
      "name": "FigA/algo:0/N_thousands:10/iterations:1/manual_time",
      "run_type": "iteration", "iterations": 1,
      "real_time": 1.0, "cpu_time": 2.0, "time_unit": "ms",
      "sec_per_ts": 0.001, "max_sec": 0.002, "label": "OVH"
    },
    {
      "name": "FigA/algo:2/N_thousands:10/iterations:1/manual_time",
      "run_type": "iteration", "iterations": 1,
      "real_time": 0.5, "cpu_time": 1.0, "time_unit": "ms",
      "sec_per_ts": 0.0005, "max_sec": 0.001, "cpu_sec_per_ts": 0.0015,
      "label": "GMA"
    },
    {
      "name": "FigALarge/algo:0/iterations:1/manual_time",
      "run_type": "iteration", "iterations": 0,
      "error_occurred": true, "error_message": "paper scale only",
      "real_time": 0.0, "cpu_time": 0.0, "time_unit": "ms"
    }
  ]
}
]=])

file(WRITE "${WORK_DIR}/fig_good_b.json" [=[
{
  "context": {"executable": "bench_fig_good_b"},
  "benchmarks": [
    {
      "name": "FigB/algo:1/Q_thousands:1/iterations:1/manual_time",
      "run_type": "iteration", "iterations": 1,
      "real_time": 1.0, "cpu_time": 2.0, "time_unit": "ms",
      "sec_per_ts": 0.003, "mem_kb": 1234.5, "label": "IMA",
      "legacy_clone_mem_kb": 9876.5
    }
  ]
}
]=])

# A fig_serving-shaped capture: throughput and latency percentiles are
# non-standard counters and must ride along under "extras".
file(WRITE "${WORK_DIR}/fig_serving_like.json" [=[
{
  "context": {"executable": "bench_fig_serving_like"},
  "benchmarks": [
    {
      "name": "FigServing/algo:1/producers:4/iterations:1/manual_time",
      "run_type": "iteration", "iterations": 1,
      "real_time": 120.0, "cpu_time": 110.0, "time_unit": "ms",
      "sec_per_ts": 0.12, "max_sec": 0.2, "cpu_sec_per_ts": 0.11,
      "updates_per_sec": 150000.0,
      "p50_ms": 4.5, "p95_ms": 11.0, "p99_ms": 25.5,
      "max_queue_depth": 4096, "rejected_full": 0,
      "label": "IMA"
    }
  ]
}
]=])

file(WRITE "${WORK_DIR}/fig_malformed.json" "{ \"benchmarks\": [ truncated")

file(WRITE "${WORK_DIR}/fig_not_bench.json" "{ \"results\": [] }")

file(WRITE "${WORK_DIR}/fig_missing_counter.json" [=[
{
  "benchmarks": [
    {
      "name": "FigC/algo:1/iterations:1/manual_time",
      "run_type": "iteration", "iterations": 1,
      "real_time": 1.0, "cpu_time": 2.0, "time_unit": "ms", "label": "IMA"
    }
  ]
}
]=])

file(MAKE_DIRECTORY "${WORK_DIR}/dup")
file(COPY "${WORK_DIR}/fig_good_b.json" DESTINATION "${WORK_DIR}/dup")

# ------------------------------------------------------------- happy path --
run_merge(happy TRUE
  "${WORK_DIR}/fig_good_a.json" "${WORK_DIR}/fig_good_b.json")
file(READ "${WORK_DIR}/happy_merged.json" merged)
expect_contains(happy "\"figure\": \"fig_good_a\"" "${merged}")
expect_contains(happy "\"figure\": \"fig_good_b\"" "${merged}")
expect_contains(happy "\"algo\": \"GMA\"" "${merged}")
expect_contains(happy "\"mem_kb\": 1234.5" "${merged}")
expect_contains(happy "\"scale\": \"quick\"" "${merged}")
expect_contains(happy "\"seed\": 42" "${merged}")
# The errored paper-scale-only entry is skipped, not recorded.
expect_contains(happy "\"skipped_entries\": 1" "${merged}")
expect_contains(happy "\"N_thousands\": 10" "${merged}")
# The wall/CPU split: recorded when present, null when the capture
# predates the counter (fig_good_b has none).
expect_contains(happy "\"cpu_sec_per_ts\": 0.0015" "${merged}")
# Non-standard numeric counters survive the merge under "extras".
expect_contains(happy "\"legacy_clone_mem_kb\": 9876.5" "${merged}")
expect_contains(happy "\"extras\"" "${merged}")
expect_contains(happy "\"cpu_sec_per_ts\": null" "${merged}")

# ------------------------------------------- serving percentile counters --
run_merge(serving TRUE "${WORK_DIR}/fig_serving_like.json")
file(READ "${WORK_DIR}/serving_merged.json" serving_merged)
expect_contains(serving "\"figure\": \"fig_serving_like\"" "${serving_merged}")
expect_contains(serving "\"extras\"" "${serving_merged}")
expect_contains(serving "\"updates_per_sec\": 150000.0" "${serving_merged}")
expect_contains(serving "\"p50_ms\": 4.5" "${serving_merged}")
expect_contains(serving "\"p95_ms\": 11.0" "${serving_merged}")
expect_contains(serving "\"p99_ms\": 25.5" "${serving_merged}")
expect_contains(serving "\"max_queue_depth\": 4096" "${serving_merged}")
expect_contains(serving "\"rejected_full\": 0" "${serving_merged}")
expect_contains(serving "\"producers\": 4" "${serving_merged}")
# The standard counters stay top-level, not duplicated into extras.
expect_contains(serving "\"sec_per_ts\": 0.12" "${serving_merged}")
expect_contains(serving "\"cpu_sec_per_ts\": 0.11" "${serving_merged}")

# -------------------------------------------------- malformed figure JSON --
run_merge(malformed FALSE "${WORK_DIR}/fig_malformed.json")
expect_contains(malformed "malformed benchmark JSON" "${err}")

run_merge(not_bench FALSE "${WORK_DIR}/fig_not_bench.json")
expect_contains(not_bench "no 'benchmarks' array" "${err}")

# --------------------------------------------------------- missing counter --
run_merge(missing_counter FALSE "${WORK_DIR}/fig_missing_counter.json")
expect_contains(missing_counter "missing the sec_per_ts counter" "${err}")

# --------------------------------------------------- duplicate figure name --
run_merge(duplicate FALSE
  "${WORK_DIR}/fig_good_b.json" "${WORK_DIR}/dup/fig_good_b.json")
expect_contains(duplicate "duplicate figure name" "${err}")

# ------------------------------------------------------------- append mode --
# Re-capture fig_good_b into the happy-path file: fig_good_a records are
# kept, fig_good_b records are replaced by the new capture.
file(WRITE "${WORK_DIR}/fig_good_b_recapture/fig_good_b.json" [=[
{
  "benchmarks": [
    {
      "name": "FigB/algo:1/Q_thousands:1/iterations:1/manual_time",
      "run_type": "iteration", "iterations": 1,
      "real_time": 1.0, "cpu_time": 2.0, "time_unit": "ms",
      "sec_per_ts": 0.009, "mem_kb": 99.0, "label": "IMA"
    }
  ]
}
]=])
execute_process(
  COMMAND ${PYTHON3} ${MERGE_SCRIPT}
    --out ${WORK_DIR}/happy_merged.json --scale quick --seed 42 --append
    "${WORK_DIR}/fig_good_b_recapture/fig_good_b.json"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "append: merge failed (${code})\n${out}\n${err}")
endif()
file(READ "${WORK_DIR}/happy_merged.json" appended)
expect_contains(append_keeps_other_figures
  "\"figure\": \"fig_good_a\"" "${appended}")
expect_contains(append_replaces_recaptured
  "\"sec_per_ts\": 0.009" "${appended}")
string(FIND "${appended}" "\"sec_per_ts\": 0.003" old_pos)
if(NOT old_pos EQUAL -1)
  message(FATAL_ERROR
    "append: stale fig_good_b record survived the re-capture:\n${appended}")
endif()

# Appending a capture with a different scale must fail loudly.
execute_process(
  COMMAND ${PYTHON3} ${MERGE_SCRIPT}
    --out ${WORK_DIR}/happy_merged.json --scale paper --seed 42 --append
    "${WORK_DIR}/fig_good_b_recapture/fig_good_b.json"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE code)
if(code EQUAL 0)
  message(FATAL_ERROR "append with mismatched scale succeeded\n${out}\n${err}")
endif()
expect_contains(append_scale_mismatch "scale/seed mismatch" "${err}")

message(STATUS "bench_merge tests OK")

#include "src/graph/shortest_path.h"

#include "gtest/gtest.h"
#include "src/gen/network_gen.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

TEST(ShortestPathTest, DijkstraDistancesOnGrid) {
  RoadNetwork net = testing::MakeGrid(3);
  const auto dist = DijkstraDistances(net, 0);
  EXPECT_DOUBLE_EQ(dist.at(0), 0.0);
  EXPECT_DOUBLE_EQ(dist.at(1), 1.0);
  EXPECT_DOUBLE_EQ(dist.at(4), 2.0);
  EXPECT_DOUBLE_EQ(dist.at(8), 4.0);
  EXPECT_EQ(dist.size(), 9u);
}

TEST(ShortestPathTest, DijkstraRespectsMaxDist) {
  RoadNetwork net = testing::MakeGrid(3);
  const auto dist = DijkstraDistances(net, 0, 1.5);
  EXPECT_EQ(dist.count(8), 0u);
  EXPECT_EQ(dist.count(1), 1u);
}

TEST(ShortestPathTest, DijkstraUsesWeightsNotLengths) {
  RoadNetwork net = testing::MakeGrid(2);
  // Edges of MakeGrid(2): e0 = 0-1, e1 = 0-2, e2 = 1-3, e3 = 2-3.
  ASSERT_TRUE(net.SetWeight(0, 10.0).ok());
  const auto dist = DijkstraDistances(net, 0);
  EXPECT_DOUBLE_EQ(dist.at(1), 3.0);  // Around: 0-2-3-1 = 3 vs direct 10.
}

TEST(ShortestPathTest, PathReconstruction) {
  RoadNetwork net = testing::MakeGrid(3);
  const PathResult path = ShortestPath(net, 0, 8);
  ASSERT_TRUE(path.reachable);
  EXPECT_DOUBLE_EQ(path.distance, 4.0);
  EXPECT_EQ(path.nodes.size(), 5u);
  EXPECT_EQ(path.edges.size(), 4u);
  EXPECT_EQ(path.nodes.front(), 0u);
  EXPECT_EQ(path.nodes.back(), 8u);
  // Every consecutive node pair must be joined by the listed edge.
  for (std::size_t i = 0; i < path.edges.size(); ++i) {
    EXPECT_TRUE(net.IsEndpoint(path.edges[i], path.nodes[i]));
    EXPECT_TRUE(net.IsEndpoint(path.edges[i], path.nodes[i + 1]));
  }
}

TEST(ShortestPathTest, TrivialAndUnreachable) {
  RoadNetwork net;
  const NodeId a = net.AddNode(Point{0, 0});
  const NodeId b = net.AddNode(Point{1, 0});
  const NodeId c = net.AddNode(Point{5, 0});
  const NodeId d = net.AddNode(Point{6, 0});
  ASSERT_TRUE(net.AddEdge(a, b).ok());
  ASSERT_TRUE(net.AddEdge(c, d).ok());
  EXPECT_TRUE(ShortestPath(net, a, a).reachable);
  EXPECT_DOUBLE_EQ(ShortestPath(net, a, a).distance, 0.0);
  EXPECT_FALSE(ShortestPath(net, a, c).reachable);
}

TEST(ShortestPathTest, AStarMatchesDijkstraWhenWeightsAreLengths) {
  RoadNetwork net = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 400, .seed = 99});
  Rng rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.NextIndex(net.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.NextIndex(net.NumNodes()));
    const PathResult plain = ShortestPath(net, s, t, /*use_astar=*/false);
    const PathResult astar = ShortestPath(net, s, t, /*use_astar=*/true);
    ASSERT_EQ(plain.reachable, astar.reachable);
    if (plain.reachable) {
      EXPECT_NEAR(plain.distance, astar.distance, 1e-9);
    }
  }
}

TEST(ShortestPathTest, PointToPointSameEdge) {
  RoadNetwork net = testing::MakeGrid(3);
  EXPECT_DOUBLE_EQ(PointToPointDistance(net, NetworkPoint{0, 0.2},
                                        NetworkPoint{0, 0.7}),
                   0.5);
}

TEST(ShortestPathTest, PointToPointAcrossEdges) {
  RoadNetwork net = testing::MakeGrid(3);
  // Both points midway on two parallel horizontal edges one row apart.
  // MakeGrid(3) edge 0 is 0-1 (y=0); find the edge 3-4 by scanning.
  EdgeId top = kInvalidEdge;
  for (EdgeId e = 0; e < net.NumEdges(); ++e) {
    if ((net.edge(e).u == 3 && net.edge(e).v == 4) ||
        (net.edge(e).u == 4 && net.edge(e).v == 3)) {
      top = e;
    }
  }
  ASSERT_NE(top, kInvalidEdge);
  const double d = PointToPointDistance(net, NetworkPoint{0, 0.5},
                                        NetworkPoint{top, 0.5});
  EXPECT_DOUBLE_EQ(d, 2.0);  // 0.5 to a node, 1 up, 0.5 across.
}

TEST(ShortestPathTest, PointToPointIsSymmetric) {
  RoadNetwork net = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 300, .seed = 21});
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const NetworkPoint a{static_cast<EdgeId>(rng.NextIndex(net.NumEdges())),
                         rng.NextDouble()};
    const NetworkPoint b{static_cast<EdgeId>(rng.NextIndex(net.NumEdges())),
                         rng.NextDouble()};
    EXPECT_NEAR(PointToPointDistance(net, a, b),
                PointToPointDistance(net, b, a), 1e-9);
  }
}

}  // namespace
}  // namespace cknn

#include "src/graph/tiling.h"

#include <cmath>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "src/gen/network_gen.h"
#include "src/graph/road_network.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

// Structural invariants of a partition (docs/tiling.md): every node
// assigned, every tile non-empty, an edge owned by the tile of its u
// endpoint, a ghost slot iff the endpoints straddle a border (in the
// tile of v), and slot arrays consistent with the per-edge locators.
void CheckPartitionInvariants(const SharedTopology& topo,
                              const TilePartition& part) {
  ASSERT_EQ(part.NumNodes(), topo.NumNodes());
  ASSERT_EQ(part.NumEdges(), topo.NumEdges());
  const int tiles = part.num_tiles();
  ASSERT_GE(tiles, 1);

  std::size_t assigned = 0;
  for (int t = 0; t < tiles; ++t) {
    EXPECT_GE(part.NodeCount(t), 1u) << "empty tile " << t;
    assigned += part.NodeCount(t);
  }
  EXPECT_EQ(assigned, topo.NumNodes());
  for (NodeId n = 0; n < static_cast<NodeId>(topo.NumNodes()); ++n) {
    ASSERT_LT(part.TileOfNode(n), static_cast<std::uint32_t>(tiles));
  }

  std::size_t owned_total = 0, ghost_total = 0;
  for (int t = 0; t < tiles; ++t) {
    owned_total += part.OwnedEdges(t).size();
    ghost_total += part.GhostEdges(t).size();
    // Slot arrays ascend by edge id and agree with the locators.
    for (std::size_t s = 0; s < part.OwnedEdges(t).size(); ++s) {
      const EdgeId e = part.OwnedEdges(t)[s];
      if (s > 0) {
        EXPECT_LT(part.OwnedEdges(t)[s - 1], e);
      }
      EXPECT_EQ(part.Loc(e).owner_tile, static_cast<std::uint32_t>(t));
      EXPECT_EQ(part.Loc(e).owner_slot, static_cast<std::uint32_t>(s));
    }
    for (std::size_t s = 0; s < part.GhostEdges(t).size(); ++s) {
      const EdgeId e = part.GhostEdges(t)[s];
      if (s > 0) {
        EXPECT_LT(part.GhostEdges(t)[s - 1], e);
      }
      EXPECT_EQ(part.Loc(e).ghost_tile, static_cast<std::uint32_t>(t));
      EXPECT_EQ(part.Loc(e).ghost_slot, static_cast<std::uint32_t>(s));
    }
  }
  EXPECT_EQ(owned_total, topo.NumEdges());
  EXPECT_EQ(ghost_total, part.NumBorderEdges());

  for (EdgeId e = 0; e < static_cast<EdgeId>(topo.NumEdges()); ++e) {
    const SharedTopology::EdgeTopo& et = topo.edge(e);
    const std::uint32_t tu = part.TileOfNode(et.u);
    const std::uint32_t tv = part.TileOfNode(et.v);
    EXPECT_EQ(part.TileOfEdge(e), tu) << "edge " << e;
    if (tu == tv) {
      EXPECT_FALSE(part.IsBorderEdge(e)) << "edge " << e;
      EXPECT_EQ(part.Loc(e).ghost_tile, TilePartition::kNoGhost);
      EXPECT_EQ(part.Loc(e).ghost_slot, TilePartition::kNoGhost);
    } else {
      EXPECT_TRUE(part.IsBorderEdge(e)) << "edge " << e;
      EXPECT_EQ(part.Loc(e).ghost_tile, tv) << "edge " << e;
    }
  }
}

TEST(TilePartitionTest, GridInvariantsAcrossTileCounts) {
  const RoadNetwork net = testing::MakeGrid(8);
  ASSERT_NE(net.topology(), nullptr);
  for (const int tiles : {1, 2, 4, 7, 16}) {
    SCOPED_TRACE(tiles);
    auto part = TilePartition::Build(*net.topology(), tiles);
    ASSERT_NE(part, nullptr);
    EXPECT_EQ(part->num_tiles(), tiles);
    CheckPartitionInvariants(*net.topology(), *part);
    if (tiles == 1) {
      EXPECT_EQ(part->NumBorderEdges(), 0u);
    } else {
      EXPECT_GT(part->NumBorderEdges(), 0u);
    }
  }
}

TEST(TilePartitionTest, RandomNetworkInvariants) {
  NetworkGenConfig cfg;
  cfg.target_edges = 600;
  cfg.seed = 11;
  const RoadNetwork net = GenerateRoadNetwork(cfg);
  ASSERT_NE(net.topology(), nullptr);
  for (const int tiles : {1, 4, 16}) {
    SCOPED_TRACE(tiles);
    auto part = TilePartition::Build(*net.topology(), tiles);
    CheckPartitionInvariants(*net.topology(), *part);
  }
}

TEST(TilePartitionTest, TileCountClampedToNodes) {
  const RoadNetwork net = testing::MakeGrid(2);  // 4 nodes.
  auto part = TilePartition::Build(*net.topology(), 64);
  EXPECT_EQ(part->num_tiles(), 4);
  CheckPartitionInvariants(*net.topology(), *part);
}

TEST(TilePartitionTest, DeterministicForTopologyAndCount) {
  const RoadNetwork net = testing::MakeGrid(6);
  auto a = TilePartition::Build(*net.topology(), 4);
  auto b = TilePartition::Build(*net.topology(), 4);
  ASSERT_EQ(a->NumNodes(), b->NumNodes());
  for (NodeId n = 0; n < static_cast<NodeId>(a->NumNodes()); ++n) {
    ASSERT_EQ(a->TileOfNode(n), b->TileOfNode(n)) << n;
  }
  for (EdgeId e = 0; e < static_cast<EdgeId>(a->NumEdges()); ++e) {
    ASSERT_EQ(a->Loc(e).owner_slot, b->Loc(e).owner_slot) << e;
  }
}

// Retiling must preserve every weight bit-exactly, in both directions.
TEST(TiledWeightStoreTest, RetileRoundTripIsExact) {
  RoadNetwork net = testing::MakeGrid(7);
  Rng rng(99);
  std::vector<double> expected(net.NumEdges());
  for (EdgeId e = 0; e < static_cast<EdgeId>(net.NumEdges()); ++e) {
    expected[e] = 0.25 + rng.NextDouble() * 3.0;
    ASSERT_TRUE(net.SetWeight(e, expected[e]).ok());
  }
  for (const int tiles : {4, 16, 1, 5}) {
    SCOPED_TRACE(tiles);
    net.Retile(tiles);
    EXPECT_EQ(net.num_tiles(), tiles);
    for (EdgeId e = 0; e < static_cast<EdgeId>(net.NumEdges()); ++e) {
      // Bit-exact: tiling must not perturb the distance metric.
      ASSERT_EQ(net.WeightOf(e), expected[e]) << "edge " << e;
      ASSERT_EQ(net.edge(e).weight, expected[e]) << "edge " << e;
    }
  }
}

// Set on a tiled store writes the owner slot and mirrors the ghost slot
// (the halo invariant expansion relies on at tile borders).
TEST(TiledWeightStoreTest, SetMirrorsGhostSlots) {
  RoadNetwork net = testing::MakeGrid(6);
  net.Retile(4);
  const TilePartition* part = net.partition();
  ASSERT_NE(part, nullptr);
  ASSERT_GT(part->NumBorderEdges(), 0u);
  Rng rng(7);
  for (EdgeId e = 0; e < static_cast<EdgeId>(net.NumEdges()); ++e) {
    const double w = 0.5 + rng.NextDouble();
    ASSERT_TRUE(net.SetWeight(e, w).ok());
    const TilePartition::EdgeLoc& loc = part->Loc(e);
    const TiledWeightStore& ws = net.weights();
    ASSERT_EQ(ws.OwnedValue(static_cast<int>(loc.owner_tile),
                            loc.owner_slot), w);
    if (part->IsBorderEdge(e)) {
      ASSERT_EQ(ws.GhostValue(static_cast<int>(loc.ghost_tile),
                              loc.ghost_slot), w);
    }
  }
}

TEST(TiledWeightStoreTest, SharedViewHasIndependentWeights) {
  RoadNetwork net = testing::MakeGrid(5);
  net.Retile(4);
  RoadNetwork view = net.SharedView();
  EXPECT_TRUE(view.SharesTopologyWith(net));
  EXPECT_EQ(view.partition(), net.partition());  // Partition shared too.
  EXPECT_EQ(view.num_tiles(), 4);

  ASSERT_TRUE(view.SetWeight(0, 42.0).ok());
  EXPECT_EQ(view.WeightOf(0), 42.0);
  EXPECT_NE(net.WeightOf(0), 42.0);  // The base view is untouched.
  ASSERT_TRUE(net.SetWeight(1, 7.0).ok());
  EXPECT_NE(view.WeightOf(1), 7.0);
}

// Incidence iteration order — the source of every tie-dependent golden
// result — must not depend on the tile count.
TEST(TiledWeightStoreTest, RetilePreservesIncidenceOrder) {
  RoadNetwork net = testing::MakeGrid(6);
  std::vector<std::vector<EdgeId>> before(net.NumNodes());
  for (NodeId n = 0; n < static_cast<NodeId>(net.NumNodes()); ++n) {
    for (const auto& inc : net.Incidences(n)) before[n].push_back(inc.edge);
  }
  net.Retile(9);
  for (NodeId n = 0; n < static_cast<NodeId>(net.NumNodes()); ++n) {
    std::vector<EdgeId> after;
    for (const auto& inc : net.Incidences(n)) after.push_back(inc.edge);
    ASSERT_EQ(after, before[n]) << "node " << n;
  }
}

TEST(TiledWeightStoreTest, EmptyAndSingleNodeNetworks) {
  RoadNetwork empty;
  empty.Retile(1);  // No-op on an empty network.
  EXPECT_EQ(empty.num_tiles(), 1);

  RoadNetwork one;
  one.AddNode(Point{0, 0});
  one.Retile(8);  // Clamped to the node count.
  EXPECT_EQ(one.num_tiles(), 1);
}

}  // namespace
}  // namespace cknn

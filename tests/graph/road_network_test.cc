#include "src/graph/road_network.h"

#include "gtest/gtest.h"
#include "src/gen/network_gen.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

TEST(RoadNetworkTest, AddNodesAndEdges) {
  RoadNetwork net;
  const NodeId a = net.AddNode(Point{0, 0});
  const NodeId b = net.AddNode(Point{3, 4});
  auto e = net.AddEdge(a, b);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(net.NumNodes(), 2u);
  EXPECT_EQ(net.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(net.edge(*e).length, 5.0);
  EXPECT_DOUBLE_EQ(net.edge(*e).weight, 5.0);  // Initialized to length.
}

TEST(RoadNetworkTest, AddEdgeRejectsBadInput) {
  RoadNetwork net;
  const NodeId a = net.AddNode(Point{0, 0});
  const NodeId b = net.AddNode(Point{1, 0});
  EXPECT_TRUE(net.AddEdge(a, a).status().IsInvalidArgument());  // Self-loop.
  EXPECT_TRUE(net.AddEdge(a, 99).status().IsInvalidArgument());
  EXPECT_TRUE(net.AddEdge(99, b).status().IsInvalidArgument());
  // Zero-length edge (coincident nodes, no override).
  const NodeId c = net.AddNode(Point{0, 0});
  EXPECT_TRUE(net.AddEdge(a, c).status().IsInvalidArgument());
}

TEST(RoadNetworkTest, LengthOverride) {
  RoadNetwork net;
  const NodeId a = net.AddNode(Point{0, 0});
  const NodeId b = net.AddNode(Point{1, 0});
  auto e = net.AddEdge(a, b, 7.5);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(net.edge(*e).length, 7.5);
}

TEST(RoadNetworkTest, AdjacencyAndDegree) {
  RoadNetwork net = testing::MakeGrid(3);
  // Corner, border, and center degrees of a 3x3 grid.
  EXPECT_EQ(net.Degree(0), 2u);
  EXPECT_EQ(net.Degree(1), 3u);
  EXPECT_EQ(net.Degree(4), 4u);
  for (const RoadNetwork::Incidence& inc : net.Incidences(4)) {
    EXPECT_TRUE(net.IsEndpoint(inc.edge, 4));
    EXPECT_EQ(net.OtherEndpoint(inc.edge, 4), inc.neighbor);
  }
}

TEST(RoadNetworkTest, SetWeight) {
  RoadNetwork net = testing::MakeGrid(2);
  EXPECT_TRUE(net.SetWeight(0, 2.5).ok());
  EXPECT_DOUBLE_EQ(net.edge(0).weight, 2.5);
  EXPECT_DOUBLE_EQ(net.edge(0).length, 1.0);  // Length untouched.
  EXPECT_TRUE(net.SetWeight(0, -1.0).IsInvalidArgument());
  EXPECT_TRUE(net.SetWeight(999, 1.0).IsNotFound());
}

TEST(RoadNetworkTest, EdgeSegmentAndBoundingBox) {
  RoadNetwork net = testing::MakeGrid(3, 2.0);
  const Segment s = net.EdgeSegment(0);
  EXPECT_DOUBLE_EQ(s.Length(), 2.0);
  const Rect box = net.BoundingBox();
  EXPECT_DOUBLE_EQ(box.Width(), 4.0);
  EXPECT_DOUBLE_EQ(box.Height(), 4.0);
}

TEST(RoadNetworkTest, AverageEdgeLength) {
  RoadNetwork net = testing::MakeGrid(3);
  EXPECT_DOUBLE_EQ(net.AverageEdgeLength(), 1.0);
  RoadNetwork empty;
  EXPECT_DOUBLE_EQ(empty.AverageEdgeLength(), 0.0);
}

TEST(RoadNetworkTest, CloneIsDeepAndPreservesWeights) {
  RoadNetwork net = testing::MakeGrid(3);
  ASSERT_TRUE(net.SetWeight(2, 9.0).ok());
  RoadNetwork copy = CloneNetwork(net);
  EXPECT_EQ(copy.NumNodes(), net.NumNodes());
  EXPECT_EQ(copy.NumEdges(), net.NumEdges());
  EXPECT_DOUBLE_EQ(copy.edge(2).weight, 9.0);
  ASSERT_TRUE(copy.SetWeight(2, 1.0).ok());
  EXPECT_DOUBLE_EQ(net.edge(2).weight, 9.0);  // Original untouched.
}

TEST(RoadNetworkTest, MemoryBytesNonTrivial) {
  RoadNetwork net = testing::MakeGrid(4);
  EXPECT_GT(net.MemoryBytes(), 100u);
}

}  // namespace
}  // namespace cknn

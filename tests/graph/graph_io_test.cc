#include "src/graph/graph_io.h"

#include <cstdio>
#include <fstream>

#include "gtest/gtest.h"
#include "src/gen/network_gen.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

std::string TempPrefix(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(GraphIoTest, RoundTripPreservesTopologyAndLengths) {
  RoadNetwork net = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 150, .seed = 3});
  const std::string prefix = TempPrefix("roundtrip");
  ASSERT_TRUE(SaveNetwork(net, prefix).ok());
  auto loaded = LoadNetwork(prefix);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->NumNodes(), net.NumNodes());
  ASSERT_EQ(loaded->NumEdges(), net.NumEdges());
  for (NodeId n = 0; n < net.NumNodes(); ++n) {
    EXPECT_NEAR(loaded->NodePosition(n).x, net.NodePosition(n).x, 1e-6);
    EXPECT_NEAR(loaded->NodePosition(n).y, net.NodePosition(n).y, 1e-6);
  }
  for (EdgeId e = 0; e < net.NumEdges(); ++e) {
    EXPECT_EQ(loaded->edge(e).u, net.edge(e).u);
    EXPECT_EQ(loaded->edge(e).v, net.edge(e).v);
    EXPECT_NEAR(loaded->edge(e).length, net.edge(e).length, 1e-6);
    // Weights load as lengths (initial condition).
    EXPECT_NEAR(loaded->edge(e).weight, loaded->edge(e).length, 1e-12);
  }
}

TEST(GraphIoTest, MissingFileIsIoError) {
  EXPECT_TRUE(LoadNetwork("/nonexistent/prefix").status().IsIoError());
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  const std::string prefix = TempPrefix("comments");
  {
    std::ofstream nodes(prefix + ".cnode");
    nodes << "# header\n\n0 0.0 0.0\n1 1.0 0.0\n";
    std::ofstream edges(prefix + ".cedge");
    edges << "# header\n0 0 1 1.5\n";
  }
  auto net = LoadNetwork(prefix);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->NumNodes(), 2u);
  EXPECT_EQ(net->NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(net->edge(0).length, 1.5);
}

TEST(GraphIoTest, NonDenseIdsRejected) {
  const std::string prefix = TempPrefix("sparse");
  {
    std::ofstream nodes(prefix + ".cnode");
    nodes << "5 0.0 0.0\n";
    std::ofstream edges(prefix + ".cedge");
  }
  EXPECT_TRUE(LoadNetwork(prefix).status().IsInvalidArgument());
}

TEST(GraphIoTest, MalformedLineRejected) {
  const std::string prefix = TempPrefix("malformed");
  {
    std::ofstream nodes(prefix + ".cnode");
    nodes << "0 0.0 0.0\n1 oops 0.0\n";
    std::ofstream edges(prefix + ".cedge");
  }
  EXPECT_TRUE(LoadNetwork(prefix).status().IsIoError());
}

}  // namespace
}  // namespace cknn

#include "src/graph/network_point.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

class NetworkPointTest : public ::testing::Test {
 protected:
  NetworkPointTest() : net_(testing::MakeGrid(2)) {
    // Make the weight differ from the length to catch unit mix-ups.
    EXPECT_TRUE(net_.SetWeight(0, 4.0).ok());
  }
  RoadNetwork net_;
};

TEST_F(NetworkPointTest, WeightOffsets) {
  const NetworkPoint p{0, 0.25};
  EXPECT_DOUBLE_EQ(WeightOffsetFromU(net_, p), 1.0);
  EXPECT_DOUBLE_EQ(WeightOffsetFromV(net_, p), 3.0);
}

TEST_F(NetworkPointTest, LengthOffsetUsesGeometry) {
  const NetworkPoint p{0, 0.25};
  EXPECT_DOUBLE_EQ(LengthOffsetFromU(net_, p), 0.25);
}

TEST_F(NetworkPointTest, AlongEdgeDistanceUsesWeight) {
  EXPECT_DOUBLE_EQ(
      AlongEdgeDistance(net_, NetworkPoint{0, 0.25}, NetworkPoint{0, 0.75}),
      2.0);
}

TEST_F(NetworkPointTest, ToEuclidean) {
  // Edge 0 of MakeGrid(2) connects node 0 (0,0) and node 1 (1,0).
  const Point p = ToEuclidean(net_, NetworkPoint{0, 0.5});
  EXPECT_DOUBLE_EQ(p.x, 0.5);
  EXPECT_DOUBLE_EQ(p.y, 0.0);
}

TEST_F(NetworkPointTest, AtNodeAndIsAtNode) {
  const NetworkPoint p = AtNode(net_, 0);
  EXPECT_TRUE(IsAtNode(net_, p, 0));
  EXPECT_FALSE(IsAtNode(net_, p, 1));
  const NetworkPoint q = AtNode(net_, 3);
  EXPECT_TRUE(IsAtNode(net_, q, 3));
}

TEST_F(NetworkPointTest, Equality) {
  EXPECT_EQ((NetworkPoint{1, 0.5}), (NetworkPoint{1, 0.5}));
  EXPECT_FALSE((NetworkPoint{1, 0.5}) == (NetworkPoint{2, 0.5}));
}

}  // namespace
}  // namespace cknn

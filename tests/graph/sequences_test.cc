#include "src/graph/sequences.h"

#include <set>

#include "gtest/gtest.h"
#include "src/gen/network_gen.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

TEST(SequencesTest, Figure11Decomposition) {
  // The paper states the Figure-11 network has exactly seven sequences:
  // {n1n8}, {n1n9}, {n1n7,n7n6,n6n5}, {n1n2}, {n2n3}, {n2n5}, {n5n4}.
  RoadNetwork net = testing::MakeFigure11();
  SequenceTable st = SequenceTable::Build(net);
  EXPECT_EQ(st.NumSequences(), 7u);
  // The chain n1-n7-n6-n5 (edges 2,3,4) is one sequence.
  const SequenceId chain = st.SequenceOf(2);
  EXPECT_EQ(st.SequenceOf(3), chain);
  EXPECT_EQ(st.SequenceOf(4), chain);
  const auto& seq = st.sequence(chain);
  EXPECT_EQ(seq.edges.size(), 3u);
  EXPECT_FALSE(seq.is_cycle);
  // Endpoints are the intersections n1 (node 0) and n5 (node 4).
  std::set<NodeId> ends{seq.EndpointA(), seq.EndpointB()};
  EXPECT_EQ(ends, (std::set<NodeId>{0, 4}));
  // Singleton sequences.
  EXPECT_NE(st.SequenceOf(0), st.SequenceOf(1));
  EXPECT_EQ(st.sequence(st.SequenceOf(0)).edges.size(), 1u);
}

TEST(SequencesTest, PositionsAndOrientation) {
  RoadNetwork net = testing::MakeFigure11();
  SequenceTable st = SequenceTable::Build(net);
  const SequenceId chain = st.SequenceOf(3);
  const auto& seq = st.sequence(chain);
  // Edge order must follow the path; positions must be consistent.
  for (std::uint32_t i = 0; i < seq.edges.size(); ++i) {
    const EdgeId e = seq.edges[i];
    EXPECT_EQ(st.PositionOf(e), i);
    const RoadNetwork::Edge& ed = net.edge(e);
    if (st.ForwardOriented(e)) {
      EXPECT_EQ(ed.u, seq.nodes[i]);
      EXPECT_EQ(ed.v, seq.nodes[i + 1]);
    } else {
      EXPECT_EQ(ed.v, seq.nodes[i]);
      EXPECT_EQ(ed.u, seq.nodes[i + 1]);
    }
  }
}

TEST(SequencesTest, PureCycleComponent) {
  RoadNetwork net;
  // A triangle where all nodes have degree 2: one cyclic sequence.
  const NodeId a = net.AddNode(Point{0, 0});
  const NodeId b = net.AddNode(Point{1, 0});
  const NodeId c = net.AddNode(Point{0, 1});
  ASSERT_TRUE(net.AddEdge(a, b).ok());
  ASSERT_TRUE(net.AddEdge(b, c).ok());
  ASSERT_TRUE(net.AddEdge(c, a).ok());
  SequenceTable st = SequenceTable::Build(net);
  EXPECT_EQ(st.NumSequences(), 1u);
  const auto& seq = st.sequence(0);
  EXPECT_TRUE(seq.is_cycle);
  EXPECT_EQ(seq.edges.size(), 3u);
  EXPECT_EQ(seq.nodes.front(), seq.nodes.back());
}

TEST(SequencesTest, AnchoredLoop) {
  // A loop hanging off an intersection: n0 has degree 4 (two loop edges,
  // two spokes), loop nodes have degree 2.
  RoadNetwork net;
  const NodeId hub = net.AddNode(Point{0, 0});
  const NodeId l1 = net.AddNode(Point{1, 0});
  const NodeId l2 = net.AddNode(Point{1, 1});
  const NodeId s1 = net.AddNode(Point{-1, 0});
  const NodeId s2 = net.AddNode(Point{0, -1});
  ASSERT_TRUE(net.AddEdge(hub, l1).ok());
  ASSERT_TRUE(net.AddEdge(l1, l2).ok());
  ASSERT_TRUE(net.AddEdge(l2, hub).ok());
  ASSERT_TRUE(net.AddEdge(hub, s1).ok());
  ASSERT_TRUE(net.AddEdge(hub, s2).ok());
  SequenceTable st = SequenceTable::Build(net);
  EXPECT_EQ(st.NumSequences(), 3u);  // Loop + two spokes.
  const auto& loop = st.sequence(st.SequenceOf(1));
  EXPECT_EQ(loop.EndpointA(), hub);
  EXPECT_EQ(loop.EndpointB(), hub);
  EXPECT_TRUE(loop.is_cycle);
}

TEST(SequencesTest, GridHasOnlySingletonSequences) {
  // Every interior grid node has degree >= 3 except corners (degree 2)...
  // use a 2x2 grid: all four nodes have degree 2 -> it is one pure cycle.
  RoadNetwork net = testing::MakeGrid(2);
  SequenceTable st = SequenceTable::Build(net);
  EXPECT_EQ(st.NumSequences(), 1u);
  EXPECT_TRUE(st.sequence(0).is_cycle);
  // A 4x4 grid has interior structure: corners fold into chains.
  RoadNetwork net4 = testing::MakeGrid(4);
  SequenceTable st4 = SequenceTable::Build(net4);
  EXPECT_GT(st4.NumSequences(), 1u);
}

/// Partition property on generated road networks: every edge belongs to
/// exactly one sequence, positions are consistent, intermediate nodes have
/// degree 2, and endpoints don't.
class SequencesPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SequencesPropertyTest, DecompositionIsAPartition) {
  RoadNetwork net = GenerateRoadNetwork(NetworkGenConfig{
      .target_edges = 600, .seed = static_cast<std::uint64_t>(GetParam())});
  SequenceTable st = SequenceTable::Build(net);
  std::vector<int> edge_seen(net.NumEdges(), 0);
  for (SequenceId s = 0; s < st.NumSequences(); ++s) {
    const auto& seq = st.sequence(s);
    ASSERT_EQ(seq.nodes.size(), seq.edges.size() + 1);
    for (std::uint32_t i = 0; i < seq.edges.size(); ++i) {
      const EdgeId e = seq.edges[i];
      ++edge_seen[e];
      EXPECT_EQ(st.SequenceOf(e), s);
      EXPECT_EQ(st.PositionOf(e), i);
      // Edge endpoints match consecutive path nodes.
      const RoadNetwork::Edge& ed = net.edge(e);
      const std::set<NodeId> got{ed.u, ed.v};
      const std::set<NodeId> want{seq.nodes[i], seq.nodes[i + 1]};
      EXPECT_EQ(got, want);
    }
    // Interior nodes have degree exactly 2.
    for (std::size_t i = 1; i + 1 < seq.nodes.size(); ++i) {
      EXPECT_EQ(net.Degree(seq.nodes[i]), 2u);
    }
    if (!seq.is_cycle) {
      EXPECT_NE(net.Degree(seq.EndpointA()), 2u);
      EXPECT_NE(net.Degree(seq.EndpointB()), 2u);
    }
  }
  for (EdgeId e = 0; e < net.NumEdges(); ++e) {
    EXPECT_EQ(edge_seen[e], 1) << "edge " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequencesPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace cknn

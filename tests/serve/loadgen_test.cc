// RunLoadScenario's report contract: a clean run of the generated (valid)
// workload applies updates and reports engine_error == OK. Regression for
// the report dropping the front end's latched last_error(): engine_error
// is the only way a scenario consumer can tell a clean run from one whose
// updates the engine refused (stats stay plausible either way — see
// FrontEndTest.OkFlushDoesNotClearTheEngineErrorWitness).

#include "src/serve/loadgen.h"

#include "gtest/gtest.h"

namespace cknn::serve {
namespace {

TEST(LoadScenarioTest, SmallRunReportsCleanEngine) {
  LoadScenarioConfig config;
  config.network.target_edges = 200;
  config.num_objects = 200;
  config.num_queries = 20;
  config.k = 2;
  config.producers = 2;
  config.bursts = 2;
  config.heavy_every = 0;
  config.queue_capacity = std::size_t{1} << 12;
  Result<LoadScenarioReport> run = RunLoadScenario(config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->engine_error.ok()) << run->engine_error.ToString();
  EXPECT_GT(run->stats.applied, 0u);
  // The generated workload is valid end to end: nothing may have been
  // silently refused by the engine or the batch builder.
  EXPECT_EQ(run->stats.rejected_invalid, 0u);
}

}  // namespace
}  // namespace cknn::serve

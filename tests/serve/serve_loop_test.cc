// End-to-end serve loop over a socketpair (src/serve/serve_loop.h): one
// response frame per request in order, recoverable payload errors keep
// the connection alive, fatal framing errors and truncation close it
// cleanly, and kShutdown stops the loop. This is the same code path a
// cknn_serve TCP connection runs — minus the flaky parts.

#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/server.h"
#include "src/gen/network_gen.h"
#include "src/serve/front_end.h"
#include "src/serve/protocol.h"
#include "src/serve/serve_loop.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <unistd.h>

namespace cknn::serve {
namespace {

class ServeLoopTest : public ::testing::Test {
 protected:
  ServeLoopTest()
      : server_(GenerateRoadNetwork(NetworkGenConfig{.target_edges = 200,
                                                     .seed = 7}),
                Algorithm::kIma, /*num_shards=*/1, /*pipeline_depth=*/2),
        front_end_(&server_) {
    front_end_.Start();
  }

  /// Starts the loop on one end of a fresh socketpair; returns the
  /// client end.
  int StartLoop() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    loop_ = std::thread([this, server_fd = fds[0]] {
      result_ = ServeConnection(server_fd, &front_end_);
      ::close(server_fd);
    });
    return fds[1];
  }

  void JoinLoop(int client_fd) {
    ::close(client_fd);
    loop_.join();
  }

  void WriteAll(int fd, const std::vector<std::uint8_t>& bytes) {
    std::size_t at = 0;
    while (at < bytes.size()) {
      const ssize_t n = ::write(fd, bytes.data() + at, bytes.size() - at);
      ASSERT_GT(n, 0);
      at += static_cast<std::size_t>(n);
    }
  }

  /// Reads until one whole response frame is decoded.
  Response ReadResponse(int fd) {
    while (true) {
      Result<std::optional<std::vector<std::uint8_t>>> next =
          decoder_.Next();
      EXPECT_TRUE(next.ok()) << next.status().ToString();
      if (next.ok() && next->has_value()) {
        Result<Response> response =
            DecodeResponse((*next)->data(), (*next)->size());
        EXPECT_TRUE(response.ok()) << response.status().ToString();
        return response.ok() ? *response : Response{};
      }
      std::uint8_t chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      EXPECT_GT(n, 0) << "connection closed while awaiting a response";
      if (n <= 0) return Response{};
      decoder_.Append(chunk, static_cast<std::size_t>(n));
    }
  }

  Response Transact(int fd, const Message& message) {
    std::vector<std::uint8_t> frame;
    EncodeMessage(message, &frame);
    WriteAll(fd, frame);
    return ReadResponse(fd);
  }

  MonitoringServer server_;
  ServingFrontEnd front_end_;
  FrameDecoder decoder_;
  std::thread loop_;
  ServeLoopResult result_;
};

TEST_F(ServeLoopTest, FullSessionInOrder) {
  const int fd = StartLoop();
  Message m;
  m.op = OpCode::kInstallQuery;
  m.id = 3;
  m.edge = 0;
  m.t = 0.5;
  m.k = 2;
  EXPECT_EQ(Transact(fd, m).code, StatusCode::kOk);

  m = Message();
  m.op = OpCode::kAddObject;
  m.id = 11;
  m.edge = 0;
  m.t = 0.25;
  EXPECT_EQ(Transact(fd, m).code, StatusCode::kOk);

  m = Message();
  m.op = OpCode::kFlush;
  EXPECT_EQ(Transact(fd, m).code, StatusCode::kOk);

  m = Message();
  m.op = OpCode::kRead;
  m.id = 3;
  Response read = Transact(fd, m);
  EXPECT_EQ(read.kind, ResponseKind::kRead);
  EXPECT_EQ(read.code, StatusCode::kOk);
  ASSERT_EQ(read.neighbors.size(), 1u);
  EXPECT_EQ(read.neighbors[0].id, 11u);

  // Reading an unknown query is an error response, not a dead connection.
  m.id = 999;
  Response missing = Transact(fd, m);
  EXPECT_EQ(missing.kind, ResponseKind::kStatus);
  EXPECT_EQ(missing.code, StatusCode::kNotFound);

  m = Message();
  m.op = OpCode::kStats;
  Response stats = Transact(fd, m);
  EXPECT_EQ(stats.kind, ResponseKind::kStats);
  EXPECT_EQ(stats.stats.applied, 2u);

  m = Message();
  m.op = OpCode::kShutdown;
  EXPECT_EQ(Transact(fd, m).code, StatusCode::kOk);
  JoinLoop(fd);
  EXPECT_TRUE(result_.shutdown);
  EXPECT_EQ(result_.frames, 7u);
}

TEST_F(ServeLoopTest, PayloadErrorsKeepTheConnectionAlive) {
  const int fd = StartLoop();

  // Unknown opcode inside an intact frame: an error response, then
  // business as usual.
  std::vector<std::uint8_t> bad = {0, 0, 0, 1, 0xEE};
  WriteAll(fd, bad);
  EXPECT_EQ(ReadResponse(fd).code, StatusCode::kInvalidArgument);

  // A size-mismatched kRead payload (2 bytes instead of 9).
  bad = {0, 0, 0, 2, 8, 0};
  WriteAll(fd, bad);
  EXPECT_EQ(ReadResponse(fd).code, StatusCode::kInvalidArgument);

  Message m;
  m.op = OpCode::kStats;
  EXPECT_EQ(Transact(fd, m).kind, ResponseKind::kStats);

  m.op = OpCode::kShutdown;
  EXPECT_EQ(Transact(fd, m).code, StatusCode::kOk);
  JoinLoop(fd);
  EXPECT_TRUE(result_.shutdown);
}

TEST_F(ServeLoopTest, FramingErrorClosesAfterReporting) {
  const int fd = StartLoop();
  const std::vector<std::uint8_t> zeros = {0, 0, 0, 0};  // Empty payload.
  WriteAll(fd, zeros);
  EXPECT_EQ(ReadResponse(fd).code, StatusCode::kInvalidArgument);
  // The loop hangs up: the next read sees EOF.
  std::uint8_t byte = 0;
  EXPECT_EQ(::read(fd, &byte, 1), 0);
  JoinLoop(fd);
  EXPECT_FALSE(result_.status.ok());
  EXPECT_FALSE(result_.shutdown);
}

TEST_F(ServeLoopTest, TruncatedFrameIsReportedAtEof) {
  const int fd = StartLoop();
  std::vector<std::uint8_t> frame;
  Message m;
  m.op = OpCode::kAddObject;
  m.id = 1;
  m.edge = 0;
  m.t = 0.5;
  EncodeMessage(m, &frame);
  frame.resize(frame.size() - 4);  // Cut mid-frame...
  WriteAll(fd, frame);
  ::shutdown(fd, SHUT_WR);  // ...and hang up.
  loop_.join();
  ::close(fd);
  EXPECT_TRUE(result_.status.IsInvalidArgument());
  // The truncated frame never reached the engine.
  EXPECT_EQ(front_end_.Stats().accepted, 0u);
}

}  // namespace
}  // namespace cknn::serve

#else

// Non-POSIX: the serve loop is a stub; nothing to test here.

#endif

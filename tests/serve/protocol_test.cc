// Wire-protocol round trips and malformed-frame rejection
// (src/serve/protocol.h): every opcode survives encode -> reassemble ->
// decode under arbitrary chunking; truncated, oversized, and malformed
// frames are rejected cleanly (fatal for framing, recoverable for
// payloads) without any partial decode escaping.

#include <cstdint>
#include <optional>
#include <vector>

#include "gtest/gtest.h"
#include "src/serve/protocol.h"

namespace cknn::serve {
namespace {

/// Feeds `bytes` to a fresh decoder in `chunk`-sized pieces and returns
/// every completed payload.
std::vector<std::vector<std::uint8_t>> Reassemble(
    const std::vector<std::uint8_t>& bytes, std::size_t chunk) {
  FrameDecoder decoder;
  std::vector<std::vector<std::uint8_t>> payloads;
  for (std::size_t at = 0; at < bytes.size(); at += chunk) {
    const std::size_t n = std::min(chunk, bytes.size() - at);
    decoder.Append(bytes.data() + at, n);
    while (true) {
      Result<std::optional<std::vector<std::uint8_t>>> next = decoder.Next();
      EXPECT_TRUE(next.ok()) << next.status().ToString();
      if (!next.ok() || !next->has_value()) break;
      payloads.push_back(std::move(**next));
    }
  }
  EXPECT_TRUE(decoder.Finish().ok());
  return payloads;
}

Message SampleMessage(OpCode op) {
  Message m;
  m.op = op;
  m.id = 0x0123456789ABCDEFull;
  m.edge = 42;
  m.t = 0.625;
  m.k = 7;
  m.weight = -3.5;
  return m;
}

TEST(ProtocolTest, EveryOpcodeRoundTrips) {
  const OpCode ops[] = {
      OpCode::kInstallQuery, OpCode::kMoveQuery, OpCode::kTerminateQuery,
      OpCode::kAddObject,    OpCode::kMoveObject, OpCode::kRemoveObject,
      OpCode::kUpdateWeight, OpCode::kRead,      OpCode::kFlush,
      OpCode::kStats,        OpCode::kShutdown,
  };
  std::vector<std::uint8_t> stream;
  for (OpCode op : ops) EncodeMessage(SampleMessage(op), &stream);

  // Reassembly must be chunking-independent: whole stream, byte-by-byte,
  // and an odd prime in between.
  for (std::size_t chunk : {stream.size(), std::size_t{1}, std::size_t{7}}) {
    SCOPED_TRACE("chunk " + std::to_string(chunk));
    const auto payloads = Reassemble(stream, chunk);
    ASSERT_EQ(payloads.size(), std::size(ops));
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      Result<Message> decoded =
          DecodeMessage(payloads[i].data(), payloads[i].size());
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      const Message expect = SampleMessage(ops[i]);
      EXPECT_EQ(decoded->op, expect.op);
      switch (ops[i]) {
        case OpCode::kInstallQuery:
          EXPECT_EQ(decoded->k, expect.k);
          [[fallthrough]];
        case OpCode::kMoveQuery:
        case OpCode::kAddObject:
        case OpCode::kMoveObject:
          EXPECT_EQ(decoded->edge, expect.edge);
          EXPECT_EQ(decoded->t, expect.t);
          [[fallthrough]];
        case OpCode::kTerminateQuery:
        case OpCode::kRemoveObject:
        case OpCode::kRead:
          EXPECT_EQ(decoded->id, expect.id);
          break;
        case OpCode::kUpdateWeight:
          EXPECT_EQ(decoded->edge, expect.edge);
          EXPECT_EQ(decoded->weight, expect.weight);
          break;
        default:
          break;
      }
    }
  }
}

TEST(ProtocolTest, ToServeRequestMapsUpdateOpsOnly) {
  Result<ServeRequest> install =
      ToServeRequest(SampleMessage(OpCode::kInstallQuery));
  ASSERT_TRUE(install.ok());
  EXPECT_EQ(install->op, ServeRequest::Op::kInstallQuery);
  EXPECT_EQ(install->k, 7);

  // kUpdateWeight addresses an edge: the edge field is the request id.
  Result<ServeRequest> weight =
      ToServeRequest(SampleMessage(OpCode::kUpdateWeight));
  ASSERT_TRUE(weight.ok());
  EXPECT_EQ(weight->op, ServeRequest::Op::kUpdateWeight);
  EXPECT_EQ(weight->id, 42u);
  EXPECT_EQ(weight->weight, -3.5);

  for (OpCode op :
       {OpCode::kRead, OpCode::kFlush, OpCode::kStats, OpCode::kShutdown}) {
    EXPECT_TRUE(
        ToServeRequest(SampleMessage(op)).status().IsInvalidArgument());
  }
}

TEST(ProtocolTest, ResponsesRoundTrip) {
  std::vector<std::uint8_t> stream;
  EncodeStatusResponse(Status::NotFound("unknown query 9"), &stream);
  EncodeReadResponse({Neighbor{3, 1.5}, Neighbor{9, 2.25}}, &stream);
  ServingStats stats;
  stats.accepted = 100;
  stats.applied = 90;
  stats.rejected_queue_full = 7;
  stats.rejected_invalid = 3;
  stats.ticks = 12;
  stats.max_queue_depth = 64;
  stats.latency_samples = 90;
  stats.latency_p50_sec = 0.001;
  stats.latency_p95_sec = 0.002;
  stats.latency_p99_sec = 0.004;
  stats.latency_max_sec = 0.008;
  EncodeStatsResponse(stats, &stream);

  const auto payloads = Reassemble(stream, 5);
  ASSERT_EQ(payloads.size(), 3u);

  Result<Response> status =
      DecodeResponse(payloads[0].data(), payloads[0].size());
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->kind, ResponseKind::kStatus);
  EXPECT_EQ(status->code, StatusCode::kNotFound);
  EXPECT_EQ(status->message, "unknown query 9");

  Result<Response> read =
      DecodeResponse(payloads[1].data(), payloads[1].size());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->kind, ResponseKind::kRead);
  EXPECT_EQ(read->code, StatusCode::kOk);
  ASSERT_EQ(read->neighbors.size(), 2u);
  EXPECT_TRUE(read->neighbors[0] == (Neighbor{3, 1.5}));
  EXPECT_TRUE(read->neighbors[1] == (Neighbor{9, 2.25}));

  Result<Response> decoded =
      DecodeResponse(payloads[2].data(), payloads[2].size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, ResponseKind::kStats);
  EXPECT_EQ(decoded->stats.accepted, 100u);
  EXPECT_EQ(decoded->stats.applied, 90u);
  EXPECT_EQ(decoded->stats.rejected_queue_full, 7u);
  EXPECT_EQ(decoded->stats.rejected_invalid, 3u);
  EXPECT_EQ(decoded->stats.ticks, 12u);
  EXPECT_EQ(decoded->stats.max_queue_depth, 64u);
  EXPECT_EQ(decoded->stats.latency_samples, 90u);
  EXPECT_EQ(decoded->stats.latency_p99_sec, 0.004);
}

TEST(ProtocolTest, ZeroLengthFrameIsFatal) {
  const std::uint8_t zeros[4] = {0, 0, 0, 0};
  FrameDecoder decoder;
  decoder.Append(zeros, sizeof(zeros));
  Result<std::optional<std::vector<std::uint8_t>>> next = decoder.Next();
  EXPECT_TRUE(next.status().IsInvalidArgument());
}

TEST(ProtocolTest, OversizedFrameIsFatalBeforeBuffering) {
  // Declares 16 MB: rejected from the 4 header bytes alone — the decoder
  // must not wait for (or try to buffer) the announced payload.
  const std::uint8_t huge[4] = {0x01, 0x00, 0x00, 0x00};
  FrameDecoder decoder;
  decoder.Append(huge, sizeof(huge));
  Result<std::optional<std::vector<std::uint8_t>>> next = decoder.Next();
  EXPECT_TRUE(next.status().IsInvalidArgument());
}

TEST(ProtocolTest, TruncatedStreamFailsFinish) {
  std::vector<std::uint8_t> stream;
  EncodeMessage(SampleMessage(OpCode::kMoveObject), &stream);
  FrameDecoder decoder;
  decoder.Append(stream.data(), stream.size() - 3);  // Cut mid-frame.
  Result<std::optional<std::vector<std::uint8_t>>> next = decoder.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());  // Needs more bytes, no partial decode.
  EXPECT_TRUE(decoder.Finish().IsInvalidArgument());
}

TEST(ProtocolTest, PayloadErrorsAreRecoverable) {
  // Unknown opcode.
  const std::uint8_t unknown[] = {0xEE};
  EXPECT_TRUE(DecodeMessage(unknown, 1).status().IsInvalidArgument());

  // Size mismatch: a kRead payload with one byte lopped off.
  std::vector<std::uint8_t> frame;
  EncodeMessage(SampleMessage(OpCode::kRead), &frame);
  EXPECT_TRUE(DecodeMessage(frame.data() + kFrameHeaderBytes,
                            frame.size() - kFrameHeaderBytes - 1)
                  .status()
                  .IsInvalidArgument());
  // ...and with a byte appended.
  std::vector<std::uint8_t> padded(frame.begin() + kFrameHeaderBytes,
                                   frame.end());
  padded.push_back(0);
  EXPECT_TRUE(DecodeMessage(padded.data(), padded.size())
                  .status()
                  .IsInvalidArgument());

  // An empty payload never reaches DecodeMessage via the decoder (the
  // framing rejects it), but the decoder-level contract still holds.
  EXPECT_TRUE(DecodeMessage(unknown, 0).status().IsInvalidArgument());
}

TEST(ProtocolTest, MalformedResponsesAreRejected) {
  std::vector<std::uint8_t> frame;
  EncodeStatusResponse(Status::OK(), &frame);
  std::vector<std::uint8_t> payload(frame.begin() + kFrameHeaderBytes,
                                    frame.end());

  // Trailing garbage after a status response.
  std::vector<std::uint8_t> trailing = payload;
  trailing.push_back(0x7F);
  EXPECT_TRUE(DecodeResponse(trailing.data(), trailing.size())
                  .status()
                  .IsInvalidArgument());

  // Unknown response kind / status code.
  std::vector<std::uint8_t> bad_kind = payload;
  bad_kind[0] = 0x7F;
  EXPECT_TRUE(DecodeResponse(bad_kind.data(), bad_kind.size())
                  .status()
                  .IsInvalidArgument());
  std::vector<std::uint8_t> bad_code = payload;
  bad_code[1] = 0x7F;
  EXPECT_TRUE(DecodeResponse(bad_code.data(), bad_code.size())
                  .status()
                  .IsInvalidArgument());

  // Message length pointing past the payload.
  std::vector<std::uint8_t> bad_len = payload;
  bad_len[2] = 0xFF;
  EXPECT_TRUE(DecodeResponse(bad_len.data(), bad_len.size())
                  .status()
                  .IsInvalidArgument());

  // A read response whose neighbor count disagrees with its size.
  std::vector<std::uint8_t> read_frame;
  EncodeReadResponse({Neighbor{1, 1.0}}, &read_frame);
  std::vector<std::uint8_t> read_payload(
      read_frame.begin() + kFrameHeaderBytes, read_frame.end());
  read_payload.pop_back();
  EXPECT_TRUE(DecodeResponse(read_payload.data(), read_payload.size())
                  .status()
                  .IsInvalidArgument());
}

TEST(ProtocolTest, FramesBeforeAnErrorStayRetrievable) {
  std::vector<std::uint8_t> stream;
  EncodeMessage(SampleMessage(OpCode::kRead), &stream);
  const std::uint8_t zeros[4] = {0, 0, 0, 0};
  stream.insert(stream.end(), zeros, zeros + 4);

  FrameDecoder decoder;
  decoder.Append(stream.data(), stream.size());
  Result<std::optional<std::vector<std::uint8_t>>> first = decoder.Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());  // The good frame comes out first...
  EXPECT_TRUE(decoder.Next().status().IsInvalidArgument());  // ...then the
                                                             // error.
}

}  // namespace
}  // namespace cknn::serve

// Concurrent-producer determinism of the serving front end
// (docs/serving.md): N producer threads pushing a pre-partitioned golden
// workload through ServingFrontEnd must leave the engine byte-identical
// to a serial Tick replay of the same windows. The canonical batch fold
// (per-stream stable sort by entity id) erases producer interleaving as
// long as per-entity order is preserved — which partitioning by entity
// guarantees. Runs under the `serving` label; the CI sanitize lane chews
// on the producer/pump overlap with ThreadSanitizer.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/server.h"
#include "src/gen/network_gen.h"
#include "src/gen/workload.h"
#include "src/serve/front_end.h"
#include "tests/fuzz_util.h"

namespace cknn {
namespace {

/// Lowers a workload batch to the client-side request stream: clients
/// state where entities are, never where they were.
void AppendRequests(const UpdateBatch& batch,
                    std::vector<ServeRequest>* out) {
  for (const ObjectUpdate& u : batch.objects) {
    ServeRequest r;
    r.id = u.id;
    if (u.new_pos.has_value()) {
      r.op = u.old_pos.has_value() ? ServeRequest::Op::kMoveObject
                                   : ServeRequest::Op::kAddObject;
      r.pos = *u.new_pos;
    } else {
      if (!u.old_pos.has_value()) continue;
      r.op = ServeRequest::Op::kRemoveObject;
    }
    out->push_back(r);
  }
  for (const QueryUpdate& u : batch.queries) {
    ServeRequest r;
    r.id = u.id;
    r.pos = u.pos;
    r.k = u.k;
    switch (u.kind) {
      case QueryUpdate::Kind::kInstall:
        r.op = ServeRequest::Op::kInstallQuery;
        break;
      case QueryUpdate::Kind::kMove:
        r.op = ServeRequest::Op::kMoveQuery;
        break;
      case QueryUpdate::Kind::kTerminate:
        r.op = ServeRequest::Op::kTerminateQuery;
        break;
    }
    out->push_back(r);
  }
  for (const EdgeUpdate& u : batch.edges) {
    ServeRequest r;
    r.op = ServeRequest::Op::kUpdateWeight;
    r.id = u.edge;
    r.weight = u.new_weight;
    out->push_back(r);
  }
}

/// Entity-stable partition: one producer owns every update of an entity,
/// so per-entity FIFO order survives any thread interleaving.
std::size_t ProducerOf(const ServeRequest& r, int producers) {
  std::size_t stream = 0;
  switch (r.op) {
    case ServeRequest::Op::kInstallQuery:
    case ServeRequest::Op::kMoveQuery:
    case ServeRequest::Op::kTerminateQuery:
      stream = 1;
      break;
    case ServeRequest::Op::kUpdateWeight:
      stream = 2;
      break;
    default:
      break;
  }
  return static_cast<std::size_t>(
      (r.id + stream) % static_cast<std::uint64_t>(producers));
}

/// Golden workload: the initial population plus `steps` update windows,
/// every third window doubled into an arrival spike (per-entity chains).
std::vector<std::vector<ServeRequest>> MakeWindows(
    const RoadNetwork* network, const PmrQuadtree* index,
    const WorkloadConfig& config, int steps) {
  Workload workload(network, index, config);
  std::vector<std::vector<ServeRequest>> windows;
  std::vector<ServeRequest> initial;
  AppendRequests(workload.Initial(), &initial);
  windows.push_back(std::move(initial));
  for (int s = 0; s < steps; ++s) {
    std::vector<ServeRequest> window;
    AppendRequests(workload.Step(), &window);
    if ((s + 1) % 3 == 0) AppendRequests(workload.Step(), &window);
    windows.push_back(std::move(window));
  }
  return windows;
}

void ExpectSameResults(const MonitoringServer& serial,
                       const MonitoringServer& served,
                       std::size_t num_queries) {
  ASSERT_EQ(served.NumQueries(), serial.NumQueries());
  for (QueryId q = 0; q < static_cast<QueryId>(num_queries); ++q) {
    SCOPED_TRACE("query " + std::to_string(q));
    const std::vector<Neighbor>* base = serial.ResultOf(q);
    const std::vector<Neighbor>* other = served.ResultOf(q);
    ASSERT_EQ(base == nullptr, other == nullptr);
    if (base == nullptr) continue;
    // Byte-identical: same ids, same distances, same order.
    EXPECT_TRUE(*base == *other);
  }
}

struct Scenario {
  Algorithm algorithm;
  int shards;
  int producers;
};

class ServingDeterminismTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(ServingDeterminismTest, ProducersMatchSerialReplay) {
  const Scenario scenario = GetParam();
  const std::uint64_t seed = testing::FuzzSeed(9500);
  SCOPED_TRACE("seed " + std::to_string(seed));
  const NetworkGenConfig net{.target_edges = 200,
                             .seed = seed ^ 0x5E21};
  WorkloadConfig wl;
  wl.num_objects = 90;
  wl.num_queries = 14;
  wl.k = 3;
  wl.edge_agility = 0.1;
  wl.object_agility = 0.3;
  wl.query_agility = 0.25;
  wl.seed = seed;

  MonitoringServer serial(GenerateRoadNetwork(net), scenario.algorithm,
                          scenario.shards, /*pipeline_depth=*/1);
  MonitoringServer served(CloneNetwork(serial.network()),
                          scenario.algorithm, scenario.shards,
                          /*pipeline_depth=*/2);
  const std::vector<std::vector<ServeRequest>> windows = MakeWindows(
      &serial.network(), &serial.spatial_index(), wl, /*steps=*/8);

  // No pump: each window folds into exactly one tick at the Flush below,
  // so the serving tick sequence is the serial tick sequence and results
  // must match byte for byte. (With a pump, a window may split across
  // ticks mid-arrival; the states converge but an incremental algorithm
  // may break distance ties differently — see the OVH pump leg below.)
  ServingFrontEnd front_end(&served);
  for (const std::vector<ServeRequest>& window : windows) {
    // Serial reference: the canonical fold of the whole window (the same
    // fold the front end applies), ticked once.
    ServingFrontEnd::BatchBuild build =
        ServingFrontEnd::BuildBatch(window, serial);
    ASSERT_EQ(build.rejected, 0u);
    ASSERT_TRUE(serial.Tick(build.batch).ok());

    // Served side: the window arrives interleaved across N producers.
    std::vector<std::vector<ServeRequest>> slices(
        static_cast<std::size_t>(scenario.producers));
    for (const ServeRequest& r : window) {
      slices[ProducerOf(r, scenario.producers)].push_back(r);
    }
    std::vector<std::thread> producers;
    std::atomic<int> submit_failures{0};
    producers.reserve(slices.size());
    for (const std::vector<ServeRequest>& slice : slices) {
      producers.emplace_back([&front_end, &slice, &submit_failures] {
        for (const ServeRequest& r : slice) {
          if (!front_end.Submit(r).ok()) ++submit_failures;
        }
      });
    }
    for (std::thread& t : producers) t.join();
    ASSERT_EQ(submit_failures.load(), 0);
    ASSERT_TRUE(front_end.Flush().ok());
  }
  front_end.Shutdown();

  const ServingStats stats = front_end.Stats();
  EXPECT_EQ(stats.rejected_invalid, 0u);
  EXPECT_EQ(stats.rejected_queue_full, 0u);
  EXPECT_EQ(stats.accepted, stats.applied);
  ExpectSameResults(serial, served, wl.num_queries);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ServingDeterminismTest,
    ::testing::Values(Scenario{Algorithm::kOvh, 1, 4},
                      Scenario{Algorithm::kIma, 1, 4},
                      Scenario{Algorithm::kGma, 1, 3},
                      Scenario{Algorithm::kIma, 2, 4}));

// With the pump running, producer/pump timing decides how a window is
// sliced into ticks. For a per-tick recomputing algorithm (OVH) the
// results depend only on the state at the read barrier, so byte-identity
// to the serial replay must survive ANY tick partition. (An incremental
// algorithm may legitimately break equal-distance ties differently under
// a different partition, so this leg pins OVH.)
TEST(ServingPumpDeterminismTest, PumpedProducersMatchSerialForOvh) {
  const std::uint64_t seed = testing::FuzzSeed(9600);
  SCOPED_TRACE("seed " + std::to_string(seed));
  const NetworkGenConfig net{.target_edges = 200, .seed = seed ^ 0x5E22};
  WorkloadConfig wl;
  wl.num_objects = 90;
  wl.num_queries = 14;
  wl.k = 3;
  wl.edge_agility = 0.1;
  wl.object_agility = 0.3;
  wl.query_agility = 0.25;
  wl.seed = seed;
  constexpr int kProducers = 4;

  MonitoringServer serial(GenerateRoadNetwork(net), Algorithm::kOvh,
                          /*num_shards=*/1, /*pipeline_depth=*/1);
  MonitoringServer served(CloneNetwork(serial.network()), Algorithm::kOvh,
                          /*num_shards=*/1, /*pipeline_depth=*/2);
  const std::vector<std::vector<ServeRequest>> windows = MakeWindows(
      &serial.network(), &serial.spatial_index(), wl, /*steps=*/8);

  ServingConfig config;
  config.queue_capacity = 64;  // Small: forces pump overlap + back-pressure.
  ServingFrontEnd front_end(&served, config);
  front_end.Start();
  for (const std::vector<ServeRequest>& window : windows) {
    ServingFrontEnd::BatchBuild build =
        ServingFrontEnd::BuildBatch(window, serial);
    ASSERT_EQ(build.rejected, 0u);
    ASSERT_TRUE(serial.Tick(build.batch).ok());

    std::vector<std::vector<ServeRequest>> slices(kProducers);
    for (const ServeRequest& r : window) {
      slices[ProducerOf(r, kProducers)].push_back(r);
    }
    std::vector<std::thread> producers;
    std::atomic<int> submit_failures{0};
    producers.reserve(slices.size());
    for (const std::vector<ServeRequest>& slice : slices) {
      producers.emplace_back([&front_end, &slice, &submit_failures] {
        for (const ServeRequest& r : slice) {
          if (!front_end.Submit(r).ok()) ++submit_failures;
        }
      });
    }
    for (std::thread& t : producers) t.join();
    ASSERT_EQ(submit_failures.load(), 0);
    ASSERT_TRUE(front_end.Flush().ok());
  }
  front_end.Shutdown();

  const ServingStats stats = front_end.Stats();
  EXPECT_EQ(stats.rejected_invalid, 0u);
  EXPECT_EQ(stats.rejected_queue_full, 0u);
  EXPECT_EQ(stats.accepted, stats.applied);
  ExpectSameResults(serial, served, wl.num_queries);
}

}  // namespace
}  // namespace cknn

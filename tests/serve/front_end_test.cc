// ServingFrontEnd semantics (docs/serving.md): bounded-queue admission
// control (ResourceExhausted, never abort), blocking back-pressure and its
// release, drain-on-shutdown, non-aborting reads, and per-request
// validation that counts-and-drops instead of vetoing the batch.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/server.h"
#include "src/gen/network_gen.h"
#include "src/serve/front_end.h"

namespace cknn {
namespace {

MonitoringServer MakeServer(int shards = 1, int pipeline_depth = 2) {
  const NetworkGenConfig net{.target_edges = 200, .seed = 7};
  return MonitoringServer(GenerateRoadNetwork(net), Algorithm::kIma, shards,
                          pipeline_depth);
}

ServeRequest AddObject(std::uint64_t id, EdgeId edge, double t) {
  ServeRequest r;
  r.op = ServeRequest::Op::kAddObject;
  r.id = id;
  r.pos = NetworkPoint{edge, t};
  return r;
}

ServeRequest MoveObject(std::uint64_t id, EdgeId edge, double t) {
  ServeRequest r;
  r.op = ServeRequest::Op::kMoveObject;
  r.id = id;
  r.pos = NetworkPoint{edge, t};
  return r;
}

ServeRequest RemoveObject(std::uint64_t id) {
  ServeRequest r;
  r.op = ServeRequest::Op::kRemoveObject;
  r.id = id;
  return r;
}

ServeRequest InstallQuery(std::uint64_t id, EdgeId edge, double t, int k) {
  ServeRequest r;
  r.op = ServeRequest::Op::kInstallQuery;
  r.id = id;
  r.pos = NetworkPoint{edge, t};
  r.k = k;
  return r;
}

ServeRequest UpdateWeight(std::uint64_t edge, double weight) {
  ServeRequest r;
  r.op = ServeRequest::Op::kUpdateWeight;
  r.id = edge;
  r.weight = weight;
  return r;
}

TEST(FrontEndTest, QueueFullRejectsWithResourceExhausted) {
  MonitoringServer server = MakeServer();
  ServingConfig config;
  config.queue_capacity = 4;
  ServingFrontEnd fe(&server, config);  // No pump: the queue stays put.
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(fe.TrySubmit(AddObject(i, 0, 0.25)).ok());
  }
  EXPECT_EQ(fe.QueueDepth(), 4u);
  const Status full = fe.TrySubmit(AddObject(9, 0, 0.5));
  EXPECT_TRUE(full.IsResourceExhausted()) << full.ToString();
  EXPECT_EQ(fe.QueueDepth(), 4u);

  // Folding the window frees the queue: admission resumes.
  ASSERT_TRUE(fe.Flush().ok());
  EXPECT_EQ(fe.QueueDepth(), 0u);
  EXPECT_TRUE(fe.TrySubmit(AddObject(9, 0, 0.5)).ok());
  ASSERT_TRUE(fe.Flush().ok());

  const ServingStats stats = fe.Stats();
  EXPECT_EQ(stats.accepted, 5u);
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.applied, 5u);
  EXPECT_EQ(stats.max_queue_depth, 4u);
}

TEST(FrontEndTest, SubmitBlocksUntilSpaceFreesUp) {
  MonitoringServer server = MakeServer();
  ServingConfig config;
  config.queue_capacity = 2;
  ServingFrontEnd fe(&server, config);  // No pump.
  ASSERT_TRUE(fe.TrySubmit(AddObject(0, 0, 0.25)).ok());
  ASSERT_TRUE(fe.TrySubmit(AddObject(1, 0, 0.75)).ok());

  std::atomic<bool> released{false};
  std::thread producer([&] {
    const Status blocked = fe.Submit(AddObject(2, 1, 0.5));
    EXPECT_TRUE(blocked.ok()) << blocked.ToString();
    released.store(true);
  });
  // Submit cannot return while the queue is full — only Flush (below)
  // frees a slot, so this read is race-free in its false phase.
  EXPECT_FALSE(released.load());
  ASSERT_TRUE(fe.Flush().ok());
  producer.join();
  EXPECT_TRUE(released.load());
  ASSERT_TRUE(fe.Flush().ok());
  EXPECT_EQ(fe.Stats().applied, 3u);
}

TEST(FrontEndTest, ShutdownDrainsEverythingAccepted) {
  MonitoringServer server = MakeServer();
  ServingFrontEnd fe(&server);
  fe.Start();
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(fe.Submit(AddObject(i, static_cast<EdgeId>(i % 5), 0.5))
                    .ok());
  }
  fe.Shutdown();
  const ServingStats stats = fe.Stats();
  EXPECT_EQ(stats.accepted, 10u);
  EXPECT_EQ(stats.applied, 10u);
  EXPECT_EQ(fe.QueueDepth(), 0u);

  // The front end is closed for business but stays readable.
  EXPECT_TRUE(fe.TrySubmit(AddObject(99, 0, 0.5)).IsFailedPrecondition());
  EXPECT_TRUE(fe.Submit(AddObject(99, 0, 0.5)).IsFailedPrecondition());
  EXPECT_TRUE(fe.ReadResult(12345).status().IsNotFound());
  fe.Shutdown();  // Idempotent.
}

TEST(FrontEndTest, ReadYourWritesAfterFlush) {
  MonitoringServer server = MakeServer();
  ServingFrontEnd fe(&server);
  fe.Start();
  ASSERT_TRUE(fe.Submit(InstallQuery(5, 0, 0.5, 2)).ok());
  ASSERT_TRUE(fe.Submit(AddObject(1, 0, 0.25)).ok());
  ASSERT_TRUE(fe.Submit(AddObject(2, 0, 0.75)).ok());
  ASSERT_TRUE(fe.Flush().ok());

  Result<std::vector<Neighbor>> result = fe.ReadResult(5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 2u);
  EXPECT_TRUE(fe.ReadResult(12345).status().IsNotFound());
  fe.Shutdown();
}

TEST(FrontEndTest, InvalidRequestsAreCountedAndDropped) {
  MonitoringServer server = MakeServer();
  ServingFrontEnd fe(&server);  // No pump: windows are explicit.

  // Build-time rejects: unknown move/remove, double install.
  ASSERT_TRUE(fe.TrySubmit(MoveObject(42, 0, 0.5)).ok());
  ASSERT_TRUE(fe.TrySubmit(RemoveObject(43)).ok());
  ASSERT_TRUE(fe.TrySubmit(InstallQuery(1, 0, 0.5, 1)).ok());
  ASSERT_TRUE(fe.TrySubmit(InstallQuery(1, 1, 0.5, 1)).ok());
  ASSERT_TRUE(fe.Flush().ok());
  ServingStats stats = fe.Stats();
  EXPECT_EQ(stats.rejected_invalid, 3u);
  EXPECT_EQ(stats.applied, 1u);  // The first install.

  // Engine-side reject (an edge id the network does not have): the batch
  // bounces, the bisection applies the good update and drops the bad one
  // alone — one bad request never vetoes its neighbors.
  ASSERT_TRUE(fe.TrySubmit(AddObject(7, 0, 0.5)).ok());
  ASSERT_TRUE(fe.TrySubmit(UpdateWeight(std::uint64_t{1} << 30, 2.0)).ok());
  ASSERT_TRUE(fe.Flush().ok());
  stats = fe.Stats();
  EXPECT_EQ(stats.rejected_invalid, 4u);
  EXPECT_EQ(stats.applied, 2u);
  EXPECT_FALSE(fe.last_error().ok());
  EXPECT_TRUE(server.objects().Contains(7));
}

// Regression: an engine-side reject is bisected away, so Flush() returns
// OK and the counters look like an ordinary validation drop — the latched
// last_error() is the only witness. Report consumers (the load scenario's
// `engine_error` field) must carry it; reading Stats() alone reproduces
// the old silent-failure path.
TEST(FrontEndTest, OkFlushDoesNotClearTheEngineErrorWitness) {
  MonitoringServer server = MakeServer();
  ServingFrontEnd fe(&server);
  ASSERT_TRUE(fe.TrySubmit(UpdateWeight(std::uint64_t{1} << 30, 2.0)).ok());
  const Status flushed = fe.Flush();
  EXPECT_TRUE(flushed.ok()) << flushed.ToString();
  EXPECT_FALSE(fe.last_error().ok());
  fe.Shutdown();
  // Survives the final drain, so post-run reporting still sees it.
  EXPECT_FALSE(fe.last_error().ok());
}

TEST(FrontEndTest, LatencyStatsArePopulated) {
  MonitoringServer server = MakeServer();
  ServingFrontEnd fe(&server);
  fe.Start();
  for (std::uint64_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(fe.Submit(AddObject(i, static_cast<EdgeId>(i % 7), 0.5))
                    .ok());
  }
  ASSERT_TRUE(fe.Flush().ok());
  // ReadResult drains the engine, retiring any latencies still pending
  // behind the depth-2 pipeline.
  EXPECT_TRUE(fe.ReadResult(0).status().IsNotFound());
  const ServingStats stats = fe.Stats();
  EXPECT_EQ(stats.latency_samples, 32u);
  EXPECT_GE(stats.latency_p50_sec, 0.0);
  EXPECT_LE(stats.latency_p50_sec, stats.latency_p95_sec);
  EXPECT_LE(stats.latency_p95_sec, stats.latency_p99_sec);
  EXPECT_LE(stats.latency_p99_sec, stats.latency_max_sec);
  fe.Shutdown();
}

TEST(FrontEndTest, TryAccessorsFailCleanlyWhileInFlight) {
  MonitoringServer server = MakeServer(/*shards=*/2, /*pipeline_depth=*/2);
  UpdateBatch batch;
  batch.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kInstall, NetworkPoint{0, 0.5}, 1});
  batch.objects.push_back(
      ObjectUpdate{0, std::nullopt, NetworkPoint{0, 0.25}});
  ASSERT_TRUE(server.SubmitBatch(batch).ok());
  ASSERT_TRUE(server.InFlight());

  // The CHECK-guarded accessors would abort here; the Try* variants
  // answer FailedPrecondition instead (the client-reachable path).
  const std::vector<Neighbor>* neighbors = nullptr;
  EXPECT_TRUE(server.TryResultOf(0, &neighbors).IsFailedPrecondition());
  EXPECT_TRUE(server.TryNumQueries().status().IsFailedPrecondition());
  EXPECT_TRUE(
      server.TryMonitorMemoryBytes().status().IsFailedPrecondition());

  ASSERT_TRUE(server.Drain().ok());
  ASSERT_TRUE(server.TryResultOf(0, &neighbors).ok());
  ASSERT_NE(neighbors, nullptr);
  Result<std::size_t> queries = server.TryNumQueries();
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(*queries, 1u);
  EXPECT_TRUE(server.TryMonitorMemoryBytes().ok());
}

}  // namespace
}  // namespace cknn

// Malformed-frame fuzzing of the serving wire protocol: random valid
// streams must reassemble identically under any chunking; random
// truncations, byte flips, and pure garbage must produce clean
// InvalidArgument errors (or a clean decode, for lucky flips) — never a
// crash, hang, or partial batch. Seeded via tests/fuzz_util.h
// (CKNN_FUZZ_SEED / CKNN_FUZZ_SCALE widen the exploration).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/serve/protocol.h"
#include "src/util/rng.h"
#include "tests/fuzz_util.h"

namespace cknn::serve {
namespace {

Message RandomMessage(Rng* rng) {
  Message m;
  m.op = static_cast<OpCode>(rng->UniformInt(1, 11));
  m.id = rng->NextU64();
  m.edge = rng->NextU64();
  m.t = rng->NextDouble();
  m.k = static_cast<std::uint32_t>(rng->UniformInt(1, 64));
  m.weight = rng->Uniform(-10.0, 10.0);
  return m;
}

/// Drains every completed frame; returns false on a framing error.
bool DrainFrames(FrameDecoder* decoder,
                 std::vector<std::vector<std::uint8_t>>* out) {
  while (true) {
    Result<std::optional<std::vector<std::uint8_t>>> next = decoder->Next();
    if (!next.ok()) return false;
    if (!next->has_value()) return true;
    out->push_back(std::move(**next));
  }
}

TEST(ProtocolFuzzTest, RandomChunkingReassemblesIdentically) {
  const int iters = testing::FuzzIterations(60, 600);
  for (int it = 0; it < iters; ++it) {
    Rng rng(testing::FuzzSeed(7200 + static_cast<std::uint64_t>(it)));
    SCOPED_TRACE("iteration " + std::to_string(it));
    std::vector<std::uint8_t> stream;
    std::vector<Message> sent;
    const int frames = static_cast<int>(rng.UniformInt(1, 20));
    for (int f = 0; f < frames; ++f) {
      sent.push_back(RandomMessage(&rng));
      EncodeMessage(sent.back(), &stream);
    }
    FrameDecoder decoder;
    std::vector<std::vector<std::uint8_t>> payloads;
    std::size_t at = 0;
    while (at < stream.size()) {
      const std::size_t n = std::min(
          stream.size() - at,
          static_cast<std::size_t>(rng.UniformInt(1, 13)));
      decoder.Append(stream.data() + at, n);
      at += n;
      ASSERT_TRUE(DrainFrames(&decoder, &payloads));
    }
    ASSERT_TRUE(decoder.Finish().ok());
    ASSERT_EQ(payloads.size(), sent.size());
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      Result<Message> decoded =
          DecodeMessage(payloads[i].data(), payloads[i].size());
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(decoded->op, sent[i].op);
    }
  }
}

TEST(ProtocolFuzzTest, TruncationsNeverDecodePartially) {
  const int iters = testing::FuzzIterations(60, 600);
  for (int it = 0; it < iters; ++it) {
    Rng rng(testing::FuzzSeed(7300 + static_cast<std::uint64_t>(it)));
    SCOPED_TRACE("iteration " + std::to_string(it));
    std::vector<std::uint8_t> stream;
    EncodeMessage(RandomMessage(&rng), &stream);
    EncodeMessage(RandomMessage(&rng), &stream);
    const std::size_t cut =
        static_cast<std::size_t>(rng.NextIndex(stream.size()));

    FrameDecoder decoder;
    decoder.Append(stream.data(), cut);
    std::vector<std::vector<std::uint8_t>> payloads;
    ASSERT_TRUE(DrainFrames(&decoder, &payloads));
    // Whatever came out is a whole frame that decodes; the cut frame
    // stayed buffered and Finish names the truncation.
    for (const std::vector<std::uint8_t>& payload : payloads) {
      EXPECT_TRUE(DecodeMessage(payload.data(), payload.size()).ok());
    }
    if (decoder.BufferedBytes() > 0) {
      EXPECT_TRUE(decoder.Finish().IsInvalidArgument());
    } else {
      EXPECT_TRUE(decoder.Finish().ok());
    }
  }
}

TEST(ProtocolFuzzTest, ByteFlipsNeverCrashTheDecoder) {
  const int iters = testing::FuzzIterations(120, 1200);
  for (int it = 0; it < iters; ++it) {
    Rng rng(testing::FuzzSeed(7400 + static_cast<std::uint64_t>(it)));
    SCOPED_TRACE("iteration " + std::to_string(it));
    std::vector<std::uint8_t> stream;
    EncodeMessage(RandomMessage(&rng), &stream);
    const std::size_t flip_at =
        static_cast<std::size_t>(rng.NextIndex(stream.size()));
    stream[flip_at] ^=
        static_cast<std::uint8_t>(1u << rng.NextIndex(8));

    FrameDecoder decoder;
    decoder.Append(stream.data(), stream.size());
    Result<std::optional<std::vector<std::uint8_t>>> next = decoder.Next();
    if (!next.ok()) {
      // A header flip: fatal framing error, cleanly reported.
      EXPECT_TRUE(next.status().IsInvalidArgument());
      continue;
    }
    if (!next->has_value()) {
      // The flip grew the declared length: an incomplete frame, caught
      // at stream end.
      EXPECT_TRUE(decoder.Finish().IsInvalidArgument());
      continue;
    }
    // A payload flip: decodes to either a clean error or a (possibly
    // different) valid message — never a crash.
    (void)DecodeMessage(next->value().data(), next->value().size());
  }
}

TEST(ProtocolFuzzTest, GarbageStreamsFailCleanly) {
  const int iters = testing::FuzzIterations(60, 600);
  for (int it = 0; it < iters; ++it) {
    Rng rng(testing::FuzzSeed(7500 + static_cast<std::uint64_t>(it)));
    SCOPED_TRACE("iteration " + std::to_string(it));
    std::vector<std::uint8_t> garbage(
        static_cast<std::size_t>(rng.UniformInt(0, 256)));
    for (std::uint8_t& b : garbage) {
      b = static_cast<std::uint8_t>(rng.NextIndex(256));
    }
    FrameDecoder decoder;
    decoder.Append(garbage.data(), garbage.size());
    // Drain until the decoder errors or wants more bytes; every returned
    // payload must decode or fail cleanly as both a message and a
    // response.
    while (true) {
      Result<std::optional<std::vector<std::uint8_t>>> next = decoder.Next();
      if (!next.ok() || !next->has_value()) break;
      (void)DecodeMessage(next->value().data(), next->value().size());
      (void)DecodeResponse(next->value().data(), next->value().size());
    }
  }
}

}  // namespace
}  // namespace cknn::serve

#ifndef CKNN_TESTS_TEST_UTIL_H_
#define CKNN_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/expansion.h"
#include "src/core/object_table.h"
#include "src/core/updates.h"
#include "src/graph/network_point.h"
#include "src/graph/road_network.h"
#include "src/graph/shortest_path.h"

namespace cknn::testing {

/// Materializes the settled set of an expansion (ascending node id) so
/// tests can range-for, break, and ASSERT over it.
inline std::vector<std::pair<NodeId, ExpansionState::SettledInfo>>
SettledEntries(const ExpansionState& state) {
  std::vector<std::pair<NodeId, ExpansionState::SettledInfo>> out;
  out.reserve(state.NumSettled());
  state.ForEachSettled([&](NodeId n, const ExpansionState::SettledInfo& info) {
    out.emplace_back(n, info);
  });
  return out;
}

/// Per-query result comparison shared by the execution-invariance suites
/// (shard_determinism_test, server_pipeline_test): byte-exact for
/// IMA/OVH (`exact`), per-rank conformance tolerance (1e-7 relative,
/// docs/sharding.md) for GMA, whose shard-local active-node grouping may
/// derive a distance through a different equally-shortest path.
inline void ExpectSameNeighbors(bool exact, const std::vector<Neighbor>& base,
                                const std::vector<Neighbor>& other,
                                const std::string& who) {
  if (exact) {
    // Byte-identical: same ids, bit-equal distances, same order.
    ASSERT_TRUE(base == other)
        << who << " diverged from the serial baseline (result size "
        << base.size() << " vs " << other.size() << ")";
    return;
  }
  ASSERT_EQ(base.size(), other.size()) << who;
  for (std::size_t rank = 0; rank < base.size(); ++rank) {
    const double db = base[rank].distance;
    const double d_other = other[rank].distance;
    ASSERT_LE(std::abs(db - d_other), 1e-7 * (1.0 + std::abs(db)))
        << who << " rank " << rank << ": object " << base[rank].id << " at "
        << db << " vs object " << other[rank].id << " at " << d_other;
  }
}

/// Builds a g x g grid network with unit spacing (lengths == 1 on axis
/// edges). Node (x, y) has id y * g + x.
inline RoadNetwork MakeGrid(int g, double spacing = 1.0) {
  RoadNetwork net;
  for (int y = 0; y < g; ++y) {
    for (int x = 0; x < g; ++x) {
      net.AddNode(Point{x * spacing, y * spacing});
    }
  }
  for (int y = 0; y < g; ++y) {
    for (int x = 0; x < g; ++x) {
      const NodeId here = static_cast<NodeId>(y * g + x);
      if (x + 1 < g) {
        EXPECT_TRUE(net.AddEdge(here, here + 1).ok());
      }
      if (y + 1 < g) {
        EXPECT_TRUE(net.AddEdge(here, here + g).ok());
      }
    }
  }
  return net;
}

/// The network of the paper's Figure 11: intersections n1, n2, n5 and a
/// chain n1-n7-n6-n5, terminals n8, n9, n3, n4.
/// Node ids: n1..n9 -> 0..8. Returns the network; edge ids in insertion
/// order: n1n8, n1n9, n1n7, n7n6, n6n5, n1n2, n2n3, n2n5, n5n4.
inline RoadNetwork MakeFigure11() {
  RoadNetwork net;
  // Coordinates chosen so Euclidean lengths are reasonable.
  const Point coords[9] = {
      {2, 2},  // n1
      {4, 2},  // n2
      {6, 2},  // n3
      {6, 0},  // n4
      {4, 0},  // n5
      {3, 0},  // n6
      {2, 0},  // n7
      {1, 3},  // n8
      {3, 3},  // n9
  };
  for (const Point& p : coords) net.AddNode(p);
  const int n1 = 0, n2 = 1, n3 = 2, n4 = 3, n5 = 4, n6 = 5, n7 = 6, n8 = 7,
            n9 = 8;
  EXPECT_TRUE(net.AddEdge(n1, n8).ok());  // e0
  EXPECT_TRUE(net.AddEdge(n1, n9).ok());  // e1
  EXPECT_TRUE(net.AddEdge(n1, n7).ok());  // e2
  EXPECT_TRUE(net.AddEdge(n7, n6).ok());  // e3
  EXPECT_TRUE(net.AddEdge(n6, n5).ok());  // e4
  EXPECT_TRUE(net.AddEdge(n1, n2).ok());  // e5
  EXPECT_TRUE(net.AddEdge(n2, n3).ok());  // e6
  EXPECT_TRUE(net.AddEdge(n2, n5).ok());  // e7
  EXPECT_TRUE(net.AddEdge(n5, n4).ok());  // e8
  return net;
}

/// Brute-force k-NN oracle: full point-to-point shortest path per object.
inline std::vector<Neighbor> BruteForceKnn(const RoadNetwork& net,
                                           const ObjectTable& objects,
                                           const NetworkPoint& query,
                                           int k) {
  std::vector<Neighbor> all;
  for (EdgeId e = 0; e < net.NumEdges(); ++e) {
    for (ObjectId obj : objects.ObjectsOn(e)) {
      const NetworkPoint pos = objects.Position(obj).value();
      const double d = PointToPointDistance(net, query, pos);
      if (d < kInfDist) all.push_back(Neighbor{obj, d});
    }
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.id < b.id;
  });
  if (static_cast<int>(all.size()) > k) all.resize(k);
  return all;
}

/// Whole file as a string (for byte-identity assertions on trace files).
inline std::string ReadFileToString(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Asserts that two k-NN result lists agree as distance multisets (ids may
/// differ under exact ties).
inline void ExpectSameDistances(const std::vector<Neighbor>& a,
                                const std::vector<Neighbor>& b,
                                double tol = 1e-7) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].distance, b[i].distance,
                tol * (1.0 + std::abs(a[i].distance)))
        << "rank " << i << ": ids " << a[i].id << " vs " << b[i].id;
  }
}

}  // namespace cknn::testing

#endif  // CKNN_TESTS_TEST_UTIL_H_

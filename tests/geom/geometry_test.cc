#include "src/geom/geometry.h"

#include "gtest/gtest.h"

namespace cknn {
namespace {

TEST(GeometryTest, PointDistance) {
  EXPECT_DOUBLE_EQ(Distance(Point{0, 0}, Point{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(Point{1, 1}, Point{4, 5}), 25.0);
}

TEST(GeometryTest, Lerp) {
  const Point mid = Lerp(Point{0, 0}, Point{2, 4}, 0.5);
  EXPECT_DOUBLE_EQ(mid.x, 1.0);
  EXPECT_DOUBLE_EQ(mid.y, 2.0);
  const Point start = Lerp(Point{1, 1}, Point{9, 9}, 0.0);
  EXPECT_EQ(start, (Point{1, 1}));
}

TEST(GeometryTest, ClosestPointParamClampsToEndpoints) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(ClosestPointParam(Point{-5, 3}, s), 0.0);
  EXPECT_DOUBLE_EQ(ClosestPointParam(Point{15, 3}, s), 1.0);
  EXPECT_DOUBLE_EQ(ClosestPointParam(Point{4, 7}, s), 0.4);
}

TEST(GeometryTest, ClosestPointParamDegenerateSegment) {
  const Segment s{{2, 2}, {2, 2}};
  EXPECT_DOUBLE_EQ(ClosestPointParam(Point{9, 9}, s), 0.0);
}

TEST(GeometryTest, PointSegmentDistance) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point{5, 3}, s), 3.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point{-3, 4}, s), 5.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point{7, 0}, s), 0.0);
}

TEST(GeometryTest, SegmentLength) {
  EXPECT_DOUBLE_EQ((Segment{{0, 0}, {3, 4}}).Length(), 5.0);
}

TEST(GeometryTest, RectContainsAndExpand) {
  Rect r{0, 0, 2, 2};
  EXPECT_TRUE(r.Contains(Point{1, 1}));
  EXPECT_TRUE(r.Contains(Point{0, 0}));  // Boundary inclusive.
  EXPECT_FALSE(r.Contains(Point{3, 1}));
  r.Expand(Point{5, -1});
  EXPECT_TRUE(r.Contains(Point{4, 0}));
  EXPECT_DOUBLE_EQ(r.Width(), 5.0);
  EXPECT_DOUBLE_EQ(r.Height(), 3.0);
}

TEST(GeometryTest, PointRectDistance) {
  const Rect r{0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(PointRectDistance(Point{1, 1}, r), 0.0);
  EXPECT_DOUBLE_EQ(PointRectDistance(Point{5, 1}, r), 3.0);
  EXPECT_DOUBLE_EQ(PointRectDistance(Point{5, 6}, r), 5.0);
}

TEST(GeometryTest, SegmentIntersectsRectInsideCase) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(SegmentIntersectsRect(Segment{{1, 1}, {2, 2}}, r));
}

TEST(GeometryTest, SegmentIntersectsRectCrossingCase) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(SegmentIntersectsRect(Segment{{-5, 5}, {15, 5}}, r));
  EXPECT_TRUE(SegmentIntersectsRect(Segment{{5, -5}, {5, 15}}, r));
  // Diagonal clipping a corner region.
  EXPECT_TRUE(SegmentIntersectsRect(Segment{{-1, 5}, {5, 11}}, r));
}

TEST(GeometryTest, SegmentIntersectsRectMissCases) {
  const Rect r{0, 0, 10, 10};
  EXPECT_FALSE(SegmentIntersectsRect(Segment{{-5, -5}, {-1, -1}}, r));
  EXPECT_FALSE(SegmentIntersectsRect(Segment{{11, 0}, {11, 10}}, r));
  // Diagonal passing close to but outside a corner.
  EXPECT_FALSE(SegmentIntersectsRect(Segment{{11, 10}, {10, 11}}, r));
}

TEST(GeometryTest, SegmentTouchingBoundaryIntersects) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(SegmentIntersectsRect(Segment{{10, 5}, {15, 5}}, r));
}

}  // namespace
}  // namespace cknn

#ifndef CKNN_TESTS_FUZZ_UTIL_H_
#define CKNN_TESTS_FUZZ_UTIL_H_

// Runtime bounds for the randomized suites (torture_test and the two
// differential fuzz tests). Defaults are fixed so tier-1 is deterministic
// and finishes in seconds; two environment variables widen the exploration
// locally without editing the tests:
//
//   CKNN_FUZZ_SEED=<n>    mixes n into every per-case seed (default: 0,
//                         meaning the per-case seed is used verbatim, which
//                         reproduces the historical tapes)
//   CKNN_FUZZ_SCALE=<x>   multiplies every iteration budget by x (a double;
//                         default 1.0). The result is clamped to a per-call
//                         hard cap so a stray value cannot hang CI.
//
// See tests/README.md for recipes.

#include <cstdint>
#include <cstdlib>

namespace cknn::testing {

/// Base seed mixed into every randomized case; 0 = identity (default tapes).
inline std::uint64_t FuzzBaseSeed() {
  static const std::uint64_t base = [] {
    const char* env = std::getenv("CKNN_FUZZ_SEED");
    return env != nullptr ? std::strtoull(env, nullptr, 10)
                          : std::uint64_t{0};
  }();
  return base;
}

/// Deterministic per-case seed: the case id itself by default, or a
/// splitmix64-style mix of (CKNN_FUZZ_SEED, case id) when overridden.
inline std::uint64_t FuzzSeed(std::uint64_t case_id) {
  const std::uint64_t base = FuzzBaseSeed();
  if (base == 0) return case_id;
  std::uint64_t z = base + case_id * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Iteration budget: `default_iters`, scaled by CKNN_FUZZ_SCALE and clamped
/// to [1, hard_cap] so the suite stays bounded no matter the environment.
inline int FuzzIterations(int default_iters, int hard_cap) {
  static const double scale = [] {
    const char* env = std::getenv("CKNN_FUZZ_SCALE");
    const double s = env != nullptr ? std::atof(env) : 1.0;
    return s > 0.0 ? s : 1.0;
  }();
  const double scaled = static_cast<double>(default_iters) * scale;
  if (scaled < 1.0) return 1;
  if (scaled > static_cast<double>(hard_cap)) return hard_cap;
  return static_cast<int>(scaled);
}

}  // namespace cknn::testing

#endif  // CKNN_TESTS_FUZZ_UTIL_H_

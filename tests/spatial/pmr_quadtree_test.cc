#include "src/spatial/pmr_quadtree.h"

#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "src/util/rng.h"

namespace cknn {
namespace {

TEST(PmrQuadtreeTest, RejectsSegmentOutsideBounds) {
  PmrQuadtree tree(Rect{0, 0, 10, 10});
  EXPECT_TRUE(
      tree.Insert(0, Segment{{5, 5}, {15, 5}}).IsInvalidArgument());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(PmrQuadtreeTest, NearestOnEmptyIndexIsNotFound) {
  PmrQuadtree tree(Rect{0, 0, 10, 10});
  EXPECT_TRUE(tree.Nearest(Point{1, 1}).status().IsNotFound());
}

TEST(PmrQuadtreeTest, NearestFindsSingleSegment) {
  PmrQuadtree tree(Rect{0, 0, 10, 10});
  ASSERT_TRUE(tree.Insert(42, Segment{{0, 5}, {10, 5}}).ok());
  auto hit = tree.Nearest(Point{4, 7});
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->id, 42u);
  EXPECT_DOUBLE_EQ(hit->distance, 2.0);
  EXPECT_DOUBLE_EQ(hit->t, 0.4);
}

TEST(PmrQuadtreeTest, StabbingReturnsLeafCandidates) {
  PmrQuadtree tree(Rect{0, 0, 10, 10});
  ASSERT_TRUE(tree.Insert(1, Segment{{0, 1}, {10, 1}}).ok());
  ASSERT_TRUE(tree.Insert(2, Segment{{0, 9}, {10, 9}}).ok());
  const auto hits = tree.Stabbing(Point{5, 1});
  EXPECT_NE(std::find(hits.begin(), hits.end(), 1u), hits.end());
  EXPECT_TRUE(tree.Stabbing(Point{20, 20}).empty());
}

TEST(PmrQuadtreeTest, SplitsWhenOverThreshold) {
  PmrQuadtree tree(Rect{0, 0, 16, 16}, /*split_threshold=*/2);
  for (std::uint32_t i = 0; i < 8; ++i) {
    const double y = 1.0 + i;
    ASSERT_TRUE(tree.Insert(i, Segment{{1, y}, {2, y}}).ok());
  }
  EXPECT_GT(tree.NodeCount(), 1u);
  EXPECT_GE(tree.MaxDepth(), 1);
}

TEST(PmrQuadtreeTest, RangeQueryFindsIntersectingSegments) {
  PmrQuadtree tree(Rect{0, 0, 100, 100}, 4);
  ASSERT_TRUE(tree.Insert(1, Segment{{10, 10}, {20, 10}}).ok());
  ASSERT_TRUE(tree.Insert(2, Segment{{80, 80}, {90, 80}}).ok());
  ASSERT_TRUE(tree.Insert(3, Segment{{0, 50}, {100, 50}}).ok());
  auto hits = tree.RangeQuery(Rect{5, 5, 25, 25});
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<std::uint32_t>{1}));
  hits = tree.RangeQuery(Rect{0, 45, 10, 55});
  EXPECT_EQ(hits, (std::vector<std::uint32_t>{3}));
  hits = tree.RangeQuery(Rect{0, 0, 100, 100});
  EXPECT_EQ(hits.size(), 3u);
}

TEST(PmrQuadtreeTest, MemoryBytesGrowsWithContent) {
  PmrQuadtree tree(Rect{0, 0, 10, 10});
  const std::size_t before = tree.MemoryBytes();
  ASSERT_TRUE(tree.Insert(0, Segment{{1, 1}, {2, 2}}).ok());
  EXPECT_GT(tree.MemoryBytes(), before);
}

/// Property: Nearest() agrees with brute force over random segment soups.
class PmrQuadtreeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(PmrQuadtreeRandomTest, NearestMatchesBruteForce) {
  Rng rng(GetParam());
  const Rect bounds{0, 0, 1000, 1000};
  PmrQuadtree tree(bounds, 6);
  std::vector<Segment> segments;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const Point a{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    const Point b{a.x + rng.Uniform(-40, 40), a.y + rng.Uniform(-40, 40)};
    const Point b_clamped{std::clamp(b.x, 0.0, 1000.0),
                          std::clamp(b.y, 0.0, 1000.0)};
    segments.push_back(Segment{a, b_clamped});
    ASSERT_TRUE(tree.Insert(static_cast<std::uint32_t>(i), segments.back())
                    .ok());
  }
  for (int trial = 0; trial < 50; ++trial) {
    const Point p{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    double best = std::numeric_limits<double>::infinity();
    for (const Segment& s : segments) {
      best = std::min(best, PointSegmentDistance(p, s));
    }
    auto hit = tree.Nearest(p);
    ASSERT_TRUE(hit.ok());
    EXPECT_NEAR(hit->distance, best, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PmrQuadtreeRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace cknn

// The central correctness property of the reproduction: IMA, GMA and OVH
// must report identical k-NN sets (as distance multisets) at every
// timestamp of any workload. OVH recomputes from scratch with the Fig. 2
// algorithm (itself validated against a brute-force oracle in
// knn_search_test.cc), so agreement here exercises the entire incremental
// machinery of Sections 4 and 5: influence-list routing, expansion-tree
// pruning/adjustment/re-rooting, sequence grouping, and active-node
// monitoring.

#include <memory>
#include <string>
#include <tuple>

#include "gtest/gtest.h"
#include "src/core/ima.h"
#include "src/core/server.h"
#include "src/gen/network_gen.h"
#include "src/gen/workload.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

struct EquivalenceCase {
  std::string name;
  int k;
  Distribution object_distribution;
  Distribution query_distribution;
  double edge_agility;
  double object_agility;
  double query_agility;
  double speed = 1.0;
  std::uint64_t seed = 1;
};

// Used by real gtest via ADL; the vendored shim prints params differently.
[[maybe_unused]] void PrintTo(const EquivalenceCase& c, std::ostream* os) {
  *os << c.name;
}

class EquivalenceTest : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(EquivalenceTest, AllAlgorithmsAgreeOverTime) {
  const EquivalenceCase& c = GetParam();
  const NetworkGenConfig net_config{.target_edges = 300, .seed = c.seed};
  WorkloadConfig wl;
  wl.num_objects = 80;
  wl.num_queries = 12;
  wl.k = c.k;
  wl.object_distribution = c.object_distribution;
  wl.query_distribution = c.query_distribution;
  wl.edge_agility = c.edge_agility;
  wl.object_agility = c.object_agility;
  wl.query_agility = c.query_agility;
  wl.object_speed = c.speed;
  wl.query_speed = c.speed;
  wl.seed = c.seed * 1000 + 17;

  // One server + one workload replica per algorithm; identical seeds make
  // the update streams byte-identical.
  const Algorithm algos[3] = {Algorithm::kOvh, Algorithm::kIma,
                              Algorithm::kGma};
  std::unique_ptr<MonitoringServer> servers[3];
  std::unique_ptr<Workload> workloads[3];
  for (int i = 0; i < 3; ++i) {
    servers[i] = std::make_unique<MonitoringServer>(
        GenerateRoadNetwork(net_config), algos[i]);
    workloads[i] = std::make_unique<Workload>(
        &servers[i]->network(), &servers[i]->spatial_index(), wl);
    ASSERT_TRUE(servers[i]->Tick(workloads[i]->Initial()).ok());
  }
  for (int ts = 0; ts <= 10; ++ts) {
    for (QueryId q = 0; q < wl.num_queries; ++q) {
      const auto* ovh = servers[0]->ResultOf(q);
      const auto* ima = servers[1]->ResultOf(q);
      const auto* gma = servers[2]->ResultOf(q);
      ASSERT_NE(ovh, nullptr);
      ASSERT_NE(ima, nullptr);
      ASSERT_NE(gma, nullptr);
      SCOPED_TRACE("ts=" + std::to_string(ts) + " q=" + std::to_string(q));
      testing::ExpectSameDistances(*ima, *ovh);
      testing::ExpectSameDistances(*gma, *ovh);
    }
    if (ts == 10) break;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(servers[i]->Tick(workloads[i]->Step()).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, EquivalenceTest,
    ::testing::Values(
        EquivalenceCase{"k1_uniform_all_dynamics", 1, Distribution::kUniform,
                        Distribution::kUniform, 0.04, 0.2, 0.2, 1.0, 1},
        EquivalenceCase{"k5_default_mix", 5, Distribution::kUniform,
                        Distribution::kGaussian, 0.04, 0.1, 0.1, 1.0, 2},
        EquivalenceCase{"k20_more_than_density", 20, Distribution::kUniform,
                        Distribution::kGaussian, 0.04, 0.1, 0.1, 1.0, 3},
        EquivalenceCase{"gaussian_objects", 8, Distribution::kGaussian,
                        Distribution::kGaussian, 0.04, 0.1, 0.1, 1.0, 4},
        EquivalenceCase{"high_edge_agility", 5, Distribution::kUniform,
                        Distribution::kGaussian, 0.3, 0.05, 0.05, 1.0, 5},
        EquivalenceCase{"static_objects_moving_queries", 5,
                        Distribution::kUniform, Distribution::kUniform, 0.0,
                        0.0, 0.4, 2.0, 6},
        EquivalenceCase{"moving_objects_static_queries", 5,
                        Distribution::kUniform, Distribution::kUniform, 0.0,
                        0.4, 0.0, 2.0, 7},
        EquivalenceCase{"weights_only", 10, Distribution::kUniform,
                        Distribution::kUniform, 0.5, 0.0, 0.0, 1.0, 8},
        EquivalenceCase{"fast_movement", 3, Distribution::kUniform,
                        Distribution::kGaussian, 0.04, 0.3, 0.3, 4.0, 9}),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      return info.param.name;
    });

/// Brinkhoff workloads add appearing/disappearing objects and queries.
class BrinkhoffEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(BrinkhoffEquivalenceTest, AllAlgorithmsAgree) {
  RoadNetwork base = GenerateRoadNetwork(NetworkGenConfig{
      .target_edges = 300, .seed = static_cast<std::uint64_t>(GetParam())});
  BrinkhoffWorkload::Config cfg;
  cfg.num_objects = 60;
  cfg.num_queries = 10;
  cfg.k = 4;
  cfg.edge_agility = 0.05;
  cfg.generator.churn = 0.1;
  cfg.generator.seed = static_cast<std::uint64_t>(GetParam()) * 31;

  const Algorithm algos[3] = {Algorithm::kOvh, Algorithm::kIma,
                              Algorithm::kGma};
  std::unique_ptr<MonitoringServer> servers[3];
  std::unique_ptr<BrinkhoffWorkload> workloads[3];
  for (int i = 0; i < 3; ++i) {
    servers[i] =
        std::make_unique<MonitoringServer>(CloneNetwork(base), algos[i]);
    workloads[i] =
        std::make_unique<BrinkhoffWorkload>(&servers[i]->network(), cfg);
    ASSERT_TRUE(servers[i]->Tick(workloads[i]->Initial()).ok());
  }
  for (int ts = 0; ts < 8; ++ts) {
    UpdateBatch batches[3];
    for (int i = 0; i < 3; ++i) {
      batches[i] = workloads[i]->Step();
      ASSERT_TRUE(servers[i]->Tick(batches[i]).ok());
    }
    // Queries present in all servers must agree; compare via the OVH
    // monitor's registered set.
    for (QueryId q = 0; q < 200; ++q) {
      const auto* ovh = servers[0]->ResultOf(q);
      if (ovh == nullptr) continue;
      const auto* ima = servers[1]->ResultOf(q);
      const auto* gma = servers[2]->ResultOf(q);
      ASSERT_NE(ima, nullptr);
      ASSERT_NE(gma, nullptr);
      SCOPED_TRACE("ts=" + std::to_string(ts) + " q=" + std::to_string(q));
      testing::ExpectSameDistances(*ima, *ovh);
      testing::ExpectSameDistances(*gma, *ovh);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BrinkhoffEquivalenceTest,
                         ::testing::Values(1, 2, 3));

/// The ablation modes must not change results, only costs.
TEST(AblationEquivalenceTest, DisabledReuseAndFilteringStayCorrect) {
  RoadNetwork base =
      GenerateRoadNetwork(NetworkGenConfig{.target_edges = 250, .seed = 42});
  WorkloadConfig wl;
  wl.num_objects = 60;
  wl.num_queries = 8;
  wl.k = 4;
  wl.seed = 99;

  MonitoringServer ovh(CloneNetwork(base), Algorithm::kOvh);
  MonitoringServer ima_plain(CloneNetwork(base), Algorithm::kIma);
  MonitoringServer ima_noreuse(CloneNetwork(base), Algorithm::kIma);
  MonitoringServer ima_nofilter(std::move(base), Algorithm::kIma);
  dynamic_cast<Ima&>(ima_noreuse.monitor()).engine().set_use_tree_reuse(false);
  dynamic_cast<Ima&>(ima_nofilter.monitor())
      .engine()
      .set_use_influence_filter(false);

  MonitoringServer* servers[4] = {&ovh, &ima_plain, &ima_noreuse,
                                  &ima_nofilter};
  std::unique_ptr<Workload> workloads[4];
  for (int i = 0; i < 4; ++i) {
    workloads[i] = std::make_unique<Workload>(
        &servers[i]->network(), &servers[i]->spatial_index(), wl);
    ASSERT_TRUE(servers[i]->Tick(workloads[i]->Initial()).ok());
  }
  for (int ts = 0; ts < 6; ++ts) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(servers[i]->Tick(workloads[i]->Step()).ok());
    }
    for (QueryId q = 0; q < wl.num_queries; ++q) {
      const auto* want = ovh.ResultOf(q);
      ASSERT_NE(want, nullptr);
      for (int i = 1; i < 4; ++i) {
        const auto* got = servers[i]->ResultOf(q);
        ASSERT_NE(got, nullptr);
        testing::ExpectSameDistances(*got, *want);
      }
    }
  }
}

}  // namespace
}  // namespace cknn

#include "src/core/server.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

TEST(ServerTest, ConvenienceLifecycle) {
  MonitoringServer server(testing::MakeGrid(4), Algorithm::kIma);
  ASSERT_TRUE(server.AddObject(1, NetworkPoint{0, 0.5}).ok());
  ASSERT_TRUE(server.AddObject(2, NetworkPoint{5, 0.5}).ok());
  ASSERT_TRUE(server.InstallQuery(0, NetworkPoint{0, 0.1}, 1).ok());
  ASSERT_NE(server.ResultOf(0), nullptr);
  EXPECT_EQ(server.ResultOf(0)->size(), 1u);
  EXPECT_EQ((*server.ResultOf(0))[0].id, 1u);
  ASSERT_TRUE(server.MoveObject(1, NetworkPoint{11, 0.5}).ok());
  ASSERT_TRUE(server.RemoveObject(2).ok());
  ASSERT_TRUE(server.MoveQuery(0, NetworkPoint{3, 0.5}).ok());
  ASSERT_TRUE(server.UpdateEdgeWeight(0, 5.0).ok());
  EXPECT_DOUBLE_EQ(server.network().edge(0).weight, 5.0);
  ASSERT_TRUE(server.TerminateQuery(0).ok());
  EXPECT_EQ(server.ResultOf(0), nullptr);
  EXPECT_EQ(server.timestamp(), 8u);
}

TEST(ServerTest, ValidationRejectsBadUpdates) {
  MonitoringServer server(testing::MakeGrid(3), Algorithm::kOvh);
  ASSERT_TRUE(server.AddObject(1, NetworkPoint{0, 0.5}).ok());
  // Move with mismatched old position.
  UpdateBatch bad;
  bad.objects.push_back(
      ObjectUpdate{1, NetworkPoint{0, 0.9}, NetworkPoint{1, 0.5}});
  EXPECT_TRUE(server.Tick(bad).IsInvalidArgument());
  // Move of unknown object.
  UpdateBatch unknown;
  unknown.objects.push_back(
      ObjectUpdate{9, NetworkPoint{0, 0.5}, NetworkPoint{1, 0.5}});
  EXPECT_TRUE(server.Tick(unknown).IsNotFound());
  // Duplicate appearance.
  UpdateBatch dup;
  dup.objects.push_back(ObjectUpdate{1, std::nullopt, NetworkPoint{1, 0.5}});
  EXPECT_TRUE(server.Tick(dup).IsAlreadyExists());
  // Unknown edge in a weight update.
  UpdateBatch edge;
  edge.edges.push_back(EdgeUpdate{999, 1.0});
  EXPECT_TRUE(server.Tick(edge).IsNotFound());
  // Negative weight.
  UpdateBatch neg;
  neg.edges.push_back(EdgeUpdate{0, -2.0});
  EXPECT_TRUE(server.Tick(neg).IsInvalidArgument());
  // Query updates are validated too.
  UpdateBatch term;
  term.queries.push_back(
      QueryUpdate{7, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  EXPECT_TRUE(server.Tick(term).IsNotFound());
  UpdateBatch mv;
  mv.queries.push_back(
      QueryUpdate{7, QueryUpdate::Kind::kMove, NetworkPoint{0, 0.5}, 0});
  EXPECT_TRUE(server.Tick(mv).IsNotFound());
  UpdateBatch bad_k;
  bad_k.queries.push_back(
      QueryUpdate{7, QueryUpdate::Kind::kInstall, NetworkPoint{0, 0.5}, 0});
  EXPECT_TRUE(server.Tick(bad_k).IsInvalidArgument());
  UpdateBatch bad_edge;
  bad_edge.queries.push_back(
      QueryUpdate{7, QueryUpdate::Kind::kInstall, NetworkPoint{999, 0.5}, 1});
  EXPECT_TRUE(server.Tick(bad_edge).IsInvalidArgument());
}

TEST(ServerTest, RejectedBatchLeavesTheServerConsistent) {
  // Regression: a batch mixing valid object updates with an invalid query
  // update used to apply the object updates to the shared table before the
  // shard rejected the batch, leaving the engines' known sets pointing at
  // table state they never saw (a later rebuild hit a CKNN_CHECK). The
  // whole batch must be rejected untouched, and the server must keep
  // working afterwards.
  for (const Algorithm algo :
       {Algorithm::kIma, Algorithm::kGma, Algorithm::kOvh}) {
    SCOPED_TRACE(AlgorithmName(algo));
    MonitoringServer server(testing::MakeGrid(4), algo);
    ASSERT_TRUE(server.AddObject(1, NetworkPoint{0, 0.5}).ok());
    ASSERT_TRUE(server.InstallQuery(0, NetworkPoint{0, 0.1}, 1).ok());
    UpdateBatch mixed;
    mixed.objects.push_back(
        ObjectUpdate{1, NetworkPoint{0, 0.5}, std::nullopt});  // Valid.
    mixed.queries.push_back(  // Invalid: query 9 was never installed.
        QueryUpdate{9, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
    EXPECT_TRUE(server.Tick(mixed).IsNotFound());
    // The valid half must not have been applied.
    EXPECT_TRUE(server.objects().Contains(1));
    // The server still ticks and maintains results afterwards.
    ASSERT_TRUE(server.MoveObject(1, NetworkPoint{5, 0.25}).ok());
    ASSERT_TRUE(server.UpdateEdgeWeight(0, 2.0).ok());
    const auto* result = server.ResultOf(0);
    ASSERT_NE(result, nullptr);
    ASSERT_EQ(result->size(), 1u);
    EXPECT_EQ((*result)[0].id, 1u);
  }
}

TEST(ServerTest, AggregateMergesObjectUpdates) {
  UpdateBatch batch;
  batch.objects.push_back(
      ObjectUpdate{1, NetworkPoint{0, 0.1}, NetworkPoint{0, 0.2}});
  batch.objects.push_back(
      ObjectUpdate{1, NetworkPoint{0, 0.2}, NetworkPoint{0, 0.3}});
  const UpdateBatch out = MonitoringServer::AggregateBatch(batch);
  ASSERT_EQ(out.objects.size(), 1u);
  EXPECT_DOUBLE_EQ(out.objects[0].old_pos->t, 0.1);
  EXPECT_DOUBLE_EQ(out.objects[0].new_pos->t, 0.3);
}

TEST(ServerTest, AggregateCancelsAppearDisappear) {
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{1, std::nullopt, NetworkPoint{0, 0.2}});
  batch.objects.push_back(ObjectUpdate{1, NetworkPoint{0, 0.2}, std::nullopt});
  EXPECT_TRUE(MonitoringServer::AggregateBatch(batch).objects.empty());
}

TEST(ServerTest, AggregateQueryChains) {
  UpdateBatch batch;
  batch.queries.push_back(QueryUpdate{1, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{0, 0.1}, 3});
  batch.queries.push_back(
      QueryUpdate{1, QueryUpdate::Kind::kMove, NetworkPoint{0, 0.9}, 0});
  UpdateBatch out = MonitoringServer::AggregateBatch(batch);
  ASSERT_EQ(out.queries.size(), 1u);
  EXPECT_EQ(out.queries[0].kind, QueryUpdate::Kind::kInstall);
  EXPECT_DOUBLE_EQ(out.queries[0].pos.t, 0.9);
  EXPECT_EQ(out.queries[0].k, 3);
  // Install then terminate: dropped.
  batch.queries.push_back(
      QueryUpdate{1, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  out = MonitoringServer::AggregateBatch(batch);
  EXPECT_TRUE(out.queries.empty());
  // Move then terminate on an existing query: terminate survives.
  UpdateBatch batch2;
  batch2.queries.push_back(
      QueryUpdate{2, QueryUpdate::Kind::kMove, NetworkPoint{0, 0.5}, 0});
  batch2.queries.push_back(
      QueryUpdate{2, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  out = MonitoringServer::AggregateBatch(batch2);
  ASSERT_EQ(out.queries.size(), 1u);
  EXPECT_EQ(out.queries[0].kind, QueryUpdate::Kind::kTerminate);
}

TEST(ServerTest, AggregateEdgeLastWins) {
  UpdateBatch batch;
  batch.edges.push_back(EdgeUpdate{4, 2.0});
  batch.edges.push_back(EdgeUpdate{4, 3.0});
  const UpdateBatch out = MonitoringServer::AggregateBatch(batch);
  ASSERT_EQ(out.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(out.edges[0].new_weight, 3.0);
}

TEST(ServerTest, SnapUsesSpatialIndex) {
  MonitoringServer server(testing::MakeGrid(3), Algorithm::kOvh);
  // Point near the middle of edge 0 (from (0,0) to (1,0)).
  auto snapped = server.Snap(Point{0.5, 0.05});
  ASSERT_TRUE(snapped.ok());
  EXPECT_EQ(snapped->edge, 0u);
  EXPECT_NEAR(snapped->t, 0.5, 1e-9);
}

TEST(ServerTest, AlgorithmNames) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kIma), "IMA");
  EXPECT_STREQ(AlgorithmName(Algorithm::kGma), "GMA");
  EXPECT_STREQ(AlgorithmName(Algorithm::kOvh), "OVH");
  MonitoringServer server(testing::MakeGrid(2), Algorithm::kGma);
  EXPECT_EQ(server.monitor().name(), "GMA");
  EXPECT_EQ(server.algorithm(), Algorithm::kGma);
}

TEST(ServerTest, MonitorMemoryBytesNonZeroWithQueries) {
  MonitoringServer server(testing::MakeGrid(4), Algorithm::kIma);
  ASSERT_TRUE(server.AddObject(1, NetworkPoint{2, 0.5}).ok());
  ASSERT_TRUE(server.InstallQuery(0, NetworkPoint{0, 0.5}, 1).ok());
  EXPECT_GT(server.MonitorMemoryBytes(), 0u);
}

}  // namespace
}  // namespace cknn

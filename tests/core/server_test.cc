#include "src/core/server.h"

#include <limits>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ServerTest, ConvenienceLifecycle) {
  MonitoringServer server(testing::MakeGrid(4), Algorithm::kIma);
  ASSERT_TRUE(server.AddObject(1, NetworkPoint{0, 0.5}).ok());
  ASSERT_TRUE(server.AddObject(2, NetworkPoint{5, 0.5}).ok());
  ASSERT_TRUE(server.InstallQuery(0, NetworkPoint{0, 0.1}, 1).ok());
  ASSERT_NE(server.ResultOf(0), nullptr);
  EXPECT_EQ(server.ResultOf(0)->size(), 1u);
  EXPECT_EQ((*server.ResultOf(0))[0].id, 1u);
  ASSERT_TRUE(server.MoveObject(1, NetworkPoint{11, 0.5}).ok());
  ASSERT_TRUE(server.RemoveObject(2).ok());
  ASSERT_TRUE(server.MoveQuery(0, NetworkPoint{3, 0.5}).ok());
  ASSERT_TRUE(server.UpdateEdgeWeight(0, 5.0).ok());
  EXPECT_DOUBLE_EQ(server.network().edge(0).weight, 5.0);
  ASSERT_TRUE(server.TerminateQuery(0).ok());
  EXPECT_EQ(server.ResultOf(0), nullptr);
  EXPECT_EQ(server.timestamp(), 8u);
}

TEST(ServerTest, ValidationRejectsBadUpdates) {
  MonitoringServer server(testing::MakeGrid(3), Algorithm::kOvh);
  ASSERT_TRUE(server.AddObject(1, NetworkPoint{0, 0.5}).ok());
  // Move with mismatched old position.
  UpdateBatch bad;
  bad.objects.push_back(
      ObjectUpdate{1, NetworkPoint{0, 0.9}, NetworkPoint{1, 0.5}});
  EXPECT_TRUE(server.Tick(bad).IsInvalidArgument());
  // Move of unknown object.
  UpdateBatch unknown;
  unknown.objects.push_back(
      ObjectUpdate{9, NetworkPoint{0, 0.5}, NetworkPoint{1, 0.5}});
  EXPECT_TRUE(server.Tick(unknown).IsNotFound());
  // Duplicate appearance.
  UpdateBatch dup;
  dup.objects.push_back(ObjectUpdate{1, std::nullopt, NetworkPoint{1, 0.5}});
  EXPECT_TRUE(server.Tick(dup).IsAlreadyExists());
  // Unknown edge in a weight update.
  UpdateBatch edge;
  edge.edges.push_back(EdgeUpdate{999, 1.0});
  EXPECT_TRUE(server.Tick(edge).IsNotFound());
  // Negative weight.
  UpdateBatch neg;
  neg.edges.push_back(EdgeUpdate{0, -2.0});
  EXPECT_TRUE(server.Tick(neg).IsInvalidArgument());
  // Query updates are validated too.
  UpdateBatch term;
  term.queries.push_back(
      QueryUpdate{7, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  EXPECT_TRUE(server.Tick(term).IsNotFound());
  UpdateBatch mv;
  mv.queries.push_back(
      QueryUpdate{7, QueryUpdate::Kind::kMove, NetworkPoint{0, 0.5}, 0});
  EXPECT_TRUE(server.Tick(mv).IsNotFound());
  UpdateBatch bad_k;
  bad_k.queries.push_back(
      QueryUpdate{7, QueryUpdate::Kind::kInstall, NetworkPoint{0, 0.5}, 0});
  EXPECT_TRUE(server.Tick(bad_k).IsInvalidArgument());
  UpdateBatch bad_edge;
  bad_edge.queries.push_back(
      QueryUpdate{7, QueryUpdate::Kind::kInstall, NetworkPoint{999, 0.5}, 1});
  EXPECT_TRUE(server.Tick(bad_edge).IsInvalidArgument());
}

TEST(ServerTest, ValidationRejectsNonFiniteEdgeWeights) {
  // Regression: `u.new_weight < 0.0` is false for NaN, so a NaN weight
  // slid through stage-2 validation into every downstream `<` comparison.
  MonitoringServer server(testing::MakeGrid(3), Algorithm::kOvh);
  for (const double weight : {kNan, kInf, -kInf}) {
    UpdateBatch batch;
    batch.edges.push_back(EdgeUpdate{0, weight});
    EXPECT_TRUE(server.Tick(batch).IsInvalidArgument()) << weight;
  }
  // Finite non-negative weights (including zero) stay accepted.
  ASSERT_TRUE(server.UpdateEdgeWeight(0, 0.0).ok());
  ASSERT_TRUE(server.UpdateEdgeWeight(0, 1.5).ok());
}

TEST(ServerTest, ValidationRejectsNonFiniteOrOutOfRangeOffsets) {
  // Regression: NetworkPoint offsets were never range-checked, so a NaN
  // or out-of-[0,1] fraction entered the object table / engines.
  MonitoringServer server(testing::MakeGrid(3), Algorithm::kOvh);
  ASSERT_TRUE(server.AddObject(1, NetworkPoint{0, 0.5}).ok());
  ASSERT_TRUE(server.InstallQuery(0, NetworkPoint{0, 0.1}, 1).ok());
  for (const double t : {kNan, kInf, -kInf, -0.25, 1.25}) {
    SCOPED_TRACE(t);
    // Appearing object.
    UpdateBatch appear;
    appear.objects.push_back(
        ObjectUpdate{7, std::nullopt, NetworkPoint{0, t}});
    EXPECT_TRUE(server.Tick(appear).IsInvalidArgument());
    // Moving object (valid old position, bad target).
    UpdateBatch move;
    move.objects.push_back(
        ObjectUpdate{1, NetworkPoint{0, 0.5}, NetworkPoint{1, t}});
    EXPECT_TRUE(server.Tick(move).IsInvalidArgument());
    // Query install and move.
    UpdateBatch install;
    install.queries.push_back(
        QueryUpdate{5, QueryUpdate::Kind::kInstall, NetworkPoint{0, t}, 1});
    EXPECT_TRUE(server.Tick(install).IsInvalidArgument());
    UpdateBatch qmove;
    qmove.queries.push_back(
        QueryUpdate{0, QueryUpdate::Kind::kMove, NetworkPoint{0, t}, 0});
    EXPECT_TRUE(server.Tick(qmove).IsInvalidArgument());
  }
  // Nothing leaked into the tables, and the boundary offsets stay legal.
  EXPECT_FALSE(server.objects().Contains(7));
  EXPECT_EQ(server.objects().Position(1).value(), (NetworkPoint{0, 0.5}));
  ASSERT_TRUE(server.MoveObject(1, NetworkPoint{1, 0.0}).ok());
  ASSERT_TRUE(server.MoveObject(1, NetworkPoint{1, 1.0}).ok());
}

TEST(ServerTest, AggregationDoesNotLaunderInconsistentObjectChains) {
  // Regression: the object fold only rewrote new_pos, so an invalid chain
  // like insert@p1 -> move(old=p999 -> p2) collapsed into a plausible
  // insert@p2 that validation accepted, while a sequential replay of the
  // same updates would reject the move. Both orders must reject now, with
  // the same status category the sequential replay surfaces.
  for (const Algorithm algo :
       {Algorithm::kIma, Algorithm::kGma, Algorithm::kOvh}) {
    SCOPED_TRACE(AlgorithmName(algo));
    MonitoringServer server(testing::MakeGrid(4), algo);
    ASSERT_TRUE(server.AddObject(1, NetworkPoint{0, 0.5}).ok());
    // insert @ p1, then a move whose old position contradicts the chain.
    UpdateBatch laundered;
    laundered.objects.push_back(
        ObjectUpdate{7, std::nullopt, NetworkPoint{0, 0.25}});
    laundered.objects.push_back(
        ObjectUpdate{7, NetworkPoint{9, 0.75}, NetworkPoint{1, 0.5}});
    EXPECT_TRUE(server.Tick(laundered).IsInvalidArgument());
    EXPECT_FALSE(server.objects().Contains(7));
    // remove, then a move of the now-gone object: sequential NotFound.
    UpdateBatch move_after_remove;
    move_after_remove.objects.push_back(
        ObjectUpdate{1, NetworkPoint{0, 0.5}, std::nullopt});
    move_after_remove.objects.push_back(
        ObjectUpdate{1, NetworkPoint{0, 0.5}, NetworkPoint{1, 0.5}});
    EXPECT_TRUE(server.Tick(move_after_remove).IsNotFound());
    EXPECT_TRUE(server.objects().Contains(1));  // Whole batch rejected.
    // move, then an insert of the still-present object: AlreadyExists.
    UpdateBatch insert_while_present;
    insert_while_present.objects.push_back(
        ObjectUpdate{1, NetworkPoint{0, 0.5}, NetworkPoint{1, 0.5}});
    insert_while_present.objects.push_back(
        ObjectUpdate{1, std::nullopt, NetworkPoint{2, 0.5}});
    EXPECT_TRUE(server.Tick(insert_while_present).IsAlreadyExists());
    EXPECT_EQ(server.objects().Position(1).value(), (NetworkPoint{0, 0.5}));
    // insert -> delete -> move(old=table pos) on an id the table already
    // holds: the consistent insert+delete prefix folds to a no-op, and
    // erasing that no-op slot used to delete the evidence — the leftover
    // raw move matched the table and the batch was accepted, while a
    // sequential replay rejects the stream at the *insert* with
    // AlreadyExists. A broken chain must be emitted raw in full.
    UpdateBatch erased_evidence;
    erased_evidence.objects.push_back(
        ObjectUpdate{1, std::nullopt, NetworkPoint{1, 0.5}});
    erased_evidence.objects.push_back(
        ObjectUpdate{1, NetworkPoint{1, 0.5}, std::nullopt});
    erased_evidence.objects.push_back(
        ObjectUpdate{1, NetworkPoint{0, 0.5}, NetworkPoint{2, 0.5}});
    EXPECT_TRUE(server.Tick(erased_evidence).IsAlreadyExists());
    EXPECT_EQ(server.objects().Position(1).value(), (NetworkPoint{0, 0.5}));
    // A consistent chain still folds and applies.
    UpdateBatch chained;
    chained.objects.push_back(
        ObjectUpdate{1, NetworkPoint{0, 0.5}, NetworkPoint{1, 0.25}});
    chained.objects.push_back(
        ObjectUpdate{1, NetworkPoint{1, 0.25}, NetworkPoint{2, 0.75}});
    ASSERT_TRUE(server.Tick(chained).ok());
    EXPECT_EQ(server.objects().Position(1).value(), (NetworkPoint{2, 0.75}));
  }
}

TEST(ServerTest, ShardFailureAfterValidationAborts) {
  // Stage-2 validation makes a stage-4 shard failure unreachable; were
  // one to slip through, the shared table would already be mutated with
  // the engines unrouted. That residual path is a CKNN_CHECK, not a
  // Status pretending the server is still usable. Reproduced by
  // desynchronizing the engine behind the server's back through the
  // diagnostics accessor: terminate a query directly in the monitor, then
  // feed the server a move for it — validation (whose registry still
  // carries the query) passes, the engine rejects, the server aborts.
  EXPECT_DEATH(
      {
        MonitoringServer server(testing::MakeGrid(3), Algorithm::kIma);
        if (!server.InstallQuery(0, NetworkPoint{0, 0.5}, 1).ok()) return;
        UpdateBatch terminate;
        terminate.queries.push_back(QueryUpdate{
            0, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
        if (!server.monitor().ProcessTimestamp(terminate).ok()) return;
        UpdateBatch move;
        move.queries.push_back(
            QueryUpdate{0, QueryUpdate::Kind::kMove, NetworkPoint{1, 0.5}, 0});
        (void)server.Tick(move);
      },
      "CKNN_CHECK failed");
}

TEST(ServerTest, RejectedBatchLeavesTheServerConsistent) {
  // Regression: a batch mixing valid object updates with an invalid query
  // update used to apply the object updates to the shared table before the
  // shard rejected the batch, leaving the engines' known sets pointing at
  // table state they never saw (a later rebuild hit a CKNN_CHECK). The
  // whole batch must be rejected untouched, and the server must keep
  // working afterwards.
  for (const Algorithm algo :
       {Algorithm::kIma, Algorithm::kGma, Algorithm::kOvh}) {
    SCOPED_TRACE(AlgorithmName(algo));
    MonitoringServer server(testing::MakeGrid(4), algo);
    ASSERT_TRUE(server.AddObject(1, NetworkPoint{0, 0.5}).ok());
    ASSERT_TRUE(server.InstallQuery(0, NetworkPoint{0, 0.1}, 1).ok());
    UpdateBatch mixed;
    mixed.objects.push_back(
        ObjectUpdate{1, NetworkPoint{0, 0.5}, std::nullopt});  // Valid.
    mixed.queries.push_back(  // Invalid: query 9 was never installed.
        QueryUpdate{9, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
    EXPECT_TRUE(server.Tick(mixed).IsNotFound());
    // The valid half must not have been applied.
    EXPECT_TRUE(server.objects().Contains(1));
    // The server still ticks and maintains results afterwards.
    ASSERT_TRUE(server.MoveObject(1, NetworkPoint{5, 0.25}).ok());
    ASSERT_TRUE(server.UpdateEdgeWeight(0, 2.0).ok());
    const auto* result = server.ResultOf(0);
    ASSERT_NE(result, nullptr);
    ASSERT_EQ(result->size(), 1u);
    EXPECT_EQ((*result)[0].id, 1u);
  }
}

TEST(ServerTest, AggregateMergesObjectUpdates) {
  UpdateBatch batch;
  batch.objects.push_back(
      ObjectUpdate{1, NetworkPoint{0, 0.1}, NetworkPoint{0, 0.2}});
  batch.objects.push_back(
      ObjectUpdate{1, NetworkPoint{0, 0.2}, NetworkPoint{0, 0.3}});
  const UpdateBatch out = MonitoringServer::AggregateBatch(batch);
  ASSERT_EQ(out.objects.size(), 1u);
  EXPECT_DOUBLE_EQ(out.objects[0].old_pos->t, 0.1);
  EXPECT_DOUBLE_EQ(out.objects[0].new_pos->t, 0.3);
}

TEST(ServerTest, AggregateCancelsAppearDisappearIntoARetainedNoOp) {
  // The pair folds to a {nullopt, nullopt} slot that AggregateBatch keeps
  // as evidence the chain began with an insert (validation rejects it
  // when the id already exists); the server drops it after validation.
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{1, std::nullopt, NetworkPoint{0, 0.2}});
  batch.objects.push_back(ObjectUpdate{1, NetworkPoint{0, 0.2}, std::nullopt});
  const UpdateBatch out = MonitoringServer::AggregateBatch(batch);
  ASSERT_EQ(out.objects.size(), 1u);
  EXPECT_FALSE(out.objects[0].old_pos.has_value());
  EXPECT_FALSE(out.objects[0].new_pos.has_value());
}

TEST(ServerTest, CancelledAppearanceOfAnExistingObjectStillRejects) {
  // Regression: insert -> delete of an id the table already holds used to
  // fold to a no-op that was erased before validation, silently accepting
  // a batch whose first update a sequential replay rejects.
  for (const Algorithm algo :
       {Algorithm::kIma, Algorithm::kGma, Algorithm::kOvh}) {
    SCOPED_TRACE(AlgorithmName(algo));
    MonitoringServer server(testing::MakeGrid(3), algo);
    ASSERT_TRUE(server.AddObject(1, NetworkPoint{0, 0.5}).ok());
    UpdateBatch cancelled;
    cancelled.objects.push_back(
        ObjectUpdate{1, std::nullopt, NetworkPoint{1, 0.5}});
    cancelled.objects.push_back(
        ObjectUpdate{1, NetworkPoint{1, 0.5}, std::nullopt});
    EXPECT_TRUE(server.Tick(cancelled).IsAlreadyExists());
    EXPECT_EQ(server.objects().Position(1).value(), (NetworkPoint{0, 0.5}));
    // On a fresh id the same pair is a net no-op the server accepts.
    UpdateBatch fresh;
    fresh.objects.push_back(
        ObjectUpdate{7, std::nullopt, NetworkPoint{1, 0.5}});
    fresh.objects.push_back(
        ObjectUpdate{7, NetworkPoint{1, 0.5}, std::nullopt});
    ASSERT_TRUE(server.Tick(fresh).ok());
    EXPECT_FALSE(server.objects().Contains(7));
  }
}

TEST(ServerTest, AggregateQueryChains) {
  UpdateBatch batch;
  batch.queries.push_back(QueryUpdate{1, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{0, 0.1}, 3});
  batch.queries.push_back(
      QueryUpdate{1, QueryUpdate::Kind::kMove, NetworkPoint{0, 0.9}, 0});
  UpdateBatch out = MonitoringServer::AggregateBatch(batch);
  ASSERT_EQ(out.queries.size(), 1u);
  EXPECT_EQ(out.queries[0].kind, QueryUpdate::Kind::kInstall);
  EXPECT_DOUBLE_EQ(out.queries[0].pos.t, 0.9);
  EXPECT_EQ(out.queries[0].k, 3);
  // Install then terminate: dropped.
  batch.queries.push_back(
      QueryUpdate{1, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  out = MonitoringServer::AggregateBatch(batch);
  EXPECT_TRUE(out.queries.empty());
  // Move then terminate on an existing query: terminate survives.
  UpdateBatch batch2;
  batch2.queries.push_back(
      QueryUpdate{2, QueryUpdate::Kind::kMove, NetworkPoint{0, 0.5}, 0});
  batch2.queries.push_back(
      QueryUpdate{2, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  out = MonitoringServer::AggregateBatch(batch2);
  ASSERT_EQ(out.queries.size(), 1u);
  EXPECT_EQ(out.queries[0].kind, QueryUpdate::Kind::kTerminate);
}

TEST(ServerTest, AggregateEdgeLastWins) {
  UpdateBatch batch;
  batch.edges.push_back(EdgeUpdate{4, 2.0});
  batch.edges.push_back(EdgeUpdate{4, 3.0});
  const UpdateBatch out = MonitoringServer::AggregateBatch(batch);
  ASSERT_EQ(out.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(out.edges[0].new_weight, 3.0);
}

TEST(ServerTest, SnapUsesSpatialIndex) {
  MonitoringServer server(testing::MakeGrid(3), Algorithm::kOvh);
  // Point near the middle of edge 0 (from (0,0) to (1,0)).
  auto snapped = server.Snap(Point{0.5, 0.05});
  ASSERT_TRUE(snapped.ok());
  EXPECT_EQ(snapped->edge, 0u);
  EXPECT_NEAR(snapped->t, 0.5, 1e-9);
}

TEST(ServerTest, AlgorithmNames) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kIma), "IMA");
  EXPECT_STREQ(AlgorithmName(Algorithm::kGma), "GMA");
  EXPECT_STREQ(AlgorithmName(Algorithm::kOvh), "OVH");
  MonitoringServer server(testing::MakeGrid(2), Algorithm::kGma);
  EXPECT_EQ(server.monitor().name(), "GMA");
  EXPECT_EQ(server.algorithm(), Algorithm::kGma);
}

TEST(ServerTest, MonitorMemoryBytesNonZeroWithQueries) {
  MonitoringServer server(testing::MakeGrid(4), Algorithm::kIma);
  ASSERT_TRUE(server.AddObject(1, NetworkPoint{2, 0.5}).ok());
  ASSERT_TRUE(server.InstallQuery(0, NetworkPoint{0, 0.5}, 1).ok());
  EXPECT_GT(server.MonitorMemoryBytes(), 0u);
}

}  // namespace
}  // namespace cknn

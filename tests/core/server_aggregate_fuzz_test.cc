// Differential fuzz for Section 4.5 preprocessing: replaying a randomly
// generated update batch one-update-per-tick ("raw") must leave the server
// in the same observable state as submitting the whole batch in a single
// aggregated tick — for every algorithm, and for arbitrary per-entity
// chains (move-after-move, appear-then-move, terminate-then-reinstall,
// install-move-terminate, repeated weight updates, ...). This is the test
// that falsified the pre-fix collapse rules, which dropped the terminate
// of a terminate→reinstall chain and re-installed a still-registered id.
//
// Runs under the `fuzz` label; seeds via CKNN_FUZZ_SEED, iteration budget
// via CKNN_FUZZ_SCALE (tests/fuzz_util.h).

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/server.h"
#include "src/util/rng.h"
#include "tests/fuzz_util.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

constexpr ObjectId kNumObjectIds = 12;
constexpr QueryId kNumQueryIds = 8;

/// Ground truth the generator maintains so every chained update is valid
/// sequential input (old positions match, moves only touch live entities).
struct Model {
  std::map<ObjectId, NetworkPoint> objects;
  struct Query {
    NetworkPoint pos;
    int k = 1;
  };
  std::map<QueryId, Query> queries;
};

NetworkPoint RandomPoint(Rng* rng, std::size_t num_edges) {
  return NetworkPoint{static_cast<EdgeId>(rng->NextIndex(num_edges)),
                      rng->NextDouble()};
}

/// One random, sequentially valid update; appends it to `batch` and folds
/// it into `model`.
void AppendRandomUpdate(Rng* rng, std::size_t num_edges, Model* model,
                        UpdateBatch* batch) {
  switch (rng->NextIndex(3)) {
    case 0: {  // Object update.
      const ObjectId id = static_cast<ObjectId>(rng->NextIndex(kNumObjectIds));
      auto it = model->objects.find(id);
      if (it == model->objects.end()) {  // Appear.
        const NetworkPoint pos = RandomPoint(rng, num_edges);
        batch->objects.push_back(ObjectUpdate{id, std::nullopt, pos});
        model->objects.emplace(id, pos);
      } else if (rng->NextBool(0.25)) {  // Disappear.
        batch->objects.push_back(ObjectUpdate{id, it->second, std::nullopt});
        model->objects.erase(it);
      } else {  // Move.
        const NetworkPoint pos = RandomPoint(rng, num_edges);
        batch->objects.push_back(ObjectUpdate{id, it->second, pos});
        it->second = pos;
      }
      break;
    }
    case 1: {  // Query update.
      const QueryId id = static_cast<QueryId>(rng->NextIndex(kNumQueryIds));
      auto it = model->queries.find(id);
      if (it == model->queries.end()) {  // Install.
        Model::Query q{RandomPoint(rng, num_edges),
                       1 + static_cast<int>(rng->NextIndex(4))};
        batch->queries.push_back(
            QueryUpdate{id, QueryUpdate::Kind::kInstall, q.pos, q.k});
        model->queries.emplace(id, q);
      } else if (rng->NextBool(0.3)) {  // Terminate.
        batch->queries.push_back(
            QueryUpdate{id, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
        model->queries.erase(it);
      } else {  // Move.
        const NetworkPoint pos = RandomPoint(rng, num_edges);
        batch->queries.push_back(
            QueryUpdate{id, QueryUpdate::Kind::kMove, pos, 0});
        it->second.pos = pos;
      }
      break;
    }
    default: {  // Edge-weight update.
      batch->edges.push_back(
          EdgeUpdate{static_cast<EdgeId>(rng->NextIndex(num_edges)),
                     rng->Uniform(0.1, 5.0)});
      break;
    }
  }
}

/// Every query of `model` must expose identical results on both servers.
void ExpectSameObservableState(const Model& model, const MonitoringServer& a,
                               const MonitoringServer& b) {
  ASSERT_EQ(a.NumQueries(), model.queries.size());
  ASSERT_EQ(b.NumQueries(), model.queries.size());
  ASSERT_EQ(a.objects().size(), model.objects.size());
  ASSERT_EQ(b.objects().size(), model.objects.size());
  for (const auto& [id, pos] : model.objects) {
    ASSERT_TRUE(a.objects().Position(id).ok());
    EXPECT_EQ(a.objects().Position(id).value(), pos);
    EXPECT_EQ(b.objects().Position(id).value(), pos);
  }
  for (const auto& [id, q] : model.queries) {
    (void)q;
    SCOPED_TRACE("query " + std::to_string(id));
    const std::vector<Neighbor>* ra = a.ResultOf(id);
    const std::vector<Neighbor>* rb = b.ResultOf(id);
    ASSERT_NE(ra, nullptr);
    ASSERT_NE(rb, nullptr);
    // The raw replay takes different incremental-maintenance paths (one
    // tick per update), so distances may differ by accumulated rounding —
    // compare with the same relative tolerance the engine's invariant
    // checker uses. The neighbor id multiset must match exactly.
    ASSERT_EQ(ra->size(), rb->size());
    std::vector<ObjectId> ids_a, ids_b;
    for (std::size_t r = 0; r < ra->size(); ++r) {
      const double da = (*ra)[r].distance;
      const double db = (*rb)[r].distance;
      EXPECT_LE(std::abs(da - db), 1e-9 * (1.0 + std::abs(da)))
          << "rank " << r << ": object " << (*ra)[r].id << " at " << da
          << " vs object " << (*rb)[r].id << " at " << db;
      ids_a.push_back((*ra)[r].id);
      ids_b.push_back((*rb)[r].id);
    }
    std::sort(ids_a.begin(), ids_a.end());
    std::sort(ids_b.begin(), ids_b.end());
    EXPECT_EQ(ids_a, ids_b) << "neighbor id multiset divergence";
  }
  for (EdgeId e = 0; e < a.network().NumEdges(); ++e) {
    ASSERT_DOUBLE_EQ(a.network().edge(e).weight, b.network().edge(e).weight);
  }
}

class AggregateFuzzTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AggregateFuzzTest, RawReplayEqualsAggregatedReplay) {
  const int cases = testing::FuzzIterations(6, 60);
  for (int c = 0; c < cases; ++c) {
    const std::uint64_t seed = testing::FuzzSeed(3000 + c);
    SCOPED_TRACE("case " + std::to_string(c) + " seed " +
                 std::to_string(seed));
    Rng rng(seed);
    // Shared starting state: a grid with a few objects and queries.
    RoadNetwork grid = testing::MakeGrid(4);
    const std::size_t num_edges = grid.NumEdges();
    MonitoringServer raw(testing::MakeGrid(4), GetParam());
    MonitoringServer aggregated(std::move(grid), GetParam());
    Model model;
    {
      UpdateBatch setup;
      for (ObjectId id = 0; id < 4; ++id) {
        const NetworkPoint pos = RandomPoint(&rng, num_edges);
        setup.objects.push_back(ObjectUpdate{id, std::nullopt, pos});
        model.objects.emplace(id, pos);
      }
      for (QueryId id = 0; id < 3; ++id) {
        Model::Query q{RandomPoint(&rng, num_edges),
                       1 + static_cast<int>(rng.NextIndex(3))};
        setup.queries.push_back(
            QueryUpdate{id, QueryUpdate::Kind::kInstall, q.pos, q.k});
        model.queries.emplace(id, q);
      }
      ASSERT_TRUE(raw.Tick(setup).ok());
      ASSERT_TRUE(aggregated.Tick(setup).ok());
    }
    // One dense batch with long per-entity chains (few ids, many updates).
    UpdateBatch batch;
    const int updates = 6 + static_cast<int>(rng.NextIndex(20));
    for (int u = 0; u < updates; ++u) {
      AppendRandomUpdate(&rng, num_edges, &model, &batch);
    }
    // Raw: one mini-tick per update, in order.
    for (const ObjectUpdate& u : batch.objects) {
      // Interleaving order matters only per entity; replay streams in the
      // generated per-kind order, queries after objects, edges last —
      // the same relative order aggregation preserves.
      UpdateBatch one;
      one.objects.push_back(u);
      ASSERT_TRUE(raw.Tick(one).ok());
    }
    for (const QueryUpdate& u : batch.queries) {
      UpdateBatch one;
      one.queries.push_back(u);
      ASSERT_TRUE(raw.Tick(one).ok());
    }
    for (const EdgeUpdate& u : batch.edges) {
      UpdateBatch one;
      one.edges.push_back(u);
      ASSERT_TRUE(raw.Tick(one).ok());
    }
    // Aggregated: the whole batch in a single tick.
    ASSERT_TRUE(aggregated.Tick(batch).ok());
    ExpectSameObservableState(model, raw, aggregated);
  }
}

TEST_P(AggregateFuzzTest, InvalidObjectChainsRejectBothWays) {
  // Differential rejection: a batch whose object chain is sequentially
  // invalid (an old position that contradicts the running chain) must be
  // rejected by the aggregated single-tick path with the same status
  // category the raw one-update-per-tick replay hits — not laundered into
  // a plausible folded update (the pre-fix fold rewrote only new_pos, so
  // insert@p1 -> move(p999 -> p2) collapsed into a valid insert@p2).
  const int cases = testing::FuzzIterations(6, 60);
  for (int c = 0; c < cases; ++c) {
    const std::uint64_t seed = testing::FuzzSeed(4000 + c);
    SCOPED_TRACE("case " + std::to_string(c) + " seed " +
                 std::to_string(seed));
    Rng rng(seed);
    RoadNetwork grid = testing::MakeGrid(4);
    const std::size_t num_edges = grid.NumEdges();
    MonitoringServer raw(testing::MakeGrid(4), GetParam());
    MonitoringServer aggregated(std::move(grid), GetParam());
    Model model;
    {
      UpdateBatch setup;
      for (ObjectId id = 0; id < 5; ++id) {
        const NetworkPoint pos = RandomPoint(&rng, num_edges);
        setup.objects.push_back(ObjectUpdate{id, std::nullopt, pos});
        model.objects.emplace(id, pos);
      }
      ASSERT_TRUE(raw.Tick(setup).ok());
      ASSERT_TRUE(aggregated.Tick(setup).ok());
    }
    // A valid chained prefix...
    UpdateBatch batch;
    const int updates = 3 + static_cast<int>(rng.NextIndex(10));
    for (int u = 0; u < updates; ++u) {
      AppendRandomUpdate(&rng, num_edges, &model, &batch);
    }
    // ...then exactly one corrupted object update appended at the end.
    switch (rng.NextIndex(3)) {
      case 0: {  // Move with an old position that matches nothing.
        const ObjectId id = model.objects.empty()
                                ? ObjectId{0}
                                : model.objects.begin()->first;
        NetworkPoint wrong = RandomPoint(&rng, num_edges);
        wrong.t = 2.0 + rng.NextDouble();  // Guaranteed mismatch: t > 1.
        batch.objects.push_back(
            ObjectUpdate{id, wrong, RandomPoint(&rng, num_edges)});
        break;
      }
      case 1: {  // Insert of an object that is (or becomes) present.
        ObjectId id = kNumObjectIds;  // Outside the generator's id space.
        if (!model.objects.empty()) id = model.objects.begin()->first;
        if (model.objects.count(id) == 0) {
          // Everything died within the batch; make the target present.
          const NetworkPoint pos = RandomPoint(&rng, num_edges);
          batch.objects.push_back(ObjectUpdate{id, std::nullopt, pos});
          model.objects.emplace(id, pos);
        }
        batch.objects.push_back(
            ObjectUpdate{id, std::nullopt, RandomPoint(&rng, num_edges)});
        break;
      }
      default: {  // Move of an object that does not exist.
        const ObjectId id = kNumObjectIds + 7;  // Never used by the model.
        batch.objects.push_back(ObjectUpdate{id, RandomPoint(&rng, num_edges),
                                             RandomPoint(&rng, num_edges)});
        break;
      }
    }
    // Aggregated: the whole batch must be rejected in one tick.
    const Status agg_status = aggregated.Tick(batch);
    ASSERT_FALSE(agg_status.ok());
    // Raw: every prefix update replays fine; the corrupted one rejects
    // with the same status category.
    Status raw_status = Status::OK();
    for (std::size_t i = 0; i < batch.objects.size(); ++i) {
      UpdateBatch one;
      one.objects.push_back(batch.objects[i]);
      const Status st = raw.Tick(one);
      if (i + 1 < batch.objects.size()) {
        ASSERT_TRUE(st.ok()) << "prefix update " << i << ": "
                             << st.ToString();
      } else {
        raw_status = st;
      }
    }
    ASSERT_FALSE(raw_status.ok());
    EXPECT_EQ(agg_status.code(), raw_status.code())
        << "aggregated: " << agg_status.ToString()
        << " raw: " << raw_status.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, AggregateFuzzTest,
                         ::testing::Values(Algorithm::kIma, Algorithm::kGma,
                                           Algorithm::kOvh),
                         [](const ::testing::TestParamInfo<Algorithm>& info) {
                           return std::string(AlgorithmName(info.param));
                         });

}  // namespace
}  // namespace cknn

#include "src/core/ima.h"

#include "gtest/gtest.h"
#include "src/core/ovh.h"
#include "src/core/server.h"
#include "src/gen/network_gen.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

/// Runs the same batch against an IMA server and an OVH server and checks
/// that all query results agree (as distance multisets).
class ImaVsOvhFixture : public ::testing::Test {
 protected:
  void Init(RoadNetwork net) {
    ima_ = std::make_unique<MonitoringServer>(CloneNetwork(net),
                                              Algorithm::kIma);
    ovh_ = std::make_unique<MonitoringServer>(std::move(net),
                                              Algorithm::kOvh);
  }

  void Tick(const UpdateBatch& batch) {
    ASSERT_TRUE(ima_->Tick(batch).ok());
    ASSERT_TRUE(ovh_->Tick(batch).ok());
  }

  void ExpectAgreement(const std::vector<QueryId>& queries) {
    for (QueryId q : queries) {
      const auto* a = ima_->ResultOf(q);
      const auto* b = ovh_->ResultOf(q);
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      testing::ExpectSameDistances(*a, *b);
    }
  }

  std::unique_ptr<MonitoringServer> ima_;
  std::unique_ptr<MonitoringServer> ovh_;
};

TEST_F(ImaVsOvhFixture, InitialResultOnGrid) {
  Init(testing::MakeGrid(4));
  UpdateBatch batch;
  for (ObjectId i = 0; i < 8; ++i) {
    batch.objects.push_back(
        ObjectUpdate{i, std::nullopt, NetworkPoint{i * 2, 0.3}});
  }
  batch.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{0, 0.5}, 3});
  Tick(batch);
  ExpectAgreement({0});
}

TEST_F(ImaVsOvhFixture, IncomingAndOutgoingObjects) {
  Init(testing::MakeGrid(5));
  UpdateBatch setup;
  for (ObjectId i = 0; i < 10; ++i) {
    setup.objects.push_back(
        ObjectUpdate{i, std::nullopt, NetworkPoint{i * 3, 0.4}});
  }
  setup.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{0, 0.2}, 3});
  Tick(setup);
  // Move a previously distant object next to the query (incoming)...
  UpdateBatch in;
  in.objects.push_back(
      ObjectUpdate{9, NetworkPoint{27, 0.4}, NetworkPoint{0, 0.3}});
  Tick(in);
  ExpectAgreement({0});
  // ...then pull the nearest object away (outgoing; forces re-expansion).
  UpdateBatch out;
  out.objects.push_back(
      ObjectUpdate{9, NetworkPoint{0, 0.3}, NetworkPoint{27, 0.9}});
  Tick(out);
  ExpectAgreement({0});
}

TEST_F(ImaVsOvhFixture, ObjectAppearsAndDisappears) {
  Init(testing::MakeGrid(4));
  UpdateBatch setup;
  for (ObjectId i = 0; i < 5; ++i) {
    setup.objects.push_back(
        ObjectUpdate{i, std::nullopt, NetworkPoint{i * 4, 0.6}});
  }
  setup.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{2, 0.5}, 2});
  Tick(setup);
  UpdateBatch appear;
  appear.objects.push_back(
      ObjectUpdate{100, std::nullopt, NetworkPoint{2, 0.4}});
  Tick(appear);
  ExpectAgreement({0});
  UpdateBatch vanish;
  vanish.objects.push_back(
      ObjectUpdate{100, NetworkPoint{2, 0.4}, std::nullopt});
  Tick(vanish);
  ExpectAgreement({0});
}

TEST_F(ImaVsOvhFixture, QueryMovesWithinTree) {
  Init(testing::MakeGrid(5));
  UpdateBatch setup;
  for (ObjectId i = 0; i < 12; ++i) {
    setup.objects.push_back(
        ObjectUpdate{i, std::nullopt, NetworkPoint{i * 2 + 1, 0.7}});
  }
  setup.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{0, 0.5}, 4});
  Tick(setup);
  // Small move along the same edge (re-root along own edge).
  UpdateBatch move1;
  move1.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kMove, NetworkPoint{0, 0.8}, 0});
  Tick(move1);
  ExpectAgreement({0});
  // Move onto an adjacent covered edge (re-root to subtree).
  UpdateBatch move2;
  move2.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kMove, NetworkPoint{1, 0.3}, 0});
  Tick(move2);
  ExpectAgreement({0});
}

TEST_F(ImaVsOvhFixture, QueryMovesOutsideTree) {
  Init(testing::MakeGrid(6));
  UpdateBatch setup;
  for (ObjectId i = 0; i < 12; ++i) {
    setup.objects.push_back(
        ObjectUpdate{i, std::nullopt, NetworkPoint{i, 0.5}});
  }
  setup.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{0, 0.1}, 2});
  Tick(setup);
  // Jump far away: forces recomputation from scratch.
  UpdateBatch jump;
  jump.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kMove,
                  NetworkPoint{static_cast<EdgeId>(
                                   ima_->network().NumEdges() - 1),
                               0.9},
                  0});
  Tick(jump);
  ExpectAgreement({0});
}

TEST_F(ImaVsOvhFixture, EdgeWeightIncreaseOnTreeEdge) {
  Init(testing::MakeGrid(5));
  UpdateBatch setup;
  for (ObjectId i = 0; i < 10; ++i) {
    setup.objects.push_back(
        ObjectUpdate{i, std::nullopt, NetworkPoint{i * 3 + 1, 0.5}});
  }
  setup.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{0, 0.5}, 3});
  Tick(setup);
  UpdateBatch bump;
  bump.edges.push_back(EdgeUpdate{1, ima_->network().edge(1).weight * 3.0});
  Tick(bump);
  ExpectAgreement({0});
}

TEST_F(ImaVsOvhFixture, EdgeWeightDecreaseCreatesShortcut) {
  Init(testing::MakeGrid(5));
  UpdateBatch setup;
  for (ObjectId i = 0; i < 10; ++i) {
    setup.objects.push_back(
        ObjectUpdate{i, std::nullopt, NetworkPoint{i * 3 + 1, 0.5}});
  }
  setup.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{0, 0.5}, 3});
  Tick(setup);
  UpdateBatch drop;
  drop.edges.push_back(EdgeUpdate{2, ima_->network().edge(2).weight * 0.2});
  Tick(drop);
  ExpectAgreement({0});
}

TEST_F(ImaVsOvhFixture, DecreaseAndIncreaseSameTimestamp) {
  // The Section 4.5 ordering hazard: decreasing weights must be processed
  // before increasing ones.
  Init(testing::MakeGrid(5));
  UpdateBatch setup;
  for (ObjectId i = 0; i < 12; ++i) {
    setup.objects.push_back(
        ObjectUpdate{i, std::nullopt, NetworkPoint{i * 2, 0.5}});
  }
  setup.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{0, 0.5}, 4});
  Tick(setup);
  UpdateBatch mixed;
  mixed.edges.push_back(EdgeUpdate{1, ima_->network().edge(1).weight * 2.0});
  mixed.edges.push_back(EdgeUpdate{3, ima_->network().edge(3).weight * 0.3});
  mixed.edges.push_back(EdgeUpdate{5, ima_->network().edge(5).weight * 0.5});
  Tick(mixed);
  ExpectAgreement({0});
}

TEST_F(ImaVsOvhFixture, WeightChangeOfQueryOwnEdge) {
  Init(testing::MakeGrid(4));
  UpdateBatch setup;
  for (ObjectId i = 0; i < 8; ++i) {
    setup.objects.push_back(
        ObjectUpdate{i, std::nullopt, NetworkPoint{i * 2 + 1, 0.5}});
  }
  setup.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{0, 0.4}, 3});
  Tick(setup);
  UpdateBatch change;
  change.edges.push_back(EdgeUpdate{0, ima_->network().edge(0).weight * 2.0});
  Tick(change);
  ExpectAgreement({0});
  UpdateBatch change2;
  change2.edges.push_back(
      EdgeUpdate{0, ima_->network().edge(0).weight * 0.25});
  Tick(change2);
  ExpectAgreement({0});
}

TEST_F(ImaVsOvhFixture, ConcurrentEverything) {
  Init(GenerateRoadNetwork(NetworkGenConfig{.target_edges = 200, .seed = 5}));
  Rng rng(77);
  const std::size_t num_edges = ima_->network().NumEdges();
  UpdateBatch setup;
  std::vector<NetworkPoint> obj_pos(40);
  for (ObjectId i = 0; i < obj_pos.size(); ++i) {
    obj_pos[i] = NetworkPoint{static_cast<EdgeId>(rng.NextIndex(num_edges)),
                              rng.NextDouble()};
    setup.objects.push_back(ObjectUpdate{i, std::nullopt, obj_pos[i]});
  }
  std::vector<NetworkPoint> qry_pos(6);
  std::vector<QueryId> qids;
  for (QueryId q = 0; q < qry_pos.size(); ++q) {
    qry_pos[q] = NetworkPoint{static_cast<EdgeId>(rng.NextIndex(num_edges)),
                              rng.NextDouble()};
    setup.queries.push_back(
        QueryUpdate{q, QueryUpdate::Kind::kInstall, qry_pos[q], 5});
    qids.push_back(q);
  }
  Tick(setup);
  ExpectAgreement(qids);
  for (int ts = 0; ts < 15; ++ts) {
    UpdateBatch batch;
    // A mix of all three update types in every timestamp.
    for (ObjectId i = 0; i < obj_pos.size(); ++i) {
      if (!rng.NextBool(0.3)) continue;
      const NetworkPoint next{
          static_cast<EdgeId>(rng.NextIndex(num_edges)), rng.NextDouble()};
      batch.objects.push_back(ObjectUpdate{i, obj_pos[i], next});
      obj_pos[i] = next;
    }
    for (QueryId q = 0; q < qry_pos.size(); ++q) {
      if (!rng.NextBool(0.3)) continue;
      qry_pos[q] = NetworkPoint{
          static_cast<EdgeId>(rng.NextIndex(num_edges)), rng.NextDouble()};
      batch.queries.push_back(
          QueryUpdate{q, QueryUpdate::Kind::kMove, qry_pos[q], 0});
    }
    for (int e = 0; e < 8; ++e) {
      const EdgeId edge = static_cast<EdgeId>(rng.NextIndex(num_edges));
      batch.edges.push_back(EdgeUpdate{
          edge, ima_->network().edge(edge).weight *
                    (rng.NextBool(0.5) ? 1.1 : 0.9)});
    }
    Tick(batch);
    ExpectAgreement(qids);
  }
}

TEST(ImaEngineTest, InfluenceFilteringIgnoresIrrelevantUpdates) {
  RoadNetwork net = testing::MakeGrid(8);
  ObjectTable objects(net.NumEdges());
  ImaEngine engine(&net, &objects);
  // Objects clustered near the query; one far away.
  ASSERT_TRUE(objects.Insert(0, NetworkPoint{0, 0.5}).ok());
  ASSERT_TRUE(objects.Insert(1, NetworkPoint{1, 0.5}).ok());
  const EdgeId far_edge = static_cast<EdgeId>(net.NumEdges() - 1);
  ASSERT_TRUE(objects.Insert(2, NetworkPoint{far_edge, 0.5}).ok());
  ASSERT_TRUE(
      engine.AddQuery(0, ExpansionSource::AtPoint(NetworkPoint{0, 0.1}), 2)
          .ok());
  // Far object wiggles: must be ignored.
  const auto before = engine.stats().updates_ignored;
  std::vector<ObjectUpdate> updates{ObjectUpdate{
      2, NetworkPoint{far_edge, 0.5}, NetworkPoint{far_edge, 0.6}}};
  const auto changed = engine.ProcessUpdates(updates, {}, {});
  EXPECT_TRUE(changed.empty());
  EXPECT_EQ(engine.stats().updates_ignored, before + 1);
}

TEST(ImaEngineTest, AddRemoveQueryLifecycle) {
  RoadNetwork net = testing::MakeGrid(4);
  ObjectTable objects(net.NumEdges());
  ASSERT_TRUE(objects.Insert(0, NetworkPoint{3, 0.5}).ok());
  ImaEngine engine(&net, &objects);
  EXPECT_TRUE(engine.AddQuery(1, ExpansionSource::AtPoint(NetworkPoint{0, 0.5}),
                              1)
                  .ok());
  EXPECT_TRUE(
      engine.AddQuery(1, ExpansionSource::AtPoint(NetworkPoint{0, 0.5}), 1)
          .IsAlreadyExists());
  EXPECT_TRUE(engine.AddQuery(2, ExpansionSource::AtPoint(NetworkPoint{0, 0.5}),
                              0)
                  .IsInvalidArgument());
  EXPECT_TRUE(engine.HasQuery(1));
  ASSERT_NE(engine.ResultOf(1), nullptr);
  EXPECT_EQ(engine.ResultOf(1)->size(), 1u);
  EXPECT_TRUE(engine.RemoveQuery(1).ok());
  EXPECT_TRUE(engine.RemoveQuery(1).IsNotFound());
  EXPECT_EQ(engine.ResultOf(1), nullptr);
}

TEST(ImaEngineTest, SetKGrowsAndShrinks) {
  RoadNetwork net = testing::MakeGrid(5);
  ObjectTable objects(net.NumEdges());
  for (ObjectId i = 0; i < 10; ++i) {
    ASSERT_TRUE(objects.Insert(i, NetworkPoint{i * 2, 0.5}).ok());
  }
  ImaEngine engine(&net, &objects);
  ASSERT_TRUE(
      engine.AddQuery(0, ExpansionSource::AtPoint(NetworkPoint{0, 0.5}), 2)
          .ok());
  const auto two = *engine.ResultOf(0);
  auto grew = engine.SetK(0, 6);
  ASSERT_TRUE(grew.ok());
  EXPECT_EQ(engine.ResultOf(0)->size(), 6u);
  // Prefix stability: the first two neighbors are unchanged.
  testing::ExpectSameDistances(
      two, {engine.ResultOf(0)->begin(), engine.ResultOf(0)->begin() + 2});
  auto shrunk = engine.SetK(0, 1);
  ASSERT_TRUE(shrunk.ok());
  EXPECT_EQ(engine.ResultOf(0)->size(), 1u);
  EXPECT_EQ(engine.KOf(0), 1);
}

TEST(ImaEngineTest, SetKMidStreamContinuesFromTheLiveFrontier) {
  // Regression for the growing-k path (issue 4): after a stream of object
  // moves and weight changes has reshaped the expansion tree — including
  // the lazy shrink that prunes the tree down to 1.3x the bound — growing
  // and shrinking k must continue from the live frontier and land exactly
  // where a freshly built engine with the same k lands.
  RoadNetwork net = testing::MakeGrid(6);
  const std::size_t num_edges = net.NumEdges();
  ObjectTable objects(net.NumEdges());
  Rng rng(2024);
  std::vector<NetworkPoint> pos(14);
  for (ObjectId i = 0; i < pos.size(); ++i) {
    pos[i] = NetworkPoint{static_cast<EdgeId>(rng.NextIndex(num_edges)),
                          rng.NextDouble()};
    ASSERT_TRUE(objects.Insert(i, pos[i]).ok());
  }
  ImaEngine engine(&net, &objects);
  const NetworkPoint query{0, 0.5};
  ASSERT_TRUE(engine.AddQuery(0, ExpansionSource::AtPoint(query), 3).ok());

  const int ks[] = {3, 7, 2, 12, 1, 5};
  for (int round = 0; round < 6; ++round) {
    // A few object moves and weight wobbles between k changes.
    std::vector<ObjectUpdate> object_updates;
    for (int m = 0; m < 3; ++m) {
      const ObjectId id = static_cast<ObjectId>(rng.NextIndex(pos.size()));
      const NetworkPoint to{static_cast<EdgeId>(rng.NextIndex(num_edges)),
                            rng.NextDouble()};
      bool already = false;  // One update per object per batch.
      for (const ObjectUpdate& u : object_updates) {
        already |= u.id == id;
      }
      if (already) continue;
      object_updates.push_back(ObjectUpdate{id, pos[id], to});
      pos[id] = to;
    }
    std::vector<EdgeUpdate> edge_updates;
    const EdgeId e = static_cast<EdgeId>(rng.NextIndex(num_edges));
    edge_updates.push_back(
        EdgeUpdate{e, net.edge(e).weight * (rng.NextBool(0.5) ? 1.3 : 0.7)});
    engine.ProcessUpdates(object_updates, edge_updates, {});

    const int k = ks[round];
    ASSERT_TRUE(engine.SetK(0, k).ok());
    ASSERT_TRUE(engine.CheckInvariants().ok())
        << "round " << round << ": "
        << engine.CheckInvariants().ToString();

    // Cross-check against an engine built from scratch on the same tables.
    ImaEngine fresh(&net, &objects);
    ASSERT_TRUE(fresh.AddQuery(0, ExpansionSource::AtPoint(query), k).ok());
    const std::vector<Neighbor>* incremental = engine.ResultOf(0);
    const std::vector<Neighbor>* scratch = fresh.ResultOf(0);
    ASSERT_NE(incremental, nullptr);
    ASSERT_NE(scratch, nullptr);
    EXPECT_TRUE(*incremental == *scratch)
        << "round " << round << " k=" << k << ": incremental result ("
        << incremental->size() << " neighbors) diverged from scratch ("
        << scratch->size() << " neighbors)";
    EXPECT_DOUBLE_EQ(engine.BoundOf(0), fresh.BoundOf(0))
        << "round " << round << " k=" << k;
  }
}

TEST(ImaEngineTest, NodeAnchoredQuery) {
  RoadNetwork net = testing::MakeGrid(4);
  ObjectTable objects(net.NumEdges());
  ASSERT_TRUE(objects.Insert(0, NetworkPoint{0, 0.25}).ok());
  ImaEngine engine(&net, &objects);
  ASSERT_TRUE(engine.AddQuery(0, ExpansionSource::AtNodeSource(0), 1).ok());
  ASSERT_EQ(engine.ResultOf(0)->size(), 1u);
  EXPECT_NEAR((*engine.ResultOf(0))[0].distance, 0.25, 1e-12);
}

TEST(ImaEngineTest, MemoryGrowsWithQueries) {
  RoadNetwork net = testing::MakeGrid(6);
  ObjectTable objects(net.NumEdges());
  for (ObjectId i = 0; i < 20; ++i) {
    ASSERT_TRUE(objects.Insert(i, NetworkPoint{i, 0.5}).ok());
  }
  ImaEngine engine(&net, &objects);
  const std::size_t empty_bytes = engine.MemoryBytes();
  for (QueryId q = 0; q < 5; ++q) {
    ASSERT_TRUE(engine
                    .AddQuery(q,
                              ExpansionSource::AtPoint(NetworkPoint{q, 0.5}),
                              4)
                    .ok());
  }
  EXPECT_GT(engine.MemoryBytes(), empty_bytes);
}

}  // namespace
}  // namespace cknn

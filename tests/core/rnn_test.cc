#include "src/core/rnn.h"

#include "gtest/gtest.h"
#include "src/gen/network_gen.h"
#include "src/graph/shortest_path.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

TEST(RnnTest, SingleQueryOwnsEverything) {
  RoadNetwork net = testing::MakeGrid(3);
  ObjectTable objects(net.NumEdges());
  ASSERT_TRUE(objects.Insert(1, NetworkPoint{0, 0.5}).ok());
  ASSERT_TRUE(objects.Insert(2, NetworkPoint{5, 0.5}).ok());
  std::unordered_map<QueryId, NetworkPoint> queries{{7, NetworkPoint{0, 0.1}}};
  const auto result = ComputeReverseNearest(net, objects, queries);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.at(7).size(), 2u);
}

TEST(RnnTest, ObjectsSplitBetweenTwoQueries) {
  // Path 0 - 1 - 2 - 3 (unit edges); queries near both ends; objects along.
  RoadNetwork net;
  for (int i = 0; i < 4; ++i) net.AddNode(Point{static_cast<double>(i), 0});
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(net.AddEdge(i, i + 1).ok());
  ObjectTable objects(net.NumEdges());
  ASSERT_TRUE(objects.Insert(1, NetworkPoint{0, 0.2}).ok());  // x=0.2
  ASSERT_TRUE(objects.Insert(2, NetworkPoint{2, 0.9}).ok());  // x=2.9
  ASSERT_TRUE(objects.Insert(3, NetworkPoint{1, 0.4}).ok());  // x=1.4
  std::unordered_map<QueryId, NetworkPoint> queries{
      {10, NetworkPoint{0, 0.0}},   // x=0
      {20, NetworkPoint{2, 1.0}}};  // x=3
  const auto result = ComputeReverseNearest(net, objects, queries);
  ASSERT_EQ(result.at(10).size(), 2u);  // Objects 1 (0.2) and 3 (1.4).
  EXPECT_EQ(result.at(10)[0].id, 1u);
  EXPECT_NEAR(result.at(10)[0].distance, 0.2, 1e-12);
  EXPECT_EQ(result.at(10)[1].id, 3u);
  EXPECT_NEAR(result.at(10)[1].distance, 1.4, 1e-12);
  ASSERT_EQ(result.at(20).size(), 1u);  // Object 2 at distance 0.1.
  EXPECT_EQ(result.at(20)[0].id, 2u);
  EXPECT_NEAR(result.at(20)[0].distance, 0.1, 1e-12);
}

TEST(RnnTest, QueryWithNoReverseNeighborsGetsEmptyList) {
  RoadNetwork net = testing::MakeGrid(3);
  ObjectTable objects(net.NumEdges());
  ASSERT_TRUE(objects.Insert(1, NetworkPoint{0, 0.1}).ok());
  std::unordered_map<QueryId, NetworkPoint> queries{
      {1, NetworkPoint{0, 0.0}},
      {2, NetworkPoint{11, 0.9}}};  // Far corner, no object near it.
  const auto result = ComputeReverseNearest(net, objects, queries);
  EXPECT_EQ(result.at(1).size(), 1u);
  EXPECT_TRUE(result.at(2).empty());
}

TEST(RnnTest, UnreachableObjectsUnassigned) {
  RoadNetwork net;
  const NodeId a = net.AddNode(Point{0, 0});
  const NodeId b = net.AddNode(Point{1, 0});
  const NodeId c = net.AddNode(Point{5, 0});
  const NodeId d = net.AddNode(Point{6, 0});
  ASSERT_TRUE(net.AddEdge(a, b).ok());  // Component 1.
  ASSERT_TRUE(net.AddEdge(c, d).ok());  // Component 2.
  ObjectTable objects(net.NumEdges());
  ASSERT_TRUE(objects.Insert(1, NetworkPoint{1, 0.5}).ok());
  std::unordered_map<QueryId, NetworkPoint> queries{{9, NetworkPoint{0, 0.5}}};
  const auto assignments = ComputeObjectAssignments(net, objects, queries);
  EXPECT_TRUE(assignments.empty());
  EXPECT_TRUE(ComputeReverseNearest(net, objects, queries).at(9).empty());
}

/// Property: assignments agree with brute-force nearest-query search.
class RnnPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RnnPropertyTest, MatchesBruteForce) {
  RoadNetwork net = GenerateRoadNetwork(NetworkGenConfig{
      .target_edges = 250, .seed = static_cast<std::uint64_t>(GetParam())});
  Rng rng(GetParam() * 7);
  ObjectTable objects(net.NumEdges());
  for (ObjectId i = 0; i < 40; ++i) {
    ASSERT_TRUE(objects
                    .Insert(i, NetworkPoint{static_cast<EdgeId>(rng.NextIndex(
                                                net.NumEdges())),
                                            rng.NextDouble()})
                    .ok());
  }
  std::unordered_map<QueryId, NetworkPoint> queries;
  for (QueryId q = 0; q < 6; ++q) {
    queries.emplace(q,
                    NetworkPoint{static_cast<EdgeId>(rng.NextIndex(
                                     net.NumEdges())),
                                 rng.NextDouble()});
  }
  const auto assignments = ComputeObjectAssignments(net, objects, queries);
  for (ObjectId i = 0; i < 40; ++i) {
    const NetworkPoint pos = objects.Position(i).value();
    double best = kInfDist;
    for (const auto& [q, qpos] : queries) {
      (void)q;
      best = std::min(best, PointToPointDistance(net, qpos, pos));
    }
    auto it = assignments.find(i);
    ASSERT_NE(it, assignments.end());
    EXPECT_NEAR(it->second.distance, best, 1e-9 * (1.0 + best));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RnnPropertyTest, ::testing::Values(1, 2, 3));

TEST(RnnMonitorTest, ContinuousRecomputation) {
  RoadNetwork net = testing::MakeGrid(4);
  ObjectTable objects(net.NumEdges());
  RnnMonitor monitor(&net, &objects);
  UpdateBatch setup;
  setup.objects.push_back(ObjectUpdate{1, std::nullopt, NetworkPoint{0, 0.5}});
  setup.objects.push_back(ObjectUpdate{2, std::nullopt, NetworkPoint{9, 0.5}});
  setup.queries.push_back(QueryUpdate{10, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{0, 0.0}, 1});
  setup.queries.push_back(QueryUpdate{20, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{9, 1.0}, 1});
  ASSERT_TRUE(monitor.ProcessTimestamp(setup).ok());
  ASSERT_NE(monitor.ResultOf(10), nullptr);
  EXPECT_EQ(monitor.ResultOf(10)->size(), 1u);
  EXPECT_EQ((*monitor.ResultOf(10))[0].id, 1u);
  EXPECT_EQ((*monitor.ResultOf(20))[0].id, 2u);
  // Object 1 migrates next to query 20: both lists flip.
  UpdateBatch move;
  move.objects.push_back(
      ObjectUpdate{1, NetworkPoint{0, 0.5}, NetworkPoint{9, 0.6}});
  ASSERT_TRUE(monitor.ProcessTimestamp(move).ok());
  EXPECT_TRUE(monitor.ResultOf(10)->empty());
  EXPECT_EQ(monitor.ResultOf(20)->size(), 2u);
  // Query lifecycle errors.
  UpdateBatch bad;
  bad.queries.push_back(
      QueryUpdate{99, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  EXPECT_TRUE(monitor.ProcessTimestamp(bad).IsNotFound());
}

}  // namespace
}  // namespace cknn

#include "src/core/range_search.h"

#include "gtest/gtest.h"
#include "src/gen/network_gen.h"
#include "src/graph/shortest_path.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

TEST(RangeSearchTest, FindsObjectsWithinRadius) {
  RoadNetwork net = testing::MakeGrid(4);
  ObjectTable objects(net.NumEdges());
  ASSERT_TRUE(objects.Insert(1, NetworkPoint{0, 0.6}).ok());   // 0.1 away
  ASSERT_TRUE(objects.Insert(2, NetworkPoint{0, 0.9}).ok());   // 0.4 away
  ASSERT_TRUE(objects.Insert(3, NetworkPoint{23, 0.5}).ok());  // Far.
  const auto result =
      RangeSearch(net, objects, NetworkPoint{0, 0.5}, 0.45);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 1u);
  EXPECT_NEAR(result[0].distance, 0.1, 1e-12);
  EXPECT_EQ(result[1].id, 2u);
}

TEST(RangeSearchTest, ZeroRadiusOnlyCoincident) {
  RoadNetwork net = testing::MakeGrid(3);
  ObjectTable objects(net.NumEdges());
  ASSERT_TRUE(objects.Insert(1, NetworkPoint{0, 0.5}).ok());
  ASSERT_TRUE(objects.Insert(2, NetworkPoint{0, 0.6}).ok());
  const auto result = RangeSearch(net, objects, NetworkPoint{0, 0.5}, 0.0);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 1u);
}

TEST(RangeSearchTest, BoundaryInclusive) {
  RoadNetwork net = testing::MakeGrid(3);
  ObjectTable objects(net.NumEdges());
  ASSERT_TRUE(objects.Insert(1, NetworkPoint{0, 1.0}).ok());
  const auto result = RangeSearch(net, objects, NetworkPoint{0, 0.5}, 0.5);
  EXPECT_EQ(result.size(), 1u);  // Exactly at the boundary: included.
}

class RangeSearchPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RangeSearchPropertyTest, MatchesBruteForce) {
  RoadNetwork net = GenerateRoadNetwork(NetworkGenConfig{
      .target_edges = 250, .seed = static_cast<std::uint64_t>(GetParam())});
  Rng rng(GetParam() * 3);
  ObjectTable objects(net.NumEdges());
  for (ObjectId i = 0; i < 50; ++i) {
    ASSERT_TRUE(objects
                    .Insert(i, NetworkPoint{static_cast<EdgeId>(rng.NextIndex(
                                                net.NumEdges())),
                                            rng.NextDouble()})
                    .ok());
  }
  for (int trial = 0; trial < 6; ++trial) {
    const NetworkPoint center{
        static_cast<EdgeId>(rng.NextIndex(net.NumEdges())),
        rng.NextDouble()};
    const double radius = rng.Uniform(10.0, 300.0);
    const auto got = RangeSearch(net, objects, center, radius);
    // Oracle: full point-to-point distances.
    std::vector<Neighbor> want;
    for (ObjectId i = 0; i < 50; ++i) {
      const double d = PointToPointDistance(
          net, center, objects.Position(i).value());
      if (d <= radius) want.push_back(Neighbor{i, d});
    }
    std::sort(want.begin(), want.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.distance != b.distance ? a.distance < b.distance
                                                : a.id < b.id;
              });
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
      EXPECT_NEAR(got[i].distance, want[i].distance, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeSearchPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(RangeMonitorTest, Lifecycle) {
  RoadNetwork net = testing::MakeGrid(4);
  ObjectTable objects(net.NumEdges());
  RangeMonitor monitor(&net, &objects);
  ASSERT_TRUE(objects.Insert(1, NetworkPoint{0, 0.7}).ok());
  ASSERT_TRUE(monitor.InstallQuery(5, NetworkPoint{0, 0.5}, 1.0).ok());
  EXPECT_TRUE(
      monitor.InstallQuery(5, NetworkPoint{0, 0.5}, 1.0).IsAlreadyExists());
  EXPECT_TRUE(monitor.InstallQuery(6, NetworkPoint{0, 0.5}, -1.0)
                  .IsInvalidArgument());
  ASSERT_NE(monitor.ResultOf(5), nullptr);
  EXPECT_EQ(monitor.ResultOf(5)->size(), 1u);
  ASSERT_TRUE(monitor.MoveQuery(5, NetworkPoint{23, 0.5}).ok());
  EXPECT_TRUE(monitor.ResultOf(5)->empty());
  ASSERT_TRUE(monitor.TerminateQuery(5).ok());
  EXPECT_TRUE(monitor.TerminateQuery(5).IsNotFound());
}

TEST(RangeMonitorTest, TracksUpdates) {
  RoadNetwork net = testing::MakeGrid(4);
  ObjectTable objects(net.NumEdges());
  RangeMonitor monitor(&net, &objects);
  ASSERT_TRUE(monitor.InstallQuery(0, NetworkPoint{0, 0.5}, 1.5).ok());
  EXPECT_TRUE(monitor.ResultOf(0)->empty());
  // An object walks into range.
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{1, std::nullopt, NetworkPoint{0, 0.9}});
  ASSERT_TRUE(monitor.ProcessTimestamp(batch).ok());
  EXPECT_EQ(monitor.ResultOf(0)->size(), 1u);
  // Congestion pushes it out of the travel-cost radius.
  UpdateBatch congest;
  congest.edges.push_back(EdgeUpdate{0, 10.0});
  ASSERT_TRUE(monitor.ProcessTimestamp(congest).ok());
  EXPECT_TRUE(monitor.ResultOf(0)->empty());
  // Query updates in a batch are rejected.
  UpdateBatch bad;
  bad.queries.push_back(QueryUpdate{9, QueryUpdate::Kind::kInstall,
                                    NetworkPoint{0, 0.5}, 1});
  EXPECT_TRUE(monitor.ProcessTimestamp(bad).IsInvalidArgument());
}

}  // namespace
}  // namespace cknn

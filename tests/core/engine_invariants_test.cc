// Structural property tests: ImaEngine::CheckInvariants() must hold after
// every timestamp of randomized mixed workloads, both for IMA's per-query
// engine and for the engine GMA runs over its active nodes.

#include <memory>

#include "gtest/gtest.h"
#include "src/core/gma.h"
#include "src/core/ima.h"
#include "src/core/server.h"
#include "src/gen/network_gen.h"
#include "src/gen/workload.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

struct InvariantCase {
  std::string name;
  Algorithm algorithm;
  double edge_agility;
  double object_agility;
  double query_agility;
  std::uint64_t seed;
};

// Used by real gtest via ADL; the vendored shim prints params differently.
[[maybe_unused]] void PrintTo(const InvariantCase& c, std::ostream* os) {
  *os << c.name;
}

class EngineInvariantsTest : public ::testing::TestWithParam<InvariantCase> {
};

const ImaEngine& EngineOf(MonitoringServer* server) {
  if (server->algorithm() == Algorithm::kIma) {
    return dynamic_cast<Ima&>(server->monitor()).engine();
  }
  return dynamic_cast<Gma&>(server->monitor()).engine();
}

TEST_P(EngineInvariantsTest, HoldAtEveryTimestamp) {
  const InvariantCase& c = GetParam();
  MonitoringServer server(
      GenerateRoadNetwork(
          NetworkGenConfig{.target_edges = 350, .seed = c.seed}),
      c.algorithm);
  WorkloadConfig cfg;
  cfg.num_objects = 90;
  cfg.num_queries = 12;
  cfg.k = 5;
  cfg.edge_agility = c.edge_agility;
  cfg.object_agility = c.object_agility;
  cfg.query_agility = c.query_agility;
  cfg.seed = c.seed * 11;
  Workload wl(&server.network(), &server.spatial_index(), cfg);
  ASSERT_TRUE(server.Tick(wl.Initial()).ok());
  ASSERT_TRUE(EngineOf(&server).CheckInvariants().ok());
  for (int ts = 0; ts < 12; ++ts) {
    ASSERT_TRUE(server.Tick(wl.Step()).ok());
    const Status st = EngineOf(&server).CheckInvariants();
    ASSERT_TRUE(st.ok()) << "ts " << ts << ": " << st.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EngineInvariantsTest,
    ::testing::Values(
        InvariantCase{"ima_mixed", Algorithm::kIma, 0.05, 0.1, 0.1, 1},
        InvariantCase{"ima_heavy_weights", Algorithm::kIma, 0.4, 0.0, 0.0, 2},
        InvariantCase{"ima_heavy_movement", Algorithm::kIma, 0.0, 0.4, 0.4,
                      3},
        InvariantCase{"gma_mixed", Algorithm::kGma, 0.05, 0.1, 0.1, 4},
        InvariantCase{"gma_heavy_weights", Algorithm::kGma, 0.4, 0.0, 0.0,
                      5},
        InvariantCase{"gma_heavy_movement", Algorithm::kGma, 0.0, 0.4, 0.4,
                      6}),
    [](const ::testing::TestParamInfo<InvariantCase>& info) {
      return info.param.name;
    });

TEST(EngineInvariantsBrinkhoffTest, HoldUnderChurn) {
  RoadNetwork base =
      GenerateRoadNetwork(NetworkGenConfig{.target_edges = 300, .seed = 9});
  MonitoringServer server(std::move(base), Algorithm::kIma);
  BrinkhoffWorkload::Config cfg;
  cfg.num_objects = 70;
  cfg.num_queries = 10;
  cfg.k = 3;
  cfg.edge_agility = 0.05;
  cfg.generator.churn = 0.15;
  cfg.generator.seed = 17;
  BrinkhoffWorkload wl(&server.network(), cfg);
  ASSERT_TRUE(server.Tick(wl.Initial()).ok());
  auto& engine = dynamic_cast<Ima&>(server.monitor()).engine();
  for (int ts = 0; ts < 10; ++ts) {
    ASSERT_TRUE(server.Tick(wl.Step()).ok());
    const Status st = engine.CheckInvariants();
    ASSERT_TRUE(st.ok()) << "ts " << ts << ": " << st.ToString();
  }
}

TEST(EngineStatsTest, CountersMoveSensibly) {
  MonitoringServer server(
      GenerateRoadNetwork(NetworkGenConfig{.target_edges = 300, .seed = 3}),
      Algorithm::kIma);
  WorkloadConfig cfg;
  cfg.num_objects = 80;
  cfg.num_queries = 10;
  cfg.k = 4;
  cfg.seed = 77;
  Workload wl(&server.network(), &server.spatial_index(), cfg);
  ASSERT_TRUE(server.Tick(wl.Initial()).ok());
  auto& engine = dynamic_cast<Ima&>(server.monitor()).engine();
  const auto initial_recomputes = engine.stats().full_recomputes;
  EXPECT_EQ(initial_recomputes, 10u);  // One per installed query.
  for (int ts = 0; ts < 5; ++ts) ASSERT_TRUE(server.Tick(wl.Step()).ok());
  const auto& stats = engine.stats();
  EXPECT_GT(stats.rebuilds, 0u);
  EXPECT_GT(stats.updates_routed + stats.updates_ignored, 0u);
}

}  // namespace
}  // namespace cknn

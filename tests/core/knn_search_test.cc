#include "src/core/knn_search.h"

#include "gtest/gtest.h"
#include "src/gen/network_gen.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

TEST(KnnSearchTest, FindsObjectOnSameEdge) {
  RoadNetwork net = testing::MakeGrid(3);
  ObjectTable objects(net.NumEdges());
  ASSERT_TRUE(objects.Insert(0, NetworkPoint{0, 0.9}).ok());
  const auto result = SnapshotKnn(net, objects, NetworkPoint{0, 0.1}, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 0u);
  EXPECT_NEAR(result[0].distance, 0.8, 1e-12);
}

TEST(KnnSearchTest, ObjectOnSameEdgeReachableFasterAround) {
  RoadNetwork net = testing::MakeGrid(2);
  // Make edge 0 (0-1) expensive: direct along-edge is worse than around.
  ASSERT_TRUE(net.SetWeight(0, 10.0).ok());
  ObjectTable objects(net.NumEdges());
  ASSERT_TRUE(objects.Insert(0, NetworkPoint{0, 1.0}).ok());  // At node 1.
  const auto result = SnapshotKnn(net, objects, NetworkPoint{0, 0.0}, 1);
  ASSERT_EQ(result.size(), 1u);
  // Around 0-2-3-1 = 3.0 beats along-edge 10.0.
  EXPECT_NEAR(result[0].distance, 3.0, 1e-12);
}

TEST(KnnSearchTest, DuplicateEncounterKeepsSmallestDistance) {
  // Figure 3(b) situation: both endpoints of an edge verified; the object
  // in between must be reported once with the smaller distance.
  RoadNetwork net = testing::MakeGrid(2);
  ObjectTable objects(net.NumEdges());
  // Object on edge 3 (2-3) close to node 3; query on edge 0.
  EdgeId e23 = kInvalidEdge;
  for (EdgeId e = 0; e < net.NumEdges(); ++e) {
    if ((net.edge(e).u == 2 && net.edge(e).v == 3)) e23 = e;
  }
  ASSERT_NE(e23, kInvalidEdge);
  ASSERT_TRUE(objects.Insert(0, NetworkPoint{e23, 0.5}).ok());
  const auto result = SnapshotKnn(net, objects, NetworkPoint{0, 0.5}, 2);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_NEAR(result[0].distance, 2.0, 1e-12);
}

TEST(KnnSearchTest, KLargerThanObjectCount) {
  RoadNetwork net = testing::MakeGrid(3);
  ObjectTable objects(net.NumEdges());
  ASSERT_TRUE(objects.Insert(0, NetworkPoint{0, 0.5}).ok());
  ASSERT_TRUE(objects.Insert(1, NetworkPoint{5, 0.5}).ok());
  const auto result = SnapshotKnn(net, objects, NetworkPoint{0, 0.0}, 10);
  EXPECT_EQ(result.size(), 2u);  // All reachable objects, fewer than k.
}

TEST(KnnSearchTest, EmptyObjectTable) {
  RoadNetwork net = testing::MakeGrid(3);
  ObjectTable objects(net.NumEdges());
  EXPECT_TRUE(SnapshotKnn(net, objects, NetworkPoint{0, 0.5}, 3).empty());
}

TEST(KnnSearchTest, StatsAreCounted) {
  RoadNetwork net = testing::MakeGrid(4);
  ObjectTable objects(net.NumEdges());
  for (ObjectId i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        objects
            .Insert(i, NetworkPoint{
                           static_cast<EdgeId>(i % net.NumEdges()), 0.3})
            .ok());
  }
  ExpandStats stats;
  SnapshotKnn(net, objects, NetworkPoint{0, 0.5}, 3, &stats);
  EXPECT_GT(stats.nodes_settled, 0u);
  EXPECT_GT(stats.heap_pushes, 0u);
  EXPECT_GT(stats.objects_offered, 0u);
}

TEST(KnnSearchTest, ContinuationAfterGrowingK) {
  RoadNetwork net = testing::MakeGrid(5);
  ObjectTable objects(net.NumEdges());
  Rng rng(3);
  for (ObjectId i = 0; i < 30; ++i) {
    ASSERT_TRUE(objects
                    .Insert(i, NetworkPoint{static_cast<EdgeId>(rng.NextIndex(
                                                net.NumEdges())),
                                            rng.NextDouble()})
                    .ok());
  }
  const NetworkPoint q{0, 0.5};
  ExpansionState state;
  state.ResetToPoint(q);
  Frontier frontier;
  CandidateSet cand;
  ExpandToK(net, objects, 3, &state, &frontier, &cand);
  state.set_bound(cand.KthDist(3));
  // Continue from the live frontier to k=8 and compare against a fresh
  // k=8 search.
  ExpandToK(net, objects, 8, &state, &frontier, &cand);
  const auto grown = cand.TopK(8);
  const auto fresh = SnapshotKnn(net, objects, q, 8);
  testing::ExpectSameDistances(grown, fresh);
}

TEST(KnnSearchTest, FrontierMemoryBytesAccountsPriorityStructure) {
  // Regression: Frontier::MemoryBytes used to count only the pending-label
  // map and ignored the heap entirely, so IMA's reported footprint missed
  // its entire priority structure.
  SetDefaultFrontierQueueKind(FrontierQueueKind::kBinaryHeap);
  RoadNetwork net = testing::MakeGrid(6);
  ObjectTable objects(net.NumEdges());
  ASSERT_TRUE(objects.Insert(0, NetworkPoint{30, 0.5}).ok());
  ExpansionState state;
  state.ResetToPoint(NetworkPoint{0, 0.5});
  Frontier frontier;
  CandidateSet cand;
  ExpandToK(net, objects, 1, &state, &frontier, &cand);
  ASSERT_FALSE(frontier.heap.empty());
  EXPECT_GE(frontier.MemoryBytes(),
            frontier.heap.MemoryBytes() + frontier.pending.MemoryBytes());
  EXPECT_GE(frontier.heap.MemoryBytes(),
            frontier.heap.size() * sizeof(IndexedMinHeap::Entry));
}

TEST(KnnSearchTest, ScratchReuseMatchesFreshSearch) {
  RoadNetwork net = testing::MakeGrid(5);
  ObjectTable objects(net.NumEdges());
  Rng rng(11);
  for (ObjectId i = 0; i < 25; ++i) {
    ASSERT_TRUE(objects
                    .Insert(i, NetworkPoint{static_cast<EdgeId>(rng.NextIndex(
                                                net.NumEdges())),
                                            rng.NextDouble()})
                    .ok());
  }
  KnnScratch scratch;
  for (int round = 0; round < 5; ++round) {
    const NetworkPoint q{static_cast<EdgeId>(rng.NextIndex(net.NumEdges())),
                         rng.NextDouble()};
    const int k = 1 + static_cast<int>(rng.NextIndex(6));
    const auto reused = SnapshotKnn(net, objects, q, k, &scratch);
    const auto fresh = SnapshotKnn(net, objects, q, k);
    EXPECT_TRUE(reused == fresh) << "round " << round;
  }
}

/// Property: the Fig. 2 expansion equals the brute-force oracle on random
/// generated networks and object sets, across k values.
class KnnSearchPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KnnSearchPropertyTest, MatchesBruteForce) {
  const auto [seed, k] = GetParam();
  RoadNetwork net = GenerateRoadNetwork(NetworkGenConfig{
      .target_edges = 250, .seed = static_cast<std::uint64_t>(seed)});
  Rng rng(seed * 101);
  ObjectTable objects(net.NumEdges());
  for (ObjectId i = 0; i < 60; ++i) {
    ASSERT_TRUE(objects
                    .Insert(i, NetworkPoint{static_cast<EdgeId>(rng.NextIndex(
                                                net.NumEdges())),
                                            rng.NextDouble()})
                    .ok());
  }
  // Perturb some weights so weight != length.
  for (int i = 0; i < 40; ++i) {
    const EdgeId e = static_cast<EdgeId>(rng.NextIndex(net.NumEdges()));
    ASSERT_TRUE(
        net.SetWeight(e, net.edge(e).weight * rng.Uniform(0.7, 1.3)).ok());
  }
  for (int trial = 0; trial < 10; ++trial) {
    const NetworkPoint q{static_cast<EdgeId>(rng.NextIndex(net.NumEdges())),
                         rng.NextDouble()};
    const auto got = SnapshotKnn(net, objects, q, k);
    const auto want = testing::BruteForceKnn(net, objects, q, k);
    testing::ExpectSameDistances(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, KnnSearchPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1, 4, 10, 25)));

}  // namespace
}  // namespace cknn

#include "src/core/object_table.h"

#include <algorithm>

#include "gtest/gtest.h"

namespace cknn {
namespace {

TEST(ObjectTableTest, InsertAndLookup) {
  ObjectTable table(4);
  ASSERT_TRUE(table.Insert(7, NetworkPoint{2, 0.5}).ok());
  EXPECT_TRUE(table.Contains(7));
  EXPECT_EQ(table.size(), 1u);
  auto pos = table.Position(7);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(pos->edge, 2u);
  EXPECT_DOUBLE_EQ(pos->t, 0.5);
  EXPECT_EQ(table.ObjectsOn(2).size(), 1u);
  EXPECT_TRUE(table.ObjectsOn(0).empty());
}

TEST(ObjectTableTest, DuplicateInsertRejected) {
  ObjectTable table(2);
  ASSERT_TRUE(table.Insert(1, NetworkPoint{0, 0.1}).ok());
  EXPECT_TRUE(table.Insert(1, NetworkPoint{1, 0.2}).IsAlreadyExists());
  EXPECT_EQ(table.ObjectsOn(1).size(), 0u);  // Failed insert left no trace.
}

TEST(ObjectTableTest, InsertOnUnknownEdgeRejected) {
  ObjectTable table(2);
  EXPECT_TRUE(table.Insert(1, NetworkPoint{5, 0.1}).IsInvalidArgument());
}

TEST(ObjectTableTest, RemoveDetachesFromEdge) {
  ObjectTable table(2);
  ASSERT_TRUE(table.Insert(1, NetworkPoint{0, 0.1}).ok());
  ASSERT_TRUE(table.Insert(2, NetworkPoint{0, 0.9}).ok());
  ASSERT_TRUE(table.Remove(1).ok());
  EXPECT_FALSE(table.Contains(1));
  EXPECT_EQ(table.ObjectsOn(0).size(), 1u);
  EXPECT_EQ(table.ObjectsOn(0)[0], 2u);
  EXPECT_TRUE(table.Remove(1).IsNotFound());
}

TEST(ObjectTableTest, MoveAcrossEdges) {
  ObjectTable table(3);
  ASSERT_TRUE(table.Insert(5, NetworkPoint{0, 0.5}).ok());
  ASSERT_TRUE(table.Move(5, NetworkPoint{2, 0.25}).ok());
  EXPECT_TRUE(table.ObjectsOn(0).empty());
  EXPECT_EQ(table.ObjectsOn(2).size(), 1u);
  EXPECT_DOUBLE_EQ(table.Position(5)->t, 0.25);
}

TEST(ObjectTableTest, MoveWithinEdgeKeepsSingleEntry) {
  ObjectTable table(1);
  ASSERT_TRUE(table.Insert(5, NetworkPoint{0, 0.5}).ok());
  ASSERT_TRUE(table.Move(5, NetworkPoint{0, 0.6}).ok());
  EXPECT_EQ(table.ObjectsOn(0).size(), 1u);
  EXPECT_DOUBLE_EQ(table.Position(5)->t, 0.6);
}

TEST(ObjectTableTest, MoveUnknownRejected) {
  ObjectTable table(1);
  EXPECT_TRUE(table.Move(9, NetworkPoint{0, 0.1}).IsNotFound());
}

TEST(ObjectTableTest, ManyObjectsPerEdge) {
  ObjectTable table(1);
  for (ObjectId i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.Insert(i, NetworkPoint{0, i / 100.0}).ok());
  }
  EXPECT_EQ(table.ObjectsOn(0).size(), 100u);
  for (ObjectId i = 0; i < 100; i += 2) {
    ASSERT_TRUE(table.Remove(i).ok());
  }
  auto on_edge = table.ObjectsOn(0);
  EXPECT_EQ(on_edge.size(), 50u);
  EXPECT_TRUE(std::all_of(on_edge.begin(), on_edge.end(),
                          [](ObjectId id) { return id % 2 == 1; }));
}

TEST(ObjectTableTest, MemoryBytesGrows) {
  ObjectTable table(10);
  const std::size_t before = table.MemoryBytes();
  for (ObjectId i = 0; i < 64; ++i) {
    ASSERT_TRUE(table.Insert(i, NetworkPoint{i % 10, 0.5}).ok());
  }
  EXPECT_GT(table.MemoryBytes(), before);
}

}  // namespace
}  // namespace cknn

// Pipelined-ingest semantics of the monitoring server (docs/pipeline.md):
// SubmitBatch/Drain at pipeline depth 2 must produce byte-identical state
// to serial Tick at depth 1 — across algorithms and shard counts, with
// and without intermediate drains — and a rejected submit must leave the
// server exactly as if the call had not been made, including while a
// previous tick is still in flight. Runs under the `threads` label so the
// CI sanitize lane chews on the overlap with ThreadSanitizer.

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/server.h"
#include "src/gen/network_gen.h"
#include "src/gen/workload.h"
#include "tests/fuzz_util.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

/// Streams `batches` through a serial reference server (Tick) and a
/// pipelined server (SubmitBatch only, one Drain at the end), then
/// byte-compares every registered query's result.
void ExpectPipelineEqualsSerial(const RoadNetwork& network,
                                Algorithm algorithm, int shards,
                                const std::vector<UpdateBatch>& batches,
                                const std::vector<QueryId>& live) {
  MonitoringServer serial(CloneNetwork(network), algorithm, shards,
                          /*pipeline_depth=*/1);
  MonitoringServer pipelined(CloneNetwork(network), algorithm, shards,
                             /*pipeline_depth=*/2);
  EXPECT_EQ(pipelined.pipeline_depth(), 2);
  for (const UpdateBatch& batch : batches) {
    ASSERT_TRUE(serial.Tick(batch).ok());
    ASSERT_TRUE(pipelined.SubmitBatch(batch).ok());
  }
  ASSERT_TRUE(pipelined.Drain().ok());
  EXPECT_FALSE(pipelined.InFlight());
  EXPECT_EQ(pipelined.timestamp(), serial.timestamp());
  EXPECT_EQ(pipelined.NumQueries(), serial.NumQueries());
  // GMA at shards > 1 carries the conformance tolerance
  // (docs/sharding.md); the pipeline itself adds no divergence.
  const bool exact = algorithm != Algorithm::kGma;
  for (const QueryId q : live) {
    SCOPED_TRACE("query " + std::to_string(q));
    const std::vector<Neighbor>* base = serial.ResultOf(q);
    const std::vector<Neighbor>* other = pipelined.ResultOf(q);
    ASSERT_NE(base, nullptr);
    ASSERT_NE(other, nullptr);
    testing::ExpectSameNeighbors(exact, *base, *other, "pipelined");
  }
}

class ServerPipelineTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(ServerPipelineTest, StreamedSubmitMatchesSerialTicks) {
  const std::uint64_t seed = testing::FuzzSeed(9100);
  SCOPED_TRACE("seed " + std::to_string(seed));
  const NetworkGenConfig net_config{.target_edges = 200,
                                    .seed = seed ^ 0xA71};
  WorkloadConfig wl;
  wl.num_objects = 80;
  wl.num_queries = 12;
  wl.k = 3;
  wl.edge_agility = 0.1;
  wl.object_agility = 0.25;
  wl.query_agility = 0.2;
  wl.seed = seed;
  MonitoringServer scaffold(GenerateRoadNetwork(net_config), Algorithm::kOvh);
  Workload workload(&scaffold.network(), &scaffold.spatial_index(), wl);
  std::vector<UpdateBatch> batches;
  batches.push_back(workload.Initial());
  for (int ts = 0; ts < 12; ++ts) batches.push_back(workload.Step());
  std::vector<QueryId> live;
  for (QueryId q = 0; q < static_cast<QueryId>(wl.num_queries); ++q) {
    live.push_back(q);  // The Table-2 generator never terminates queries.
  }
  for (const int shards : {1, 2}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    ExpectPipelineEqualsSerial(scaffold.network(), GetParam(), shards,
                               batches, live);
  }
}

TEST_P(ServerPipelineTest, TickOnAPipelinedServerDrainsEveryStep) {
  // Tick == SubmitBatch + Drain at every depth; mixing the two styles on
  // one server must be safe.
  MonitoringServer server(testing::MakeGrid(4), GetParam(), /*num_shards=*/2,
                          /*pipeline_depth=*/2);
  ASSERT_TRUE(server.AddObject(1, NetworkPoint{0, 0.5}).ok());
  EXPECT_FALSE(server.InFlight());
  ASSERT_TRUE(server.InstallQuery(0, NetworkPoint{0, 0.1}, 1).ok());
  UpdateBatch move;
  move.objects.push_back(
      ObjectUpdate{1, NetworkPoint{0, 0.5}, NetworkPoint{5, 0.25}});
  ASSERT_TRUE(server.SubmitBatch(move).ok());
  // A second submit barriers on the first; results only need a drain.
  UpdateBatch weight;
  weight.edges.push_back(EdgeUpdate{0, 2.0});
  ASSERT_TRUE(server.SubmitBatch(weight).ok());
  ASSERT_TRUE(server.Drain().ok());
  const auto* result = server.ResultOf(0);
  ASSERT_NE(result, nullptr);
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 1u);
  EXPECT_EQ(server.timestamp(), 4u);
}

TEST_P(ServerPipelineTest, RejectedSubmitLeavesThePipelineIntact) {
  // An invalid batch must be reported synchronously and change nothing —
  // even when a previous (valid) tick is still in flight — and the
  // pipeline must keep accepting work afterwards.
  MonitoringServer server(testing::MakeGrid(4), GetParam(), /*num_shards=*/2,
                          /*pipeline_depth=*/2);
  ASSERT_TRUE(server.AddObject(1, NetworkPoint{0, 0.5}).ok());
  ASSERT_TRUE(server.InstallQuery(0, NetworkPoint{0, 0.1}, 2).ok());
  UpdateBatch valid;
  valid.objects.push_back(
      ObjectUpdate{2, std::nullopt, NetworkPoint{3, 0.75}});
  ASSERT_TRUE(server.SubmitBatch(valid).ok());
  const std::uint64_t at_submit = server.timestamp();
  UpdateBatch invalid;
  invalid.queries.push_back(  // Query 9 was never installed.
      QueryUpdate{9, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  EXPECT_TRUE(server.SubmitBatch(invalid).IsNotFound());
  EXPECT_EQ(server.timestamp(), at_submit);
  // NaN offsets and weights are rejected in-pipeline too (stage 2 runs on
  // the submitting thread).
  UpdateBatch nan_weight;
  nan_weight.edges.push_back(
      EdgeUpdate{0, std::numeric_limits<double>::quiet_NaN()});
  EXPECT_TRUE(server.SubmitBatch(nan_weight).IsInvalidArgument());
  UpdateBatch follow_up;
  follow_up.objects.push_back(
      ObjectUpdate{2, NetworkPoint{3, 0.75}, NetworkPoint{8, 0.5}});
  ASSERT_TRUE(server.SubmitBatch(follow_up).ok());
  ASSERT_TRUE(server.Drain().ok());
  EXPECT_TRUE(server.objects().Contains(1));
  EXPECT_TRUE(server.objects().Contains(2));
  EXPECT_EQ(server.objects().Position(2).value(), (NetworkPoint{8, 0.5}));
  ASSERT_NE(server.ResultOf(0), nullptr);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ServerPipelineTest,
                         ::testing::Values(Algorithm::kIma, Algorithm::kGma,
                                           Algorithm::kOvh),
                         [](const ::testing::TestParamInfo<Algorithm>& info) {
                           return std::string(AlgorithmName(info.param));
                         });

}  // namespace
}  // namespace cknn

// White-box scenario tests of the ImaEngine maintenance paths: each test
// drives one specific Section 4.2-4.4 mechanism on a hand-built network
// and inspects the expansion tree afterwards (distances, coverage,
// result), with the brute-force oracle as referee.

#include <algorithm>

#include "gtest/gtest.h"
#include "src/core/ima.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

// Path 0-1-2-3-4 with a parallel branch 1-5-3 (so there are real
// alternative routes), unit-ish lengths.
//
//        5
//       / \   (edges 1-5 and 5-2)
//  0 - 1 - 2 - 3 - 4
//       \_______/
//        (via 5)
class EngineScenarioTest : public ::testing::Test {
 protected:
  EngineScenarioTest() {
    net_.AddNode(Point{0, 0});   // 0
    net_.AddNode(Point{1, 0});   // 1
    net_.AddNode(Point{2, 0});   // 2
    net_.AddNode(Point{3, 0});   // 3
    net_.AddNode(Point{4, 0});   // 4
    net_.AddNode(Point{2, 1});   // 5
    e01_ = *net_.AddEdge(0, 1);
    e12_ = *net_.AddEdge(1, 2);
    e23_ = *net_.AddEdge(2, 3);
    e34_ = *net_.AddEdge(3, 4);
    e15_ = *net_.AddEdge(1, 5);
    e53_ = *net_.AddEdge(5, 3);
    objects_ = std::make_unique<ObjectTable>(net_.NumEdges());
    engine_ = std::make_unique<ImaEngine>(&net_, objects_.get());
  }

  void ProcessEdge(EdgeId e, double new_weight) {
    std::vector<EdgeUpdate> edges{EdgeUpdate{e, new_weight}};
    engine_->ProcessUpdates({}, edges, {});
  }

  void ExpectResultMatchesOracle(QueryId q, const NetworkPoint& pos,
                                 int k) {
    const auto want = testing::BruteForceKnn(net_, *objects_, pos, k);
    const auto* got = engine_->ResultOf(q);
    ASSERT_NE(got, nullptr);
    testing::ExpectSameDistances(*got, want);
    ASSERT_TRUE(engine_->CheckInvariants().ok());
  }

  RoadNetwork net_;
  EdgeId e01_, e12_, e23_, e34_, e15_, e53_;
  std::unique_ptr<ObjectTable> objects_;
  std::unique_ptr<ImaEngine> engine_;
};

TEST_F(EngineScenarioTest, TreeEdgeDecreaseAdjustsSubtreeDistances) {
  ASSERT_TRUE(objects_->Insert(0, NetworkPoint{e34_, 0.5}).ok());
  ASSERT_TRUE(
      engine_->AddQuery(1, ExpansionSource::AtPoint({e01_, 0.0}), 1).ok());
  const ExpansionState* state = engine_->StateOf(1);
  const double d3_before = *state->NodeDistance(3);
  // Decrease the first tree edge by 0.5: everything downstream shifts.
  ProcessEdge(e01_, net_.edge(e01_).weight - 0.5);
  EXPECT_NEAR(*state->NodeDistance(3), d3_before - 0.5, 1e-9);
  ExpectResultMatchesOracle(1, NetworkPoint{e01_, 0.0}, 1);
}

TEST_F(EngineScenarioTest, TreeEdgeIncreaseReroutesThroughBranch) {
  ASSERT_TRUE(objects_->Insert(0, NetworkPoint{e34_, 0.9}).ok());
  ASSERT_TRUE(
      engine_->AddQuery(1, ExpansionSource::AtPoint({e01_, 0.0}), 1).ok());
  // Make the straight middle edge terrible: path must go 1-5-3.
  ProcessEdge(e12_, 50.0);
  ExpectResultMatchesOracle(1, NetworkPoint{e01_, 0.0}, 1);
  const ExpansionState* state = engine_->StateOf(1);
  const auto* info3 = state->Info(3);
  ASSERT_NE(info3, nullptr);
  EXPECT_EQ(info3->via_edge, e53_);  // Re-routed through the branch.
}

TEST_F(EngineScenarioTest, NonTreeEdgeDecreaseCreatesShortcut) {
  ASSERT_TRUE(objects_->Insert(0, NetworkPoint{e34_, 0.9}).ok());
  // Make the branch initially unattractive so 1-5-3 is non-tree.
  ASSERT_TRUE(net_.SetWeight(e15_, 5.0).ok());
  ASSERT_TRUE(net_.SetWeight(e53_, 5.0).ok());
  ASSERT_TRUE(
      engine_->AddQuery(1, ExpansionSource::AtPoint({e01_, 0.0}), 1).ok());
  // Now make the branch a super-shortcut; also degrade the straight path.
  ProcessEdge(e15_, 0.1);
  ProcessEdge(e53_, 0.1);
  ProcessEdge(e12_, 30.0);
  ExpectResultMatchesOracle(1, NetworkPoint{e01_, 0.0}, 1);
}

TEST_F(EngineScenarioTest, SourceEdgeWeightChangeRecomputes) {
  ASSERT_TRUE(objects_->Insert(0, NetworkPoint{e23_, 0.5}).ok());
  ASSERT_TRUE(
      engine_->AddQuery(1, ExpansionSource::AtPoint({e12_, 0.5}), 1).ok());
  const auto recomputes_before = engine_->stats().full_recomputes;
  ProcessEdge(e12_, net_.edge(e12_).weight * 2.0);
  EXPECT_EQ(engine_->stats().full_recomputes, recomputes_before + 1);
  ExpectResultMatchesOracle(1, NetworkPoint{e12_, 0.5}, 1);
}

TEST_F(EngineScenarioTest, MoveAlongOwnEdgeReRoots) {
  ASSERT_TRUE(objects_->Insert(0, NetworkPoint{e34_, 0.5}).ok());
  ASSERT_TRUE(objects_->Insert(1, NetworkPoint{e01_, 0.1}).ok());
  ASSERT_TRUE(
      engine_->AddQuery(1, ExpansionSource::AtPoint({e12_, 0.2}), 2).ok());
  const auto reroots_before = engine_->stats().reroots;
  std::vector<ImaEngine::MoveRequest> moves{
      ImaEngine::MoveRequest{1, NetworkPoint{e12_, 0.8}}};
  engine_->ProcessUpdates({}, {}, moves);
  EXPECT_EQ(engine_->stats().reroots, reroots_before + 1);
  ExpectResultMatchesOracle(1, NetworkPoint{e12_, 0.8}, 2);
}

TEST_F(EngineScenarioTest, MoveOntoTreeEdgeReRoots) {
  ASSERT_TRUE(objects_->Insert(0, NetworkPoint{e34_, 0.5}).ok());
  ASSERT_TRUE(objects_->Insert(1, NetworkPoint{e01_, 0.5}).ok());
  ASSERT_TRUE(
      engine_->AddQuery(1, ExpansionSource::AtPoint({e01_, 0.9}), 2).ok());
  const auto reroots_before = engine_->stats().reroots;
  std::vector<ImaEngine::MoveRequest> moves{
      ImaEngine::MoveRequest{1, NetworkPoint{e23_, 0.5}}};
  engine_->ProcessUpdates({}, {}, moves);
  EXPECT_EQ(engine_->stats().reroots, reroots_before + 1);
  ExpectResultMatchesOracle(1, NetworkPoint{e23_, 0.5}, 2);
}

TEST_F(EngineScenarioTest, MoveOutsideTreeRecomputes) {
  ASSERT_TRUE(objects_->Insert(0, NetworkPoint{e01_, 0.2}).ok());
  ASSERT_TRUE(
      engine_->AddQuery(1, ExpansionSource::AtPoint({e01_, 0.1}), 1).ok());
  // The 1-NN is adjacent: the tree is tiny, edge e34 is far outside it.
  const auto recomputes_before = engine_->stats().full_recomputes;
  std::vector<ImaEngine::MoveRequest> moves{
      ImaEngine::MoveRequest{1, NetworkPoint{e34_, 0.9}}};
  engine_->ProcessUpdates({}, {}, moves);
  EXPECT_EQ(engine_->stats().full_recomputes, recomputes_before + 1);
  ExpectResultMatchesOracle(1, NetworkPoint{e34_, 0.9}, 1);
}

TEST_F(EngineScenarioTest, OutgoingNeighborTriggersFrontierGrowth) {
  ASSERT_TRUE(objects_->Insert(0, NetworkPoint{e01_, 0.5}).ok());
  ASSERT_TRUE(objects_->Insert(1, NetworkPoint{e34_, 0.5}).ok());
  ASSERT_TRUE(
      engine_->AddQuery(1, ExpansionSource::AtPoint({e01_, 0.4}), 1).ok());
  EXPECT_EQ((*engine_->ResultOf(1))[0].id, 0u);
  // The nearest neighbor departs: the expansion must grow to find obj 1.
  std::vector<ObjectUpdate> updates{
      ObjectUpdate{0, NetworkPoint{e01_, 0.5}, std::nullopt}};
  const auto changed = engine_->ProcessUpdates(updates, {}, {});
  EXPECT_EQ(changed.size(), 1u);
  EXPECT_EQ((*engine_->ResultOf(1))[0].id, 1u);
  ExpectResultMatchesOracle(1, NetworkPoint{e01_, 0.4}, 1);
}

TEST_F(EngineScenarioTest, IncomingNeighborShrinksBound) {
  ASSERT_TRUE(objects_->Insert(0, NetworkPoint{e34_, 0.5}).ok());
  ASSERT_TRUE(
      engine_->AddQuery(1, ExpansionSource::AtPoint({e01_, 0.5}), 1).ok());
  const double bound_before = engine_->BoundOf(1);
  std::vector<ObjectUpdate> updates{
      ObjectUpdate{1, std::nullopt, NetworkPoint{e01_, 0.6}}};
  engine_->ProcessUpdates(updates, {}, {});
  EXPECT_LT(engine_->BoundOf(1), bound_before);
  EXPECT_EQ((*engine_->ResultOf(1))[0].id, 1u);
  ExpectResultMatchesOracle(1, NetworkPoint{e01_, 0.5}, 1);
}

TEST_F(EngineScenarioTest, LazyShrinkReleasesCoverageEventually) {
  // k=1 with a far object: big tree. Then a near object appears: the bound
  // collapses and the lazy shrink must eventually drop far influence.
  ASSERT_TRUE(objects_->Insert(0, NetworkPoint{e34_, 0.9}).ok());
  ASSERT_TRUE(
      engine_->AddQuery(1, ExpansionSource::AtPoint({e01_, 0.1}), 1).ok());
  ASSERT_TRUE(engine_->InfluenceOf(e34_).count(1) == 1);
  std::vector<ObjectUpdate> updates{
      ObjectUpdate{1, std::nullopt, NetworkPoint{e01_, 0.2}}};
  engine_->ProcessUpdates(updates, {}, {});
  // The far edge must no longer influence the query after the shrink.
  EXPECT_EQ(engine_->InfluenceOf(e34_).count(1), 0u);
  ASSERT_TRUE(engine_->CheckInvariants().ok());
}

TEST_F(EngineScenarioTest, IgnoredUpdateDoesNotChangeResult) {
  ASSERT_TRUE(objects_->Insert(0, NetworkPoint{e01_, 0.5}).ok());
  ASSERT_TRUE(objects_->Insert(1, NetworkPoint{e34_, 0.5}).ok());
  ASSERT_TRUE(
      engine_->AddQuery(1, ExpansionSource::AtPoint({e01_, 0.4}), 1).ok());
  // Far object wiggles within its own edge, far outside the bound.
  std::vector<ObjectUpdate> updates{ObjectUpdate{
      1, NetworkPoint{e34_, 0.5}, NetworkPoint{e34_, 0.6}}};
  const auto changed = engine_->ProcessUpdates(updates, {}, {});
  EXPECT_TRUE(changed.empty());
}

TEST_F(EngineScenarioTest, ChangedQueriesReturnedSortedById) {
  // Regression: the maintenance loop iterates the hash-ordered entry
  // table, so the changed-query list used to come back in hash order.
  // The API now canonicalizes it (ascending ids) so callers cannot pick
  // up a dependence on hash-iteration order.
  ASSERT_TRUE(objects_->Insert(0, NetworkPoint{e12_, 0.5}).ok());
  for (QueryId q = 1; q <= 8; ++q) {
    ASSERT_TRUE(
        engine_->AddQuery(q, ExpansionSource::AtPoint({e12_, 0.1 * q}), 1)
            .ok());
  }
  // Moving the only object changes every query's result.
  std::vector<ObjectUpdate> updates{
      ObjectUpdate{0, NetworkPoint{e12_, 0.5}, NetworkPoint{e12_, 0.05}}};
  const auto changed = engine_->ProcessUpdates(updates, {}, {});
  ASSERT_GE(changed.size(), 2u);
  EXPECT_TRUE(std::is_sorted(changed.begin(), changed.end()));
  EXPECT_TRUE(std::adjacent_find(changed.begin(), changed.end()) ==
              changed.end());
}

TEST_F(EngineScenarioTest, MultipleQueriesIndependentResults) {
  ASSERT_TRUE(objects_->Insert(0, NetworkPoint{e01_, 0.5}).ok());
  ASSERT_TRUE(objects_->Insert(1, NetworkPoint{e34_, 0.5}).ok());
  ASSERT_TRUE(
      engine_->AddQuery(1, ExpansionSource::AtPoint({e01_, 0.2}), 1).ok());
  ASSERT_TRUE(
      engine_->AddQuery(2, ExpansionSource::AtPoint({e34_, 0.8}), 1).ok());
  EXPECT_EQ((*engine_->ResultOf(1))[0].id, 0u);
  EXPECT_EQ((*engine_->ResultOf(2))[0].id, 1u);
  // A weight change on the middle only affects whoever covers it.
  ProcessEdge(e23_, net_.edge(e23_).weight * 1.1);
  ExpectResultMatchesOracle(1, NetworkPoint{e01_, 0.2}, 1);
  ExpectResultMatchesOracle(2, NetworkPoint{e34_, 0.8}, 1);
}

}  // namespace
}  // namespace cknn

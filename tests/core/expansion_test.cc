#include "src/core/expansion.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

// A path network 0 - 1 - 2 - 3 with unit weights, plus a branch 1 - 4.
RoadNetwork MakePathWithBranch() {
  RoadNetwork net;
  net.AddNode(Point{0, 0});
  net.AddNode(Point{1, 0});
  net.AddNode(Point{2, 0});
  net.AddNode(Point{3, 0});
  net.AddNode(Point{1, 1});
  EXPECT_TRUE(net.AddEdge(0, 1).ok());  // e0
  EXPECT_TRUE(net.AddEdge(1, 2).ok());  // e1
  EXPECT_TRUE(net.AddEdge(2, 3).ok());  // e2
  EXPECT_TRUE(net.AddEdge(1, 4).ok());  // e3
  return net;
}

class ExpansionStateTest : public ::testing::Test {
 protected:
  ExpansionStateTest() : net_(MakePathWithBranch()) {
    // Expansion rooted at t=0.5 of edge 0 (midpoint between nodes 0 and 1).
    state_.ResetToPoint(NetworkPoint{0, 0.5});
    state_.Settle(0, 0.5, kInvalidNode, 0);
    state_.Settle(1, 0.5, kInvalidNode, 0);
    state_.Settle(2, 1.5, 1, 1);
    state_.Settle(3, 2.5, 2, 2);
    state_.Settle(4, 1.5, 1, 3);
    state_.set_bound(3.0);
  }
  RoadNetwork net_;
  ExpansionState state_;
};

TEST_F(ExpansionStateTest, BasicAccessors) {
  EXPECT_EQ(state_.NumSettled(), 5u);
  EXPECT_TRUE(state_.IsSettled(2));
  EXPECT_DOUBLE_EQ(*state_.NodeDistance(3), 2.5);
  EXPECT_FALSE(state_.NodeDistance(99).has_value());
  EXPECT_EQ(state_.Info(2)->parent, 1u);
}

TEST_F(ExpansionStateTest, TreeChildVia) {
  EXPECT_EQ(*state_.TreeChildVia(net_, 1), 2u);
  EXPECT_EQ(*state_.TreeChildVia(net_, 2), 3u);
  EXPECT_EQ(*state_.TreeChildVia(net_, 3), 4u);
}

TEST_F(ExpansionStateTest, SubtreeOf) {
  auto sub = state_.SubtreeOf(1);
  std::sort(sub.begin(), sub.end());
  EXPECT_EQ(sub, (std::vector<NodeId>{1, 2, 3, 4}));
  EXPECT_EQ(state_.SubtreeOf(3), (std::vector<NodeId>{3}));
}

TEST_F(ExpansionStateTest, PruneSubtree) {
  state_.PruneSubtree(2);
  EXPECT_FALSE(state_.IsSettled(2));
  EXPECT_FALSE(state_.IsSettled(3));
  EXPECT_TRUE(state_.IsSettled(4));
  EXPECT_EQ(state_.NumSettled(), 3u);
}

TEST_F(ExpansionStateTest, AdjustSubtree) {
  const auto adjusted = state_.AdjustSubtree(2, -0.5);
  EXPECT_EQ(adjusted.size(), 2u);
  EXPECT_DOUBLE_EQ(*state_.NodeDistance(2), 1.0);
  EXPECT_DOUBLE_EQ(*state_.NodeDistance(3), 2.0);
  EXPECT_DOUBLE_EQ(*state_.NodeDistance(4), 1.5);  // Untouched.
}

TEST_F(ExpansionStateTest, PruneBeyondIsAncestorClosed) {
  state_.PruneBeyond(1.5);
  EXPECT_TRUE(state_.IsSettled(0));
  EXPECT_TRUE(state_.IsSettled(1));
  EXPECT_TRUE(state_.IsSettled(2));  // dist == threshold kept
  EXPECT_TRUE(state_.IsSettled(4));
  EXPECT_FALSE(state_.IsSettled(3));
  // Every remaining node's parent chain must be intact.
  for (const auto& [n, info] : testing::SettledEntries(state_)) {
    (void)n;
    if (info.parent != kInvalidNode) {
      EXPECT_TRUE(state_.IsSettled(info.parent));
    }
  }
}

TEST_F(ExpansionStateTest, PruneOthersBeyondKeepsSubtree) {
  // Keep subtree of 2 (nodes 2, 3) regardless of distance; others only if
  // dist <= 0.6.
  state_.PruneOthersBeyond(2, 0.6);
  EXPECT_TRUE(state_.IsSettled(2));
  EXPECT_TRUE(state_.IsSettled(3));
  EXPECT_TRUE(state_.IsSettled(0));
  EXPECT_TRUE(state_.IsSettled(1));
  EXPECT_FALSE(state_.IsSettled(4));  // 1.5 > 0.6, not in subtree.
}

TEST_F(ExpansionStateTest, PointDistanceWithinCoverage) {
  // Point at t=0.25 of edge 1 (between nodes 1 and 2).
  auto d = state_.PointDistance(net_, NetworkPoint{1, 0.25});
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(*d, 0.75);  // Via node 1: 0.5 + 0.25.
  // Same-edge direct path beats endpoint routes.
  auto dq = state_.PointDistance(net_, NetworkPoint{0, 0.75});
  ASSERT_TRUE(dq.has_value());
  EXPECT_DOUBLE_EQ(*dq, 0.25);
}

TEST_F(ExpansionStateTest, PointDistanceOutsideCoverage) {
  state_.PruneSubtree(2);  // Removes 2 and its descendant 3.
  state_.PruneSubtree(4);
  // Edge 2 now has no settled endpoint.
  EXPECT_FALSE(state_.PointDistance(net_, NetworkPoint{2, 0.5}).has_value());
}

TEST_F(ExpansionStateTest, EdgeTouchedAndInfluencingInterval) {
  EXPECT_TRUE(state_.EdgeTouched(net_, 0));  // Source edge.
  EXPECT_TRUE(state_.EdgeTouched(net_, 2));
  state_.PruneSubtree(3);
  // Edge 2 still touched through node 2.
  EXPECT_TRUE(state_.EdgeTouched(net_, 2));
  // Bound is 3.0: all of edge 2 lies within distance (node 2 at 1.5).
  EXPECT_TRUE(state_.InInfluencingInterval(net_, 2, 0.5));
  state_.set_bound(1.6);
  EXPECT_TRUE(state_.InInfluencingInterval(net_, 2, 0.05));
  EXPECT_FALSE(state_.InInfluencingInterval(net_, 2, 0.5));
}

TEST_F(ExpansionStateTest, ReRootToSubtree) {
  // Query moves to t=0.5 of edge 1; subtree of node 2 stays valid.
  // Old distance of the new location: d(1) + 0.5 = 1.0.
  state_.ReRootToSubtree(2, NetworkPoint{1, 0.5}, -1.0);
  EXPECT_EQ(state_.NumSettled(), 2u);
  EXPECT_DOUBLE_EQ(*state_.NodeDistance(2), 0.5);
  EXPECT_DOUBLE_EQ(*state_.NodeDistance(3), 1.5);
  EXPECT_EQ(state_.Info(2)->parent, kInvalidNode);
  EXPECT_EQ(state_.Info(2)->via_edge, 1u);
  EXPECT_EQ(state_.source().point, (NetworkPoint{1, 0.5}));
}

TEST(ExpansionStateNodeSourceTest, NodeRootBasics) {
  RoadNetwork net = MakePathWithBranch();
  ExpansionState state;
  state.ResetToNode(1);
  state.Settle(1, 0.0, kInvalidNode, kInvalidEdge);
  EXPECT_TRUE(state.source().at_node);
  auto d = state.PointDistance(net, NetworkPoint{1, 0.5});
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(*d, 0.5);
  EXPECT_TRUE(state.EdgeTouched(net, 0));
  EXPECT_FALSE(state.EdgeTouched(net, 2));
}

TEST_F(ExpansionStateTest, AdjustSubtreeRaisesMaxSettledDist) {
  // Regression: a positive delta used to leave max_settled_dist_ at its old
  // value, understating the tree radius and breaking the lazy-shrink
  // trigger (it compares the radius against the bound).
  EXPECT_DOUBLE_EQ(state_.max_settled_dist(), 2.5);  // Node 3.
  state_.AdjustSubtree(2, 2.0);                      // Nodes 2, 3 move out.
  EXPECT_DOUBLE_EQ(*state_.NodeDistance(3), 4.5);
  EXPECT_DOUBLE_EQ(state_.max_settled_dist(), 4.5);
  // Negative delta keeps the old maximum (monotone upper bound).
  state_.AdjustSubtree(2, -3.0);
  EXPECT_DOUBLE_EQ(*state_.NodeDistance(3), 1.5);
  EXPECT_DOUBLE_EQ(state_.max_settled_dist(), 4.5);
}

TEST_F(ExpansionStateTest, PruneKeepsMaxSettledDistAsUpperBound) {
  // Erasing nodes deliberately does not recompute the maximum over the
  // survivors: max_settled_dist() stays a monotone upper bound on the tree
  // radius until the caller re-anchors it (set_max_settled_dist after a
  // lazy shrink). It must never drop below the true settled maximum.
  state_.PruneSubtree(3);  // Removes the farthest node (dist 2.5).
  EXPECT_DOUBLE_EQ(state_.max_settled_dist(), 2.5);
  double true_max = 0.0;
  for (const auto& [n, info] : testing::SettledEntries(state_)) {
    (void)n;
    true_max = std::max(true_max, info.dist);
  }
  EXPECT_GE(state_.max_settled_dist(), true_max);
  state_.set_max_settled_dist(true_max);
  EXPECT_DOUBLE_EQ(state_.max_settled_dist(), 1.5);
}

TEST(ExpansionStateClearTest, ClearResetsBoundAndNodes) {
  ExpansionState state;
  state.ResetToNode(0);
  state.Settle(0, 0.0, kInvalidNode, kInvalidEdge);
  state.set_bound(5.0);
  state.Clear();
  EXPECT_EQ(state.NumSettled(), 0u);
  EXPECT_EQ(state.bound(), kInfDist);
}

}  // namespace
}  // namespace cknn

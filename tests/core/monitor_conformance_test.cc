// Conformance suite every Monitor implementation must pass — the contract
// of the server-facing interface, run against IMA, GMA and OVH.

#include <algorithm>
#include <memory>

#include "gtest/gtest.h"
#include "src/core/server.h"
#include "src/gen/network_gen.h"
#include "src/gen/workload.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

class MonitorConformanceTest : public ::testing::TestWithParam<Algorithm> {
 protected:
  MonitorConformanceTest()
      : server_(GenerateRoadNetwork(
                    NetworkGenConfig{.target_edges = 200, .seed = 77}),
                GetParam()) {}

  MonitoringServer server_;
};

TEST_P(MonitorConformanceTest, NameMatchesAlgorithm) {
  EXPECT_EQ(server_.monitor().name(), AlgorithmName(GetParam()));
}

TEST_P(MonitorConformanceTest, InstallTerminateLifecycle) {
  ASSERT_TRUE(server_.AddObject(0, NetworkPoint{3, 0.5}).ok());
  EXPECT_EQ(server_.ResultOf(1), nullptr);
  ASSERT_TRUE(server_.InstallQuery(1, NetworkPoint{0, 0.5}, 2).ok());
  ASSERT_NE(server_.ResultOf(1), nullptr);
  EXPECT_EQ(server_.monitor().NumQueries(), 1u);
  ASSERT_TRUE(server_.TerminateQuery(1).ok());
  EXPECT_EQ(server_.ResultOf(1), nullptr);
  EXPECT_EQ(server_.monitor().NumQueries(), 0u);
}

TEST_P(MonitorConformanceTest, DuplicateInstallRejected) {
  ASSERT_TRUE(server_.InstallQuery(1, NetworkPoint{0, 0.5}, 1).ok());
  EXPECT_TRUE(
      server_.InstallQuery(1, NetworkPoint{1, 0.5}, 1).IsAlreadyExists());
}

TEST_P(MonitorConformanceTest, UnknownQueryOperationsRejected) {
  EXPECT_TRUE(server_.TerminateQuery(42).IsNotFound());
  EXPECT_TRUE(server_.MoveQuery(42, NetworkPoint{0, 0.5}).IsNotFound());
}

TEST_P(MonitorConformanceTest, InvalidKRejected) {
  EXPECT_TRUE(
      server_.InstallQuery(1, NetworkPoint{0, 0.5}, 0).IsInvalidArgument());
  EXPECT_TRUE(
      server_.InstallQuery(1, NetworkPoint{0, 0.5}, -3).IsInvalidArgument());
}

TEST_P(MonitorConformanceTest, ResultSizeAndOrdering) {
  Rng rng(5);
  UpdateBatch setup;
  for (ObjectId i = 0; i < 30; ++i) {
    setup.objects.push_back(ObjectUpdate{
        i, std::nullopt,
        NetworkPoint{static_cast<EdgeId>(
                         rng.NextIndex(server_.network().NumEdges())),
                     rng.NextDouble()}});
  }
  setup.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{0, 0.5}, 7});
  ASSERT_TRUE(server_.Tick(setup).ok());
  const auto& result = *server_.ResultOf(0);
  ASSERT_EQ(result.size(), 7u);
  for (std::size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].distance, result[i].distance);
    if (result[i - 1].distance == result[i].distance) {
      EXPECT_LT(result[i - 1].id, result[i].id);  // Deterministic ties.
    }
  }
  for (const Neighbor& nb : result) {
    EXPECT_GE(nb.distance, 0.0);
    EXPECT_TRUE(server_.objects().Contains(nb.id));
  }
}

TEST_P(MonitorConformanceTest, FewerObjectsThanK) {
  ASSERT_TRUE(server_.AddObject(0, NetworkPoint{1, 0.5}).ok());
  ASSERT_TRUE(server_.AddObject(1, NetworkPoint{7, 0.5}).ok());
  ASSERT_TRUE(server_.InstallQuery(0, NetworkPoint{0, 0.5}, 10).ok());
  EXPECT_EQ(server_.ResultOf(0)->size(), 2u);
  // A third object appears: the result grows.
  ASSERT_TRUE(server_.AddObject(2, NetworkPoint{2, 0.25}).ok());
  EXPECT_EQ(server_.ResultOf(0)->size(), 3u);
}

TEST_P(MonitorConformanceTest, ZeroObjectsEmptyResult) {
  ASSERT_TRUE(server_.InstallQuery(0, NetworkPoint{0, 0.5}, 3).ok());
  EXPECT_TRUE(server_.ResultOf(0)->empty());
}

TEST_P(MonitorConformanceTest, EmptyTickIsFine) {
  ASSERT_TRUE(server_.Tick(UpdateBatch{}).ok());
  EXPECT_EQ(server_.timestamp(), 1u);
}

TEST_P(MonitorConformanceTest, QueryOnSameEdgeAsObject) {
  ASSERT_TRUE(server_.AddObject(0, NetworkPoint{4, 0.75}).ok());
  ASSERT_TRUE(server_.InstallQuery(0, NetworkPoint{4, 0.25}, 1).ok());
  const auto& result = *server_.ResultOf(0);
  ASSERT_EQ(result.size(), 1u);
  const double w = server_.network().edge(4).weight;
  EXPECT_LE(result[0].distance, 0.5 * w + 1e-9);
}

TEST_P(MonitorConformanceTest, DeterministicAcrossReplays) {
  WorkloadConfig cfg;
  cfg.num_objects = 40;
  cfg.num_queries = 6;
  cfg.k = 3;
  cfg.seed = 31;
  auto run = [&] {
    MonitoringServer server(
        GenerateRoadNetwork(NetworkGenConfig{.target_edges = 200, .seed = 77}),
        GetParam());
    Workload wl(&server.network(), &server.spatial_index(), cfg);
    EXPECT_TRUE(server.Tick(wl.Initial()).ok());
    for (int ts = 0; ts < 4; ++ts) EXPECT_TRUE(server.Tick(wl.Step()).ok());
    std::vector<std::vector<Neighbor>> results;
    for (QueryId q = 0; q < cfg.num_queries; ++q) {
      results.push_back(*server.ResultOf(q));
    }
    return results;
  };
  EXPECT_EQ(run(), run());
}

TEST_P(MonitorConformanceTest, MemoryBytesSane) {
  ASSERT_TRUE(server_.AddObject(0, NetworkPoint{1, 0.5}).ok());
  ASSERT_TRUE(server_.InstallQuery(0, NetworkPoint{0, 0.5}, 1).ok());
  EXPECT_GT(server_.MonitorMemoryBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, MonitorConformanceTest,
                         ::testing::Values(Algorithm::kIma, Algorithm::kGma,
                                           Algorithm::kOvh),
                         [](const ::testing::TestParamInfo<Algorithm>& info) {
                           return AlgorithmName(info.param);
                         });

}  // namespace
}  // namespace cknn

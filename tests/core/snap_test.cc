// Coordinate snapping through the PMR quadtree (MonitoringServer::Snap):
// how raw coordinate-only location updates are interpreted. Covers
// off-network points (including outside the workspace), exact equidistant
// ties between edges, agreement with a brute-force nearest-edge oracle,
// and geometrically degenerate zero-length edges.

#include <cmath>
#include <limits>

#include "gtest/gtest.h"
#include "src/core/server.h"
#include "src/graph/network_point.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

/// Brute-force nearest-edge distance over every edge segment.
double BruteForceSnapDistance(const RoadNetwork& net, const Point& p) {
  double best = std::numeric_limits<double>::infinity();
  for (EdgeId e = 0; e < net.NumEdges(); ++e) {
    best = std::min(best, PointSegmentDistance(p, net.EdgeSegment(e)));
  }
  return best;
}

TEST(SnapTest, PointOnAnEdgeSnapsExactly) {
  MonitoringServer server(testing::MakeGrid(3), Algorithm::kOvh);
  // Interior of edge 0, from (0,0) to (1,0).
  const auto snapped = server.Snap(Point{0.25, 0.0});
  ASSERT_TRUE(snapped.ok());
  EXPECT_EQ(snapped->edge, 0u);
  EXPECT_NEAR(snapped->t, 0.25, 1e-12);
  EXPECT_NEAR(Distance(ToEuclidean(server.network(), *snapped),
                       Point{0.25, 0.0}),
              0.0, 1e-12);
}

TEST(SnapTest, OffNetworkPointClampsToNearestEdgeEndpoint) {
  MonitoringServer server(testing::MakeGrid(3), Algorithm::kOvh);
  // Left of the grid, level with the first vertical edge (node (0,0) to
  // (0,1), edge id 1): the snap clamps onto that edge at t = 0.3.
  const auto snapped = server.Snap(Point{-0.5, 0.3});
  ASSERT_TRUE(snapped.ok());
  EXPECT_EQ(snapped->edge, 1u);
  EXPECT_NEAR(snapped->t, 0.3, 1e-12);
  // Beyond the corner: every incident edge is equidistant, the chosen
  // point is the corner node itself.
  const auto corner = server.Snap(Point{-0.2, -0.3});
  ASSERT_TRUE(corner.ok());
  EXPECT_NEAR(Distance(ToEuclidean(server.network(), *corner), Point{0, 0}),
              0.0, 1e-12);
}

TEST(SnapTest, EquidistantEdgeTieIsDeterministicAndCorrect) {
  MonitoringServer server(testing::MakeGrid(3), Algorithm::kOvh);
  // Center of a unit grid cell: exactly 0.5 from all four surrounding
  // edges. Any of them is a correct answer; repeated snaps must agree.
  const Point center{0.5, 0.5};
  const auto first = server.Snap(center);
  ASSERT_TRUE(first.ok());
  EXPECT_NEAR(Distance(ToEuclidean(server.network(), *first), center), 0.5,
              1e-12);
  for (int i = 0; i < 5; ++i) {
    const auto again = server.Snap(center);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->edge, first->edge);
    EXPECT_EQ(again->t, first->t);
  }
}

TEST(SnapTest, MatchesBruteForceNearestEdge) {
  MonitoringServer server(testing::MakeGrid(5, 2.0), Algorithm::kOvh);
  Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    // Sample inside and well outside the 8x8 workspace.
    const Point p{rng.Uniform(-3.0, 11.0), rng.Uniform(-3.0, 11.0)};
    const auto snapped = server.Snap(p);
    ASSERT_TRUE(snapped.ok());
    const double via_index =
        Distance(ToEuclidean(server.network(), *snapped), p);
    const double via_scan = BruteForceSnapDistance(server.network(), p);
    EXPECT_NEAR(via_index, via_scan, 1e-9) << "point " << p.x << "," << p.y;
  }
}

TEST(SnapTest, DegenerateZeroLengthEdgeIsSnappable) {
  // Two coincident nodes joined by an edge with an explicit positive travel
  // cost: geometrically a point, topologically a normal edge.
  RoadNetwork net;
  const NodeId a = net.AddNode(Point{0.0, 1.0});
  const NodeId b = net.AddNode(Point{0.0, 1.0});
  const NodeId c = net.AddNode(Point{0.0, 0.0});
  const NodeId d = net.AddNode(Point{1.0, 0.0});
  auto degenerate = net.AddEdge(a, b, /*length_override=*/1.0);
  ASSERT_TRUE(degenerate.ok());
  ASSERT_TRUE(net.AddEdge(c, d).ok());
  ASSERT_TRUE(net.AddEdge(a, c).ok());
  MonitoringServer server(std::move(net), Algorithm::kOvh);

  // Closest to the coincident pair: the degenerate edge (or the vertical
  // edge's endpoint, which is the same geometric spot).
  const auto snapped = server.Snap(Point{0.15, 1.1});
  ASSERT_TRUE(snapped.ok());
  EXPECT_NEAR(Distance(ToEuclidean(server.network(), *snapped),
                       Point{0.0, 1.0}),
              0.0, 1e-12);
  // The parameter of a snap onto the degenerate segment itself is 0 by
  // convention (ClosestPointParam on a zero-length segment).
  if (snapped->edge == degenerate.value()) {
    EXPECT_EQ(snapped->t, 0.0);
  }
  // Entities can live on the degenerate edge and be found by queries.
  ASSERT_TRUE(
      server.AddObject(0, NetworkPoint{degenerate.value(), 0.0}).ok());
  ASSERT_TRUE(server.InstallQuery(0, NetworkPoint{1, 0.5}, 1).ok());
  const auto* result = server.ResultOf(0);
  ASSERT_NE(result, nullptr);
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 0u);
}

TEST(SnapTest, ZeroExtentNetworkSnapsFromAnywhere) {
  // Every node coincides: the workspace bounding box has zero width and
  // height, so the spatial index lives entirely off the absolute pad floor
  // (regression: a ~1e-9 extent-proportional pad made snaps unreliable).
  RoadNetwork net;
  const NodeId a = net.AddNode(Point{3.0, 7.0});
  const NodeId b = net.AddNode(Point{3.0, 7.0});
  auto e = net.AddEdge(a, b, /*length_override=*/2.0);
  ASSERT_TRUE(e.ok());
  MonitoringServer server(std::move(net), Algorithm::kOvh);
  for (const Point p : {Point{3.0, 7.0}, Point{2.5, 7.5}, Point{-40.0, 12.0},
                        Point{1e6, -1e6}}) {
    const auto snapped = server.Snap(p);
    ASSERT_TRUE(snapped.ok()) << "point " << p.x << "," << p.y << ": "
                              << snapped.status().ToString();
    EXPECT_EQ(snapped->edge, e.value());
    EXPECT_NEAR(Distance(ToEuclidean(server.network(), *snapped),
                         Point{3.0, 7.0}),
                0.0, 1e-12);
  }
  // The degenerate workspace still hosts a working monitoring setup.
  ASSERT_TRUE(server.AddObject(0, NetworkPoint{e.value(), 0.75}).ok());
  ASSERT_TRUE(server.InstallQuery(0, NetworkPoint{e.value(), 0.0}, 1).ok());
  ASSERT_NE(server.ResultOf(0), nullptr);
  ASSERT_EQ(server.ResultOf(0)->size(), 1u);
}

TEST(SnapTest, ZeroExtentNetworkFarFromTheOriginSnaps) {
  // Same degeneracy at a large coordinate magnitude: a fixed absolute pad
  // (say 1e-9) would be absorbed by floating-point rounding at 1e8, giving
  // the quadtree an exactly zero-extent workspace. The pad floor scales
  // with the magnitude.
  RoadNetwork net;
  const NodeId a = net.AddNode(Point{1e8, -1e8});
  const NodeId b = net.AddNode(Point{1e8, -1e8});
  auto e = net.AddEdge(a, b, /*length_override=*/1.0);
  ASSERT_TRUE(e.ok());
  MonitoringServer server(std::move(net), Algorithm::kOvh);
  EXPECT_GT(server.spatial_index().bounds().Width(), 0.0);
  const auto snapped = server.Snap(Point{1e8 + 5.0, -1e8 + 2.0});
  ASSERT_TRUE(snapped.ok()) << snapped.status().ToString();
  EXPECT_EQ(snapped->edge, e.value());
}

TEST(SnapTest, AllCollinearDegenerateEdgesSnap) {
  // Several zero-length edges strung along one horizontal line: the
  // bounding box has positive width but exactly zero height. Snaps from
  // above/below must land on the nearest coincident pair.
  RoadNetwork net;
  std::vector<EdgeId> edges;
  for (int i = 0; i < 3; ++i) {
    const double x = 2.0 * i;
    const NodeId a = net.AddNode(Point{x, 5.0});
    const NodeId b = net.AddNode(Point{x, 5.0});
    auto e = net.AddEdge(a, b, /*length_override=*/1.0);
    ASSERT_TRUE(e.ok());
    edges.push_back(e.value());
  }
  // Chain the pairs so the network is connected (zero-length links would
  // collide with the coincident pairs, so connect consecutive pairs).
  ASSERT_TRUE(net.AddEdge(1, 2).ok());
  ASSERT_TRUE(net.AddEdge(3, 4).ok());
  MonitoringServer server(std::move(net), Algorithm::kOvh);
  for (const Point p : {Point{2.1, 9.0}, Point{4.4, -3.0}, Point{-7.0, 5.0},
                        Point{0.0, 5.0}}) {
    const auto snapped = server.Snap(p);
    ASSERT_TRUE(snapped.ok()) << "point " << p.x << "," << p.y << ": "
                              << snapped.status().ToString();
    EXPECT_NEAR(Distance(ToEuclidean(server.network(), *snapped), p),
                BruteForceSnapDistance(server.network(), p), 1e-9)
        << "point " << p.x << "," << p.y;
  }
}

}  // namespace
}  // namespace cknn

// Differential fuzz of the ExpansionState maintenance primitives: random
// interleavings of expansion, subtree prunes/adjustments and threshold
// prunes must keep the tree structurally sound (ancestor-closed, label
// arithmetic exact) — the properties everything in Section 4 rests on.

#include <unordered_set>

#include "gtest/gtest.h"
#include "src/core/expansion.h"
#include "src/core/knn_search.h"
#include "src/gen/network_gen.h"
#include "src/util/rng.h"
#include "tests/fuzz_util.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

/// Structural soundness of a (state, frontier) pair.
void CheckTree(const RoadNetwork& net, const ExpansionState& state) {
  for (const auto& [n, info] : testing::SettledEntries(state)) {
    if (info.parent == kInvalidNode) continue;
    const auto* pinfo = state.Info(info.parent);
    ASSERT_NE(pinfo, nullptr) << "orphan " << n;
    ASSERT_TRUE(net.IsEndpoint(info.via_edge, n));
    ASSERT_TRUE(net.IsEndpoint(info.via_edge, info.parent));
    const double want = pinfo->dist + net.edge(info.via_edge).weight;
    ASSERT_NEAR(info.dist, want, 1e-6 * (1.0 + want));
    // SubtreeOf(parent) must contain the child.
    // (Checked sparsely below; O(n^2) otherwise.)
  }
}

class ExpansionFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ExpansionFuzzTest, RandomMaintenanceKeepsTreeSound) {
  const auto seed = testing::FuzzSeed(static_cast<std::uint64_t>(GetParam()));
  RoadNetwork net = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 200, .seed = seed});
  Rng rng(seed * 31337);
  ObjectTable objects(net.NumEdges());
  for (ObjectId i = 0; i < 40; ++i) {
    ASSERT_TRUE(objects
                    .Insert(i, NetworkPoint{static_cast<EdgeId>(rng.NextIndex(
                                                net.NumEdges())),
                                            rng.NextDouble()})
                    .ok());
  }
  ExpansionState state;
  state.ResetToPoint(NetworkPoint{
      static_cast<EdgeId>(rng.NextIndex(net.NumEdges())), rng.NextDouble()});
  Frontier frontier;
  CandidateSet cand;
  ExpandToK(net, objects, 8, &state, &frontier, &cand);
  CheckTree(net, state);

  const int num_ops = testing::FuzzIterations(/*default_iters=*/120,
                                              /*hard_cap=*/5000);
  for (int op = 0; op < num_ops; ++op) {
    if (state.NumSettled() == 0) {
      ExpandToK(net, objects, 8, &state, &frontier, &cand);
      CheckTree(net, state);
      continue;
    }
    // Pick a random settled node.
    const std::size_t index = rng.NextIndex(state.NumSettled());
    NodeId victim = kInvalidNode;
    std::size_t i = 0;
    for (const auto& [n, info] : testing::SettledEntries(state)) {
      (void)info;
      if (i++ == index) {
        victim = n;
        break;
      }
    }
    switch (rng.NextIndex(4)) {
      case 0: {
        const auto removed = state.PruneSubtree(victim);
        // Removed set must be ancestor-closed w.r.t. the survivors.
        std::unordered_set<NodeId> gone(removed.begin(), removed.end());
        for (const auto& [n, info] : testing::SettledEntries(state)) {
          (void)n;
          if (info.parent != kInvalidNode) {
            EXPECT_EQ(gone.count(info.parent), 0u);
          }
        }
        break;
      }
      case 1: {
        // Adjust the subtree downward as a via-edge weight decrease would:
        // the subtree root must stay farther than its parent (new weight
        // > 0), which is exactly what the engine guarantees.
        const auto* vinfo = state.Info(victim);
        if (vinfo->parent == kInvalidNode) break;
        const double headroom =
            vinfo->dist - state.Info(vinfo->parent)->dist;
        const auto before = state.SubtreeOf(victim);
        std::unordered_set<NodeId> in_subtree(before.begin(), before.end());
        std::unordered_map<NodeId, double> dists;
        for (const auto& [n, info] : testing::SettledEntries(state)) dists[n] = info.dist;
        const double delta = -rng.Uniform(0.0, 0.9 * headroom);
        state.AdjustSubtree(victim, delta);
        for (const auto& [n, info] : testing::SettledEntries(state)) {
          const double want =
              dists[n] + (in_subtree.count(n) != 0 ? delta : 0.0);
          EXPECT_NEAR(info.dist, want, 1e-9);
        }
        break;
      }
      case 2: {
        const double threshold = rng.Uniform(0.0, state.max_settled_dist());
        state.PruneBeyond(threshold);
        for (const auto& [n, info] : testing::SettledEntries(state)) {
          (void)n;
          EXPECT_LE(info.dist, threshold);
        }
        break;
      }
      case 3: {
        // Keep-subtree prune, engine-style: the threshold is the (new)
        // distance of the kept subtree's root, which always exceeds every
        // ancestor distance — that is what keeps the survivors
        // ancestor-closed.
        const double threshold = rng.Uniform(*state.NodeDistance(victim),
                                             state.max_settled_dist() + 1.0);
        state.PruneOthersBeyond(victim, threshold);
        EXPECT_TRUE(state.IsSettled(victim));
        break;
      }
    }
    // Ancestor closure after any operation.
    for (const auto& [n, info] : testing::SettledEntries(state)) {
      (void)n;
      if (info.parent != kInvalidNode) {
        ASSERT_TRUE(state.IsSettled(info.parent));
      }
    }
    // SubtreeOf is consistent with parent pointers (spot check).
    if (state.IsSettled(victim)) {
      const auto sub = state.SubtreeOf(victim);
      std::unordered_set<NodeId> in_sub(sub.begin(), sub.end());
      for (const auto& [n, info] : testing::SettledEntries(state)) {
        if (info.parent != kInvalidNode &&
            in_sub.count(info.parent) != 0) {
          EXPECT_EQ(in_sub.count(n), 1u) << "child outside its subtree";
        }
      }
    }
    // Note: dist arithmetic (CheckTree) is only valid right after
    // expansion; AdjustSubtree intentionally skews it relative to the
    // *current* weights until the engine repairs — so it is not checked
    // inside the loop.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpansionFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace cknn

// Long-horizon stress: a single randomized run combining every dynamic —
// object movement + churn, query movement + install/terminate, and heavy
// weight fluctuation — over 40 timestamps on a mid-size network, with all
// three algorithms compared every timestamp and the engine invariants
// checked throughout. This is the closest in-tests approximation of the
// paper's 100-timestamp monitoring sessions.

#include <memory>

#include "gtest/gtest.h"
#include "src/core/gma.h"
#include "src/core/ima.h"
#include "src/core/server.h"
#include "src/gen/network_gen.h"
#include "src/util/rng.h"
#include "tests/fuzz_util.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

class TortureTest : public ::testing::TestWithParam<int> {};

TEST_P(TortureTest, FortyTimestampsOfEverything) {
  const std::uint64_t seed =
      testing::FuzzSeed(static_cast<std::uint64_t>(GetParam()));
  RoadNetwork base = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 400, .seed = seed});
  MonitoringServer ovh(CloneNetwork(base), Algorithm::kOvh);
  MonitoringServer ima(CloneNetwork(base), Algorithm::kIma);
  MonitoringServer gma(std::move(base), Algorithm::kGma);
  MonitoringServer* servers[3] = {&ovh, &ima, &gma};

  Rng rng(seed * 7919);
  const std::size_t num_edges = ovh.network().NumEdges();
  auto random_point = [&] {
    return NetworkPoint{static_cast<EdgeId>(rng.NextIndex(num_edges)),
                        rng.NextDouble()};
  };

  // Live entity registries (mirrors of what the servers should hold).
  std::unordered_map<ObjectId, NetworkPoint> obj_pos;
  std::unordered_map<QueryId, std::pair<NetworkPoint, int>> qry_pos;
  ObjectId next_obj = 0;
  QueryId next_qry = 0;

  UpdateBatch setup;
  for (int i = 0; i < 70; ++i) {
    const NetworkPoint p = random_point();
    setup.objects.push_back(ObjectUpdate{next_obj, std::nullopt, p});
    obj_pos[next_obj++] = p;
  }
  for (int i = 0; i < 10; ++i) {
    const NetworkPoint p = random_point();
    const int k = 1 + static_cast<int>(rng.NextIndex(6));
    setup.queries.push_back(
        QueryUpdate{next_qry, QueryUpdate::Kind::kInstall, p, k});
    qry_pos[next_qry++] = {p, k};
  }
  for (auto* s : servers) ASSERT_TRUE(s->Tick(setup).ok());

  const int horizon = testing::FuzzIterations(/*default_iters=*/40,
                                              /*hard_cap=*/1000);
  for (int ts = 0; ts < horizon; ++ts) {
    UpdateBatch batch;
    // Objects: move 25%, remove 5%, add as many back.
    std::vector<ObjectId> objs;
    for (const auto& [id, p] : obj_pos) {
      (void)p;
      objs.push_back(id);
    }
    std::sort(objs.begin(), objs.end());
    for (ObjectId id : objs) {
      const double roll = rng.NextDouble();
      if (roll < 0.05) {
        batch.objects.push_back(ObjectUpdate{id, obj_pos[id], std::nullopt});
        obj_pos.erase(id);
      } else if (roll < 0.30) {
        const NetworkPoint p = random_point();
        batch.objects.push_back(ObjectUpdate{id, obj_pos[id], p});
        obj_pos[id] = p;
      }
    }
    while (obj_pos.size() < 70) {
      const NetworkPoint p = random_point();
      batch.objects.push_back(ObjectUpdate{next_obj, std::nullopt, p});
      obj_pos[next_obj++] = p;
    }
    // Queries: move 30%, terminate 5%, install replacements.
    std::vector<QueryId> qids;
    for (const auto& [id, p] : qry_pos) {
      (void)p;
      qids.push_back(id);
    }
    std::sort(qids.begin(), qids.end());
    for (QueryId id : qids) {
      const double roll = rng.NextDouble();
      if (roll < 0.05) {
        batch.queries.push_back(
            QueryUpdate{id, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
        qry_pos.erase(id);
      } else if (roll < 0.35) {
        const NetworkPoint p = random_point();
        batch.queries.push_back(
            QueryUpdate{id, QueryUpdate::Kind::kMove, p, 0});
        qry_pos[id].first = p;
      }
    }
    while (qry_pos.size() < 10) {
      const NetworkPoint p = random_point();
      const int k = 1 + static_cast<int>(rng.NextIndex(6));
      batch.queries.push_back(
          QueryUpdate{next_qry, QueryUpdate::Kind::kInstall, p, k});
      qry_pos[next_qry++] = {p, k};
    }
    // Edges: 10% fluctuate by a random factor in [0.7, 1.4].
    for (EdgeId e = 0; e < num_edges; ++e) {
      if (!rng.NextBool(0.10)) continue;
      batch.edges.push_back(
          EdgeUpdate{e, ovh.network().edge(e).weight * rng.Uniform(0.7, 1.4)});
    }

    for (auto* s : servers) ASSERT_TRUE(s->Tick(batch).ok());
    ASSERT_TRUE(dynamic_cast<Ima&>(ima.monitor())
                    .engine()
                    .CheckInvariants()
                    .ok())
        << "ts " << ts;
    ASSERT_TRUE(dynamic_cast<Gma&>(gma.monitor())
                    .engine()
                    .CheckInvariants()
                    .ok())
        << "ts " << ts;
    for (const auto& [id, pk] : qry_pos) {
      (void)pk;
      const auto* want = ovh.ResultOf(id);
      ASSERT_NE(want, nullptr);
      SCOPED_TRACE("ts=" + std::to_string(ts) + " q=" + std::to_string(id));
      ASSERT_NE(ima.ResultOf(id), nullptr);
      ASSERT_NE(gma.ResultOf(id), nullptr);
      testing::ExpectSameDistances(*ima.ResultOf(id), *want);
      testing::ExpectSameDistances(*gma.ResultOf(id), *want);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace cknn

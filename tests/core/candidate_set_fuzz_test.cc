// Differential fuzz of CandidateSet against a naive reference model
// (unordered_map + full sort on every inspection). The candidate set is
// the ranking heart of every algorithm here, so its Offer/Set/Remove/
// PruneBeyond semantics get hammered with random operation tapes.

#include <map>
#include <optional>

#include "gtest/gtest.h"
#include "src/core/top_k.h"
#include "src/util/rng.h"
#include "tests/fuzz_util.h"

namespace cknn {
namespace {

/// Reference model with the same interface semantics.
class NaiveCandidateSet {
 public:
  bool Offer(ObjectId id, double dist) {
    auto it = map_.find(id);
    if (it == map_.end()) {
      map_.emplace(id, dist);
      return true;
    }
    if (dist >= it->second) return false;
    it->second = dist;
    return true;
  }
  void Set(ObjectId id, double dist) { map_[id] = dist; }
  std::optional<double> Remove(ObjectId id) {
    auto it = map_.find(id);
    if (it == map_.end()) return std::nullopt;
    const double d = it->second;
    map_.erase(it);
    return d;
  }
  double KthDist(int k) const {
    auto sorted = Sorted();
    if (static_cast<int>(sorted.size()) < k) return kInfDist;
    return sorted[k - 1].distance;
  }
  std::vector<Neighbor> TopK(int k) const {
    auto sorted = Sorted();
    if (static_cast<int>(sorted.size()) > k) {
      sorted.resize(static_cast<std::size_t>(k));
    }
    return sorted;
  }
  void PruneBeyond(double bound) {
    for (auto it = map_.begin(); it != map_.end();) {
      it = it->second > bound ? map_.erase(it) : std::next(it);
    }
  }
  std::size_t size() const { return map_.size(); }

 private:
  std::vector<Neighbor> Sorted() const {
    std::vector<Neighbor> v;
    for (const auto& [id, d] : map_) v.push_back(Neighbor{id, d});
    std::sort(v.begin(), v.end(), [](const Neighbor& a, const Neighbor& b) {
      return a.distance != b.distance ? a.distance < b.distance
                                      : a.id < b.id;
    });
    return v;
  }
  std::map<ObjectId, double> map_;
};

class CandidateSetFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(CandidateSetFuzzTest, AgreesWithNaiveModel) {
  Rng rng(testing::FuzzSeed(static_cast<std::uint64_t>(GetParam())) * 99991);
  CandidateSet real;
  NaiveCandidateSet naive;
  const int num_ops = testing::FuzzIterations(/*default_iters=*/3000,
                                              /*hard_cap=*/200000);
  // Odd seeds run a wide tape: enough live ids to overflow the sorted
  // top array (64 entries) and k beyond it, exercising the adaptive-cap
  // growth, displacement, and stale-rebuild paths. Even seeds keep the
  // original narrow tape (everything inside the array).
  const bool wide = GetParam() % 2 == 1;
  const int id_space = wide ? 300 : 60;
  const int max_k = wide ? 150 : 8;
  for (int op = 0; op < num_ops; ++op) {
    const ObjectId id = static_cast<ObjectId>(rng.NextIndex(id_space));
    // Quantized distances produce plenty of exact ties.
    const double dist = static_cast<double>(rng.NextIndex(40)) * 0.25;
    switch (rng.NextIndex(5)) {
      case 0:
      case 1:
        EXPECT_EQ(real.Offer(id, dist), naive.Offer(id, dist));
        break;
      case 2:
        real.Set(id, dist);
        naive.Set(id, dist);
        break;
      case 3: {
        const auto a = real.Remove(id);
        const auto b = naive.Remove(id);
        EXPECT_EQ(a.has_value(), b.has_value());
        if (a && b) {
          EXPECT_DOUBLE_EQ(*a, *b);
        }
        break;
      }
      case 4: {
        const double bound = static_cast<double>(rng.NextIndex(40)) * 0.25;
        real.PruneBeyond(bound);
        naive.PruneBeyond(bound);
        break;
      }
    }
    ASSERT_EQ(real.size(), naive.size());
    const int k = 1 + static_cast<int>(rng.NextIndex(max_k));
    ASSERT_EQ(real.KthDist(k), naive.KthDist(k));
    if (op % 50 == 0) {
      const auto a = real.TopK(k);
      const auto b = naive.TopK(k);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_DOUBLE_EQ(a[i].distance, b[i].distance);
      }
    }
  }
  // Final full comparison.
  const auto a = real.All();
  const auto b = naive.TopK(static_cast<int>(naive.size()));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_DOUBLE_EQ(a[i].distance, b[i].distance);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CandidateSetFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace cknn

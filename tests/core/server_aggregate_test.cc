// Section 4.5 preprocessing through the server's Tick path: when one
// entity issues several updates in a single timestamp, the batch handed to
// the algorithm must collapse to the last-write state — for every
// algorithm, and with the same observable outcome as submitting the
// collapsed update directly.

#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "src/core/server.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

class TickAggregationTest : public ::testing::TestWithParam<Algorithm> {
 protected:
  /// Fresh server on a 4x4 unit grid with two objects and one 2-NN query.
  std::unique_ptr<MonitoringServer> MakeServer() {
    auto server = std::make_unique<MonitoringServer>(testing::MakeGrid(4),
                                                     GetParam());
    EXPECT_TRUE(server->AddObject(0, NetworkPoint{0, 0.25}).ok());
    EXPECT_TRUE(server->AddObject(1, NetworkPoint{10, 0.5}).ok());
    EXPECT_TRUE(server->InstallQuery(0, NetworkPoint{2, 0.5}, 2).ok());
    return server;
  }

  /// Both servers must expose identical query-0 results.
  void ExpectSameResult(const MonitoringServer& a, const MonitoringServer& b) {
    const auto* ra = a.ResultOf(0);
    const auto* rb = b.ResultOf(0);
    ASSERT_NE(ra, nullptr);
    ASSERT_NE(rb, nullptr);
    EXPECT_EQ(*ra, *rb);
  }
};

TEST_P(TickAggregationTest, ChainedObjectMovesCollapseToLastWrite) {
  auto chained = MakeServer();
  auto collapsed = MakeServer();
  UpdateBatch batch;
  batch.objects.push_back(
      ObjectUpdate{0, NetworkPoint{0, 0.25}, NetworkPoint{5, 0.5}});
  batch.objects.push_back(
      ObjectUpdate{0, NetworkPoint{5, 0.5}, NetworkPoint{9, 0.75}});
  batch.objects.push_back(
      ObjectUpdate{0, NetworkPoint{9, 0.75}, NetworkPoint{14, 0.5}});
  ASSERT_TRUE(chained->Tick(batch).ok());

  UpdateBatch single;
  single.objects.push_back(
      ObjectUpdate{0, NetworkPoint{0, 0.25}, NetworkPoint{14, 0.5}});
  ASSERT_TRUE(collapsed->Tick(single).ok());

  EXPECT_EQ(chained->objects().Position(0).value(), (NetworkPoint{14, 0.5}));
  ExpectSameResult(*chained, *collapsed);
  // One batch, one timestamp — regardless of how many updates it carried.
  EXPECT_EQ(chained->timestamp(), collapsed->timestamp());
}

TEST_P(TickAggregationTest, AppearThenMoveCollapsesToFinalAppearance) {
  auto chained = MakeServer();
  auto collapsed = MakeServer();
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{7, std::nullopt, NetworkPoint{4, 0.5}});
  batch.objects.push_back(
      ObjectUpdate{7, NetworkPoint{4, 0.5}, NetworkPoint{2, 0.25}});
  ASSERT_TRUE(chained->Tick(batch).ok());

  UpdateBatch single;
  single.objects.push_back(
      ObjectUpdate{7, std::nullopt, NetworkPoint{2, 0.25}});
  ASSERT_TRUE(collapsed->Tick(single).ok());

  EXPECT_EQ(chained->objects().Position(7).value(), (NetworkPoint{2, 0.25}));
  ExpectSameResult(*chained, *collapsed);
}

TEST_P(TickAggregationTest, MoveThenDisappearRemovesTheObject) {
  auto server = MakeServer();
  UpdateBatch batch;
  batch.objects.push_back(
      ObjectUpdate{0, NetworkPoint{0, 0.25}, NetworkPoint{5, 0.5}});
  batch.objects.push_back(
      ObjectUpdate{0, NetworkPoint{5, 0.5}, std::nullopt});
  ASSERT_TRUE(server->Tick(batch).ok());
  EXPECT_FALSE(server->objects().Contains(0));
  const auto* result = server->ResultOf(0);
  ASSERT_NE(result, nullptr);
  ASSERT_EQ(result->size(), 1u);  // Only object 1 remains.
  EXPECT_EQ((*result)[0].id, 1u);
}

TEST_P(TickAggregationTest, RepeatedEdgeWeightUpdatesLastWriteWins) {
  auto chained = MakeServer();
  auto collapsed = MakeServer();
  UpdateBatch batch;
  batch.edges.push_back(EdgeUpdate{2, 9.0});
  batch.edges.push_back(EdgeUpdate{2, 0.5});
  batch.edges.push_back(EdgeUpdate{2, 3.25});
  batch.edges.push_back(EdgeUpdate{7, 2.0});  // Another edge rides along.
  ASSERT_TRUE(chained->Tick(batch).ok());

  UpdateBatch single;
  single.edges.push_back(EdgeUpdate{2, 3.25});
  single.edges.push_back(EdgeUpdate{7, 2.0});
  ASSERT_TRUE(collapsed->Tick(single).ok());

  EXPECT_DOUBLE_EQ(chained->network().edge(2).weight, 3.25);
  EXPECT_DOUBLE_EQ(chained->network().edge(7).weight, 2.0);
  ExpectSameResult(*chained, *collapsed);
}

TEST_P(TickAggregationTest, ChainedQueryMovesCollapseToLastWrite) {
  auto chained = MakeServer();
  auto collapsed = MakeServer();
  UpdateBatch batch;
  batch.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kMove, NetworkPoint{8, 0.5}, 0});
  batch.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kMove, NetworkPoint{12, 0.75}, 0});
  ASSERT_TRUE(chained->Tick(batch).ok());

  UpdateBatch single;
  single.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kMove, NetworkPoint{12, 0.75}, 0});
  ASSERT_TRUE(collapsed->Tick(single).ok());
  ExpectSameResult(*chained, *collapsed);
}

TEST_P(TickAggregationTest, InstallMoveTerminateWithinOneTickIsANoOp) {
  auto server = MakeServer();
  const std::size_t queries_before = server->monitor().NumQueries();
  UpdateBatch batch;
  batch.queries.push_back(
      QueryUpdate{5, QueryUpdate::Kind::kInstall, NetworkPoint{1, 0.5}, 3});
  batch.queries.push_back(
      QueryUpdate{5, QueryUpdate::Kind::kMove, NetworkPoint{3, 0.5}, 0});
  batch.queries.push_back(
      QueryUpdate{5, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  ASSERT_TRUE(server->Tick(batch).ok());
  EXPECT_EQ(server->ResultOf(5), nullptr);
  EXPECT_EQ(server->monitor().NumQueries(), queries_before);
}

TEST_P(TickAggregationTest, TerminateThenReinstallKeepsTheQueryAlive) {
  // Regression: the pre-fix collapse rules folded terminate→install into a
  // bare install of a still-registered id, which every algorithm rejects
  // with AlreadyExists. The net effect must be a re-installation.
  auto chained = MakeServer();
  auto sequential = MakeServer();
  UpdateBatch batch;
  batch.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  batch.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kInstall, NetworkPoint{6, 0.5}, 1});
  ASSERT_TRUE(chained->Tick(batch).ok());

  ASSERT_TRUE(sequential->TerminateQuery(0).ok());
  ASSERT_TRUE(sequential->InstallQuery(0, NetworkPoint{6, 0.5}, 1).ok());
  ExpectSameResult(*chained, *sequential);
  EXPECT_EQ(chained->NumQueries(), 1u);
}

TEST_P(TickAggregationTest, MoveTerminateReinstallMoveCollapses) {
  // The "move-after-reinstall" chain of the issue: the final state is a
  // fresh installation at the last position with the reinstall's k.
  auto chained = MakeServer();
  auto sequential = MakeServer();
  UpdateBatch batch;
  batch.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kMove, NetworkPoint{8, 0.5}, 0});
  batch.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  batch.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kInstall, NetworkPoint{3, 0.25}, 1});
  batch.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kMove, NetworkPoint{12, 0.75}, 0});
  ASSERT_TRUE(chained->Tick(batch).ok());

  ASSERT_TRUE(
      sequential->MoveQuery(0, NetworkPoint{8, 0.5}).ok());
  ASSERT_TRUE(sequential->TerminateQuery(0).ok());
  ASSERT_TRUE(sequential->InstallQuery(0, NetworkPoint{3, 0.25}, 1).ok());
  ASSERT_TRUE(sequential->MoveQuery(0, NetworkPoint{12, 0.75}).ok());
  ExpectSameResult(*chained, *sequential);
}

TEST_P(TickAggregationTest, TerminateReinstallTerminateIsATerminate) {
  // Regression: the pre-fix rules dropped this chain entirely (treating it
  // as a no-op), leaving the original query registered.
  auto server = MakeServer();
  UpdateBatch batch;
  batch.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  batch.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kInstall, NetworkPoint{6, 0.5}, 2});
  batch.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  ASSERT_TRUE(server->Tick(batch).ok());
  EXPECT_EQ(server->ResultOf(0), nullptr);
  EXPECT_EQ(server->NumQueries(), 0u);
}

TEST(AggregateBatchTest, TerminateReinstallEmitsTerminateThenInstall) {
  UpdateBatch batch;
  batch.queries.push_back(
      QueryUpdate{4, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  batch.queries.push_back(
      QueryUpdate{4, QueryUpdate::Kind::kInstall, NetworkPoint{1, 0.5}, 3});
  batch.queries.push_back(
      QueryUpdate{4, QueryUpdate::Kind::kMove, NetworkPoint{2, 0.25}, 0});
  const UpdateBatch out = MonitoringServer::AggregateBatch(batch);
  ASSERT_EQ(out.queries.size(), 2u);
  EXPECT_EQ(out.queries[0].kind, QueryUpdate::Kind::kTerminate);
  EXPECT_EQ(out.queries[0].id, 4u);
  EXPECT_EQ(out.queries[1].kind, QueryUpdate::Kind::kInstall);
  EXPECT_EQ(out.queries[1].id, 4u);
  EXPECT_EQ(out.queries[1].pos, (NetworkPoint{2, 0.25}));
  EXPECT_EQ(out.queries[1].k, 3);
}

TEST_P(TickAggregationTest, InstallOfAliveQueryStillSurfacesAlreadyExists) {
  // [move, install] of a registered query is invalid sequential input; the
  // collapse must not quietly turn it into a move (losing the install's k
  // and the error) — the algorithms reject it like a sequential replay.
  auto server = MakeServer();
  UpdateBatch batch;
  batch.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kMove, NetworkPoint{8, 0.5}, 0});
  batch.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kInstall, NetworkPoint{3, 0.25}, 5});
  EXPECT_TRUE(server->Tick(batch).IsAlreadyExists());
}

TEST_P(TickAggregationTest, DuplicateInstallOfNewQuerySurfacesAlreadyExists) {
  // [install, install] of a within-tick-new id is invalid sequential input
  // (the second install would be rejected); the batch is rejected whole.
  auto server = MakeServer();
  UpdateBatch batch;
  batch.queries.push_back(
      QueryUpdate{5, QueryUpdate::Kind::kInstall, NetworkPoint{1, 0.5}, 1});
  batch.queries.push_back(
      QueryUpdate{5, QueryUpdate::Kind::kInstall, NetworkPoint{3, 0.25}, 5});
  EXPECT_TRUE(server->Tick(batch).IsAlreadyExists());
  EXPECT_EQ(server->ResultOf(5), nullptr);
}

TEST(AggregateBatchTest, InconsistentObjectChainIsEmittedRawNotFolded) {
  // insert@p1 -> move(old=p999 -> p2): the old position contradicts the
  // running chain, so the fold must stop and emit the offending update
  // verbatim (for stage-2 validation to reject) instead of laundering the
  // pair into a single plausible insert@p2.
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{1, std::nullopt, NetworkPoint{0, 0.1}});
  batch.objects.push_back(
      ObjectUpdate{1, NetworkPoint{9, 0.9}, NetworkPoint{0, 0.2}});
  const UpdateBatch out = MonitoringServer::AggregateBatch(batch);
  ASSERT_EQ(out.objects.size(), 2u);
  EXPECT_EQ(out.objects[0], batch.objects[0]);
  EXPECT_EQ(out.objects[1], batch.objects[1]);
}

TEST(AggregateBatchTest, BrokenChainKeepsItsConsistentPrefixVerbatim) {
  // insert -> delete -> inconsistent move: the prefix folds to a
  // {nullopt, nullopt} no-op, but erasing it would delete the evidence
  // the validator needs (the insert is where a sequential replay fails
  // if the id already exists) — the whole chain must come out raw.
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{1, std::nullopt, NetworkPoint{0, 0.1}});
  batch.objects.push_back(ObjectUpdate{1, NetworkPoint{0, 0.1}, std::nullopt});
  batch.objects.push_back(
      ObjectUpdate{1, NetworkPoint{9, 0.9}, NetworkPoint{0, 0.2}});
  const UpdateBatch out = MonitoringServer::AggregateBatch(batch);
  ASSERT_EQ(out.objects.size(), 3u);
  EXPECT_EQ(out.objects[0], batch.objects[0]);
  EXPECT_EQ(out.objects[1], batch.objects[1]);
  EXPECT_EQ(out.objects[2], batch.objects[2]);
}

TEST(AggregateBatchTest, NoOpObjectUpdateDoesNotPoisonTheChain) {
  // An update with neither position is a no-op at any table state
  // (ObjectTable::Apply); it must neither survive aggregation nor count
  // as evidence that the object is absent.
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{1, std::nullopt, std::nullopt});
  batch.objects.push_back(
      ObjectUpdate{1, NetworkPoint{0, 0.5}, NetworkPoint{0, 0.75}});
  const UpdateBatch out = MonitoringServer::AggregateBatch(batch);
  ASSERT_EQ(out.objects.size(), 1u);
  EXPECT_EQ(out.objects[0], batch.objects[1]);
}

TEST(AggregateBatchTest, MoveChainStaysASingleMove) {
  UpdateBatch batch;
  batch.queries.push_back(
      QueryUpdate{1, QueryUpdate::Kind::kMove, NetworkPoint{1, 0.5}, 0});
  batch.queries.push_back(
      QueryUpdate{1, QueryUpdate::Kind::kMove, NetworkPoint{2, 0.5}, 0});
  const UpdateBatch out = MonitoringServer::AggregateBatch(batch);
  ASSERT_EQ(out.queries.size(), 1u);
  EXPECT_EQ(out.queries[0].kind, QueryUpdate::Kind::kMove);
  EXPECT_EQ(out.queries[0].pos, (NetworkPoint{2, 0.5}));
}

TEST(AggregateBatchTest, InstallTerminateCancelsOut) {
  UpdateBatch batch;
  batch.queries.push_back(
      QueryUpdate{9, QueryUpdate::Kind::kInstall, NetworkPoint{1, 0.5}, 2});
  batch.queries.push_back(
      QueryUpdate{9, QueryUpdate::Kind::kMove, NetworkPoint{2, 0.5}, 0});
  batch.queries.push_back(
      QueryUpdate{9, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  const UpdateBatch out = MonitoringServer::AggregateBatch(batch);
  EXPECT_TRUE(out.queries.empty());
}

TEST_P(TickAggregationTest, MixedEntitiesAggregateIndependently) {
  auto chained = MakeServer();
  auto collapsed = MakeServer();
  UpdateBatch batch;
  batch.objects.push_back(
      ObjectUpdate{0, NetworkPoint{0, 0.25}, NetworkPoint{1, 0.5}});
  batch.objects.push_back(
      ObjectUpdate{0, NetworkPoint{1, 0.5}, NetworkPoint{1, 0.75}});
  batch.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kMove, NetworkPoint{4, 0.5}, 0});
  batch.edges.push_back(EdgeUpdate{1, 4.0});
  batch.edges.push_back(EdgeUpdate{1, 1.5});
  ASSERT_TRUE(chained->Tick(batch).ok());

  UpdateBatch single;
  single.objects.push_back(
      ObjectUpdate{0, NetworkPoint{0, 0.25}, NetworkPoint{1, 0.75}});
  single.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kMove, NetworkPoint{4, 0.5}, 0});
  single.edges.push_back(EdgeUpdate{1, 1.5});
  ASSERT_TRUE(collapsed->Tick(single).ok());

  EXPECT_EQ(chained->objects().Position(0).value(), (NetworkPoint{1, 0.75}));
  EXPECT_DOUBLE_EQ(chained->network().edge(1).weight, 1.5);
  ExpectSameResult(*chained, *collapsed);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, TickAggregationTest,
                         ::testing::Values(Algorithm::kIma, Algorithm::kGma,
                                           Algorithm::kOvh),
                         [](const ::testing::TestParamInfo<Algorithm>& info) {
                           return std::string(AlgorithmName(info.param));
                         });

}  // namespace
}  // namespace cknn

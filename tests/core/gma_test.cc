#include "src/core/gma.h"

#include "gtest/gtest.h"
#include "src/core/server.h"
#include "src/gen/network_gen.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

// Node ids in MakeFigure11(): n1..n9 -> 0..8. Edge ids:
// e0=n1n8 e1=n1n9 e2=n1n7 e3=n7n6 e4=n6n5 e5=n1n2 e6=n2n3 e7=n2n5 e8=n5n4.

TEST(GmaTest, ActiveNodesFollowQueries) {
  RoadNetwork net = testing::MakeFigure11();
  ObjectTable objects(net.NumEdges());
  Gma gma(&net, &objects);
  UpdateBatch batch;
  // Objects p1..p5 in the spirit of Figure 11.
  batch.objects.push_back(ObjectUpdate{1, std::nullopt, NetworkPoint{0, 0.5}});
  batch.objects.push_back(ObjectUpdate{2, std::nullopt, NetworkPoint{7, 0.5}});
  batch.objects.push_back(ObjectUpdate{3, std::nullopt, NetworkPoint{8, 0.4}});
  batch.objects.push_back(ObjectUpdate{4, std::nullopt, NetworkPoint{3, 0.5}});
  batch.objects.push_back(ObjectUpdate{5, std::nullopt, NetworkPoint{2, 0.3}});
  // q1 on the chain n1-n7 (edge 2): sequence endpoints n1, n5 are
  // intersections -> both become active.
  batch.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{2, 0.5}, 2});
  ASSERT_TRUE(gma.ProcessTimestamp(batch).ok());
  EXPECT_EQ(gma.NumActiveNodes(), 2u);
  EXPECT_EQ(gma.NumQueries(), 1u);
  ASSERT_NE(gma.ResultOf(0), nullptr);
  EXPECT_EQ(gma.ResultOf(0)->size(), 2u);
  // Terminating the only query deactivates both nodes.
  UpdateBatch done;
  done.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  ASSERT_TRUE(gma.ProcessTimestamp(done).ok());
  EXPECT_EQ(gma.NumActiveNodes(), 0u);
  EXPECT_EQ(gma.NumQueries(), 0u);
}

TEST(GmaTest, NkIsMaxOverQueries) {
  RoadNetwork net = testing::MakeFigure11();
  ObjectTable objects(net.NumEdges());
  for (ObjectId i = 0; i < 6; ++i) {
    ASSERT_TRUE(objects.Insert(i, NetworkPoint{i, 0.5}).ok());
  }
  // Insert objects through the table directly, then only queries via GMA.
  Gma gma(&net, &objects);
  UpdateBatch batch;
  batch.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{2, 0.2}, 1});
  batch.queries.push_back(QueryUpdate{1, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{3, 0.5}, 3});
  ASSERT_TRUE(gma.ProcessTimestamp(batch).ok());
  // Active nodes n1 (0) and n5 (4) must monitor k = max(1, 3) = 3.
  ASSERT_NE(gma.engine().ResultOf(0), nullptr);
  EXPECT_EQ(gma.engine().KOf(0), 3);
  EXPECT_EQ(gma.engine().KOf(4), 3);
  // Terminate the 3-NN query: n.k shrinks to 1.
  UpdateBatch done;
  done.queries.push_back(
      QueryUpdate{1, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  ASSERT_TRUE(gma.ProcessTimestamp(done).ok());
  EXPECT_EQ(gma.engine().KOf(0), 1);
}

TEST(GmaTest, QueryOnTerminalSequenceUsesSingleActiveNode) {
  RoadNetwork net = testing::MakeFigure11();
  ObjectTable objects(net.NumEdges());
  Gma gma(&net, &objects);
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{1, std::nullopt, NetworkPoint{7, 0.2}});
  batch.objects.push_back(ObjectUpdate{2, std::nullopt, NetworkPoint{0, 0.5}});
  // q3 on n5n4 (edge 8): n4 is terminal, only n5 becomes active.
  batch.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{8, 0.5}, 2});
  ASSERT_TRUE(gma.ProcessTimestamp(batch).ok());
  EXPECT_EQ(gma.NumActiveNodes(), 1u);
  ASSERT_NE(gma.ResultOf(0), nullptr);
  EXPECT_EQ(gma.ResultOf(0)->size(), 2u);
}

TEST(GmaTest, PureCycleComponentHasNoActiveNodes) {
  RoadNetwork net;
  const NodeId a = net.AddNode(Point{0, 0});
  const NodeId b = net.AddNode(Point{1, 0});
  const NodeId c = net.AddNode(Point{1, 1});
  const NodeId d = net.AddNode(Point{0, 1});
  ASSERT_TRUE(net.AddEdge(a, b).ok());
  ASSERT_TRUE(net.AddEdge(b, c).ok());
  ASSERT_TRUE(net.AddEdge(c, d).ok());
  ASSERT_TRUE(net.AddEdge(d, a).ok());
  ObjectTable objects(net.NumEdges());
  Gma gma(&net, &objects);
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{1, std::nullopt, NetworkPoint{2, 0.5}});
  batch.objects.push_back(ObjectUpdate{2, std::nullopt, NetworkPoint{1, 0.1}});
  batch.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{0, 0.5}, 2});
  ASSERT_TRUE(gma.ProcessTimestamp(batch).ok());
  EXPECT_EQ(gma.NumActiveNodes(), 0u);
  ASSERT_NE(gma.ResultOf(0), nullptr);
  ASSERT_EQ(gma.ResultOf(0)->size(), 2u);
  // Distances: both objects reachable both ways around the ring; the walk
  // must pick the shorter side.
  const auto& result = *gma.ResultOf(0);
  EXPECT_NEAR(result[0].distance, 0.6, 1e-9);  // Object 2 via node b.
  EXPECT_NEAR(result[1].distance, 2.0, 1e-9);  // Object 1: both ways tie.
}

TEST(GmaTest, PureCycleWalkWrapsPastAnchor) {
  // Square ring; the object sits just past the sequence anchor, so the
  // short way to it crosses the anchor node — the walk must wrap.
  RoadNetwork net;
  const NodeId a = net.AddNode(Point{0, 0});
  const NodeId b = net.AddNode(Point{1, 0});
  const NodeId c = net.AddNode(Point{1, 1});
  const NodeId d = net.AddNode(Point{0, 1});
  ASSERT_TRUE(net.AddEdge(a, b).ok());  // e0
  ASSERT_TRUE(net.AddEdge(b, c).ok());  // e1
  ASSERT_TRUE(net.AddEdge(c, d).ok());  // e2
  ASSERT_TRUE(net.AddEdge(d, a).ok());  // e3
  ObjectTable objects(net.NumEdges());
  Gma gma(&net, &objects);
  UpdateBatch batch;
  // Object on e3 near node a (0.1 from a).
  batch.objects.push_back(ObjectUpdate{1, std::nullopt, NetworkPoint{3, 0.9}});
  // Query on e0 near a.
  batch.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{0, 0.5}, 1});
  ASSERT_TRUE(gma.ProcessTimestamp(batch).ok());
  ASSERT_EQ(gma.ResultOf(0)->size(), 1u);
  EXPECT_NEAR((*gma.ResultOf(0))[0].distance, 0.6, 1e-9);
}

TEST(GmaTest, MovingQueryAcrossSequences) {
  RoadNetwork net = testing::MakeFigure11();
  ObjectTable objects(net.NumEdges());
  Gma gma(&net, &objects);
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{1, std::nullopt, NetworkPoint{0, 0.5}});
  batch.objects.push_back(ObjectUpdate{2, std::nullopt, NetworkPoint{8, 0.5}});
  batch.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{2, 0.5}, 1});
  ASSERT_TRUE(gma.ProcessTimestamp(batch).ok());
  const std::size_t active_before = gma.NumActiveNodes();
  // Move into the n2n3 sequence: active set follows.
  UpdateBatch move;
  move.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kMove, NetworkPoint{6, 0.5}, 0});
  ASSERT_TRUE(gma.ProcessTimestamp(move).ok());
  EXPECT_NE(gma.NumActiveNodes(), 0u);
  EXPECT_LE(gma.NumActiveNodes(), active_before + 1);
  ASSERT_NE(gma.ResultOf(0), nullptr);
  EXPECT_EQ(gma.ResultOf(0)->size(), 1u);
}

TEST(GmaTest, SharedExecutionAcrossQueriesInOneSequence) {
  RoadNetwork net = testing::MakeFigure11();
  ObjectTable objects(net.NumEdges());
  Gma gma(&net, &objects);
  UpdateBatch batch;
  for (ObjectId i = 0; i < 5; ++i) {
    batch.objects.push_back(
        ObjectUpdate{i, std::nullopt, NetworkPoint{i, 0.5}});
  }
  // Three queries on the chain n1-n7-n6-n5 share two active nodes.
  batch.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{2, 0.3}, 2});
  batch.queries.push_back(QueryUpdate{1, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{3, 0.5}, 2});
  batch.queries.push_back(QueryUpdate{2, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{4, 0.7}, 2});
  ASSERT_TRUE(gma.ProcessTimestamp(batch).ok());
  EXPECT_EQ(gma.NumQueries(), 3u);
  EXPECT_EQ(gma.NumActiveNodes(), 2u);  // Shared: n1 and n5 only.
}

TEST(GmaTest, UpdateFilteringSkipsUnrelatedQueries) {
  RoadNetwork net = testing::MakeFigure11();
  ObjectTable objects(net.NumEdges());
  Gma gma(&net, &objects);
  UpdateBatch batch;
  batch.objects.push_back(ObjectUpdate{1, std::nullopt, NetworkPoint{2, 0.4}});
  batch.objects.push_back(ObjectUpdate{2, std::nullopt, NetworkPoint{6, 0.6}});
  batch.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{2, 0.5}, 1});
  ASSERT_TRUE(gma.ProcessTimestamp(batch).ok());
  const auto evals_before = gma.stats().evaluations;
  // Object 2 moves within edge 6, far from query 0's influence region and
  // not entering any monitored NN set: no re-evaluation.
  UpdateBatch far;
  far.objects.push_back(
      ObjectUpdate{2, NetworkPoint{6, 0.6}, NetworkPoint{6, 0.9}});
  ASSERT_TRUE(gma.ProcessTimestamp(far).ok());
  EXPECT_EQ(gma.stats().evaluations, evals_before);
}

/// GMA must agree with OVH across a randomized mixed workload.
TEST(GmaTest, AgreesWithOvhUnderMixedUpdates) {
  RoadNetwork base =
      GenerateRoadNetwork(NetworkGenConfig{.target_edges = 220, .seed = 8});
  MonitoringServer gma_server(CloneNetwork(base), Algorithm::kGma);
  MonitoringServer ovh_server(std::move(base), Algorithm::kOvh);
  Rng rng(55);
  const std::size_t num_edges = gma_server.network().NumEdges();
  UpdateBatch setup;
  std::vector<NetworkPoint> obj_pos(50);
  for (ObjectId i = 0; i < obj_pos.size(); ++i) {
    obj_pos[i] = NetworkPoint{static_cast<EdgeId>(rng.NextIndex(num_edges)),
                              rng.NextDouble()};
    setup.objects.push_back(ObjectUpdate{i, std::nullopt, obj_pos[i]});
  }
  std::vector<NetworkPoint> qry_pos(8);
  for (QueryId q = 0; q < qry_pos.size(); ++q) {
    qry_pos[q] = NetworkPoint{static_cast<EdgeId>(rng.NextIndex(num_edges)),
                              rng.NextDouble()};
    setup.queries.push_back(
        QueryUpdate{q, QueryUpdate::Kind::kInstall, qry_pos[q], 4});
  }
  ASSERT_TRUE(gma_server.Tick(setup).ok());
  ASSERT_TRUE(ovh_server.Tick(setup).ok());
  for (int ts = 0; ts < 12; ++ts) {
    UpdateBatch batch;
    for (ObjectId i = 0; i < obj_pos.size(); ++i) {
      if (!rng.NextBool(0.25)) continue;
      const NetworkPoint next{
          static_cast<EdgeId>(rng.NextIndex(num_edges)), rng.NextDouble()};
      batch.objects.push_back(ObjectUpdate{i, obj_pos[i], next});
      obj_pos[i] = next;
    }
    for (QueryId q = 0; q < qry_pos.size(); ++q) {
      if (!rng.NextBool(0.25)) continue;
      qry_pos[q] = NetworkPoint{
          static_cast<EdgeId>(rng.NextIndex(num_edges)), rng.NextDouble()};
      batch.queries.push_back(
          QueryUpdate{q, QueryUpdate::Kind::kMove, qry_pos[q], 0});
    }
    for (int e = 0; e < 6; ++e) {
      const EdgeId edge = static_cast<EdgeId>(rng.NextIndex(num_edges));
      batch.edges.push_back(
          EdgeUpdate{edge, gma_server.network().edge(edge).weight *
                               (rng.NextBool(0.5) ? 1.1 : 0.9)});
    }
    ASSERT_TRUE(gma_server.Tick(batch).ok());
    ASSERT_TRUE(ovh_server.Tick(batch).ok());
    for (QueryId q = 0; q < qry_pos.size(); ++q) {
      const auto* a = gma_server.ResultOf(q);
      const auto* b = ovh_server.ResultOf(q);
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      testing::ExpectSameDistances(*a, *b);
    }
  }
}

// The sequence table is built once per graph and cached on the shared
// topology: every GMA instance over views of the same network holds the
// same table (PR-4 carry-over fix — the per-shard duplicates used to
// scale the active-node substrate with the shard count).
TEST(GmaTest, SequenceTableSharedAcrossViews) {
  RoadNetwork net =
      GenerateRoadNetwork(NetworkGenConfig{.target_edges = 200, .seed = 3});
  RoadNetwork view = net.SharedView();
  EXPECT_EQ(net.SharedSequences().get(), view.SharedSequences().get());

  ObjectTable objects_a(net.NumEdges());
  ObjectTable objects_b(net.NumEdges());
  Gma a(&net, &objects_a);
  Gma b(&view, &objects_b);
  EXPECT_EQ(&a.sequences(), &b.sequences());
  EXPECT_GT(a.SharedMemoryBytes(), 0u);
  EXPECT_EQ(a.SharedMemoryBytes(), b.SharedMemoryBytes());
}

// Memory pin for the shared table: the per-shard increment of a GMA
// server must not include another copy of the sequence table, so going
// from 1 shard to 8 adds less than one extra table's worth per shard.
TEST(GmaTest, ShardedServerCountsSequenceTableOnce) {
  RoadNetwork base =
      GenerateRoadNetwork(NetworkGenConfig{.target_edges = 400, .seed = 21});
  MonitoringServer serial(base.SharedView(), Algorithm::kGma);
  MonitoringServer sharded(base.SharedView(), Algorithm::kGma,
                           /*num_shards=*/8);
  const std::size_t st_bytes = serial.monitor().SharedMemoryBytes();
  ASSERT_GT(st_bytes, 0u);
  // Every shard reports the same shared block...
  std::size_t sum_monitors = 0;
  for (int s = 0; s < sharded.num_shards(); ++s) {
    EXPECT_EQ(sharded.shards().monitor(s).SharedMemoryBytes(), st_bytes);
    sum_monitors += sharded.shards().monitor(s).MemoryBytes();
  }
  // ...and the merged total counts it once. The bracket: per-shard
  // monitor bytes, plus exactly one sequence table, plus at most one
  // 8-byte/edge weight overlay per extra shard (a shard view's overlay
  // never exceeds the primary's capacity-based estimate). A per-shard
  // table copy would blow through the upper bound by 7 x st_bytes.
  const std::size_t overlay = sharded.network().OverlayMemoryBytes();
  const std::size_t mem8 = sharded.MonitorMemoryBytes();
  EXPECT_GE(mem8, sum_monitors + st_bytes);
  EXPECT_LE(mem8, sum_monitors + st_bytes + 7 * overlay);
  EXPECT_GE(mem8, serial.MonitorMemoryBytes());
}

}  // namespace
}  // namespace cknn

#include "src/core/path_knn.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "src/gen/network_gen.h"
#include "src/core/knn_search.h"
#include "src/graph/shortest_path.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

QueryPath PathFromResult(const PathResult& r) {
  return QueryPath{r.nodes, r.edges};
}

TEST(PathKnnTest, CandidatesContainOnPathObjects) {
  RoadNetwork net = testing::MakeGrid(4);
  ObjectTable objects(net.NumEdges());
  const PathResult route = ShortestPath(net, 0, 15);
  ASSERT_TRUE(route.reachable);
  ASSERT_TRUE(objects.Insert(5, NetworkPoint{route.edges[0], 0.5}).ok());
  ASSERT_TRUE(objects.Insert(6, NetworkPoint{route.edges.back(), 0.5}).ok());
  const auto candidates =
      PathKnnCandidates(net, objects, PathFromResult(route), 1);
  EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(), 5u));
  EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(), 6u));
}

TEST(PathKnnTest, PointEvaluationOnStraightPath) {
  // Path graph 0-1-2-3 with one off-path branch holding an object.
  RoadNetwork net;
  for (int i = 0; i < 4; ++i) net.AddNode(Point{static_cast<double>(i), 0});
  const NodeId side = net.AddNode(Point{1, 1});
  std::vector<EdgeId> edges;
  for (int i = 0; i < 3; ++i) edges.push_back(*net.AddEdge(i, i + 1));
  const EdgeId branch = *net.AddEdge(1, side);
  ObjectTable objects(net.NumEdges());
  ASSERT_TRUE(objects.Insert(1, NetworkPoint{branch, 1.0}).ok());  // At side.
  ASSERT_TRUE(objects.Insert(2, NetworkPoint{edges[2], 0.5}).ok());  // x=2.5
  QueryPath path{{0, 1, 2, 3}, edges};
  // Point at x=0.5 (edge 0, t=0.5): object 1 at 0.5+1=1.5; object 2 at 2.0.
  const auto result = KnnAtPathPoint(net, objects, path, 2, 0, 0.5);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 1u);
  EXPECT_NEAR(result[0].distance, 1.5, 1e-12);
  EXPECT_EQ(result[1].id, 2u);
  EXPECT_NEAR(result[1].distance, 2.0, 1e-12);
}

/// Property: KnnAtPathPoint equals a fresh SnapshotKnn at the same point,
/// and candidates contain every true k-NN, across random paths.
class PathKnnPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PathKnnPropertyTest, MatchesDirectSearch) {
  RoadNetwork net = GenerateRoadNetwork(NetworkGenConfig{
      .target_edges = 250, .seed = static_cast<std::uint64_t>(GetParam())});
  Rng rng(GetParam() * 13);
  ObjectTable objects(net.NumEdges());
  for (ObjectId i = 0; i < 50; ++i) {
    ASSERT_TRUE(objects
                    .Insert(i, NetworkPoint{static_cast<EdgeId>(rng.NextIndex(
                                                net.NumEdges())),
                                            rng.NextDouble()})
                    .ok());
  }
  // A random (shortest) path between two random nodes.
  PathResult route;
  do {
    route = ShortestPath(
        net, static_cast<NodeId>(rng.NextIndex(net.NumNodes())),
        static_cast<NodeId>(rng.NextIndex(net.NumNodes())));
  } while (!route.reachable || route.edges.size() < 3);
  const QueryPath path = PathFromResult(route);
  const int k = 4;
  const auto candidates = PathKnnCandidates(net, objects, path, k);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t edge_index = rng.NextIndex(path.edges.size());
    const double t = rng.NextDouble();
    const EdgeId e = path.edges[edge_index];
    const bool forward = net.edge(e).u == path.nodes[edge_index];
    const NetworkPoint point{e, forward ? t : 1.0 - t};
    const auto via_path =
        KnnAtPathPoint(net, objects, path, k, edge_index, t);
    const auto direct = SnapshotKnn(net, objects, point, k);
    testing::ExpectSameDistances(via_path, direct);
    // Containment claim: every true k-NN id is in the candidate set (ties
    // can substitute ids, so check distances through the direct result).
    for (const Neighbor& nb : via_path) {
      EXPECT_TRUE(
          std::binary_search(candidates.begin(), candidates.end(), nb.id));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathKnnPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace cknn

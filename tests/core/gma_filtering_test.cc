// Focused tests of GMA's update-filtering machinery (Section 5's
// influencing intervals and active-node change propagation), including a
// regression scenario for the boundary-object bug: the k-th NN defines
// q.kNN_dist, so it always sits exactly on the influencing-interval
// boundary — its departure must still be routed to the query.

#include "gtest/gtest.h"
#include "src/core/gma.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

// A long chain 0-1-2-3-4-5 with spurs at both ends so the chain interior
// forms one sequence with intersection endpoints.
//
//  6   7          8   9
//   \ /            \ /
//    0 -1- 2 -3- 4- 5
class GmaFilteringTest : public ::testing::Test {
 protected:
  GmaFilteringTest() {
    for (int i = 0; i < 6; ++i) {
      net_.AddNode(Point{static_cast<double>(i), 0});
    }
    net_.AddNode(Point{-0.5, 1});  // 6
    net_.AddNode(Point{0.5, 1});   // 7
    net_.AddNode(Point{4.5, 1});   // 8
    net_.AddNode(Point{5.5, 1});   // 9
    for (int i = 0; i < 5; ++i) {
      chain_.push_back(*net_.AddEdge(i, i + 1));
    }
    EXPECT_TRUE(net_.AddEdge(0, 6).ok());
    EXPECT_TRUE(net_.AddEdge(0, 7).ok());
    EXPECT_TRUE(net_.AddEdge(5, 8).ok());
    EXPECT_TRUE(net_.AddEdge(5, 9).ok());
    objects_ = std::make_unique<ObjectTable>(net_.NumEdges());
    gma_ = std::make_unique<Gma>(&net_, objects_.get());
  }

  Status Tick(const UpdateBatch& batch) {
    return gma_->ProcessTimestamp(batch);
  }

  RoadNetwork net_;
  std::vector<EdgeId> chain_;
  std::unique_ptr<ObjectTable> objects_;
  std::unique_ptr<Gma> gma_;
};

TEST_F(GmaFilteringTest, KthNeighborEvictionIsDetected) {
  UpdateBatch setup;
  // Query mid-chain; the 2nd NN defines the bound.
  setup.objects.push_back(ObjectUpdate{1, std::nullopt,
                                       NetworkPoint{chain_[2], 0.7}});
  setup.objects.push_back(ObjectUpdate{2, std::nullopt,
                                       NetworkPoint{chain_[3], 0.8}});
  setup.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{chain_[2], 0.5}, 2});
  ASSERT_TRUE(Tick(setup).ok());
  ASSERT_EQ(gma_->ResultOf(0)->size(), 2u);
  EXPECT_EQ((*gma_->ResultOf(0))[1].id, 2u);  // The bound-defining NN.
  // The k-th NN (exactly at the bound) departs far away.
  UpdateBatch away;
  away.objects.push_back(ObjectUpdate{2, NetworkPoint{chain_[3], 0.8},
                                      NetworkPoint{8, 0.5}});
  ASSERT_TRUE(Tick(away).ok());
  const auto& result = *gma_->ResultOf(0);
  ASSERT_EQ(result.size(), 2u);
  // Object 2 is now reachable only via endpoint 5 (if within its NN set) —
  // either way its distance must be the fresh one, not the stale 1.3.
  const auto want =
      testing::BruteForceKnn(net_, *objects_, NetworkPoint{chain_[2], 0.5}, 2);
  testing::ExpectSameDistances(result, want);
}

TEST_F(GmaFilteringTest, WeightChangeWithinReachReevaluates) {
  UpdateBatch setup;
  setup.objects.push_back(ObjectUpdate{1, std::nullopt,
                                       NetworkPoint{chain_[4], 0.5}});
  setup.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{chain_[2], 0.2}, 1});
  ASSERT_TRUE(Tick(setup).ok());
  const double before = (*gma_->ResultOf(0))[0].distance;
  // An intermediate chain edge gets more expensive: distance must grow.
  UpdateBatch bump;
  bump.edges.push_back(EdgeUpdate{chain_[3], net_.edge(chain_[3]).weight * 2});
  ASSERT_TRUE(Tick(bump).ok());
  EXPECT_GT((*gma_->ResultOf(0))[0].distance, before);
  const auto want =
      testing::BruteForceKnn(net_, *objects_, NetworkPoint{chain_[2], 0.2}, 1);
  testing::ExpectSameDistances(*gma_->ResultOf(0), want);
}

TEST_F(GmaFilteringTest, WeightChangeBeyondReachIgnored) {
  UpdateBatch setup;
  setup.objects.push_back(ObjectUpdate{1, std::nullopt,
                                       NetworkPoint{chain_[2], 0.6}});
  setup.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{chain_[2], 0.5}, 1});
  ASSERT_TRUE(Tick(setup).ok());
  const auto evals = gma_->stats().evaluations;
  // A spur edge far beyond the tiny bound changes weight: the query must
  // not be re-evaluated (though the active nodes may shuffle internally).
  UpdateBatch far;
  far.edges.push_back(EdgeUpdate{8, net_.edge(8).weight * 1.5});
  ASSERT_TRUE(Tick(far).ok());
  EXPECT_EQ(gma_->stats().evaluations, evals);
}

TEST_F(GmaFilteringTest, EndpointNnChangePropagatesOnlyWhenReached) {
  UpdateBatch setup;
  // Sparse data: the query's walk reaches both endpoints (bound large).
  setup.objects.push_back(ObjectUpdate{1, std::nullopt, NetworkPoint{6, 0.9}});
  setup.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{chain_[2], 0.5}, 1});
  ASSERT_TRUE(Tick(setup).ok());
  const auto want_before =
      testing::BruteForceKnn(net_, *objects_, NetworkPoint{chain_[2], 0.5}, 1);
  testing::ExpectSameDistances(*gma_->ResultOf(0), want_before);
  // An object appears on a spur beyond endpoint 5 — enters node 5's NN
  // set, which the query consumed: the result must refresh.
  UpdateBatch appear;
  appear.objects.push_back(
      ObjectUpdate{2, std::nullopt, NetworkPoint{8, 0.2}});
  ASSERT_TRUE(Tick(appear).ok());
  const auto want_after =
      testing::BruteForceKnn(net_, *objects_, NetworkPoint{chain_[2], 0.5}, 1);
  testing::ExpectSameDistances(*gma_->ResultOf(0), want_after);
}

TEST_F(GmaFilteringTest, ObjectShufflingBeyondBoundIgnored) {
  UpdateBatch setup;
  setup.objects.push_back(ObjectUpdate{1, std::nullopt,
                                       NetworkPoint{chain_[2], 0.55}});
  setup.objects.push_back(ObjectUpdate{2, std::nullopt, NetworkPoint{8, 0.5}});
  setup.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{chain_[2], 0.5}, 1});
  ASSERT_TRUE(Tick(setup).ok());
  const auto evals = gma_->stats().evaluations;
  // Far object wiggles on its spur: no interval contains it, no monitored
  // NN set changes.
  UpdateBatch wiggle;
  wiggle.objects.push_back(
      ObjectUpdate{2, NetworkPoint{8, 0.5}, NetworkPoint{8, 0.6}});
  ASSERT_TRUE(Tick(wiggle).ok());
  EXPECT_EQ(gma_->stats().evaluations, evals);
}

TEST_F(GmaFilteringTest, GrowingKOfColocatedQueryLiftsNodeK) {
  UpdateBatch setup;
  for (ObjectId i = 0; i < 6; ++i) {
    setup.objects.push_back(ObjectUpdate{
        i, std::nullopt, NetworkPoint{chain_[i % chain_.size()], 0.3}});
  }
  setup.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                      NetworkPoint{chain_[1], 0.5}, 1});
  ASSERT_TRUE(Tick(setup).ok());
  const int k_before = gma_->engine().KOf(0);  // Node 0 active.
  UpdateBatch more;
  more.queries.push_back(QueryUpdate{1, QueryUpdate::Kind::kInstall,
                                     NetworkPoint{chain_[3], 0.5}, 4});
  ASSERT_TRUE(Tick(more).ok());
  EXPECT_GE(gma_->engine().KOf(0), 4);
  EXPECT_GE(k_before, 1);
  ASSERT_EQ(gma_->ResultOf(1)->size(), 4u);
  const auto want =
      testing::BruteForceKnn(net_, *objects_, NetworkPoint{chain_[3], 0.5}, 4);
  testing::ExpectSameDistances(*gma_->ResultOf(1), want);
}

}  // namespace
}  // namespace cknn

#include "src/core/top_k.h"

#include "gtest/gtest.h"

namespace cknn {
namespace {

TEST(CandidateSetTest, OfferKeepsMinimum) {
  CandidateSet set;
  EXPECT_TRUE(set.Offer(1, 5.0));
  EXPECT_FALSE(set.Offer(1, 6.0));
  EXPECT_TRUE(set.Offer(1, 3.0));
  EXPECT_DOUBLE_EQ(*set.DistanceOf(1), 3.0);
  EXPECT_EQ(set.size(), 1u);
}

TEST(CandidateSetTest, SetReplacesEitherDirection) {
  CandidateSet set;
  set.Set(1, 5.0);
  set.Set(1, 9.0);  // Upward, unlike Offer.
  EXPECT_DOUBLE_EQ(*set.DistanceOf(1), 9.0);
  set.Set(1, 2.0);
  EXPECT_DOUBLE_EQ(*set.DistanceOf(1), 2.0);
}

TEST(CandidateSetTest, RemoveReturnsOldDistance) {
  CandidateSet set;
  set.Set(4, 1.5);
  auto removed = set.Remove(4);
  ASSERT_TRUE(removed.has_value());
  EXPECT_DOUBLE_EQ(*removed, 1.5);
  EXPECT_FALSE(set.Remove(4).has_value());
  EXPECT_TRUE(set.empty());
}

TEST(CandidateSetTest, KthDistInfiniteWhileUnderK) {
  CandidateSet set;
  EXPECT_EQ(set.KthDist(1), kInfDist);
  set.Offer(1, 2.0);
  set.Offer(2, 1.0);
  EXPECT_EQ(set.KthDist(3), kInfDist);
  EXPECT_DOUBLE_EQ(set.KthDist(1), 1.0);
  EXPECT_DOUBLE_EQ(set.KthDist(2), 2.0);
}

TEST(CandidateSetTest, TopKOrderedByDistanceThenId) {
  CandidateSet set;
  set.Offer(9, 2.0);
  set.Offer(3, 2.0);  // Tie with 9 — smaller id first.
  set.Offer(5, 1.0);
  const auto top = set.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 5u);
  EXPECT_EQ(top[1].id, 3u);
  EXPECT_EQ(top[2].id, 9u);
  const auto top2 = set.TopK(2);
  EXPECT_EQ(top2.size(), 2u);
  const auto top9 = set.TopK(9);
  EXPECT_EQ(top9.size(), 3u);  // Fewer than requested.
}

TEST(CandidateSetTest, AllSorted) {
  CandidateSet set;
  set.Offer(1, 3.0);
  set.Offer(2, 1.0);
  const auto all = set.All();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].id, 2u);
}

TEST(CandidateSetTest, PruneBeyondKeepsTiesAtBound) {
  CandidateSet set;
  set.Offer(1, 1.0);
  set.Offer(2, 2.0);
  set.Offer(3, 2.0);
  set.Offer(4, 2.5);
  set.PruneBeyond(2.0);
  EXPECT_EQ(set.size(), 3u);  // Ties at the bound retained.
  EXPECT_FALSE(set.Contains(4));
}

TEST(CandidateSetTest, OfferAfterRemoveWorks) {
  CandidateSet set;
  set.Offer(1, 1.0);
  set.Remove(1);
  EXPECT_TRUE(set.Offer(1, 4.0));
  EXPECT_DOUBLE_EQ(*set.DistanceOf(1), 4.0);
}

TEST(CandidateSetTest, ClearResets) {
  CandidateSet set;
  set.Offer(1, 1.0);
  set.Clear();
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.KthDist(1), kInfDist);
}

TEST(CandidateSetTest, EntriesIterationMatchesSize) {
  CandidateSet set;
  for (ObjectId i = 0; i < 20; ++i) set.Offer(i, 20.0 - i);
  std::size_t count = 0;
  set.ForEachCandidate([&](ObjectId id, double dist) {
    EXPECT_DOUBLE_EQ(dist, 20.0 - id);
    ++count;
  });
  EXPECT_EQ(count, 20u);
}

}  // namespace
}  // namespace cknn

// The sharding determinism guarantee (docs/sharding.md, docs/pipeline.md):
// replaying one update stream through monitoring servers with different
// worker-shard counts AND ingest pipeline depths produces identical
// per-timestamp k-NN results and merged metrics — byte-identical for
// IMA/OVH, identical within the conformance distance tolerance for GMA
// (whose active-node grouping is shard-local) — the parallel decomposition
// and the ingest overlap are execution details, never semantic ones.
// Pinned on the committed golden trace at shards {1, 2, 8} x pipeline
// depth {1, 2} — plus a weight-tiling leg at tiles {1, 4, 16} x shards
// {1, 8} x depth {1, 2} (docs/tiling.md) — and on a randomized recorded
// scenario (fuzz_util seeds);
// the pipelined servers are additionally fed the whole stream through
// SubmitBatch with a single final Drain, so genuine multi-tick overlap is
// exercised (and raced under the CI TSan lane). Runs under the
// `conformance` CTest label.

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/server.h"
#include "src/gen/network_gen.h"
#include "src/gen/workload.h"
#include "src/trace/trace.h"
#include "tests/fuzz_util.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

constexpr int kShardCounts[] = {1, 2, 8};
constexpr int kPipelineDepths[] = {1, 2};

std::string GoldenPath() {
  return std::string(CKNN_TEST_DATA_DIR) + "/golden.trace";
}

/// Mirrors the server's aggregation semantics to know which queries are
/// registered after a tick (install adds, terminate removes).
void UpdateLiveQueries(const UpdateBatch& batch, std::set<QueryId>* live) {
  const UpdateBatch agg = MonitoringServer::AggregateBatch(batch);
  for (const QueryUpdate& u : agg.queries) {
    switch (u.kind) {
      case QueryUpdate::Kind::kInstall:
        live->insert(u.id);
        break;
      case QueryUpdate::Kind::kTerminate:
        live->erase(u.id);
        break;
      case QueryUpdate::Kind::kMove:
        break;
    }
  }
}

/// Feeds `batches` to one server per (shard count x pipeline depth)
/// configuration in lockstep and asserts equal results and merged metrics
/// after every tick. For IMA and OVH the comparison is byte-exact
/// (per-query maintenance is independent of co-resident queries). GMA's
/// active-node grouping is shard-local — a sequence endpoint monitors
/// max{q.k} over the *shard's* queries only, so a candidate's distance can
/// be derived through a different (equally shortest) endpoint path and
/// differ in the last ulps; its guarantee is the conformance tolerance
/// (docs/sharding.md), asserted per rank. Afterwards, one fully streamed
/// pipelined server per shard count (SubmitBatch for every batch, a single
/// Drain at the end — genuine multi-tick overlap) is compared against the
/// serial baseline's final state.
void ExpectShardCountInvariance(const RoadNetwork& network,
                                Algorithm algorithm,
                                const std::vector<UpdateBatch>& batches) {
  const bool exact = algorithm != Algorithm::kGma;
  std::vector<std::unique_ptr<MonitoringServer>> servers;
  std::vector<std::string> configs;
  for (const int shards : kShardCounts) {
    for (const int depth : kPipelineDepths) {
      servers.push_back(std::make_unique<MonitoringServer>(
          CloneNetwork(network), algorithm, shards, depth));
      EXPECT_EQ(servers.back()->num_shards(), shards);
      EXPECT_EQ(servers.back()->pipeline_depth(), depth);
      configs.push_back("shards=" + std::to_string(shards) +
                        " depth=" + std::to_string(depth));
    }
  }
  std::set<QueryId> live;
  for (std::size_t tick = 0; tick < batches.size(); ++tick) {
    SCOPED_TRACE("tick " + std::to_string(tick));
    for (auto& server : servers) {
      ASSERT_TRUE(server->Tick(batches[tick]).ok());
    }
    UpdateLiveQueries(batches[tick], &live);
    for (const QueryId q : live) {
      SCOPED_TRACE("query " + std::to_string(q));
      const std::vector<Neighbor>* base = servers[0]->ResultOf(q);
      ASSERT_NE(base, nullptr);
      for (std::size_t i = 1; i < servers.size(); ++i) {
        const std::vector<Neighbor>* other = servers[i]->ResultOf(q);
        ASSERT_NE(other, nullptr) << configs[i] << " lost the query";
        testing::ExpectSameNeighbors(exact, *base, *other, configs[i]);
      }
    }
    // Merged metrics agree in lockstep too.
    for (std::size_t i = 1; i < servers.size(); ++i) {
      EXPECT_EQ(servers[i]->NumQueries(), servers[0]->NumQueries());
      EXPECT_EQ(servers[i]->timestamp(), servers[0]->timestamp());
    }
    EXPECT_EQ(servers[0]->NumQueries(), live.size());
  }
  // Streamed pipelined replay: no intermediate drains, so tick t+1's
  // aggregation/validation really overlaps tick t's maintenance.
  for (const int shards : kShardCounts) {
    const std::string who =
        "streamed shards=" + std::to_string(shards) + " depth=2";
    SCOPED_TRACE(who);
    MonitoringServer streamed(CloneNetwork(network), algorithm, shards,
                              /*pipeline_depth=*/2);
    for (const UpdateBatch& batch : batches) {
      ASSERT_TRUE(streamed.SubmitBatch(batch).ok());
    }
    ASSERT_TRUE(streamed.Drain().ok());
    EXPECT_EQ(streamed.timestamp(), servers[0]->timestamp());
    EXPECT_EQ(streamed.NumQueries(), servers[0]->NumQueries());
    for (const QueryId q : live) {
      SCOPED_TRACE("query " + std::to_string(q));
      const std::vector<Neighbor>* base = servers[0]->ResultOf(q);
      const std::vector<Neighbor>* other = streamed.ResultOf(q);
      ASSERT_NE(base, nullptr);
      ASSERT_NE(other, nullptr) << who << " lost the query";
      testing::ExpectSameNeighbors(exact, *base, *other, who);
    }
  }
}

/// Tiling leg (docs/tiling.md): the weight-store tile count is a pure
/// storage-layout knob, so replaying one stream at tiles {1, 4, 16} x
/// shards {1, 8} x pipeline depth {1, 2} must match the flat serial
/// baseline — byte-identical for IMA/OVH, conformance tolerance for GMA
/// (the tolerance covers the shard dimension; at shards=1 tiled GMA is
/// byte-identical too). Servers run on shared-topology views, so the leg
/// also exercises the post-clone SharedView path end to end.
void ExpectTileCountInvariance(const RoadNetwork& network,
                               Algorithm algorithm,
                               const std::vector<UpdateBatch>& batches) {
  const bool exact = algorithm != Algorithm::kGma;
  MonitoringServer baseline(network.SharedView(), algorithm);
  std::vector<std::unique_ptr<MonitoringServer>> servers;
  std::vector<std::string> configs;
  for (const int tiles : {1, 4, 16}) {
    for (const int shards : {1, 8}) {
      for (const int depth : kPipelineDepths) {
        servers.push_back(std::make_unique<MonitoringServer>(
            network.SharedView(), algorithm, shards, depth, tiles));
        EXPECT_EQ(servers.back()->num_tiles(),
                  std::min<int>(tiles, static_cast<int>(network.NumNodes())));
        configs.push_back("tiles=" + std::to_string(tiles) +
                          " shards=" + std::to_string(shards) +
                          " depth=" + std::to_string(depth));
      }
    }
  }
  std::set<QueryId> live;
  for (std::size_t tick = 0; tick < batches.size(); ++tick) {
    SCOPED_TRACE("tick " + std::to_string(tick));
    ASSERT_TRUE(baseline.Tick(batches[tick]).ok());
    for (auto& server : servers) {
      ASSERT_TRUE(server->Tick(batches[tick]).ok());
    }
    UpdateLiveQueries(batches[tick], &live);
    for (const QueryId q : live) {
      SCOPED_TRACE("query " + std::to_string(q));
      const std::vector<Neighbor>* base = baseline.ResultOf(q);
      ASSERT_NE(base, nullptr);
      for (std::size_t i = 0; i < servers.size(); ++i) {
        const std::vector<Neighbor>* other = servers[i]->ResultOf(q);
        ASSERT_NE(other, nullptr) << configs[i] << " lost the query";
        // At shards=1 even GMA must match byte for byte: tiling alone
        // never changes an expansion order or a derived distance.
        const bool cfg_exact = exact || configs[i].find("shards=1") !=
                                            std::string::npos;
        testing::ExpectSameNeighbors(cfg_exact, *base, *other, configs[i]);
      }
    }
  }
}

class ShardDeterminismTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(ShardDeterminismTest, GoldenTraceIsShardCountInvariant) {
  Result<Trace> trace = ReadTrace(GoldenPath());
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_GT(trace->batches.size(), 1u);
  ExpectShardCountInvariance(trace->network, GetParam(), trace->batches);
}

TEST_P(ShardDeterminismTest, GoldenTraceIsTileCountInvariant) {
  Result<Trace> trace = ReadTrace(GoldenPath());
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_GT(trace->batches.size(), 1u);
  ExpectTileCountInvariance(trace->network, GetParam(), trace->batches);
}

TEST_P(ShardDeterminismTest, RandomizedScenarioIsShardCountInvariant) {
  const std::uint64_t seed = testing::FuzzSeed(7000);
  SCOPED_TRACE("seed " + std::to_string(seed));
  // Mixed workload: many query ids so every shard of 8 owns several, plus
  // object movement and weight fluctuation.
  const NetworkGenConfig net_config{.target_edges = 250,
                                    .seed = seed ^ 0x5AD5};
  WorkloadConfig wl;
  wl.num_objects = 120;
  wl.num_queries = 24;
  wl.k = 3 + static_cast<int>(seed % 3);
  wl.edge_agility = 0.1;
  wl.object_agility = 0.2;
  wl.query_agility = 0.15;
  wl.seed = seed;
  MonitoringServer scaffold(GenerateRoadNetwork(net_config), Algorithm::kOvh);
  Workload workload(&scaffold.network(), &scaffold.spatial_index(), wl);
  std::vector<UpdateBatch> batches;
  batches.push_back(workload.Initial());
  const int steps = testing::FuzzIterations(8, 40);
  for (int ts = 0; ts < steps; ++ts) batches.push_back(workload.Step());
  ExpectShardCountInvariance(scaffold.network(), GetParam(), batches);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ShardDeterminismTest,
                         ::testing::Values(Algorithm::kIma, Algorithm::kGma,
                                           Algorithm::kOvh),
                         [](const ::testing::TestParamInfo<Algorithm>& info) {
                           return std::string(AlgorithmName(info.param));
                         });

}  // namespace
}  // namespace cknn

#include "src/sim/simulation.h"

#include <sstream>

#include "gtest/gtest.h"
#include "src/sim/experiment.h"

namespace cknn {
namespace {

ExperimentSpec SmallSpec() {
  ExperimentSpec spec;
  spec.network.target_edges = 300;
  spec.network.seed = 13;
  spec.workload.num_objects = 100;
  spec.workload.num_queries = 10;
  spec.workload.k = 3;
  spec.workload.seed = 5;
  spec.timestamps = 5;
  return spec;
}

TEST(SimulationTest, RunsAndCollectsMetrics) {
  ExperimentSpec spec = SmallSpec();
  spec.measure_memory = true;
  const RunMetrics metrics = RunExperiment(Algorithm::kIma, spec);
  ASSERT_EQ(metrics.steps.size(), 5u);
  EXPECT_GT(metrics.TotalSeconds(), 0.0);
  EXPECT_GT(metrics.AvgSeconds(), 0.0);
  EXPECT_GE(metrics.MaxSeconds(), metrics.AvgSeconds());
  EXPECT_GT(metrics.AvgMemoryKb(), 0.0);
}

TEST(SimulationTest, AllAlgorithmsRunTheSpec) {
  const ExperimentSpec spec = SmallSpec();
  for (Algorithm algo :
       {Algorithm::kOvh, Algorithm::kIma, Algorithm::kGma}) {
    const RunMetrics metrics = RunExperiment(algo, spec);
    EXPECT_EQ(metrics.steps.size(), 5u) << AlgorithmName(algo);
  }
}

TEST(SimulationTest, BrinkhoffExperimentRuns) {
  RoadNetwork net = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 300, .seed = 3});
  BrinkhoffWorkload::Config cfg;
  cfg.num_objects = 50;
  cfg.num_queries = 5;
  cfg.k = 2;
  const RunMetrics metrics =
      RunBrinkhoffExperiment(Algorithm::kGma, net, cfg, 4);
  EXPECT_EQ(metrics.steps.size(), 4u);
}

TEST(SimulationTest, EmptyMetricsAreZero) {
  RunMetrics metrics;
  EXPECT_DOUBLE_EQ(metrics.TotalSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.AvgSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.AvgMemoryKb(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.MaxSeconds(), 0.0);
}

TEST(SeriesTableTest, PrintsAlignedTable) {
  SeriesTable table("Fig X", "k", {"OVH", "IMA", "GMA"}, "seconds");
  table.AddRow("1", {0.1, 0.2, 0.3});
  table.AddRow("25", {0.4, 0.5, 0.6});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Fig X"), std::string::npos);
  EXPECT_NE(out.find("OVH"), std::string::npos);
  EXPECT_NE(out.find("0.500000"), std::string::npos);
  EXPECT_NE(out.find("seconds"), std::string::npos);
}

}  // namespace
}  // namespace cknn

// The standing guarantee of the repo: any recorded workload — mixed object
// movement, query install/move/terminate, and edge-weight updates — replays
// through IMA, GMA and OVH with identical per-timestamp k-NN sets. Runs
// under the `conformance` CTest label; seeds are randomized through
// tests/fuzz_util.h (CKNN_FUZZ_SEED) and scenario count through
// CKNN_FUZZ_SCALE. The committed golden trace additionally pins the format:
// it must keep parsing and must round-trip byte-identically.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/knn_search.h"
#include "src/core/server.h"
#include "src/gen/network_gen.h"
#include "src/sim/conformance.h"
#include "src/trace/trace.h"
#include "src/trace/trace_source.h"
#include "tests/fuzz_util.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

/// Records `steps` ticks of a Table-2 workload into an in-memory trace
/// (mixed object/query/edge-weight updates; no server involvement — the
/// generators are server-independent).
Trace RecordScenario(const NetworkGenConfig& net_config,
                     const WorkloadConfig& wl, int steps) {
  // A throwaway server provides the spatial index the placement code needs.
  MonitoringServer scaffold(GenerateRoadNetwork(net_config), Algorithm::kOvh);
  Workload workload(&scaffold.network(), &scaffold.spatial_index(), wl);
  Trace trace;
  trace.network = CloneNetwork(scaffold.network());
  trace.batches.push_back(workload.Initial());
  for (int ts = 0; ts < steps; ++ts) trace.batches.push_back(workload.Step());
  return trace;
}

/// Scenario parameters derived from a fuzz seed: every case mixes object
/// movement, query movement, and weight fluctuation, with varying k and
/// distributions.
WorkloadConfig ScenarioConfig(std::uint64_t seed) {
  WorkloadConfig wl;
  wl.num_objects = 60 + seed % 40;
  wl.num_queries = 8 + seed % 8;
  wl.k = 1 + static_cast<int>(seed % 7);
  wl.object_distribution =
      (seed % 2 == 0) ? Distribution::kUniform : Distribution::kGaussian;
  wl.query_distribution =
      (seed % 3 == 0) ? Distribution::kUniform : Distribution::kGaussian;
  wl.edge_agility = 0.05 + 0.1 * static_cast<double>(seed % 3);
  wl.object_agility = 0.1 + 0.1 * static_cast<double>(seed % 4);
  wl.query_agility = 0.1 + 0.05 * static_cast<double>(seed % 5);
  wl.object_speed = 1.0 + static_cast<double>(seed % 3);
  wl.query_speed = 1.0 + static_cast<double>(seed % 2);
  wl.seed = seed;
  return wl;
}

TEST(ConformanceTest, RandomizedRecordedScenariosAgree) {
  // At least 3 scenarios even at CKNN_FUZZ_SCALE < 1; more when scaled up.
  const int cases = std::max(3, testing::FuzzIterations(4, 24));
  for (int c = 0; c < cases; ++c) {
    const std::uint64_t seed = testing::FuzzSeed(1000 + c);
    SCOPED_TRACE("case " + std::to_string(c) + " seed " +
                 std::to_string(seed));
    const NetworkGenConfig net_config{
        .target_edges = static_cast<std::size_t>(200 + 50 * (c % 3)),
        .seed = seed ^ 0xBEEF};
    const Trace trace = RecordScenario(net_config, ScenarioConfig(seed), 8);
    Result<ConformanceReport> report = CheckTraceConformance(trace);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok) << report->ToString();
    EXPECT_EQ(report->timestamps, 9u);
    EXPECT_GT(report->queries_compared, 0u);
  }
}

TEST(ConformanceTest, FileRoundTrippedScenarioAgrees) {
  const std::string path = "conformance_file_scenario.trace";
  const std::uint64_t seed = testing::FuzzSeed(42);
  Trace trace = RecordScenario(
      NetworkGenConfig{.target_edges = 180, .seed = seed ^ 0xF00D},
      ScenarioConfig(seed), 6);
  ASSERT_TRUE(WriteTrace(trace, path).ok());
  Result<Trace> read = ReadTrace(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  Result<ConformanceReport> report = CheckTraceConformance(*read);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok) << report->ToString();
  std::remove(path.c_str());
}

TEST(ConformanceTest, DivergenceIsDetectedAndLocated) {
  // Handcrafted scenario with a known geometry: one object at the far end
  // of edge 0, one 1-NN query at its near end.
  Trace trace;
  trace.network = testing::MakeGrid(3);
  UpdateBatch initial;
  initial.objects.push_back(
      ObjectUpdate{0, std::nullopt, NetworkPoint{0, 0.9}});
  initial.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                        NetworkPoint{0, 0.1}, 1});
  trace.batches.push_back(initial);
  trace.batches.push_back(UpdateBatch{});
  MonitoringServer honest(CloneNetwork(trace.network), Algorithm::kOvh);
  MonitoringServer tampered(CloneNetwork(trace.network), Algorithm::kIma);
  // Plant an extra object only the second server knows about, right on top
  // of the query: its 1-NN result must diverge at the first comparison.
  ASSERT_TRUE(tampered.AddObject(999999, NetworkPoint{0, 0.1}).ok());
  TraceWorkloadSource source(&trace);
  Result<ConformanceReport> report = RunLockstep(
      {&honest, &tampered}, &source, source.NumSteps(), 1e-7);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->ok);
  ASSERT_TRUE(report->divergence.has_value());
  EXPECT_EQ(report->divergence->timestamp, 0u);
  EXPECT_EQ(report->divergence->baseline, Algorithm::kOvh);
  EXPECT_EQ(report->divergence->other, Algorithm::kIma);
  EXPECT_FALSE(report->divergence->detail.empty());
  EXPECT_NE(report->ToString().find("DIVERGENCE"), std::string::npos);
}

TEST(ConformanceTest, InvalidTraceSurfacesAsErrorNotDivergence) {
  Trace trace;
  trace.network = GenerateRoadNetwork(NetworkGenConfig{.target_edges = 60});
  UpdateBatch bad;
  bad.objects.push_back(  // Move of an object that never appeared.
      ObjectUpdate{3, NetworkPoint{0, 0.25}, NetworkPoint{1, 0.25}});
  trace.batches.push_back(bad);
  Result<ConformanceReport> report = CheckTraceConformance(trace);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsFailedPrecondition());
}

TEST(ConformanceTest, NeedsAtLeastTwoAlgorithms) {
  Trace trace;
  trace.network = GenerateRoadNetwork(NetworkGenConfig{.target_edges = 60});
  ConformanceOptions options;
  options.algorithms = {Algorithm::kIma};
  EXPECT_TRUE(
      CheckTraceConformance(trace, options).status().IsInvalidArgument());
}

// ------------------------------------- frontier-strategy equivalence --
//
// The Frontier's priority structure (binary heap vs bucket queue, see
// src/core/knn_search.h) is an execution detail: replaying one trace under
// either structure must give the same per-timestamp k-NN sets. The default
// kind is process-global, so the comparison runs as *sequential* replays —
// one full pass per kind — rather than mixed-kind lockstep. Equal-key pops
// may come out in a different order between the structures, so results are
// compared per rank within the conformance distance tolerance.

/// Replays `trace` on a fresh server under `kind`, recording every live
/// query's result after every tick. Restores the binary-heap default.
void ReplayUnderKind(const Trace& trace, Algorithm algorithm,
                     FrontierQueueKind kind,
                     std::vector<std::map<QueryId, std::vector<Neighbor>>>*
                         per_tick_results) {
  SetDefaultFrontierQueueKind(kind);
  MonitoringServer server(CloneNetwork(trace.network), algorithm);
  std::set<QueryId> live;
  for (const UpdateBatch& batch : trace.batches) {
    ASSERT_TRUE(server.Tick(batch).ok());
    const UpdateBatch agg = MonitoringServer::AggregateBatch(batch);
    for (const QueryUpdate& u : agg.queries) {
      if (u.kind == QueryUpdate::Kind::kInstall) live.insert(u.id);
      if (u.kind == QueryUpdate::Kind::kTerminate) live.erase(u.id);
    }
    std::map<QueryId, std::vector<Neighbor>> results;
    for (const QueryId q : live) {
      const std::vector<Neighbor>* r = server.ResultOf(q);
      ASSERT_NE(r, nullptr);
      results[q] = *r;
    }
    per_tick_results->push_back(std::move(results));
  }
  SetDefaultFrontierQueueKind(FrontierQueueKind::kBinaryHeap);
}

TEST(ConformanceTest, FrontierQueueStrategiesAgree) {
  const std::uint64_t seed = testing::FuzzSeed(7777);
  const Trace trace = RecordScenario(
      NetworkGenConfig{.target_edges = 220, .seed = seed ^ 0xABCD},
      ScenarioConfig(seed), 8);

  // Leg 1: the three algorithms still agree with each other when every
  // frontier in the process uses the bucket queue.
  SetDefaultFrontierQueueKind(FrontierQueueKind::kBucketQueue);
  Result<ConformanceReport> report = CheckTraceConformance(trace);
  SetDefaultFrontierQueueKind(FrontierQueueKind::kBinaryHeap);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok) << report->ToString();

  // Leg 2: per algorithm, a binary-heap replay and a bucket-queue replay
  // of the same trace produce the same results at every timestamp.
  for (const Algorithm alg :
       {Algorithm::kIma, Algorithm::kGma, Algorithm::kOvh}) {
    SCOPED_TRACE("algorithm " + std::string(AlgorithmName(alg)));
    std::vector<std::map<QueryId, std::vector<Neighbor>>> binary, bucket;
    ReplayUnderKind(trace, alg, FrontierQueueKind::kBinaryHeap, &binary);
    ReplayUnderKind(trace, alg, FrontierQueueKind::kBucketQueue, &bucket);
    ASSERT_EQ(binary.size(), bucket.size());
    for (std::size_t tick = 0; tick < binary.size(); ++tick) {
      SCOPED_TRACE("tick " + std::to_string(tick));
      ASSERT_EQ(binary[tick].size(), bucket[tick].size());
      for (const auto& [q, base] : binary[tick]) {
        const auto it = bucket[tick].find(q);
        ASSERT_NE(it, bucket[tick].end());
        testing::ExpectSameNeighbors(/*exact=*/false, base, it->second,
                                     "query " + std::to_string(q));
      }
    }
  }
}

// ------------------------------------------------------- golden trace --
//
// The committed golden trace pins the v1 format: this build must keep
// parsing it, replaying it with all algorithms in agreement, and writing
// it back byte-identically. If this test breaks, the format changed — bump
// kTraceFormatVersion and regenerate per docs/trace_format.md.

std::string GoldenPath() {
  return std::string(CKNN_TEST_DATA_DIR) + "/golden.trace";
}

using testing::ReadFileToString;

TEST(GoldenTraceTest, ParsesAndConforms) {
  Result<Trace> trace = ReadTrace(GoldenPath());
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(trace->version, kTraceFormatVersion);
  EXPECT_GT(trace->batches.size(), 1u);
  Result<ConformanceReport> report = CheckTraceConformance(*trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok) << report->ToString();
}

TEST(GoldenTraceTest, RoundTripsByteIdentically) {
  const std::string copy = "golden_rewrite.trace";
  Result<Trace> trace = ReadTrace(GoldenPath());
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_TRUE(WriteTrace(*trace, copy).ok());
  EXPECT_EQ(ReadFileToString(copy), ReadFileToString(GoldenPath()));
  std::remove(copy.c_str());
}

}  // namespace
}  // namespace cknn

// LatencyReservoir (nearest-rank percentiles over Algorithm-R sampling)
// and RunMetrics::PercentileSeconds: exact percentiles below capacity,
// deterministic sampling above it, and sane aggregates.

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "src/sim/metrics.h"

namespace cknn {
namespace {

TEST(LatencyReservoirTest, ExactPercentilesBelowCapacity) {
  LatencyReservoir reservoir(1000);
  // 1..100 in a scrambled-ish order: percentiles sort internally.
  for (int i = 0; i < 100; ++i) {
    reservoir.Add(static_cast<double>((i * 37) % 100 + 1));
  }
  EXPECT_EQ(reservoir.count(), 100u);
  EXPECT_EQ(reservoir.max(), 100.0);
  // Nearest rank: ceil(pct/100 * 100) -> the pct-th smallest value.
  EXPECT_EQ(reservoir.Percentile(50.0), 50.0);
  EXPECT_EQ(reservoir.Percentile(95.0), 95.0);
  EXPECT_EQ(reservoir.Percentile(99.0), 99.0);
  EXPECT_EQ(reservoir.Percentile(100.0), 100.0);
  EXPECT_EQ(reservoir.Percentile(0.0), 1.0);  // p0 = min.
}

TEST(LatencyReservoirTest, EmptyAndSingleSample) {
  LatencyReservoir reservoir(16);
  EXPECT_EQ(reservoir.Percentile(50.0), 0.0);
  EXPECT_EQ(reservoir.max(), 0.0);
  reservoir.Add(2.5);
  EXPECT_EQ(reservoir.Percentile(0.0), 2.5);
  EXPECT_EQ(reservoir.Percentile(50.0), 2.5);
  EXPECT_EQ(reservoir.Percentile(100.0), 2.5);
}

TEST(LatencyReservoirTest, SamplingIsDeterministicAndBounded) {
  LatencyReservoir a(64);
  LatencyReservoir b(64);
  for (int i = 0; i < 10000; ++i) {
    a.Add(static_cast<double>(i));
    b.Add(static_cast<double>(i));
  }
  EXPECT_EQ(a.count(), 10000u);
  // Same seed, same sequence: identical percentiles despite sampling.
  EXPECT_EQ(a.Percentile(50.0), b.Percentile(50.0));
  EXPECT_EQ(a.Percentile(99.0), b.Percentile(99.0));
  // The max is tracked exactly even when its sample was evicted.
  EXPECT_EQ(a.max(), 9999.0);
  // The sampled p50 of a uniform ramp lands near the middle.
  EXPECT_GT(a.Percentile(50.0), 1000.0);
  EXPECT_LT(a.Percentile(50.0), 9000.0);
}

TEST(LatencyReservoirTest, ClearResets) {
  LatencyReservoir reservoir(8);
  for (int i = 0; i < 20; ++i) reservoir.Add(1.0);
  reservoir.Clear();
  EXPECT_EQ(reservoir.count(), 0u);
  EXPECT_EQ(reservoir.max(), 0.0);
  EXPECT_EQ(reservoir.Percentile(99.0), 0.0);
  reservoir.Add(3.0);
  EXPECT_EQ(reservoir.Percentile(50.0), 3.0);
}

TEST(RunMetricsTest, PercentileSecondsIsExact) {
  RunMetrics metrics;
  for (int i = 10; i >= 1; --i) {
    TimestepMetrics step;
    step.seconds = static_cast<double>(i);
    metrics.steps.push_back(step);
  }
  EXPECT_EQ(metrics.PercentileSeconds(50.0), 5.0);
  EXPECT_EQ(metrics.PercentileSeconds(90.0), 9.0);
  EXPECT_EQ(metrics.PercentileSeconds(100.0), 10.0);
  EXPECT_EQ(metrics.PercentileSeconds(0.0), 1.0);
  EXPECT_EQ(RunMetrics().PercentileSeconds(50.0), 0.0);
}

}  // namespace
}  // namespace cknn

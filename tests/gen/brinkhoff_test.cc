#include "src/gen/brinkhoff.h"

#include "gtest/gtest.h"
#include "src/gen/network_gen.h"

namespace cknn {
namespace {

class BrinkhoffTest : public ::testing::Test {
 protected:
  BrinkhoffTest()
      : net_(GenerateRoadNetwork(
            NetworkGenConfig{.target_edges = 300, .seed = 2})) {}
  RoadNetwork net_;
};

TEST_F(BrinkhoffTest, InitialSpawnsAllEntities) {
  BrinkhoffGenerator gen(&net_, {.num_entities = 50, .seed = 1}, 100);
  const auto initial = gen.Initial();
  EXPECT_EQ(initial.size(), 50u);
  for (const auto& t : initial) {
    EXPECT_FALSE(t.old_pos.has_value());
    ASSERT_TRUE(t.new_pos.has_value());
    EXPECT_LT(t.new_pos->edge, net_.NumEdges());
    EXPECT_GE(t.id, 100u);  // first_id offset respected.
  }
  EXPECT_EQ(gen.positions().size(), 50u);
}

TEST_F(BrinkhoffTest, StepKeepsCardinalityConstant) {
  BrinkhoffGenerator gen(&net_, {.num_entities = 40, .churn = 0.1, .seed = 2},
                         0);
  gen.Initial();
  for (int ts = 0; ts < 10; ++ts) {
    gen.Step();
    EXPECT_EQ(gen.positions().size(), 40u);
  }
}

TEST_F(BrinkhoffTest, ChurnEmitsAppearAndDisappear) {
  BrinkhoffGenerator gen(&net_, {.num_entities = 40, .churn = 0.2, .seed = 3},
                         0);
  gen.Initial();
  const auto step = gen.Step();
  int appear = 0;
  int disappear = 0;
  for (const auto& t : step) {
    if (!t.old_pos.has_value()) ++appear;
    if (!t.new_pos.has_value()) ++disappear;
  }
  EXPECT_EQ(appear, 8);
  EXPECT_EQ(disappear, 8);
}

TEST_F(BrinkhoffTest, ZeroChurnOnlyMoves) {
  BrinkhoffGenerator gen(&net_, {.num_entities = 30, .churn = 0.0, .seed = 4},
                         0);
  gen.Initial();
  for (const auto& t : gen.Step()) {
    EXPECT_TRUE(t.old_pos.has_value());
    EXPECT_TRUE(t.new_pos.has_value());
  }
}

TEST_F(BrinkhoffTest, TransitionsChainConsistently) {
  BrinkhoffGenerator gen(&net_, {.num_entities = 25, .churn = 0.1, .seed = 5},
                         0);
  std::unordered_map<std::uint32_t, NetworkPoint> shadow;
  for (const auto& t : gen.Initial()) shadow[t.id] = *t.new_pos;
  for (int ts = 0; ts < 12; ++ts) {
    for (const auto& t : gen.Step()) {
      if (t.old_pos.has_value()) {
        auto it = shadow.find(t.id);
        ASSERT_NE(it, shadow.end());
        EXPECT_EQ(it->second, *t.old_pos) << "id " << t.id;
      } else {
        EXPECT_EQ(shadow.count(t.id), 0u);
      }
      if (t.new_pos.has_value()) {
        shadow[t.id] = *t.new_pos;
      } else {
        shadow.erase(t.id);
      }
    }
    // Shadow table must mirror the generator exactly.
    ASSERT_EQ(shadow.size(), gen.positions().size());
    for (const auto& [id, pos] : gen.positions()) {
      ASSERT_EQ(shadow.at(id), pos);
    }
  }
}

TEST_F(BrinkhoffTest, SpeedClassesProduceDifferentDisplacement) {
  // With six classes over many entities, per-step displacement must vary.
  BrinkhoffGenerator gen(
      &net_,
      {.num_entities = 60, .num_classes = 6, .base_speed = 2.0, .churn = 0.0,
       .seed = 6},
      0);
  gen.Initial();
  const auto step = gen.Step();
  ASSERT_GT(step.size(), 10u);
  double min_d = 1e100;
  double max_d = 0.0;
  for (const auto& t : step) {
    const double d = Distance(ToEuclidean(net_, *t.old_pos),
                              ToEuclidean(net_, *t.new_pos));
    min_d = std::min(min_d, d);
    max_d = std::max(max_d, d);
  }
  EXPECT_GT(max_d, min_d * 1.5);
}

}  // namespace
}  // namespace cknn

#include "src/gen/workload.h"

#include "gtest/gtest.h"
#include "src/core/server.h"
#include "src/gen/network_gen.h"

namespace cknn {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest()
      : server_(GenerateRoadNetwork(
                    NetworkGenConfig{.target_edges = 400, .seed = 11}),
                Algorithm::kOvh) {}
  MonitoringServer server_;
};

TEST_F(WorkloadTest, InitialBatchMatchesCardinalities) {
  WorkloadConfig cfg;
  cfg.num_objects = 120;
  cfg.num_queries = 15;
  cfg.k = 3;
  Workload wl(&server_.network(), &server_.spatial_index(), cfg);
  const UpdateBatch batch = wl.Initial();
  EXPECT_EQ(batch.objects.size(), 120u);
  EXPECT_EQ(batch.queries.size(), 15u);
  for (const auto& qu : batch.queries) {
    EXPECT_EQ(qu.kind, QueryUpdate::Kind::kInstall);
    EXPECT_EQ(qu.k, 3);
  }
  EXPECT_TRUE(batch.edges.empty());
}

TEST_F(WorkloadTest, StepRespectsAgilities) {
  WorkloadConfig cfg;
  cfg.num_objects = 2000;
  cfg.num_queries = 500;
  cfg.object_agility = 0.10;
  cfg.query_agility = 0.20;
  cfg.edge_agility = 0.05;
  Workload wl(&server_.network(), &server_.spatial_index(), cfg);
  wl.Initial();
  const UpdateBatch step = wl.Step();
  // Binomial sampling: expect within generous bounds of the mean.
  EXPECT_NEAR(static_cast<double>(step.objects.size()), 200.0, 60.0);
  EXPECT_NEAR(static_cast<double>(step.queries.size()), 100.0, 40.0);
  EXPECT_EQ(step.edges.size(),
            static_cast<std::size_t>(0.05 * server_.network().NumEdges()));
}

TEST_F(WorkloadTest, StepUpdatesAreConsistentWithState) {
  WorkloadConfig cfg;
  cfg.num_objects = 100;
  cfg.num_queries = 10;
  Workload wl(&server_.network(), &server_.spatial_index(), cfg);
  ASSERT_TRUE(server_.Tick(wl.Initial()).ok());
  for (int ts = 0; ts < 5; ++ts) {
    // Consistency is enforced by server validation (old positions must
    // match the table exactly).
    ASSERT_TRUE(server_.Tick(wl.Step()).ok());
  }
}

TEST_F(WorkloadTest, DeterministicAcrossReplicas) {
  WorkloadConfig cfg;
  cfg.num_objects = 50;
  cfg.num_queries = 5;
  cfg.seed = 123;
  Workload a(&server_.network(), &server_.spatial_index(), cfg);
  Workload b(&server_.network(), &server_.spatial_index(), cfg);
  const UpdateBatch ia = a.Initial();
  const UpdateBatch ib = b.Initial();
  ASSERT_EQ(ia.objects.size(), ib.objects.size());
  for (std::size_t i = 0; i < ia.objects.size(); ++i) {
    EXPECT_EQ(*ia.objects[i].new_pos, *ib.objects[i].new_pos);
  }
  const UpdateBatch sa = a.Step();
  const UpdateBatch sb = b.Step();
  ASSERT_EQ(sa.objects.size(), sb.objects.size());
  ASSERT_EQ(sa.edges.size(), sb.edges.size());
  for (std::size_t i = 0; i < sa.edges.size(); ++i) {
    EXPECT_EQ(sa.edges[i].edge, sb.edges[i].edge);
    EXPECT_DOUBLE_EQ(sa.edges[i].new_weight, sb.edges[i].new_weight);
  }
}

TEST_F(WorkloadTest, GenerationIsIndependentOfLiveNetworkWeights) {
  // Regression for the pipelined-ingest overlap (docs/pipeline.md): the
  // generator must be a pure function of its seed and the updates it
  // emitted itself — never of the live network's weights, which a
  // pipelined server's shard 0 mutates while the next batch is being
  // generated. The weight chain is tracked through the workload's shadow:
  // mutating the network mid-run must not change the stream.
  WorkloadConfig cfg;
  cfg.num_objects = 50;
  cfg.num_queries = 5;
  cfg.edge_agility = 0.3;
  cfg.seed = 321;
  RoadNetwork mutated = CloneNetwork(server_.network());
  Workload reference(&server_.network(), &server_.spatial_index(), cfg);
  Workload shadowed(&mutated, &server_.spatial_index(), cfg);
  (void)reference.Initial();
  (void)shadowed.Initial();
  for (int ts = 0; ts < 4; ++ts) {
    // Scribble over every live weight the shadowed workload could read.
    for (EdgeId e = 0; e < mutated.NumEdges(); ++e) {
      ASSERT_TRUE(mutated.SetWeight(e, 1e6 + static_cast<double>(e)).ok());
    }
    const UpdateBatch want = reference.Step();
    const UpdateBatch got = shadowed.Step();
    ASSERT_TRUE(want == got) << "tick " << ts;
  }
}

TEST_F(WorkloadTest, ZeroAgilitiesFreezeEverything) {
  WorkloadConfig cfg;
  cfg.num_objects = 50;
  cfg.num_queries = 5;
  cfg.object_agility = 0.0;
  cfg.query_agility = 0.0;
  cfg.edge_agility = 0.0;
  Workload wl(&server_.network(), &server_.spatial_index(), cfg);
  wl.Initial();
  const UpdateBatch step = wl.Step();
  EXPECT_TRUE(step.Empty());
}

TEST_F(WorkloadTest, BrinkhoffWorkloadDrivesServer) {
  BrinkhoffWorkload::Config cfg;
  cfg.num_objects = 60;
  cfg.num_queries = 8;
  cfg.k = 2;
  cfg.generator.churn = 0.1;
  BrinkhoffWorkload wl(&server_.network(), cfg);
  ASSERT_TRUE(server_.Tick(wl.Initial()).ok());
  EXPECT_EQ(server_.monitor().NumQueries(), 8u);
  EXPECT_EQ(server_.objects().size(), 60u);
  for (int ts = 0; ts < 5; ++ts) {
    ASSERT_TRUE(server_.Tick(wl.Step()).ok());
    EXPECT_EQ(server_.monitor().NumQueries(), 8u);
    EXPECT_EQ(server_.objects().size(), 60u);
  }
}

}  // namespace
}  // namespace cknn

#include "src/gen/weight_gen.h"

#include <unordered_set>

#include "gtest/gtest.h"
#include "src/gen/network_gen.h"

namespace cknn {
namespace {

TEST(WeightGenTest, RespectsAgilityFraction) {
  RoadNetwork net = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 1000, .seed = 3});
  Rng rng(1);
  const auto updates = GenerateWeightUpdates(net, 0.04, 0.1, &rng);
  EXPECT_EQ(updates.size(),
            static_cast<std::size_t>(0.04 * net.NumEdges()));
}

TEST(WeightGenTest, EdgesAreDistinct) {
  RoadNetwork net = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 500, .seed = 4});
  Rng rng(2);
  const auto updates = GenerateWeightUpdates(net, 0.2, 0.1, &rng);
  std::unordered_set<EdgeId> seen;
  for (const EdgeUpdate& u : updates) {
    EXPECT_TRUE(seen.insert(u.edge).second);
  }
}

TEST(WeightGenTest, MagnitudeIsPlusMinusTenPercent) {
  RoadNetwork net = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 500, .seed = 5});
  Rng rng(3);
  const auto updates = GenerateWeightUpdates(net, 0.5, 0.1, &rng);
  bool saw_up = false;
  bool saw_down = false;
  for (const EdgeUpdate& u : updates) {
    const double old_w = net.edge(u.edge).weight;
    const double ratio = u.new_weight / old_w;
    EXPECT_TRUE(std::abs(ratio - 1.1) < 1e-9 ||
                std::abs(ratio - 0.9) < 1e-9)
        << ratio;
    saw_up |= ratio > 1.0;
    saw_down |= ratio < 1.0;
  }
  EXPECT_TRUE(saw_up);
  EXPECT_TRUE(saw_down);
}

TEST(WeightGenTest, ZeroAgilityYieldsNoUpdates) {
  RoadNetwork net = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 200, .seed = 6});
  Rng rng(4);
  EXPECT_TRUE(GenerateWeightUpdates(net, 0.0, 0.1, &rng).empty());
}

TEST(WeightGenTest, WeightsStayPositiveOverManyTimestamps) {
  RoadNetwork net = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 200, .seed = 7});
  Rng rng(5);
  for (int ts = 0; ts < 100; ++ts) {
    for (const EdgeUpdate& u : GenerateWeightUpdates(net, 0.3, 0.1, &rng)) {
      ASSERT_GT(u.new_weight, 0.0);
      ASSERT_TRUE(net.SetWeight(u.edge, u.new_weight).ok());
    }
  }
}

}  // namespace
}  // namespace cknn

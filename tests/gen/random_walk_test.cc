#include "src/gen/random_walk.h"

#include <unordered_set>

#include "gtest/gtest.h"
#include "src/gen/network_gen.h"
#include "src/graph/shortest_path.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

TEST(RandomWalkTest, ZeroDistanceStaysPut) {
  RoadNetwork net = testing::MakeGrid(3);
  Rng rng(1);
  const NetworkPoint p{0, 0.5};
  EXPECT_EQ(RandomWalkStep(net, p, 0.0, &rng), p);
}

TEST(RandomWalkTest, ShortStepStaysOnEdge) {
  RoadNetwork net = testing::MakeGrid(3);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const NetworkPoint next =
        RandomWalkStep(net, NetworkPoint{0, 0.5}, 0.2, &rng);
    EXPECT_EQ(next.edge, 0u);
    EXPECT_TRUE(next.t == 0.3 || next.t == 0.7) << next.t;
  }
}

TEST(RandomWalkTest, PositionsStayValid) {
  RoadNetwork net = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 300, .seed = 7});
  Rng rng(3);
  NetworkPoint p{0, 0.5};
  for (int i = 0; i < 500; ++i) {
    p = RandomWalkStep(net, p, net.AverageEdgeLength() * 1.5, &rng);
    ASSERT_LT(p.edge, net.NumEdges());
    ASSERT_GE(p.t, 0.0);
    ASSERT_LE(p.t, 1.0);
  }
}

TEST(RandomWalkTest, MovedNetworkDistanceBoundedByWalkLength) {
  // Network distance (with weight == length) can't exceed the walked
  // distance; it can be smaller when the walk backtracks.
  RoadNetwork net = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 300, .seed = 8});
  Rng rng(4);
  const double step = net.AverageEdgeLength() * 2.0;
  NetworkPoint p{0, 0.5};
  for (int i = 0; i < 40; ++i) {
    const NetworkPoint next = RandomWalkStep(net, p, step, &rng);
    const double d = PointToPointDistance(net, p, next);
    EXPECT_LE(d, step * (1.0 + 1e-9));
    p = next;
  }
}

TEST(RandomWalkTest, DeadEndTurnsAround) {
  // Path graph 0 - 1: walking past node 1 must bounce back.
  RoadNetwork net;
  net.AddNode(Point{0, 0});
  net.AddNode(Point{1, 0});
  ASSERT_TRUE(net.AddEdge(0, 1).ok());
  Rng rng(5);
  // Walk 1.5 units from the middle: ends at distance 0.5 + 1.0 bounced:
  // whichever direction, the result is on the single edge with valid t.
  const NetworkPoint next =
      RandomWalkStep(net, NetworkPoint{0, 0.5}, 1.5, &rng);
  EXPECT_EQ(next.edge, 0u);
  EXPECT_GE(next.t, 0.0);
  EXPECT_LE(next.t, 1.0);
}

TEST(RandomWalkTest, LongWalkVisitsManyEdges) {
  RoadNetwork net = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 200, .seed = 10});
  Rng rng(6);
  std::unordered_set<EdgeId> visited;
  NetworkPoint p{0, 0.5};
  for (int i = 0; i < 200; ++i) {
    p = RandomWalkStep(net, p, net.AverageEdgeLength() * 3.0, &rng);
    visited.insert(p.edge);
  }
  EXPECT_GT(visited.size(), 20u);
}

}  // namespace
}  // namespace cknn

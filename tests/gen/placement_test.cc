#include "src/gen/placement.h"

#include <unordered_set>

#include "gtest/gtest.h"
#include "src/gen/network_gen.h"
#include "src/geom/geometry.h"
#include "src/util/macros.h"

namespace cknn {
namespace {

class PlacementTest : public ::testing::Test {
 protected:
  PlacementTest()
      : net_(GenerateRoadNetwork(
            NetworkGenConfig{.target_edges = 500, .seed = 12})),
        box_(net_.BoundingBox()),
        tree_(Rect{box_.min_x - 1, box_.min_y - 1, box_.max_x + 1,
                   box_.max_y + 1}) {
    for (EdgeId e = 0; e < net_.NumEdges(); ++e) {
      CKNN_CHECK(tree_.Insert(e, net_.EdgeSegment(e)).ok());
    }
  }
  RoadNetwork net_;
  Rect box_;
  PmrQuadtree tree_;
};

TEST_F(PlacementTest, UniformPositionsAreValid) {
  Rng rng(1);
  const auto points =
      PlaceEntities(net_, tree_, Distribution::kUniform, 500, 0.1, &rng);
  ASSERT_EQ(points.size(), 500u);
  for (const NetworkPoint& p : points) {
    EXPECT_LT(p.edge, net_.NumEdges());
    EXPECT_GE(p.t, 0.0);
    EXPECT_LE(p.t, 1.0);
  }
}

TEST_F(PlacementTest, UniformCoversManyEdges) {
  Rng rng(2);
  const auto points =
      PlaceEntities(net_, tree_, Distribution::kUniform, 2000, 0.1, &rng);
  std::unordered_set<EdgeId> edges;
  for (const NetworkPoint& p : points) edges.insert(p.edge);
  EXPECT_GT(edges.size(), net_.NumEdges() / 4);
}

TEST_F(PlacementTest, GaussianClustersAroundCenter) {
  Rng rng(3);
  const auto points =
      PlaceEntities(net_, tree_, Distribution::kGaussian, 400, 0.1, &rng);
  const Point center{0.5 * (box_.min_x + box_.max_x),
                     0.5 * (box_.min_y + box_.max_y)};
  const double half_diag =
      0.5 * std::hypot(box_.Width(), box_.Height());
  double mean_dist = 0.0;
  for (const NetworkPoint& p : points) {
    mean_dist += Distance(ToEuclidean(net_, p), center);
  }
  mean_dist /= static_cast<double>(points.size());
  // Gaussian with stddev 10% of half-diagonal: mean radial distance must be
  // far below what a uniform placement would give (~0.5 half-diag).
  EXPECT_LT(mean_dist, 0.3 * half_diag);
}

TEST_F(PlacementTest, GaussianTighterStddevClustersMore) {
  Rng rng_a(4);
  Rng rng_b(4);
  const auto tight =
      PlaceEntities(net_, tree_, Distribution::kGaussian, 300, 0.05, &rng_a);
  const auto wide =
      PlaceEntities(net_, tree_, Distribution::kGaussian, 300, 0.5, &rng_b);
  const Point center{0.5 * (box_.min_x + box_.max_x),
                     0.5 * (box_.min_y + box_.max_y)};
  auto mean_dist = [&](const std::vector<NetworkPoint>& pts) {
    double sum = 0.0;
    for (const NetworkPoint& p : pts) {
      sum += Distance(ToEuclidean(net_, p), center);
    }
    return sum / static_cast<double>(pts.size());
  };
  EXPECT_LT(mean_dist(tight), mean_dist(wide));
}

TEST(PlacementNameTest, DistributionNames) {
  EXPECT_STREQ(DistributionName(Distribution::kUniform), "Uniform");
  EXPECT_STREQ(DistributionName(Distribution::kGaussian), "Gaussian");
}

}  // namespace
}  // namespace cknn

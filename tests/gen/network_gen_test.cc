#include "src/gen/network_gen.h"

#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "src/graph/shortest_path.h"

namespace cknn {
namespace {

class NetworkGenTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NetworkGenTest, HitsTargetSizeApproximately) {
  NetworkGenConfig config;
  config.target_edges = GetParam();
  config.seed = 9;
  RoadNetwork net = GenerateRoadNetwork(config);
  const double ratio = static_cast<double>(net.NumEdges()) /
                       static_cast<double>(config.target_edges);
  EXPECT_GT(ratio, 0.7) << net.NumEdges();
  EXPECT_LT(ratio, 1.35) << net.NumEdges();
}

INSTANTIATE_TEST_SUITE_P(Sizes, NetworkGenTest,
                         ::testing::Values(100, 1000, 10000));

TEST(NetworkGenPropertiesTest, IsConnected) {
  RoadNetwork net = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 800, .seed = 4});
  const auto dist = DijkstraDistances(net, 0);
  EXPECT_EQ(dist.size(), net.NumNodes());
}

TEST(NetworkGenPropertiesTest, RoadLikeDegreeProfile) {
  RoadNetwork net = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 2000, .seed = 5});
  std::size_t degree2 = 0;
  std::size_t max_degree = 0;
  for (NodeId n = 0; n < net.NumNodes(); ++n) {
    const std::size_t d = net.Degree(n);
    EXPECT_GE(d, 1u);
    max_degree = std::max(max_degree, d);
    if (d == 2) ++degree2;
  }
  EXPECT_LE(max_degree, 4u);  // Grid-based: no mega-intersections.
  // Subdivision must produce a sizable share of degree-2 chain nodes, the
  // fuel for GMA's sequences.
  EXPECT_GT(static_cast<double>(degree2) /
                static_cast<double>(net.NumNodes()),
            0.25);
}

TEST(NetworkGenPropertiesTest, WeightsInitializedToLengths) {
  RoadNetwork net = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 300, .seed = 6});
  for (EdgeId e = 0; e < net.NumEdges(); ++e) {
    EXPECT_DOUBLE_EQ(net.edge(e).weight, net.edge(e).length);
    EXPECT_GT(net.edge(e).length, 0.0);
  }
}

TEST(NetworkGenPropertiesTest, DeterministicFromSeed) {
  const NetworkGenConfig config{.target_edges = 400, .seed = 77};
  RoadNetwork a = GenerateRoadNetwork(config);
  RoadNetwork b = GenerateRoadNetwork(config);
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (EdgeId e = 0; e < a.NumEdges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
  }
}

TEST(NetworkGenPropertiesTest, DifferentSeedsDiffer) {
  RoadNetwork a = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 400, .seed = 1});
  RoadNetwork b = GenerateRoadNetwork(
      NetworkGenConfig{.target_edges = 400, .seed = 2});
  bool differs = a.NumEdges() != b.NumEdges();
  if (!differs) {
    for (EdgeId e = 0; e < a.NumEdges() && !differs; ++e) {
      differs = a.edge(e).u != b.edge(e).u || a.edge(e).v != b.edge(e).v;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(NetworkGenPropertiesTest, OldenburgPresetSize) {
  RoadNetwork net = GenerateOldenburgLike(3);
  // Paper: 6105 nodes and 7035 edges; we match the scale, not the map.
  EXPECT_GT(net.NumEdges(), 5000u);
  EXPECT_LT(net.NumEdges(), 9500u);
}

}  // namespace
}  // namespace cknn

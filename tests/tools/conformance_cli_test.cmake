# End-to-end CLI leg of the `conformance` label: record three randomized
# scenarios with cknn_sim --conformance --record (which already verifies
# OVH/IMA/GMA agreement in lockstep), then re-check each recorded file
# through --replay --conformance, and finally assert that a corrupted
# trace is rejected instead of silently replayed. Invoked by CTest as
#   cmake -DCKNN_SIM=<path> -DWORK_DIR=<dir> -P conformance_cli_test.cmake
# CKNN_FUZZ_SEED (optional) shifts the scenario seeds, like the gtest
# fuzz suites.
if(NOT DEFINED CKNN_SIM OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
    "conformance_cli_test.cmake requires -DCKNN_SIM=<path> -DWORK_DIR=<dir>")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

set(base_seed 0)
if(DEFINED ENV{CKNN_FUZZ_SEED})
  string(REGEX MATCH "^[0-9]+" env_seed "$ENV{CKNN_FUZZ_SEED}")
  if(NOT env_seed STREQUAL "")
    set(base_seed ${env_seed})
  endif()
endif()

function(expect_conformance_ok case)
  execute_process(
    COMMAND ${CKNN_SIM} ${ARGN}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR
      "${case}: cknn_sim ${ARGN} exited ${code}\n"
      "stdout:\n${out}\nstderr:\n${err}")
  endif()
  string(FIND "${out}" "conformance OK" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "${case}: no 'conformance OK' in output\n"
      "stdout:\n${out}\nstderr:\n${err}")
  endif()
  message(STATUS "${case} OK")
endfunction()

foreach(i RANGE 1 3)
  math(EXPR seed "${base_seed} + 101 * ${i}")
  set(trace "${WORK_DIR}/scenario_${i}.trace")
  expect_conformance_ok(record_scenario_${i}
    --conformance --record=${trace}
    --edges=250 --objects=120 --queries=15 --k=5 --timestamps=8
    --edge-agility=0.1 --object-agility=0.2 --query-agility=0.2
    --seed=${seed})
  expect_conformance_ok(replay_scenario_${i}
    --replay=${trace} --conformance)
endforeach()

# The sharded server must replay the same traces in lockstep agreement at
# every shard count (the determinism guarantee of docs/sharding.md).
foreach(shards 2 8)
  expect_conformance_ok(replay_scenario_1_shards_${shards}
    --replay=${WORK_DIR}/scenario_1.trace --conformance --shards=${shards})
endforeach()

# And with pipelined ingest on top (docs/pipeline.md): the asynchronous
# SubmitBatch/Drain path must keep lockstep agreement too.
expect_conformance_ok(replay_scenario_1_pipelined
  --replay=${WORK_DIR}/scenario_1.trace --conformance --shards=2
  --pipeline=2)

# A corrupted trace must be rejected, not replayed as if nothing happened.
set(corrupt "${WORK_DIR}/corrupt.trace")
file(READ "${WORK_DIR}/scenario_1.trace" intact)
string(REPLACE "eot " "eot 9" tampered "${intact}")
file(WRITE "${corrupt}" "${tampered}")
execute_process(
  COMMAND ${CKNN_SIM} --replay=${corrupt} --conformance
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE code)
if(code EQUAL 0)
  message(FATAL_ERROR
    "corrupted trace was accepted\nstdout:\n${out}\nstderr:\n${err}")
endif()
message(STATUS "corrupt_trace_rejected OK (${code})")

# End-to-end smoke test: run cknn_sim on a tiny generated network and
# assert exit code 0 plus non-empty output. Invoked by CTest as
#   cmake -DCKNN_SIM=<path> -P smoke_test.cmake
if(NOT DEFINED CKNN_SIM)
  message(FATAL_ERROR "smoke_test.cmake requires -DCKNN_SIM=<path to cknn_sim>")
endif()

execute_process(
  COMMAND ${CKNN_SIM}
    --algo=gma --edges=200 --objects=300 --queries=20
    --k=4 --timestamps=5 --seed=7
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE code)

if(NOT code EQUAL 0)
  message(FATAL_ERROR
    "cknn_sim exited with ${code}\nstdout:\n${out}\nstderr:\n${err}")
endif()

string(STRIP "${out}" stripped)
if(stripped STREQUAL "")
  message(FATAL_ERROR "cknn_sim produced no output on stdout")
endif()

message(STATUS "cknn_sim smoke test OK (${code})")

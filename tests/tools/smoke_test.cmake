# End-to-end smoke test: run cknn_sim on a tiny generated network and
# assert exit code 0 plus non-empty output; then assert that bad flag
# usage (bare value-flags, unknown flags, valued boolean flags) exits
# nonzero with usage text instead of silently misparsing. With
# -DCKNN_SERVE / -DCKNN_LOADGEN the serving binaries get the same
# treatment (all three share tools/flag_util.h, so the error legs pin the
# shared rules to every tool). Invoked by CTest as
#   cmake -DCKNN_SIM=<path> [-DCKNN_SERVE=<path>] [-DCKNN_LOADGEN=<path>]
#         -P smoke_test.cmake
if(NOT DEFINED CKNN_SIM)
  message(FATAL_ERROR "smoke_test.cmake requires -DCKNN_SIM=<path to cknn_sim>")
endif()

# expect_tool_usage_error(<tool-path> <tool-name> <case> <args...>): the
# invocation must exit nonzero and print the tool's usage text.
function(expect_tool_usage_error tool tool_name case)
  execute_process(
    COMMAND ${tool} ${ARGN}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE code)
  if(code EQUAL 0)
    message(FATAL_ERROR
      "${case}: ${tool_name} ${ARGN} exited 0 but should have failed\n"
      "stdout:\n${out}\nstderr:\n${err}")
  endif()
  string(FIND "${out}${err}" "usage: ${tool_name}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "${case}: no usage text after bad invocation '${tool_name} ${ARGN}'\n"
      "stdout:\n${out}\nstderr:\n${err}")
  endif()
  message(STATUS "${tool_name} ${case} OK (${code})")
endfunction()

execute_process(
  COMMAND ${CKNN_SIM}
    --algo=gma --edges=200 --objects=300 --queries=20
    --k=4 --timestamps=5 --seed=7
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE code)

if(NOT code EQUAL 0)
  message(FATAL_ERROR
    "cknn_sim exited with ${code}\nstdout:\n${out}\nstderr:\n${err}")
endif()

string(STRIP "${out}" stripped)
if(stripped STREQUAL "")
  message(FATAL_ERROR "cknn_sim produced no output on stdout")
endif()

message(STATUS "cknn_sim smoke test OK (${code})")

# expect_usage_error(<case> <args...>): the invocation must exit nonzero
# and print the usage text.
function(expect_usage_error case)
  execute_process(
    COMMAND ${CKNN_SIM} ${ARGN}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE code)
  if(code EQUAL 0)
    message(FATAL_ERROR
      "${case}: cknn_sim ${ARGN} exited 0 but should have failed\n"
      "stdout:\n${out}\nstderr:\n${err}")
  endif()
  string(FIND "${out}${err}" "usage: cknn_sim" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "${case}: no usage text after bad invocation 'cknn_sim ${ARGN}'\n"
      "stdout:\n${out}\nstderr:\n${err}")
  endif()
  message(STATUS "cknn_sim ${case} OK (${code})")
endfunction()

expect_usage_error(bare_value_flag --algo)
expect_usage_error(bare_value_flag_edges --edges)
expect_usage_error(empty_value --algo=)
expect_usage_error(unknown_flag --bogus-flag)
expect_usage_error(unknown_algorithm --algo=dijkstra)
expect_usage_error(valued_bool_flag --compare=yes)
expect_usage_error(non_numeric_value --k=fifty)
expect_usage_error(negative_count --edges=-5)
expect_usage_error(trailing_garbage --queries=10x)
expect_usage_error(zero_k --k=0)
expect_usage_error(negative_timestamps --timestamps=-5)
expect_usage_error(bare_record --record)
expect_usage_error(bare_replay --replay)
expect_usage_error(record_and_replay --record=a.trace --replay=b.trace)
expect_usage_error(compare_and_conformance --compare --conformance)
expect_usage_error(compare_and_record --compare --record=a.trace)
expect_usage_error(valued_conformance --conformance=yes)
expect_usage_error(replay_with_generator_flag --replay=a.trace --edges=100)
expect_usage_error(replay_with_seed --replay=a.trace --seed=3)
expect_usage_error(conformance_with_algo --conformance --algo=ima)
expect_usage_error(conformance_with_memory --conformance --memory)
expect_usage_error(zero_shards --shards=0)
expect_usage_error(bare_shards --shards)
expect_usage_error(zero_pipeline --pipeline=0)
expect_usage_error(bare_pipeline --pipeline)
expect_usage_error(deep_pipeline --pipeline=3)
expect_usage_error(zero_tiles --tiles=0)
expect_usage_error(bare_tiles --tiles)

# A sharded, weight-tiled run must work end to end (exit 0; result
# agreement with the serial default is enforced by shard_determinism_test
# and the conformance CLI --shards legs).
execute_process(
  COMMAND ${CKNN_SIM}
    --algo=ima --shards=4 --tiles=4 --edges=200 --objects=300 --queries=20
    --k=4 --timestamps=5 --seed=7
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR
    "sharded cknn_sim run exited ${code}\nstdout:\n${out}\nstderr:\n${err}")
endif()
message(STATUS "cknn_sim sharded_run OK (${code})")

# A pipelined sharded run too (result agreement is enforced by
# shard_determinism_test at shards {1,2,8} x pipeline depth {1,2}).
execute_process(
  COMMAND ${CKNN_SIM}
    --algo=ima --shards=2 --pipeline=2 --edges=200 --objects=300
    --queries=20 --k=4 --timestamps=5 --seed=7
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR
    "pipelined cknn_sim run exited ${code}\nstdout:\n${out}\nstderr:\n${err}")
endif()
string(FIND "${out}" "wall" has_wall)
string(FIND "${out}" "cpu" has_cpu)
if(has_wall EQUAL -1 OR has_cpu EQUAL -1)
  message(FATAL_ERROR
    "pipelined run should report wall and cpu time per tick, got\n${out}")
endif()
message(STATUS "cknn_sim pipelined_run OK (${code})")

# Replay of a missing trace must fail cleanly (a read error, not usage).
execute_process(
  COMMAND ${CKNN_SIM} --replay=does_not_exist.trace
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE code)
if(code EQUAL 0)
  message(FATAL_ERROR
    "replay of a missing trace exited 0\nstdout:\n${out}\nstderr:\n${err}")
endif()
string(FIND "${err}" "cannot read trace" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR
    "replay of a missing trace should report a read error, got\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()
message(STATUS "cknn_sim missing_trace OK (${code})")

# ------------------------------------------------------------- cknn_serve --
if(DEFINED CKNN_SERVE)
  # Happy path: the in-process protocol round trip (install, add, flush,
  # read, stats, shutdown over a socketpair through the real serve loop).
  execute_process(
    COMMAND ${CKNN_SERVE} --selfcheck --edges=200 --seed=7
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR
      "cknn_serve --selfcheck exited ${code}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  string(FIND "${out}" "selfcheck ok" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "cknn_serve --selfcheck did not report ok:\n${out}")
  endif()
  message(STATUS "cknn_serve selfcheck OK (${code})")

  expect_tool_usage_error(${CKNN_SERVE} cknn_serve bare_port --port)
  expect_tool_usage_error(${CKNN_SERVE} cknn_serve non_numeric_port --port=x)
  expect_tool_usage_error(${CKNN_SERVE} cknn_serve huge_port --port=70000)
  expect_tool_usage_error(${CKNN_SERVE} cknn_serve negative_port --port=-1)
  expect_tool_usage_error(${CKNN_SERVE} cknn_serve trailing_garbage --edges=10x)
  expect_tool_usage_error(${CKNN_SERVE} cknn_serve unknown_flag --bogus)
  expect_tool_usage_error(${CKNN_SERVE} cknn_serve unknown_algorithm --algo=dijkstra)
  expect_tool_usage_error(${CKNN_SERVE} cknn_serve valued_bool_flag --selfcheck=yes)
  expect_tool_usage_error(${CKNN_SERVE} cknn_serve zero_queue --queue-capacity=0)
  expect_tool_usage_error(${CKNN_SERVE} cknn_serve deep_pipeline --pipeline=3)
  expect_tool_usage_error(${CKNN_SERVE} cknn_serve zero_shards --shards=0)
endif()

# ----------------------------------------------------------- cknn_loadgen --
if(DEFINED CKNN_LOADGEN)
  # Happy path: a miniature bursty scenario must complete and report
  # sustained throughput plus latency percentiles.
  execute_process(
    COMMAND ${CKNN_LOADGEN}
      --objects=2000 --queries=100 --k=2 --edges=200
      --producers=2 --bursts=2 --seed=7
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR
      "cknn_loadgen exited ${code}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  string(FIND "${out}" "updates/sec" has_throughput)
  string(FIND "${out}" "p99" has_p99)
  if(has_throughput EQUAL -1 OR has_p99 EQUAL -1)
    message(FATAL_ERROR
      "cknn_loadgen should report updates/sec and latency percentiles:\n${out}")
  endif()
  message(STATUS "cknn_loadgen scenario OK (${code})")

  expect_tool_usage_error(${CKNN_LOADGEN} cknn_loadgen bare_objects --objects)
  expect_tool_usage_error(${CKNN_LOADGEN} cknn_loadgen negative_objects --objects=-5)
  expect_tool_usage_error(${CKNN_LOADGEN} cknn_loadgen trailing_garbage --queries=10x)
  expect_tool_usage_error(${CKNN_LOADGEN} cknn_loadgen unknown_flag --bogus)
  expect_tool_usage_error(${CKNN_LOADGEN} cknn_loadgen valued_bool_flag --drop=yes)
  expect_tool_usage_error(${CKNN_LOADGEN} cknn_loadgen zero_k --k=0)
  expect_tool_usage_error(${CKNN_LOADGEN} cknn_loadgen zero_producers --producers=0)
  expect_tool_usage_error(${CKNN_LOADGEN} cknn_loadgen deep_pipeline --pipeline=3)
  expect_tool_usage_error(${CKNN_LOADGEN} cknn_loadgen zero_queue --queue-capacity=0)
  expect_tool_usage_error(${CKNN_LOADGEN} cknn_loadgen unknown_algorithm --algo=dijkstra)
endif()

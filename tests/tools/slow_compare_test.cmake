# Medium-scale cknn_sim --compare / --memory runs — the ROADMAP'd `slow`
# lane. Default scale (paper cardinalities, shortened horizon) finishes in
# a few seconds so the full ctest run stays bounded; the nightly workflow
# raises CKNN_FUZZ_SCALE to lengthen the horizon (integer part, clamped to
# [1, 32], mirroring tests/fuzz_util.h). Invoked by CTest as
#   cmake -DCKNN_SIM=<path> -P slow_compare_test.cmake
if(NOT DEFINED CKNN_SIM)
  message(FATAL_ERROR "slow_compare_test.cmake requires -DCKNN_SIM=<path>")
endif()

set(scale 1)
if(DEFINED ENV{CKNN_FUZZ_SCALE})
  string(REGEX MATCH "^[0-9]+" scale_int "$ENV{CKNN_FUZZ_SCALE}")
  if(NOT scale_int STREQUAL "" AND scale_int GREATER 0)
    set(scale ${scale_int})
  endif()
  if(scale GREATER 32)
    set(scale 32)
  endif()
endif()
math(EXPR timestamps "20 * ${scale}")

# run_sim(<case> <required substring> <args...>)
function(run_sim case required)
  execute_process(
    COMMAND ${CKNN_SIM} ${ARGN}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR
      "${case}: cknn_sim ${ARGN} exited ${code}\n"
      "stdout:\n${out}\nstderr:\n${err}")
  endif()
  string(FIND "${out}" "${required}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "${case}: expected '${required}' in output\nstdout:\n${out}")
  endif()
  message(STATUS "${case} OK (scale ${scale}, ${timestamps} timestamps)")
endfunction()

# Paper cardinalities (Table 2) on a shortened horizon: all three
# algorithms on one identical workload, with the memory row.
run_sim(medium_compare "memory (KB)"
  --compare --memory
  --edges=10000 --objects=100000 --queries=2000 --k=50
  --timestamps=${timestamps} --seed=1234)

# Single-algorithm per-timestamp memory reporting at the same scale.
run_sim(medium_memory "mem "
  --algo=ima --memory
  --edges=10000 --objects=100000 --queries=2000 --k=50
  --timestamps=${timestamps} --seed=1234)

// Record/replay discipline: wrapping any generator in a
// RecordingWorkloadSource must not change what the simulation sees, the
// written trace must contain exactly the generated batches, and replaying
// it must reproduce the original run's results bit-for-bit.

#include <cstdio>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "src/gen/network_gen.h"
#include "src/sim/experiment.h"
#include "src/trace/trace.h"
#include "src/trace/trace_source.h"

namespace cknn {
namespace {

WorkloadConfig SmallConfig(std::uint64_t seed) {
  WorkloadConfig wl;
  wl.num_objects = 50;
  wl.num_queries = 8;
  wl.k = 3;
  wl.edge_agility = 0.1;
  wl.object_agility = 0.3;
  wl.query_agility = 0.3;
  wl.seed = seed;
  return wl;
}

TEST(TraceReplayTest, RecordingTeesExactlyTheGeneratedBatches) {
  const std::string path = "trace_replay_tee.trace";
  const NetworkGenConfig net_config{.target_edges = 150, .seed = 3};
  MonitoringServer server(GenerateRoadNetwork(net_config), Algorithm::kOvh);
  Workload workload(&server.network(), &server.spatial_index(),
                    SmallConfig(11));
  Result<TraceWriter> writer =
      TraceWriter::Open(path, {{"generator", "test"}}, server.network());
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  std::vector<UpdateBatch> captured;
  RecordingWorkloadSource recorder(&workload, &*writer, &captured);

  // The batches the simulation consumes are the recorder's return values.
  std::vector<UpdateBatch> consumed;
  consumed.push_back(recorder.Initial());
  for (int ts = 0; ts < 6; ++ts) consumed.push_back(recorder.Step());
  ASSERT_TRUE(recorder.status().ok());
  ASSERT_TRUE(writer->Finish().ok());

  EXPECT_EQ(consumed, captured);
  Result<Trace> trace = ReadTrace(path);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(trace->batches, captured);
  std::remove(path.c_str());
}

TEST(TraceReplayTest, TraceSourceReplaysInOrderThenGoesQuiescent) {
  Trace trace;
  trace.network = GenerateRoadNetwork(NetworkGenConfig{.target_edges = 80});
  for (int i = 0; i < 3; ++i) {
    UpdateBatch batch;
    batch.edges.push_back(EdgeUpdate{static_cast<EdgeId>(i), 1.0 + i});
    trace.batches.push_back(batch);
  }
  TraceWorkloadSource source(&trace);
  EXPECT_EQ(source.NumSteps(), 2);
  EXPECT_EQ(source.Initial(), trace.batches[0]);
  EXPECT_EQ(source.StepsRemaining(), 2u);
  EXPECT_EQ(source.Step(), trace.batches[1]);
  EXPECT_EQ(source.Step(), trace.batches[2]);
  EXPECT_EQ(source.StepsRemaining(), 0u);
  // Exhausted: further steps are empty, not fatal.
  EXPECT_TRUE(source.Step().Empty());
  EXPECT_TRUE(source.Step().Empty());
}

TEST(TraceReplayTest, EmptyTraceIsQuiescentNotFatal) {
  Trace trace;
  trace.network = GenerateRoadNetwork(NetworkGenConfig{.target_edges = 80});
  TraceWorkloadSource source(&trace);
  EXPECT_EQ(source.NumSteps(), 0);
  EXPECT_TRUE(source.Initial().Empty());
  // A driver with an externally chosen horizon keeps stepping: every step
  // must be an empty batch, not an abort.
  EXPECT_TRUE(source.Step().Empty());
  EXPECT_TRUE(source.Step().Empty());
  EXPECT_EQ(source.StepsRemaining(), 0u);
}

TEST(TraceReplayTest, ReplayReproducesTheRecordedRunExactly) {
  const NetworkGenConfig net_config{.target_edges = 200, .seed = 9};
  const WorkloadConfig wl = SmallConfig(23);
  const int kSteps = 8;

  // Original run, capturing the batches in memory.
  MonitoringServer original(GenerateRoadNetwork(net_config), Algorithm::kIma);
  Workload workload(&original.network(), &original.spatial_index(), wl);
  std::vector<UpdateBatch> captured;
  RecordingWorkloadSource recorder(&workload, nullptr, &captured);
  ASSERT_TRUE(original.Tick(recorder.Initial()).ok());
  for (int ts = 0; ts < kSteps; ++ts) {
    ASSERT_TRUE(original.Tick(recorder.Step()).ok());
  }

  Trace trace;
  trace.network = CloneNetwork(original.network());
  // The trace's network must carry the *initial* weights, not the final
  // ones; rebuild them from the recorded stream by starting from lengths.
  for (EdgeId e = 0; e < trace.network.NumEdges(); ++e) {
    ASSERT_TRUE(
        trace.network.SetWeight(e, trace.network.edge(e).length).ok());
  }
  trace.batches = captured;

  MonitoringServer replayed(CloneNetwork(trace.network), Algorithm::kIma);
  TraceWorkloadSource source(&trace);
  ASSERT_TRUE(replayed.Tick(source.Initial()).ok());
  for (int ts = 0; ts < kSteps; ++ts) {
    ASSERT_TRUE(replayed.Tick(source.Step()).ok());
  }
  for (QueryId q = 0; q < wl.num_queries; ++q) {
    const auto* want = original.ResultOf(q);
    const auto* got = replayed.ResultOf(q);
    ASSERT_NE(want, nullptr);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, *want);  // Same algorithm, same stream: exact equality.
  }
  EXPECT_EQ(replayed.timestamp(), original.timestamp());
}

TEST(TraceReplayTest, RecordedExperimentReplaysThroughEveryAlgorithm) {
  const std::string path = "trace_replay_experiment.trace";
  ExperimentSpec spec;
  spec.network.target_edges = 150;
  spec.network.seed = 5;
  spec.workload = SmallConfig(31);
  spec.timestamps = 6;
  Result<RunMetrics> recorded =
      RunRecordedExperiment(Algorithm::kGma, spec, path);
  ASSERT_TRUE(recorded.ok()) << recorded.status().ToString();
  EXPECT_EQ(recorded->steps.size(), 6u);

  Result<Trace> trace = ReadTrace(path);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_EQ(trace->batches.size(), 7u);  // Initial + 6 steps.
  EXPECT_FALSE(trace->meta.empty());
  for (Algorithm algo :
       {Algorithm::kOvh, Algorithm::kIma, Algorithm::kGma}) {
    Result<RunMetrics> replayed = RunTraceReplay(algo, *trace, true);
    ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
    EXPECT_EQ(replayed->steps.size(), 6u);
    // Pipelined replay: same trace, asynchronous ingest (the next batch
    // is decoded while the previous tick computes).
    Result<RunMetrics> pipelined = RunTraceReplay(
        algo, *trace, /*measure_memory=*/false, /*shards=*/2,
        /*pipeline_depth=*/2);
    ASSERT_TRUE(pipelined.ok()) << pipelined.status().ToString();
    EXPECT_EQ(pipelined->steps.size(), 6u);
  }
  std::remove(path.c_str());
}

TEST(TraceReplayTest, PipelinedReplayOfInconsistentTraceReportsStatus) {
  // The pipelined submit validates synchronously, so a bad batch in the
  // middle of a trace is attributed to its exact tick at depth 2 too.
  Trace trace;
  trace.network = GenerateRoadNetwork(NetworkGenConfig{.target_edges = 80});
  UpdateBatch good;
  good.objects.push_back(
      ObjectUpdate{1, std::nullopt, NetworkPoint{0, 0.5}});
  trace.batches.push_back(good);
  UpdateBatch also_good;
  also_good.objects.push_back(
      ObjectUpdate{1, NetworkPoint{0, 0.5}, NetworkPoint{1, 0.25}});
  trace.batches.push_back(also_good);
  UpdateBatch bad;
  bad.objects.push_back(  // Old position contradicts the table.
      ObjectUpdate{1, NetworkPoint{0, 0.5}, NetworkPoint{2, 0.5}});
  trace.batches.push_back(bad);
  Result<RunMetrics> replayed =
      RunTraceReplay(Algorithm::kOvh, trace, /*measure_memory=*/false,
                     /*shards=*/1, /*pipeline_depth=*/2);
  ASSERT_FALSE(replayed.ok());
  EXPECT_NE(replayed.status().message().find("tick 2"), std::string::npos)
      << replayed.status().ToString();
}

TEST(TraceReplayTest, ReplayOfInconsistentTraceReportsStatus) {
  Trace trace;
  trace.network = GenerateRoadNetwork(NetworkGenConfig{.target_edges = 80});
  UpdateBatch bad;
  // Move of an object that never appeared: the server rejects it, and the
  // replay surfaces that as a Status instead of aborting.
  bad.objects.push_back(
      ObjectUpdate{7, NetworkPoint{0, 0.5}, NetworkPoint{1, 0.5}});
  trace.batches.push_back(bad);
  Result<RunMetrics> replayed =
      RunTraceReplay(Algorithm::kOvh, trace, false);
  EXPECT_FALSE(replayed.ok());
}

}  // namespace
}  // namespace cknn
